// Package repro_test holds the benchmark harness: one testing.B benchmark
// per experiment of EXPERIMENTS.md (E1–E9), so `go test -bench=.` at the
// module root regenerates the timing side of every table and figure.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro"
	"repro/internal/arch"
	"repro/internal/blocks"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/sim"
)

// paperExampleSchedule builds the §3.3 initial schedule (figure 3).
func paperExampleSchedule(tb testing.TB) *sched.Schedule {
	tb.Helper()
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 4)
	b := ts.MustAddTask("b", 6, 1, 1)
	c := ts.MustAddTask("c", 6, 1, 1)
	d := ts.MustAddTask("d", 12, 1, 2)
	e := ts.MustAddTask("e", 12, 1, 2)
	ts.MustAddDependence(a, b, 1)
	ts.MustAddDependence(b, c, 1)
	ts.MustAddDependence(b, d, 1)
	ts.MustAddDependence(d, e, 1)
	ts.MustFreeze()
	s := sched.MustNewSchedule(ts, arch.MustNew(3, 1))
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 1, 5)
	s.MustPlace(c, 1, 6)
	s.MustPlace(d, 2, 13)
	s.MustPlace(e, 2, 14)
	return s
}

// BenchmarkPaperExample — E1: the full worked example (figures 2–4).
func BenchmarkPaperExample(b *testing.B) {
	s := paperExampleSchedule(b)
	is := sched.FromSchedule(s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := (&core.Balancer{}).Run(is)
		if err != nil {
			b.Fatal(err)
		}
		if res.MakespanAfter != 14 {
			b.Fatalf("makespan %d, want 14", res.MakespanAfter)
		}
	}
}

// BenchmarkMultiRateBuffer — E2: figure 1 buffer measurement across rate
// ratios.
func BenchmarkMultiRateBuffer(b *testing.B) {
	for _, n := range []model.Time{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ts := model.NewTaskSet()
			pa := ts.MustAddTask("a", 3, 1, 1)
			pb := ts.MustAddTask("b", 3*n, 1, 1)
			ts.MustAddDependence(pa, pb, 1)
			ts.MustFreeze()
			s := sched.MustNewSchedule(ts, arch.MustNew(2, 1))
			s.MustPlace(pa, 0, 0)
			s.MustPlace(pb, 1, 3*(n-1)+2)
			is := sched.FromSchedule(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := (&sim.Runner{}).Run(is)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Procs[1].BufferPeak != model.Mem(n) {
					b.Fatalf("peak %d, want %d", rep.Procs[1].BufferPeak, n)
				}
			}
		})
	}
}

// scalingInput prepares one E3 configuration outside the timed region.
func scalingInput(tb testing.TB, tasks, procs int, util float64) *sched.InstSchedule {
	tb.Helper()
	ts, err := gen.Generate(gen.Config{
		Seed: 1, Tasks: tasks, Utilization: util,
		Periods: []model.Time{100, 200, 400},
	})
	if err != nil {
		tb.Fatal(err)
	}
	s, err := sched.NewScheduler(ts, arch.MustNew(procs, 1)).Run()
	if err != nil {
		tb.Skipf("initial scheduler: %v", err)
	}
	return sched.FromSchedule(s)
}

// BenchmarkHeuristicScaling — E3: runtime vs N and M (§4 complexity).
func BenchmarkHeuristicScaling(b *testing.B) {
	for _, cfg := range []struct {
		tasks, procs int
		util         float64
	}{
		{100, 4, 3}, {200, 4, 3}, {400, 8, 6}, {800, 8, 6}, {1600, 16, 12},
	} {
		b.Run(fmt.Sprintf("N=%d/M=%d", cfg.tasks, cfg.procs), func(b *testing.B) {
			is := scalingInput(b, cfg.tasks, cfg.procs, cfg.util)
			nb := len(blocks.Build(is))
			b.ReportMetric(float64(nb), "blocks")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (&core.Balancer{}).Run(is); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInitialScheduler — E3 companion: the reference-[4] substrate.
func BenchmarkInitialScheduler(b *testing.B) {
	for _, cfg := range []struct{ tasks, procs int }{{100, 4}, {400, 8}, {1600, 16}} {
		b.Run(fmt.Sprintf("N=%d/M=%d", cfg.tasks, cfg.procs), func(b *testing.B) {
			ts, err := gen.Generate(gen.Config{
				Seed: 1, Tasks: cfg.tasks, Utilization: float64(cfg.procs) * 0.75,
				Periods: []model.Time{100, 200, 400},
			})
			if err != nil {
				b.Fatal(err)
			}
			ar := arch.MustNew(cfg.procs, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sched.NewScheduler(ts, ar).Run(); err != nil {
					b.Skip(err)
				}
			}
		})
	}
}

// BenchmarkGainBounds — E4: balancing with Theorem 1 accounting.
func BenchmarkGainBounds(b *testing.B) {
	is := scalingInput(b, 200, 4, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := (&core.Balancer{}).Run(is)
		if err != nil {
			b.Fatal(err)
		}
		if res.GainTotal() < 0 {
			b.Fatal("negative Gtotal")
		}
	}
}

// BenchmarkAlphaApprox — E5: memory-only heuristic vs B&B optimum.
func BenchmarkAlphaApprox(b *testing.B) {
	// Small harmonic ladder so the instance is schedulable on 3
	// processors and the block count stays within the exact B&B budget.
	ts := gen.MustGenerate(gen.Config{Seed: 2, Tasks: 10, Utilization: 1.5,
		Periods: []model.Time{20, 40}})
	ar := arch.MustNew(3, 1)
	s, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		b.Skip(err)
	}
	is := sched.FromSchedule(s)
	items := partition.FromBlocks(blocks.Build(is))
	b.Run("heuristic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&core.Balancer{Policy: core.PolicyMemoryOnly, IgnoreTiming: true}).Run(is); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimal-bnb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.OptimalMaxMem(items, 3)
		}
	})
}

// BenchmarkSimulator — E6: the discrete-event executor.
func BenchmarkSimulator(b *testing.B) {
	is := scalingInput(b, 400, 8, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&sim.Runner{}).Run(is); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines — E7: the comparators on one block set.
func BenchmarkBaselines(b *testing.B) {
	ts := gen.MustGenerate(gen.Config{Seed: 2, Tasks: 14, Utilization: 2})
	ar := arch.MustNew(4, 1)
	s, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		b.Skip(err)
	}
	items := partition.FromBlocks(blocks.Build(sched.FromSchedule(s)))
	b.Run("lpt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.LPT(items, 4)
		}
	})
	b.Run("membalance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.MemBalance(items, 4)
		}
	})
	b.Run("genetic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.GA(items, 4, partition.GAConfig{Seed: int64(i), Generations: 50})
		}
	})
}

// BenchmarkAblation — E8: the heuristic under each design-choice variant.
func BenchmarkAblation(b *testing.B) {
	is := scalingInput(b, 100, 4, 3)
	for _, v := range []struct {
		name string
		bal  core.Balancer
	}{
		{"lexicographic", core.Balancer{Policy: core.PolicyLexicographic}},
		{"ratio", core.Balancer{Policy: core.PolicyRatio}},
		{"memory-only", core.Balancer{Policy: core.PolicyMemoryOnly}},
		{"no-lcm", core.Balancer{DisableLCMCondition: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			bal := v.bal
			for i := 0; i < b.N; i++ {
				if _, err := bal.Run(is); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExhaustive — E9: the optimal-script search on a tiny instance.
func BenchmarkExhaustive(b *testing.B) {
	s := paperExampleSchedule(b)
	is := sched.FromSchedule(s)
	bal := &core.Balancer{}
	for i := 0; i < b.N; i++ {
		if _, _, err := bal.ExhaustiveBest(is, core.ObjectiveMakespan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaign — the parallel experiment-campaign engine on a
// fixed sweep, at 1 worker vs GOMAXPROCS workers. The ratio between the
// two sub-benchmarks is the engine's parallel speedup (the aggregates
// themselves are bit-identical at any worker count, so the serial run
// is a pure baseline, not a different computation).
func BenchmarkCampaign(b *testing.B) {
	spec := func() *campaign.Spec {
		return &campaign.Spec{
			Name:        "bench",
			Seeds:       16,
			Tasks:       []int{60},
			Utilization: []float64{3},
			Procs:       []int{5},
		}
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := (&campaign.Engine{Workers: workers}).Run(spec())
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Trials) != 16 {
					b.Fatalf("trials: %d", len(res.Trials))
				}
			}
		})
	}
}

// BenchmarkEndToEnd — the full public-API pipeline, as a downstream user
// would run it.
func BenchmarkEndToEnd(b *testing.B) {
	ts, err := repro.Generate(repro.GenConfig{Seed: 5, Tasks: 60, Utilization: 3})
	if err != nil {
		b.Fatal(err)
	}
	ar := repro.MustNewArchitecture(5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := repro.Schedule(ts, ar)
		if err != nil {
			b.Skip(err)
		}
		res, err := repro.Balance(s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := repro.Simulate(res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}
