// Command lbmerge folds the shard journals of a multi-host campaign
// back into the single-host artifacts. Each shard journal is produced
// by `lbfarm -shard i/n -journal …` (see docs/journal.md); lbmerge
// verifies every record checksum, that all shards belong to the same
// sweep (spec-hash agreement), and that their index ranges tile the
// full trial enumeration exactly, then replays the engine's ordered
// fold — the JSON and CSV it writes are byte-identical to what one
// `lbfarm` run of the whole spec would have written.
//
// All shard headers must agree on the analyzer set and the analyzer
// phase set the sweep ran with (both are part of the spec hash);
// `-analyzers` and `-analyzer-phases` additionally assert what those
// sets must be, so a scripted pipeline fails fast when a shard was
// produced without the extras (or the before/delta columns) it
// expects.
//
// Usage:
//
//	lbmerge [-out artifacts] [-table-only] [-analyzers a,b] [-analyzer-phases before,after] shard1.jsonl shard2.jsonl ...
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"slices"
	"strings"

	"repro/internal/campaign/analyzers"
	"repro/internal/journal"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbmerge: ")
	var (
		out       = flag.String("out", "artifacts", "artifact directory")
		tableOnly = flag.Bool("table-only", false, "print the table but write no artifacts")
		anaFlag   = flag.String("analyzers", "", "assert the shards were produced with exactly this analyzer set (comma-separated, or 'none')")
		phaseFlag = flag.String("analyzer-phases", "", "assert the shards were produced with exactly this analyzer phase set (after | before,after)")

		obsOn       = flag.Bool("obs", true, "time the merge fold and write the runinfo sidecar next to the artifacts; artifacts are byte-identical either way")
		runinfoPath = flag.String("runinfo", "", "write the telemetry sidecar to this path (default <out>/<name>"+obs.RunInfoSuffix+")")
		fleetOn     = flag.Bool("fleetinfo", true, "merge any per-shard runinfo sidecars found next to the input journals into <out>/<name>"+obs.FleetInfoSuffix)
		debugAddr   = flag.String("debug-addr", "", "serve live debug endpoints (expvar /debug/vars, Prometheus /metrics, net/http/pprof /debug/pprof/) on this host:port; port 0 picks one")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: lbmerge [-out dir] [-analyzers a,b] [-analyzer-phases before,after] shard1.jsonl shard2.jsonl ...")
	}

	// The merge is one fold, so its telemetry is a single-recorder set:
	// the fold stage latency plus the end-of-run host/GC facts.
	var set *obs.Set
	if *obsOn {
		set = obs.NewSet(1)
	}
	if *debugAddr != "" {
		bound, _, err := obs.Serve(*debugAddr, set.Snapshot, map[string]func() any{
			"obs": func() any { return set.Snapshot() },
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug endpoints on http://%s/debug/vars, /metrics, and /debug/pprof/", bound)
	}

	rec := set.Aux()
	t0 := rec.Clock()
	res, err := journal.Merge(flag.Args())
	rec.Stamp(obs.StageFold, t0)
	if err != nil {
		log.Fatal(err)
	}
	rec.Add(obs.CounterReplayedTrials, int64(len(res.Trials)))
	if *anaFlag != "" {
		var names []string
		if *anaFlag != "none" {
			names = split(*anaFlag)
		}
		want, err := analyzers.Parse(names)
		if err != nil {
			log.Fatal(err)
		}
		if !slices.Equal(want.Names(), res.Spec.Analyzers) {
			log.Fatalf("shards were produced with analyzers [%s], -analyzers requires [%s]",
				strings.Join(res.Spec.Analyzers, ","), strings.Join(want.Names(), ","))
		}
	}
	if *phaseFlag != "" {
		want, err := analyzers.ParsePhases(split(*phaseFlag))
		if err != nil {
			log.Fatal(err)
		}
		if !slices.Equal(want.Names(), res.Spec.AnalyzerPhases) {
			log.Fatalf("shards were produced with analyzer phases [%s], -analyzer-phases requires [%s]",
				strings.Join(res.Spec.AnalyzerPhases, ","), strings.Join(want.Names(), ","))
		}
	}
	fmt.Printf("merged %d shards into campaign %q", flag.NArg(), res.Spec.Name)
	if len(res.Spec.Analyzers) > 0 {
		fmt.Printf(" (analyzers %s; phases %s)",
			strings.Join(res.Spec.Analyzers, ","), strings.Join(res.Spec.AnalyzerPhases, ","))
	}
	fmt.Println()
	fmt.Print(res.Table())
	if *tableOnly {
		return
	}
	jp, cp, err := res.WriteArtifacts(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifacts: %s %s\n", jp, cp)

	if set != nil {
		hash, err := res.Spec.Hash()
		if err != nil {
			log.Fatal(err)
		}
		ri := obs.NewRunInfo("lbmerge")
		ri.Name = res.Spec.Name
		ri.SpecHash = hash
		ri.Trials = len(res.Trials)
		ri.Workers = 1
		ri.Obs = set.Snapshot()
		ri.Finish(set.Elapsed())
		ripath := *runinfoPath
		if ripath == "" {
			ripath = filepath.Join(*out, res.Spec.Name+obs.RunInfoSuffix)
		}
		if err := ri.Write(ripath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("runinfo: %s\n", ripath)

		if *fleetOn {
			if fp := writeFleetInfo(*out, res.Spec.Name, hash, flag.Args()); fp != "" {
				fmt.Printf("fleetinfo: %s\n", fp)
			}
		}
	}
}

// writeFleetInfo is the fold-side fleet passthrough: each `lbfarm
// -shard` run leaves a runinfo sidecar next to its shard journal;
// merging those snapshots (the same order-independent bucket sums the
// coordinator's live scrape uses) yields the campaign-level view even
// for a manually-sharded run that never had a coordinator. Shards
// without a sidecar simply contribute nothing; with none at all, no
// fleetinfo is written.
func writeFleetInfo(out, name, hash string, shardPaths []string) string {
	fi := obs.NewFleetInfo("lbmerge")
	fi.Name = name
	fi.SpecHash = hash
	fi.Shards = len(shardPaths)
	var snaps []*obs.Snapshot
	for _, p := range shardPaths {
		ri, err := obs.ReadRunInfo(strings.TrimSuffix(p, filepath.Ext(p)) + obs.RunInfoSuffix)
		if err != nil {
			continue
		}
		id := ri.Host.Hostname
		if id == "" {
			id = filepath.Base(p)
		}
		fi.Workers = append(fi.Workers, obs.FleetWorker{ID: id + ":" + ri.Shard, Alive: true, ElapsedNS: ri.ElapsedNS})
		snaps = append(snaps, ri.Obs)
	}
	if len(snaps) == 0 {
		return ""
	}
	fi.Obs = obs.MergeSnapshots(snaps...)
	path := filepath.Join(out, name+obs.FleetInfoSuffix)
	if err := fi.Write(path); err != nil {
		log.Printf("writing fleetinfo: %v", err)
		return ""
	}
	return path
}

// split breaks a comma-separated flag value into trimmed parts.
func split(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
