// Command lbmerge folds the shard journals of a multi-host campaign
// back into the single-host artifacts. Each shard journal is produced
// by `lbfarm -shard i/n -journal …` (see docs/journal.md); lbmerge
// verifies every record checksum, that all shards belong to the same
// sweep (spec-hash agreement), and that their index ranges tile the
// full trial enumeration exactly, then replays the engine's ordered
// fold — the JSON and CSV it writes are byte-identical to what one
// `lbfarm` run of the whole spec would have written.
//
// Usage:
//
//	lbmerge [-out artifacts] [-table-only] shard1.jsonl shard2.jsonl ...
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/journal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbmerge: ")
	var (
		out       = flag.String("out", "artifacts", "artifact directory")
		tableOnly = flag.Bool("table-only", false, "print the table but write no artifacts")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: lbmerge [-out dir] shard1.jsonl shard2.jsonl ...")
	}

	res, err := journal.Merge(flag.Args())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged %d shards into campaign %q\n", flag.NArg(), res.Spec.Name)
	fmt.Print(res.Table())
	if *tableOnly {
		return
	}
	jp, cp, err := res.WriteArtifacts(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifacts: %s %s\n", jp, cp)
}
