// Command lbmerge folds the shard journals of a multi-host campaign
// back into the single-host artifacts. Each shard journal is produced
// by `lbfarm -shard i/n -journal …` (see docs/journal.md); lbmerge
// verifies every record checksum, that all shards belong to the same
// sweep (spec-hash agreement), and that their index ranges tile the
// full trial enumeration exactly, then replays the engine's ordered
// fold — the JSON and CSV it writes are byte-identical to what one
// `lbfarm` run of the whole spec would have written.
//
// All shard headers must agree on the analyzer set the sweep ran with
// (it is part of the spec hash); `-analyzers` additionally asserts what
// that set must be, so a scripted pipeline fails fast when a shard was
// produced without the extras it expects.
//
// Usage:
//
//	lbmerge [-out artifacts] [-table-only] [-analyzers a,b] shard1.jsonl shard2.jsonl ...
package main

import (
	"flag"
	"fmt"
	"log"
	"slices"
	"strings"

	"repro/internal/campaign/analyzers"
	"repro/internal/journal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbmerge: ")
	var (
		out       = flag.String("out", "artifacts", "artifact directory")
		tableOnly = flag.Bool("table-only", false, "print the table but write no artifacts")
		anaFlag   = flag.String("analyzers", "", "assert the shards were produced with exactly this analyzer set (comma-separated, or 'none')")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: lbmerge [-out dir] [-analyzers a,b] shard1.jsonl shard2.jsonl ...")
	}

	res, err := journal.Merge(flag.Args())
	if err != nil {
		log.Fatal(err)
	}
	if *anaFlag != "" {
		var names []string
		if *anaFlag != "none" {
			for _, n := range strings.Split(*anaFlag, ",") {
				names = append(names, strings.TrimSpace(n))
			}
		}
		want, err := analyzers.Parse(names)
		if err != nil {
			log.Fatal(err)
		}
		if !slices.Equal(want.Names(), res.Spec.Analyzers) {
			log.Fatalf("shards were produced with analyzers [%s], -analyzers requires [%s]",
				strings.Join(res.Spec.Analyzers, ","), strings.Join(want.Names(), ","))
		}
	}
	fmt.Printf("merged %d shards into campaign %q", flag.NArg(), res.Spec.Name)
	if len(res.Spec.Analyzers) > 0 {
		fmt.Printf(" (analyzers %s)", strings.Join(res.Spec.Analyzers, ","))
	}
	fmt.Println()
	fmt.Print(res.Table())
	if *tableOnly {
		return
	}
	jp, cp, err := res.WriteArtifacts(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifacts: %s %s\n", jp, cp)
}
