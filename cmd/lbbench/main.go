// Command lbbench regenerates the paper's evaluation artefacts (see
// DESIGN.md §3 and EXPERIMENTS.md): every figure and analytical claim
// gets a table. Experiment E1 (the §3.3 worked example) lives in
// examples/paperexample; this binary covers E2–E9. The random-workload
// experiments (E5–E9) fan their seeds out over the internal/campaign
// worker pool; the aggregate quality numbers of E5/E7/E8/E9 match the
// old serial loops exactly (wall-clock columns are measured under
// concurrent trials and vary), and E6 now reports from the campaign
// engine's aggregates. For open sweeps beyond the published tables,
// use cmd/lbfarm.
//
// Usage:
//
//	lbbench -exp all
//	lbbench -exp E5 -seeds 50
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/blocks"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/profiling"
	"repro/internal/sched"
	"repro/internal/sim"
)

// flushProfile stops any active pprof capture; experiment bodies abort
// via fatal/fatalf so -cpuprofile stays parseable even on failure
// (log.Fatal's os.Exit would skip the deferred flush in main).
var flushProfile = func() {}

func fatal(v ...any) {
	flushProfile()
	log.Fatal(v...)
}

func fatalf(format string, v ...any) {
	flushProfile()
	log.Fatalf(format, v...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbbench: ")
	var (
		exp     = flag.String("exp", "all", "experiment: E2|E3|E4|E5|E6|E7|E8|E9|all")
		seeds   = flag.Int("seeds", 20, "random seeds per configuration")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	flushProfile = func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}
	defer flushProfile()

	run := map[string]func(int){
		"E2": e2, "E3": e3, "E4": e4, "E5": e5, "E6": e6, "E7": e7, "E8": e8, "E9": e9,
	}
	names := []string{"E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	if *exp != "all" {
		f, ok := run[strings.ToUpper(*exp)]
		if !ok {
			fatalf("unknown experiment %q", *exp)
		}
		f(*seeds)
		return
	}
	for _, n := range names {
		run[n](*seeds)
		fmt.Println()
	}
}

// e2 — figure 1: multi-rate transfer needs n unshareable buffers on the
// consumer side.
func e2(int) {
	fmt.Println("=== E2 (figure 1): consumer-side buffer demand vs rate ratio n ===")
	fmt.Printf("%4s %12s %12s\n", "n", "buffer peak", "expected")
	for n := model.Time(1); n <= 8; n++ {
		ts := model.NewTaskSet()
		a := ts.MustAddTask("a", 3, 1, 1)
		b := ts.MustAddTask("b", 3*n, 1, 1)
		ts.MustAddDependence(a, b, 1)
		ts.MustFreeze()
		ar := arch.MustNew(2, 1)
		s := sched.MustNewSchedule(ts, ar)
		s.MustPlace(a, 0, 0)
		s.MustPlace(b, 1, 3*(n-1)+2)
		rep, err := (&sim.Runner{}).Run(sched.FromSchedule(s))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%4d %12d %12d\n", n, rep.Procs[1].BufferPeak, n)
	}
	fmt.Println("shape: linear in n — no memory reuse between the n data (paper §1, figure 1)")
}

// e3 — §4 complexity: heuristic runtime scales with M·Nblocks.
func e3(int) {
	fmt.Println("=== E3 (§4): heuristic runtime vs N tasks and M processors ===")
	fmt.Printf("%6s %4s %8s %10s %14s\n", "N", "M", "blocks", "time", "ns/(M·blocks)")
	for _, cfg := range []struct {
		n, m int
		util float64
	}{
		{100, 4, 3}, {200, 4, 3}, {400, 8, 6}, {800, 8, 6},
		{1600, 16, 12}, {3200, 32, 24},
	} {
		ts, err := gen.Generate(gen.Config{
			Seed: 1, Tasks: cfg.n, Utilization: cfg.util,
			Periods: []model.Time{100, 200, 400},
		})
		if err != nil {
			fatal(err)
		}
		ar := arch.MustNew(cfg.m, 1)
		s, err := sched.NewScheduler(ts, ar).Run()
		if err != nil {
			fmt.Printf("%6d %4d   (initial scheduler: %v)\n", cfg.n, cfg.m, err)
			continue
		}
		is := sched.FromSchedule(s)
		start := time.Now()
		res, err := (&core.Balancer{}).Run(is)
		el := time.Since(start)
		if err != nil {
			fatal(err)
		}
		nb := len(res.Blocks)
		fmt.Printf("%6d %4d %8d %10s %14.0f\n", cfg.n, cfg.m, nb, el.Round(time.Millisecond),
			float64(el.Nanoseconds())/float64(cfg.m*nb))
	}
	fmt.Println("shape: time grows with M·Nblocks (the paper's O(M·Nblocks) claim);")
	fmt.Println("       the per-unit column absorbs the block-size factor our exact checks add")
}

// e4 — Theorem 1: 0 ≤ Gtotal, and how often the paper's upper bound
// γ(M−1)! holds.
func e4(seeds int) {
	fmt.Println("=== E4 (Theorem 1): Gtotal bounds over random instances ===")
	fmt.Printf("%4s %8s %8s %8s %10s %16s\n", "M", "runs", "min G", "max G", "bound", "within bound")
	for _, m := range []int{2, 3, 4, 6} {
		minG, maxG := model.Time(1)<<40, model.Time(-1)
		within, runs := 0, 0
		for seed := 0; seed < seeds; seed++ {
			ts, err := gen.Generate(gen.Config{Seed: int64(seed), Tasks: 30, Utilization: 0.6 * float64(m)})
			if err != nil {
				continue
			}
			ar := arch.MustNew(m, 1)
			s, err := sched.NewScheduler(ts, ar).Run()
			if err != nil {
				continue
			}
			res, err := (&core.Balancer{}).Run(sched.FromSchedule(s))
			if err != nil {
				continue
			}
			g := res.GainTotal()
			if g < 0 {
				fatalf("Gtotal < 0: the lower bound is violated (seed %d)", seed)
			}
			runs++
			if g < minG {
				minG = g
			}
			if g > maxG {
				maxG = g
			}
			if analysis.CheckTheorem1(g, 1, m) == nil {
				within++
			}
		}
		fmt.Printf("%4d %8d %8d %8d %10d %15d%%\n",
			m, runs, minG, maxG, analysis.Theorem1Bound(1, m), 100*within/max(runs, 1))
	}
	fmt.Println("shape: Gtotal ≥ 0 always (proven sound half); the paper's γ(M−1)! upper")
	fmt.Println("       bound holds on serial schedules but NOT in general — suppressed")
	fmt.Println("       communications cascade through chains (documented deviation)")
}

// e5 — Theorem 2: ω/ωopt ≤ 2 − 1/M in the memory-only regime. The
// per-seed trials (heuristic plus an exponential B&B) fan out over the
// campaign worker pool; the fold stays serial and seed-ordered.
func e5(seeds int) {
	fmt.Println("=== E5 (Theorem 2): memory-only α-approximation vs B&B optimum ===")
	fmt.Printf("%4s %8s %10s %10s %12s\n", "M", "runs", "max α", "mean α", "bound 2−1/M")
	for _, m := range []int{2, 3, 4, 5} {
		type trial struct {
			ok    bool
			alpha float64
		}
		rows := campaign.Map(seeds, 0, func(seed int) trial {
			ts, err := gen.Generate(gen.Config{Seed: int64(seed), Tasks: 10, Utilization: 1.5,
				Periods: []model.Time{20, 40}})
			if err != nil {
				return trial{}
			}
			ar := arch.MustNew(m, 1)
			s, err := sched.NewScheduler(ts, ar).Run()
			if err != nil {
				return trial{}
			}
			is := sched.FromSchedule(s)
			res, err := (&core.Balancer{Policy: core.PolicyMemoryOnly, IgnoreTiming: true}).Run(is)
			if err != nil {
				return trial{}
			}
			items := partition.FromBlocks(blocks.Build(is))
			if len(items) > 22 {
				return trial{}
			}
			_, opt := partition.OptimalMaxMem(items, m)
			a, err := analysis.AlphaRatio(res.Schedule.MaxMem(), opt)
			if err != nil {
				return trial{}
			}
			if analysis.CheckTheorem2(res.Schedule.MaxMem(), opt, m) != nil {
				fatalf("Theorem 2 violated on seed %d, M=%d", seed, m)
			}
			return trial{ok: true, alpha: a}
		})
		maxA, sumA := 0.0, 0.0
		runs := 0
		for _, r := range rows {
			if !r.ok {
				continue
			}
			runs++
			sumA += r.alpha
			if r.alpha > maxA {
				maxA = r.alpha
			}
		}
		fmt.Printf("%4d %8d %10.3f %10.3f %12.3f\n", m, runs, maxA, sumA/float64(max(runs, 1)), analysis.AlphaBound(m))
	}
	fmt.Println("shape: α never exceeds 2−1/M; the average is far below the bound")
}

// e6 — §1 motivation: idle processors; balancing improves memory spread
// without hurting the makespan. E6 is exactly the campaign engine's
// standard pipeline, so it runs as a one-cell sweep on the worker pool
// and reads the streamed aggregates.
func e6(seeds int) {
	fmt.Println("=== E6 (§1): idle time and balance, before → after ===")
	if seeds < 1 {
		// Match the other experiments' empty output; the campaign spec
		// would otherwise treat 0 as "use the default of 20".
		fmt.Println("runs: 0")
		return
	}
	spec := &campaign.Spec{
		Name:        "e6",
		Seeds:       seeds,
		Tasks:       []int{40},
		Utilization: []float64{3},
		Procs:       []int{6},
	}
	res, err := campaign.Run(spec)
	if err != nil {
		fatal(err)
	}
	c := res.Cells[0]
	m := c.Metrics
	fmt.Printf("runs: %d (of %d trials, %d workers, %s)\n",
		c.Accepted, c.Trials, res.Workers, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("mean idle ratio:       %.0f%% → %.0f%% (the paper cites >65%% idle in general-purpose systems)\n",
		100*m["idle_before"].Mean, 100*m["idle_after"].Mean)
	fmt.Printf("mean memory imbalance: %.2f → %.2f (max/mean; 1.00 = even)\n",
		m["mem_imbal_before"].Mean, m["mem_imbal_after"].Mean)
	fmt.Printf("mean Gtotal:           %.1f time units (never negative)\n", m["gain"].Mean)
	fmt.Printf("mean reuse savings:    %.0f%% of the paper's memory accounting (figure-1 reuse bound)\n",
		100*m["reuse_savings"].Mean)
}

// e7 — related-work comparison on identical block sets.
func e7(seeds int) {
	fmt.Println("=== E7 (§2): heuristic vs baselines on identical block sets ===")
	type acc struct {
		maxMem  float64
		maxLoad float64
		elapsed time.Duration
		runs    int
	}
	sums := map[string]*acc{}
	names := []string{"heuristic", "LPT", "mem-balance", "GA", "MULTIFIT", "B&B ωopt"}
	for _, n := range names {
		sums[n] = &acc{}
	}
	const m = 4
	type cell struct {
		mm model.Mem
		ml model.Time
		el time.Duration
	}
	// One worker-pool trial per seed; every method sees the identical
	// block set of that seed.
	rows := campaign.Map(seeds, 0, func(seed int) map[string]cell {
		ts, err := gen.Generate(gen.Config{Seed: int64(seed), Tasks: 12, Utilization: 1.5,
			Periods: []model.Time{20, 40}})
		if err != nil {
			return nil
		}
		ar := arch.MustNew(m, 1)
		s, err := sched.NewScheduler(ts, ar).Run()
		if err != nil {
			return nil
		}
		is := sched.FromSchedule(s)
		items := partition.FromBlocks(blocks.Build(is))
		if len(items) > 22 {
			return nil
		}
		out := map[string]cell{}

		t0 := time.Now()
		res, err := (&core.Balancer{Policy: core.PolicyMemoryOnly, IgnoreTiming: true}).Run(is)
		if err != nil {
			return nil
		}
		out["heuristic"] = cell{res.Schedule.MaxMem(), 0, time.Since(t0)}

		t0 = time.Now()
		lpt := partition.LPT(items, m)
		out["LPT"] = cell{lpt.MaxMem(items, m), lpt.MaxLoad(items, m), time.Since(t0)}

		t0 = time.Now()
		mb := partition.MemBalance(items, m)
		out["mem-balance"] = cell{mb.MaxMem(items, m), mb.MaxLoad(items, m), time.Since(t0)}

		t0 = time.Now()
		ga := partition.GA(items, m, partition.GAConfig{Seed: int64(seed), MemWeight: 1})
		out["GA"] = cell{ga.MaxMem(items, m), ga.MaxLoad(items, m), time.Since(t0)}

		t0 = time.Now()
		mf, _ := partition.MultiFit(items, m)
		out["MULTIFIT"] = cell{mf.MaxMem(items, m), mf.MaxLoad(items, m), time.Since(t0)}

		t0 = time.Now()
		opt, _ := partition.OptimalMaxMem(items, m)
		out["B&B ωopt"] = cell{opt.MaxMem(items, m), opt.MaxLoad(items, m), time.Since(t0)}
		return out
	})
	for _, row := range rows {
		for name, c := range row {
			a := sums[name]
			a.maxMem += float64(c.mm)
			a.maxLoad += float64(c.ml)
			a.elapsed += c.el
			a.runs++
		}
	}

	fmt.Printf("%-12s %10s %10s %14s %6s\n", "method", "mean ωmax", "mean load", "mean time", "runs")
	for _, n := range names {
		a := sums[n]
		if a.runs == 0 {
			continue
		}
		fmt.Printf("%-12s %10.1f %10.1f %14s %6d\n", n,
			a.maxMem/float64(a.runs), a.maxLoad/float64(a.runs),
			(a.elapsed / time.Duration(a.runs)).Round(time.Microsecond), a.runs)
	}
	fmt.Println("shape: the heuristic tracks the B&B optimum on memory while running in")
	fmt.Println("       microseconds; the GA needs orders of magnitude more time for the")
	fmt.Println("       same quality; LPT wins on load but loses on memory")
	fmt.Println("note:  times are wall-clock with trials running concurrently — read them")
	fmt.Println("       as orders of magnitude, not exact per-method cost")
}

// e8 — ablation of the heuristic's design choices (DESIGN.md §4): cost
// policy reading, the eq. (4) Block Condition, and the propagation-cap
// mode.
func e8(seeds int) {
	fmt.Println("=== E8 (ablation): design choices of the heuristic ===")
	type variant struct {
		name string
		bal  core.Balancer
	}
	variants := []variant{
		{"lexicographic (default)", core.Balancer{Policy: core.PolicyLexicographic}},
		{"eq.(5) ratio literal", core.Balancer{Policy: core.PolicyRatio}},
		{"memory-only §5.2", core.Balancer{Policy: core.PolicyMemoryOnly}},
		{"no LCM condition", core.Balancer{Policy: core.PolicyLexicographic, DisableLCMCondition: true}},
	}
	type acc struct {
		gain, maxMem float64
		imb          float64
		relaxed      int
		conservative int
		runs         int
	}
	sums := make([]acc, len(variants))

	// Each worker-pool trial runs all four variants on its seed's
	// schedule, so the ablation compares like with like.
	rows := campaign.Map(seeds, 0, func(seed int) []acc {
		ts, err := gen.Generate(gen.Config{Seed: int64(seed), Tasks: 30, Utilization: 2.5})
		if err != nil {
			return nil
		}
		ar := arch.MustNew(5, 1)
		s, err := sched.NewScheduler(ts, ar).Run()
		if err != nil {
			return nil
		}
		is := sched.FromSchedule(s)
		out := make([]acc, len(variants))
		for i, v := range variants {
			bal := v.bal
			res, err := bal.Run(is)
			if err != nil || res.Forced > 0 {
				continue
			}
			out[i].gain = float64(res.GainTotal())
			out[i].maxMem = float64(metrics.MaxMem(res.MemAfter))
			// MemImbalance is 0 only for a degenerate (all-zero) memory
			// vector, which a successful balance never produces, so the
			// averaged column never mixes the sentinel with real ≥1 ratios.
			out[i].imb = metrics.MemImbalance(res.MemAfter)
			out[i].relaxed = res.RelaxedLCM
			if res.ConservativePropagation {
				out[i].conservative = 1
			}
			out[i].runs = 1
		}
		return out
	})
	for _, row := range rows {
		for i := range row {
			sums[i].gain += row[i].gain
			sums[i].maxMem += row[i].maxMem
			sums[i].imb += row[i].imb
			sums[i].relaxed += row[i].relaxed
			sums[i].conservative += row[i].conservative
			sums[i].runs += row[i].runs
		}
	}

	fmt.Printf("%-26s %8s %10s %10s %10s %8s %6s\n",
		"variant", "gain", "max mem", "imbalance", "relaxed", "conserv", "runs")
	for i, v := range variants {
		a := sums[i]
		if a.runs == 0 {
			continue
		}
		n := float64(a.runs)
		fmt.Printf("%-26s %8.1f %10.1f %10.2f %10.1f %8d %6d\n",
			v.name, a.gain/n, a.maxMem/n, a.imb/n, float64(a.relaxed)/n, a.conservative, a.runs)
	}
	fmt.Println("shape: the default and ratio policies agree on gain; memory-only trades")
	fmt.Println("       gain for spread; dropping eq. (4) changes little because the exact")
	fmt.Println("       wrap check already guards the steady state (it is the sound core)")
}

// e9 — greediness cost: the λ-greedy choice vs the best reachable
// placement script (exhaustive over the same decision tree).
func e9(seeds int) {
	fmt.Println("=== E9 (greediness cost): greedy λ choice vs optimal placement script ===")
	fmt.Printf("%6s %12s %12s %12s %12s %8s\n",
		"seed", "greedy mk", "best mk", "greedy ω", "best ω", "scripts")
	type row struct {
		ok               bool
		greedyMk, bestMk model.Time
		greedyW, bestW   model.Mem
		leaves           int
	}
	// The exhaustive search per seed is the expensive part — fan it out;
	// rows print afterwards in seed order, identical to the serial run.
	rows := campaign.Map(seeds, 0, func(seed int) row {
		ts, err := gen.Generate(gen.Config{Seed: int64(seed), Tasks: 6, Utilization: 1.2,
			Periods: []model.Time{20, 40}})
		if err != nil {
			return row{}
		}
		ar := arch.MustNew(3, 1)
		s, err := sched.NewScheduler(ts, ar).Run()
		if err != nil {
			return row{}
		}
		is := sched.FromSchedule(s)
		b := &core.Balancer{}
		greedy, err := b.Run(is)
		if err != nil {
			return row{}
		}
		bestMk, leaves, err := b.ExhaustiveBest(is, core.ObjectiveMakespan)
		if err != nil {
			return row{}
		}
		bestMem, _, err := b.ExhaustiveBest(is, core.ObjectiveMaxMem)
		if err != nil {
			return row{}
		}
		return row{
			ok:       true,
			greedyMk: greedy.MakespanAfter,
			bestMk:   bestMk.MakespanAfter,
			greedyW:  metrics.MaxMem(greedy.MemAfter),
			bestW:    metrics.MaxMem(bestMem.MemAfter),
			leaves:   leaves,
		}
	})
	matched, runs := 0, 0
	for seed, r := range rows {
		if !r.ok {
			continue
		}
		runs++
		if r.greedyMk == r.bestMk && r.greedyW == r.bestW {
			matched++
		}
		fmt.Printf("%6d %12d %12d %12d %12d %8d\n",
			seed, r.greedyMk, r.bestMk, r.greedyW, r.bestW, r.leaves)
	}
	fmt.Printf("greedy matches the sequential optimum on both objectives in %d/%d runs\n", matched, runs)
	fmt.Println("shape: the λ-greedy loses little against optimal sequential placement —")
	fmt.Println("       the fast heuristic's quality claim (§4) holds on small instances")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
