// Command lbgen synthesises a random strictly periodic task system with
// the paper's structural assumptions (§4: few harmonic periods, harmonic
// dependences) and writes it as JSON to stdout, for consumption by
// lbsim.
//
// Usage:
//
//	lbgen -tasks 200 -seed 7 -util 3.0 -periods 10,20,40 > system.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/gen"
	"repro/internal/model"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbgen: ")

	var (
		tasks   = flag.Int("tasks", 50, "number of tasks")
		seed    = flag.Int64("seed", 1, "random seed")
		util    = flag.Float64("util", 2.0, "target total utilisation ΣEi/Ti")
		periods = flag.String("periods", "", "comma-separated harmonic period ladder (default 10,20,40,80)")
		edge    = flag.Float64("edge", 0.3, "dependence probability between harmonic task pairs")
		indeg   = flag.Int("indeg", 3, "maximum in-degree per task")
		memMin  = flag.Int64("mem-min", 1, "minimum per-task memory")
		memMax  = flag.Int64("mem-max", 8, "maximum per-task memory")
	)
	flag.Parse()

	cfg := gen.Config{
		Seed:        *seed,
		Tasks:       *tasks,
		Utilization: *util,
		EdgeProb:    *edge,
		MaxInDegree: *indeg,
		MemMin:      model.Mem(*memMin),
		MemMax:      model.Mem(*memMax),
	}
	if *periods != "" {
		for _, f := range strings.Split(*periods, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				log.Fatalf("bad period %q: %v", f, err)
			}
			cfg.Periods = append(cfg.Periods, model.Time(v))
		}
	}

	ts, err := gen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.WriteJSON(os.Stdout, ts); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "lbgen: %d tasks, %d dependences, hyper-period %d, utilisation %.2f\n",
		ts.Len(), len(ts.Dependences()), ts.HyperPeriod(), ts.Utilization())
}
