// Command lbcoord is the fault-tolerant coordinator for distributed
// campaigns: it splits one sweep into shard ranges, dispatches them to
// lbfarm -worker processes over HTTP, and merges the collected shard
// journals into artifacts byte-identical to a single-host run.
//
// Usage:
//
//	lbcoord -spec sweep.json -splits 12 -listen :8700
//	lbcoord -tasks 100,200 -util 2,3 -procs 4,8 -seeds 50 -splits 8
//	lbcoord -spec sweep.json -workers host1:9000,host2:9000   # dial directly
//
// Workers join by registering against -listen (the lbfarm -coord flag)
// or are dialed directly from the static -workers list. The campaign
// survives worker failure end to end: ranges lease with a liveness
// timeout, failed ranges retry behind an exponential backoff with
// jitter, stragglers are speculatively re-issued to idle workers (first
// complete journal wins), and the pool may shrink to any non-empty
// subset without changing a byte of the output. Fetched shard journals
// double as the durable lease table — re-running an interrupted
// lbcoord over the same -journal-dir re-issues only the missing
// ranges. See docs/distributed.md.
//
// The whole lifecycle lives in internal/coord (Registry + Session):
// this command is wiring. lbfarmd -fleet embeds the same session per
// submitted campaign — for long-lived fleets, prefer it (see
// docs/service.md).
//
// SIGINT/SIGTERM drain: running jobs are canceled (workers sync their
// journal tails), fetched shards stay on disk, and the process exits
// with code 3; re-run the same command to finish.
//
// GET /v1/status on -listen serves the live lease table, worker pool,
// and fault counters as JSON; GET /metrics serves the same control
// counters plus the merged fleet telemetry snapshot in Prometheus text
// format. Every lease transition is additionally appended to a
// checksummed event log (-eventlog), and the merged fleet snapshot is
// written as a fleetinfo sidecar next to the artifacts. See
// docs/observability.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/coord"
	"repro/internal/model"
	"repro/internal/obs"
)

const exitInterrupted = 3

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbcoord: ")
	var (
		specPath = flag.String("spec", "", "JSON sweep specification (overrides the grid flags)")
		name     = flag.String("name", "campaign", "campaign name (artifact basename)")
		seeds    = flag.Int("seeds", 20, "seeds per grid cell")
		seedBase = flag.Int64("seed-base", 0, "first seed")
		tasks    = flag.String("tasks", "40", "comma-separated task counts")
		util     = flag.String("util", "2.5", "comma-separated target utilisations")
		procs    = flag.String("procs", "4", "comma-separated processor counts")
		policies = flag.String("policies", "lexicographic", "comma-separated policies: lexicographic|ratio|memory-only")
		periods  = flag.String("periods", "", "comma-separated harmonic period ladder (empty = generator default)")
		comm     = flag.Int64("comm", 1, "inter-processor transfer time C")
		anaFlag  = flag.String("analyzers", "", "comma-separated per-trial analyzers ('none' clears the spec's list)")
		phases   = flag.String("analyzer-phases", "", "schedule phases the analyzers run over (after | before,after)")

		listen     = flag.String("listen", "127.0.0.1:0", "serve the control API (worker registration, /v1/status) on this host:port")
		workersCSV = flag.String("workers", "", "comma-separated static worker addresses to dial directly (workers may also register themselves via lbfarm -coord)")
		journalDir = flag.String("journal-dir", "journals", "directory for fetched shard journals — the durable lease table; re-running resumes from it")
		out        = flag.String("out", "artifacts", "artifact directory")
		fleetOn    = flag.Bool("fleetinfo", true, "write the merged fleet telemetry sidecar <out>/<name>"+obs.FleetInfoSuffix+" next to the artifacts")
	)
	opts := coord.DefaultOptions()
	opts.Bind(flag.CommandLine)
	flag.Parse()

	var spec *campaign.Spec
	if *specPath != "" {
		s, err := campaign.LoadSpec(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		spec = s
	} else {
		spec = &campaign.Spec{
			Name:        *name,
			Seeds:       *seeds,
			SeedBase:    *seedBase,
			Tasks:       ints(*tasks),
			Utilization: floats(*util),
			Procs:       ints(*procs),
			Policies:    split(*policies),
			Periods:     times(*periods),
			CommTime:    model.Time(*comm),
		}
	}
	if *anaFlag != "" {
		if *anaFlag == "none" {
			spec.Analyzers = nil
		} else {
			spec.Analyzers = split(*anaFlag)
		}
	}
	if *phases != "" {
		spec.AnalyzerPhases = split(*phases)
	}

	// The registry is seeded with the static workers before the session
	// is built so splits auto-sizing sees the pool; self-registering
	// workers flow in through the served registry routes afterwards.
	reg := coord.NewRegistry(nil, log.Printf)
	for _, addr := range split(*workersCSV) {
		reg.Register(addr, addr)
	}

	sess, err := coord.NewSession(coord.SessionConfig{
		Spec:       spec,
		Options:    opts,
		JournalDir: *journalDir,
		Registry:   reg,
		Logf:       log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if p := sess.EventLogPath(); p != "" {
		log.Printf("event log: %s", p)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: sess.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	log.Printf("coordinating %q: %d ranges; control API on http://%s/v1/status",
		spec.Name, sess.Splits(), ln.Addr())

	ctx, cancel := coord.SignalContext(context.Background())
	defer cancel()
	res, err := sess.Run(ctx)
	sctx, scancel := context.WithTimeout(context.Background(), coord.Drain)
	_ = srv.Shutdown(sctx)
	scancel()
	if errors.Is(err, context.Canceled) {
		st := sess.Stats()
		fmt.Printf("interrupted: %d of %d ranges journaled under %s\nre-run the same command to finish — journaled ranges are not re-dispatched\n",
			st.Journaled, sess.Splits(), *journalDir)
		os.Exit(exitInterrupted)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Table())
	jp, cp, err := res.WriteArtifacts(*out)
	if err != nil {
		log.Fatal(err)
	}
	st := sess.Stats()
	fmt.Printf("artifacts: %s %s\n", jp, cp)
	fmt.Printf("fleet: %d registrations, %d deaths, %d dispatches, %d requeues, %d speculations, %d duplicates discarded\n",
		st.Registered, st.DeadWorkers, st.Dispatches, st.Requeues, st.Speculations, st.DuplicatesDiscarded)

	if *fleetOn {
		fctx, fcancel := context.WithTimeout(context.Background(), opts.RPCTimeout)
		fi := sess.FleetInfo(fctx)
		fcancel()
		fp := filepath.Join(*out, spec.Name+obs.FleetInfoSuffix)
		if err := fi.Write(fp); err != nil {
			log.Printf("writing fleetinfo: %v", err)
		} else {
			fmt.Printf("fleetinfo: %s\n", fp)
		}
	}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func ints(s string) []int {
	var out []int
	for _, p := range split(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			log.Fatalf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out
}

func floats(s string) []float64 {
	var out []float64
	for _, p := range split(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			log.Fatalf("bad float %q", p)
		}
		out = append(out, v)
	}
	return out
}

func times(s string) []model.Time {
	var out []model.Time
	for _, p := range split(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			log.Fatalf("bad period %q", p)
		}
		out = append(out, model.Time(v))
	}
	return out
}
