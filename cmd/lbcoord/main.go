// Command lbcoord is the fault-tolerant coordinator for distributed
// campaigns: it splits one sweep into shard ranges, dispatches them to
// lbfarm -worker processes over HTTP, and merges the collected shard
// journals into artifacts byte-identical to a single-host run.
//
// Usage:
//
//	lbcoord -spec sweep.json -splits 12 -listen :8700
//	lbcoord -tasks 100,200 -util 2,3 -procs 4,8 -seeds 50 -splits 8
//	lbcoord -spec sweep.json -workers host1:9000,host2:9000   # dial directly
//
// Workers join by registering against -listen (the lbfarm -coord flag)
// or are dialed directly from the static -workers list. The campaign
// survives worker failure end to end: ranges lease with a liveness
// timeout, failed ranges retry behind an exponential backoff with
// jitter, stragglers are speculatively re-issued to idle workers (first
// complete journal wins), and the pool may shrink to any non-empty
// subset without changing a byte of the output. Fetched shard journals
// double as the durable lease table — re-running an interrupted
// lbcoord over the same -journal-dir re-issues only the missing
// ranges. See docs/distributed.md.
//
// SIGINT/SIGTERM drain: running jobs are canceled (workers sync their
// journal tails), fetched shards stay on disk, and the process exits
// with code 3; re-run the same command to finish.
//
// GET /v1/status on -listen serves the live lease table, worker pool,
// and fault counters as JSON; GET /metrics serves the same control
// counters plus the merged fleet telemetry snapshot in Prometheus text
// format. Every lease transition is additionally appended to a
// checksummed event log (-eventlog), and the merged fleet snapshot is
// written as a fleetinfo sidecar next to the artifacts. See
// docs/observability.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/coord"
	"repro/internal/model"
	"repro/internal/obs"
)

const exitInterrupted = 3

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbcoord: ")
	var (
		specPath = flag.String("spec", "", "JSON sweep specification (overrides the grid flags)")
		name     = flag.String("name", "campaign", "campaign name (artifact basename)")
		seeds    = flag.Int("seeds", 20, "seeds per grid cell")
		seedBase = flag.Int64("seed-base", 0, "first seed")
		tasks    = flag.String("tasks", "40", "comma-separated task counts")
		util     = flag.String("util", "2.5", "comma-separated target utilisations")
		procs    = flag.String("procs", "4", "comma-separated processor counts")
		policies = flag.String("policies", "lexicographic", "comma-separated policies: lexicographic|ratio|memory-only")
		periods  = flag.String("periods", "", "comma-separated harmonic period ladder (empty = generator default)")
		comm     = flag.Int64("comm", 1, "inter-processor transfer time C")
		anaFlag  = flag.String("analyzers", "", "comma-separated per-trial analyzers ('none' clears the spec's list)")
		phases   = flag.String("analyzer-phases", "", "schedule phases the analyzers run over (after | before,after)")

		splits     = flag.Int("splits", 0, "shard ranges to cut the sweep into (0 = 4 per static worker, minimum 8; more splits than workers lets the pool load-balance and re-issue cheaply)")
		listen     = flag.String("listen", "127.0.0.1:0", "serve the control API (worker registration, /v1/status) on this host:port")
		workersCSV = flag.String("workers", "", "comma-separated static worker addresses to dial directly (workers may also register themselves via lbfarm -coord)")
		journalDir = flag.String("journal-dir", "journals", "directory for fetched shard journals — the durable lease table; re-running resumes from it")
		out        = flag.String("out", "artifacts", "artifact directory")

		liveness    = flag.Duration("liveness", 10*time.Second, "declare a worker dead after this long without a heartbeat or successful poll")
		poll        = flag.Duration("poll", time.Second, "scheduler tick: status polls, dispatch, and straggler checks")
		rpcTimeout  = flag.Duration("rpc-timeout", 5*time.Second, "per-RPC deadline for worker calls")
		maxAttempts = flag.Int("max-attempts", 5, "per-range failure budget before the campaign fails loudly")
		backoffBase = flag.Duration("backoff-base", 500*time.Millisecond, "first retry delay for a failed range (doubles per failure)")
		backoffMax  = flag.Duration("backoff-max", 15*time.Second, "retry delay ceiling")
		jitter      = flag.Float64("backoff-jitter", 0.2, "symmetric random jitter fraction on retry delays")

		eventlogPath = flag.String("eventlog", "", "append every lease transition to this checksummed JSONL event log (default <journal-dir>/<name>"+coord.EventLogSuffix+"; 'none' disables)")
		fleetOn      = flag.Bool("fleetinfo", true, "write the merged fleet telemetry sidecar <out>/<name>"+obs.FleetInfoSuffix+" next to the artifacts")
		scrapeEvery  = flag.Duration("scrape", 5*time.Second, "scrape worker telemetry snapshots this often for the live fleet view (negative disables)")

		noSpec       = flag.Bool("no-speculate", false, "disable speculative re-issue of straggling ranges")
		slowFactor   = flag.Float64("slow-factor", 2, "speculate a range projected past this multiple of the median completed-range duration")
		minCompleted = flag.Int("min-completed", 1, "completed ranges required before the straggler baseline is trusted")
		stallWindow  = flag.Duration("stall-window", 30*time.Second, "speculate a range whose worker's throughput timeline is flat for this long (0 disables the stall rule)")
	)
	flag.Parse()

	var spec *campaign.Spec
	if *specPath != "" {
		s, err := campaign.LoadSpec(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		spec = s
	} else {
		spec = &campaign.Spec{
			Name:        *name,
			Seeds:       *seeds,
			SeedBase:    *seedBase,
			Tasks:       ints(*tasks),
			Utilization: floats(*util),
			Procs:       ints(*procs),
			Policies:    split(*policies),
			Periods:     times(*periods),
			CommTime:    model.Time(*comm),
		}
	}
	if *anaFlag != "" {
		if *anaFlag == "none" {
			spec.Analyzers = nil
		} else {
			spec.Analyzers = split(*anaFlag)
		}
	}
	if *phases != "" {
		spec.AnalyzerPhases = split(*phases)
	}
	if err := spec.Normalize(); err != nil {
		log.Fatal(err)
	}
	trials, err := spec.Trials()
	if err != nil {
		log.Fatal(err)
	}

	static := split(*workersCSV)
	n := *splits
	if n == 0 {
		n = 4 * len(static)
		if n < 8 {
			n = 8
		}
	}
	if n > len(trials) {
		n = len(trials)
	}

	// The event log lives with the shard journals: both are durable
	// fault-tolerance records, and both survive an interrupted run for
	// the re-run to extend.
	var elog *coord.EventLog
	if *eventlogPath != "none" {
		hash, err := spec.Hash()
		if err != nil {
			log.Fatal(err)
		}
		path := *eventlogPath
		if path == "" {
			path = filepath.Join(*journalDir, spec.Name+coord.EventLogSuffix)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			log.Fatal(err)
		}
		elog, err = coord.OpenEventLog(path, spec.Name, hash, n)
		if err != nil {
			log.Fatal(err)
		}
		defer elog.Close()
		log.Printf("event log: %s", path)
	}

	c, err := coord.New(coord.Config{
		Spec:            spec,
		Splits:          n,
		JournalDir:      *journalDir,
		LivenessTimeout: *liveness,
		Poll:            *poll,
		RPCTimeout:      *rpcTimeout,
		MaxAttempts:     *maxAttempts,
		Backoff:         coord.Backoff{Base: *backoffBase, Max: *backoffMax, Jitter: *jitter},
		EventLog:        elog,
		ScrapeInterval:  *scrapeEvery,
		Straggler: coord.StragglerPolicy{
			Disabled:     *noSpec,
			MinCompleted: *minCompleted,
			SlowFactor:   *slowFactor,
			StallWindow:  *stallWindow,
		},
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: c.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	log.Printf("coordinating %q: %d trials in %d ranges; control API on http://%s/v1/status",
		spec.Name, len(trials), n, ln.Addr())
	for _, addr := range static {
		c.Register(addr, addr)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	res, err := c.Run(ctx)
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = srv.Shutdown(sctx)
	scancel()
	if errors.Is(err, context.Canceled) {
		st := c.Stats()
		fmt.Printf("interrupted: %d of %d ranges journaled under %s\nre-run the same command to finish — journaled ranges are not re-dispatched\n",
			st.Journaled, n, *journalDir)
		os.Exit(exitInterrupted)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Table())
	jp, cp, err := res.WriteArtifacts(*out)
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("artifacts: %s %s\n", jp, cp)
	fmt.Printf("fleet: %d registrations, %d deaths, %d dispatches, %d requeues, %d speculations, %d duplicates discarded\n",
		st.Registered, st.DeadWorkers, st.Dispatches, st.Requeues, st.Speculations, st.DuplicatesDiscarded)

	if *fleetOn {
		// One last scrape of the surviving workers, on a fresh context:
		// the run context may already be canceled by the drain path.
		fctx, fcancel := context.WithTimeout(context.Background(), *rpcTimeout)
		fi := c.FleetInfo(fctx)
		fcancel()
		fp := filepath.Join(*out, spec.Name+obs.FleetInfoSuffix)
		if err := fi.Write(fp); err != nil {
			log.Printf("writing fleetinfo: %v", err)
		} else {
			fmt.Printf("fleetinfo: %s\n", fp)
		}
	}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func ints(s string) []int {
	var out []int
	for _, p := range split(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			log.Fatalf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out
}

func floats(s string) []float64 {
	var out []float64
	for _, p := range split(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			log.Fatalf("bad float %q", p)
		}
		out = append(out, v)
	}
	return out
}

func times(s string) []model.Time {
	var out []model.Time
	for _, p := range split(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			log.Fatalf("bad period %q", p)
		}
		out = append(out, model.Time(v))
	}
	return out
}
