package main

// Process-level fault tests: these re-exec the test binary as real
// lbfarm processes (TestMain below) so signals, exit codes, and the
// coordinator/worker HTTP plumbing are exercised exactly as deployed —
// no in-process shortcuts on the paths whose whole point is surviving
// process death.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/coord"
)

// TestMain lets the test binary impersonate the lbfarm CLI: a child
// process started with LBFARM_BE_MAIN=1 runs main() on its argv instead
// of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("LBFARM_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// farm builds a re-exec'd lbfarm process (not started).
func farm(t *testing.T, args ...string) (*exec.Cmd, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "LBFARM_BE_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	return cmd, &stdout, &stderr
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(3 * time.Millisecond)
	}
}

// grid is the shared sweep of these tests: big enough that a signal
// reliably lands mid-run, small enough to finish promptly.
func gridArgs(name, journal, out string) []string {
	return []string{
		"-name", name, "-tasks", "12", "-util", "1.5", "-procs", "2,3",
		"-policies", "lexicographic,memory-only", "-seeds", "400",
		"-workers", "2", "-journal", journal, "-out", out,
	}
}

// TestInterruptDrainsAndResumes: SIGINT mid-sweep must drain (exit code
// 3, journal tail synced, resume command printed), and resuming must
// finish the sweep with artifacts byte-identical to an uninterrupted
// run.
func TestInterruptDrainsAndResumes(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "sig.jsonl")
	outDir := filepath.Join(dir, "out")

	cmd, stdout, stderr := farm(t, gridArgs("sig", jpath, outDir)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the journal to hold the header and at least one row, then
	// interrupt.
	waitUntil(t, "journaled rows", func() bool {
		fi, err := os.Stat(jpath)
		return err == nil && fi.Size() > 512
	})
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != exitInterrupted {
		t.Fatalf("interrupted run: err %v (stderr: %s), want exit code %d", err, stderr, exitInterrupted)
	}
	if !strings.Contains(stdout.String(), "resume with: ") || !strings.Contains(stdout.String(), "-resume") {
		t.Fatalf("no resume command printed; stdout: %s", stdout)
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Fatalf("no drain notice; stderr: %s", stderr)
	}

	// Resume to completion.
	cmd2, _, stderr2 := farm(t, append(gridArgs("sig", jpath, outDir), "-resume")...)
	if err := cmd2.Run(); err != nil {
		t.Fatalf("resumed run: %v (stderr: %s)", err, stderr2)
	}
	if !strings.Contains(stderr2.String(), "resuming") {
		t.Fatalf("resumed run did not pick up the journal; stderr: %s", stderr2)
	}

	// Byte-identity against an uninterrupted run of the same sweep.
	refDir := filepath.Join(dir, "ref")
	cmd3, _, stderr3 := farm(t, gridArgs("sig", filepath.Join(dir, "ref.jsonl"), refDir)...)
	if err := cmd3.Run(); err != nil {
		t.Fatalf("reference run: %v (stderr: %s)", err, stderr3)
	}
	for _, f := range []string{"sig.json", "sig.csv"} {
		got, err := os.ReadFile(filepath.Join(outDir, f))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(refDir, f))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between the resumed and uninterrupted runs", f)
		}
	}
}

// TestDistributedWorkerSIGKILL is the acceptance scenario end to end: a
// 3-worker campaign with one worker SIGKILLed mid-range must finish
// unattended on the survivors and produce a merged result
// byte-identical to a single-host run. Workers are real re-exec'd
// lbfarm -worker processes joining over real HTTP; the coordinator runs
// in-process so the test can watch its lease table.
func TestDistributedWorkerSIGKILL(t *testing.T) {
	spec := &campaign.Spec{
		Name:        "dist",
		Seeds:       120,
		Tasks:       []int{60},
		Utilization: []float64{2.5},
		Procs:       []int{4},
		Policies:    []string{"lexicographic"},
	}
	ref, err := (&campaign.Engine{Workers: 4}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}

	c, err := coord.New(coord.Config{
		Spec:            spec,
		Splits:          4,
		JournalDir:      t.TempDir(),
		LivenessTimeout: 400 * time.Millisecond,
		Poll:            25 * time.Millisecond,
		RPCTimeout:      5 * time.Second,
		MaxAttempts:     8,
		Backoff:         coord.Backoff{Base: 20 * time.Millisecond, Max: 100 * time.Millisecond},
		Straggler:       coord.StragglerPolicy{Disabled: true},
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(c.Handler())
	defer hs.Close()

	workers := map[string]*exec.Cmd{}
	for _, id := range []string{"w1", "w2", "w3"} {
		cmd, _, stderr := farm(t,
			"-worker", "-listen", "127.0.0.1:0", "-coord", hs.URL,
			"-worker-dir", t.TempDir(), "-worker-id", id,
			"-heartbeat", "100ms", "-workers", "1")
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		workers[id] = cmd
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			if t.Failed() {
				t.Logf("worker %s stderr:\n%s", id, stderr)
			}
		})
	}
	waitUntil(t, "3 registered workers", func() bool { return c.Workers() == 3 })

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	done := make(chan struct{})
	var res *campaign.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = c.Run(ctx)
	}()

	// SIGKILL the first worker seen mid-range: it has journaled at least
	// one trial of its lease and is nowhere near done.
	var victim string
	waitUntil(t, "a worker mid-range", func() bool {
		for _, w := range c.Status().Workers {
			if w.State == string(coord.JobRunning) && w.Done >= 1 && w.Done < w.Total {
				victim = w.ID
				return true
			}
		}
		return false
	})
	if err := workers[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	t.Logf("SIGKILLed %s mid-range", victim)

	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	gotJSON, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, refJSON) {
		t.Fatal("merged artifact differs from the single-host run")
	}
	st := c.Stats()
	if st.DeadWorkers != 1 {
		t.Errorf("dead workers = %d, want 1", st.DeadWorkers)
	}
	if st.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1", st.Requeues)
	}
}
