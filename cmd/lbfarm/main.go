// Command lbfarm runs parallel experiment campaigns over the full
// pipeline (generate → schedule → balance → simulate → analyze) using
// the internal/campaign engine. A sweep is the cross product of task
// counts, utilisations, processor counts, and cost policies, with a
// fixed number of seeds per cell; trials are fanned out over a worker
// pool and the aggregates are bit-identical for every worker count.
//
// Usage:
//
//	lbfarm -tasks 100,200 -util 2,3 -procs 4,8 -seeds 50
//	lbfarm -spec sweep.json -workers 16 -out artifacts
//
// Artifacts: <out>/<name>.json (spec + per-cell aggregates + trials)
// and <out>/<name>.csv (long-form aggregate table); the text summary
// goes to stdout. See docs/campaign.md for the schema.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/model"
	"repro/internal/profiling"
)

// flushProfile stops any active pprof capture; every fatal exit routes
// through it so -cpuprofile stays parseable even when the run aborts
// (log.Fatal's os.Exit skips defers).
var flushProfile = func() {}

func fatal(v ...any) {
	flushProfile()
	log.Fatal(v...)
}

func fatalf(format string, v ...any) {
	flushProfile()
	log.Fatalf(format, v...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbfarm: ")
	var (
		specPath = flag.String("spec", "", "JSON sweep specification (overrides the grid flags)")
		name     = flag.String("name", "campaign", "campaign name (artifact basename)")
		seeds    = flag.Int("seeds", 20, "seeds per grid cell")
		seedBase = flag.Int64("seed-base", 0, "first seed")
		tasks    = flag.String("tasks", "40", "comma-separated task counts")
		util     = flag.String("util", "2.5", "comma-separated target utilisations")
		procs    = flag.String("procs", "4", "comma-separated processor counts")
		policies = flag.String("policies", "lexicographic", "comma-separated policies: lexicographic|ratio|memory-only")
		periods  = flag.String("periods", "", "comma-separated harmonic period ladder (empty = generator default)")
		comm     = flag.Int64("comm", 1, "inter-processor transfer time C")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		out      = flag.String("out", "artifacts", "artifact directory")
		noTrials = flag.Bool("table-only", false, "print the table but write no artifacts")
		noMemo   = flag.Bool("no-memo", false, "disable cross-policy prefix memoisation (one generate+schedule per policy cell instead of one per grid point; artifacts are identical either way)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	flushProfile = func() { stopProf() }

	var spec *campaign.Spec
	if *specPath != "" {
		s, err := campaign.LoadSpec(*specPath)
		if err != nil {
			fatal(err)
		}
		spec = s
	} else {
		spec = &campaign.Spec{
			Name:        *name,
			Seeds:       *seeds,
			SeedBase:    *seedBase,
			Tasks:       ints(*tasks),
			Utilization: floats(*util),
			Procs:       ints(*procs),
			Policies:    split(*policies),
			Periods:     times(*periods),
			CommTime:    model.Time(*comm),
		}
		if err := spec.Normalize(); err != nil {
			fatal(err)
		}
	}

	res, err := (&campaign.Engine{Workers: *workers, NoMemo: *noMemo}).Run(spec)
	if err != nil {
		fatal(err)
	}
	if err := stopProf(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	if *noTrials {
		return
	}
	jp, cp, err := res.WriteArtifacts(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifacts: %s %s\n", jp, cp)
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func ints(s string) []int {
	var out []int
	for _, p := range split(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			fatalf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out
}

func floats(s string) []float64 {
	var out []float64
	for _, p := range split(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			fatalf("bad float %q", p)
		}
		out = append(out, v)
	}
	return out
}

func times(s string) []model.Time {
	var out []model.Time
	for _, p := range split(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			fatalf("bad period %q", p)
		}
		out = append(out, model.Time(v))
	}
	return out
}
