// Command lbfarm runs parallel experiment campaigns over the full
// pipeline (generate → schedule → balance → simulate → analyze) using
// the internal/campaign engine. A sweep is the cross product of task
// counts, utilisations, processor counts, and cost policies, with a
// fixed number of seeds per cell; trials are fanned out over a worker
// pool and the aggregates are bit-identical for every worker count.
//
// Usage:
//
//	lbfarm -tasks 100,200 -util 2,3 -procs 4,8 -seeds 50
//	lbfarm -spec sweep.json -workers 16 -out artifacts
//	lbfarm -spec sweep.json -journal journals/sweep.jsonl -resume -progress
//	lbfarm -spec sweep.json -shard 2/3   # then lbmerge the shard journals
//	lbfarm -worker -coord http://head:8700 -worker-dir /scratch/jobs
//	lbfarm -tasks 100 -analyzers schedulability,moves,contention,reuse
//	lbfarm -tasks 100 -analyzers contention,reuse -analyzer-phases before,after
//
// -analyzers attaches named per-trial analyzers (see docs/analyzers.md):
// accepted trials then carry a namespaced extras payload (schedulability
// margins, move-trace summaries, contention stats, memory-reuse
// accounting) that folds into the artifacts as additional metric
// columns. -analyzer-phases before,after additionally runs the
// phase-sensitive analyzers over the initial pre-balancing schedule,
// adding before.<ns>.* and delta.<ns>.* columns that quantify per cell
// what the balancing step bought. The analyzer set and the phase set
// are part of the sweep identity — journals written under one set
// refuse to resume or merge under another.
//
// With -journal, every completed trial is appended to a checksummed
// journal as it finishes, and -resume continues a killed sweep from
// that journal, skipping the journaled trials while still producing
// byte-identical artifacts. -shard i/n runs only the i-th index range
// of the trial grid and writes a shard journal (the artifacts of a
// sharded sweep come from lbmerge). See docs/journal.md.
//
// SIGINT/SIGTERM drain the sweep instead of killing it: in-flight
// trials finish and reach the journal, the journal tail is synced, and
// the process exits with code 3 after printing the resume command.
//
// With -worker, lbfarm serves jobs from an lbcoord coordinator instead
// of running its own sweep: each job carries its spec and shard range,
// is journaled under -worker-dir, and is collected by the coordinator
// over HTTP (the worker also serves /debug/vars on its job port for the
// coordinator's straggler detector). See docs/distributed.md.
//
// Artifacts: <out>/<name>.json (spec + per-cell aggregates + trials)
// and <out>/<name>.csv (long-form aggregate table); the text summary
// goes to stdout. See docs/campaign.md for the schema.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/analyzers"
	"repro/internal/coord"
	"repro/internal/journal"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/progress"
)

// Exit codes beyond the usual 0/1: a drained interrupt is not a
// failure, and scripts (and the resume workflow) need to tell the two
// apart.
const exitInterrupted = 3

// flushProfile stops any active pprof capture; every fatal exit routes
// through it so -cpuprofile stays parseable even when the run aborts
// (log.Fatal's os.Exit skips defers).
var flushProfile = func() {}

func fatal(v ...any) {
	flushProfile()
	log.Fatal(v...)
}

func fatalf(format string, v ...any) {
	flushProfile()
	log.Fatalf(format, v...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbfarm: ")
	var (
		specPath  = flag.String("spec", "", "JSON sweep specification (overrides the grid flags)")
		name      = flag.String("name", "campaign", "campaign name (artifact basename)")
		seeds     = flag.Int("seeds", 20, "seeds per grid cell")
		seedBase  = flag.Int64("seed-base", 0, "first seed")
		tasks     = flag.String("tasks", "40", "comma-separated task counts")
		util      = flag.String("util", "2.5", "comma-separated target utilisations")
		procs     = flag.String("procs", "4", "comma-separated processor counts")
		policies  = flag.String("policies", "lexicographic", "comma-separated policies: lexicographic|ratio|memory-only")
		periods   = flag.String("periods", "", "comma-separated harmonic period ladder (empty = generator default)")
		comm      = flag.Int64("comm", 1, "inter-processor transfer time C")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		out       = flag.String("out", "artifacts", "artifact directory")
		noTrials  = flag.Bool("table-only", false, "print the table but write no artifacts")
		anaFlag   = flag.String("analyzers", "", "comma-separated per-trial analyzers ("+strings.Join(analyzers.Names(), "|")+", or 'none'); overrides the spec's list and becomes part of the sweep identity")
		phaseFlag = flag.String("analyzer-phases", "", "schedule phases the analyzers run over (after | before,after); overrides the spec's list and becomes part of the sweep identity")
		noMemo    = flag.Bool("no-memo", false, "disable cross-policy prefix memoisation (one generate+schedule per policy cell instead of one per grid point; artifacts are identical either way)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile taken after the sweep to this file")

		journalPath = flag.String("journal", "", "append completed trials to this checksummed journal (default with -shard: journals/<name>.shard<i>of<n>.jsonl)")
		resume      = flag.Bool("resume", false, "resume from the journal at -journal, skipping already-journaled trials")
		shardSpec   = flag.String("shard", "", "run only shard i/n of the trial grid (1-based, e.g. 2/3); implies a journal and skips artifact writing")
		progress    = flag.Bool("progress", false, "print a periodic progress line (trials done/total, accept ratio, ETA, stage breakdown) to stderr")

		obsOn       = flag.Bool("obs", true, "collect run telemetry (per-stage latency, event counters) and write the runinfo sidecar; artifacts are byte-identical either way")
		runinfoPath = flag.String("runinfo", "", "write the telemetry sidecar to this path (default <out>/<name>"+obs.RunInfoSuffix+", or next to the shard journal)")
		debugAddr   = flag.String("debug-addr", "", "serve live debug endpoints (expvar /debug/vars with the obs snapshot, net/http/pprof /debug/pprof/) on this host:port; port 0 picks one")

		workerMode = flag.Bool("worker", false, "serve mode: take jobs from an lbcoord coordinator instead of running a sweep (the grid/spec flags are ignored; the spec arrives with each job)")
		listen     = flag.String("listen", "127.0.0.1:0", "worker mode: serve the job API on this host:port (port 0 picks one)")
		advertise  = flag.String("advertise", "", "worker mode: address to register with the coordinator (default: the bound -listen address, with this host's name when unspecified)")
		coordURL   = flag.String("coord", "", "worker mode: coordinator base URL to register with and heartbeat (empty = wait to be dialed directly)")
		workerDir  = flag.String("worker-dir", "worker-journals", "worker mode: directory for per-job shard journals")
		workerID   = flag.String("worker-id", "", "worker mode: stable worker identity (default host:pid)")
		heartbeat  = flag.Duration("heartbeat", 2*time.Second, "worker mode: heartbeat interval to -coord")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	flushProfile = func() { stopProf() }

	if *workerMode {
		var set *obs.Set
		if *obsOn {
			set = obs.NewSet(*workers)
		}
		runWorker(*listen, *advertise, *coordURL, *workerDir, *workerID, *workers, *heartbeat, set)
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
		return
	}

	var spec *campaign.Spec
	if *specPath != "" {
		s, err := campaign.LoadSpec(*specPath)
		if err != nil {
			fatal(err)
		}
		spec = s
	} else {
		spec = &campaign.Spec{
			Name:        *name,
			Seeds:       *seeds,
			SeedBase:    *seedBase,
			Tasks:       ints(*tasks),
			Utilization: floats(*util),
			Procs:       ints(*procs),
			Policies:    split(*policies),
			Periods:     times(*periods),
			CommTime:    model.Time(*comm),
		}
		if err := spec.Normalize(); err != nil {
			fatal(err)
		}
	}
	// -analyzers and -analyzer-phases override whatever the spec carries
	// ('none' clears an inherited analyzer list). Both lists are folded
	// into the spec hash, so a journaled/sharded sweep is bound to its
	// analyzer and phase sets from here on.
	if *anaFlag != "" {
		if *anaFlag == "none" {
			spec.Analyzers = nil
		} else {
			spec.Analyzers = split(*anaFlag)
		}
	}
	if *phaseFlag != "" {
		spec.AnalyzerPhases = split(*phaseFlag)
	}
	if *anaFlag != "" || *phaseFlag != "" {
		if err := spec.Normalize(); err != nil {
			fatal(err)
		}
	}
	// Normalize collapses the phase set to the default when no analyzers
	// are attached (there are no extras to phase); say so rather than
	// letting the flag silently vanish from the sweep identity.
	if *phaseFlag != "" && len(spec.Analyzers) == 0 {
		log.Printf("note: -analyzer-phases %s has no effect without analyzers; running with the default phase set", *phaseFlag)
	}

	trials, err := spec.Trials()
	if err != nil {
		fatal(err)
	}
	shardIdx, shardCnt, err := parseShard(*shardSpec)
	if err != nil {
		fatal(err)
	}
	// -shard 1/1 is the degenerate single-shard run: it still follows
	// the shard workflow (journal written, artifacts left to lbmerge).
	sharded := *shardSpec != ""
	lo, hi := journal.ShardRange(len(trials), shardIdx, shardCnt)

	// A sharded run's product is its journal; default the path so the
	// merge workflow needs no flag bookkeeping.
	path := *journalPath
	if path == "" && sharded {
		path = filepath.Join("journals", fmt.Sprintf("%s.shard%dof%d.jsonl", spec.Name, shardIdx+1, shardCnt))
	}
	if *resume && path == "" {
		fatal("-resume requires -journal (or -shard)")
	}

	// Telemetry. A nil set disables it end to end — every recorder
	// handed out is nil and every observation is a single branch — and
	// the artifacts are byte-identical either way.
	var set *obs.Set
	if *obsOn {
		set = obs.NewSet(*workers)
	}
	if *debugAddr != "" {
		specHash, err := spec.Hash()
		if err != nil {
			fatal(err)
		}
		bound, _, err := obs.Serve(*debugAddr, set.Snapshot, map[string]func() any{
			"obs": func() any { return set.Snapshot() },
			"lbfarm": func() any {
				return map[string]any{"name": spec.Name, "spec_hash": specHash, "trials": hi - lo}
			},
		})
		if err != nil {
			fatal(err)
		}
		log.Printf("debug endpoints on http://%s/debug/vars, /metrics, and /debug/pprof/", bound)
	}

	var (
		w    *journal.Writer
		done []campaign.TrialResult
	)
	if path != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fatal(err)
		}
		hdr, err := journal.NewHeader(spec, shardIdx, shardCnt)
		if err != nil {
			fatal(err)
		}
		if *resume {
			w, done, err = journal.Resume(path, hdr)
			if err != nil {
				fatal(err)
			}
			log.Printf("resuming %s: %d of %d trials already journaled", path, len(done), hi-lo)
			if w.RepairedTorn {
				set.Aux().Add(obs.CounterTornRepairs, 1)
			}
		} else {
			w, err = journal.Create(path, hdr)
			if err != nil {
				fatal(err)
			}
		}
		w.Obs = set.Aux()
	}

	eng := &campaign.Engine{Workers: *workers, NoMemo: *noMemo, Done: done, Lo: lo, Hi: hi, Obs: set}

	// SIGINT/SIGTERM drain: workers stop claiming trials, in-flight
	// trials finish and reach the journal, and the run exits with a
	// distinct code and a ready-to-paste resume command. A second signal
	// falls through to the default handler (immediate death) — that is
	// what the journal's torn-tail recovery is for.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		log.Printf("%v: draining — in-flight trials will finish and reach the journal (repeat to kill)", sig)
		signal.Stop(sigc)
		close(stop)
	}()
	eng.Stop = stop

	// The sink both journals live trials and feeds the progress
	// counters; it runs concurrently on every worker.
	var doneN, okN atomic.Int64
	doneN.Store(int64(len(done)))
	for _, r := range done {
		if r.Outcome == campaign.OutcomeOK {
			okN.Add(1)
		}
	}
	if w != nil || *progress {
		eng.Sink = func(r campaign.TrialResult) error {
			doneN.Add(1)
			if r.Outcome == campaign.OutcomeOK {
				okN.Add(1)
			}
			if w != nil {
				return w.Append(r)
			}
			return nil
		}
	}
	var stopProgress func()
	if *progress {
		stopProgress = startProgress(&doneN, &okN, int64(len(done)), int64(hi-lo), set)
	}

	res, err := eng.Run(spec)
	if stopProgress != nil {
		stopProgress()
	}
	if errors.Is(err, campaign.ErrInterrupted) {
		// Sync the journal tail before saying anything about resuming:
		// the resume promise is only honest once the rows are on disk.
		if w != nil {
			if cerr := w.Close(); cerr != nil {
				fatal(cerr)
			}
		}
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
		if path == "" {
			log.Printf("interrupted after %d of %d trials; nothing was journaled (run with -journal to make interrupted sweeps resumable)", doneN.Load(), hi-lo)
			os.Exit(exitInterrupted)
		}
		fmt.Printf("interrupted: %d of %d trials journaled to %s\nresume with: %s\n",
			doneN.Load(), hi-lo, path, resumeCommand(os.Args, *resume))
		os.Exit(exitInterrupted)
	}
	if err != nil {
		fatal(err)
	}
	if w != nil {
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}
	if err := stopProf(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())

	// The telemetry sidecar goes next to the run's primary product: the
	// shard journal for sharded runs, the artifact pair otherwise. With
	// -table-only there is no product directory, so the sidecar is only
	// written when -runinfo names a path explicitly.
	ripath := *runinfoPath
	shardLabel := ""
	if sharded {
		shardLabel = fmt.Sprintf("%d/%d", shardIdx+1, shardCnt)
		if ripath == "" {
			ripath = strings.TrimSuffix(path, filepath.Ext(path)) + obs.RunInfoSuffix
		}
	} else if ripath == "" && !*noTrials {
		ripath = filepath.Join(*out, spec.Name+obs.RunInfoSuffix)
	}

	if sharded {
		fmt.Printf("shard %d/%d (trials [%d,%d) of %d) journaled to %s — merge the shards with lbmerge\n",
			shardIdx+1, shardCnt, lo, hi, len(trials), path)
		writeRunInfo(ripath, set, spec, shardLabel, hi-lo, res.Workers)
		return
	}
	if *noTrials {
		writeRunInfo(ripath, set, spec, "", hi-lo, res.Workers)
		return
	}
	jp, cp, err := res.WriteArtifacts(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifacts: %s %s\n", jp, cp)
	writeRunInfo(ripath, set, spec, "", hi-lo, res.Workers)
}

// writeRunInfo merges the run's telemetry and writes the sidecar. A nil
// set (-obs=false) or empty path skips it; the sidecar is deliberately
// outside the artifact byte-identity contract (see internal/obs).
func writeRunInfo(path string, set *obs.Set, spec *campaign.Spec, shard string, trials, workers int) {
	if set == nil || path == "" {
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		fatal(err)
	}
	ri := obs.NewRunInfo("lbfarm")
	ri.Name = spec.Name
	ri.SpecHash = hash
	ri.Shard = shard
	ri.Trials = trials
	ri.Workers = workers
	ri.Obs = set.Snapshot()
	ri.Finish(set.Elapsed())
	if err := ri.Write(path); err != nil {
		fatal(err)
	}
	fmt.Printf("runinfo: %s\n", path)
}

// resumeCommand rebuilds the interrupted invocation as a ready-to-paste
// resume: the same argv (spec, grid, journal, and shard flags carry the
// sweep identity) plus -resume when it was not already there.
func resumeCommand(argv []string, alreadyResume bool) string {
	cmd := strings.Join(argv, " ")
	if !alreadyResume {
		cmd += " -resume"
	}
	return cmd
}

// runWorker is the -worker serve mode: stand up a coord.WorkerServer,
// announce to the coordinator (when -coord is set), and serve jobs until
// SIGINT/SIGTERM — then drain the running job (its journal tail synced,
// ready for re-dispatch or resume) and exit cleanly.
func runWorker(listen, advertise, coordURL, dir, id string, workers int, heartbeat time.Duration, set *obs.Set) {
	ws, err := coord.NewWorkerServer(coord.WorkerConfig{
		ID: id, Dir: dir, Workers: workers, Obs: set, Logf: log.Printf,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	addr, err := advertiseAddr(advertise, ln.Addr().String())
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: ws.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()
	log.Printf("worker %s serving jobs on %s (advertised as %s)", ws.ID(), ln.Addr(), addr)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if coordURL != "" {
		go coord.Announce(ctx, coordURL, ws.ID(), addr, heartbeat, func() coord.WorkerStatus {
			st, _ := ws.Status(context.Background(), "")
			return st
		}, log.Printf)
	}
	<-ctx.Done()
	log.Printf("signal: draining — the running job's journal is synced for re-dispatch")
	ws.Drain()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	_ = srv.Shutdown(sctx)
}

// advertiseAddr picks the address workers register under: the explicit
// -advertise value, or the bound listen address with an unspecified host
// (0.0.0.0/::) replaced by this host's name so the coordinator can dial
// back across the cluster.
func advertiseAddr(advertise, bound string) (string, error) {
	if advertise != "" {
		return advertise, nil
	}
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return "", err
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		if host, err = os.Hostname(); err != nil {
			return "", err
		}
	}
	return net.JoinHostPort(host, port), nil
}

// parseShard reads "i/n" (1-based) into a 0-based shard index and the
// shard count; the empty string is the unsharded run 0 of 1.
func parseShard(s string) (idx, count int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	i, n, ok := strings.Cut(s, "/")
	if ok {
		idx, err = strconv.Atoi(strings.TrimSpace(i))
		if err == nil {
			count, err = strconv.Atoi(strings.TrimSpace(n))
		}
	}
	if !ok || err != nil || count < 1 || idx < 1 || idx > count {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n with 1 ≤ i ≤ n, e.g. 2/3)", s)
	}
	return idx - 1, count, nil
}

// startProgress prints a progress line to stderr every few seconds:
// trials done/total, accept ratio over the observed trials, an ETA
// extrapolated from the live completion rate (journal-replayed trials
// are excluded from the rate), and — with telemetry on — the top
// pipeline stages by time share. The formatting and rate arithmetic
// live in internal/progress as pure, unit-tested functions of injected
// counters and channels; this wrapper only owns the ticker and the
// clock. The returned func stops the ticker and waits for the emitter
// goroutine to print its final line and exit, so the last visible line
// is always the completed one (progress.Loop holds the ordering
// guarantee; a stale mid-interval tick can never print after it).
func startProgress(doneN, okN *atomic.Int64, base, total int64, set *obs.Set) func() {
	start := time.Now()
	line := func() string {
		s := progress.Line(doneN.Load(), okN.Load(), base, total, time.Since(start))
		if snap := set.Snapshot(); snap != nil {
			totals := make(map[string]int64, len(snap.Stages))
			for name, st := range snap.Stages {
				totals[name] = st.TotalNS
			}
			if b := progress.Breakdown(totals, 3); b != "" {
				s += ", " + b
			}
		}
		return s
	}
	tick := time.NewTicker(2 * time.Second)
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		progress.Loop(tick.C, quit, line, func(s string) {
			fmt.Fprintf(os.Stderr, "lbfarm: %s\n", s)
		})
	}()
	return func() {
		tick.Stop()
		close(quit)
		<-done
	}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func ints(s string) []int {
	var out []int
	for _, p := range split(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			fatalf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out
}

func floats(s string) []float64 {
	var out []float64
	for _, p := range split(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			fatalf("bad float %q", p)
		}
		out = append(out, v)
	}
	return out
}

func times(s string) []model.Time {
	var out []model.Time
	for _, p := range split(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			fatalf("bad period %q", p)
		}
		out = append(out, model.Time(v))
	}
	return out
}
