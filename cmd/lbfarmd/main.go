// Command lbfarmd is the campaign service: sweeps as a long-lived
// daemon instead of one-shot lbfarm invocations. Clients POST campaign
// specs, the daemon queues and executes them on the deterministic
// engine with journal-backed durability, streams progress over SSE,
// and serves finished artifacts from a content-addressed cache keyed
// by spec hash — re-submitting an identical spec returns the first
// run's bytes with zero trials re-executed. See docs/service.md for
// the endpoint reference.
//
// Usage:
//
//	lbfarmd -listen :8800 -data /var/lib/lbfarmd
//	curl -d @sweep.json http://host:8800/v1/campaigns
//	curl http://host:8800/v1/campaigns/<hash>
//	curl -N http://host:8800/v1/campaigns/<hash>/events
//	curl -O http://host:8800/v1/artifacts/<hash>.json
//
// Durability: every campaign transition is persisted under -data, and
// every running campaign journals each trial. A killed daemon restarts
// into the same -data/-journal-dir and resumes where it stopped —
// queued campaigns re-queue, interrupted ones replay their journals
// and execute only the missing trials, and finished artifact bytes are
// unaffected (resume is byte-identical by construction).
//
// SIGINT/SIGTERM drain: running engines stop claiming trials,
// in-flight trials reach their journals, and the process exits — with
// code 3 when the signal caught campaigns mid-run (re-start to finish
// them), 0 otherwise.
//
// GET /metrics serves lbfarmd_ control series plus the merged
// telemetry of everything running; GET /debug/vars and /debug/pprof/
// are the usual live-debug surface. See docs/observability.md.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/service"
)

const exitInterrupted = 3

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbfarmd: ")
	var (
		listen     = flag.String("listen", "127.0.0.1:8800", "serve the campaign API on this host:port (port 0 picks a free one)")
		dataDir    = flag.String("data", "", "state directory: campaign records and the artifact cache (required)")
		journalDir = flag.String("journal-dir", "", "directory for in-flight trial journals (default <data>/journals)")
		queueDepth = flag.Int("queue", 64, "admission queue capacity; submissions beyond it are refused with 429")
		maxRuns    = flag.Int("runs", 1, "campaigns to execute concurrently")
		workers    = flag.Int("workers", 0, "engine worker pool per campaign (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *dataDir == "" {
		log.Fatal("-data is required")
	}
	if *journalDir == "" {
		*journalDir = filepath.Join(*dataDir, "journals")
	}

	store, err := service.OpenFSStore(*dataDir)
	if err != nil {
		log.Fatal(err)
	}
	d, err := service.New(service.Config{
		Store:      store,
		JournalDir: *journalDir,
		QueueDepth: *queueDepth,
		MaxRuns:    *maxRuns,
		Workers:    *workers,
		Logf:       log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("serving campaign API on %s (data %s)", ln.Addr(), *dataDir)

	d.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%s: draining (in-flight trials reach their journals; re-start to resume)", s)
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}
	_ = srv.Close()
	_ = d.Close()
	if n := d.Interrupted(); n > 0 {
		log.Printf("interrupted %d campaign(s) mid-run; journals are synced, re-start to finish", n)
		os.Exit(exitInterrupted)
	}
}
