// Command lbfarmd is the campaign service: sweeps as a long-lived
// daemon instead of one-shot lbfarm invocations. Clients POST campaign
// specs, the daemon queues and executes them with journal-backed
// durability, streams progress over SSE, and serves finished artifacts
// from a content-addressed cache keyed by spec hash — re-submitting an
// identical spec returns the first run's bytes with zero trials
// re-executed. See docs/service.md for the endpoint reference.
//
// Usage:
//
//	lbfarmd -listen :8800 -data /var/lib/lbfarmd
//	curl -d @sweep.json http://host:8800/v1/campaigns
//	curl http://host:8800/v1/campaigns/<hash>
//	curl -N http://host:8800/v1/campaigns/<hash>/events
//	curl -O http://host:8800/v1/artifacts/<hash>.json
//
// Execution is pluggable. By default campaigns run on the in-process
// engine; with -fleet they dispatch to a registered worker fleet
// through an embedded per-campaign coordinator — the same lifecycle
// cmd/lbcoord wraps — and produce byte-identical artifacts either way:
//
//	lbfarmd -listen :8800 -data /var/lib/lbfarmd -fleet
//	lbfarm -worker -listen :9001 -coord http://daemonhost:8800
//
// Workers register against the daemon itself (or against a separate
// -coord-listen address) and serve every campaign it admits; the
// shared coordinator knobs (-splits, -liveness, -backoff-*, …) carry
// the lbcoord semantics. A running fleet campaign's status report
// embeds the live lease table and worker pool under "fleet", and its
// artifact set gains the merged fleet telemetry as
// <hash>.fleetinfo.json.
//
// Durability: every campaign transition is persisted under -data, and
// every running campaign journals each trial (locally, or as fetched
// shard journals in fleet mode). A killed daemon restarts into the
// same -data/-journal-dir and resumes where it stopped — queued
// campaigns re-queue, interrupted ones replay their journals and
// execute only the missing trials, and finished artifact bytes are
// unaffected (resume is byte-identical by construction).
//
// SIGINT/SIGTERM drain: running engines stop claiming trials,
// in-flight trials reach their journals, and the process exits — with
// code 3 when the signal caught campaigns mid-run (re-start to finish
// them), 0 otherwise.
//
// GET /metrics serves lbfarmd_ control series plus the merged
// telemetry of everything running (and the lbfleet_ families in fleet
// mode); GET /debug/vars and /debug/pprof/ are the usual live-debug
// surface. See docs/observability.md.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/coord"
	"repro/internal/service"
)

const exitInterrupted = 3

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbfarmd: ")
	var (
		listen        = flag.String("listen", "127.0.0.1:8800", "serve the campaign API on this host:port (port 0 picks a free one)")
		dataDir       = flag.String("data", "", "state directory: campaign records and the artifact cache (required)")
		journalDir    = flag.String("journal-dir", "", "directory for in-flight trial journals (default <data>/journals)")
		queueDepth    = flag.Int("queue", 64, "admission queue capacity; submissions beyond it are refused with 429")
		maxRuns       = flag.Int("runs", 1, "campaigns to execute concurrently")
		workers       = flag.Int("workers", 0, "engine worker pool per campaign (0 = GOMAXPROCS divided across -runs)")
		oversubscribe = flag.Bool("oversubscribe", false, "allow -runs × -workers to exceed GOMAXPROCS instead of capping the per-campaign pool")

		fleet       = flag.Bool("fleet", false, "execute campaigns on the registered worker fleet (lbfarm -worker -coord http://this-daemon) instead of the local engine")
		coordListen = flag.String("coord-listen", "", "additionally serve the worker registration API on this separate host:port (default: registration rides -listen)")
	)
	opts := coord.DefaultOptions()
	opts.Bind(flag.CommandLine)
	flag.Parse()
	if *dataDir == "" {
		log.Fatal("-data is required")
	}
	if *journalDir == "" {
		*journalDir = filepath.Join(*dataDir, "journals")
	}

	store, err := service.OpenFSStore(*dataDir)
	if err != nil {
		log.Fatal(err)
	}
	cfg := service.Config{
		Store:              store,
		JournalDir:         *journalDir,
		QueueDepth:         *queueDepth,
		MaxRuns:            *maxRuns,
		Workers:            *workers,
		AllowOversubscribe: *oversubscribe,
		Logf:               log.Printf,
	}

	var reg *coord.Registry
	if *fleet {
		// One fleet, one campaign at a time: a worker runs a single job,
		// so concurrent fleet campaigns would just thrash dispatch
		// refusals (multi-job workers are ROADMAP work).
		if *maxRuns > 1 {
			log.Printf("WARNING: -fleet runs one campaign at a time (workers hold one job each); clamping -runs %d to 1", *maxRuns)
			cfg.MaxRuns = 1
		}
		reg = coord.NewRegistry(nil, log.Printf)
		cfg.Executor = service.NewFleetExecutor(reg, opts, *journalDir, log.Printf)
	}

	d, err := service.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	mode := "local engine"
	if *fleet {
		mode = "worker fleet"
	}
	log.Printf("serving campaign API on %s (data %s, executor: %s)", ln.Addr(), *dataDir, mode)

	// A dedicated registration listener keeps worker traffic off the
	// client-facing port when the two live on different networks.
	var csrv *http.Server
	if *fleet && *coordListen != "" {
		cln, err := net.Listen("tcp", *coordListen)
		if err != nil {
			log.Fatal(err)
		}
		cmux := http.NewServeMux()
		reg.Routes(cmux)
		csrv = &http.Server{Handler: cmux}
		go func() {
			if err := csrv.Serve(cln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("coord-listen serve: %v", err)
			}
		}()
		log.Printf("serving worker registration on %s", cln.Addr())
	}

	d.Start()

	ctx, cancel := coord.SignalContext(context.Background())
	defer cancel()
	select {
	case <-ctx.Done():
		log.Printf("signal: draining (in-flight trials reach their journals; re-start to resume)")
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}
	_ = srv.Close()
	if csrv != nil {
		_ = csrv.Close()
	}
	_ = d.Close()
	if n := d.Interrupted(); n > 0 {
		log.Printf("interrupted %d campaign(s) mid-run; journals are synced, re-start to finish", n)
		os.Exit(exitInterrupted)
	}
}
