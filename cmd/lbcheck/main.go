// Command lbcheck validates an instance-level schedule (CSV, as exported
// by lbsim -csv) against its task system (JSON, as produced by lbgen):
// strict periodicity, non-preemptive non-overlap with wrap-around,
// precedence with communication delays, and optional memory capacity.
//
// Usage:
//
//	lbgen -tasks 60 > sys.json
//	lbsim -input sys.json -procs 5 -csv sched.csv
//	lbcheck -system sys.json -schedule sched.csv -procs 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbcheck: ")
	var (
		system   = flag.String("system", "", "task-system JSON file (required)")
		schedule = flag.String("schedule", "", "schedule CSV file (required)")
		procs    = flag.Int("procs", 4, "number of processors the schedule targets")
		commTime = flag.Int64("comm", 1, "inter-processor communication time C")
		capacity = flag.Int64("cap", 0, "per-processor memory capacity (0 = unlimited)")
	)
	flag.Parse()
	if *system == "" || *schedule == "" {
		flag.Usage()
		os.Exit(2)
	}

	sysFile, err := os.Open(*system)
	if err != nil {
		log.Fatal(err)
	}
	defer sysFile.Close()
	ts, err := model.ReadJSON(sysFile)
	if err != nil {
		log.Fatal(err)
	}

	ar, err := arch.New(*procs, model.Time(*commTime))
	if err != nil {
		log.Fatal(err)
	}
	if *capacity > 0 {
		ar.SetMemCapacity(model.Mem(*capacity))
	}

	schedFile, err := os.Open(*schedule)
	if err != nil {
		log.Fatal(err)
	}
	defer schedFile.Close()
	is, err := trace.ReadCSV(schedFile, ts, ar)
	if err != nil {
		log.Fatal(err)
	}

	errs := is.Validate()
	if len(errs) == 0 {
		fmt.Printf("OK: %d instances on %d processors, makespan %d, memory %s\n",
			ts.TotalInstances(), ar.Procs, is.Makespan(), metrics.FormatMemVector(is.MemVector()))
		return
	}
	fmt.Printf("INVALID: %d violations\n", len(errs))
	for i, e := range errs {
		if i == 20 {
			fmt.Printf("... and %d more\n", len(errs)-20)
			break
		}
		fmt.Println("  " + e.Error())
	}
	os.Exit(1)
}
