// Command lbcheck validates an instance-level schedule (CSV, as exported
// by lbsim -csv) against its task system (JSON, as produced by lbgen):
// strict periodicity, non-preemptive non-overlap with wrap-around,
// precedence with communication delays, and optional memory capacity.
//
// It also inspects the observability sidecars the other tools leave
// behind: `-runinfo` pretty-prints a telemetry sidecar (top stages by
// share, memo hit rate, sink contention), and `-eventlog` verifies a
// coordinator event log's framing checksums and record invariants and
// summarises the fault decisions it records.
//
// Usage:
//
//	lbgen -tasks 60 > sys.json
//	lbsim -input sys.json -procs 5 -csv sched.csv
//	lbcheck -system sys.json -schedule sched.csv -procs 5
//	lbcheck -runinfo artifacts/sweep.runinfo.json
//	lbcheck -eventlog journals/sweep.events.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/coord"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbcheck: ")
	var (
		system   = flag.String("system", "", "task-system JSON file (required unless -runinfo/-eventlog)")
		schedule = flag.String("schedule", "", "schedule CSV file (required unless -runinfo/-eventlog)")
		procs    = flag.Int("procs", 4, "number of processors the schedule targets")
		commTime = flag.Int64("comm", 1, "inter-processor communication time C")
		capacity = flag.Int64("cap", 0, "per-processor memory capacity (0 = unlimited)")

		runinfo  = flag.String("runinfo", "", "pretty-print this runinfo telemetry sidecar and exit")
		eventlog = flag.String("eventlog", "", "verify and summarise this coordinator event log and exit")
	)
	flag.Parse()
	if *runinfo != "" || *eventlog != "" {
		ok := true
		if *runinfo != "" {
			ok = printRunInfo(*runinfo) && ok
		}
		if *eventlog != "" {
			ok = checkEventLog(*eventlog) && ok
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *system == "" || *schedule == "" {
		flag.Usage()
		os.Exit(2)
	}

	sysFile, err := os.Open(*system)
	if err != nil {
		log.Fatal(err)
	}
	defer sysFile.Close()
	ts, err := model.ReadJSON(sysFile)
	if err != nil {
		log.Fatal(err)
	}

	ar, err := arch.New(*procs, model.Time(*commTime))
	if err != nil {
		log.Fatal(err)
	}
	if *capacity > 0 {
		ar.SetMemCapacity(model.Mem(*capacity))
	}

	schedFile, err := os.Open(*schedule)
	if err != nil {
		log.Fatal(err)
	}
	defer schedFile.Close()
	is, err := trace.ReadCSV(schedFile, ts, ar)
	if err != nil {
		log.Fatal(err)
	}

	errs := is.Validate()
	if len(errs) == 0 {
		fmt.Printf("OK: %d instances on %d processors, makespan %d, memory %s\n",
			ts.TotalInstances(), ar.Procs, is.Makespan(), metrics.FormatMemVector(is.MemVector()))
		return
	}
	fmt.Printf("INVALID: %d violations\n", len(errs))
	for i, e := range errs {
		if i == 20 {
			fmt.Printf("... and %d more\n", len(errs)-20)
			break
		}
		fmt.Println("  " + e.Error())
	}
	os.Exit(1)
}

// printRunInfo renders the digest a human wants from a telemetry
// sidecar: where the time went (stages ranked by share of total stage
// time), whether the prefix memo pulled its weight, and how much of
// the sink wait was lock contention rather than journal work.
func printRunInfo(path string) bool {
	ri, err := obs.ReadRunInfo(path)
	if err != nil {
		log.Print(err)
		return false
	}
	fmt.Printf("%s %q spec %.12s", ri.Tool, ri.Name, ri.SpecHash)
	if ri.Shard != "" {
		fmt.Printf(" shard %s", ri.Shard)
	}
	if ri.Trace != "" {
		fmt.Printf(" trace %s span %s", ri.Trace, ri.Span)
	}
	fmt.Printf("\n%d trials, %d workers, elapsed %s\n",
		ri.Trials, ri.Workers, time.Duration(ri.ElapsedNS).Round(time.Millisecond))
	if ri.Obs == nil {
		fmt.Println("no telemetry snapshot (run with -obs)")
		return true
	}
	snap := ri.Obs

	type row struct {
		name string
		st   obs.StageStats
	}
	var rows []row
	var grand int64
	for name, st := range snap.Stages {
		if st.Count > 0 {
			rows = append(rows, row{name, st})
			grand += st.TotalNS
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].st.TotalNS != rows[j].st.TotalNS {
			return rows[i].st.TotalNS > rows[j].st.TotalNS
		}
		return rows[i].name < rows[j].name
	})
	fmt.Println("stages by share of total stage time:")
	for _, r := range rows {
		fmt.Printf("  %-15s %5.1f%%  n=%-8d total %-12s p50 %-10s p99 %-10s max %s\n",
			r.name, 100*float64(r.st.TotalNS)/float64(max(grand, 1)), r.st.Count,
			time.Duration(r.st.TotalNS).Round(time.Microsecond),
			time.Duration(r.st.P50NS).Round(time.Microsecond),
			time.Duration(r.st.P99NS).Round(time.Microsecond),
			time.Duration(r.st.MaxNS).Round(time.Microsecond))
	}

	hits, misses := snap.Counters[obs.CounterMemoHit.String()], snap.Counters[obs.CounterMemoMiss.String()]
	if hits+misses > 0 {
		fmt.Printf("memo: %d hits / %d misses (%.1f%% hit rate)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
	sink := snap.Stages[obs.StageSinkWait.String()]
	app := snap.Stages[obs.StageJournalAppend.String()]
	if sink.Count > 0 {
		gap := sink.TotalNS - app.TotalNS
		fmt.Printf("sink contention: %s waiting beyond the %s of journal appends (%.1f%% of sink time)\n",
			time.Duration(gap).Round(time.Microsecond),
			time.Duration(app.TotalNS).Round(time.Microsecond),
			100*float64(gap)/float64(max(sink.TotalNS, 1)))
	}
	return true
}

// checkEventLog re-reads a coordinator event log under the same
// framing rules the coordinator wrote it with (checksums verified,
// torn tail dropped), re-checks every record invariant, and prints a
// digest of the fault decisions the campaign took.
func checkEventLog(path string) bool {
	hdr, events, err := coord.ReadEventLog(path)
	if err != nil {
		log.Print(err)
		return false
	}
	if err := coord.ValidateEvents(hdr, events); err != nil {
		log.Printf("%s: %v", path, err)
		return false
	}
	fmt.Printf("event log OK: campaign %q spec %.12s, %d ranges, %d events\n",
		hdr.Name, hdr.SpecHash, hdr.Splits, len(events))
	byType := map[coord.EventType]int{}
	ranges := map[int]bool{}
	for _, ev := range events {
		byType[ev.Type]++
		if ev.Range != nil {
			ranges[ev.Range.Index] = true
		}
	}
	var types []string
	for t := range byType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Printf("  %-22s %d\n", t, byType[coord.EventType(t)])
	}
	fmt.Printf("  ranges touched: %d of %d\n", len(ranges), hdr.Splits)
	return true
}
