// Command lbsim runs the full pipeline on a task system: initial
// distributed scheduling (the paper's reference [4] substrate), the
// load-balancing and memory-usage heuristic, validation, and the
// discrete-event execution over one hyper-period.
//
// Usage:
//
//	lbgen -tasks 100 | lbsim -procs 6 -comm 1 -gantt
//	lbsim -input system.json -procs 4 -policy ratio -csv out.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbsim: ")

	var (
		input    = flag.String("input", "-", "task-system JSON file (- = stdin)")
		procs    = flag.Int("procs", 4, "number of processors")
		commTime = flag.Int64("comm", 1, "inter-processor communication time C")
		capacity = flag.Int64("cap", 0, "per-processor memory capacity (0 = unlimited)")
		policy   = flag.String("policy", "lexicographic", "cost policy: lexicographic|ratio|memory-only")
		gantt    = flag.Bool("gantt", false, "print ASCII Gantt charts")
		csvOut   = flag.String("csv", "", "write the balanced schedule as CSV to this file")
		simulate = flag.Bool("sim", true, "run the discrete-event executor")
		overhead = flag.Int64("overhead", -1, "materialise send/receive tasks with this per-task CPU cost (-1 = off)")
		contend  = flag.Bool("contend", false, "model bus contention (exclusive medium slots) instead of latency-only")
	)
	flag.Parse()

	ts, err := readSystem(*input)
	if err != nil {
		log.Fatal(err)
	}
	ar, err := arch.New(*procs, model.Time(*commTime))
	if err != nil {
		log.Fatal(err)
	}
	if *capacity > 0 {
		ar.SetMemCapacity(model.Mem(*capacity))
	}
	ar.ContendedMedia = *contend

	fmt.Printf("system: %d tasks, %d dependences, hyper-period %d, utilisation %.2f\n",
		ts.Len(), len(ts.Dependences()), ts.HyperPeriod(), ts.Utilization())

	if rep, err := analysis.CheckSchedulability(ts, *procs); err != nil {
		log.Fatalf("definitively unschedulable: %v", err)
	} else if len(rep.PairConflicts) > 0 {
		fmt.Printf("note: %d task pairs can never share a processor (gcd windows too small)\n",
			len(rep.PairConflicts))
	}

	initial, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		log.Fatalf("initial scheduling: %v", err)
	}
	if errs := initial.Validate(); len(errs) > 0 {
		log.Fatalf("initial schedule invalid: %v", errs[0])
	}
	fmt.Printf("initial: makespan %d, memory %s\n", initial.Makespan(), metrics.FormatMemVector(initial.MemVector()))
	if *overhead >= 0 {
		cts, err := sched.MaterializeCommTasks(initial, model.Time(*overhead))
		if err != nil {
			log.Fatalf("communication tasks do not fit: %v", err)
		}
		fmt.Printf("comm tasks: %d (send+recv), per-processor CPU overhead %v\n",
			len(cts), sched.CommOverheadVector(ar.Procs, cts))
	}
	if *gantt {
		if err := trace.GanttSchedule(os.Stdout, initial); err != nil {
			log.Fatal(err)
		}
	}

	bal := &core.Balancer{Policy: parsePolicy(*policy)}
	res, err := bal.Run(sched.FromSchedule(initial))
	if err != nil {
		log.Fatalf("balancing: %v", err)
	}
	fmt.Printf("balanced: makespan %d (gain %d), memory %s, %d blocks, %d forced, %d LCM-relaxed%s\n",
		res.MakespanAfter, res.GainTotal(), metrics.FormatMemVector(res.MemAfter),
		len(res.Blocks), res.Forced, res.RelaxedLCM, consNote(res))
	if *gantt {
		if err := trace.Gantt(os.Stdout, res.Schedule); err != nil {
			log.Fatal(err)
		}
	}

	if errs := res.Schedule.Validate(); len(errs) > 0 {
		log.Fatalf("balanced schedule invalid: %v", errs[0])
	}
	fmt.Println("balanced schedule validated")

	if *simulate {
		rep, err := (&sim.Runner{}).Run(res.Schedule)
		if err != nil {
			log.Fatalf("simulation: %v", err)
		}
		fmt.Printf("execution: mean idle %.0f%%\n", rep.IdleRatio*100)
		for p, st := range rep.Procs {
			fmt.Printf("  P%d: busy %d, resident %d, buffer peak %d\n", p+1, st.Busy, st.ResidentMem, st.BufferPeak)
		}
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.CSV(f, res.Schedule); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("schedule written to %s\n", *csvOut)
	}
}

func readSystem(path string) (*model.TaskSet, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return model.ReadJSON(r)
}

func parsePolicy(s string) core.Policy {
	switch s {
	case "lexicographic":
		return core.PolicyLexicographic
	case "ratio":
		return core.PolicyRatio
	case "memory-only":
		return core.PolicyMemoryOnly
	}
	log.Fatalf("unknown policy %q (want lexicographic|ratio|memory-only)", s)
	return 0
}

func consNote(res *core.Result) string {
	if res.ConservativePropagation {
		return " (conservative propagation pass)"
	}
	return ""
}
