package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestGoldenPaperFigures renders the worked example's before/after
// schedules and pins the exact Gantt rows — a regression guard for the
// full pipeline (model → manual schedule → balancer → trace), equivalent
// to figures 3 and 4 of the paper.
func TestGoldenPaperFigures(t *testing.T) {
	ts := repro.NewTaskSet()
	a, _ := ts.AddTask("a", 3, 1, 4)
	b, _ := ts.AddTask("b", 6, 1, 1)
	c, _ := ts.AddTask("c", 6, 1, 1)
	d, _ := ts.AddTask("d", 12, 1, 2)
	e, _ := ts.AddTask("e", 12, 1, 2)
	for _, dep := range [][2]repro.TaskID{{a, b}, {b, c}, {b, d}, {d, e}} {
		if err := ts.AddDependence(dep[0], dep[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Freeze(); err != nil {
		t.Fatal(err)
	}
	ar := repro.MustNewArchitecture(3, 1)
	s, err := repro.NewManualSchedule(ts, ar)
	if err != nil {
		t.Fatal(err)
	}
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 1, 5)
	s.MustPlace(c, 1, 6)
	s.MustPlace(d, 2, 13)
	s.MustPlace(e, 2, 14)

	var before bytes.Buffer
	if err := trace.GanttSchedule(&before, s); err != nil {
		t.Fatal(err)
	}
	wantBefore := []string{
		"P1    a..a..a..a.....",
		"P2    .....bc....bc..",
		"P3    .............de",
	}
	checkRows(t, "figure 3", before.String(), wantBefore)

	res, err := repro.Balance(s)
	if err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	if err := trace.Gantt(&after, res.Schedule); err != nil {
		t.Fatal(err)
	}
	wantAfter := []string{
		"P1    a........abc..",
		"P2    ...abc........",
		"P3    ......a.....de",
	}
	checkRows(t, "figure 4", after.String(), wantAfter)
}

func checkRows(t *testing.T, label, got string, want []string) {
	t.Helper()
	for _, row := range want {
		if !strings.Contains(got, row) {
			t.Errorf("%s: missing row %q in:\n%s", label, row, got)
		}
	}
}

// TestGoldenCSVStable pins the CSV export of the balanced worked example
// (first and last rows), guarding the export format and determinism.
func TestGoldenCSVStable(t *testing.T) {
	s := buildPaperSchedule(t)
	res, err := repro.Balance(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.CSV(&buf, res.Schedule); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+10 { // header + 10 instances
		t.Fatalf("got %d CSV lines, want 11", len(lines))
	}
	if lines[1] != "a,1,1,0,1,4" {
		t.Errorf("first row = %q, want a,1,1,0,1,4", lines[1])
	}
	if lines[10] != "e,1,3,13,14,2" {
		t.Errorf("last row = %q, want e,1,3,13,14,2", lines[10])
	}
}

// TestDeterminism runs the full pipeline twice and requires identical
// results — the library must be reproducible run-to-run.
func TestDeterminism(t *testing.T) {
	run := func() *core.Result {
		ts, err := repro.Generate(repro.GenConfig{Seed: 12, Tasks: 35, Utilization: 2.5})
		if err != nil {
			t.Fatal(err)
		}
		ar := repro.MustNewArchitecture(4, 1)
		s, err := repro.Schedule(ts, ar)
		if err != nil {
			t.Skip(err)
		}
		res, err := repro.Balance(s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.MakespanAfter != r2.MakespanAfter {
		t.Errorf("nondeterministic makespan: %d vs %d", r1.MakespanAfter, r2.MakespanAfter)
	}
	for p := range r1.MemAfter {
		if r1.MemAfter[p] != r2.MemAfter[p] {
			t.Errorf("nondeterministic memory on P%d: %d vs %d", p+1, r1.MemAfter[p], r2.MemAfter[p])
		}
	}
	if len(r1.Moves) != len(r2.Moves) {
		t.Fatalf("nondeterministic move count: %d vs %d", len(r1.Moves), len(r2.Moves))
	}
	for i := range r1.Moves {
		if r1.Moves[i].To != r2.Moves[i].To || r1.Moves[i].NewStart != r2.Moves[i].NewStart {
			t.Errorf("move %d differs between runs", i)
		}
	}
}

func buildPaperSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	ts := repro.NewTaskSet()
	a, _ := ts.AddTask("a", 3, 1, 4)
	b, _ := ts.AddTask("b", 6, 1, 1)
	c, _ := ts.AddTask("c", 6, 1, 1)
	d, _ := ts.AddTask("d", 12, 1, 2)
	e, _ := ts.AddTask("e", 12, 1, 2)
	for _, dep := range [][2]repro.TaskID{{a, b}, {b, c}, {b, d}, {d, e}} {
		if err := ts.AddDependence(dep[0], dep[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Freeze(); err != nil {
		t.Fatal(err)
	}
	ar := repro.MustNewArchitecture(3, 1)
	s, err := repro.NewManualSchedule(ts, ar)
	if err != nil {
		t.Fatal(err)
	}
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 1, 5)
	s.MustPlace(c, 1, 6)
	s.MustPlace(d, 2, 13)
	s.MustPlace(e, 2, 14)
	return s
}
