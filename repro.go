// Package repro is the public facade of the reproduction of Kermia &
// Sorel, "Load Balancing and Efficient Memory Usage for Homogeneous
// Distributed Real-Time Embedded Systems" (SRMPDS/ICPP 2008).
//
// The typical pipeline is:
//
//	ts := repro.NewTaskSet()            // tasks, periods, WCETs, memory
//	a  := repro.NewArchitecture(3, 1)   // 3 processors, comm time C=1
//	s, _ := repro.Schedule(ts, a)       // initial distributed schedule
//	res, _ := repro.Balance(s)          // the paper's heuristic
//	rep, _ := repro.Simulate(res.Schedule)
//
// The facade re-exports the types of the internal packages so downstream
// code only imports "repro"; advanced users can reach the internals
// directly (same module).
package repro

import (
	"repro/internal/arch"
	"repro/internal/blocks"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Re-exported model types.
type (
	// Time is a point or duration on the discrete time axis.
	Time = model.Time
	// Mem is an amount of memory in abstract units.
	Mem = model.Mem
	// TaskID identifies a task inside a TaskSet.
	TaskID = model.TaskID
	// Task is one strictly periodic, non-preemptive task.
	Task = model.Task
	// TaskSet is a collection of tasks and dependences.
	TaskSet = model.TaskSet
	// InstanceID identifies one repetition of a task in the hyper-period.
	InstanceID = model.InstanceID
	// Dependence is a data-flow edge between two tasks.
	Dependence = model.Dependence

	// Architecture is the homogeneous multiprocessor target.
	Architecture = arch.Architecture
	// ProcID identifies a processor.
	ProcID = arch.ProcID

	// InitialSchedule is a task-level schedule (every instance of a task
	// on the same processor), the balancer's input form.
	InitialSchedule = sched.Schedule
	// InstSchedule places every task instance individually, the
	// balancer's output form.
	InstSchedule = sched.InstSchedule

	// Block is a group of dependent co-scheduled instances that the
	// heuristic moves as a unit.
	Block = blocks.Block
	// Balancer runs the load-balancing and memory-usage heuristic.
	Balancer = core.Balancer
	// Result is the outcome of a balancing run.
	Result = core.Result
	// Move records one block relocation.
	Move = core.Move
	// Policy selects the cost-function reading.
	Policy = core.Policy

	// SimReport is the outcome of a discrete-event execution.
	SimReport = sim.Report
	// GenConfig parameterises the random workload generator.
	GenConfig = gen.Config
)

// Policies.
const (
	// PolicyLexicographic reproduces the paper's worked example (default).
	PolicyLexicographic = core.PolicyLexicographic
	// PolicyRatio is equation (5) taken literally.
	PolicyRatio = core.PolicyRatio
	// PolicyMemoryOnly is the Theorem 2 memory-only regime.
	PolicyMemoryOnly = core.PolicyMemoryOnly
)

// NewTaskSet returns an empty task set; add tasks and dependences, then
// Freeze it.
func NewTaskSet() *TaskSet { return model.NewTaskSet() }

// NewArchitecture returns a homogeneous architecture with procs
// processors on one shared medium and communication time c.
func NewArchitecture(procs int, c Time) (*Architecture, error) { return arch.New(procs, c) }

// MustNewArchitecture is NewArchitecture that panics on error.
func MustNewArchitecture(procs int, c Time) *Architecture { return arch.MustNew(procs, c) }

// Schedule runs the rapid initial scheduling heuristic (the substrate the
// paper's reference [4] provides) and returns a complete, validated
// task-level schedule.
func Schedule(ts *TaskSet, a *Architecture) (*InitialSchedule, error) {
	return sched.NewScheduler(ts, a).Run()
}

// NewManualSchedule returns an empty schedule for hand placement (used to
// pin published examples).
func NewManualSchedule(ts *TaskSet, a *Architecture) (*InitialSchedule, error) {
	return sched.NewSchedule(ts, a)
}

// Expand converts a task-level schedule to the instance-level form.
func Expand(s *InitialSchedule) *InstSchedule { return sched.FromSchedule(s) }

// Balance runs the paper's heuristic with the default policy on a
// task-level schedule.
func Balance(s *InitialSchedule) (*Result, error) {
	b := &Balancer{Policy: PolicyLexicographic}
	return b.Run(sched.FromSchedule(s))
}

// BalanceWith runs the heuristic with an explicit configuration.
func BalanceWith(s *InstSchedule, b *Balancer) (*Result, error) { return b.Run(s) }

// Simulate replays an instance-level schedule over one hyper-period and
// reports busy/idle time and buffer high-watermarks.
func Simulate(is *InstSchedule) (*SimReport, error) {
	return (&sim.Runner{}).Run(is)
}

// Generate synthesises a random task system with the paper's structural
// assumptions (few harmonic periods, harmonic dependences).
func Generate(cfg GenConfig) (*TaskSet, error) { return gen.Generate(cfg) }

// BuildBlocks exposes the paper's block construction (§3.1).
func BuildBlocks(is *InstSchedule) []*Block { return blocks.Build(is) }

// CommTask is one materialised send or receive task (paper §3.1).
type CommTask = sched.CommTask

// MaterializeCommTasks expands every inter-processor transfer of a
// schedule into its explicit send/receive task pair, each costing
// overhead processor-time units (0 = pure bookkeeping). It fails when
// the schedule has no room for the communication handling.
func MaterializeCommTasks(s *InitialSchedule, overhead Time) ([]CommTask, error) {
	return sched.MaterializeCommTasks(s, overhead)
}

// InstanceDeps enumerates the producer instances that must complete
// before instance (dst, k) may start, under the paper's multi-rate
// semantics (figure 1).
func InstanceDeps(ts *TaskSet, dst TaskID, k int) []InstanceID {
	return model.InstanceDeps(ts, dst, k)
}

// Compatible reports whether two strictly periodic non-preemptive tasks
// can share a processor without ever overlapping (the closed-form test
// of the paper's reference [1]).
func Compatible(si, ti, ei, sj, tj, ej Time) bool {
	return model.Compatible(si, ti, ei, sj, tj, ej)
}
