package campaign

import (
	"math"
	"sort"
	"sync"
)

// Agg is a thread-safe streaming aggregator. Workers call Observe as
// trials finish — in whatever order the scheduler produces — and
// Finalize folds the samples in trial-index order, so the resulting
// Stats are bit-identical for every worker count (floating-point
// addition is not associative; a fixed fold order sidesteps that).
type Agg struct {
	mu      sync.Mutex
	samples []sample
}

type sample struct {
	idx int
	v   float64
}

// Observe records value v for trial index idx. Safe for concurrent use.
func (a *Agg) Observe(idx int, v float64) {
	a.mu.Lock()
	a.samples = append(a.samples, sample{idx, v})
	a.mu.Unlock()
}

// Stats summarises one metric over the trials of a cell. Percentiles
// use the nearest-rank definition on the value-sorted samples.
type Stats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"` // population standard deviation
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Finalize computes the deterministic summary. The zero Stats is
// returned for an empty aggregator.
func (a *Agg) Finalize() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.samples)
	if n == 0 {
		return Stats{}
	}
	sort.Slice(a.samples, func(i, j int) bool { return a.samples[i].idx < a.samples[j].idx })

	var sum float64
	for _, s := range a.samples {
		sum += s.v
	}
	mean := sum / float64(n)
	var sq float64
	for _, s := range a.samples {
		d := s.v - mean
		sq += d * d
	}

	vals := make([]float64, n)
	for i, s := range a.samples {
		vals[i] = s.v
	}
	sort.Float64s(vals)

	return Stats{
		Count: n,
		Mean:  mean,
		Std:   math.Sqrt(sq / float64(n)),
		Min:   vals[0],
		Max:   vals[n-1],
		P50:   percentile(vals, 0.50),
		P90:   percentile(vals, 0.90),
		P99:   percentile(vals, 0.99),
	}
}

// percentile returns the nearest-rank percentile of the sorted slice:
// the smallest value with at least q·n of the samples at or below it.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// CellAggregate is the per-cell summary emitted into artifacts.
type CellAggregate struct {
	Cell        string           `json:"cell"`
	Trials      int              `json:"trials"`
	Accepted    int              `json:"accepted"`
	AcceptRatio float64          `json:"accept_ratio"`
	Outcomes    map[string]int   `json:"outcomes"`
	Metrics     map[string]Stats `json:"metrics"`
}

// collector streams trial results into per-cell aggregators.
type collector struct {
	mu    sync.Mutex
	order []string
	cells map[string]*cellAcc
}

type cellAcc struct {
	trials   int
	accepted int
	outcomes map[string]int
	aggs     map[string]*Agg
}

func newCollector(cellOrder []string) *collector {
	c := &collector{order: cellOrder, cells: make(map[string]*cellAcc, len(cellOrder))}
	for _, k := range cellOrder {
		c.cells[k] = &cellAcc{outcomes: map[string]int{}, aggs: map[string]*Agg{}}
	}
	return c
}

// observe streams one finished trial. Counter updates and aggregator
// lookups happen under the collector lock; the samples themselves go
// through each Agg's own lock, outside it.
func (c *collector) observe(r TrialResult) {
	type obs struct {
		agg *Agg
		v   float64
	}
	var pending []obs
	metrics := r.metrics()

	c.mu.Lock()
	acc := c.cells[r.Cell]
	acc.trials++
	acc.outcomes[r.Outcome]++
	if r.Outcome == OutcomeOK {
		acc.accepted++
		pending = make([]obs, 0, len(metrics))
		for name, v := range metrics {
			agg := acc.aggs[name]
			if agg == nil {
				agg = &Agg{}
				acc.aggs[name] = agg
			}
			pending = append(pending, obs{agg, v})
		}
	}
	c.mu.Unlock()

	for _, o := range pending {
		o.agg.Observe(r.Index, o.v)
	}
}

// finalize folds every cell in enumeration order.
func (c *collector) finalize() []CellAggregate {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CellAggregate, 0, len(c.order))
	for _, k := range c.order {
		acc := c.cells[k]
		ca := CellAggregate{
			Cell:     k,
			Trials:   acc.trials,
			Accepted: acc.accepted,
			Outcomes: acc.outcomes,
			Metrics:  make(map[string]Stats, len(acc.aggs)),
		}
		if acc.trials > 0 {
			ca.AcceptRatio = float64(acc.accepted) / float64(acc.trials)
		}
		for name, agg := range acc.aggs {
			ca.Metrics[name] = agg.Finalize()
		}
		out = append(out, ca)
	}
	return out
}
