package campaign

import "fmt"

// Fold rebuilds the full campaign Result from already-computed trial
// rows — the multi-host merge path. Rows may arrive in any order (a
// journal holds them in completion order; concatenated shards hold
// them range by range); the fold is the same index-ordered one the
// live engine uses, so the returned Result marshals byte-for-byte
// identically to a single-host Engine.Run of the same spec.
//
// Coverage is validated strictly: every trial of the spec's
// enumeration must be present exactly once, each row must agree with
// the enumeration on cell and seed, and each accepted row must carry
// exactly the extras the spec's analyzer and phase sets produce
// (rejected rows none). Any gap, duplicate, or mismatch is an error —
// a merge must never quietly publish aggregates over a partial sweep,
// nor extras columns covering only part of one.
func Fold(spec *Spec, rows []TrialResult) (*Result, error) {
	trials, err := spec.Trials()
	if err != nil {
		return nil, err
	}
	if len(rows) != len(trials) {
		return nil, fmt.Errorf("campaign: fold of %d rows over a %d-trial spec", len(rows), len(trials))
	}
	set, err := spec.AnalyzerSet()
	if err != nil {
		return nil, err
	}
	phases, err := spec.PhaseSet()
	if err != nil {
		return nil, err
	}
	expectedExtras := set.PhasedKeys(phases)
	sorted := make([]TrialResult, len(trials))
	seen := make([]bool, len(trials))
	coll := newCollector(cellOrder(trials))
	for _, r := range rows {
		if err := matchTrial(trials, 0, len(trials), r); err != nil {
			return nil, err
		}
		if err := matchExtras(expectedExtras, r); err != nil {
			return nil, err
		}
		if seen[r.Index] {
			return nil, fmt.Errorf("campaign: duplicate row for trial %d", r.Index)
		}
		seen[r.Index] = true
		sorted[r.Index] = r
		coll.observe(r)
	}
	return &Result{
		Spec:   *spec,
		Cells:  coll.finalize(),
		Trials: sorted,
	}, nil
}
