package campaign

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(0) … fn(n−1) across a pool of worker goroutines and
// returns the results in index order. workers ≤ 0 means GOMAXPROCS.
// fn must be safe for concurrent invocation; each index is claimed by
// exactly one worker via an atomic counter, so the result slice — and
// anything folded from it in index order — is identical for every
// worker count.
//
// This is the sharding primitive under Engine.Run, and the drop-in
// replacement for the serial per-seed loops the evaluation binaries
// used to hand-roll.
func Map[T any](n, workers int, fn func(int) T) []T {
	return mapWorkers(n, workers, func(_, i int) T { return fn(i) })
}

// mapWorkers is Map with the claiming worker's pool index (0-based,
// stable for the worker's lifetime) passed alongside each work index —
// the seam that lets the engine hand every worker its own telemetry
// recorder without a lock or a sync.Pool on the claim path. Which
// worker claims which index is scheduler-dependent; nothing
// deterministic may depend on w.
func mapWorkers[T any](n, workers int, fn func(w, i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	return out
}
