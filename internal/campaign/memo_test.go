package campaign

import (
	"bytes"
	"testing"
)

// TestMemoDeterminism pins the memoisation contract: a memoised campaign
// produces byte-identical JSON and CSV artifacts to the unmemoised path,
// at 1, 2, and 8 workers. Running the suite under -race additionally
// checks that concurrent trials sharing a prefix entry never touch
// shared mutable state.
func TestMemoDeterminism(t *testing.T) {
	spec := smokeSpec()
	ref, err := (&Engine{Workers: 1, NoMemo: true}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := ref.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		res, err := (&Engine{Workers: workers}).Run(smokeSpec())
		if err != nil {
			t.Fatalf("memoised workers=%d: %v", workers, err)
		}
		data, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refJSON, data) {
			t.Fatalf("memoised workers=%d: JSON differs from unmemoised serial run (%d vs %d bytes)",
				workers, len(data), len(refJSON))
		}
		var csv bytes.Buffer
		if err := res.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refCSV.Bytes(), csv.Bytes()) {
			t.Fatalf("memoised workers=%d: CSV differs from unmemoised serial run", workers)
		}
	}
}

// TestMemoEviction checks that prefix entries are dropped once every
// sharing trial has run — the cache must not retain a whole sweep's
// schedules.
func TestMemoEviction(t *testing.T) {
	spec := smokeSpec()
	trials, err := spec.Trials()
	if err != nil {
		t.Fatal(err)
	}
	cache := newPrefixCache(trials)
	distinct := len(cache.entries)
	if distinct == 0 {
		t.Fatal("no prefix entries")
	}
	// Each (seed, procs) point is shared by the two policies of the
	// smoke spec: half as many prefixes as trials.
	if want := len(trials) / 2; distinct != want {
		t.Fatalf("distinct prefixes: %d, want %d", distinct, want)
	}
	for _, tr := range trials {
		cache.runTrial(tr, nil)
	}
	if n := len(cache.entries); n != 0 {
		t.Fatalf("%d prefix entries survived the sweep, want 0", n)
	}
}
