// Package campaign is a deterministic, parallel experiment-campaign
// engine for the reproduction's evaluation pipeline. A campaign fans a
// sweep specification — the cross product of generator configurations
// (task counts × utilisations), architectures (processor counts), cost
// policies, and random seeds — out over a pool of worker goroutines.
// Each trial runs the full pipeline
//
//	generate → schedule → balance → simulate (before/after) → analyze
//
// and streams its result into thread-safe aggregators (mean, stddev,
// min, max, and percentiles per metric, plus acceptance accounting).
//
// Determinism: every trial is identified by its index in the
// enumeration order of the spec's grid, carries its own seed, and
// touches no shared mutable state while running. Aggregators record
// (index, value) pairs and sort by index before folding, so the
// aggregates — and the emitted JSON/CSV artifacts — are bit-identical
// regardless of the worker count. This is what lets `lbfarm -workers N`
// scale with the hardware without perturbing any published number.
//
// The subsystem serves the paper's own scaling claim (Kermia & Sorel
// validate the heuristic on "several thousands of tasks and tens of
// processors"): sweeps that used to run serially in cmd/lbbench now
// run one trial per worker, embarrassingly parallel.
package campaign

import (
	"runtime"
	"time"
)

// Run executes the spec on GOMAXPROCS workers. It is the convenience
// entry point; use an explicit Engine to control the worker count.
func Run(spec *Spec) (*Result, error) {
	return (&Engine{Workers: runtime.GOMAXPROCS(0)}).Run(spec)
}

// Result is the outcome of one campaign: the effective (normalised)
// spec, every trial in enumeration order, and the per-cell aggregates.
// Workers and Elapsed describe the run itself and are deliberately kept
// out of the JSON artifact so that artifacts from different worker
// counts and machines compare byte-for-byte.
type Result struct {
	Spec    Spec            `json:"spec"`
	Cells   []CellAggregate `json:"cells"`
	Trials  []TrialResult   `json:"trials"`
	Workers int             `json:"-"`
	Elapsed time.Duration   `json:"-"`
}
