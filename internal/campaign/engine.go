package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/campaign/analyzers"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Trial outcomes. A trial that fails before producing a balanced,
// simulated schedule is rejected with the stage that refused it; only
// OutcomeOK trials feed the metric aggregators. The acceptance ratio is
// itself a published quantity (random instances are not always
// schedulable on the given architecture).
const (
	OutcomeOK            = "ok"
	OutcomeGenError      = "gen-error"
	OutcomeArchError     = "arch-error"
	OutcomeUnschedulable = "unschedulable"
	OutcomeBalanceError  = "balance-error"
	OutcomeSimError      = "sim-error"
)

// ErrInterrupted is returned by Engine.Run when the Stop channel closed
// before every trial completed. The run drained cleanly: no trial was
// abandoned mid-flight, every finished trial reached the sink (and so
// the journal), and the sweep is resumable from that journal. Callers
// distinguish it from real failures with errors.Is.
var ErrInterrupted = errors.New("campaign: run interrupted")

// TrialResult is the analyzable outcome of one pipeline run. The
// metric fields are emitted unconditionally — a measured zero (Gain=0
// is common) must stay distinguishable from "not measured"; consumers
// use Outcome, not field presence, to tell accepted trials apart.
type TrialResult struct {
	Index   int    `json:"index"`
	Cell    string `json:"cell"`
	Seed    int64  `json:"seed"`
	Outcome string `json:"outcome"`

	Gain           model.Time `json:"gain"`
	MakespanBefore model.Time `json:"makespan_before"`
	MakespanAfter  model.Time `json:"makespan_after"`
	MaxMemBefore   model.Mem  `json:"max_mem_before"`
	MaxMemAfter    model.Mem  `json:"max_mem_after"`
	MemImbalBefore float64    `json:"mem_imbal_before"`
	MemImbalAfter  float64    `json:"mem_imbal_after"`
	LoadImbalAfter float64    `json:"load_imbal_after"`
	IdleBefore     float64    `json:"idle_before"`
	IdleAfter      float64    `json:"idle_after"`

	// Reuse-vs-paper memory accounting (internal/sim/reuse.go), totalled
	// across processors on the balanced schedule.
	PaperMem     model.Mem `json:"paper_mem"`
	ReuseMem     model.Mem `json:"reuse_mem"`
	ReuseSavings float64   `json:"reuse_savings"`

	Moves      int `json:"moves"`
	Blocks     int `json:"blocks"`
	Forced     int `json:"forced"`
	RelaxedLCM int `json:"relaxed_lcm"`

	// Extras is the namespaced analyzer payload of an accepted trial
	// (see internal/campaign/analyzers): one entry per key of every
	// analyzer named by the spec — and, when the spec enables the
	// before phase, the before.<ns>.* and delta.<ns>.* siblings of
	// every phase-sensitive key — nil when the spec names no analyzers
	// or the trial was rejected. Keys carry their analyzer's namespace
	// ("schedulability.util_margin"), so they never collide with the
	// headline metric names, and the whole map folds through the same
	// ordered aggregators into the artifacts.
	Extras map[string]float64 `json:"extras,omitempty"`
}

// metrics returns the aggregated quantities of an accepted trial,
// keyed by the names that appear in artifacts.
func (r TrialResult) metrics() map[string]float64 {
	if r.Outcome != OutcomeOK {
		return nil
	}
	m := map[string]float64{
		"gain":             float64(r.Gain),
		"makespan_before":  float64(r.MakespanBefore),
		"makespan_after":   float64(r.MakespanAfter),
		"max_mem_before":   float64(r.MaxMemBefore),
		"max_mem_after":    float64(r.MaxMemAfter),
		"mem_imbal_before": r.MemImbalBefore,
		"mem_imbal_after":  r.MemImbalAfter,
		"load_imbal_after": r.LoadImbalAfter,
		"idle_before":      r.IdleBefore,
		"idle_after":       r.IdleAfter,
		"paper_mem":        float64(r.PaperMem),
		"reuse_mem":        float64(r.ReuseMem),
		"reuse_savings":    r.ReuseSavings,
		"moves":            float64(r.Moves),
		"blocks":           float64(r.Blocks),
		"forced":           float64(r.Forced),
		"relaxed_lcm":      float64(r.RelaxedLCM),
	}
	for k, v := range r.Extras {
		m[k] = v
	}
	return m
}

// Engine runs campaigns over a fixed-size worker pool.
type Engine struct {
	// Workers is the pool size; ≤ 0 means GOMAXPROCS.
	Workers int

	// NoMemo disables cross-policy prefix memoisation. By default the
	// engine computes the generate→schedule→simulate prefix once per
	// (generator config, processors, comm time) and hands every policy
	// cell sharing it a cheap clone; trials then differ only in the
	// balancing suffix. The memoised and unmemoised paths produce
	// byte-identical artifacts (the prefix computation is deterministic
	// and clones share nothing mutable) — the determinism test pins this.
	NoMemo bool

	// Sink, when non-nil, receives every live-completed trial the moment
	// it finishes — in completion order, not index order, and possibly
	// from several workers at once (the sink must be safe for concurrent
	// use). Replayed Done rows are never re-emitted. A sink error aborts
	// the sweep: workers stop claiming trials and Run returns the first
	// error, so a failing journal never silently degrades to an
	// unjournaled run.
	Sink func(TrialResult) error

	// Done holds already-completed rows (typically recovered from a
	// journal). Their trials are not re-run; the rows are folded into
	// the result in index order alongside the live ones, so a resumed
	// run produces byte-identical artifacts to an uninterrupted one.
	// Rows must belong to the [Lo,Hi) range and match the spec's
	// enumeration (index/cell/seed agreement is validated).
	Done []TrialResult

	// Stop, when non-nil, is the drain signal: once it closes, workers
	// stop claiming new trials, in-flight trials run to completion (and
	// reach the Sink, so a journaling run loses nothing), and Run
	// returns ErrInterrupted instead of a Result. This is the seam the
	// CLIs hang SIGINT/SIGTERM handling on and the worker serve mode
	// uses for job cancellation.
	Stop <-chan struct{}

	// Lo and Hi restrict the run to the half-open trial-index range
	// [Lo,Hi) of the spec's enumeration — the multi-host sharding hook.
	// Hi = 0 means "through the last trial". The default zero values
	// run the whole grid.
	Lo, Hi int

	// Obs, when non-nil, receives run telemetry: per-stage latency
	// observations on each worker's own recorder, trial outcome and
	// memo-cache counters, and one throughput-timeline tick per live
	// trial. Telemetry is strictly outside the byte-identity contract —
	// the Result (and the artifacts folded from it) is bit-identical
	// with Obs attached or nil, pinned by TestObsByteIdentity — and the
	// recorders are lock-free, so attaching it costs a few clock reads
	// and atomic adds per trial.
	Obs *obs.Set
}

// Run executes every trial of the spec (minus replayed Done rows,
// within [Lo,Hi)) and returns the deterministic result. The spec is
// normalised in place.
func (e *Engine) Run(spec *Spec) (*Result, error) {
	trials, err := spec.Trials()
	if err != nil {
		return nil, err
	}
	lo, hi := e.Lo, e.Hi
	if hi == 0 {
		hi = len(trials)
	}
	if lo < 0 || hi > len(trials) || lo >= hi {
		return nil, fmt.Errorf("campaign: shard range [%d,%d) outside trial range [0,%d)", lo, hi, len(trials))
	}
	shard := trials[lo:hi]
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	set, err := spec.AnalyzerSet()
	if err != nil {
		return nil, err
	}
	phases, err := spec.PhaseSet()
	if err != nil {
		return nil, err
	}
	expectedExtras := set.PhasedKeys(phases)

	// Seat the replayed rows and work out what is still pending.
	results := make([]TrialResult, len(shard))
	replayed := make([]bool, len(shard))
	for _, r := range e.Done {
		if err := matchTrial(trials, lo, hi, r); err != nil {
			return nil, err
		}
		if err := matchExtras(expectedExtras, r); err != nil {
			return nil, err
		}
		if replayed[r.Index-lo] {
			return nil, fmt.Errorf("campaign: duplicate completed row for trial %d", r.Index)
		}
		results[r.Index-lo] = r
		replayed[r.Index-lo] = true
	}
	pending := make([]Trial, 0, len(shard)-len(e.Done))
	for i, t := range shard {
		if !replayed[i] {
			pending = append(pending, t)
		}
	}

	// The memo cache is counted over the pending trials only: replayed
	// rows never consume a prefix, so counting them would strand cache
	// entries (and a resumed process has no memo state to reuse anyway —
	// memo entries are per-process).
	var cache *prefixCache
	if !e.NoMemo {
		cache = newPrefixCache(pending)
	}

	coll := newCollector(cellOrder(shard))
	for i := range results {
		if replayed[i] {
			coll.observe(results[i])
		}
	}

	var (
		aborted atomic.Bool
		errOnce sync.Once
		runErr  error
	)
	// fail records the first error and stops further trials from being
	// claimed; the errors name the trial, not the Map fan-out index —
	// with Done replay rows the two disagree, and the trial index is
	// what -resume diagnostics need.
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
		aborted.Store(true)
	}
	e.Obs.Aux().Add(obs.CounterReplayedTrials, int64(len(e.Done)))
	start := time.Now()
	var interrupted atomic.Bool
	live := mapWorkers(len(pending), workers, func(w, i int) TrialResult {
		if aborted.Load() {
			return TrialResult{Index: -1}
		}
		if e.Stop != nil {
			select {
			case <-e.Stop:
				interrupted.Store(true)
				return TrialResult{Index: -1}
			default:
			}
		}
		rec := e.Obs.Recorder(w)
		var r TrialResult
		var err error
		if cache != nil {
			r, err = cache.runTrial(pending[i], rec)
		} else {
			r, err = runTrial(pending[i], rec)
		}
		if err != nil {
			// An analyzer produced an invalid (non-finite) extra: abort
			// the sweep now, while the message can still name the trial,
			// instead of letting the value poison the artifact encoding
			// after every other trial has run.
			fail(fmt.Errorf("trial %d: %w", pending[i].Index, err))
			return TrialResult{Index: -1}
		}
		if r.Outcome == OutcomeOK {
			rec.Add(obs.CounterTrialsAccepted, 1)
		} else {
			rec.Add(obs.CounterTrialsRejected, 1)
		}
		coll.observe(r)
		if e.Sink != nil {
			t0 := rec.Clock()
			err := e.Sink(r)
			rec.Stamp(obs.StageSinkWait, t0)
			if err != nil {
				fail(fmt.Errorf("sink: trial %d: %w", r.Index, err))
			}
		}
		e.Obs.Tick()
		return r
	})
	if runErr != nil {
		return nil, fmt.Errorf("campaign: %w", runErr)
	}
	if interrupted.Load() {
		return nil, ErrInterrupted
	}
	for _, r := range live {
		results[r.Index-lo] = r
	}
	foldRec := e.Obs.Aux()
	t0 := foldRec.Clock()
	cells := coll.finalize()
	foldRec.Stamp(obs.StageFold, t0)
	return &Result{
		Spec:    *spec,
		Cells:   cells,
		Trials:  results,
		Workers: workers,
		Elapsed: time.Since(start),
	}, nil
}

// matchTrial checks that row r names a real trial of the enumeration,
// inside [lo,hi), and agrees with it on cell and seed — the cheap
// beyond-the-hash guard against folding a journal row into the wrong
// spec.
func matchTrial(trials []Trial, lo, hi int, r TrialResult) error {
	if r.Index < lo || r.Index >= hi {
		return fmt.Errorf("campaign: completed row index %d outside shard range [%d,%d)", r.Index, lo, hi)
	}
	t := trials[r.Index]
	if r.Cell != t.Cell || r.Seed != t.Gen.Seed {
		return fmt.Errorf("campaign: completed row %d (cell %q, seed %d) does not match spec enumeration (cell %q, seed %d)",
			r.Index, r.Cell, r.Seed, t.Cell, t.Gen.Seed)
	}
	return nil
}

// matchExtras checks that a replayed row's extras payload is exactly
// what the spec's analyzer and phase sets would have produced: every
// expected key present on an accepted row, nothing on a rejected one,
// and no strays either way. A mismatch means the row was produced
// under a different analyzer set or phase set (or tampered with) —
// folding it would publish artifacts whose extras columns silently
// cover only part of the sweep.
func matchExtras(expected []string, r TrialResult) error {
	if r.Outcome != OutcomeOK {
		if len(r.Extras) != 0 {
			return fmt.Errorf("campaign: completed row %d was rejected (%s) but carries %d extras", r.Index, r.Outcome, len(r.Extras))
		}
		return nil
	}
	for _, k := range expected {
		if _, ok := r.Extras[k]; !ok {
			return fmt.Errorf("campaign: completed row %d is missing extra %q — journaled under a different analyzer set or phase set?", r.Index, k)
		}
	}
	if len(r.Extras) != len(expected) {
		return fmt.Errorf("campaign: completed row %d carries %d extras, the spec's analyzers produce %d — journaled under a different analyzer set or phase set?",
			r.Index, len(r.Extras), len(expected))
	}
	return nil
}

// trialPrefix is the policy-independent front of the pipeline: the
// generated system scheduled by the greedy substrate and simulated
// once, plus the policy-independent extras — the prefix-only analyzer
// values and, with the before phase enabled, the before.* values of
// the phase-sensitive analyzers over the initial schedule (computed
// here so the policy cells sharing a memoised prefix share one screen
// and one before-phase pass). A nil schedule carries the failure
// outcome instead; err carries an analyzer validation failure, which
// aborts the sweep rather than rejecting the trial.
type trialPrefix struct {
	is        *sched.InstSchedule
	repBefore *sim.Report
	preExtras map[string]float64 // read-only once published
	outcome   string             // "" when the prefix succeeded
	err       error              // non-finite analyzer extra in the prefix phases
}

// runPrefix computes generate → schedule → simulate(before) for one
// trial, plus the prefix-only and before-phase analyzer extras.
// Nothing in it depends on t.Policy (or the ignore-timing mode, which
// only reaches the balancer), which is what makes the result shareable
// across policy cells — the before phase instruments the initial
// schedule, which every policy cell of a grid point shares.
//
// rec, when non-nil, receives one latency observation per stage the
// prefix reached (a rejected trial stops observing at the stage that
// refused it). Under memoisation the observations land on whichever
// worker computed the prefix — exactly once per grid point.
func runPrefix(t Trial, rec *obs.Recorder) trialPrefix {
	t0 := rec.Clock()
	ts, err := gen.Generate(t.Gen)
	t0 = rec.Stamp(obs.StageGenerate, t0)
	if err != nil {
		return trialPrefix{outcome: OutcomeGenError}
	}
	ar, err := arch.New(t.Procs, t.Comm)
	if err != nil {
		return trialPrefix{outcome: OutcomeArchError}
	}
	s, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		rec.Stamp(obs.StageSchedule, t0)
		return trialPrefix{outcome: OutcomeUnschedulable}
	}
	is := sched.FromSchedule(s)
	t0 = rec.Stamp(obs.StageSchedule, t0)

	repBefore, err := (&sim.Runner{}).Run(is)
	if err != nil {
		rec.Stamp(obs.StageSimulate, t0)
		return trialPrefix{outcome: OutcomeSimError}
	}
	// Materialise the per-processor listings now so every clone inherits
	// them instead of re-deriving its own.
	is.InstancesOn(0)
	t0 = rec.Stamp(obs.StageSimulate, t0)
	pre, err := t.analyzers.RunPrefix(&analyzers.Input{TS: ts, Procs: ar.Procs, Comm: t.Comm})
	if err != nil {
		return trialPrefix{err: err}
	}
	if t.phases.ContainsBefore() {
		pre, err = t.analyzers.RunBefore(&analyzers.Input{
			TS:    ts,
			Procs: ar.Procs,
			Comm:  t.Comm,

			Sched:  is,
			Rep:    repBefore,
			Before: repBefore,
		}, pre)
		if err != nil {
			return trialPrefix{err: err}
		}
	}
	rec.Stamp(obs.StageAnalyzeBefore, t0)
	return trialPrefix{is: is, repBefore: repBefore, preExtras: pre}
}

// finishTrial runs the policy-specific suffix (balance → simulate(after)
// → analyze) on a private schedule. preExtras carries the
// policy-independent analyzer values — prefix-only and before-phase —
// shared read-only across the policy cells of a memoised prefix. rec,
// when non-nil, receives the suffix stage latencies.
func finishTrial(t Trial, is *sched.InstSchedule, repBefore *sim.Report, preExtras map[string]float64, rec *obs.Recorder) (TrialResult, error) {
	r := TrialResult{Index: t.Index, Cell: t.Cell, Seed: t.Gen.Seed}

	// Candidate recording costs allocations on the balancer's innermost
	// loop, so it is on only when an active analyzer consumes the trace.
	bal := core.Balancer{Policy: t.Policy, IgnoreTiming: t.ignoreTiming,
		RecordCandidates: t.analyzers.NeedsCandidates()}
	t0 := rec.Clock()
	res, err := bal.Run(is)
	t0 = rec.Stamp(obs.StageBalance, t0)
	if err != nil {
		r.Outcome = OutcomeBalanceError
		return r, nil
	}

	repAfter, err := (&sim.Runner{}).Run(res.Schedule)
	t0 = rec.Stamp(obs.StageSimulate, t0)
	if err != nil {
		r.Outcome = OutcomeSimError
		return r, nil
	}
	reuse := sim.MinMemoryWithReuse(res.Schedule)

	before := summarize(res.MakespanBefore, res.MemBefore, repBefore)
	after := summarize(res.MakespanAfter, res.MemAfter, repAfter)

	r.Outcome = OutcomeOK
	r.Gain = res.GainTotal()
	r.MakespanBefore = before.Makespan
	r.MakespanAfter = after.Makespan
	r.MaxMemBefore = before.MaxMem
	r.MaxMemAfter = after.MaxMem
	// The imbalance ratios are ≥ 1 when meaningful; 0 is the metrics
	// package's degenerate-vector sentinel (all-zero memory or load).
	// Accepted trials always place memory and busy time somewhere, so
	// the sentinel never reaches the artifact aggregates — but readers
	// of raw trial rows must not treat 0 as "better than 1".
	r.MemImbalBefore = before.MemImbal
	r.MemImbalAfter = after.MemImbal
	r.LoadImbalAfter = after.LoadImbal
	r.IdleBefore = before.IdleRatio
	r.IdleAfter = after.IdleRatio
	for i := range reuse.Paper {
		r.PaperMem += reuse.Paper[i]
		r.ReuseMem += reuse.Reuse[i]
	}
	r.ReuseSavings = reuse.Savings()
	r.Moves = len(res.Moves)
	r.Blocks = len(res.Blocks)
	r.Forced = res.Forced
	r.RelaxedLCM = res.RelaxedLCM
	r.Extras, err = t.analyzers.RunSuffix(&analyzers.Input{
		TS:    is.TS,
		Procs: is.Arch.Procs,
		Comm:  t.Comm,

		Sched: res.Schedule,
		Rep:   repAfter,

		Balance: res,
		Before:  repBefore,
		After:   repAfter,
	}, preExtras, t.phases)
	rec.Stamp(obs.StageAnalyzeAfter, t0)
	if err != nil {
		return TrialResult{}, err
	}
	return r, nil
}

// RunTrial executes the full pipeline for one trial, with no
// memoisation. It touches no state outside the trial, so any number of
// calls may run concurrently. A non-nil error means an analyzer
// produced an invalid extra (the sweep should abort), never a rejected
// trial — rejections are outcomes on the result.
func RunTrial(t Trial) (TrialResult, error) {
	return runTrial(t, nil)
}

// RunTrialObserved is RunTrial with per-stage latency telemetry
// recorded into rec (nil behaves exactly like RunTrial). The recorder
// never influences the result — it is the single-trial entry point for
// benchmarking recorder overhead and for callers embedding the
// pipeline outside the engine.
func RunTrialObserved(t Trial, rec *obs.Recorder) (TrialResult, error) {
	return runTrial(t, rec)
}

// runTrial is the recorder-threaded implementation shared by the
// exported entry points and the engine's unmemoised path.
func runTrial(t Trial, rec *obs.Recorder) (TrialResult, error) {
	pre := runPrefix(t, rec)
	if pre.err != nil {
		return TrialResult{}, pre.err
	}
	if pre.outcome != "" {
		return TrialResult{Index: t.Index, Cell: t.Cell, Seed: t.Gen.Seed, Outcome: pre.outcome}, nil
	}
	return finishTrial(t, pre.is, pre.repBefore, pre.preExtras, rec)
}

// summarize assembles the metrics.Summary for one distribution.
func summarize(makespan model.Time, mem []model.Mem, rep *sim.Report) metrics.Summary {
	load := make([]model.Time, len(rep.Procs))
	for i := range rep.Procs {
		load[i] = rep.Procs[i].Busy
	}
	return metrics.Collect(makespan, mem, load, rep.IdleRatio)
}
