package campaign

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// memo.go memoises the policy-independent trial prefix across the policy
// cells of a sweep. Every cell of a grid with P policies re-derives the
// same generate→schedule→simulate prefix for each (generator config,
// processors, comm) point; with memoisation the first trial to need a
// prefix computes it once and the other P−1 receive a cheap clone of the
// initial schedule (dense-slice copies, see sched.InstSchedule.Clone).
//
// Concurrency: the worker pool claims trials in arbitrary real-time
// order, so the cache is keyed behind a mutex and each entry is filled
// exactly once via sync.Once — a worker needing an in-flight prefix
// blocks on the Once until it is ready. Results are byte-identical to
// the unmemoised path because the prefix computation is deterministic
// and nothing mutable is shared: the schedule is cloned per trial, the
// before-report is read-only downstream, and the policy-independent
// analyzer extras — the prefix-only values and, with the before phase
// enabled, the before.* values instrumenting the initial schedule —
// are copied into each trial's payload (analyzers.Set.RunSuffix copies
// the shared map, never mutates it). Sharing the before-phase extras
// is what keeps the phase axis cheap: the before analysis runs once
// per grid point, not once per policy cell.
//
// Memory: entries are dropped as soon as every trial sharing the prefix
// has consumed it (a per-entry countdown initialised during enumeration),
// so the resident set stays proportional to the in-flight prefixes, not
// the whole sweep.

type prefixEntry struct {
	once sync.Once
	pre  trialPrefix
	refs atomic.Int64
}

type prefixCache struct {
	mu      sync.Mutex
	entries map[string]*prefixEntry
}

// prefixKey identifies the policy-independent part of a trial: the full
// generator configuration plus the architecture. The generator config is
// rendered whole (%+v walks every field) so a knob added to gen.Config
// later is part of the key by construction — an enumerated field list
// would silently alias trials differing only in the new knob.
func prefixKey(t Trial) string {
	return fmt.Sprintf("%+v|%d|%d", t.Gen, t.Procs, t.Comm)
}

// newPrefixCache pre-counts how many trials share each prefix so entries
// can be evicted the moment the last sharer is done.
func newPrefixCache(trials []Trial) *prefixCache {
	c := &prefixCache{entries: make(map[string]*prefixEntry)}
	for _, t := range trials {
		key := prefixKey(t)
		e, ok := c.entries[key]
		if !ok {
			e = &prefixEntry{}
			c.entries[key] = e
		}
		e.refs.Add(1)
	}
	return c
}

// runTrial is the memoised equivalent of RunTrial. The prefix's
// trialPrefix — including any analyzer validation error — is shared by
// every trial of the grid point, so a non-finite before-phase extra
// surfaces identically whether the prefix was computed by this trial
// or replayed from the cache.
//
// rec, when non-nil, receives the telemetry: a memo-miss counter tick
// (plus the prefix stage latencies) on the trial that computed the
// prefix, a memo-hit tick on every trial that received the clone, and
// the suffix stage latencies on all of them.
func (c *prefixCache) runTrial(t Trial, rec *obs.Recorder) (TrialResult, error) {
	key := prefixKey(t)
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	if e == nil {
		// Not enumerated up front (foreign trial): fall back to the
		// unmemoised path rather than cache something never evicted.
		return runTrial(t, rec)
	}
	computed := false
	e.once.Do(func() {
		computed = true
		e.pre = runPrefix(t, rec)
	})
	if computed {
		rec.Add(obs.CounterMemoMiss, 1)
	} else {
		rec.Add(obs.CounterMemoHit, 1)
	}
	pre := e.pre
	if e.refs.Add(-1) == 0 {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	if pre.err != nil {
		return TrialResult{}, pre.err
	}
	if pre.outcome != "" {
		return TrialResult{Index: t.Index, Cell: t.Cell, Seed: t.Gen.Seed, Outcome: pre.outcome}, nil
	}
	return finishTrial(t, pre.is.Clone(), pre.repBefore, pre.preExtras, rec)
}
