package campaign

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

// emptyCellSpec mixes one cell that accepts trials (3 processors) with
// one whose every trial is unschedulable (utilisation 6 on 2
// processors), so the aggregates carry a cell with zero accepted
// trials.
func emptyCellSpec() *Spec {
	return &Spec{
		Name:        "empty-cell",
		Seeds:       4,
		Tasks:       []int{12},
		Utilization: []float64{6},
		Procs:       []int{2, 8},
		Analyzers:   []string{"contention", "reuse"},
		AnalyzerPhases: []string{
			"before", "after",
		},
	}
}

// TestStatsEmptyInput pins the primitive layer of the empty-cell path:
// an aggregator that observed nothing finalises to the zero Stats, and
// percentile of an empty slice is 0 — no index panic, no NaN.
func TestStatsEmptyInput(t *testing.T) {
	if s := (&Agg{}).Finalize(); s != (Stats{}) {
		t.Fatalf("empty aggregator finalises to %+v, want zero Stats", s)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := percentile(nil, q); v != 0 {
			t.Fatalf("percentile(nil, %v) = %v, want 0", q, v)
		}
	}
	if v := percentile([]float64{}, 0.5); v != 0 {
		t.Fatalf("percentile(empty, 0.5) = %v, want 0", v)
	}
}

// TestEmptyCellArtifacts is the regression pin for a cell with zero
// accepted trials: the behaviour is *omission with an explicit flag* —
// the cell keeps its acceptance row (accepted = 0 is the flag, visible
// in both artifacts) and emits no metric rows at all, rather than rows
// of NaN/zero that would read as measurements. JSON and CSV both stay
// well-formed.
func TestEmptyCellArtifacts(t *testing.T) {
	res, err := (&Engine{Workers: 4}).Run(emptyCellSpec())
	if err != nil {
		t.Fatal(err)
	}
	var empty, full *CellAggregate
	for i := range res.Cells {
		switch {
		case strings.Contains(res.Cells[i].Cell, "M=2"):
			empty = &res.Cells[i]
		case strings.Contains(res.Cells[i].Cell, "M=8"):
			full = &res.Cells[i]
		}
	}
	if empty == nil || full == nil {
		t.Fatalf("cells missing from %v", res.Cells)
	}
	if empty.Accepted != 0 || empty.AcceptRatio != 0 {
		t.Skipf("M=2 cell accepted %d trials — spec no longer produces an empty cell", empty.Accepted)
	}
	if full.Accepted == 0 {
		t.Fatal("M=8 cell accepted nothing; the test needs one populated cell for contrast")
	}
	if len(empty.Metrics) != 0 {
		t.Fatalf("empty cell carries %d metric entries, want none (omission is the pinned behaviour)", len(empty.Metrics))
	}

	// JSON: marshals cleanly (encoding/json rejects NaN/Inf outright,
	// so success is the no-NaN proof) and the cell is present with its
	// explicit zero-acceptance flag.
	data, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON artifact failed on an empty cell: %v", err)
	}
	if !bytes.Contains(data, []byte(`"accepted": 0`)) {
		t.Fatal("JSON artifact lacks the empty cell's accepted:0 flag")
	}

	// CSV: rectangular, and the empty cell contributes exactly its
	// acceptance row — count column = trials, mean column = 0 ratio.
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("CSV artifact unparseable: %v", err)
	}
	cellRows := 0
	for _, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			t.Fatalf("ragged CSV row %v", row)
		}
		if row[0] != empty.Cell {
			continue
		}
		cellRows++
		if row[1] != "accept_ratio" {
			t.Fatalf("empty cell emitted metric row %v, want only accept_ratio", row)
		}
		if row[2] != "4" || row[3] != "0" {
			t.Fatalf("empty cell acceptance row %v, want count=4 mean=0", row)
		}
	}
	if cellRows != 1 {
		t.Fatalf("empty cell contributed %d CSV rows, want exactly its acceptance row", cellRows)
	}
	for _, cell := range []string{"NaN", "Inf"} {
		if bytes.Contains(buf.Bytes(), []byte(cell)) {
			t.Fatalf("CSV artifact contains %s", cell)
		}
	}

	// The human-readable table tolerates the empty cell too (it reads
	// zero Stats for every headline metric).
	if tbl := res.Table(); !strings.Contains(tbl, empty.Cell) {
		t.Fatalf("table omits the empty cell:\n%s", tbl)
	}
}
