package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/campaign/analyzers"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
)

// Spec describes one sweep: the grid of generator configurations,
// architectures, and balancer policies, and how many seeds to run per
// grid cell. The zero value (plus Normalize) is a small smoke sweep.
//
// The grid is Tasks × Utilization × Procs × Policies; each cell runs
// Seeds trials with seeds SeedBase … SeedBase+Seeds−1. Trial
// enumeration order — and therefore every artifact — is fully
// determined by the spec, never by the worker count.
type Spec struct {
	Name string `json:"name"`

	// Seeds per cell (default 20) starting at SeedBase (default 0).
	Seeds    int   `json:"seeds"`
	SeedBase int64 `json:"seed_base"`

	// Grid axes. Empty axes get one default entry.
	Tasks       []int     `json:"tasks"`       // default {40}
	Utilization []float64 `json:"utilization"` // default {2.5}
	Procs       []int     `json:"procs"`       // default {4}
	Policies    []string  `json:"policies"`    // default {"lexicographic"}

	// Shared generator knobs (see gen.Config); zero values defer to the
	// generator's own defaults. EdgeProb < 0 requests an edge-free
	// system (an explicit zero is indistinguishable from unset in JSON).
	Periods     []model.Time `json:"periods,omitempty"`
	EdgeProb    float64      `json:"edge_prob,omitempty"`
	MaxInDegree int          `json:"max_in_degree,omitempty"`
	MemMin      model.Mem    `json:"mem_min,omitempty"`
	MemMax      model.Mem    `json:"mem_max,omitempty"`

	// CommTime is the architecture's per-datum transfer time C
	// (default 1, the paper's setting).
	CommTime model.Time `json:"comm_time"`

	// IgnoreTiming runs the balancer in the §5.2 memory-only regime
	// where timing filters are disabled (Theorem 2's setting).
	IgnoreTiming bool `json:"ignore_timing,omitempty"`

	// Analyzers names the per-trial analyzers to attach (see
	// internal/campaign/analyzers); accepted trials then carry a
	// namespaced extras payload that folds into the artifacts. The list
	// is canonicalised by Normalize and — being part of the marshalled
	// spec — of Spec.Hash(), so journals written under different
	// analyzer sets can never be mixed. Empty (the default) is the
	// allocation-neutral fast path.
	Analyzers []string `json:"analyzers,omitempty"`

	// AnalyzerPhases selects the schedule phases the analyzers run
	// over: ["after"] (the default — balanced schedule only, the
	// unprefixed extras keys) or ["before","after"], which also runs
	// the phase-sensitive analyzers over the initial pre-balancing
	// schedule and adds before.<ns>.* and delta.<ns>.* extras. The
	// list is canonicalised by Normalize — and collapsed back to the
	// default when no analyzers are named, so the phase axis never
	// forks the sweep identity without a behavioural difference. Like
	// the analyzer set, the phase set is part of Spec.Hash(): journals
	// written under different phase sets can never be mixed.
	AnalyzerPhases []string `json:"analyzer_phases,omitempty"`
}

// Trial is one fully-resolved pipeline run: a point of the spec grid
// plus one seed. Index is the position in enumeration order and is the
// determinism anchor for aggregation.
type Trial struct {
	Index  int
	Cell   string
	Gen    gen.Config
	Procs  int
	Comm   model.Time
	Policy core.Policy

	ignoreTiming bool
	analyzers    analyzers.Set
	phases       analyzers.PhaseSet
}

// Normalize fills defaults in place and validates the spec.
func (s *Spec) Normalize() error {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if s.Seeds == 0 {
		s.Seeds = 20
	}
	if s.Seeds < 0 {
		return fmt.Errorf("campaign: negative seed count %d", s.Seeds)
	}
	if len(s.Tasks) == 0 {
		s.Tasks = []int{40}
	}
	if len(s.Utilization) == 0 {
		s.Utilization = []float64{2.5}
	}
	if len(s.Procs) == 0 {
		s.Procs = []int{4}
	}
	if len(s.Policies) == 0 {
		s.Policies = []string{"lexicographic"}
	}
	if s.CommTime == 0 {
		s.CommTime = 1
	}
	// Resolve the shared generator knobs to their effective values so
	// the persisted spec in artifacts is fully explicit. The edge-free
	// sentinel (EdgeProb < 0) is kept as-is: collapsing it to 0 here
	// would read as "unset" on a second Normalize and resurrect the
	// generator default.
	g := gen.Config{
		Periods:     s.Periods,
		EdgeProb:    s.EdgeProb,
		MaxInDegree: s.MaxInDegree,
		MemMin:      s.MemMin,
		MemMax:      s.MemMax,
	}.Normalized()
	s.Periods = g.Periods
	if s.EdgeProb >= 0 {
		s.EdgeProb = g.EdgeProb
	}
	s.MaxInDegree = g.MaxInDegree
	s.MemMin = g.MemMin
	s.MemMax = g.MemMax
	for _, n := range s.Tasks {
		if n < 1 {
			return fmt.Errorf("campaign: task count %d < 1", n)
		}
	}
	for _, m := range s.Procs {
		if m < 1 {
			return fmt.Errorf("campaign: processor count %d < 1", m)
		}
	}
	for _, p := range s.Policies {
		if _, err := ParsePolicy(p); err != nil {
			return err
		}
	}
	// Canonicalise the analyzer list (validated, deduplicated, fixed
	// registry order) so every spec naming the same analyzer set — in
	// any order — marshals and hashes identically.
	set, err := analyzers.Parse(s.Analyzers)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	s.Analyzers = set.Names()
	// Canonicalise the phase set the same way. With no analyzers the
	// phase axis is inert (there are no extras to phase), so it is
	// collapsed to the default rather than letting two behaviourally
	// identical sweeps hash apart.
	phases, err := analyzers.ParsePhases(s.AnalyzerPhases)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if len(set) == 0 {
		phases = analyzers.DefaultPhases()
	}
	s.AnalyzerPhases = phases.Names()
	// Duplicate axis values would enumerate identical grid points that
	// share one cell key, double-counting every seed in the aggregates.
	if err := noDups("tasks", s.Tasks); err != nil {
		return err
	}
	if err := noDups("utilization", s.Utilization); err != nil {
		return err
	}
	if err := noDups("procs", s.Procs); err != nil {
		return err
	}
	if err := noDups("policies", s.Policies); err != nil {
		return err
	}
	return nil
}

// Trials enumerates the grid in deterministic order:
// tasks ▸ utilization ▸ procs ▸ policy ▸ seed.
func (s *Spec) Trials() ([]Trial, error) {
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	set, err := s.AnalyzerSet()
	if err != nil {
		return nil, err
	}
	phases, err := s.PhaseSet()
	if err != nil {
		return nil, err
	}
	var out []Trial
	for _, n := range s.Tasks {
		for _, u := range s.Utilization {
			for _, m := range s.Procs {
				for _, pol := range s.Policies {
					policy, err := ParsePolicy(pol)
					if err != nil {
						return nil, err
					}
					cell := fmt.Sprintf("N=%d/U=%g/M=%d/%s", n, u, m, pol)
					for k := 0; k < s.Seeds; k++ {
						out = append(out, Trial{
							Index: len(out),
							Cell:  cell,
							Gen: gen.Config{
								Seed:        s.SeedBase + int64(k),
								Tasks:       n,
								Utilization: u,
								Periods:     s.Periods,
								EdgeProb:    s.EdgeProb,
								MaxInDegree: s.MaxInDegree,
								MemMin:      s.MemMin,
								MemMax:      s.MemMax,
							},
							Procs:        m,
							Comm:         s.CommTime,
							Policy:       policy,
							ignoreTiming: s.IgnoreTiming,
							analyzers:    set,
							phases:       phases,
						})
					}
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: spec %q enumerates no trials", s.Name)
	}
	return out, nil
}

// AnalyzerSet resolves the spec's analyzer names into the registry's
// canonical Set (nil for the zero-analyzer fast path).
func (s *Spec) AnalyzerSet() (analyzers.Set, error) {
	set, err := analyzers.Parse(s.Analyzers)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return set, nil
}

// PhaseSet resolves the spec's analyzer-phase names into the canonical
// PhaseSet (the after-only default when none are named).
func (s *Spec) PhaseSet() (analyzers.PhaseSet, error) {
	phases, err := analyzers.ParsePhases(s.AnalyzerPhases)
	if err != nil {
		return analyzers.PhaseSet{}, fmt.Errorf("campaign: %w", err)
	}
	return phases, nil
}

// CellOrder returns the distinct cell keys in enumeration order.
func (s *Spec) CellOrder() ([]string, error) {
	trials, err := s.Trials()
	if err != nil {
		return nil, err
	}
	return cellOrder(trials), nil
}

// cellOrder extracts the distinct cell keys of an already-enumerated
// trial list, preserving first appearance.
func cellOrder(trials []Trial) []string {
	var order []string
	seen := map[string]bool{}
	for _, t := range trials {
		if !seen[t.Cell] {
			seen[t.Cell] = true
			order = append(order, t.Cell)
		}
	}
	return order
}

// Hash returns the canonical identity of the sweep: the hex SHA-256 of
// the normalised spec's compact JSON encoding. Two specs hash equal iff
// they enumerate the same trial grid with the same effective knobs, so
// the hash is what binds a journal (and every shard of a sharded run)
// to its campaign. Normalises the spec in place.
func (s *Spec) Hash() (string, error) {
	if err := s.Normalize(); err != nil {
		return "", err
	}
	data, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// LoadSpec reads a JSON sweep specification from path. Unknown keys
// are rejected: a typoed axis name would otherwise silently run the
// default grid and emit a normal-looking artifact for the wrong sweep.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("campaign: parsing %s: %w", path, err)
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// noDups rejects repeated values on one grid axis.
func noDups[T comparable](axis string, vals []T) error {
	seen := make(map[T]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			return fmt.Errorf("campaign: duplicate %s value %v", axis, v)
		}
		seen[v] = true
	}
	return nil
}

// ParsePolicy maps a spec policy name to the balancer constant.
func ParsePolicy(name string) (core.Policy, error) {
	switch name {
	case "lexicographic", "":
		return core.PolicyLexicographic, nil
	case "ratio":
		return core.PolicyRatio, nil
	case "memory-only":
		return core.PolicyMemoryOnly, nil
	}
	return 0, fmt.Errorf("campaign: unknown policy %q (want lexicographic|ratio|memory-only)", name)
}
