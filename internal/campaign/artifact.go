package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// JSON renders the artifact: the normalised spec, per-cell aggregates,
// and every trial, indented for diffability. Map keys are emitted
// sorted by encoding/json and all numbers come from a deterministic
// fold, so two runs of the same spec produce byte-identical output at
// any worker count.
func (r *Result) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// csvHeader pins the artifact's column layout. Every emitted row is
// padded to exactly this many columns via csvRow, so a row can never
// drift out of step with the header (the golden-file test pins the
// bytes).
var csvHeader = []string{"cell", "metric", "count", "mean", "std", "min", "max", "p50", "p90", "p99"}

// csvRow pads a partial row with explicit empty-string columns out to
// the full header width.
func csvRow(cols ...string) []string {
	row := make([]string, len(csvHeader))
	copy(row, cols)
	return row
}

// WriteCSV emits the per-cell aggregates in long form, one row per
// (cell, metric) pair:
//
//	cell,metric,count,mean,std,min,max,p50,p90,p99
//
// plus one acceptance row per cell with metric "accept_ratio" (count =
// trials, mean = ratio, and every remaining stat column an explicit
// empty string). Analyzer extras appear as additional metric rows under
// their namespaced names ("schedulability.util_margin", …), sorted with
// the rest.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if err := cw.Write(csvRow(c.Cell, "accept_ratio", strconv.Itoa(c.Trials), ff(c.AcceptRatio))); err != nil {
			return err
		}
		names := make([]string, 0, len(c.Metrics))
		for name := range c.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := c.Metrics[name]
			if err := cw.Write(csvRow(
				c.Cell, name, strconv.Itoa(s.Count),
				ff(s.Mean), ff(s.Std), ff(s.Min), ff(s.Max),
				ff(s.P50), ff(s.P90), ff(s.P99),
			)); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ff formats a float with the shortest exact representation.
func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Table renders a human-readable per-cell summary.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q: %d trials, %d cells",
		r.Spec.Name, len(r.Trials), len(r.Cells))
	if r.Workers > 0 {
		fmt.Fprintf(&b, ", %d workers, %s", r.Workers, r.Elapsed.Round(1e6))
	}
	if len(r.Spec.Analyzers) > 0 {
		fmt.Fprintf(&b, ", analyzers %s", strings.Join(r.Spec.Analyzers, ","))
		if len(r.Spec.AnalyzerPhases) > 1 {
			fmt.Fprintf(&b, " (phases %s)", strings.Join(r.Spec.AnalyzerPhases, ","))
		}
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-36s %7s %8s %8s %12s %12s %8s\n",
		"cell", "accept", "gain", "Δmk", "imbal b→a", "idle b→a", "reuse")
	for _, c := range r.Cells {
		m := c.Metrics
		imbal := fmt.Sprintf("%.2f→%.2f", m["mem_imbal_before"].Mean, m["mem_imbal_after"].Mean)
		idle := fmt.Sprintf("%.0f%%→%.0f%%", 100*m["idle_before"].Mean, 100*m["idle_after"].Mean)
		fmt.Fprintf(&b, "%-36s %6.0f%% %8.1f %8.1f %12s %12s %7.0f%%\n",
			c.Cell, 100*c.AcceptRatio,
			m["gain"].Mean,
			m["makespan_before"].Mean-m["makespan_after"].Mean,
			imbal, idle,
			100*m["reuse_savings"].Mean)
	}
	return b.String()
}

// WriteArtifacts writes <name>.json and <name>.csv under dir, creating
// it if needed, and returns both paths.
func (r *Result) WriteArtifacts(dir string) (jsonPath, csvPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	jsonPath = filepath.Join(dir, r.Spec.Name+".json")
	csvPath = filepath.Join(dir, r.Spec.Name+".csv")

	data, err := r.JSON()
	if err != nil {
		return "", "", err
	}
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return "", "", err
	}

	f, err := os.Create(csvPath)
	if err != nil {
		return "", "", err
	}
	if err := r.WriteCSV(f); err != nil {
		f.Close()
		return "", "", err
	}
	if err := f.Close(); err != nil {
		return "", "", err
	}
	return jsonPath, csvPath, nil
}
