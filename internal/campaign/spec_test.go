package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSpecDefaults(t *testing.T) {
	var s Spec
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Name != "campaign" || s.Seeds != 20 || s.CommTime != 1 {
		t.Fatalf("defaults: %+v", s)
	}
	trials, err := s.Trials()
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 20 {
		t.Fatalf("default spec enumerates %d trials, want 20", len(trials))
	}
}

func TestSpecEnumeration(t *testing.T) {
	s := Spec{
		Seeds:       3,
		SeedBase:    100,
		Tasks:       []int{10, 20},
		Utilization: []float64{1.5},
		Procs:       []int{2, 4},
		Policies:    []string{"lexicographic", "memory-only"},
	}
	trials, err := s.Trials()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 1 * 2 * 2 * 3; len(trials) != want {
		t.Fatalf("got %d trials, want %d", len(trials), want)
	}
	for i, tr := range trials {
		if tr.Index != i {
			t.Fatalf("trial %d has index %d", i, tr.Index)
		}
	}
	// Seeds shard within a cell: first cell holds seeds 100..102.
	if trials[0].Gen.Seed != 100 || trials[2].Gen.Seed != 102 || trials[3].Gen.Seed != 100 {
		t.Fatalf("seed sharding: %d %d %d", trials[0].Gen.Seed, trials[2].Gen.Seed, trials[3].Gen.Seed)
	}
	if trials[0].Cell != "N=10/U=1.5/M=2/lexicographic" {
		t.Fatalf("cell key: %q", trials[0].Cell)
	}
	order, err := s.CellOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("cell order: %v", order)
	}
}

func TestSpecRejectsBadInput(t *testing.T) {
	for _, s := range []Spec{
		{Policies: []string{"simulated-annealing"}},
		{Tasks: []int{0}},
		{Procs: []int{-1}},
		{Seeds: -5},
		{Tasks: []int{10, 10}},
		{Utilization: []float64{2, 2}},
		{Procs: []int{4, 4}},
		{Policies: []string{"ratio", "ratio"}},
	} {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %+v: want error", s)
		}
	}
}

func TestSpecEdgeFreeSentinel(t *testing.T) {
	s := Spec{EdgeProb: -1}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.EdgeProb >= 0 {
		t.Fatalf("sentinel collapsed to %v", s.EdgeProb)
	}
	// Idempotent: a second Normalize must not resurrect the default.
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.EdgeProb >= 0 {
		t.Fatalf("sentinel lost on re-normalize: %v", s.EdgeProb)
	}
	// The generator honours it: no dependences at all.
	trials, err := s.Trials()
	if err != nil {
		t.Fatal(err)
	}
	if got := trials[0].Gen.Normalized().EdgeProb; got != 0 {
		t.Fatalf("effective edge probability %v, want 0", got)
	}
	// Unset still means the generator default.
	var d Spec
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	if d.EdgeProb != 0.3 {
		t.Fatalf("default edge probability %v, want 0.3", d.EdgeProb)
	}
}

func TestLoadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	body := `{"name":"smoke","seeds":2,"tasks":[8],"utilization":[1.2],"procs":[2],"policies":["ratio"]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "smoke" || s.Seeds != 2 || s.CommTime != 1 {
		t.Fatalf("loaded: %+v", s)
	}
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
}
