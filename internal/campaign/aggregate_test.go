package campaign

import (
	"math"
	"sync"
	"testing"
)

func TestAggEmpty(t *testing.T) {
	var a Agg
	s := a.Finalize()
	if s != (Stats{}) {
		t.Fatalf("empty aggregator: got %+v, want zero Stats", s)
	}
}

func TestAggSingle(t *testing.T) {
	var a Agg
	a.Observe(0, 7)
	s := a.Finalize()
	want := Stats{Count: 1, Mean: 7, Std: 0, Min: 7, Max: 7, P50: 7, P90: 7, P99: 7}
	if s != want {
		t.Fatalf("single sample: got %+v, want %+v", s, want)
	}
}

func TestAggStats(t *testing.T) {
	// 1..100 observed in reverse order: Finalize must sort by index.
	var a Agg
	for i := 99; i >= 0; i-- {
		a.Observe(i, float64(i+1))
	}
	s := a.Finalize()
	if s.Count != 100 || s.Mean != 50.5 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("count/mean/min/max: got %+v", s)
	}
	// Population std of 1..100: sqrt((100²−1)/12) ≈ 28.866.
	if math.Abs(s.Std-28.86607004772212) > 1e-12 {
		t.Fatalf("std: got %v", s.Std)
	}
	// Nearest-rank percentiles over 1..100 are exact.
	if s.P50 != 50 || s.P90 != 90 || s.P99 != 99 {
		t.Fatalf("percentiles: got p50=%v p90=%v p99=%v", s.P50, s.P90, s.P99)
	}
}

func TestPercentileSmall(t *testing.T) {
	vals := []float64{1, 2, 3}
	for _, tc := range []struct{ q, want float64 }{
		{0.01, 1}, {0.34, 2}, {0.5, 2}, {0.67, 3}, {0.99, 3}, {1, 3},
	} {
		if got := percentile(vals, tc.q); got != tc.want {
			t.Errorf("percentile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}

// TestAggConcurrent checks that concurrent Observe calls lose nothing
// and that the aggregate equals the serial one (run with -race).
func TestAggConcurrent(t *testing.T) {
	const n = 1000
	var par, ser Agg
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				par.Observe(i, float64(i%17))
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		ser.Observe(i, float64(i%17))
	}
	if got, want := par.Finalize(), ser.Finalize(); got != want {
		t.Fatalf("concurrent vs serial: %+v != %+v", got, want)
	}
}
