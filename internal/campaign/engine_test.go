package campaign

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
)

// smokeSpec is small enough for CI but still exercises a 2×2 grid with
// mixed schedulability.
func smokeSpec() *Spec {
	return &Spec{
		Name:        "smoke",
		Seeds:       6,
		Tasks:       []int{12},
		Utilization: []float64{1.5},
		Procs:       []int{2, 3},
		Policies:    []string{"lexicographic", "memory-only"},
	}
}

// TestDeterminism is the headline guarantee: the same spec and seed set
// produce byte-identical JSON aggregates at worker counts 1, 2, and 8.
func TestDeterminism(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 2, 8} {
		res, err := (&Engine{Workers: workers}).Run(smokeSpec())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = data
			continue
		}
		if !bytes.Equal(ref, data) {
			t.Fatalf("workers=%d: JSON differs from workers=1 run (%d vs %d bytes)",
				workers, len(data), len(ref))
		}
	}

	// CSV artifacts must agree too.
	var csv1, csv8 bytes.Buffer
	r1, _ := (&Engine{Workers: 1}).Run(smokeSpec())
	r8, _ := (&Engine{Workers: 8}).Run(smokeSpec())
	if err := r1.WriteCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := r8.WriteCSV(&csv8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv8.Bytes()) {
		t.Fatal("CSV differs between 1 and 8 workers")
	}
}

// TestEndToEndSweep checks the whole path: enumeration, pipeline,
// aggregation, artifacts.
func TestEndToEndSweep(t *testing.T) {
	res, err := Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 6*2*2 {
		t.Fatalf("trials: %d", len(res.Trials))
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells: %d", len(res.Cells))
	}

	accepted := 0
	for _, c := range res.Cells {
		accepted += c.Accepted
		if c.Trials != 6 {
			t.Fatalf("cell %s: %d trials, want 6", c.Cell, c.Trials)
		}
		sum := 0
		for _, n := range c.Outcomes {
			sum += n
		}
		if sum != c.Trials {
			t.Fatalf("cell %s: outcome counts sum to %d of %d", c.Cell, sum, c.Trials)
		}
		for name, s := range c.Metrics {
			if s.Count != c.Accepted {
				t.Fatalf("cell %s metric %s: count %d, accepted %d", c.Cell, name, s.Count, c.Accepted)
			}
			if s.Min > s.Mean || s.Mean > s.Max || s.P50 < s.Min || s.P99 > s.Max {
				t.Fatalf("cell %s metric %s: inconsistent stats %+v", c.Cell, name, s)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no trial accepted — smoke spec should be schedulable at least sometimes")
	}

	// Accepted trials obey the paper's soundness half: Gtotal ≥ 0.
	for _, tr := range res.Trials {
		if tr.Outcome == OutcomeOK && tr.Gain < 0 {
			t.Fatalf("trial %d: negative gain %d", tr.Index, tr.Gain)
		}
	}

	// Artifacts land on disk with the expected schema.
	dir := t.TempDir()
	jp, cp, err := res.WriteArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(jp, "smoke.json") || !strings.HasSuffix(cp, "smoke.csv") {
		t.Fatalf("paths: %s, %s", jp, cp)
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "cell,metric,count,mean,std,min,max,p50,p90,p99\n") {
		t.Fatalf("csv header: %q", csv.String()[:60])
	}
	if table := res.Table(); !strings.Contains(table, "smoke") {
		t.Fatalf("table: %q", table)
	}
}

func TestMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var calls atomic.Int64
		out := Map(100, workers, func(i int) int {
			calls.Add(1)
			return i * i
		})
		if calls.Load() != 100 {
			t.Fatalf("workers=%d: %d calls", workers, calls.Load())
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if out := Map(0, 4, func(int) int { return 1 }); out != nil {
		t.Fatalf("n=0: %v", out)
	}
}

func TestRunTrialOutcomes(t *testing.T) {
	// Non-harmonic periods are refused by the generator.
	bad := Trial{
		Gen:   gen.Config{Seed: 1, Tasks: 5, Utilization: 1, Periods: []model.Time{10, 15}},
		Procs: 2, Comm: 1,
	}
	if r, err := RunTrial(bad); err != nil || r.Outcome != OutcomeGenError {
		t.Fatalf("non-harmonic periods: outcome %q err %v", r.Outcome, err)
	}

	// Heavy overload on one processor is unschedulable.
	over := Trial{
		Gen:   gen.Config{Seed: 1, Tasks: 30, Utilization: 8},
		Procs: 1, Comm: 1,
	}
	if r, err := RunTrial(over); err != nil || r.Outcome != OutcomeUnschedulable {
		t.Fatalf("overload: outcome %q err %v", r.Outcome, err)
	}

	// A comfortable instance goes end to end.
	ok := Trial{
		Gen:   gen.Config{Seed: 3, Tasks: 12, Utilization: 1.5},
		Procs: 3, Comm: 1,
	}
	r, err := RunTrial(ok)
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != OutcomeOK {
		t.Fatalf("comfortable instance: outcome %q", r.Outcome)
	}
	if r.Blocks == 0 || r.MakespanAfter == 0 || r.PaperMem == 0 {
		t.Fatalf("accepted trial missing observables: %+v", r)
	}
	if r.ReuseMem > r.PaperMem {
		t.Fatalf("reuse accounting above paper accounting: %+v", r)
	}
}

// TestEngineStop pins the drain contract: closing Stop makes Run return
// ErrInterrupted without abandoning in-flight trials — every row the
// sink saw is a valid enumeration row — and resuming with those rows as
// Done produces artifacts byte-identical to an uninterrupted run.
func TestEngineStop(t *testing.T) {
	ref, err := (&Engine{Workers: 2}).Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := ref.JSON()

	stop := make(chan struct{})
	var mu sync.Mutex
	var sunk []TrialResult
	eng := &Engine{Workers: 2, Stop: stop, Sink: func(r TrialResult) error {
		mu.Lock()
		defer mu.Unlock()
		sunk = append(sunk, r)
		if len(sunk) == 5 {
			close(stop)
		}
		return nil
	}}
	if _, err := eng.Run(smokeSpec()); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if len(sunk) < 5 || len(sunk) >= 24 {
		t.Fatalf("sunk %d trials, want partial progress in [5,24)", len(sunk))
	}

	resumed, err := (&Engine{Workers: 2, Done: sunk}).Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := resumed.JSON()
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatal("resume after interrupt is not byte-identical to the uninterrupted run")
	}
}

// TestEngineStopClosedUpFront pins the degenerate drain: a Stop channel
// already closed when Run starts interrupts before any trial runs.
func TestEngineStopClosedUpFront(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	ran := 0
	eng := &Engine{Workers: 1, Stop: stop, Sink: func(TrialResult) error { ran++; return nil }}
	if _, err := eng.Run(smokeSpec()); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if ran != 0 {
		t.Fatalf("%d trials ran under a pre-closed Stop", ran)
	}
}
