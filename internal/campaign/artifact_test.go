package campaign

import (
	"bytes"
	"encoding/csv"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenResult is a hand-built Result with fixed numbers: the golden
// test pins the CSV *layout* (column set, row order, acceptance-row
// padding, float formatting) independently of the pipeline.
func goldenResult() *Result {
	return &Result{
		Spec: Spec{Name: "golden"},
		Cells: []CellAggregate{
			{
				Cell: "N=4/U=1/M=2/lexicographic", Trials: 4, Accepted: 2, AcceptRatio: 0.5,
				Outcomes: map[string]int{OutcomeOK: 2, OutcomeUnschedulable: 2},
				Metrics: map[string]Stats{
					"gain":  {Count: 2, Mean: 1.5, Std: 0.5, Min: 1, Max: 2, P50: 1, P90: 2, P99: 2},
					"moves": {Count: 2, Mean: 3.25, Std: 0.25, Min: 3, Max: 3.5, P50: 3, P90: 3.5, P99: 3.5},
				},
			},
			{
				Cell: "N=4/U=1/M=2/ratio", Trials: 4, Accepted: 0, AcceptRatio: 0,
				Outcomes: map[string]int{OutcomeUnschedulable: 4},
				Metrics:  map[string]Stats{},
			},
		},
	}
}

// TestWriteCSVGolden pins the artifact bytes against testdata/golden.csv
// (refresh deliberately with `go test -run WriteCSVGolden -update`).
func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResult().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.csv")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("CSV layout drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteCSVRectangular checks that every row — the acceptance row
// included — carries exactly the header's column count with explicit
// empty strings for absent stats (encoding/csv errors on a ragged
// record set, which is the check).
func TestWriteCSVRectangular(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResult().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ragged CSV: %v", err)
	}
	if len(rows) != 1+3+1 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i, row := range rows {
		if len(row) != len(csvHeader) {
			t.Fatalf("row %d: %d columns, want %d", i, len(row), len(csvHeader))
		}
	}
	// The acceptance row's stat columns are explicit empties.
	accept := rows[1]
	if accept[1] != "accept_ratio" || accept[2] != "4" || accept[3] != "0.5" {
		t.Fatalf("acceptance row: %q", accept)
	}
	for col := 4; col < len(accept); col++ {
		if accept[col] != "" {
			t.Fatalf("acceptance row column %s: %q, want empty", csvHeader[col], accept[col])
		}
	}
}
