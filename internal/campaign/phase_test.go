package campaign

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/campaign/analyzers"
)

// phaseSpec is the full-analyzer smoke spec with the before phase
// enabled — the tentpole configuration.
func phaseSpec() *Spec {
	s := analyzerSpec()
	s.AnalyzerPhases = []string{"before", "after"}
	return s
}

// TestPhaseDeterminism pins the tentpole guarantee for the phase axis:
// with before/after analysis on, JSON and CSV artifacts are
// byte-identical at 1, 2, and 8 workers, with memoisation on and off
// (the before-phase extras ride the memoised prefix), after Done-row
// replay (crash-resume), and after a 3-shard fold (multi-host merge).
func TestPhaseDeterminism(t *testing.T) {
	ref, err := (&Engine{Workers: 1, NoMemo: true}).Run(phaseSpec())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := ref.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}
	// The phase columns really made it into the artifacts.
	for _, col := range []string{
		"before.contention.busy_spread", "delta.contention.busy_spread",
		"before.reuse.savings", "delta.reuse.savings", "reuse.paper_total",
	} {
		if !strings.Contains(refCSV.String(), col) {
			t.Fatalf("CSV lacks phase column %q", col)
		}
	}

	check := func(res *Result, label string) {
		t.Helper()
		data, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, refJSON) {
			t.Fatalf("%s: JSON differs from reference (%d vs %d bytes)", label, len(data), len(refJSON))
		}
		var csv bytes.Buffer
		if err := res.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csv.Bytes(), refCSV.Bytes()) {
			t.Fatalf("%s: CSV differs from reference", label)
		}
	}

	for _, workers := range []int{1, 2, 8} {
		for _, noMemo := range []bool{false, true} {
			res, err := (&Engine{Workers: workers, NoMemo: noMemo}).Run(phaseSpec())
			if err != nil {
				t.Fatalf("workers=%d noMemo=%v: %v", workers, noMemo, err)
			}
			check(res, fmt.Sprintf("workers=%d noMemo=%v", workers, noMemo))
		}
	}

	// Crash-resume: replay a prefix as Done rows.
	for _, k := range []int{1, len(ref.Trials) / 2, len(ref.Trials)} {
		eng := &Engine{Workers: 4, Done: append([]TrialResult(nil), ref.Trials[:k]...)}
		res, err := eng.Run(phaseSpec())
		if err != nil {
			t.Fatalf("resume k=%d: %v", k, err)
		}
		check(res, fmt.Sprintf("resume k=%d", k))
	}

	// Multi-host: three shards at different worker counts, folded.
	total := len(ref.Trials)
	var rows []TrialResult
	for i := 0; i < 3; i++ {
		lo, hi := total*i/3, total*(i+1)/3
		res, err := (&Engine{Workers: i + 1, Lo: lo, Hi: hi}).Run(phaseSpec())
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		rows = append(rows, res.Trials...)
	}
	folded, err := Fold(phaseSpec(), rows)
	if err != nil {
		t.Fatal(err)
	}
	check(folded, "3-shard fold")
}

// TestPhaseExtrasShape: accepted trials carry exactly the phased key
// set, the delta keys are literally after − before, and the
// phase-exempt analyzers (PrefixOnly, AfterOnly) gain no siblings.
func TestPhaseExtrasShape(t *testing.T) {
	spec := phaseSpec()
	res, err := (&Engine{Workers: 4}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	set, err := spec.AnalyzerSet()
	if err != nil {
		t.Fatal(err)
	}
	phases, err := spec.PhaseSet()
	if err != nil {
		t.Fatal(err)
	}
	keys := set.PhasedKeys(phases)
	if len(keys) <= len(set.Keys()) {
		t.Fatalf("phased key set (%d) not larger than the after-only one (%d)", len(keys), len(set.Keys()))
	}

	accepted := 0
	for _, tr := range res.Trials {
		if tr.Outcome != OutcomeOK {
			if len(tr.Extras) != 0 {
				t.Fatalf("rejected trial %d carries extras %v", tr.Index, tr.Extras)
			}
			continue
		}
		accepted++
		if len(tr.Extras) != len(keys) {
			t.Fatalf("trial %d: %d extras, want %d", tr.Index, len(tr.Extras), len(keys))
		}
		for _, k := range set.BeforeKeys() {
			before, okB := tr.Extras["before."+k]
			after, okA := tr.Extras[k]
			delta, okD := tr.Extras["delta."+k]
			if !okB || !okA || !okD {
				t.Fatalf("trial %d: phase triple for %q incomplete", tr.Index, k)
			}
			if delta != after-before {
				t.Fatalf("trial %d: delta.%s = %v, want after−before = %v", tr.Index, k, delta, after-before)
			}
		}
		// No sibling keys for the phase-exempt analyzers.
		for k := range tr.Extras {
			base := strings.TrimPrefix(strings.TrimPrefix(k, "before."), "delta.")
			if strings.HasPrefix(base, "schedulability.") && k != base {
				t.Fatalf("trial %d: PrefixOnly analyzer gained phase sibling %q", tr.Index, k)
			}
			if strings.HasPrefix(base, "moves.") && k != base {
				t.Fatalf("trial %d: AfterOnly analyzer gained phase sibling %q", tr.Index, k)
			}
		}
		// The reuse accounting is defined on every accepted schedule,
		// in both phases.
		if tr.Extras["reuse.savings_defined"] != 1 || tr.Extras["before.reuse.savings_defined"] != 1 {
			t.Fatalf("trial %d: reuse accounting undefined on an accepted trial: %v", tr.Index, tr.Extras)
		}
	}
	if accepted == 0 {
		t.Fatal("no accepted trial — smoke spec should accept some")
	}
}

// TestPhaseSpecHash: the phase set is part of the sweep identity —
// but only when analyzers are attached (an inert phase axis must not
// fork behaviourally identical sweeps).
func TestPhaseSpecHash(t *testing.T) {
	after, err := analyzerSpec().Hash()
	if err != nil {
		t.Fatal(err)
	}
	both, err := phaseSpec().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if after == both {
		t.Fatal("phase set does not change the spec hash")
	}

	// Input order canonicalises away.
	reordered := analyzerSpec()
	reordered.AnalyzerPhases = []string{"after", "before"}
	if h, err := reordered.Hash(); err != nil || h != both {
		t.Fatalf("phase order changes the spec hash: %v %v", h, err)
	}

	// Naming the default set explicitly is the default.
	explicit := analyzerSpec()
	explicit.AnalyzerPhases = []string{"after"}
	if h, err := explicit.Hash(); err != nil || h != after {
		t.Fatalf("explicit after-only set hashes apart from the default: %v %v", h, err)
	}

	// Without analyzers the phase axis is inert and collapses.
	plain, err := smokeSpec().Hash()
	if err != nil {
		t.Fatal(err)
	}
	collapsed := smokeSpec()
	collapsed.AnalyzerPhases = []string{"before", "after"}
	if h, err := collapsed.Hash(); err != nil || h != plain {
		t.Fatalf("inert phase set forks the spec hash: %v %v", h, err)
	}

	// Invalid sets are refused by Normalize with targeted messages.
	bad := analyzerSpec()
	bad.AnalyzerPhases = []string{"during"}
	if err := bad.Normalize(); err == nil || !strings.Contains(err.Error(), "unknown phase") {
		t.Fatalf("unknown phase accepted: %v", err)
	}
	onlyBefore := analyzerSpec()
	onlyBefore.AnalyzerPhases = []string{"before"}
	if err := onlyBefore.Normalize(); err == nil || !strings.Contains(err.Error(), "mandatory") {
		t.Fatalf("before-only phase set accepted: %v", err)
	}
}

// TestPhaseExtrasValidation: rows produced under the after-only phase
// set must be refused by a phased Fold (and vice versa) — the missing
// or stray before.*/delta.* columns would otherwise cover only part of
// the sweep.
func TestPhaseExtrasValidation(t *testing.T) {
	afterRows, err := (&Engine{Workers: 4}).Run(analyzerSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(phaseSpec(), afterRows.Trials); err == nil || !strings.Contains(err.Error(), "missing extra") {
		t.Fatalf("after-only rows under phased spec: %v", err)
	}

	phasedRows, err := (&Engine{Workers: 4}).Run(phaseSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(analyzerSpec(), phasedRows.Trials); err == nil || !strings.Contains(err.Error(), "phase set") {
		t.Fatalf("phased rows under after-only spec: %v", err)
	}

	// Engine.Done replay applies the same screen.
	okIdx := -1
	for i, tr := range phasedRows.Trials {
		if tr.Outcome == OutcomeOK {
			okIdx = i
			break
		}
	}
	if okIdx < 0 {
		t.Fatal("no accepted trial")
	}
	eng := &Engine{Workers: 1, Done: phasedRows.Trials[okIdx : okIdx+1]}
	if _, err := eng.Run(analyzerSpec()); err == nil || !strings.Contains(err.Error(), "phase set") {
		t.Fatalf("phased Done row under after-only spec: %v", err)
	}
}

// badAnalyzerTrial builds a Trial carrying an unregistered analyzer
// that emits a non-finite extra in the given flavour, bypassing the
// spec (specs can only name registered analyzers).
func badAnalyzerTrial(prefixOnly, afterOnly, withBefore bool) Trial {
	trials := Trial{
		Index: 7, Cell: "bad", Procs: 3, Comm: 1,
		analyzers: analyzers.Set{&analyzers.Analyzer{
			Name:       "badcase",
			Keys:       []string{"badcase.poison"},
			PrefixOnly: prefixOnly,
			AfterOnly:  afterOnly,
			Run:        func(*analyzers.Input) []float64 { return []float64{math.NaN()} },
		}},
	}
	trials.Gen.Seed, trials.Gen.Tasks, trials.Gen.Utilization = 3, 12, 1.5
	if withBefore {
		phases, err := analyzers.ParsePhases([]string{"before", "after"})
		if err != nil {
			panic(err)
		}
		trials.phases = phases
	}
	return trials
}

// TestAnalyzeErrorPropagates: a non-finite extra aborts the trial with
// an error naming the analyzer and key — through the plain path, the
// before phase (computed in the prefix), and the memoised path.
func TestAnalyzeErrorPropagates(t *testing.T) {
	for _, tc := range []struct {
		label string
		trial Trial
		key   string
	}{
		{"suffix", badAnalyzerTrial(false, false, false), `"badcase.poison"`},
		{"prefix-only", badAnalyzerTrial(true, false, false), `"badcase.poison"`},
		{"before-phase", badAnalyzerTrial(false, false, true), `"before.badcase.poison"`},
	} {
		_, err := RunTrial(tc.trial)
		if err == nil {
			t.Fatalf("%s: non-finite extra did not error", tc.label)
		}
		for _, want := range []string{"badcase", tc.key, "non-finite"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("%s: error %q does not name %q", tc.label, err, want)
			}
		}

		// The memoised path surfaces the same error.
		cache := newPrefixCache([]Trial{tc.trial})
		if _, err := cache.runTrial(tc.trial, nil); err == nil || !strings.Contains(err.Error(), "badcase") {
			t.Fatalf("%s: memoised path lost the analyze error: %v", tc.label, err)
		}
	}
}
