package campaign

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

// refRun produces the uninterrupted single-host reference artifacts.
func refRun(t *testing.T) (*Result, []byte, []byte) {
	t.Helper()
	res, err := (&Engine{Workers: 4}).Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return res, data, csv.Bytes()
}

// TestSinkStreamsEveryLiveTrial checks the sink contract: every live
// trial is emitted exactly once, replayed Done rows are never
// re-emitted, and a sink error aborts the run.
func TestSinkStreamsEveryLiveTrial(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	eng := &Engine{Workers: 4, Sink: func(r TrialResult) error {
		mu.Lock()
		seen[r.Index]++
		mu.Unlock()
		return nil
	}}
	res, err := eng.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Trials) {
		t.Fatalf("sink saw %d distinct trials of %d", len(seen), len(res.Trials))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("trial %d emitted %d times", idx, n)
		}
	}

	// Replay the first half: the sink must only see the second half.
	done := append([]TrialResult(nil), res.Trials[:len(res.Trials)/2]...)
	seen = map[int]int{}
	eng.Done = done
	res2, err := eng.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res2.Trials)-len(done) {
		t.Fatalf("sink saw %d trials, want %d live ones", len(seen), len(res2.Trials)-len(done))
	}
	for idx := range seen {
		if idx < len(done) {
			t.Fatalf("sink re-emitted replayed trial %d", idx)
		}
	}

	// A failing sink aborts the sweep loudly.
	boom := errors.New("disk full")
	bad := &Engine{Workers: 4, Sink: func(TrialResult) error { return boom }}
	if _, err := bad.Run(smokeSpec()); !errors.Is(err, boom) {
		t.Fatalf("sink error not propagated: %v", err)
	}
}

// TestResumeByteIdentical replays every prefix-length split of a
// finished run and checks the resumed artifacts are byte-identical to
// the uninterrupted ones, at several worker counts.
func TestResumeByteIdentical(t *testing.T) {
	ref, refJSON, refCSV := refRun(t)
	for _, k := range []int{0, 1, 7, len(ref.Trials) - 1, len(ref.Trials)} {
		for _, workers := range []int{1, 2, 8} {
			eng := &Engine{Workers: workers, Done: append([]TrialResult(nil), ref.Trials[:k]...)}
			res, err := eng.Run(smokeSpec())
			if err != nil {
				t.Fatalf("k=%d workers=%d: %v", k, workers, err)
			}
			data, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, refJSON) {
				t.Fatalf("k=%d workers=%d: resumed JSON differs", k, workers)
			}
			var csv bytes.Buffer
			if err := res.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(csv.Bytes(), refCSV) {
				t.Fatalf("k=%d workers=%d: resumed CSV differs", k, workers)
			}
		}
	}
}

// TestShardFoldByteIdentical splits the grid into three index ranges,
// runs each as its own Engine, and folds the concatenated rows back
// into artifacts identical to the single run.
func TestShardFoldByteIdentical(t *testing.T) {
	ref, refJSON, refCSV := refRun(t)
	total := len(ref.Trials)
	var rows []TrialResult
	for i := 0; i < 3; i++ {
		lo, hi := total*i/3, total*(i+1)/3
		res, err := (&Engine{Workers: i + 1, Lo: lo, Hi: hi}).Run(smokeSpec())
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if len(res.Trials) != hi-lo {
			t.Fatalf("shard %d: %d rows, want %d", i, len(res.Trials), hi-lo)
		}
		rows = append(rows, res.Trials...)
	}
	folded, err := Fold(smokeSpec(), rows)
	if err != nil {
		t.Fatal(err)
	}
	data, err := folded.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, refJSON) {
		t.Fatal("folded shard JSON differs from single-host run")
	}
	var csv bytes.Buffer
	if err := folded.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv.Bytes(), refCSV) {
		t.Fatal("folded shard CSV differs from single-host run")
	}
}

// TestFoldValidation: gaps, duplicates, and enumeration mismatches must
// all fail loudly rather than publish aggregates over the wrong rows.
func TestFoldValidation(t *testing.T) {
	ref, _, _ := refRun(t)
	rows := append([]TrialResult(nil), ref.Trials...)

	if _, err := Fold(smokeSpec(), rows[:len(rows)-1]); err == nil || !strings.Contains(err.Error(), "fold of") {
		t.Fatalf("short row set: %v", err)
	}

	dup := append([]TrialResult(nil), rows...)
	dup[3] = dup[2]
	if _, err := Fold(smokeSpec(), dup); err == nil || !strings.Contains(err.Error(), "duplicate row") {
		t.Fatalf("duplicated row: %v", err)
	}

	swap := append([]TrialResult(nil), rows...)
	swap[0].Seed += 99
	if _, err := Fold(smokeSpec(), swap); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("seed mismatch: %v", err)
	}

	// Engine-side: Done rows outside the shard range are rejected.
	eng := &Engine{Workers: 1, Lo: 0, Hi: 4, Done: []TrialResult{rows[5]}}
	if _, err := eng.Run(smokeSpec()); err == nil || !strings.Contains(err.Error(), "outside shard range") {
		t.Fatalf("out-of-range done row: %v", err)
	}
	eng = &Engine{Workers: 1, Done: []TrialResult{rows[5], rows[5]}}
	if _, err := eng.Run(smokeSpec()); err == nil || !strings.Contains(err.Error(), "duplicate completed row") {
		t.Fatalf("duplicate done row: %v", err)
	}

	// Bad shard ranges are rejected up front.
	for _, r := range [][2]int{{-1, 4}, {4, 4}, {0, len(rows) + 1}} {
		if _, err := (&Engine{Workers: 1, Lo: r[0], Hi: r[1]}).Run(smokeSpec()); err == nil {
			t.Fatalf("range %v accepted", r)
		}
	}
}
