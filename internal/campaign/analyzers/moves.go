package analyzers

// The moves analyzer condenses the balancer's per-policy move trace:
// how many blocks actually relocated (block churn), how the gain was
// distributed over moves, and — from the candidate recording it turns
// on — how selective the per-processor evaluation was. This is the
// instrument that distinguishes a policy that wins by a few large moves
// from one that wins by many small ones.
//
// It reads the balancing outcome itself (AfterOnly): there is no move
// trace before balancing, so it never emits before.* or delta.* keys.

func init() {
	register(&Analyzer{
		Name:            "moves",
		NeedsCandidates: true,
		AfterOnly:       true,
		// The trial's move/forced/relaxed-LCM totals are already headline
		// metrics (`moves`, `forced`, `relaxed_lcm`); only the genuinely
		// new trace quantities are published here.
		Keys: []string{
			"moves.block_churn",
			"moves.cand_evals",
			"moves.cand_feasible",
			"moves.cand_feasible_ratio",
			"moves.conservative",
			"moves.gain_max",
			"moves.gain_mean",
			"moves.gained",
			"moves.relocated",
		},
		Run: runMoves,
	})
}

func runMoves(in *Input) []float64 {
	tr := in.Balance.Trace()
	churn, gainMean, feasRatio := 0.0, 0.0, 0.0
	if tr.Moves > 0 {
		churn = float64(tr.Relocated) / float64(tr.Moves)
		gainMean = float64(tr.GainSum) / float64(tr.Moves)
	}
	if tr.CandEvals > 0 {
		feasRatio = float64(tr.CandFeasible) / float64(tr.CandEvals)
	}
	conservative := 0.0
	if tr.Conservative {
		conservative = 1
	}
	return []float64{
		churn,
		float64(tr.CandEvals),
		float64(tr.CandFeasible),
		feasRatio,
		conservative,
		float64(tr.GainMax),
		gainMean,
		float64(tr.Gained),
		float64(tr.Relocated),
	}
}
