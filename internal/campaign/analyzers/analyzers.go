// Package analyzers is the registry of named per-trial analyzers for
// the campaign engine. An analyzer inspects one accepted trial — the
// generated task set, the balancing trace, and the before/after
// simulations — and contributes a fixed, namespaced set of scalar
// observables ("extras") to the trial's result. Extras ride the same
// ordered-fold aggregators as the headline metrics, so enabling an
// analyzer adds columns to the JSON/CSV artifacts without disturbing
// their byte-identical-at-any-worker-count guarantee.
//
// Analyzers run over one or two schedule phases (see phases.go): the
// balanced schedule always (the unprefixed keys), and — when the
// sweep enables the before phase — the initial pre-balancing schedule
// too, adding before.<ns>.* and delta.<ns>.* keys that quantify what
// balancing bought per trial.
//
// Determinism contract: an analyzer's Keys are a fixed sorted list, its
// Run returns exactly one finite float64 per key computed from the
// trial's private state alone, and nothing reads clocks, maps in
// iteration order, or shared mutables. Non-finite values (NaN, ±Inf)
// are rejected at the Run boundary with an error naming the analyzer
// and key — encoding/json cannot represent them, and catching the bad
// value when the trial runs beats failing at artifact-write time after
// the whole sweep has burned. The analyzer set and the phase set are
// part of the campaign spec (and therefore of Spec.Hash()), so journals
// written under different analyzer or phase sets can never be silently
// mixed.
package analyzers

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Input is the read-only view of one trial phase handed to every
// analyzer. Analyzers must not mutate any field (the schedules are
// shared with the caller and, under memoisation, across trials).
//
// Which fields are set depends on the phase:
//
//   - TS, Procs, and Comm are always set.
//   - Sched and Rep are the phase's schedule and its simulation: the
//     initial (pre-balance) schedule in the before phase, the balanced
//     one in the after phase. Phase-sensitive analyzers read these two
//     and nothing else, which is what makes them phase-agnostic. (The
//     current analyzers read only Sched; Rep is the deliberate
//     extension point for simulation-reading analyzers, populated in
//     both phases so such an analyzer never has to branch on
//     Balance != nil to pick Before or After.)
//   - Balance and After are set only in the after phase (AfterOnly
//     analyzers read the balancing outcome); Before is set in both
//     schedule phases. All three are nil for PrefixOnly analyzers.
type Input struct {
	TS    *model.TaskSet // the generated task set
	Procs int            // architecture size M
	Comm  model.Time     // inter-processor transfer time C

	Sched *sched.InstSchedule // the phase's schedule
	Rep   *sim.Report         // simulation of the phase's schedule

	Balance *core.Result // balancing outcome: moves, blocks, balanced schedule
	Before  *sim.Report  // simulation of the initial (pre-balance) schedule
	After   *sim.Report  // simulation of the balanced schedule
}

// Analyzer is one named, deterministic per-trial instrument.
type Analyzer struct {
	// Name is the registry key (also the extras namespace prefix).
	Name string
	// Keys lists the fully-namespaced extras this analyzer emits,
	// sorted. Run's result is aligned with it, index for index.
	Keys []string
	// NeedsCandidates marks analyzers that read the balancer's
	// per-processor candidate evaluations; the engine turns candidate
	// recording on only when such an analyzer is active, keeping the
	// default hot path allocation-free.
	NeedsCandidates bool
	// PrefixOnly marks analyzers whose Run reads only the
	// policy-independent trial prefix (TS, Procs, Comm — the schedule
	// and balance fields may be nil). The engine evaluates them once
	// per memoised prefix and shares the values across the policy cells
	// of a grid point instead of recomputing per cell. A PrefixOnly
	// analyzer is phase-invariant by construction — its before and
	// after values would be identical — so it never emits before.* or
	// delta.* keys.
	PrefixOnly bool
	// AfterOnly marks analyzers that read the balancing outcome itself
	// (Input.Balance); they have no meaningful value on the
	// pre-balancing schedule and never emit before.* or delta.* keys.
	AfterOnly bool
	// Run computes the extras for one trial phase, one value per entry
	// of Keys. It must be safe for concurrent invocation across trials.
	Run func(in *Input) []float64
}

// phaseSensitive reports whether the analyzer runs over the before
// phase (and therefore gains before.*/delta.* key siblings).
func (a *Analyzer) phaseSensitive() bool { return !a.PrefixOnly && !a.AfterOnly }

// registry holds the analyzers sorted by name — the canonical order
// Parse normalises spec lists into. register keeps it sorted rather
// than relying on init() order: init order follows source-file
// compilation order, and the canonical order feeds Spec.Hash(), so
// renaming a file must never invalidate every existing journal.
var registry []*Analyzer

// reservedNames can never be analyzer names: "before" and "delta" are
// the phase-axis key prefixes, "none" is the CLI sentinel for the
// empty set.
var reservedNames = map[string]bool{"before": true, "delta": true, "none": true}

func register(a *Analyzer) {
	if reservedNames[a.Name] {
		panic(fmt.Sprintf("analyzers: %q is a reserved name", a.Name))
	}
	for _, k := range a.Keys {
		if !strings.HasPrefix(k, a.Name+".") {
			panic(fmt.Sprintf("analyzers: %s key %q outside its namespace", a.Name, k))
		}
	}
	if !sort.StringsAreSorted(a.Keys) {
		panic(fmt.Sprintf("analyzers: %s keys not sorted", a.Name))
	}
	if a.PrefixOnly && a.AfterOnly {
		panic(fmt.Sprintf("analyzers: %s cannot be both PrefixOnly and AfterOnly", a.Name))
	}
	for _, b := range registry {
		if b.Name == a.Name {
			panic(fmt.Sprintf("analyzers: %q registered twice", a.Name))
		}
	}
	i := sort.Search(len(registry), func(j int) bool { return registry[j].Name > a.Name })
	registry = append(registry, nil)
	copy(registry[i+1:], registry[i:])
	registry[i] = a
}

// Names returns every registered analyzer name in canonical order.
func Names() []string {
	out := make([]string, len(registry))
	for i, a := range registry {
		out[i] = a.Name
	}
	return out
}

// Get looks an analyzer up by name.
func Get(name string) (*Analyzer, bool) {
	for _, a := range registry {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Set is a resolved analyzer selection in canonical order. The nil Set
// is the zero-analyzer fast path.
type Set []*Analyzer

// Parse resolves a list of analyzer names into a Set, rejecting unknown
// names and duplicates. The result — and Names of it — is in canonical
// (lexical) order regardless of the input order, so two specs naming
// the same analyzers hash identically.
func Parse(names []string) (Set, error) {
	if len(names) == 0 {
		return nil, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := Get(n); !ok {
			return nil, fmt.Errorf("analyzers: unknown analyzer %q (want %s)", n, strings.Join(Names(), "|"))
		}
		if want[n] {
			return nil, fmt.Errorf("analyzers: analyzer %q named twice", n)
		}
		want[n] = true
	}
	set := make(Set, 0, len(want))
	for _, a := range registry {
		if want[a.Name] {
			set = append(set, a)
		}
	}
	return set, nil
}

// Names returns the set's analyzer names in canonical order.
func (s Set) Names() []string {
	if len(s) == 0 {
		return nil
	}
	out := make([]string, len(s))
	for i, a := range s {
		out[i] = a.Name
	}
	return out
}

// Keys returns the union of the set's after-phase extras keys, sorted.
// Namespacing makes the per-analyzer key lists disjoint by
// construction.
func (s Set) Keys() []string {
	if len(s) == 0 {
		return nil
	}
	var out []string
	for _, a := range s {
		out = append(out, a.Keys...)
	}
	sort.Strings(out)
	return out
}

// BeforeKeys returns the unprefixed keys that gain before.* and
// delta.* siblings when the before phase is enabled: the keys of every
// phase-sensitive analyzer (neither PrefixOnly nor AfterOnly), sorted.
func (s Set) BeforeKeys() []string {
	var out []string
	for _, a := range s {
		if a.phaseSensitive() {
			out = append(out, a.Keys...)
		}
	}
	sort.Strings(out)
	return out
}

// PhasedKeys returns the full extras key set the phase selection
// produces, sorted: the after-phase keys, plus the before.* and
// delta.* siblings of every phase-sensitive key when the before phase
// is enabled. This is the key set journal replay and merge validate
// rows against.
func (s Set) PhasedKeys(phases PhaseSet) []string {
	out := s.Keys()
	if !phases.ContainsBefore() {
		return out
	}
	for _, k := range s.BeforeKeys() {
		out = append(out, BeforePrefix+k, DeltaPrefix+k)
	}
	sort.Strings(out)
	return out
}

// NeedsCandidates reports whether any analyzer in the set needs the
// balancer's candidate recording.
func (s Set) NeedsCandidates() bool {
	for _, a := range s {
		if a.NeedsCandidates {
			return true
		}
	}
	return false
}

// Run executes every analyzer of the set over one trial (after phase
// only) and returns the merged extras payload, or nil for the empty
// set.
func (s Set) Run(in *Input) (map[string]float64, error) {
	pre, err := s.RunPrefix(in)
	if err != nil {
		return nil, err
	}
	return s.RunSuffix(in, pre, DefaultPhases())
}

// RunPrefix executes only the PrefixOnly analyzers — Input needs just
// TS, Procs, and Comm. The campaign engine calls it once per memoised
// prefix, so the policy cells sharing a grid point share one screen.
func (s Set) RunPrefix(in *Input) (map[string]float64, error) {
	return s.runMatching(in, func(a *Analyzer) bool { return a.PrefixOnly }, "", nil)
}

// RunBefore executes the phase-sensitive analyzers over the
// pre-balancing schedule (Input.Sched/Rep must be the initial schedule
// and its simulation), writing each value under its "before."-prefixed
// key into out (allocated on first need, so the empty set stays nil).
// Like RunPrefix it reads nothing policy-dependent: the campaign
// engine calls it once per memoised prefix and shares the map across
// the policy cells of a grid point.
func (s Set) RunBefore(in *Input, out map[string]float64) (map[string]float64, error) {
	return s.runMatching(in, (*Analyzer).phaseSensitive, BeforePrefix, out)
}

// RunSuffix executes the policy-dependent after-phase analyzers and
// merges the precomputed prefix extras (prefix-only values plus, with
// the before phase on, the before.* values) into the result. When the
// phase set enables the before phase, the delta.* keys are computed
// here as after − before. The prefix map is copied, never retained or
// mutated — memoised prefixes hand the same map to many concurrent
// trials.
func (s Set) RunSuffix(in *Input, prefix map[string]float64, phases PhaseSet) (map[string]float64, error) {
	var out map[string]float64
	if len(prefix) > 0 {
		out = make(map[string]float64, len(prefix))
		for k, v := range prefix {
			out[k] = v
		}
	}
	out, err := s.runMatching(in, func(a *Analyzer) bool { return !a.PrefixOnly }, "", out)
	if err != nil {
		return nil, err
	}
	if phases.ContainsBefore() {
		// Walk the analyzers' fixed key lists directly rather than
		// materialising BeforeKeys(): this runs once per accepted trial,
		// and the sorted union would be an allocation+sort repeated
		// thousands of times per sweep for no behavioural difference
		// (map insertion order is irrelevant).
		for _, a := range s {
			if !a.phaseSensitive() {
				continue
			}
			for _, k := range a.Keys {
				d := out[k] - out[BeforePrefix+k]
				if math.IsNaN(d) || math.IsInf(d, 0) {
					return nil, fmt.Errorf("analyzers: delta of %q is %v (before %v, after %v) — non-finite extras cannot be encoded into the JSON artifact",
						k, d, out[BeforePrefix+k], out[k])
				}
				out[DeltaPrefix+k] = d
			}
		}
	}
	return out, nil
}

// runMatching runs the analyzers selected by match into out (allocated
// on first need, so the empty set stays nil), prefixing every key with
// keyPrefix. Each value is validated finite at this boundary: a NaN or
// ±Inf extra would otherwise survive the whole sweep and only explode
// when encoding/json refuses it at artifact-write time.
func (s Set) runMatching(in *Input, match func(*Analyzer) bool, keyPrefix string, out map[string]float64) (map[string]float64, error) {
	for _, a := range s {
		if !match(a) {
			continue
		}
		vals := a.Run(in)
		if len(vals) != len(a.Keys) {
			panic(fmt.Sprintf("analyzers: %s returned %d values for %d keys", a.Name, len(vals), len(a.Keys)))
		}
		if out == nil {
			out = make(map[string]float64)
		}
		for i, k := range a.Keys {
			if v := vals[i]; math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("analyzers: %s emitted %v for %q — non-finite extras cannot be encoded into the JSON artifact", a.Name, v, keyPrefix+k)
			}
			out[keyPrefix+k] = vals[i]
		}
	}
	return out, nil
}
