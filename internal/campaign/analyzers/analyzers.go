// Package analyzers is the registry of named per-trial analyzers for
// the campaign engine. An analyzer inspects one accepted trial — the
// generated task set, the balancing trace, and the before/after
// simulations — and contributes a fixed, namespaced set of scalar
// observables ("extras") to the trial's result. Extras ride the same
// ordered-fold aggregators as the headline metrics, so enabling an
// analyzer adds columns to the JSON/CSV artifacts without disturbing
// their byte-identical-at-any-worker-count guarantee.
//
// Determinism contract: an analyzer's Keys are a fixed sorted list, its
// Run returns exactly one float64 per key computed from the trial's
// private state alone, and nothing reads clocks, maps in iteration
// order, or shared mutables. The analyzer set is part of the campaign
// spec (and therefore of Spec.Hash()), so journals written under
// different analyzer sets can never be silently mixed.
package analyzers

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// Input is the read-only view of one accepted trial handed to every
// analyzer. All fields are set; analyzers must not mutate any of them
// (the schedule inside Balance is shared with the caller).
type Input struct {
	TS    *model.TaskSet // the generated task set
	Procs int            // architecture size M
	Comm  model.Time     // inter-processor transfer time C

	Balance *core.Result // balancing outcome: moves, blocks, balanced schedule
	Before  *sim.Report  // simulation of the initial (pre-balance) schedule
	After   *sim.Report  // simulation of the balanced schedule
}

// Analyzer is one named, deterministic per-trial instrument.
type Analyzer struct {
	// Name is the registry key (also the extras namespace prefix).
	Name string
	// Keys lists the fully-namespaced extras this analyzer emits,
	// sorted. Run's result is aligned with it, index for index.
	Keys []string
	// NeedsCandidates marks analyzers that read the balancer's
	// per-processor candidate evaluations; the engine turns candidate
	// recording on only when such an analyzer is active, keeping the
	// default hot path allocation-free.
	NeedsCandidates bool
	// PrefixOnly marks analyzers whose Run reads only the
	// policy-independent trial prefix (TS, Procs, Comm — the Balance/
	// Before/After fields may be nil). The engine evaluates them once
	// per memoised prefix and shares the values across the policy cells
	// of a grid point instead of recomputing per cell.
	PrefixOnly bool
	// Run computes the extras for one trial, one value per entry of
	// Keys. It must be safe for concurrent invocation across trials.
	Run func(in *Input) []float64
}

// registry holds the analyzers sorted by name — the canonical order
// Parse normalises spec lists into. register keeps it sorted rather
// than relying on init() order: init order follows source-file
// compilation order, and the canonical order feeds Spec.Hash(), so
// renaming a file must never invalidate every existing journal.
var registry []*Analyzer

func register(a *Analyzer) {
	for _, k := range a.Keys {
		if !strings.HasPrefix(k, a.Name+".") {
			panic(fmt.Sprintf("analyzers: %s key %q outside its namespace", a.Name, k))
		}
	}
	if !sort.StringsAreSorted(a.Keys) {
		panic(fmt.Sprintf("analyzers: %s keys not sorted", a.Name))
	}
	for _, b := range registry {
		if b.Name == a.Name {
			panic(fmt.Sprintf("analyzers: %q registered twice", a.Name))
		}
	}
	i := sort.Search(len(registry), func(j int) bool { return registry[j].Name > a.Name })
	registry = append(registry, nil)
	copy(registry[i+1:], registry[i:])
	registry[i] = a
}

// Names returns every registered analyzer name in canonical order.
func Names() []string {
	out := make([]string, len(registry))
	for i, a := range registry {
		out[i] = a.Name
	}
	return out
}

// Get looks an analyzer up by name.
func Get(name string) (*Analyzer, bool) {
	for _, a := range registry {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Set is a resolved analyzer selection in canonical order. The nil Set
// is the zero-analyzer fast path.
type Set []*Analyzer

// Parse resolves a list of analyzer names into a Set, rejecting unknown
// names and duplicates. The result — and Names of it — is in canonical
// (lexical) order regardless of the input order, so two specs naming
// the same analyzers hash identically.
func Parse(names []string) (Set, error) {
	if len(names) == 0 {
		return nil, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := Get(n); !ok {
			return nil, fmt.Errorf("analyzers: unknown analyzer %q (want %s)", n, strings.Join(Names(), "|"))
		}
		if want[n] {
			return nil, fmt.Errorf("analyzers: analyzer %q named twice", n)
		}
		want[n] = true
	}
	set := make(Set, 0, len(want))
	for _, a := range registry {
		if want[a.Name] {
			set = append(set, a)
		}
	}
	return set, nil
}

// Names returns the set's analyzer names in canonical order.
func (s Set) Names() []string {
	if len(s) == 0 {
		return nil
	}
	out := make([]string, len(s))
	for i, a := range s {
		out[i] = a.Name
	}
	return out
}

// Keys returns the union of the set's extras keys, sorted. Namespacing
// makes the per-analyzer key lists disjoint by construction.
func (s Set) Keys() []string {
	if len(s) == 0 {
		return nil
	}
	var out []string
	for _, a := range s {
		out = append(out, a.Keys...)
	}
	sort.Strings(out)
	return out
}

// NeedsCandidates reports whether any analyzer in the set needs the
// balancer's candidate recording.
func (s Set) NeedsCandidates() bool {
	for _, a := range s {
		if a.NeedsCandidates {
			return true
		}
	}
	return false
}

// Run executes every analyzer of the set over one trial and returns the
// merged extras payload, or nil for the empty set.
func (s Set) Run(in *Input) map[string]float64 {
	return s.RunSuffix(in, s.RunPrefix(in))
}

// RunPrefix executes only the PrefixOnly analyzers — Input needs just
// TS, Procs, and Comm. The campaign engine calls it once per memoised
// prefix, so the policy cells sharing a grid point share one screen.
func (s Set) RunPrefix(in *Input) map[string]float64 {
	return s.runMatching(in, true, nil)
}

// RunSuffix executes the policy-dependent analyzers and merges the
// precomputed prefix extras into the result. The prefix map is copied,
// never retained or mutated — memoised prefixes hand the same map to
// many concurrent trials.
func (s Set) RunSuffix(in *Input, prefix map[string]float64) map[string]float64 {
	var out map[string]float64
	if len(prefix) > 0 {
		out = make(map[string]float64, len(prefix))
		for k, v := range prefix {
			out[k] = v
		}
	}
	return s.runMatching(in, false, out)
}

// runMatching runs the analyzers with the given PrefixOnly flavour into
// out (allocated on first need, so the empty set stays nil).
func (s Set) runMatching(in *Input, prefixOnly bool, out map[string]float64) map[string]float64 {
	for _, a := range s {
		if a.PrefixOnly != prefixOnly {
			continue
		}
		vals := a.Run(in)
		if len(vals) != len(a.Keys) {
			panic(fmt.Sprintf("analyzers: %s returned %d values for %d keys", a.Name, len(vals), len(a.Keys)))
		}
		if out == nil {
			out = make(map[string]float64)
		}
		for i, k := range a.Keys {
			out[k] = vals[i]
		}
	}
	return out
}
