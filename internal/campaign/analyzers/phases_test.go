package analyzers

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestParsePhases covers validation and canonicalisation of phase
// lists: the two expressible sets, order-insensitivity, and the
// targeted rejections.
func TestParsePhases(t *testing.T) {
	def, err := ParsePhases(nil)
	if err != nil || def.ContainsBefore() {
		t.Fatalf("empty list: %v %v", def, err)
	}
	if got := def.Names(); !reflect.DeepEqual(got, []string{"after"}) {
		t.Fatalf("default names %v", got)
	}

	both, err := ParsePhases([]string{"after", "before"})
	if err != nil || !both.ContainsBefore() {
		t.Fatalf("before,after: %v %v", both, err)
	}
	// Canonical order is pipeline order regardless of input order.
	if got := both.Names(); !reflect.DeepEqual(got, []string{"before", "after"}) {
		t.Fatalf("canonical names %v", got)
	}
	if both.String() != "before,after" {
		t.Fatalf("String = %q", both.String())
	}

	if _, err := ParsePhases([]string{"during"}); err == nil || !strings.Contains(err.Error(), "unknown phase") {
		t.Fatalf("unknown phase: %v", err)
	}
	if _, err := ParsePhases([]string{"after", "after"}); err == nil || !strings.Contains(err.Error(), "named twice") {
		t.Fatalf("duplicate phase: %v", err)
	}
	if _, err := ParsePhases([]string{"before"}); err == nil || !strings.Contains(err.Error(), "mandatory") {
		t.Fatalf("before-only set: %v", err)
	}
}

// TestPhasedKeys: the before phase adds before.*/delta.* siblings for
// exactly the phase-sensitive analyzers — not for PrefixOnly ones
// (phase-invariant by construction) nor AfterOnly ones (no before
// value exists).
func TestPhasedKeys(t *testing.T) {
	set, err := Parse(Names())
	if err != nil {
		t.Fatal(err)
	}
	afterOnly := set.PhasedKeys(DefaultPhases())
	if !reflect.DeepEqual(afterOnly, set.Keys()) {
		t.Fatalf("after-only phased keys %v differ from Keys %v", afterOnly, set.Keys())
	}

	both, err := ParsePhases([]string{"before", "after"})
	if err != nil {
		t.Fatal(err)
	}
	phased := set.PhasedKeys(both)
	want := len(set.Keys()) + 2*len(set.BeforeKeys())
	if len(phased) != want {
		t.Fatalf("phased key count %d, want %d", len(phased), want)
	}
	have := map[string]bool{}
	for _, k := range phased {
		have[k] = true
	}
	for _, k := range set.BeforeKeys() {
		if !have[BeforePrefix+k] || !have[DeltaPrefix+k] {
			t.Fatalf("phase-sensitive key %q lacks before/delta siblings", k)
		}
	}
	// The phase-capability split is part of the public schema: pin it.
	for name, sensitive := range map[string]bool{
		"contention":     true,
		"reuse":          true,
		"moves":          false, // AfterOnly: reads the balancing trace
		"schedulability": false, // PrefixOnly: phase-invariant
	} {
		a, ok := Get(name)
		if !ok {
			t.Fatalf("analyzer %q not registered", name)
		}
		for _, k := range a.Keys {
			if have[BeforePrefix+k] != sensitive {
				t.Fatalf("%s: before-sibling presence for %q = %v, want %v", name, k, have[BeforePrefix+k], sensitive)
			}
		}
	}
}

// TestRunBeforePhase runs the phase-sensitive analyzers over a real
// pre-balancing schedule and checks the keys land under before.* with
// plausible values.
func TestRunBeforePhase(t *testing.T) {
	set, err := Parse(Names())
	if err != nil {
		t.Fatal(err)
	}
	in := beforeInput(t)
	extras, err := set.RunBefore(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(extras) != len(set.BeforeKeys()) {
		t.Fatalf("before extras carry %d keys, want %d", len(extras), len(set.BeforeKeys()))
	}
	for _, k := range set.BeforeKeys() {
		if _, ok := extras[BeforePrefix+k]; !ok {
			t.Fatalf("before extras missing %q", BeforePrefix+k)
		}
	}
	if v := extras["before.contention.busy_mean"]; v <= 0 || v > 1 {
		t.Fatalf("before busy_mean %v outside (0,1]", v)
	}
	// On the initial schedule the reuse accounting is defined and the
	// reuse peak can never exceed the paper peak.
	if extras["before.reuse.savings_defined"] != 1 {
		t.Fatalf("reuse accounting undefined on a real schedule: %v", extras)
	}
	if extras["before.reuse.reuse_total"] > extras["before.reuse.paper_total"] {
		t.Fatalf("reuse accounting above paper accounting: %v", extras)
	}
}

// TestReuseAnalyzerMatchesSim: the reuse analyzer is a straight
// projection of sim.MinMemoryWithReuse on the phase's schedule.
func TestReuseAnalyzerMatchesSim(t *testing.T) {
	in := pipelineInput(t, false)
	set, err := Parse([]string{"reuse"})
	if err != nil {
		t.Fatal(err)
	}
	extras := mustRun(t, set, in)
	rep := sim.MinMemoryWithReuse(in.Sched)
	var paperTotal, reuseTotal float64
	for i := range rep.Paper {
		paperTotal += float64(rep.Paper[i])
		reuseTotal += float64(rep.Reuse[i])
	}
	if extras["reuse.paper_total"] != paperTotal || extras["reuse.reuse_total"] != reuseTotal {
		t.Fatalf("totals %v do not match sim report (paper %v, reuse %v)", extras, paperTotal, reuseTotal)
	}
	savings, ok := rep.SavingsOK()
	if !ok || extras["reuse.savings"] != savings || extras["reuse.savings_defined"] != 1 {
		t.Fatalf("savings %v does not match sim report (%v, %v)", extras, savings, ok)
	}
}

// TestNonFiniteExtrasRefused is the Analyze-boundary validation pin: a
// NaN or ±Inf value is refused the moment the analyzer emits it, with
// the analyzer and key in the error — not hours later when
// encoding/json refuses the finished artifact.
func TestNonFiniteExtrasRefused(t *testing.T) {
	in := pipelineInput(t, false)
	for _, tc := range []struct {
		name string
		val  float64
	}{
		{"nan", math.NaN()},
		{"+inf", math.Inf(1)},
		{"-inf", math.Inf(-1)},
	} {
		bad := Set{&Analyzer{
			Name: "badcase",
			Keys: []string{"badcase.poison"},
			Run:  func(*Input) []float64 { return []float64{tc.val} },
		}}
		_, err := bad.Run(in)
		if err == nil {
			t.Fatalf("%s: non-finite extra accepted", tc.name)
		}
		for _, want := range []string{"badcase", `"badcase.poison"`, "non-finite"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("%s: error %q does not name %q", tc.name, err, want)
			}
		}

		// The before phase names the prefixed key.
		badBefore := Set{&Analyzer{
			Name: "badcase",
			Keys: []string{"badcase.poison"},
			Run:  func(*Input) []float64 { return []float64{tc.val} },
		}}
		_, err = badBefore.RunBefore(beforeInput(t), nil)
		if err == nil || !strings.Contains(err.Error(), `"before.badcase.poison"`) {
			t.Fatalf("%s: before-phase error %v does not name the prefixed key", tc.name, err)
		}
	}

	// A finite-before/finite-after pair can still make a non-finite
	// delta (overflow); the delta pass validates too.
	huge := Set{&Analyzer{
		Name: "badcase",
		Keys: []string{"badcase.huge"},
		Run:  func(in *Input) []float64 { return []float64{math.MaxFloat64 * sign(in)} },
	}}
	phases, err := ParsePhases([]string{"before", "after"})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := huge.RunBefore(beforeInput(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := huge.RunSuffix(in, pre, phases); err == nil || !strings.Contains(err.Error(), "delta") {
		t.Fatalf("overflowing delta accepted: %v", err)
	}
}

// sign distinguishes the two phases of the huge-delta case by the
// fields only the after phase sets.
func sign(in *Input) float64 {
	if in.Balance != nil {
		return 1
	}
	return -1
}
