package analyzers

import "repro/internal/sched"

// The contention analyzer reads a schedule's per-processor occupancy
// over the makespan window (sched.Occupancy): how evenly the busy time
// spreads across processors and how the idle time fragments into
// windows. The paper's §1 motivation is exactly this quantity ("over
// 65% of processors are idle at any given time"); the analyzer shows
// how much of that idleness the balancing removed and where the
// residual contention sits.
//
// It is phase-sensitive: it reads only Input.Sched, so with the before
// phase enabled it instruments the initial schedule too, and the
// delta.contention.* keys show the idleness balancing removed per
// trial instead of leaving it to be inferred across columns.

func init() {
	register(&Analyzer{
		Name: "contention",
		Keys: []string{
			"contention.busy_max",
			"contention.busy_mean",
			"contention.busy_min",
			"contention.busy_spread",
			"contention.idle_window_max",
			"contention.idle_windows_mean",
		},
		Run: runContention,
	})
}

func runContention(in *Input) []float64 {
	horizon := in.Sched.Makespan()
	occ := sched.Occupancy(in.Sched, horizon)
	if horizon <= 0 || len(occ) == 0 {
		return make([]float64, 6)
	}
	h := float64(horizon)
	busyMin, busyMax, busySum := 1.0, 0.0, 0.0
	windows, maxIdle := 0, 0.0
	for _, o := range occ {
		busy := float64(o.Busy) / h
		busySum += busy
		if busy < busyMin {
			busyMin = busy
		}
		if busy > busyMax {
			busyMax = busy
		}
		windows += o.IdleWindows
		if idle := float64(o.MaxIdle); idle > maxIdle {
			maxIdle = idle
		}
	}
	return []float64{
		busyMax,
		busySum / float64(len(occ)),
		busyMin,
		busyMax - busyMin,
		maxIdle,
		float64(windows) / float64(len(occ)),
	}
}
