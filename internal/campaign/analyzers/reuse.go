package analyzers

import "repro/internal/sim"

// The reuse analyzer plumbs the paper's figure-1 memory argument
// (internal/sim/reuse.go) into campaigns: per processor, the paper
// charges every resident instance its full memory amount ("memory
// reuse is not always possible"), while a real allocator can reuse
// storage between instances whose buffer lifetimes do not overlap.
// sim.MinMemoryWithReuse computes that lower bound; the analyzer
// publishes both accountings plus the savings fraction.
//
// It is phase-sensitive: it reads only the phase's schedule (Sched),
// so with the before phase enabled the artifacts carry the reuse
// accounting of the initial schedule, the balanced one, and their
// delta — how balancing moved the reuse opportunity, not just the
// paper-accounted totals the headline metrics (paper_mem, reuse_mem,
// reuse_savings) already report for the balanced schedule.

func init() {
	register(&Analyzer{
		Name: "reuse",
		Keys: []string{
			"reuse.paper_max",
			"reuse.paper_total",
			"reuse.reuse_max",
			"reuse.reuse_total",
			"reuse.savings",
			"reuse.savings_defined",
		},
		Run: runReuse,
	})
}

func runReuse(in *Input) []float64 {
	rep := sim.MinMemoryWithReuse(in.Sched)
	var paperTotal, paperMax, reuseTotal, reuseMax float64
	for i := range rep.Paper {
		p, u := float64(rep.Paper[i]), float64(rep.Reuse[i])
		paperTotal += p
		reuseTotal += u
		if p > paperMax {
			paperMax = p
		}
		if u > reuseMax {
			reuseMax = u
		}
	}
	// SavingsOK disambiguates the two zero cases: savings_defined is 0
	// when ΣPaper==0 (nothing to compare — the savings value is a
	// convention, not a measurement) and 1 when the 0 means "genuinely
	// no savings". Balancing only relocates instances, so ΣPaper — and
	// with it this flag — is identical in both phases:
	// delta.reuse.savings_defined is structurally zero (documented in
	// docs/analyzers.md; the delta machinery is uniform over a set's
	// keys rather than special-casing flag columns).
	savings, ok := rep.SavingsOK()
	defined := 0.0
	if ok {
		defined = 1
	}
	return []float64{paperMax, paperTotal, reuseMax, reuseTotal, savings, defined}
}
