package analyzers

import (
	"fmt"
	"strings"
)

// phases.go defines the before/after phase axis of the analyzer
// subsystem. The paper's central claim is that balancing *improves* a
// schedule; instrumenting only the balanced state can never show the
// improvement itself. With the before phase enabled, every
// phase-sensitive analyzer also runs over the pre-balancing schedule,
// and the trial's extras grow two sibling namespaces per analyzer key:
//
//	<ns>.<key>         the balanced (after) schedule — the existing keys
//	before.<ns>.<key>  the same instrument over the initial schedule
//	delta.<ns>.<key>   after − before, what balancing bought
//
// Two analyzer classes opt out of the before phase by construction:
// PrefixOnly analyzers read nothing schedule-dependent (their before
// and after values would be identical), and AfterOnly analyzers read
// the balancing outcome itself (there is no before value to take).
// Neither emits before.* or delta.* keys.

// Phase names. The canonical phase-set order is pipeline order
// (before, after), not lexical — "what runs first" reads naturally in
// specs, flags, and error messages.
const (
	PhaseBefore = "before"
	PhaseAfter  = "after"
)

// BeforePrefix and DeltaPrefix are the namespaces the before phase
// adds. They can never collide with analyzer namespaces: "before" and
// "delta" are reserved analyzer names (register panics on them).
const (
	BeforePrefix = "before."
	DeltaPrefix  = "delta."
)

// PhaseSet is a validated, canonical phase selection. Exactly two sets
// are expressible: {after} (the zero-cost default, ContainsBefore
// false) and {before, after}. The after phase is mandatory — it holds
// the unprefixed keys every artifact consumer reads, and a before-only
// sweep could not compute deltas.
type PhaseSet struct {
	before bool
}

// DefaultPhases is the after-only set every spec gets when it names no
// phases.
func DefaultPhases() PhaseSet { return PhaseSet{} }

// ParsePhases resolves a phase-name list into a PhaseSet, rejecting
// unknown names, duplicates, and sets without the mandatory after
// phase. The nil/empty list is the default (after-only) set, and the
// input order never matters.
func ParsePhases(names []string) (PhaseSet, error) {
	if len(names) == 0 {
		return DefaultPhases(), nil
	}
	var before, after bool
	for _, n := range names {
		switch n {
		case PhaseBefore:
			if before {
				return PhaseSet{}, fmt.Errorf("analyzers: phase %q named twice", n)
			}
			before = true
		case PhaseAfter:
			if after {
				return PhaseSet{}, fmt.Errorf("analyzers: phase %q named twice", n)
			}
			after = true
		default:
			return PhaseSet{}, fmt.Errorf("analyzers: unknown phase %q (want %s|%s)", n, PhaseBefore, PhaseAfter)
		}
	}
	if !after {
		return PhaseSet{}, fmt.Errorf("analyzers: phase set %s lacks the mandatory %q phase (artifacts always carry the balanced schedule's extras)",
			strings.Join(names, ","), PhaseAfter)
	}
	return PhaseSet{before: before}, nil
}

// ContainsBefore reports whether the before phase is enabled.
func (p PhaseSet) ContainsBefore() bool { return p.before }

// Names returns the canonical name list: ["after"] or
// ["before","after"].
func (p PhaseSet) Names() []string {
	if p.before {
		return []string{PhaseBefore, PhaseAfter}
	}
	return []string{PhaseAfter}
}

// String renders the set for flags and error messages.
func (p PhaseSet) String() string { return strings.Join(p.Names(), ",") }
