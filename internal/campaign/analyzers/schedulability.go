package analyzers

import "repro/internal/analysis"

// The schedulability analyzer re-screens the generated task set against
// the architecture with analysis.CheckSchedulability and publishes the
// margins: how much utilisation headroom the instance had, how full its
// densest period window was, and how many task pairs could never share
// a processor. Together they explain acceptance behaviour — trials near
// zero margin are the ones the greedy substrate starts refusing.
//
// The screen depends only on the generated system and the architecture
// (PrefixOnly), so the engine evaluates it once per memoised prefix:
// the O(n²) pairwise-gcd scan is not repeated per policy cell.

func init() {
	register(&Analyzer{
		Name:       "schedulability",
		PrefixOnly: true,
		Keys: []string{
			"schedulability.densest_demand",
			"schedulability.densest_margin",
			"schedulability.densest_period",
			"schedulability.pair_conflict_ratio",
			"schedulability.pair_conflicts",
			"schedulability.util",
			"schedulability.util_margin",
		},
		Run: runSchedulability,
	})
}

func runSchedulability(in *Input) []float64 {
	// An accepted trial passed the screen on the way in, but the report
	// is still returned alongside any error, so the margins are valid
	// either way.
	rep, _ := analysis.CheckSchedulability(in.TS, in.Procs)

	n := in.TS.Len()
	pairs := n * (n - 1) / 2
	ratio := 0.0
	if pairs > 0 {
		ratio = float64(len(rep.PairConflicts)) / float64(pairs)
	}
	return []float64{
		float64(rep.DensestDemand),
		rep.DensestMargin(),
		float64(rep.DensestPeriod),
		ratio,
		float64(len(rep.PairConflicts)),
		rep.Utilization,
		rep.UtilMargin(),
	}
}
