package analyzers

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sched"
	"repro/internal/sim"
)

// pipelineInput runs the real pipeline on a small schedulable instance
// and returns the analyzer input an accepted campaign trial would see.
func pipelineInput(t *testing.T, recordCandidates bool) *Input {
	t.Helper()
	ts, err := gen.Generate(gen.Config{Seed: 3, Tasks: 12, Utilization: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	ar := arch.MustNew(3, 1)
	s, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		t.Fatal(err)
	}
	is := sched.FromSchedule(s)
	before, err := (&sim.Runner{}).Run(is)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Balancer{RecordCandidates: recordCandidates}).Run(is)
	if err != nil {
		t.Fatal(err)
	}
	after, err := (&sim.Runner{}).Run(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	return &Input{
		TS: ts, Procs: ar.Procs, Comm: ar.CommTime,
		Sched: res.Schedule, Rep: after,
		Balance: res, Before: before, After: after,
	}
}

// beforeInput rebuilds the before-phase view of the same trial: the
// initial schedule and its simulation, no balancing outcome.
func beforeInput(t *testing.T) *Input {
	t.Helper()
	ts, err := gen.Generate(gen.Config{Seed: 3, Tasks: 12, Utilization: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	ar := arch.MustNew(3, 1)
	s, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		t.Fatal(err)
	}
	is := sched.FromSchedule(s)
	before, err := (&sim.Runner{}).Run(is)
	if err != nil {
		t.Fatal(err)
	}
	return &Input{TS: ts, Procs: ar.Procs, Comm: ar.CommTime, Sched: is, Rep: before, Before: before}
}

// mustRun is set.Run with the error path fatal — the helper every
// valid-analyzer test goes through.
func mustRun(t *testing.T, s Set, in *Input) map[string]float64 {
	t.Helper()
	extras, err := s.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return extras
}

// TestRegistryInvariants pins the registry contract every analyzer must
// honour: namespaced sorted keys, disjoint across analyzers.
func TestRegistryInvariants(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no analyzers registered")
	}
	// Canonical order must be lexical, not init()/file order: it feeds
	// Spec.Hash(), so a source-file rename must never change it.
	if !sort.StringsAreSorted(names) {
		t.Fatalf("registry order not lexical: %v", names)
	}
	seen := map[string]string{}
	for _, n := range names {
		a, ok := Get(n)
		if !ok {
			t.Fatalf("Names lists %q but Get cannot find it", n)
		}
		if len(a.Keys) == 0 {
			t.Fatalf("%s: no keys", n)
		}
		if !sort.StringsAreSorted(a.Keys) {
			t.Fatalf("%s: keys not sorted: %v", n, a.Keys)
		}
		for _, k := range a.Keys {
			if !strings.HasPrefix(k, n+".") {
				t.Fatalf("%s: key %q outside its namespace", n, k)
			}
			if prev, dup := seen[k]; dup {
				t.Fatalf("key %q claimed by both %s and %s", k, prev, n)
			}
			seen[k] = n
		}
	}
	for _, want := range []string{"schedulability", "moves", "contention", "reuse"} {
		if _, ok := Get(want); !ok {
			t.Fatalf("analyzer %q not registered", want)
		}
	}
	// The phase-axis namespaces and the CLI sentinel can never be
	// claimed as analyzer names.
	for name := range reservedNames {
		if _, ok := Get(name); ok {
			t.Fatalf("reserved name %q is registered", name)
		}
	}
}

// TestParse covers validation and canonicalisation of analyzer lists.
func TestParse(t *testing.T) {
	if set, err := Parse(nil); err != nil || set != nil {
		t.Fatalf("empty list: set=%v err=%v", set, err)
	}
	if _, err := Parse([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("unknown name: %v", err)
	}
	if _, err := Parse([]string{"moves", "moves"}); err == nil || !strings.Contains(err.Error(), "named twice") {
		t.Fatalf("duplicate name: %v", err)
	}
	// Any input order canonicalises to the same set.
	a, err := Parse([]string{"moves", "schedulability"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]string{"schedulability", "moves"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Names(), b.Names()) {
		t.Fatalf("order-dependent canonicalisation: %v vs %v", a.Names(), b.Names())
	}
	if !sort.StringsAreSorted(a.Keys()) {
		t.Fatalf("set keys not sorted: %v", a.Keys())
	}
	if !a.NeedsCandidates() {
		t.Fatal("moves analyzer must request candidate recording")
	}
	c, err := Parse([]string{"contention"})
	if err != nil {
		t.Fatal(err)
	}
	if c.NeedsCandidates() {
		t.Fatal("contention alone must not request candidate recording")
	}
}

// TestAnalyzersRunOnRealTrial runs every registered analyzer over a real
// accepted trial and checks shape, determinism, and basic sanity of the
// published values.
func TestAnalyzersRunOnRealTrial(t *testing.T) {
	in := pipelineInput(t, true)
	set, err := Parse(Names())
	if err != nil {
		t.Fatal(err)
	}
	extras := mustRun(t, set, in)
	if len(extras) != len(set.Keys()) {
		t.Fatalf("extras carry %d keys, set declares %d", len(extras), len(set.Keys()))
	}
	for _, k := range set.Keys() {
		if _, ok := extras[k]; !ok {
			t.Fatalf("declared key %q missing from extras", k)
		}
	}
	// Deterministic across repeated runs on the same input.
	if again := mustRun(t, set, in); !reflect.DeepEqual(extras, again) {
		t.Fatalf("analyzer output not deterministic:\n%v\n%v", extras, again)
	}

	if u := extras["schedulability.util"]; u <= 0 || u > float64(in.Procs) {
		t.Fatalf("schedulability.util = %v outside (0, M]", u)
	}
	if m := extras["schedulability.util_margin"]; m < 0 {
		t.Fatalf("accepted trial with negative util margin %v", m)
	}
	if d := extras["schedulability.densest_margin"]; d < 0 || d > 1 {
		t.Fatalf("densest margin %v outside [0,1]", d)
	}

	tr := in.Balance.Trace()
	if got := extras["moves.relocated"]; got != float64(tr.Relocated) {
		t.Fatalf("moves.relocated = %v, trace has %d", got, tr.Relocated)
	}
	if got := extras["moves.gained"]; got != float64(tr.Gained) {
		t.Fatalf("moves.gained = %v, trace has %d", got, tr.Gained)
	}
	if evals := extras["moves.cand_evals"]; evals == 0 {
		t.Fatal("moves.cand_evals is zero despite candidate recording")
	}
	if r := extras["moves.cand_feasible_ratio"]; r < 0 || r > 1 {
		t.Fatalf("feasible ratio %v outside [0,1]", r)
	}
	if churn := extras["moves.block_churn"]; churn < 0 || churn > 1 {
		t.Fatalf("block churn %v outside [0,1]", churn)
	}

	for _, k := range []string{"contention.busy_min", "contention.busy_mean", "contention.busy_max"} {
		if v := extras[k]; v < 0 || v > 1 {
			t.Fatalf("%s = %v outside [0,1]", k, v)
		}
	}
	if extras["contention.busy_min"] > extras["contention.busy_mean"] ||
		extras["contention.busy_mean"] > extras["contention.busy_max"] {
		t.Fatalf("busy stats out of order: %v ≤ %v ≤ %v expected",
			extras["contention.busy_min"], extras["contention.busy_mean"], extras["contention.busy_max"])
	}
	if extras["contention.idle_windows_mean"] < 0 {
		t.Fatalf("negative idle window count %v", extras["contention.idle_windows_mean"])
	}
}

// TestMovesWithoutCandidates: the moves analyzer degrades to zero
// candidate counters when recording was off (it must not panic).
func TestMovesWithoutCandidates(t *testing.T) {
	in := pipelineInput(t, false)
	set, err := Parse([]string{"moves"})
	if err != nil {
		t.Fatal(err)
	}
	extras := mustRun(t, set, in)
	if extras["moves.cand_evals"] != 0 || extras["moves.cand_feasible_ratio"] != 0 {
		t.Fatalf("candidate counters non-zero without recording: %v", extras)
	}
	tr := in.Balance.Trace()
	if extras["moves.relocated"] != float64(tr.Relocated) || extras["moves.gained"] != float64(tr.Gained) {
		t.Fatalf("move counters not populated: %v", extras)
	}
}
