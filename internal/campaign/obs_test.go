package campaign

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestObsByteIdentity pins the tentpole contract of the telemetry
// layer: attaching recorders must not perturb the artifacts. The same
// spec produces byte-identical JSON and CSV with telemetry on or off,
// at every worker count, with and without prefix memoisation — the
// full matrix a production sweep can run under.
func TestObsByteIdentity(t *testing.T) {
	var ref []byte
	refCSV := new(bytes.Buffer)
	for _, workers := range []int{1, 2, 8} {
		for _, noMemo := range []bool{false, true} {
			for _, withObs := range []bool{false, true} {
				eng := &Engine{Workers: workers, NoMemo: noMemo}
				if withObs {
					eng.Obs = obs.NewSet(workers)
				}
				res, err := eng.Run(smokeSpec())
				if err != nil {
					t.Fatalf("workers=%d noMemo=%v obs=%v: %v", workers, noMemo, withObs, err)
				}
				data, err := res.JSON()
				if err != nil {
					t.Fatal(err)
				}
				csv := new(bytes.Buffer)
				if err := res.WriteCSV(csv); err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref, refCSV = data, csv
					continue
				}
				if !bytes.Equal(ref, data) {
					t.Fatalf("workers=%d noMemo=%v obs=%v: JSON diverges from the reference run",
						workers, noMemo, withObs)
				}
				if !bytes.Equal(refCSV.Bytes(), csv.Bytes()) {
					t.Fatalf("workers=%d noMemo=%v obs=%v: CSV diverges from the reference run",
						workers, noMemo, withObs)
				}
			}
		}
	}
}

// TestEngineObsCounters checks the engine populates the telemetry it
// promises: every live trial is counted exactly once as accepted or
// rejected, the memoised sweep records one miss per grid point and a
// hit for every clone, every pipeline stage that must run has samples,
// and the trial count matches the per-stage observation counts.
func TestEngineObsCounters(t *testing.T) {
	spec := smokeSpec()
	set := obs.NewSet(2)
	res, err := (&Engine{Workers: 2, Obs: set}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	snap := set.Snapshot()
	trials := int64(len(res.Trials))

	if got := snap.Counters["trials_accepted"] + snap.Counters["trials_rejected"]; got != trials {
		t.Fatalf("accepted+rejected = %d, want every live trial once (%d)", got, trials)
	}
	// smokeSpec: 2 grid points (procs) × 2 policies × 6 seeds — one miss
	// per (grid point, seed), one hit per extra policy.
	if m := snap.Counters["memo_misses"]; m != 12 {
		t.Fatalf("memo misses = %d, want 12 (one per grid point × seed)", m)
	}
	if h := snap.Counters["memo_hits"]; h != 12 {
		t.Fatalf("memo hits = %d, want 12 (one per cloned policy cell)", h)
	}
	// Generate and schedule run once per prefix; the balancer suffix
	// runs on every schedulable trial.
	if c := snap.Stages["generate"].Count; c != 12 {
		t.Fatalf("generate count = %d, want one per prefix (12)", c)
	}
	if c := snap.Stages["balance"].Count; c == 0 || c > trials {
		t.Fatalf("balance count = %d, want within (0,%d]", c, trials)
	}
	// The fold is observed exactly once, on the aux recorder.
	if c := snap.Stages["fold"].Count; c != 1 {
		t.Fatalf("fold count = %d, want 1", c)
	}
	// No journal is attached, so its telemetry must stay silent.
	for _, key := range []string{"journal_records", "journal_bytes", "journal_fsyncs"} {
		if v := snap.Counters[key]; v != 0 {
			t.Fatalf("%s = %d without a journal, want 0", key, v)
		}
	}
	if c := snap.Stages["sink_wait"].Count; c != 0 {
		t.Fatalf("sink_wait count = %d without a sink, want 0", c)
	}

	// The timeline saw every live trial.
	var ticks int64
	for _, n := range snap.Timeline.Counts {
		ticks += n
	}
	if ticks != trials {
		t.Fatalf("timeline ticks = %d, want %d", ticks, trials)
	}
}

// TestEngineObsNoMemo: with memoisation off the memo counters stay
// silent and every trial recomputes its own prefix.
func TestEngineObsNoMemo(t *testing.T) {
	set := obs.NewSet(2)
	res, err := (&Engine{Workers: 2, NoMemo: true, Obs: set}).Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	snap := set.Snapshot()
	if snap.Counters["memo_hits"] != 0 || snap.Counters["memo_misses"] != 0 {
		t.Fatalf("memo counters with -no-memo: hits %d misses %d, want 0/0",
			snap.Counters["memo_hits"], snap.Counters["memo_misses"])
	}
	if c := snap.Stages["generate"].Count; c != int64(len(res.Trials)) {
		t.Fatalf("generate count = %d, want one per trial (%d)", c, len(res.Trials))
	}
}

// TestEngineObsReplayed: resumed (Done) rows are counted as replayed
// and are not re-observed by any pipeline stage.
func TestEngineObsReplayed(t *testing.T) {
	full, err := Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	half := append([]TrialResult(nil), full.Trials[:len(full.Trials)/2]...)
	set := obs.NewSet(1)
	res, err := (&Engine{Workers: 1, Done: half, Obs: set}).Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	snap := set.Snapshot()
	if got := snap.Counters["replayed_trials"]; got != int64(len(half)) {
		t.Fatalf("replayed_trials = %d, want %d", got, len(half))
	}
	live := int64(len(res.Trials) - len(half))
	if got := snap.Counters["trials_accepted"] + snap.Counters["trials_rejected"]; got != live {
		t.Fatalf("live outcome counts = %d, want only the %d non-replayed trials", got, live)
	}
}
