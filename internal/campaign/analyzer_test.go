package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// analyzerSpec is the smoke spec with every registered analyzer
// attached (after phase only — phaseSpec adds the before phase).
func analyzerSpec() *Spec {
	s := smokeSpec()
	s.Analyzers = []string{"schedulability", "moves", "contention", "reuse"}
	return s
}

// TestAnalyzerDeterminism pins the tentpole guarantee: with analyzers
// attached, JSON and CSV artifacts are byte-identical at 1, 2, and 8
// workers, with memoisation on and off, after Done-row replay
// (crash-resume), and after a 3-shard fold (multi-host merge).
func TestAnalyzerDeterminism(t *testing.T) {
	ref, err := (&Engine{Workers: 1, NoMemo: true}).Run(analyzerSpec())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := ref.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}
	// The extras really made it into the artifacts.
	for _, col := range []string{"schedulability.util_margin", "moves.block_churn", "contention.busy_spread"} {
		if !strings.Contains(refCSV.String(), col) {
			t.Fatalf("CSV lacks extras column %q", col)
		}
	}

	check := func(res *Result, label string) {
		t.Helper()
		data, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, refJSON) {
			t.Fatalf("%s: JSON differs from reference (%d vs %d bytes)", label, len(data), len(refJSON))
		}
		var csv bytes.Buffer
		if err := res.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csv.Bytes(), refCSV.Bytes()) {
			t.Fatalf("%s: CSV differs from reference", label)
		}
	}

	for _, workers := range []int{1, 2, 8} {
		for _, noMemo := range []bool{false, true} {
			res, err := (&Engine{Workers: workers, NoMemo: noMemo}).Run(analyzerSpec())
			if err != nil {
				t.Fatalf("workers=%d noMemo=%v: %v", workers, noMemo, err)
			}
			check(res, fmt.Sprintf("workers=%d noMemo=%v", workers, noMemo))
		}
	}

	// Crash-resume: replay a prefix as Done rows.
	for _, k := range []int{1, len(ref.Trials) / 2, len(ref.Trials)} {
		eng := &Engine{Workers: 4, Done: append([]TrialResult(nil), ref.Trials[:k]...)}
		res, err := eng.Run(analyzerSpec())
		if err != nil {
			t.Fatalf("resume k=%d: %v", k, err)
		}
		check(res, fmt.Sprintf("resume k=%d", k))
	}

	// Multi-host: three shards at different worker counts, folded.
	total := len(ref.Trials)
	var rows []TrialResult
	for i := 0; i < 3; i++ {
		lo, hi := total*i/3, total*(i+1)/3
		res, err := (&Engine{Workers: i + 1, Lo: lo, Hi: hi}).Run(analyzerSpec())
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		rows = append(rows, res.Trials...)
	}
	folded, err := Fold(analyzerSpec(), rows)
	if err != nil {
		t.Fatal(err)
	}
	check(folded, "3-shard fold")
}

// TestAnalyzerExtrasShape: accepted trials carry exactly the declared
// key set, rejected trials carry none, and the per-cell aggregates grow
// one Stats entry per extra whose count matches the acceptance count.
func TestAnalyzerExtrasShape(t *testing.T) {
	spec := analyzerSpec()
	res, err := (&Engine{Workers: 4}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	set, err := spec.AnalyzerSet()
	if err != nil {
		t.Fatal(err)
	}
	keys := set.Keys()
	if len(keys) == 0 {
		t.Fatal("analyzer set declares no keys")
	}
	accepted := 0
	for _, tr := range res.Trials {
		if tr.Outcome != OutcomeOK {
			if len(tr.Extras) != 0 {
				t.Fatalf("rejected trial %d carries extras %v", tr.Index, tr.Extras)
			}
			continue
		}
		accepted++
		if len(tr.Extras) != len(keys) {
			t.Fatalf("trial %d: %d extras, want %d", tr.Index, len(tr.Extras), len(keys))
		}
		for _, k := range keys {
			if _, ok := tr.Extras[k]; !ok {
				t.Fatalf("trial %d missing extra %q", tr.Index, k)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no accepted trial — smoke spec should accept some")
	}
	for _, c := range res.Cells {
		for _, k := range keys {
			s, ok := c.Metrics[k]
			if c.Accepted == 0 {
				if ok {
					t.Fatalf("cell %s: extras stats despite zero accepted trials", c.Cell)
				}
				continue
			}
			if !ok || s.Count != c.Accepted {
				t.Fatalf("cell %s extra %q: count %d, accepted %d", c.Cell, k, s.Count, c.Accepted)
			}
		}
	}

	// The zero-analyzer path stays extras-free.
	plain, err := (&Engine{Workers: 2}).Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range plain.Trials {
		if tr.Extras != nil {
			t.Fatalf("zero-analyzer trial %d carries extras %v", tr.Index, tr.Extras)
		}
	}
}

// TestAnalyzerSpecHash: the analyzer set is part of the sweep identity,
// canonicalised so the naming order does not matter.
func TestAnalyzerSpecHash(t *testing.T) {
	plain, err := smokeSpec().Hash()
	if err != nil {
		t.Fatal(err)
	}
	withAna, err := analyzerSpec().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if plain == withAna {
		t.Fatal("analyzer set does not change the spec hash")
	}
	reordered := smokeSpec()
	reordered.Analyzers = []string{"contention", "reuse", "schedulability", "moves"}
	h, err := reordered.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != withAna {
		t.Fatal("analyzer order changes the spec hash despite canonicalisation")
	}
	bogus := smokeSpec()
	bogus.Analyzers = []string{"nope"}
	if err := bogus.Normalize(); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("unknown analyzer accepted: %v", err)
	}
}

// TestExtrasValidation: rows whose extras disagree with the spec's
// analyzer set must be refused by Fold and by Engine.Done replay — a
// silent mix would publish extras columns covering part of the sweep.
func TestExtrasValidation(t *testing.T) {
	res, err := (&Engine{Workers: 4}).Run(analyzerSpec())
	if err != nil {
		t.Fatal(err)
	}
	okIdx := -1
	for i, tr := range res.Trials {
		if tr.Outcome == OutcomeOK {
			okIdx = i
			break
		}
	}
	if okIdx < 0 {
		t.Fatal("no accepted trial")
	}
	clone := func() []TrialResult {
		rows := make([]TrialResult, len(res.Trials))
		for i, tr := range res.Trials {
			ex := make(map[string]float64, len(tr.Extras))
			for k, v := range tr.Extras {
				ex[k] = v
			}
			if tr.Extras == nil {
				ex = nil
			}
			tr.Extras = ex
			rows[i] = tr
		}
		return rows
	}

	// A missing extras key (row journaled under a smaller analyzer set).
	missing := clone()
	for k := range missing[okIdx].Extras {
		delete(missing[okIdx].Extras, k)
		break
	}
	if _, err := Fold(analyzerSpec(), missing); err == nil || !strings.Contains(err.Error(), "missing extra") {
		t.Fatalf("missing extras key: %v", err)
	}

	// A stray key (row journaled under a larger analyzer set).
	stray := clone()
	stray[okIdx].Extras["bogus.key"] = 1
	if _, err := Fold(analyzerSpec(), stray); err == nil || !strings.Contains(err.Error(), "different analyzer set") {
		t.Fatalf("stray extras key: %v", err)
	}

	// Rows with extras folded into an analyzer-free spec.
	if _, err := Fold(smokeSpec(), clone()); err == nil || !strings.Contains(err.Error(), "extras") {
		t.Fatalf("extras rows under analyzer-free spec: %v", err)
	}

	// Analyzer-free rows folded into an analyzer spec.
	plain, err := (&Engine{Workers: 4}).Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(analyzerSpec(), plain.Trials); err == nil || !strings.Contains(err.Error(), "missing extra") {
		t.Fatalf("plain rows under analyzer spec: %v", err)
	}

	// Engine.Done replay applies the same screen: the validation runs
	// before any trial does, so the error is immediate.
	bad := clone()[okIdx : okIdx+1]
	for k := range bad[0].Extras {
		delete(bad[0].Extras, k)
		break
	}
	eng := &Engine{Workers: 1, Done: bad}
	if _, err := eng.Run(analyzerSpec()); err == nil || !strings.Contains(err.Error(), "missing extra") {
		t.Fatalf("tampered Done row: %v", err)
	}
}

// TestSinkErrorNamesTrial is the regression test for the fan-out index
// bug: with Done replay rows in play, a failing sink must report the
// *trial* index that aborted the sweep, not the pending-slice position.
func TestSinkErrorNamesTrial(t *testing.T) {
	ref, err := (&Engine{Workers: 1}).Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	half := len(ref.Trials) / 2
	boom := errors.New("disk full")
	eng := &Engine{
		Workers: 1,
		Done:    append([]TrialResult(nil), ref.Trials[:half]...),
		Sink:    func(TrialResult) error { return boom },
	}
	_, err = eng.Run(smokeSpec())
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("sink error not propagated: %v", err)
	}
	// With one worker the first live trial is exactly trials[half]; its
	// index — not 0, the pending-slice position — must be in the error.
	want := fmt.Sprintf("trial %d", half)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the aborting trial (%s)", err, want)
	}
}
