package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/blocks"
	"repro/internal/model"
	"repro/internal/sched"
)

// paperSystem builds the system of the paper's figure 2:
//
//	tasks   a(T=3,E=1,m=4)  b(T=6,E=1,m=1)  c(T=6,E=1,m=1)
//	        d(T=12,E=1,m=2) e(T=12,E=1,m=2)
//	deps    a→b, b→c, b→d, d→e
//	arch    P1,P2,P3 on one medium, C=1
//
// The dependence structure is the unique one consistent with every number
// published in §3.3 (initial makespan 15, b2 initially at 11, the seven
// documented moves, final makespan 14, final memory [10,6,8]).
func paperSystem(t testing.TB) (*model.TaskSet, *arch.Architecture, map[string]model.TaskID) {
	t.Helper()
	ts := model.NewTaskSet()
	ids := map[string]model.TaskID{
		"a": ts.MustAddTask("a", 3, 1, 4),
		"b": ts.MustAddTask("b", 6, 1, 1),
		"c": ts.MustAddTask("c", 6, 1, 1),
		"d": ts.MustAddTask("d", 12, 1, 2),
		"e": ts.MustAddTask("e", 12, 1, 2),
	}
	ts.MustAddDependence(ids["a"], ids["b"], 1)
	ts.MustAddDependence(ids["b"], ids["c"], 1)
	ts.MustAddDependence(ids["b"], ids["d"], 1)
	ts.MustAddDependence(ids["d"], ids["e"], 1)
	ts.MustFreeze()
	return ts, arch.MustNew(3, 1), ids
}

// paperInitial reproduces the initial distributed schedule of figure 3:
// P1: a@0 (instances 0,3,6,9); P2: b@5, c@6; P3: d@13, e@14.
func paperInitial(t testing.TB) *sched.Schedule {
	t.Helper()
	ts, ar, ids := paperSystem(t)
	s := sched.MustNewSchedule(ts, ar)
	s.MustPlace(ids["a"], 0, 0)
	s.MustPlace(ids["b"], 1, 5)
	s.MustPlace(ids["c"], 1, 6)
	s.MustPlace(ids["d"], 2, 13)
	s.MustPlace(ids["e"], 2, 14)
	if err := s.DeriveComms(); err != nil {
		t.Fatalf("DeriveComms: %v", err)
	}
	if errs := s.Validate(); len(errs) > 0 {
		t.Fatalf("initial schedule invalid: %v", errs)
	}
	return s
}

func TestPaperInitialSchedule(t *testing.T) {
	s := paperInitial(t)
	if got := s.Makespan(); got != 15 {
		t.Errorf("initial makespan = %d, paper says 15", got)
	}
	want := []model.Mem{16, 4, 4}
	for p, w := range want {
		if got := s.MemVector()[p]; got != w {
			t.Errorf("initial memory on P%d = %d, paper says %d", p+1, got, w)
		}
	}
	if got := s.TS.HyperPeriod(); got != 12 {
		t.Errorf("hyper-period = %d, want 12", got)
	}
}

func TestPaperBlockConstruction(t *testing.T) {
	s := paperInitial(t)
	is := sched.FromSchedule(s)
	blks := blocks.Build(is)

	// Paper: each a_i is a block; [b1-c1], [b2-c2]; [d-e]. Seven blocks.
	if len(blks) != 7 {
		t.Fatalf("got %d blocks, paper has 7", len(blks))
	}
	type want struct {
		start    model.Time
		size     int
		category int
		mem      model.Mem
	}
	wants := []want{
		{0, 1, 1, 4},  // [a1]
		{3, 1, 2, 4},  // [a2]
		{5, 2, 1, 2},  // [b1-c1]
		{6, 1, 2, 4},  // [a3]
		{9, 1, 2, 4},  // [a4]
		{11, 2, 2, 2}, // [b2-c2]
		{13, 2, 1, 4}, // [d-e]
	}
	for i, w := range wants {
		b := blks[i]
		if b.Start() != w.start || len(b.Members) != w.size || b.Category != w.category || b.Mem() != w.mem {
			t.Errorf("block %d: start=%d size=%d cat=%d mem=%d, want %+v",
				i, b.Start(), len(b.Members), b.Category, b.Mem(), w)
		}
	}
}

// TestPaperWorkedExample replays §3.3 move by move and checks the final
// schedule matches figure 4.
func TestPaperWorkedExample(t *testing.T) {
	s := paperInitial(t)
	is := sched.FromSchedule(s)
	b := &Balancer{Policy: PolicyLexicographic, RecordCandidates: true}
	res, err := b.Run(is)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Forced != 0 {
		t.Fatalf("unexpected forced moves: %d", res.Forced)
	}
	if len(res.Moves) != 7 {
		t.Fatalf("got %d moves, want 7", len(res.Moves))
	}

	// Expected move sequence (processors are 0-based: P1=0, P2=1, P3=2).
	type wantMove struct {
		to       arch.ProcID
		oldStart model.Time
		newStart model.Time
		gain     model.Time
	}
	wants := []wantMove{
		{0, 0, 0, 0},   // 1. [a1] stays on P1
		{1, 3, 3, 0},   // 2. [a2] → P2
		{1, 5, 4, 1},   // 3. [b1-c1] → P2 with gain 1
		{2, 6, 6, 0},   // 4. [a3] → P3
		{0, 9, 9, 0},   // 5. [a4] → P1
		{0, 10, 10, 0}, // 6. [b2-c2] → P1 (start already propagated 11→10)
		{2, 13, 12, 1}, // 7. [d-e] → P3 with gain 1
	}
	for i, w := range wants {
		m := res.Moves[i]
		if m.To != w.to || m.OldStart != w.oldStart || m.NewStart != w.newStart || m.Gain != w.gain {
			t.Errorf("move %d: to=P%d old=%d new=%d gain=%d, want to=P%d old=%d new=%d gain=%d",
				i+1, m.To+1, m.OldStart, m.NewStart, m.Gain, w.to+1, w.oldStart, w.newStart, w.gain)
		}
	}

	// Step 6: only P1 is feasible ([b2-c2] is pinned at 10 and a4 sits on
	// P1 ending exactly at 10; any other processor would need +C).
	step6 := res.Moves[5]
	for _, c := range step6.Candidates {
		if c.Proc == 0 && !c.Feasible {
			t.Errorf("step 6: P1 should be feasible: %s", c.Reason)
		}
		if c.Proc != 0 && c.Feasible {
			t.Errorf("step 6: P%d should be infeasible", c.Proc+1)
		}
	}
	// Step 7: P1 rejected by the LCM condition, exactly as in the paper.
	step7 := res.Moves[6]
	for _, c := range step7.Candidates {
		if c.Proc == 0 {
			if c.Feasible || c.Reason != "LCM condition" {
				t.Errorf("step 7: P1 should fail the LCM condition, got feasible=%v reason=%q", c.Feasible, c.Reason)
			}
		}
	}

	// Figure 4 outcome.
	if res.MakespanBefore != 15 || res.MakespanAfter != 14 {
		t.Errorf("makespan %d→%d, paper says 15→14", res.MakespanBefore, res.MakespanAfter)
	}
	if res.GainTotal() != 1 {
		t.Errorf("Gtotal = %d, want 1", res.GainTotal())
	}
	wantMem := []model.Mem{10, 6, 8}
	for p, w := range wantMem {
		if got := res.MemAfter[p]; got != w {
			t.Errorf("final memory on P%d = %d, paper says %d", p+1, got, w)
		}
	}

	// The balanced schedule must satisfy every constraint.
	if errs := res.Schedule.Validate(); len(errs) > 0 {
		t.Fatalf("balanced schedule invalid: %v", errs)
	}
}

// TestPaperTheorem1OnExample checks 0 ≤ Gtotal ≤ γ(M−1)! on the worked
// example: γ = C = 1, M = 3 → bound 2, and the measured Gtotal is 1.
func TestPaperTheorem1OnExample(t *testing.T) {
	s := paperInitial(t)
	res, err := (&Balancer{}).Run(sched.FromSchedule(s))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	g := res.GainTotal()
	bound := model.Time(1 * factorial(3-1)) // γ(M−1)! = 1·2! = 2
	if g < 0 || g > bound {
		t.Errorf("Gtotal = %d outside [0, %d]", g, bound)
	}
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}
