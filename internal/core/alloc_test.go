package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/blocks"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sched"
)

// TestEvaluateAllocFree pins the balancer's per-candidate evaluation —
// the innermost hot path, run blocks×processors times per trial — at
// zero allocations once the run-wide scratch is warm. Candidate slices
// in particular must only appear under RecordCandidates.
func TestEvaluateAllocFree(t *testing.T) {
	ts, err := gen.Generate(gen.Config{Seed: 7, Tasks: 40, Utilization: 3})
	if err != nil {
		t.Fatal(err)
	}
	ar := arch.MustNew(4, 1)
	s, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		t.Fatal(err)
	}
	is := sched.FromSchedule(s)

	// Replicate the runPass prologue up to the first block's evaluation.
	blks := blocks.Build(is)
	st := &balState{
		intervals:  make([][]ivl, ar.Procs),
		firstStart: make([]model.Time, ar.Procs),
		memSum:     make([]model.Mem, ar.Procs),
		anyMoved:   make([]bool, ar.Procs),
		resv:       make([][]*blocks.Block, ar.Procs),
		owner:      make([]ownerRef, ts.TotalInstances()),
		taskBlocks: make([][]*blocks.Block, ts.Len()),
		wcet:       make([]model.Time, ts.Len()),
		shifted:    make([]bool, ts.Len()),
		seen:       make([]bool, len(blks)),
	}
	for i := range st.firstStart {
		st.firstStart[i] = -1
	}
	for i := range st.wcet {
		st.wcet[i] = ts.Task(model.TaskID(i)).WCET
	}
	for _, bl := range blks {
		st.resv[bl.Proc] = append(st.resv[bl.Proc], bl)
		for mi, m := range bl.Members {
			st.owner[ts.InstanceIndex(m.Inst)] = ownerRef{bl: bl, mi: mi}
		}
		for _, task := range bl.Tasks() {
			st.taskBlocks[task] = append(st.taskBlocks[task], bl)
		}
	}

	b := &Balancer{}
	processed := make([]bool, len(blks))
	bl := blks[0]
	st.removeResv(bl)
	ctx := newPctx(ts, ar, bl, processed, st, false)
	defer ctx.release()

	// Warm the reusable scratch (the obstacle buffer grows once).
	for p := arch.ProcID(0); int(p) < ar.Procs; p++ {
		b.evaluate(ctx, p, false)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for p := arch.ProcID(0); int(p) < ar.Procs; p++ {
			c := b.evaluate(ctx, p, false)
			if int(c.Proc) != int(p) {
				t.Fatalf("candidate proc %d, want %d", c.Proc, p)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("evaluate allocates %.1f objects per block, want 0", allocs)
	}
}
