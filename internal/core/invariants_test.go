package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/blocks"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sched"
)

// randomBalanced runs scheduler + balancer on a random system and returns
// the result (skipping seeds the initial scheduler cannot place, which is
// legitimate for a heuristic).
func randomBalanced(t *testing.T, seed int64, tasks, procs int, policy Policy) (*Result, *sched.Schedule) {
	t.Helper()
	ts := gen.MustGenerate(gen.Config{Seed: seed, Tasks: tasks, Utilization: 2.5})
	ar := arch.MustNew(procs, 1)
	s, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		t.Skipf("seed %d: initial scheduler: %v", seed, err)
	}
	res, err := (&Balancer{Policy: policy}).Run(sched.FromSchedule(s))
	if err != nil {
		t.Fatalf("seed %d: balancer: %v", seed, err)
	}
	return res, s
}

// TestBalancedSchedulesStayValid is the central soundness invariant: on
// random systems, the balanced schedule must satisfy strict periodicity,
// non-overlap, precedence (+C cross-processor) — unless the run reported
// forced blocks, which flag exactly the inputs where the paper's
// heuristic has no feasible processor.
func TestBalancedSchedulesStayValid(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		res, _ := randomBalanced(t, seed, 30, 5, PolicyLexicographic)
		if res.Forced > 0 {
			t.Logf("seed %d: %d forced blocks (allowed, reported)", seed, res.Forced)
			continue
		}
		if errs := res.Schedule.Validate(); len(errs) > 0 {
			t.Errorf("seed %d: balanced schedule invalid: %v", seed, errs[0])
		}
	}
}

// TestTheorem1LowerBound: Gtotal ≥ 0 always (the heuristic never makes
// the total execution time worse). This is the sound half of Theorem 1.
//
// The upper half, Gtotal ≤ γ(M−1)!, is a *finding* of this reproduction:
// it holds on the paper's worked example and on serial-ish schedules, but
// random parallel DAGs violate it — suppressed communications cascade
// through dependence chains, so the total gain is not bounded by one γ
// per processor pair. The violation rate is measured and reported by the
// E4 experiment (EXPERIMENTS.md); here we assert only the sound bounds
// Gtotal ∈ [0, MakespanBefore].
func TestTheorem1LowerBound(t *testing.T) {
	violations := 0
	for seed := int64(0); seed < 25; seed++ {
		res, _ := randomBalanced(t, seed, 30, 4, PolicyLexicographic)
		g := res.GainTotal()
		if g < 0 {
			t.Errorf("seed %d: Gtotal = %d < 0", seed, g)
		}
		if g > res.MakespanBefore {
			t.Errorf("seed %d: Gtotal = %d exceeds the initial makespan %d", seed, g, res.MakespanBefore)
		}
		if analysis.CheckTheorem1(g, 1, 4) != nil {
			violations++
		}
	}
	t.Logf("paper upper bound γ(M−1)! exceeded on %d/25 seeds (documented deviation, see EXPERIMENTS.md E4)", violations)
}

// TestMakespanNeverIncreases is the lower half of Theorem 1 on its own:
// the heuristic must never make the total execution time worse.
func TestMakespanNeverIncreases(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		res, _ := randomBalanced(t, seed, 40, 6, PolicyLexicographic)
		if res.MakespanAfter > res.MakespanBefore {
			t.Errorf("seed %d: makespan increased %d → %d", seed, res.MakespanBefore, res.MakespanAfter)
		}
	}
}

// TestTheorem2AlphaApproximation: in the memory-only regime, ω/ωopt must
// stay within 2 − 1/M. The optimum is the branch-and-bound partitioner
// over the same blocks.
func TestTheorem2AlphaApproximation(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ts := gen.MustGenerate(gen.Config{Seed: seed, Tasks: 12, Utilization: 2})
		for _, m := range []int{2, 3, 4} {
			ar := arch.MustNew(m, 1)
			s, err := sched.NewScheduler(ts, ar).Run()
			if err != nil {
				continue
			}
			is := sched.FromSchedule(s)
			b := &Balancer{Policy: PolicyMemoryOnly, IgnoreTiming: true}
			res, err := b.Run(is)
			if err != nil {
				t.Fatalf("seed %d m %d: %v", seed, m, err)
			}
			items := partition.FromBlocks(blocks.Build(is))
			_, opt := partition.OptimalMaxMem(items, m)
			got := res.Schedule.MaxMem()
			if err := analysis.CheckTheorem2(got, opt, m); err != nil {
				t.Errorf("seed %d m %d: %v", seed, m, err)
			}
		}
	}
}

// TestMemoryOnlyIsGreedyMinLoad: with timing ignored, the heuristic must
// place each block on the processor with the least memory so far — the
// §5.2 reduction the approximation proof relies on.
func TestMemoryOnlyIsGreedyMinLoad(t *testing.T) {
	res, _ := randomBalanced(t, 3, 20, 3, PolicyMemoryOnly)
	_ = res // policy applied with timing filters; the dedicated check below uses IgnoreTiming.

	ts := gen.MustGenerate(gen.Config{Seed: 3, Tasks: 20, Utilization: 2})
	ar := arch.MustNew(3, 1)
	s, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		t.Skip("initial scheduler failed")
	}
	is := sched.FromSchedule(s)
	b := &Balancer{Policy: PolicyMemoryOnly, IgnoreTiming: true, RecordCandidates: true}
	resMem, err := b.Run(is)
	if err != nil {
		t.Fatal(err)
	}
	for i, mv := range resMem.Moves {
		// The chosen processor must have had the minimum MemSum among
		// candidates at decision time.
		min := mv.Candidates[0].MemSum
		for _, c := range mv.Candidates {
			if c.MemSum < min {
				min = c.MemSum
			}
		}
		var chosen *Candidate
		for j := range mv.Candidates {
			if mv.Candidates[j].Proc == mv.To {
				chosen = &mv.Candidates[j]
			}
		}
		if chosen == nil || chosen.MemSum != min {
			t.Errorf("move %d: chose processor with mem %v, min was %d", i, chosen, min)
		}
	}
}

// TestRatioPolicyRuns exercises the literal eq. (5) policy for validity.
func TestRatioPolicyRuns(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res, _ := randomBalanced(t, seed, 25, 4, PolicyRatio)
		if res.Forced == 0 {
			if errs := res.Schedule.Validate(); len(errs) > 0 {
				t.Errorf("seed %d: ratio policy produced invalid schedule: %v", seed, errs[0])
			}
		}
		if res.MakespanAfter > res.MakespanBefore {
			t.Errorf("seed %d: ratio policy increased makespan", seed)
		}
	}
}

// TestBalancerPreservesInstanceCount: every instance present before is
// present after, exactly once.
func TestBalancerPreservesInstanceCount(t *testing.T) {
	res, s := randomBalanced(t, 7, 30, 5, PolicyLexicographic)
	want := s.TS.TotalInstances()
	got := 0
	for p := arch.ProcID(0); int(p) < 5; p++ {
		got += len(res.Schedule.InstancesOn(p))
	}
	if got != want {
		t.Errorf("instances after balancing: %d, want %d", got, want)
	}
}

// TestBalancerIdempotentOnBalancedInput: re-running the balancer on its
// own output must not increase makespan or max memory.
func TestBalancerIdempotentOnBalancedInput(t *testing.T) {
	res, _ := randomBalanced(t, 11, 30, 5, PolicyLexicographic)
	if res.Forced > 0 {
		t.Skip("forced moves on this seed")
	}
	res2, err := (&Balancer{}).Run(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MakespanAfter > res.MakespanAfter {
		t.Errorf("second pass increased makespan %d → %d", res.MakespanAfter, res2.MakespanAfter)
	}
}

// TestMemoryCapacityRespected: with a bounded architecture the balancer
// must never exceed capacity (it refuses candidate processors that
// would).
func TestMemoryCapacityRespected(t *testing.T) {
	ts := gen.MustGenerate(gen.Config{Seed: 5, Tasks: 20, Utilization: 2})
	ar := arch.MustNew(4, 1)
	s, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		t.Skip("initial scheduler failed")
	}
	is := sched.FromSchedule(s)
	// Capacity: generous enough to fit, tight enough to constrain
	// (total/4 would be a perfect split over 4 processors; allow 1.5×).
	var all model.Mem
	for _, v := range is.MemVector() {
		all += v
	}
	ar.SetMemCapacity(all/4 + all/8)

	res, err := (&Balancer{}).Run(is)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forced > 0 {
		t.Skip("capacity too tight for this seed")
	}
	for p, v := range res.Schedule.MemVector() {
		if v > ar.MemCapacity {
			t.Errorf("P%d exceeds capacity: %d > %d", p+1, v, ar.MemCapacity)
		}
	}
}
