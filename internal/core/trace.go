package core

import "repro/internal/model"

// trace.go condenses a balancing run's move trace — and, when candidate
// recording was on, the per-processor evaluations behind each move —
// into the flat counters the campaign analyzers publish. The summary is
// pure arithmetic over Result, so it is deterministic wherever the run
// itself is.

// TraceSummary is the flattened move/candidate trace of one Result.
type TraceSummary struct {
	Moves     int // placement decisions (one per block)
	Relocated int // moves whose destination differs from the origin
	Gained    int // moves with a strictly positive gain

	GainSum model.Time // Σ gain over all moves (the paper's Gtotal)
	GainMax model.Time // largest single-move gain

	Forced     int // blocks no processor could take (kept in place)
	RelaxedLCM int // blocks placed only after relaxing eq. (4)

	// Candidate accounting, non-zero only when the balancer ran with
	// RecordCandidates: every (block, processor) evaluation is counted,
	// split by feasibility.
	CandEvals    int
	CandFeasible int

	// Conservative reports the provably-safe second pass was used.
	Conservative bool
}

// Trace summarises the result's move trace.
func (r *Result) Trace() TraceSummary {
	s := TraceSummary{Moves: len(r.Moves), Forced: r.Forced, RelaxedLCM: r.RelaxedLCM,
		Conservative: r.ConservativePropagation}
	for _, mv := range r.Moves {
		if mv.To != mv.From {
			s.Relocated++
		}
		if mv.Gain > 0 {
			s.Gained++
		}
		s.GainSum += mv.Gain
		if mv.Gain > s.GainMax {
			s.GainMax = mv.Gain
		}
		s.CandEvals += len(mv.Candidates)
		for _, c := range mv.Candidates {
			if c.Feasible {
				s.CandFeasible++
			}
		}
	}
	return s
}
