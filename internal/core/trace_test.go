package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/sched"
)

// TestTraceSummary cross-checks the flattened trace counters against
// the raw Result on a real balancing run, with and without candidate
// recording.
func TestTraceSummary(t *testing.T) {
	ts, err := gen.Generate(gen.Config{Seed: 7, Tasks: 20, Utilization: 2})
	if err != nil {
		t.Fatal(err)
	}
	ar := arch.MustNew(3, 1)
	s, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		t.Fatal(err)
	}
	is := sched.FromSchedule(s)

	for _, record := range []bool{false, true} {
		res, err := (&Balancer{RecordCandidates: record}).Run(is)
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Trace()
		if tr.Moves != len(res.Moves) {
			t.Fatalf("record=%v: Moves %d, want %d", record, tr.Moves, len(res.Moves))
		}
		if tr.Forced != res.Forced || tr.RelaxedLCM != res.RelaxedLCM {
			t.Fatalf("record=%v: forced/relaxed %d/%d, result %d/%d",
				record, tr.Forced, tr.RelaxedLCM, res.Forced, res.RelaxedLCM)
		}
		if tr.GainSum != res.GainTotal() {
			t.Fatalf("record=%v: GainSum %d, GainTotal %d", record, tr.GainSum, res.GainTotal())
		}
		if tr.Conservative != res.ConservativePropagation {
			t.Fatalf("record=%v: conservative flag mismatch", record)
		}

		relocated, gained, evals, feasible := 0, 0, 0, 0
		var maxGain = tr.GainMax
		for _, mv := range res.Moves {
			if mv.To != mv.From {
				relocated++
			}
			if mv.Gain > 0 {
				gained++
			}
			if mv.Gain > maxGain {
				t.Fatalf("record=%v: move gain %d exceeds GainMax %d", record, mv.Gain, maxGain)
			}
			evals += len(mv.Candidates)
			for _, c := range mv.Candidates {
				if c.Feasible {
					feasible++
				}
			}
		}
		if tr.Relocated != relocated || tr.Gained != gained {
			t.Fatalf("record=%v: relocated/gained %d/%d, want %d/%d",
				record, tr.Relocated, tr.Gained, relocated, gained)
		}
		if tr.CandEvals != evals || tr.CandFeasible != feasible {
			t.Fatalf("record=%v: candidates %d/%d, want %d/%d",
				record, tr.CandFeasible, tr.CandEvals, feasible, evals)
		}
		if record {
			// Every move evaluated every processor at least once.
			if tr.CandEvals < tr.Moves*ar.Procs {
				t.Fatalf("candidate evals %d below moves×procs %d", tr.CandEvals, tr.Moves*ar.Procs)
			}
			if tr.CandFeasible == 0 {
				t.Fatal("no feasible candidate recorded on a schedulable instance")
			}
		} else if tr.CandEvals != 0 {
			t.Fatalf("candidate evals %d without recording", tr.CandEvals)
		}
	}
}
