package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/sched"
)

// miniSystem builds a small random strict-periodic system directly from a
// byte seed vector (no generator package), so testing/quick can shrink
// counterexamples meaningfully.
func miniSystem(raw []byte) (*model.TaskSet, bool) {
	if len(raw) < 4 {
		return nil, false
	}
	n := 2 + int(raw[0]%6)
	periods := []model.Time{4, 8, 16}
	ts := model.NewTaskSet()
	rng := rand.New(rand.NewSource(int64(raw[1])<<8 | int64(raw[2])))
	for i := 0; i < n; i++ {
		p := periods[rng.Intn(len(periods))]
		w := model.Time(rng.Intn(int(p/2))) + 1
		m := model.Mem(rng.Intn(6)) + 1
		if _, err := ts.AddTask(taskName(i), p, w, m); err != nil {
			return nil, false
		}
	}
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if rng.Float64() < 0.35 {
				ti := ts.Task(model.TaskID(i)).Period
				tj := ts.Task(model.TaskID(j)).Period
				if model.Harmonic(ti, tj) {
					_ = ts.AddDependence(model.TaskID(i), model.TaskID(j), 1)
				}
			}
		}
	}
	if err := ts.Freeze(); err != nil {
		return nil, false
	}
	return ts, true
}

func taskName(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

// Property: for every schedulable mini system, the balanced schedule is
// valid, never slower, and conserves all instances.
func TestPropertyBalancerSoundness(t *testing.T) {
	f := func(raw []byte) bool {
		ts, ok := miniSystem(raw)
		if !ok {
			return true
		}
		ar := arch.MustNew(3, 1)
		s, err := sched.NewScheduler(ts, ar).Run()
		if err != nil {
			return true // unschedulable instance: vacuously fine
		}
		is := sched.FromSchedule(s)
		res, err := (&Balancer{}).Run(is)
		if err != nil {
			return false
		}
		if res.Forced > 0 {
			// The two-pass strategy should eliminate forced blocks; a
			// forced block on a conservative pass is a soundness failure.
			return false
		}
		if res.MakespanAfter > res.MakespanBefore {
			return false
		}
		if len(res.Schedule.Validate()) > 0 {
			return false
		}
		count := 0
		for p := arch.ProcID(0); int(p) < ar.Procs; p++ {
			count += len(res.Schedule.InstancesOn(p))
		}
		return count == ts.TotalInstances()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: block construction partitions the instances and every block
// is internally dependence-connected on one processor.
func TestPropertyBlocksPartition(t *testing.T) {
	f := func(raw []byte) bool {
		ts, ok := miniSystem(raw)
		if !ok {
			return true
		}
		ar := arch.MustNew(3, 1)
		s, err := sched.NewScheduler(ts, ar).Run()
		if err != nil {
			return true
		}
		is := sched.FromSchedule(s)
		res, err := (&Balancer{}).Run(is)
		if err != nil {
			return false
		}
		seen := make(map[model.InstanceID]int)
		for _, bl := range res.Blocks {
			for _, m := range bl.Members {
				seen[m.Inst]++
			}
		}
		if len(seen) != ts.TotalInstances() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: balancing is monotone in memory imbalance on average — we
// cannot assert per-instance improvement (the heuristic is greedy), but
// the maximum memory must never exceed the pre-balance total on one
// processor, and the memory vector must conserve the total.
func TestPropertyMemoryConservation(t *testing.T) {
	f := func(raw []byte) bool {
		ts, ok := miniSystem(raw)
		if !ok {
			return true
		}
		ar := arch.MustNew(3, 1)
		s, err := sched.NewScheduler(ts, ar).Run()
		if err != nil {
			return true
		}
		res, err := (&Balancer{}).Run(sched.FromSchedule(s))
		if err != nil {
			return false
		}
		var before, after model.Mem
		for _, v := range res.MemBefore {
			before += v
		}
		for _, v := range res.MemAfter {
			after += v
		}
		return before == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
