// Package core implements the paper's contribution: the load-balancing
// and efficient-memory-usage heuristic (§3.2) over blocks of strictly
// periodic dependent tasks.
//
// For each block A (in increasing current start time) the heuristic
// evaluates every processor Pj whose last moved block ends no later than
// A's start, computes the gain G = S_old − S_new obtainable by appending A
// to Pj, checks the Block (LCM) Condition, and moves A to the processor
// chosen by the cost policy. When a first-category block gains time, the
// start times of later-instance blocks of the same tasks are decreased to
// preserve strict periodicity (§3.2 step "Update the start times").
package core

import (
	"math"

	"repro/internal/arch"
	"repro/internal/model"
)

// Policy selects how candidate processors are ranked.
type Policy int

const (
	// PolicyLexicographic maximises the gain G first and breaks ties by
	// the smallest memory already moved to the candidate (then lowest
	// processor index). This is the reading of the paper's cost function
	// that reproduces every decision of the §3.3 worked example, including
	// the ones where the printed eq. (5) values are inconsistent (see
	// DESIGN.md §4).
	PolicyLexicographic Policy = iota

	// PolicyRatio implements eq. (5) literally: λ = G when nothing has
	// been moved to Pj yet, else (G+1)/Σ m(B_i). Kept for the ablation
	// study; it does not reproduce step 2 of the worked example.
	PolicyRatio

	// PolicyMemoryOnly is the §5.2 regime: the gain is treated as a
	// constant, so λ = Cst/Σ m(B_i) and the heuristic always picks the
	// processor with the least memory moved so far. With timing filters
	// disabled (IgnoreTiming) this is the (2 − 1/M)-approximation of
	// Theorem 2.
	PolicyMemoryOnly
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyLexicographic:
		return "lexicographic"
	case PolicyRatio:
		return "ratio"
	case PolicyMemoryOnly:
		return "memory-only"
	}
	return "unknown"
}

// Candidate records the evaluation of one (block, processor) pair, kept
// for tracing and for the worked-example test.
type Candidate struct {
	Proc     arch.ProcID
	Feasible bool
	Reason   string // why infeasible, empty when feasible
	NewStart model.Time
	Gain     model.Time
	MemSum   model.Mem // Σ m of blocks already moved to Proc
	Lambda   float64   // score under the active policy
}

// lambda computes the score of a feasible candidate under a policy.
func lambda(p Policy, gain model.Time, memSum model.Mem) float64 {
	switch p {
	case PolicyRatio:
		if memSum == 0 {
			return float64(gain)
		}
		return (float64(gain) + 1) / float64(memSum)
	case PolicyMemoryOnly:
		if memSum == 0 {
			return math.Inf(1)
		}
		return 1 / float64(memSum)
	default: // PolicyLexicographic: encode (gain, -mem) into one float for reporting
		if memSum == 0 {
			return float64(gain) + 1
		}
		return (float64(gain) + 1) / float64(memSum)
	}
}

// better reports whether candidate a beats candidate b under the policy.
// Both must be feasible. Ties fall to the lowest processor index.
func better(p Policy, a, b Candidate) bool {
	switch p {
	case PolicyLexicographic:
		if a.Gain != b.Gain {
			return a.Gain > b.Gain
		}
		if a.MemSum != b.MemSum {
			return a.MemSum < b.MemSum
		}
	case PolicyRatio, PolicyMemoryOnly:
		if a.Lambda != b.Lambda {
			return a.Lambda > b.Lambda
		}
	}
	return a.Proc < b.Proc
}
