package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/blocks"
	"repro/internal/model"
	"repro/internal/sched"
)

// Move records one block relocation performed by the heuristic.
type Move struct {
	BlockID    int
	From, To   arch.ProcID
	OldStart   model.Time
	NewStart   model.Time
	Gain       model.Time
	Category   int
	Forced     bool // no processor was feasible; block kept in place
	RelaxedLCM bool // placed only after relaxing eq. (4) to the exact wrap check
	Candidates []Candidate
}

// Result is the outcome of one balancing run.
type Result struct {
	Schedule *sched.InstSchedule // the balanced schedule
	Blocks   []*blocks.Block     // the blocks, with final positions
	Moves    []Move

	MakespanBefore model.Time
	MakespanAfter  model.Time
	MemBefore      []model.Mem
	MemAfter       []model.Mem
	Forced         int // number of forced (infeasible-everywhere) blocks
	RelaxedLCM     int // blocks placed only after relaxing eq. (4)

	// ConservativePropagation reports that the optimistic first pass left
	// forced blocks and the result comes from the provably safe
	// conservative rerun (see Balancer.Run).
	ConservativePropagation bool
}

// GainTotal returns Lformer − Lnew, the paper's Gtotal.
func (r *Result) GainTotal() model.Time { return r.MakespanBefore - r.MakespanAfter }

// Balancer runs the load-balancing and memory-usage heuristic.
type Balancer struct {
	Policy Policy

	// IgnoreTiming disables the timing filters (candidate last-end filter,
	// gain computation, LCM condition): every processor is a candidate and
	// blocks keep their start times. Used with PolicyMemoryOnly for the
	// Theorem 2 regime where "the total execution time is not taken into
	// consideration" (§5.2).
	IgnoreTiming bool

	// RecordCandidates keeps the per-processor evaluation of every block
	// in the result (needed by the worked-example test and the CLI trace).
	// Off — the default — the hot path allocates no Candidate slices.
	RecordCandidates bool

	// DisableLCMCondition drops the paper's Block Condition (eq. 4)
	// entirely, relying on the exact wrap-around interval check alone.
	// The default keeps eq. (4) as the primary filter — matching the
	// paper's published candidate rejections — and falls back to the
	// exact check only for blocks eq. (4) would otherwise leave with no
	// processor at all (counted in Result.RelaxedLCM).
	DisableLCMCondition bool

	// script, when non-nil, forces the first len(script) placement
	// decisions (used by ExhaustiveBest). Not part of the public API.
	script []arch.ProcID
}

// ivl is one occupied interval on a processor timeline.
type ivl struct{ start, end model.Time }

// ownerRef locates one instance inside its owning block: the block plus
// the member position, so member lookups are O(1) instead of a scan.
type ownerRef struct {
	bl *blocks.Block
	mi int
}

// balState carries the per-processor incremental state of one run.
// Everything is indexed by dense IDs (processor, task, block, instance)
// — the balancer's inner loops run millions of lookups per trial and
// map overhead used to dominate them.
type balState struct {
	intervals  [][]ivl      // blocks moved to each processor, as intervals
	firstStart []model.Time // start of first block moved there (-1 = none)
	memSum     []model.Mem  // Σ m of blocks moved there
	anyMoved   []bool

	// resv[p] holds the unprocessed blocks currently hosted on p — their
	// members are the reservations conflict checks must honour. A block is
	// removed from its original processor's set when it is committed.
	resv [][]*blocks.Block

	// owner[i] locates the block member holding the instance with dense
	// index i (static: block membership never changes during a run).
	owner []ownerRef

	// taskBlocks[t] indexes the blocks holding instances of task t
	// (static like owner).
	taskBlocks [][]*blocks.Block

	// wcet[t] caches the WCET of task t: the conflict loops read it per
	// member visit and a Task struct copy per read is measurable.
	wcet []model.Time

	// Scratch, reset after each block: shifted flags per task for the
	// block being placed, seen flags per block ID for the propagation
	// cap, the blocks touched by gain propagation, and the obstacle
	// buffer of the earliest-fit sweep.
	shifted []bool
	seen    []bool
	touched []*blocks.Block
	obst    []ivl
}

// removeResv drops a block from the reservation index once processed.
func (st *balState) removeResv(bl *blocks.Block) {
	s := st.resv[bl.Proc]
	for i, other := range s {
		if other == bl {
			s[i] = s[len(s)-1]
			st.resv[bl.Proc] = s[:len(s)-1]
			return
		}
	}
}

// Run balances the given instance-level schedule and returns the result.
// The input schedule is not modified.
//
// Run is two-pass: the first pass caps gain propagation optimistically
// (assuming shifted blocks can later co-locate with their producers, as
// the paper's worked example does in its step 6). When that bet fails —
// some block ends up with no feasible processor (Forced > 0) — the
// balancer reruns with the conservative cap, under which every shift is
// provably realisable and no block is ever forced.
func (b *Balancer) Run(input *sched.InstSchedule) (*Result, error) {
	res, err := b.runPass(input, false)
	if err != nil {
		return nil, err
	}
	if res.Forced == 0 {
		return res, nil
	}
	cons, err := b.runPass(input, true)
	if err != nil {
		return nil, err
	}
	cons.ConservativePropagation = true
	return cons, nil
}

// runPass is one full balancing pass.
func (b *Balancer) runPass(input *sched.InstSchedule, conservative bool) (*Result, error) {
	ts, ar := input.TS, input.Arch
	blks := blocks.Build(input)
	if len(blks) == 0 {
		return nil, fmt.Errorf("core: nothing to balance: no blocks")
	}

	res := &Result{
		Blocks:         blks,
		MakespanBefore: input.Makespan(),
		MemBefore:      input.MemVector(),
		Moves:          make([]Move, 0, len(blks)),
	}

	st := &balState{
		intervals:  make([][]ivl, ar.Procs),
		firstStart: make([]model.Time, ar.Procs),
		memSum:     make([]model.Mem, ar.Procs),
		anyMoved:   make([]bool, ar.Procs),
		resv:       make([][]*blocks.Block, ar.Procs),
		owner:      make([]ownerRef, ts.TotalInstances()),
		taskBlocks: make([][]*blocks.Block, ts.Len()),
		wcet:       make([]model.Time, ts.Len()),
		shifted:    make([]bool, ts.Len()),
		seen:       make([]bool, len(blks)),
	}
	for i := range st.wcet {
		st.wcet[i] = ts.Task(model.TaskID(i)).WCET
	}
	for i := range st.firstStart {
		st.firstStart[i] = -1
	}
	for _, bl := range blks {
		st.resv[bl.Proc] = append(st.resv[bl.Proc], bl)
		for mi, m := range bl.Members {
			st.owner[ts.InstanceIndex(m.Inst)] = ownerRef{bl: bl, mi: mi}
		}
		for _, task := range bl.Tasks() {
			st.taskBlocks[task] = append(st.taskBlocks[task], bl)
		}
	}

	q := newBlockQueue(blks)
	processed := make([]bool, len(blks))
	for n := 0; n < len(blks); n++ {
		bl := q.pop(processed)
		st.removeResv(bl)
		var want *arch.ProcID
		if n < len(b.script) {
			want = &b.script[n]
		}
		mv, err := b.placeBlock(ts, ar, bl, processed, st, q, conservative, want)
		if err != nil {
			return nil, err
		}
		processed[bl.ID] = true
		if mv.Forced {
			res.Forced++
		}
		if mv.RelaxedLCM {
			res.RelaxedLCM++
		}
		res.Moves = append(res.Moves, mv)
	}

	out := sched.NewInstSchedule(ts, ar)
	for _, bl := range blks {
		for _, m := range bl.Members {
			out.Place(m.Inst, bl.Proc, m.Start)
		}
	}
	res.Schedule = out
	res.MakespanAfter = out.Makespan()
	res.MemAfter = out.MemVector()
	return res, nil
}

// blockQueue yields the unprocessed block with the smallest current
// start time (ties: processor, then first member identity) — the order
// nextBlock used to recompute by scanning every block every round. It
// is a lazy binary heap: gain propagation re-pushes the blocks it
// shifts, and stale entries (key no longer current, or block already
// processed) are discarded at pop time.
type blockQueue struct {
	entries []queueEntry
}

type queueEntry struct {
	start model.Time
	bl    *blocks.Block
}

func entryLess(a, b queueEntry) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	if a.bl.Proc != b.bl.Proc {
		return a.bl.Proc < b.bl.Proc
	}
	ai, bi := a.bl.Members[0].Inst, b.bl.Members[0].Inst
	if ai.Task != bi.Task {
		return ai.Task < bi.Task
	}
	return ai.K < bi.K
}

func newBlockQueue(blks []*blocks.Block) *blockQueue {
	q := &blockQueue{entries: make([]queueEntry, 0, len(blks)+8)}
	for _, bl := range blks {
		q.push(bl)
	}
	return q
}

func (q *blockQueue) push(bl *blocks.Block) {
	q.entries = append(q.entries, queueEntry{start: bl.Start(), bl: bl})
	i := len(q.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(q.entries[i], q.entries[parent]) {
			break
		}
		q.entries[i], q.entries[parent] = q.entries[parent], q.entries[i]
		i = parent
	}
}

// pop returns the live minimum. Every block is guaranteed a current
// entry: blocks are pushed at construction and re-pushed whenever
// propagation changes their start, so a stale entry always has a fresher
// duplicate behind it.
func (q *blockQueue) pop(processed []bool) *blocks.Block {
	for len(q.entries) > 0 {
		top := q.entries[0]
		last := len(q.entries) - 1
		q.entries[0] = q.entries[last]
		q.entries = q.entries[:last]
		// Sift down.
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(q.entries) && entryLess(q.entries[l], q.entries[small]) {
				small = l
			}
			if r < len(q.entries) && entryLess(q.entries[r], q.entries[small]) {
				small = r
			}
			if small == i {
				break
			}
			q.entries[i], q.entries[small] = q.entries[small], q.entries[i]
			i = small
		}
		if processed[top.bl.ID] || top.start != top.bl.Start() {
			continue // stale: processed, or superseded by a re-push
		}
		return top.bl
	}
	return nil
}

// placeBlock evaluates all processors for bl, applies the policy, commits
// the move, and propagates gains to later-instance blocks.
func (b *Balancer) placeBlock(ts *model.TaskSet, ar *arch.Architecture, bl *blocks.Block,
	processed []bool, st *balState, q *blockQueue,
	conservative bool, want *arch.ProcID) (Move, error) {

	sOld := bl.Start()
	var cands []Candidate
	if b.RecordCandidates {
		cands = make([]Candidate, 0, ar.Procs)
	}
	var best *Candidate
	var bestVal Candidate
	ctx := newPctx(ts, ar, bl, processed, st, conservative)
	defer ctx.release()

	relaxed := false
	for p := arch.ProcID(0); int(p) < ar.Procs; p++ {
		c := b.evaluate(ctx, p, b.DisableLCMCondition)
		if c.Feasible {
			c.Lambda = lambda(b.Policy, c.Gain, st.memSum[p])
			if best == nil || better(b.Policy, c, bestVal) {
				bestVal = c
				best = &bestVal
			}
		}
		if b.RecordCandidates {
			cands = append(cands, c)
		}
	}
	if best == nil && !b.DisableLCMCondition {
		// eq. (4) left the block with no processor; retry with the exact
		// wrap-around check only.
		relaxed = true
		for p := arch.ProcID(0); int(p) < ar.Procs; p++ {
			c := b.evaluate(ctx, p, true)
			if c.Feasible {
				c.Lambda = lambda(b.Policy, c.Gain, st.memSum[p])
				if best == nil || better(b.Policy, c, bestVal) {
					bestVal = c
					best = &bestVal
				}
			}
		}
	}

	// Scripted decision: override the policy with the forced processor,
	// failing the whole pass when it is infeasible at this step.
	if want != nil {
		best = nil
		c := b.evaluate(ctx, *want, b.DisableLCMCondition)
		if !c.Feasible {
			c = b.evaluate(ctx, *want, true)
			relaxed = c.Feasible
		}
		if !c.Feasible {
			return Move{}, fmt.Errorf("core: scripted placement of block %d on P%d infeasible: %s",
				bl.ID, int(*want)+1, c.Reason)
		}
		c.Lambda = lambda(b.Policy, c.Gain, st.memSum[*want])
		bestVal = c
		best = &bestVal
	}

	mv := Move{BlockID: bl.ID, From: bl.Proc, OldStart: sOld, Category: bl.Category}
	if b.RecordCandidates {
		mv.Candidates = cands
	}
	if best != nil && relaxed {
		mv.RelaxedLCM = true
	}

	if best == nil {
		// No processor feasible: keep the block where it is (recorded as
		// forced; final validation reports any resulting inconsistency).
		mv.To, mv.NewStart, mv.Gain, mv.Forced = bl.Proc, sOld, 0, true
		b.commit(ts, bl, processed, st, q, bl.Proc, sOld)
		return mv, nil
	}

	mv.To, mv.NewStart, mv.Gain = best.Proc, best.NewStart, best.Gain
	b.commit(ts, bl, processed, st, q, best.Proc, best.NewStart)
	return mv, nil
}

// evaluate computes the candidate record for moving the context block to
// processor p. With relaxLCM the Block Condition (eq. 4) is skipped; the
// exact wrap-around interval and reservation checks always apply.
func (b *Balancer) evaluate(ctx *pctx, p arch.ProcID, relaxLCM bool) Candidate {
	ts, ar, bl, st := ctx.ts, ctx.ar, ctx.bl, ctx.st
	c := Candidate{Proc: p, MemSum: st.memSum[p]}
	sOld := bl.Start()

	if cap := ar.MemCapacity; cap > 0 && st.memSum[p]+bl.Mem() > cap {
		c.Reason = "memory capacity"
		return c
	}

	if b.IgnoreTiming {
		c.Feasible, c.NewStart, c.Gain = true, sOld, 0
		return c
	}

	movedLB, conservativeLB := b.depBounds(ctx, p)

	var newStart model.Time
	if bl.Category == 2 {
		// Pinned by strict periodicity: the block cannot shift on its own.
		// Unprocessed producers are safe at the unchanged start (the
		// current schedule satisfies them and their ends only decrease),
		// so only moved producers and occupancy are checked.
		if movedLB > sOld {
			c.Reason = "moved producers finish too late for the pinned start"
			return c
		}
		if !ctx.conflictFree(p, sOld) {
			c.Reason = "no room at the pinned start"
			return c
		}
		newStart = sOld
	} else {
		s, ok := b.earliestOn(ctx, p, movedLB, conservativeLB)
		if !ok {
			c.Reason = "no conflict-free start within dependence bounds"
			return c
		}
		newStart = s
	}

	// Cap the gain so that propagation to later-instance blocks stays
	// feasible (see DESIGN.md §4: the paper assumes this implicitly).
	if gain := sOld - newStart; gain > 0 {
		if maxG := ctx.cachedPropagationCap(); maxG < gain {
			newStart = sOld - maxG
			if !ctx.conflictFree(p, newStart) {
				// The capped position may conflict; fall back to staying put.
				if ctx.conflictFree(p, sOld) {
					newStart = sOld
				} else {
					c.Reason = "no conflict-free start within dependence bounds"
					return c
				}
			}
		}
	}

	// Block (LCM) Condition, eq. (4).
	if !relaxLCM && st.firstStart[p] >= 0 && newStart+bl.Exec() > st.firstStart[p]+ts.HyperPeriod() {
		c.Reason = "LCM condition"
		return c
	}

	c.Feasible, c.NewStart, c.Gain = true, newStart, sOld-newStart
	return c
}

// depBounds computes the producer lower bounds on the block start for a
// landing on p. Producers in already moved blocks contribute their exact
// position and processor (movedLB); unprocessed producers contribute
// their current end plus a conservative C (conservativeLB), since they
// may end up anywhere.
func (b *Balancer) depBounds(ctx *pctx, p arch.ProcID) (movedLB, conservativeLB model.Time) {
	ts, ar, bl, st := ctx.ts, ctx.ar, ctx.bl, ctx.st
	sOld := bl.Start()
	for _, m := range bl.Members {
		off := m.Start - sOld // member offset inside the block
		model.EachInstanceDep(ts, m.Inst.Task, m.Inst.K, func(src model.InstanceID) {
			ref := st.owner[ts.InstanceIndex(src)]
			if ref.bl == bl {
				return
			}
			end := ref.bl.Members[ref.mi].Start + ts.Task(src.Task).WCET
			if ctx.processed[ref.bl.ID] {
				delay := model.Time(0)
				if ref.bl.Proc != p {
					delay = ar.CommTime
				}
				if v := end + delay - off; v > movedLB {
					movedLB = v
				}
			} else {
				if v := end + ar.CommTime - off; v > conservativeLB {
					conservativeLB = v
				}
			}
		})
	}
	return movedLB, conservativeLB
}

// earliestOn returns the earliest start of a first-category block on p
// compatible with the already-moved blocks, the reservations of
// unprocessed blocks, and the producer bounds — and whether it does not
// exceed the current start (moves never delay a block). Keeping the block
// at its unchanged start is always safe with respect to unprocessed
// producers (the current schedule already satisfies them and their starts
// can only decrease; a same-processor producer in a different block is at
// distance ≥ C by block construction), so the conservative bound only
// constrains actual gains.
func (b *Balancer) earliestOn(ctx *pctx, p arch.ProcID, movedLB, conservativeLB model.Time) (model.Time, bool) {
	sOld := ctx.bl.Start()
	lb := movedLB
	if conservativeLB > lb {
		lb = conservativeLB
	}
	if lb < 0 {
		lb = 0
	}
	if lb <= sOld {
		if s, ok := ctx.earliestConflictFree(p, lb, sOld); ok {
			return s, true
		}
	}
	if movedLB <= sOld && ctx.conflictFree(p, sOld) {
		return sOld, true
	}
	return 0, false
}

// commit moves the block, updates per-processor state, and propagates the
// gain to later-instance blocks of the same tasks.
func (b *Balancer) commit(ts *model.TaskSet, bl *blocks.Block,
	processed []bool, st *balState, q *blockQueue, p arch.ProcID, newStart model.Time) {

	gain := bl.Start() - newStart
	bl.Shift(-gain)
	bl.Proc = p

	if !b.IgnoreTiming {
		if !st.anyMoved[p] {
			st.anyMoved[p] = true
			st.firstStart[p] = newStart
		}
		st.intervals[p] = append(st.intervals[p], ivl{start: newStart, end: bl.End(ts)})
	}
	st.memSum[p] += bl.Mem()

	if gain <= 0 || bl.Category != 1 {
		return
	}
	// Strict periodicity propagation (§3.2): later instances of the tasks
	// whose first instances just gained must shift by the same amount.
	// st.shifted already flags bl's tasks (set by newPctx); taskBlocks
	// narrows the sweep to blocks actually holding instances of them.
	st.touched = st.touched[:0]
	for _, m := range bl.Members {
		task := m.Inst.Task
		if !st.shifted[task] {
			continue
		}
		for _, other := range st.taskBlocks[task] {
			if other == bl || processed[other.ID] || st.seen[other.ID] {
				continue
			}
			st.seen[other.ID] = true
			st.touched = append(st.touched, other)
		}
	}
	for _, other := range st.touched {
		st.seen[other.ID] = false
		changed := false
		for i := range other.Members {
			if st.shifted[other.Members[i].Inst.Task] {
				other.Members[i].Start -= gain
				changed = true
			}
		}
		if changed {
			other.Recompute(ts)
			q.push(other) // keep the queue key current
		}
	}
}
