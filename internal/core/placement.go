package core

import (
	"cmp"
	"slices"

	"repro/internal/arch"
	"repro/internal/blocks"
	"repro/internal/model"
)

// placement.go holds the feasibility machinery of the balancer: where a
// block may land without breaking non-overlap (including the ±H images of
// the repeating hyper-period pattern), honouring both the blocks already
// moved and the *reservations* of blocks not yet processed.
//
// Reservations are the sound generalisation the paper leaves implicit:
// every unprocessed block currently occupies its slot on its current
// processor, and since "stay where you are" must remain an option for it,
// no other block may be moved into that slot. Members of later-instance
// blocks of the tasks being moved are special: they will shift together
// with the candidate's gain, so their reservation is tested at the
// shifted position.

// pctx carries the inputs of one feasibility query. The shifted flags
// live in balState scratch (one []bool per run, not one map per block);
// release returns them.
type pctx struct {
	ts        *model.TaskSet
	ar        *arch.Architecture
	bl        *blocks.Block
	processed []bool
	st        *balState

	// cat1 gates the shift-along reservation rule; st.shifted[task] is
	// meaningful only when it is set.
	cat1 bool

	// conservative switches the propagation cap's producer rule from
	// "assume eventual co-location" (delay 0, what the paper's worked
	// example implicitly does) to "assume cross-processor" (delay C,
	// provably safe). See Balancer.Run for the two-pass strategy.
	conservative bool

	capOnce  bool
	capValue model.Time
}

// cachedPropagationCap computes propagationCap once per block (it does
// not depend on the candidate processor).
func (c *pctx) cachedPropagationCap() model.Time {
	if !c.capOnce {
		c.capValue = c.propagationCap()
		c.capOnce = true
	}
	return c.capValue
}

func newPctx(ts *model.TaskSet, ar *arch.Architecture, bl *blocks.Block,
	processed []bool, st *balState, conservative bool) *pctx {
	c := &pctx{ts: ts, ar: ar, bl: bl, processed: processed, st: st, conservative: conservative}
	if bl.Category == 1 {
		c.cat1 = true
		for _, m := range bl.Members {
			st.shifted[m.Inst.Task] = true
		}
	}
	return c
}

// release clears the scratch flags set by newPctx.
func (c *pctx) release() {
	if c.cat1 {
		for _, m := range c.bl.Members {
			c.st.shifted[m.Inst.Task] = false
		}
	}
}

// shifts reports whether instances of the task shift along with the
// candidate block's gain.
func (c *pctx) shifts(task model.TaskID) bool {
	return c.cat1 && c.st.shifted[task]
}

// conflictFree reports whether the candidate block, placed at start s on
// processor p (implying gain = sOld − s for category-1 blocks), overlaps
// neither a moved interval nor a reservation on p.
func (c *pctx) conflictFree(p arch.ProcID, s model.Time) bool {
	h := c.ts.HyperPeriod()
	sOld := c.bl.Start()
	gain := sOld - s
	span := c.bl.End(c.ts) - sOld
	end := s + span

	for _, iv := range c.st.intervals[p] {
		for _, d := range [3]model.Time{0, h, -h} {
			if s < iv.end+d && iv.start+d < end {
				return false
			}
		}
	}
	for _, other := range c.st.resv[p] {
		// Envelope pre-filter: a block whose [Start−gain, End) span (the
		// −gain widening covers members that would shift along) misses
		// the candidate window in every ±H image has no conflicting
		// member; the common case skips the member scan entirely.
		lo, hi := other.Start(), other.End(c.ts)
		if gain >= 0 {
			lo -= gain
		} else {
			hi -= gain
		}
		overlapsEnvelope := false
		for _, d := range [3]model.Time{0, h, -h} {
			if s < hi+d && lo+d < end {
				overlapsEnvelope = true
				break
			}
		}
		if !overlapsEnvelope {
			continue
		}
		for _, m := range other.Members {
			pos := m.Start
			if c.shifts(m.Inst.Task) {
				pos -= gain // sibling instance shifts along with the gain
			}
			w := c.st.wcet[m.Inst.Task]
			for _, d := range [3]model.Time{0, h, -h} {
				if s < pos+w+d && pos+d < end {
					return false
				}
			}
		}
	}
	return true
}

// earliestConflictFree finds the smallest conflict-free start in
// [lb, cap] on p.
//
// Obstacles split into two kinds. Members that shift along with the
// candidate's gain keep a constant offset relative to the candidate, so
// their conflict status is independent of s: one check decides
// feasibility for every s. Fixed obstacles (moved intervals and
// non-shifting reservations) admit the classic jump-to-the-end search.
func (c *pctx) earliestConflictFree(p arch.ProcID, lb, cap model.Time) (model.Time, bool) {
	h := c.ts.HyperPeriod()
	sOld := c.bl.Start()
	span := c.bl.End(c.ts) - sOld

	// Relative (shift-along) obstacles: evaluate once at s = sOld.
	if c.cat1 {
		for _, other := range c.st.resv[p] {
			for _, m := range other.Members {
				if !c.st.shifted[m.Inst.Task] {
					continue
				}
				w := c.ts.Task(m.Inst.Task).WCET
				for _, d := range [3]model.Time{0, h, -h} {
					if sOld < m.Start+w+d && m.Start+d < sOld+span {
						return 0, false // constant-offset collision at every s
					}
				}
			}
		}
	}

	// Fixed obstacles: collect the ±H images intersecting the search
	// window [lb, cap+span) into scratch, sort once, and sweep forward —
	// one pass instead of rescanning every obstacle per jump.
	wHi := cap + span
	obst := c.st.obst[:0]
	add := func(start, end model.Time) {
		for _, d := range [3]model.Time{0, h, -h} {
			if end+d > lb && start+d < wHi {
				obst = append(obst, ivl{start: start + d, end: end + d})
			}
		}
	}
	for _, iv := range c.st.intervals[p] {
		add(iv.start, iv.end)
	}
	for _, other := range c.st.resv[p] {
		lo, hi := other.Start(), other.End(c.ts)
		inWindow := false
		for _, d := range [3]model.Time{0, h, -h} {
			if hi+d > lb && lo+d < wHi {
				inWindow = true
				break
			}
		}
		if !inWindow {
			continue
		}
		for _, m := range other.Members {
			if c.shifts(m.Inst.Task) {
				continue
			}
			add(m.Start, m.Start+c.st.wcet[m.Inst.Task])
		}
	}
	slices.SortFunc(obst, func(a, b ivl) int {
		if c := cmp.Compare(a.start, b.start); c != 0 {
			return c
		}
		return cmp.Compare(a.end, b.end)
	})
	c.st.obst = obst

	s := lb
	for _, ob := range obst {
		if ob.start >= s+span {
			break // sorted by start: nothing further can conflict
		}
		if ob.end > s {
			s = ob.end // jump past the obstacle
		}
	}
	if s <= cap {
		return s, true
	}
	return 0, false
}

// propagationCap bounds the gain of a first-category block so that every
// later-instance member it would shift stays feasible where it currently
// sits: producers that do not shift must still complete in time
// (optimistically assuming eventual co-location, as the paper's step 6
// does, or conservatively with +C in the safe pass), and the shifted
// member must not slide into its unshifted left neighbours (moved
// intervals or other reservations on its processor).
func (c *pctx) propagationCap() model.Time {
	if !c.cat1 {
		return 0
	}
	h := c.ts.HyperPeriod()
	cap := h // effectively unbounded
	st := c.st

	for _, bm := range c.bl.Members {
		task := bm.Inst.Task
		for _, other := range st.taskBlocks[task] {
			if other == c.bl || c.processed[other.ID] || st.seen[other.ID] {
				continue
			}
			st.seen[other.ID] = true
			for _, m := range other.Members {
				if !st.shifted[m.Inst.Task] {
					continue
				}
				// Producer completion constraints.
				model.EachInstanceDep(c.ts, m.Inst.Task, m.Inst.K, func(src model.InstanceID) {
					if st.shifted[src.Task] {
						return // shifts by the same amount
					}
					ref := st.owner[c.ts.InstanceIndex(src)]
					end := ref.bl.Members[ref.mi].Start + c.ts.Task(src.Task).WCET
					if c.conservative {
						end += c.ar.CommTime
					}
					if g := m.Start - end; g < cap {
						cap = g
					}
				})
				// Non-overlap against unshifted left neighbours on the same
				// processor (direct and wrapped images).
				mEnd := m.Start + c.ts.Task(m.Inst.Task).WCET
				for _, iv := range st.intervals[other.Proc] {
					for _, d := range [3]model.Time{0, h, -h} {
						if iv.end+d <= m.Start {
							if g := m.Start - (iv.end + d); g < cap {
								cap = g
							}
						} else if iv.start+d < mEnd && m.Start < iv.end+d {
							cap = 0 // already touching; no room to shift
						}
					}
				}
				for _, nb := range st.resv[other.Proc] {
					if nb == c.bl {
						continue
					}
					for _, nm := range nb.Members {
						if st.shifted[nm.Inst.Task] {
							continue // shifts along; relative distance preserved
						}
						if nb == other && nm.Inst == m.Inst {
							continue
						}
						nEnd := nm.Start + c.ts.Task(nm.Inst.Task).WCET
						for _, d := range [3]model.Time{0, h, -h} {
							if nEnd+d <= m.Start {
								if g := m.Start - (nEnd + d); g < cap {
									cap = g
								}
							}
						}
					}
				}
			}
		}
	}
	// Reset the seen scratch for the next caller.
	for _, bm := range c.bl.Members {
		for _, other := range st.taskBlocks[bm.Inst.Task] {
			st.seen[other.ID] = false
		}
	}
	if cap < 0 {
		cap = 0
	}
	return cap
}
