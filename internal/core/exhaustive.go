package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/sched"
)

// exhaustive.go explores the heuristic's full decision tree: at every
// step the balancer normally moves the current block to the processor
// maximising λ; the exhaustive search instead tries *every* feasible
// candidate, recursing over complete placement scripts, and returns the
// best reachable outcome. It answers "how much does the greedy λ choice
// lose against an optimal sequential block placement?" (experiment E9) —
// within the same formalism (same block order, same feasibility rules),
// so the difference isolates the cost of greediness alone.

// Objective selects what the exhaustive search minimises.
type Objective int

const (
	// ObjectiveMakespan minimises the total execution time, breaking
	// ties on the maximum per-processor memory.
	ObjectiveMakespan Objective = iota
	// ObjectiveMaxMem minimises the maximum per-processor memory,
	// breaking ties on makespan.
	ObjectiveMaxMem
)

// ExhaustiveLimit bounds the number of blocks the search accepts; the
// tree has up to M^blocks leaves.
const ExhaustiveLimit = 12

// ExhaustiveBest explores every feasible placement script for the given
// schedule and returns the best result under the objective, along with
// the number of complete scripts examined. The balancer configuration
// (policy etc.) is irrelevant except for IgnoreTiming; scripts replace
// the policy.
func (b *Balancer) ExhaustiveBest(input *sched.InstSchedule, obj Objective) (*Result, int, error) {
	probe, err := b.runScripted(input, nil)
	if err != nil {
		return nil, 0, err
	}
	nblocks := len(probe.Blocks)
	if nblocks > ExhaustiveLimit {
		return nil, 0, fmt.Errorf("core: %d blocks exceed the exhaustive limit %d", nblocks, ExhaustiveLimit)
	}

	var best *Result
	leaves := 0
	procs := input.Arch.Procs

	var dfs func(prefix []arch.ProcID)
	dfs = func(prefix []arch.ProcID) {
		for p := arch.ProcID(0); int(p) < procs; p++ {
			script := append(append([]arch.ProcID(nil), prefix...), p)
			res, err := b.runScripted(input, script)
			if err != nil {
				continue // this prefix is infeasible at the current step
			}
			if len(script) < nblocks {
				dfs(script)
				continue
			}
			leaves++
			if best == nil || better2(obj, res, best) {
				best = res
			}
		}
	}
	dfs(nil)
	if best == nil {
		return nil, 0, fmt.Errorf("core: no feasible complete placement script")
	}
	return best, leaves, nil
}

// better2 compares complete results under the objective.
func better2(obj Objective, a, b *Result) bool {
	am, bm := a.MakespanAfter, b.MakespanAfter
	ax, bx := maxMem(a.MemAfter), maxMem(b.MemAfter)
	switch obj {
	case ObjectiveMaxMem:
		if ax != bx {
			return ax < bx
		}
		return am < bm
	default:
		if am != bm {
			return am < bm
		}
		return ax < bx
	}
}

func maxMem(v []model.Mem) model.Mem {
	var m model.Mem
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// runScripted is runPass with forced choices: decision i sends the i-th
// processed block to script[i], failing when that candidate is
// infeasible even after relaxing eq. (4) to the exact wrap check. Note
// the per-candidate relaxation gives scripts slightly more freedom than
// the greedy pass (which relaxes only when every processor fails),
// so the search optimises over a superset of the greedy's reachable
// outcomes — the right direction for an optimality reference. Steps
// beyond the script fall back to the policy; a nil script reproduces the
// normal optimistic pass.
func (b *Balancer) runScripted(input *sched.InstSchedule, script []arch.ProcID) (*Result, error) {
	saved := b.script
	b.script = script
	defer func() { b.script = saved }()
	return b.runPass(input, false)
}
