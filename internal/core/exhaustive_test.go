package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/sched"
)

// TestExhaustiveNeverWorseThanGreedy: by construction the exhaustive
// search optimises over a superset of the greedy's decisions, so its
// best must be at least as good on the chosen objective.
func TestExhaustiveNeverWorseThanGreedy(t *testing.T) {
	s := paperInitial(t)
	is := sched.FromSchedule(s)
	b := &Balancer{}
	greedy, err := b.Run(is)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range []Objective{ObjectiveMakespan, ObjectiveMaxMem} {
		best, leaves, err := b.ExhaustiveBest(is, obj)
		if err != nil {
			t.Fatalf("objective %v: %v", obj, err)
		}
		if leaves == 0 {
			t.Fatalf("objective %v: no complete scripts", obj)
		}
		switch obj {
		case ObjectiveMakespan:
			if best.MakespanAfter > greedy.MakespanAfter {
				t.Errorf("exhaustive makespan %d worse than greedy %d", best.MakespanAfter, greedy.MakespanAfter)
			}
		case ObjectiveMaxMem:
			if maxMem(best.MemAfter) > maxMem(greedy.MemAfter) {
				t.Errorf("exhaustive max-mem %d worse than greedy %d", maxMem(best.MemAfter), maxMem(greedy.MemAfter))
			}
		}
		if errs := best.Schedule.Validate(); len(errs) > 0 {
			t.Errorf("objective %v: best schedule invalid: %v", obj, errs[0])
		}
	}
}

// TestExhaustiveOnPaperExample: the worked example's greedy outcome
// (makespan 14) is in fact sequentially optimal — no placement script
// beats it.
func TestExhaustiveOnPaperExample(t *testing.T) {
	s := paperInitial(t)
	is := sched.FromSchedule(s)
	best, leaves, err := (&Balancer{}).ExhaustiveBest(is, ObjectiveMakespan)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d complete scripts", leaves)
	if best.MakespanAfter != 14 {
		t.Errorf("optimal sequential makespan = %d; greedy already achieves 14", best.MakespanAfter)
	}
}

// TestExhaustiveRejectsLargeInputs guards the exponential blow-up.
func TestExhaustiveRejectsLargeInputs(t *testing.T) {
	// The limit is in blocks; a system of independent tasks yields one
	// block per instance.
	ts := model.NewTaskSet()
	for i := 0; i < ExhaustiveLimit+2; i++ {
		ts.MustAddTask(taskName(i), 100, 1, 1)
	}
	ts.MustFreeze()
	sc, err := sched.NewScheduler(ts, arch.MustNew(3, 1)).Run()
	if err != nil {
		t.Skip(err)
	}
	if _, _, err := (&Balancer{}).ExhaustiveBest(sched.FromSchedule(sc), ObjectiveMakespan); err == nil {
		t.Fatal("oversized input accepted")
	}
}
