// Package profiling wires the standard pprof file profiles into the
// CLIs, so a slow sweep can be diagnosed with `lbfarm -cpuprofile cpu.out
// …` and `go tool pprof` instead of rebuilding with a test harness (see
// docs/performance.md for the workflow).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and arranges
// for a heap profile to land in memPath (when non-empty). The returned
// stop function flushes both, after the measured work. It is idempotent
// — later calls are no-ops — so error paths can flush defensively
// before exiting while the normal path keeps its own call.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialise the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
