package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/sched"
)

// ReadCSV parses a schedule exported by CSV back into an instance-level
// schedule over the given task set and architecture. It verifies that
// every row names a known task, that instance indices are in range, and
// that the end column matches start + WCET (a cheap integrity check on
// hand-edited files).
func ReadCSV(r io.Reader, ts *model.TaskSet, a *arch.Architecture) (*sched.InstSchedule, error) {
	is := sched.NewInstSchedule(ts, a)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 {
			if text != "task,instance,processor,start,end,mem" {
				return nil, fmt.Errorf("trace: line 1: unexpected header %q", text)
			}
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 6 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 6", line, len(fields))
		}
		task, ok := ts.ByName(fields[0])
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown task %q", line, fields[0])
		}
		k, err := strconv.Atoi(fields[1])
		if err != nil || k < 1 || k > ts.Instances(task.ID) {
			return nil, fmt.Errorf("trace: line %d: bad instance %q for task %q", line, fields[1], fields[0])
		}
		proc, err := strconv.Atoi(fields[2])
		if err != nil || proc < 1 || proc > a.Procs {
			return nil, fmt.Errorf("trace: line %d: bad processor %q", line, fields[2])
		}
		start, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || start < 0 {
			return nil, fmt.Errorf("trace: line %d: bad start %q", line, fields[3])
		}
		end, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad end %q", line, fields[4])
		}
		if model.Time(end) != model.Time(start)+task.WCET {
			return nil, fmt.Errorf("trace: line %d: end %d ≠ start %d + WCET %d", line, end, start, task.WCET)
		}
		is.Place(model.InstanceID{Task: task.ID, K: k - 1}, arch.ProcID(proc-1), model.Time(start))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return is, nil
}
