package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/sched"
)

func sample(t *testing.T) *sched.Schedule {
	t.Helper()
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 4)
	b := ts.MustAddTask("b", 6, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	ar := arch.MustNew(2, 1)
	s := sched.MustNewSchedule(ts, ar)
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 1, 5)
	if err := s.DeriveComms(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGanttRendersRowsAndLabels(t *testing.T) {
	var buf bytes.Buffer
	if err := GanttSchedule(&buf, sample(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "P1") || !strings.Contains(out, "P2") {
		t.Errorf("missing processor rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // ruler + 2 processors
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	// P1 row: a at 0 and 3.
	p1 := lines[1]
	if !strings.Contains(p1, "a") {
		t.Errorf("P1 row missing task a: %q", p1)
	}
	if !strings.Contains(lines[2], "b") {
		t.Errorf("P2 row missing task b: %q", lines[2])
	}
}

func TestGanttEmpty(t *testing.T) {
	ts := model.NewTaskSet()
	ts.MustAddTask("a", 3, 1, 1)
	ts.MustFreeze()
	is := sched.NewInstSchedule(ts, arch.MustNew(1, 0))
	var buf bytes.Buffer
	if err := Gantt(&buf, is); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Errorf("empty schedule rendering: %q", buf.String())
	}
}

func TestCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := CSV(&buf, sched.FromSchedule(sample(t))); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "task,instance,processor,start,end,mem" {
		t.Errorf("header = %q", lines[0])
	}
	// a has 2 instances + b has 1 = 3 data rows.
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if lines[1] != "a,1,1,0,1,4" {
		t.Errorf("first row = %q, want a,1,1,0,1,4", lines[1])
	}
}

func TestCommsListing(t *testing.T) {
	var buf bytes.Buffer
	if err := Comms(&buf, sample(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a#1 -> b#1") || !strings.Contains(out, "a#2 -> b#1") {
		t.Errorf("transfers missing:\n%s", out)
	}
	if !strings.Contains(out, "Med") {
		t.Errorf("medium name missing:\n%s", out)
	}
}
