package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/sched"
)

func TestCSVRoundTrip(t *testing.T) {
	s := sample(t)
	is := sched.FromSchedule(s)
	var buf bytes.Buffer
	if err := CSV(&buf, is); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, s.TS, s.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan() != is.Makespan() {
		t.Errorf("round trip makespan %d, want %d", got.Makespan(), is.Makespan())
	}
	if len(got.Validate()) > 0 {
		t.Errorf("round-tripped schedule invalid: %v", got.Validate()[0])
	}
	for p := arch.ProcID(0); int(p) < s.Arch.Procs; p++ {
		a, b := is.InstancesOn(p), got.InstancesOn(p)
		if len(a) != len(b) {
			t.Fatalf("P%d: %d vs %d instances after round trip", p+1, len(a), len(b))
		}
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	s := sample(t)
	cases := []struct{ name, data string }{
		{"bad header", "nope\n"},
		{"unknown task", "task,instance,processor,start,end,mem\nzz,1,1,0,1,1\n"},
		{"bad instance", "task,instance,processor,start,end,mem\na,9,1,0,1,4\n"},
		{"bad processor", "task,instance,processor,start,end,mem\na,1,7,0,1,4\n"},
		{"negative start", "task,instance,processor,start,end,mem\na,1,1,-2,-1,4\n"},
		{"end mismatch", "task,instance,processor,start,end,mem\na,1,1,0,3,4\n"},
		{"short row", "task,instance,processor,start,end,mem\na,1,1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.data), s.TS, s.Arch); err == nil {
				t.Fatalf("accepted %s", c.name)
			}
		})
	}
}
