// Package trace renders schedules for humans: ASCII Gantt charts in the
// style of the paper's figures 3 and 4, and CSV exports for external
// plotting.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/sched"
)

// Gantt writes an ASCII Gantt chart of an instance-level schedule, one
// row per processor, one column per time unit. Instance labels are the
// first letter(s) of the task name; idle time is rendered as '.'.
func Gantt(w io.Writer, is *sched.InstSchedule) error {
	ts, ar := is.TS, is.Arch
	horizon := is.Makespan()
	if horizon <= 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}

	// Ruler.
	var ruler strings.Builder
	ruler.WriteString("      ")
	for t := model.Time(0); t < horizon; t += 5 {
		ruler.WriteString(fmt.Sprintf("%-5d", t))
	}
	if _, err := fmt.Fprintln(w, strings.TrimRight(ruler.String(), " ")); err != nil {
		return err
	}

	for p := arch.ProcID(0); int(p) < ar.Procs; p++ {
		cells := make([]byte, horizon)
		for i := range cells {
			cells[i] = '.'
		}
		for _, iid := range is.InstancesOn(p) {
			pl, _ := is.Placement(iid)
			name := ts.Task(iid.Task).Name
			label := name[0]
			for t := pl.Start; t < pl.Start+ts.Task(iid.Task).WCET && t < horizon; t++ {
				cells[t] = label
			}
		}
		if _, err := fmt.Fprintf(w, "%-5s %s\n", ar.ProcName(p), string(cells)); err != nil {
			return err
		}
	}
	return nil
}

// GanttSchedule renders a task-level schedule by expanding it first.
func GanttSchedule(w io.Writer, s *sched.Schedule) error {
	return Gantt(w, sched.FromSchedule(s))
}

// CSV writes one line per instance: task, instance, processor, start,
// end, memory. Deterministic row order.
func CSV(w io.Writer, is *sched.InstSchedule) error {
	if _, err := fmt.Fprintln(w, "task,instance,processor,start,end,mem"); err != nil {
		return err
	}
	rows := model.ExpandInstances(is.TS)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Task != rows[j].Task {
			return rows[i].Task < rows[j].Task
		}
		return rows[i].K < rows[j].K
	})
	for _, iid := range rows {
		pl, ok := is.Placement(iid)
		if !ok {
			continue
		}
		t := is.TS.Task(iid.Task)
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d\n",
			t.Name, iid.K+1, int(pl.Proc)+1, pl.Start, pl.Start+t.WCET, t.Mem); err != nil {
			return err
		}
	}
	return nil
}

// Comms writes the derived transfers of a task-level schedule, one per
// line, in the order they occupy the medium.
func Comms(w io.Writer, s *sched.Schedule) error {
	cms := append([]sched.Comm(nil), s.Comms()...)
	sort.Slice(cms, func(i, j int) bool { return cms[i].Start < cms[j].Start })
	for _, c := range cms {
		srcName := s.TS.Task(c.Src.Task).Name
		dstName := s.TS.Task(c.Dst.Task).Name
		if _, err := fmt.Fprintf(w, "%s#%d -> %s#%d on %s [%d,%d)\n",
			srcName, c.Src.K+1, dstName, c.Dst.K+1,
			s.Arch.MediumName(c.Medium), c.Start, c.End(s.Arch)); err != nil {
			return err
		}
	}
	return nil
}
