// Package gen synthesises random multi-period task systems with the
// structural properties the paper assumes (§4): a small set of harmonic
// periods imposed by sensors/actuators, dependence edges only between
// tasks at the same or multiple periods, and per-task memory amounts.
// It substitutes for the industrial applications ("several thousands of
// tasks and tens of processors") the authors could not publish.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
)

// Config parameterises one random system.
type Config struct {
	Seed int64

	Tasks int // number of tasks, ≥ 1

	// Periods is the harmonic period ladder tasks draw from, e.g.
	// {10, 20, 40}. Defaults to {10, 20, 40, 80} when empty. Every entry
	// must divide or be divided by every other (harmonic set).
	Periods []model.Time

	// Utilization is the target ΣEi/Ti. WCETs are drawn UUniFast-style so
	// the total utilisation is close to this value. Default 2.0 (enough
	// work for a handful of processors).
	Utilization float64

	// EdgeProb is the probability of adding a dependence from an earlier
	// task to a later one when their periods are harmonic (chains form the
	// blocks the heuristic moves). Default 0.3. A negative value requests
	// an edge-free system — the zero value means "unset", so an explicit
	// probability of zero needs a sentinel.
	EdgeProb float64

	// MaxInDegree bounds producers per task. Default 3.
	MaxInDegree int

	// MemMin, MemMax bound per-task memory, drawn uniformly. Defaults 1, 8.
	MemMin, MemMax model.Mem
}

func (c *Config) fill() {
	if len(c.Periods) == 0 {
		c.Periods = []model.Time{10, 20, 40, 80}
	}
	if c.Utilization == 0 {
		c.Utilization = 2.0
	}
	if c.EdgeProb < 0 {
		c.EdgeProb = 0
	} else if c.EdgeProb == 0 {
		c.EdgeProb = 0.3
	}
	if c.MaxInDegree == 0 {
		c.MaxInDegree = 3
	}
	if c.MemMin == 0 {
		c.MemMin = 1
	}
	if c.MemMax == 0 {
		c.MemMax = 8
	}
}

// Generate builds a frozen random task set from the configuration.
func Generate(cfg Config) (*model.TaskSet, error) {
	cfg.fill()
	if cfg.Tasks < 1 {
		return nil, fmt.Errorf("gen: need at least one task")
	}
	for i, p := range cfg.Periods {
		for _, q := range cfg.Periods[:i] {
			if !model.Harmonic(p, q) {
				return nil, fmt.Errorf("gen: periods %d and %d are not harmonic", p, q)
			}
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// UUniFast utilisation split (Bini & Buttazzo): generates n task
	// utilisations summing to U, uniformly over the simplex.
	utils := uuniFast(rng, cfg.Tasks, cfg.Utilization)

	ts := model.NewTaskSet()
	periods := make([]model.Time, cfg.Tasks)
	for i := 0; i < cfg.Tasks; i++ {
		t := cfg.Periods[rng.Intn(len(cfg.Periods))]
		periods[i] = t
		wcet := model.Time(float64(t) * utils[i])
		if wcet < 1 {
			wcet = 1
		}
		if wcet > t {
			wcet = t
		}
		mem := cfg.MemMin + model.Mem(rng.Int63n(int64(cfg.MemMax-cfg.MemMin+1)))
		if _, err := ts.AddTask(fmt.Sprintf("t%03d", i), t, wcet, mem); err != nil {
			return nil, err
		}
	}

	// Dependences: earlier → later (acyclic by construction), harmonic
	// periods only, bounded in-degree.
	indeg := make([]int, cfg.Tasks)
	for j := 1; j < cfg.Tasks; j++ {
		for i := 0; i < j; i++ {
			if indeg[j] >= cfg.MaxInDegree {
				break
			}
			if !model.Harmonic(periods[i], periods[j]) {
				continue
			}
			if rng.Float64() >= cfg.EdgeProb {
				continue
			}
			data := 1 + model.Mem(rng.Int63n(3))
			if err := ts.AddDependence(model.TaskID(i), model.TaskID(j), data); err != nil {
				return nil, err
			}
			indeg[j]++
		}
	}
	if err := ts.Freeze(); err != nil {
		return nil, err
	}
	return ts, nil
}

// Normalized returns a copy of the configuration with every default
// filled in, so callers (the campaign engine, artifact writers) can
// persist or display the effective generator parameters.
func (c Config) Normalized() Config {
	c.fill()
	return c
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) *model.TaskSet {
	ts, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ts
}

// uuniFast draws n utilisations summing to total.
func uuniFast(rng *rand.Rand, n int, total float64) []float64 {
	out := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i-1))
		out[i] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}
