package gen

import (
	"testing"

	"repro/internal/model"
)

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Config{Seed: 42, Tasks: 25})
	b := MustGenerate(Config{Seed: 42, Tasks: 25})
	if a.Len() != b.Len() {
		t.Fatal("same seed, different sizes")
	}
	for i := 0; i < a.Len(); i++ {
		ta, tb := a.Task(model.TaskID(i)), b.Task(model.TaskID(i))
		if ta != tb {
			t.Fatalf("task %d differs: %+v vs %+v", i, ta, tb)
		}
	}
	da, db := a.Dependences(), b.Dependences()
	if len(da) != len(db) {
		t.Fatal("same seed, different edge counts")
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := MustGenerate(Config{Seed: 1, Tasks: 25})
	b := MustGenerate(Config{Seed: 2, Tasks: 25})
	same := true
	for i := 0; i < a.Len() && same; i++ {
		if a.Task(model.TaskID(i)) != b.Task(model.TaskID(i)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical systems")
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	cfg := Config{Seed: 9, Tasks: 60, MemMin: 2, MemMax: 5, Utilization: 3}
	ts := MustGenerate(cfg)
	if ts.Len() != 60 {
		t.Fatalf("got %d tasks", ts.Len())
	}
	periods := map[model.Time]bool{}
	for _, tk := range ts.Tasks() {
		if tk.Mem < 2 || tk.Mem > 5 {
			t.Errorf("task %s memory %d outside [2,5]", tk.Name, tk.Mem)
		}
		if tk.WCET < 1 || tk.WCET > tk.Period {
			t.Errorf("task %s WCET %d invalid for period %d", tk.Name, tk.WCET, tk.Period)
		}
		periods[tk.Period] = true
	}
	for p := range periods {
		found := false
		for _, q := range []model.Time{10, 20, 40, 80} {
			if p == q {
				found = true
			}
		}
		if !found {
			t.Errorf("period %d not from the default ladder", p)
		}
	}
}

func TestGenerateEdgesHarmonicAndBounded(t *testing.T) {
	ts := MustGenerate(Config{Seed: 3, Tasks: 50, EdgeProb: 0.5, MaxInDegree: 2})
	indeg := map[model.TaskID]int{}
	for _, d := range ts.Dependences() {
		if !model.Harmonic(ts.Task(d.Src).Period, ts.Task(d.Dst).Period) {
			t.Errorf("edge %d→%d not harmonic", d.Src, d.Dst)
		}
		if d.Src >= d.Dst {
			t.Errorf("edge %d→%d not forward (acyclicity by construction)", d.Src, d.Dst)
		}
		indeg[d.Dst]++
	}
	for id, n := range indeg {
		if n > 2 {
			t.Errorf("task %d in-degree %d > 2", id, n)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Tasks: 0}); err == nil {
		t.Error("zero tasks accepted")
	}
	if _, err := Generate(Config{Tasks: 3, Periods: []model.Time{10, 15}}); err == nil {
		t.Error("non-harmonic period ladder accepted")
	}
}

func TestGenerateUtilizationRoughlyMet(t *testing.T) {
	ts := MustGenerate(Config{Seed: 8, Tasks: 30, Utilization: 3})
	u := ts.Utilization()
	// WCET flooring inflates tiny shares; accept a generous band.
	if u < 2 || u > 6 {
		t.Errorf("utilization %v too far from target 3", u)
	}
}

func TestNormalized(t *testing.T) {
	n := Config{}.Normalized()
	if len(n.Periods) == 0 || n.Utilization == 0 || n.EdgeProb == 0 ||
		n.MaxInDegree == 0 || n.MemMin == 0 || n.MemMax == 0 {
		t.Fatalf("defaults not filled: %+v", n)
	}
	// Explicit values survive.
	c := Config{Periods: []model.Time{5, 10}, MemMax: 3}.Normalized()
	if len(c.Periods) != 2 || c.MemMax != 3 {
		t.Fatalf("explicit values overwritten: %+v", c)
	}
	// Normalized is a copy: the receiver is untouched.
	var z Config
	_ = z.Normalized()
	if z.MaxInDegree != 0 {
		t.Fatal("Normalized mutated its receiver")
	}
}
