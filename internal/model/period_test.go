package model

import (
	"testing"
	"testing/quick"
)

func TestGCDLCMBasics(t *testing.T) {
	cases := []struct{ a, b, gcd, lcm Time }{
		{3, 6, 3, 6},
		{4, 6, 2, 12},
		{7, 13, 1, 91},
		{0, 5, 5, 0},
		{5, 0, 5, 0},
		{12, 12, 12, 12},
		{-4, 6, 2, 12},
	}
	for _, c := range cases {
		if g := GCD(c.a, c.b); g != c.gcd {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, g, c.gcd)
		}
		if l := LCM(c.a, c.b); l != c.lcm {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, l, c.lcm)
		}
	}
}

func TestLCMAll(t *testing.T) {
	if l := LCMAll(3, 6, 12); l != 12 {
		t.Errorf("LCMAll(3,6,12) = %d, want 12", l)
	}
	if l := LCMAll(); l != 0 {
		t.Errorf("LCMAll() = %d, want 0", l)
	}
	if l := LCMAll(4, 6); l != 12 {
		t.Errorf("LCMAll(4,6) = %d, want 12", l)
	}
}

func TestHarmonic(t *testing.T) {
	cases := []struct {
		a, b Time
		want bool
	}{
		{3, 6, true}, {6, 3, true}, {5, 5, true},
		{4, 6, false}, {0, 3, false}, {3, 0, false}, {-3, 6, false},
	}
	for _, c := range cases {
		if got := Harmonic(c.a, c.b); got != c.want {
			t.Errorf("Harmonic(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRateRatio(t *testing.T) {
	cases := []struct {
		tp, tc Time
		want   int
	}{
		{3, 12, 4}, // consumer 4× slower: needs 4 data (figure 1, n=4)
		{3, 3, 1},  // same rate
		{12, 3, 1}, // producer slower: one datum reused
		{5, 7, 1},  // non-harmonic degenerates to 1
	}
	for _, c := range cases {
		if got := RateRatio(c.tp, c.tc); got != c.want {
			t.Errorf("RateRatio(%d,%d) = %d, want %d", c.tp, c.tc, got, c.want)
		}
	}
}

// Property: GCD divides both arguments and LCM is a common multiple, for
// positive inputs.
func TestGCDLCMProperties(t *testing.T) {
	f := func(a0, b0 uint16) bool {
		a, b := Time(a0%1000)+1, Time(b0%1000)+1
		g := GCD(a, b)
		l := LCM(a, b)
		return g > 0 && a%g == 0 && b%g == 0 && l%a == 0 && l%b == 0 && g*l == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the instance k of a strictly periodic task starts exactly k
// periods after the first instance.
func TestInstanceStartProperty(t *testing.T) {
	f := func(s0 uint16, period0 uint8, k0 uint8) bool {
		s, p, k := Time(s0), Time(period0)+1, int(k0%64)
		return InstanceStart(s, p, k) == s+Time(k)*p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
