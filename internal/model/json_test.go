package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	ts := NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 4)
	b := ts.MustAddTask("b", 6, 1, 1)
	ts.MustAddDependence(a, b, 2)
	ts.MustFreeze()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.HyperPeriod() != 6 {
		t.Fatalf("round trip lost structure: len=%d H=%d", got.Len(), got.HyperPeriod())
	}
	ta, _ := got.ByName("a")
	if ta.Period != 3 || ta.WCET != 1 || ta.Mem != 4 {
		t.Errorf("task a = %+v", ta)
	}
	tb, _ := got.ByName("b")
	if d, ok := got.DependenceData(ta.ID, tb.ID); !ok || d != 2 {
		t.Errorf("dependence data = %d, %v", d, ok)
	}
}

func TestReadJSONRejectsUnknownTask(t *testing.T) {
	in := `{"tasks":[{"name":"a","period":3,"wcet":1,"mem":1}],"deps":[{"src":"a","dst":"ghost"}]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("unknown dependence endpoint accepted")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
