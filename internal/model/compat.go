package model

// compat.go implements the strict-periodicity compatibility theory the
// paper builds on (its reference [1], Cucu & Sorel: non-preemptive
// multiprocessor scheduling for strict periodic systems).
//
// Two strictly periodic non-preemptive tasks i and j share a processor
// without ever overlapping iff their start-time difference, reduced
// modulo g = gcd(Ti, Tj), leaves room for both WCETs:
//
//	Ei ≤ ((sj − si) mod g)  and  Ej ≤ g − ((sj − si) mod g)
//
// Intuition: the relative phase of the two instance trains is periodic
// with period g, and within every g-window task i occupies [0, Ei) while
// task j occupies [(sj−si) mod g, (sj−si) mod g + Ej) — the trains
// collide somewhere iff these two windows collide in the g-ring. This
// reduces the pairwise conflict test from iterating all instance pairs in
// the hyper-period to one modulo operation, and is the engine behind the
// scheduler's fast feasibility checks.

// Mod returns x mod m in [0, m), also for negative x.
func Mod(x, m Time) Time {
	if m <= 0 {
		return 0
	}
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}

// Compatible reports whether two strictly periodic non-preemptive tasks
// can share a processor with the given first-instance start times and
// never overlap: task i = (si, Ti, Ei), task j = (sj, Tj, Ej).
func Compatible(si, ti, ei, sj, tj, ej Time) bool {
	g := GCD(ti, tj)
	if g <= 0 {
		return false
	}
	if ei+ej > g {
		return false // the g-ring cannot hold both executions
	}
	d := Mod(sj-si, g)
	return ei <= d && d+ej <= g
}

// CompatWindow returns the set of residues r = (sj − si) mod g for which
// the two tasks are compatible, as the half-open interval [Ei, g−Ej] of
// admissible residues (empty when Ei+Ej > g). Schedulers can use it to
// jump directly to a feasible offset rather than probing.
func CompatWindow(ti, ei, tj, ej Time) (lo, hi Time, ok bool) {
	g := GCD(ti, tj)
	if g <= 0 || ei+ej > g {
		return 0, 0, false
	}
	return ei, g - ej, true
}

// FirstCompatibleAtLeast returns the smallest sj ≥ lower such that task
// j = (Tj, Ej) is compatible with task i = (si, Ti, Ei), or ok = false
// when no residue admits both (Ei + Ej > gcd).
func FirstCompatibleAtLeast(si, ti, ei Time, tj, ej Time, lower Time) (Time, bool) {
	lo, hi, ok := CompatWindow(ti, ei, tj, ej)
	if !ok {
		return 0, false
	}
	g := GCD(ti, tj)
	d := Mod(lower-si, g)
	switch {
	case d >= lo && d <= hi:
		return lower, true
	case d < lo:
		return lower + (lo - d), true
	default: // d > hi: wrap to the next window
		return lower + (g - d) + lo, true
	}
}
