package model

import (
	"testing"
	"testing/quick"
)

// bruteOverlap checks by enumeration whether two strictly periodic
// non-preemptive tasks ever overlap, over one LCM window with wrap
// images — the ground truth Compatible must agree with.
func bruteOverlap(si, ti, ei, sj, tj, ej Time) bool {
	h := LCM(ti, tj)
	// The steady-state pattern repeats with period h: reduce both phase
	// origins into [0, h) so the ±h images below cover all alignments.
	si, sj = Mod(si, h), Mod(sj, h)
	for a := Time(0); a < h/ti; a++ {
		as := si + a*ti
		ae := as + ei
		for b := Time(0); b < h/tj; b++ {
			bs := sj + b*tj
			be := bs + ej
			for _, d := range [3]Time{0, h, -h} {
				if as < be+d && bs+d < ae {
					return true
				}
			}
		}
	}
	return false
}

func TestCompatibleBasic(t *testing.T) {
	cases := []struct {
		si, ti, ei, sj, tj, ej Time
	}{
		{0, 4, 1, 1, 4, 1}, // interleaved, same period
		{0, 4, 1, 0, 4, 1}, // same slot
		{0, 4, 2, 2, 4, 2}, // back to back, exactly fits
		{0, 4, 2, 1, 4, 2}, // shifted into overlap
		{0, 3, 1, 1, 6, 1}, // harmonic pair (the paper's a/b shape)
		{0, 3, 1, 3, 6, 1}, // collides with the producer's second instance
		{0, 4, 2, 0, 6, 1}, // gcd 2 cannot hold 2+1
		{0, 6, 2, 8, 4, 1}, // residue arithmetic across a phase > period
	}
	for i, c := range cases {
		got := Compatible(c.si, c.ti, c.ei, c.sj, c.tj, c.ej)
		brute := !bruteOverlap(c.si, c.ti, c.ei, c.sj, c.tj, c.ej)
		if got != brute {
			t.Errorf("case %d: Compatible = %v, brute force = %v", i, got, brute)
		}
	}
}

// Property: Compatible agrees with instance enumeration on random
// parameters.
func TestCompatibleMatchesBruteForce(t *testing.T) {
	f := func(si0, sj0 uint8, ti0, tj0, ei0, ej0 uint8) bool {
		ti := Time(ti0%12) + 1
		tj := Time(tj0%12) + 1
		ei := Time(ei0)%ti + 1
		ej := Time(ej0)%tj + 1
		si := Time(si0 % 24)
		sj := Time(sj0 % 24)
		return Compatible(si, ti, ei, sj, tj, ej) == !bruteOverlap(si, ti, ei, sj, tj, ej)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMod(t *testing.T) {
	cases := []struct{ x, m, want Time }{
		{7, 3, 1}, {-1, 3, 2}, {-3, 3, 0}, {0, 5, 0}, {5, 0, 0},
	}
	for _, c := range cases {
		if got := Mod(c.x, c.m); got != c.want {
			t.Errorf("Mod(%d,%d) = %d, want %d", c.x, c.m, got, c.want)
		}
	}
}

func TestCompatWindow(t *testing.T) {
	lo, hi, ok := CompatWindow(4, 1, 6, 1)
	if !ok || lo != 1 || hi != 1 {
		t.Errorf("CompatWindow(4,1,6,1) = [%d,%d] ok=%v, want [1,1] true", lo, hi, ok)
	}
	if _, _, ok := CompatWindow(4, 2, 6, 1); ok {
		t.Error("gcd 2 cannot host 2+1, window should be empty")
	}
}

// Property: FirstCompatibleAtLeast returns a start that is (a) ≥ lower,
// (b) compatible, and (c) minimal — no smaller start ≥ lower is
// compatible.
func TestFirstCompatibleAtLeastProperty(t *testing.T) {
	f := func(si0 uint8, ti0, tj0, ei0, ej0 uint8, lower0 uint8) bool {
		ti := Time(ti0%10) + 1
		tj := Time(tj0%10) + 1
		ei := Time(ei0)%ti + 1
		ej := Time(ej0)%tj + 1
		si := Time(si0 % 20)
		lower := Time(lower0 % 40)

		sj, ok := FirstCompatibleAtLeast(si, ti, ei, tj, ej, lower)
		if !ok {
			// No residue works: Compatible must fail for a whole gcd window.
			g := GCD(ti, tj)
			for d := Time(0); d < g; d++ {
				if Compatible(si, ti, ei, lower+d, tj, ej) {
					return false
				}
			}
			return true
		}
		if sj < lower || !Compatible(si, ti, ei, sj, tj, ej) {
			return false
		}
		for s := lower; s < sj; s++ {
			if Compatible(si, ti, ei, s, tj, ej) {
				return false // not minimal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
