package model

import "fmt"

// InstanceID identifies one instance (repetition) of a task within the
// hyper-period: the task plus the repetition index K ∈ [0, H/T).
type InstanceID struct {
	Task TaskID
	K    int
}

// String renders the id as "name#k" style "t3#1" using only the numeric
// task id (names live in the TaskSet).
func (iid InstanceID) String() string { return fmt.Sprintf("t%d#%d", int(iid.Task), iid.K) }

// ExpandInstances lists every instance of every task within one
// hyper-period, in (task, k) order. The slice has ts.TotalInstances()
// entries. Valid after Freeze.
func ExpandInstances(ts *TaskSet) []InstanceID {
	out := make([]InstanceID, 0, ts.TotalInstances())
	for i := 0; i < ts.Len(); i++ {
		id := TaskID(i)
		for k := 0; k < ts.Instances(id); k++ {
			out = append(out, InstanceID{Task: id, K: k})
		}
	}
	return out
}

// InstanceStart returns the start time of instance k of a task whose first
// instance starts at s0: strict periodicity pins it to s0 + k·T.
func InstanceStart(s0 Time, period Time, k int) Time {
	return s0 + Time(k)*period
}

// InstanceDeps enumerates the producer instances that must complete before
// instance (dst, k) may start, under the paper's multi-rate semantics:
//
//   - same period: producer instance k feeds consumer instance k;
//   - producer faster (Tc = n·Tp): producer instances k·n .. k·n+n-1 all
//     feed consumer instance k (the consumer needs the n data, fig. 1);
//   - producer slower (Tp = n·Tc): producer instance floor(k/n) feeds
//     consumer instance k (each datum is consumed n times).
func InstanceDeps(ts *TaskSet, dst TaskID, k int) []InstanceID {
	var out []InstanceID
	EachInstanceDep(ts, dst, k, func(src InstanceID) {
		out = append(out, src)
	})
	return out
}

// EachInstanceDep calls fn for every producer instance of (dst, k), in
// the same order InstanceDeps lists them, without allocating. It is the
// hot-path form: scheduling and balancing visit every instance-level
// dependence many times per trial, and a slice per visit dominated the
// allocation profile.
func EachInstanceDep(ts *TaskSet, dst TaskID, k int, fn func(src InstanceID)) {
	tc := ts.tasks[dst].Period
	for _, src := range ts.pred[dst] {
		tp := ts.tasks[src].Period
		switch {
		case tp == tc:
			fn(InstanceID{Task: src, K: k})
		case tc%tp == 0: // producer faster
			n := int(tc / tp)
			for j := 0; j < n; j++ {
				fn(InstanceID{Task: src, K: k*n + j})
			}
		case tp%tc == 0: // producer slower
			n := int(tp / tc)
			fn(InstanceID{Task: src, K: k / n})
		}
	}
}

// EachInstanceDepData is EachInstanceDep with the datum size of the
// underlying task-level dependence passed alongside each producer
// instance (the simulator's buffer accounting needs it per edge, and a
// per-call scan over all dependences used to dominate its profile).
func EachInstanceDepData(ts *TaskSet, dst TaskID, k int, fn func(src InstanceID, data Mem)) {
	tc := ts.tasks[dst].Period
	for i, src := range ts.pred[dst] {
		data := ts.predData[dst][i]
		tp := ts.tasks[src].Period
		switch {
		case tp == tc:
			fn(InstanceID{Task: src, K: k}, data)
		case tc%tp == 0: // producer faster
			n := int(tc / tp)
			for j := 0; j < n; j++ {
				fn(InstanceID{Task: src, K: k*n + j}, data)
			}
		case tp%tc == 0: // producer slower
			n := int(tp / tc)
			fn(InstanceID{Task: src, K: k / n}, data)
		}
	}
}
