// Package model defines the task, dependence and strict-periodicity model
// used throughout the library.
//
// A task a has a period Ta, a worst-case execution time Ea, and a required
// memory amount ma. Strict periodicity means every pair of successive
// instances of a is separated by exactly Ta: s(a, k+1) - s(a, k) = Ta for
// all k, where s(a, k) is the start time of the k-th instance. Dependences
// form a DAG: a ≺ b means b cannot start before a completes (plus a
// communication delay when a and b run on different processors).
//
// All times and memory amounts are expressed in abstract integer units, as
// in the paper.
package model

import (
	"fmt"
	"sort"
)

// Time is a point or duration on the discrete time axis (abstract units).
type Time int64

// Mem is an amount of memory (abstract units).
type Mem int64

// TaskID identifies a task inside a TaskSet. IDs are dense indices assigned
// by the TaskSet in insertion order.
type TaskID int

// Task is one strictly periodic, non-preemptive task.
type Task struct {
	ID     TaskID
	Name   string
	Period Time // Ta: strict period, > 0
	WCET   Time // Ea: worst-case execution time, > 0, ≤ Period
	Mem    Mem  // ma: required memory amount, ≥ 0
}

// Dependence is a directed edge Src ≺ Dst: Dst consumes data produced by
// Src. Data is the size of one produced datum; it scales the buffer demand
// in multi-rate transfers (fig. 1 of the paper). A zero Data means one
// abstract unit.
type Dependence struct {
	Src, Dst TaskID
	Data     Mem
}

// TaskSet is an immutable-after-build collection of tasks and dependences.
// Build one with NewTaskSet, AddTask and AddDependence, then call Freeze.
type TaskSet struct {
	tasks  []Task
	byName map[string]TaskID
	deps   []Dependence
	// adjacency, filled by Freeze; predData[t][i] is the datum size of
	// the edge pred[t][i] → t, so per-edge lookups in instance-level
	// sweeps are O(1) instead of a scan over all dependences.
	succ     [][]TaskID
	pred     [][]TaskID
	predData [][]Mem
	frozen   bool
	hyper    Time

	// instance indexing, filled by Freeze: instOff[t] is the position of
	// instance (t, 0) in the dense task-major instance order, totalInst
	// the number of instances within one hyper-period.
	instOff   []int
	totalInst int
}

// NewTaskSet returns an empty task set.
func NewTaskSet() *TaskSet {
	return &TaskSet{byName: make(map[string]TaskID)}
}

// AddTask registers a task and returns its ID. Name must be unique and
// non-empty; period and WCET must be positive; WCET must not exceed the
// period (a non-preemptive strictly periodic task cannot run longer than
// its period); memory must be non-negative.
func (ts *TaskSet) AddTask(name string, period, wcet Time, mem Mem) (TaskID, error) {
	if ts.frozen {
		return 0, fmt.Errorf("model: AddTask %q: task set is frozen", name)
	}
	if name == "" {
		return 0, fmt.Errorf("model: AddTask: empty name")
	}
	if _, dup := ts.byName[name]; dup {
		return 0, fmt.Errorf("model: AddTask %q: duplicate name", name)
	}
	if period <= 0 {
		return 0, fmt.Errorf("model: AddTask %q: period %d must be > 0", name, period)
	}
	if wcet <= 0 {
		return 0, fmt.Errorf("model: AddTask %q: WCET %d must be > 0", name, wcet)
	}
	if wcet > period {
		return 0, fmt.Errorf("model: AddTask %q: WCET %d exceeds period %d", name, wcet, period)
	}
	if mem < 0 {
		return 0, fmt.Errorf("model: AddTask %q: memory %d must be ≥ 0", name, mem)
	}
	id := TaskID(len(ts.tasks))
	ts.tasks = append(ts.tasks, Task{ID: id, Name: name, Period: period, WCET: wcet, Mem: mem})
	ts.byName[name] = id
	return id, nil
}

// MustAddTask is AddTask that panics on error; intended for tests and
// hand-built examples.
func (ts *TaskSet) MustAddTask(name string, period, wcet Time, mem Mem) TaskID {
	id, err := ts.AddTask(name, period, wcet, mem)
	if err != nil {
		panic(err)
	}
	return id
}

// AddDependence registers src ≺ dst with a datum size. Periods of the two
// tasks must be harmonically related (one divides the other), the relation
// the paper's multi-rate transfer semantics is defined for.
func (ts *TaskSet) AddDependence(src, dst TaskID, data Mem) error {
	if ts.frozen {
		return fmt.Errorf("model: AddDependence: task set is frozen")
	}
	if err := ts.checkID(src); err != nil {
		return err
	}
	if err := ts.checkID(dst); err != nil {
		return err
	}
	if src == dst {
		return fmt.Errorf("model: AddDependence: self-dependence on %q", ts.tasks[src].Name)
	}
	if data < 0 {
		return fmt.Errorf("model: AddDependence: negative data size %d", data)
	}
	ps, pd := ts.tasks[src].Period, ts.tasks[dst].Period
	if ps%pd != 0 && pd%ps != 0 {
		return fmt.Errorf("model: AddDependence %q→%q: periods %d and %d are not harmonic",
			ts.tasks[src].Name, ts.tasks[dst].Name, ps, pd)
	}
	if data == 0 {
		data = 1
	}
	ts.deps = append(ts.deps, Dependence{Src: src, Dst: dst, Data: data})
	return nil
}

// MustAddDependence is AddDependence that panics on error.
func (ts *TaskSet) MustAddDependence(src, dst TaskID, data Mem) {
	if err := ts.AddDependence(src, dst, data); err != nil {
		panic(err)
	}
}

func (ts *TaskSet) checkID(id TaskID) error {
	if id < 0 || int(id) >= len(ts.tasks) {
		return fmt.Errorf("model: unknown task id %d", id)
	}
	return nil
}

// Freeze validates the set (acyclicity, harmonic periods), builds adjacency
// and the hyper-period, and makes the set immutable.
func (ts *TaskSet) Freeze() error {
	if ts.frozen {
		return nil
	}
	if len(ts.tasks) == 0 {
		return fmt.Errorf("model: Freeze: empty task set")
	}
	n := len(ts.tasks)
	ts.succ = make([][]TaskID, n)
	ts.pred = make([][]TaskID, n)
	seen := make(map[[2]TaskID]bool, len(ts.deps))
	ts.predData = make([][]Mem, n)
	for _, d := range ts.deps {
		key := [2]TaskID{d.Src, d.Dst}
		if seen[key] {
			return fmt.Errorf("model: Freeze: duplicate dependence %q→%q",
				ts.tasks[d.Src].Name, ts.tasks[d.Dst].Name)
		}
		seen[key] = true
		ts.succ[d.Src] = append(ts.succ[d.Src], d.Dst)
		ts.pred[d.Dst] = append(ts.pred[d.Dst], d.Src)
		// Positional append keeps predData aligned with pred by
		// construction, whatever the edge multiset looks like.
		ts.predData[d.Dst] = append(ts.predData[d.Dst], d.Data)
	}
	if _, err := ts.topoOrder(); err != nil {
		return err
	}
	h := Time(1)
	for _, t := range ts.tasks {
		h = LCM(h, t.Period)
		if h <= 0 {
			return fmt.Errorf("model: Freeze: hyper-period overflow")
		}
	}
	ts.hyper = h
	ts.instOff = make([]int, n)
	for i, t := range ts.tasks {
		ts.instOff[i] = ts.totalInst
		ts.totalInst += int(h / t.Period)
	}
	ts.frozen = true
	return nil
}

// MustFreeze is Freeze that panics on error.
func (ts *TaskSet) MustFreeze() *TaskSet {
	if err := ts.Freeze(); err != nil {
		panic(err)
	}
	return ts
}

// Frozen reports whether Freeze has completed.
func (ts *TaskSet) Frozen() bool { return ts.frozen }

// Len returns the number of tasks.
func (ts *TaskSet) Len() int { return len(ts.tasks) }

// Task returns the task with the given ID. The ID must be valid.
func (ts *TaskSet) Task(id TaskID) Task { return ts.tasks[id] }

// ByName looks a task up by name.
func (ts *TaskSet) ByName(name string) (Task, bool) {
	id, ok := ts.byName[name]
	if !ok {
		return Task{}, false
	}
	return ts.tasks[id], true
}

// Tasks returns a copy of all tasks in ID order.
func (ts *TaskSet) Tasks() []Task {
	out := make([]Task, len(ts.tasks))
	copy(out, ts.tasks)
	return out
}

// Dependences returns a copy of all dependences.
func (ts *TaskSet) Dependences() []Dependence {
	out := make([]Dependence, len(ts.deps))
	copy(out, ts.deps)
	return out
}

// Successors returns the IDs of tasks that depend on id.
func (ts *TaskSet) Successors(id TaskID) []TaskID { return ts.succ[id] }

// Predecessors returns the IDs of tasks id depends on.
func (ts *TaskSet) Predecessors(id TaskID) []TaskID { return ts.pred[id] }

// DependenceData returns the datum size attached to the edge src→dst and
// whether the edge exists.
func (ts *TaskSet) DependenceData(src, dst TaskID) (Mem, bool) {
	for _, d := range ts.deps {
		if d.Src == src && d.Dst == dst {
			return d.Data, true
		}
	}
	return 0, false
}

// HyperPeriod returns the LCM of all task periods. Valid after Freeze.
func (ts *TaskSet) HyperPeriod() Time { return ts.hyper }

// Instances returns the number of instances of the task within one
// hyper-period: H / Period. Valid after Freeze.
func (ts *TaskSet) Instances(id TaskID) int {
	return int(ts.hyper / ts.tasks[id].Period)
}

// TotalInstances returns the total number of task instances within one
// hyper-period, which is the size of the expanded scheduling problem.
// Valid after Freeze.
func (ts *TaskSet) TotalInstances() int { return ts.totalInst }

// InstanceIndex returns the position of an instance in the dense
// task-major instance order: instances of task 0 first (k ascending),
// then task 1, and so on. The inverse of the first TotalInstances()
// positions. Valid after Freeze.
func (ts *TaskSet) InstanceIndex(iid InstanceID) int {
	return ts.instOff[iid.Task] + iid.K
}

// TotalMem returns the sum of memory amounts of all tasks.
func (ts *TaskSet) TotalMem() Mem {
	var m Mem
	for _, t := range ts.tasks {
		m += t.Mem
	}
	return m
}

// Utilization returns Σ Ei/Ti, the processor utilisation demanded by the
// set (a lower bound on the number of processors needed is ceil of this).
func (ts *TaskSet) Utilization() float64 {
	u := 0.0
	for _, t := range ts.tasks {
		u += float64(t.WCET) / float64(t.Period)
	}
	return u
}

// topoOrder returns task IDs in a topological order of the dependence DAG,
// or an error naming a task on a cycle.
func (ts *TaskSet) topoOrder() ([]TaskID, error) {
	n := len(ts.tasks)
	indeg := make([]int, n)
	for _, d := range ts.deps {
		indeg[d.Dst]++
	}
	queue := make([]TaskID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, TaskID(i))
		}
	}
	// Deterministic order: smallest ID first among ready tasks.
	order := make([]TaskID, 0, n)
	for len(queue) > 0 {
		sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range ts.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		for i, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("model: dependence cycle through task %q", ts.tasks[i].Name)
			}
		}
	}
	return order, nil
}

// TopoOrder returns a deterministic topological order. Valid after Freeze
// (Freeze guarantees acyclicity).
func (ts *TaskSet) TopoOrder() []TaskID {
	order, err := ts.topoOrder()
	if err != nil {
		panic(err) // unreachable on a frozen set
	}
	return order
}
