package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// taskJSON is the on-disk form of one task.
type taskJSON struct {
	Name   string `json:"name"`
	Period Time   `json:"period"`
	WCET   Time   `json:"wcet"`
	Mem    Mem    `json:"mem"`
}

// depJSON is the on-disk form of one dependence (by task name).
type depJSON struct {
	Src  string `json:"src"`
	Dst  string `json:"dst"`
	Data Mem    `json:"data,omitempty"`
}

// setJSON is the on-disk form of a task set.
type setJSON struct {
	Tasks []taskJSON `json:"tasks"`
	Deps  []depJSON  `json:"deps,omitempty"`
}

// WriteJSON serialises the task set (tasks and dependences, by name).
func WriteJSON(w io.Writer, ts *TaskSet) error {
	var out setJSON
	for _, t := range ts.Tasks() {
		out.Tasks = append(out.Tasks, taskJSON{Name: t.Name, Period: t.Period, WCET: t.WCET, Mem: t.Mem})
	}
	for _, d := range ts.Dependences() {
		out.Deps = append(out.Deps, depJSON{
			Src:  ts.Task(d.Src).Name,
			Dst:  ts.Task(d.Dst).Name,
			Data: d.Data,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a task set written by WriteJSON and returns it frozen.
func ReadJSON(r io.Reader) (*TaskSet, error) {
	var in setJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("model: ReadJSON: %w", err)
	}
	ts := NewTaskSet()
	ids := make(map[string]TaskID, len(in.Tasks))
	for _, t := range in.Tasks {
		id, err := ts.AddTask(t.Name, t.Period, t.WCET, t.Mem)
		if err != nil {
			return nil, err
		}
		ids[t.Name] = id
	}
	for _, d := range in.Deps {
		src, ok := ids[d.Src]
		if !ok {
			return nil, fmt.Errorf("model: ReadJSON: unknown task %q in dependence", d.Src)
		}
		dst, ok := ids[d.Dst]
		if !ok {
			return nil, fmt.Errorf("model: ReadJSON: unknown task %q in dependence", d.Dst)
		}
		if err := ts.AddDependence(src, dst, d.Data); err != nil {
			return nil, err
		}
	}
	if err := ts.Freeze(); err != nil {
		return nil, err
	}
	return ts, nil
}
