package model

import (
	"testing"
	"testing/quick"
)

// fig1System is the paper's figure 1 configuration: producer a at period
// T, consumer b at period n·T, b depends on a.
func fig1System(t *testing.T, n Time) (*TaskSet, TaskID, TaskID) {
	t.Helper()
	ts := NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 1)
	b := ts.MustAddTask("b", 3*n, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	return ts, a, b
}

func TestInstanceDepsMultiRateFasterProducer(t *testing.T) {
	// n = 4: b#1 needs a#1..a#4 (figure 1).
	ts, a, b := fig1System(t, 4)
	deps := InstanceDeps(ts, b, 0)
	if len(deps) != 4 {
		t.Fatalf("b#1 has %d producer instances, want 4", len(deps))
	}
	for j, d := range deps {
		if d.Task != a || d.K != j {
			t.Errorf("dep %d = %v, want a#%d", j, d, j+1)
		}
	}
}

func TestInstanceDepsSamePeriod(t *testing.T) {
	ts := NewTaskSet()
	a := ts.MustAddTask("a", 6, 1, 1)
	b := ts.MustAddTask("b", 6, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	for k := 0; k < ts.Instances(b); k++ {
		deps := InstanceDeps(ts, b, k)
		if len(deps) != 1 || deps[0].K != k {
			t.Errorf("b#%d deps = %v, want [a#%d]", k+1, deps, k+1)
		}
	}
}

func TestInstanceDepsSlowerProducer(t *testing.T) {
	// Producer at 12, consumer at 3: consumer instances 0..3 all read the
	// producer's single instance.
	ts := NewTaskSet()
	a := ts.MustAddTask("a", 12, 1, 1)
	b := ts.MustAddTask("b", 3, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	for k := 0; k < 4; k++ {
		deps := InstanceDeps(ts, b, k)
		if len(deps) != 1 || deps[0].Task != a || deps[0].K != 0 {
			t.Errorf("b#%d deps = %v, want [a#1]", k+1, deps)
		}
	}
}

func TestExpandInstancesCount(t *testing.T) {
	ts, _, _ := fig1System(t, 4)
	all := ExpandInstances(ts)
	if len(all) != ts.TotalInstances() {
		t.Fatalf("expanded %d, want %d", len(all), ts.TotalInstances())
	}
	seen := make(map[InstanceID]bool)
	for _, iid := range all {
		if seen[iid] {
			t.Errorf("duplicate instance %v", iid)
		}
		seen[iid] = true
	}
}

// Property: for a faster producer with ratio n, consumer instance k
// depends on exactly the n producer instances k·n..k·n+n−1, and every
// producer instance feeds exactly one consumer instance.
func TestInstanceDepsPartitionProperty(t *testing.T) {
	f := func(n0 uint8) bool {
		n := Time(n0%6) + 1
		ts := NewTaskSet()
		a := ts.MustAddTask("a", 2, 1, 1)
		b := ts.MustAddTask("b", 2*n, 1, 1)
		ts.MustAddDependence(a, b, 1)
		if err := ts.Freeze(); err != nil {
			return false
		}
		fed := make(map[int]int)
		for k := 0; k < ts.Instances(b); k++ {
			deps := InstanceDeps(ts, b, k)
			if len(deps) != int(n) {
				return false
			}
			for _, d := range deps {
				fed[d.K]++
			}
		}
		if len(fed) != ts.Instances(a) {
			return false
		}
		for _, c := range fed {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
