package model

// GCD returns the greatest common divisor of a and b. GCD(0, x) = x.
func GCD(a, b Time) Time {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of |a| and |b|. LCM(0, x) = 0.
func LCM(a, b Time) Time {
	if a == 0 || b == 0 {
		return 0
	}
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	return a / GCD(a, b) * b
}

// LCMAll returns the least common multiple of all values; it returns 0 for
// an empty input.
func LCMAll(vs ...Time) Time {
	if len(vs) == 0 {
		return 0
	}
	l := vs[0]
	for _, v := range vs[1:] {
		l = LCM(l, v)
	}
	return l
}

// Harmonic reports whether a divides b or b divides a. The multi-rate data
// transfer semantics of the paper (fig. 1) is defined for harmonic period
// pairs only.
func Harmonic(a, b Time) bool {
	if a <= 0 || b <= 0 {
		return false
	}
	return a%b == 0 || b%a == 0
}

// RateRatio returns how many instances of the producer (period tp) feed one
// instance of the consumer (period tc) when tc = n·tp, and 1 when the
// consumer is at the same or a faster rate. This is the n of figure 1: the
// consumer must receive n data before it can execute, and the n buffers
// cannot be reused among themselves.
func RateRatio(tp, tc Time) int {
	if tp <= 0 || tc <= 0 || tc%tp != 0 {
		return 1
	}
	return int(tc / tp)
}
