package model

import (
	"strings"
	"testing"
)

func TestAddTaskValidation(t *testing.T) {
	cases := []struct {
		name            string
		taskName        string
		period, wcet    Time
		mem             Mem
		wantErrContains string
	}{
		{"valid", "a", 10, 2, 1, ""},
		{"empty name", "", 10, 2, 1, "empty name"},
		{"zero period", "a", 0, 2, 1, "period"},
		{"negative period", "a", -5, 2, 1, "period"},
		{"zero wcet", "a", 10, 0, 1, "WCET"},
		{"wcet exceeds period", "a", 10, 11, 1, "exceeds period"},
		{"negative mem", "a", 10, 2, -1, "memory"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ts := NewTaskSet()
			_, err := ts.AddTask(c.taskName, c.period, c.wcet, c.mem)
			if c.wantErrContains == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErrContains) {
				t.Fatalf("error %v, want containing %q", err, c.wantErrContains)
			}
		})
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	ts := NewTaskSet()
	ts.MustAddTask("a", 10, 1, 1)
	if _, err := ts.AddTask("a", 20, 1, 1); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestAddDependenceValidation(t *testing.T) {
	ts := NewTaskSet()
	a := ts.MustAddTask("a", 10, 1, 1)
	b := ts.MustAddTask("b", 20, 1, 1)
	c := ts.MustAddTask("c", 15, 1, 1)

	if err := ts.AddDependence(a, b, 1); err != nil {
		t.Fatalf("harmonic dependence rejected: %v", err)
	}
	if err := ts.AddDependence(a, a, 1); err == nil {
		t.Fatal("self-dependence accepted")
	}
	if err := ts.AddDependence(a, c, 1); err == nil {
		t.Fatal("non-harmonic dependence (10 vs 15) accepted")
	}
	if err := ts.AddDependence(a, TaskID(99), 1); err == nil {
		t.Fatal("unknown task accepted")
	}
	if err := ts.AddDependence(a, b, -2); err == nil {
		t.Fatal("negative data size accepted")
	}
}

func TestFreezeDetectsCycle(t *testing.T) {
	ts := NewTaskSet()
	a := ts.MustAddTask("a", 10, 1, 1)
	b := ts.MustAddTask("b", 10, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustAddDependence(b, a, 1)
	if err := ts.Freeze(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestFreezeDetectsDuplicateEdge(t *testing.T) {
	ts := NewTaskSet()
	a := ts.MustAddTask("a", 10, 1, 1)
	b := ts.MustAddTask("b", 10, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustAddDependence(a, b, 2)
	if err := ts.Freeze(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate edge not detected: %v", err)
	}
}

func TestFreezeEmptyRejected(t *testing.T) {
	if err := NewTaskSet().Freeze(); err == nil {
		t.Fatal("empty set frozen")
	}
}

func TestFrozenSetImmutable(t *testing.T) {
	ts := NewTaskSet()
	ts.MustAddTask("a", 10, 1, 1)
	ts.MustFreeze()
	if _, err := ts.AddTask("b", 10, 1, 1); err == nil {
		t.Fatal("AddTask allowed after Freeze")
	}
	if err := ts.AddDependence(0, 0, 1); err == nil {
		t.Fatal("AddDependence allowed after Freeze")
	}
	if err := ts.Freeze(); err != nil {
		t.Fatalf("second Freeze should be a no-op: %v", err)
	}
}

func TestHyperPeriodAndInstances(t *testing.T) {
	ts := NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 1)
	b := ts.MustAddTask("b", 6, 1, 1)
	d := ts.MustAddTask("d", 12, 1, 1)
	ts.MustFreeze()

	if h := ts.HyperPeriod(); h != 12 {
		t.Errorf("hyper-period = %d, want 12", h)
	}
	for _, tc := range []struct {
		id   TaskID
		want int
	}{{a, 4}, {b, 2}, {d, 1}} {
		if got := ts.Instances(tc.id); got != tc.want {
			t.Errorf("instances(%d) = %d, want %d", tc.id, got, tc.want)
		}
	}
	if got := ts.TotalInstances(); got != 7 {
		t.Errorf("total instances = %d, want 7", got)
	}
}

func TestUtilizationAndTotalMem(t *testing.T) {
	ts := NewTaskSet()
	ts.MustAddTask("a", 4, 1, 3)
	ts.MustAddTask("b", 8, 2, 5)
	ts.MustFreeze()
	if u := ts.Utilization(); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if m := ts.TotalMem(); m != 8 {
		t.Errorf("total mem = %d, want 8", m)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	ts := NewTaskSet()
	a := ts.MustAddTask("a", 10, 1, 1)
	b := ts.MustAddTask("b", 10, 1, 1)
	c := ts.MustAddTask("c", 10, 1, 1)
	ts.MustAddDependence(b, c, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()

	order := ts.TopoOrder()
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[a] < pos[b] && pos[b] < pos[c]) {
		t.Errorf("topological order %v violates a<b<c", order)
	}
}

func TestByNameAndAccessors(t *testing.T) {
	ts := NewTaskSet()
	a := ts.MustAddTask("alpha", 10, 2, 7)
	b := ts.MustAddTask("beta", 20, 3, 1)
	ts.MustAddDependence(a, b, 5)
	ts.MustFreeze()

	got, ok := ts.ByName("alpha")
	if !ok || got.ID != a || got.WCET != 2 || got.Mem != 7 {
		t.Errorf("ByName(alpha) = %+v, %v", got, ok)
	}
	if _, ok := ts.ByName("gamma"); ok {
		t.Error("ByName(gamma) found a phantom task")
	}
	if d, ok := ts.DependenceData(a, b); !ok || d != 5 {
		t.Errorf("DependenceData = %d, %v", d, ok)
	}
	if _, ok := ts.DependenceData(b, a); ok {
		t.Error("reverse edge reported")
	}
	if len(ts.Successors(a)) != 1 || ts.Successors(a)[0] != b {
		t.Errorf("Successors(a) = %v", ts.Successors(a))
	}
	if len(ts.Predecessors(b)) != 1 || ts.Predecessors(b)[0] != a {
		t.Errorf("Predecessors(b) = %v", ts.Predecessors(b))
	}
	if n := len(ts.Tasks()); n != 2 {
		t.Errorf("Tasks() has %d entries", n)
	}
	if n := len(ts.Dependences()); n != 1 {
		t.Errorf("Dependences() has %d entries", n)
	}
}

func TestZeroDataDefaultsToOne(t *testing.T) {
	ts := NewTaskSet()
	a := ts.MustAddTask("a", 10, 1, 1)
	b := ts.MustAddTask("b", 10, 1, 1)
	ts.MustAddDependence(a, b, 0)
	ts.MustFreeze()
	if d, _ := ts.DependenceData(a, b); d != 1 {
		t.Errorf("zero data size stored as %d, want default 1", d)
	}
}
