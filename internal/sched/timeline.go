package sched

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/model"
)

// timeline.go maintains the per-processor occupancy timelines and
// answers the scheduler's feasibility queries from them.
//
// Every placed task contributes the wrapped (mod hyper-period) execution
// intervals of its instances to its processor's timeline; the intervals
// are kept sorted by start and — for any feasible placement — pairwise
// disjoint, so both "does this image overlap anything" and "what is the
// minimal forward shift that clears the conflict" are binary searches.
// This replaces the per-query pairwise compatibility sweep over every
// co-resident task (the representation the profile showed dominating
// single-trial cost) with O(images · log occupancy) per probe.
//
// Steady-state equivalence: a candidate start conflicts with the
// repeating pattern iff one of its hyper-period images overlaps an
// occupied interval on the [0, H) ring, which is exactly the pairwise
// strict-periodicity test of the paper's reference [1] (model.Compatible)
// expanded to instances. The timeline and the modulo-gcd formulation
// agree on every query; the property test in timeline_test.go checks
// them against each other.

// occIvl is one occupied interval on a processor timeline, tagged with
// the task owning it so queries can ignore the task being (re)placed.
type occIvl struct {
	start, end model.Time
	task       model.TaskID
}

// occInsert adds every wrapped instance image of task id, starting at
// start, to processor p's timeline.
func (s *Schedule) occInsert(p arch.ProcID, id model.TaskID, start model.Time) {
	t := s.TS.Task(id)
	h := s.TS.HyperPeriod()
	n := s.TS.Instances(id)
	for k := 0; k < n; k++ {
		r := model.Mod(start+model.Time(k)*t.Period, h)
		if e := r + t.WCET; e <= h {
			s.occAdd(p, occIvl{r, e, id})
		} else { // image wraps the hyper-period boundary: split
			s.occAdd(p, occIvl{r, h, id})
			s.occAdd(p, occIvl{0, e - h, id})
		}
	}
}

// occAdd inserts one interval keeping the timeline sorted by start.
func (s *Schedule) occAdd(p arch.ProcID, iv occIvl) {
	occ := s.occ[p]
	i := sort.Search(len(occ), func(j int) bool { return occ[j].start >= iv.start })
	occ = append(occ, occIvl{})
	copy(occ[i+1:], occ[i:])
	occ[i] = iv
	s.occ[p] = occ
}

// occRemove drops every interval of task id from processor p's timeline
// (used when a task is re-placed).
func (s *Schedule) occRemove(p arch.ProcID, id model.TaskID) {
	occ := s.occ[p]
	keep := occ[:0]
	for _, iv := range occ {
		if iv.task != id {
			keep = append(keep, iv)
		}
	}
	s.occ[p] = keep
}

// occConflict reports whether the image part [x, y) ⊂ [0, H) overlaps an
// interval of a task other than id on the timeline, and if so returns
// the end of the latest-ending such interval. Because the timeline is
// sorted by start and disjoint, ends are sorted too: the only candidates
// are the intervals just before the first one starting at or beyond y.
func occConflict(occ []occIvl, id model.TaskID, x, y model.Time) (model.Time, bool) {
	lo, hi := 0, len(occ)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if occ[mid].start >= y {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	for i := lo - 1; i >= 0 && occ[i].end > x; i-- {
		if occ[i].task != id {
			return occ[i].end, true
		}
	}
	return 0, false
}

// imageConflict returns the minimal forward shift of the candidate start
// that clears every detected conflict of one instance image wrapped to
// r ∈ [0, H), or 0 when the image is conflict-free.
func imageConflict(occ []occIvl, id model.TaskID, r, wcet, h model.Time) model.Time {
	var bump model.Time
	e := r + wcet
	y := e
	if y > h {
		y = h
	}
	if end, hit := occConflict(occ, id, r, y); hit {
		bump = end - r
	}
	if e > h { // wrapped tail [0, e−h)
		if end, hit := occConflict(occ, id, 0, e-h); hit {
			if d := end - r + h; d > bump {
				bump = d
			}
		}
	}
	return bump
}

// EarliestStart searches for the smallest start time ≥ lower such that
// every instance of task id (strictly periodic at its period) fits on
// processor p without overlapping any instance already placed there — in
// steady state, i.e. including the wrap-around images of the repeating
// hyper-period pattern.
//
// The search hops along the occupancy timeline: each round binary-
// searches the conflict of every candidate image and advances the start
// by the largest shift any conflict demands (a shift below that provably
// keeps its conflict, so no feasible start is skipped). It returns an
// error when no feasible start exists within one hyper-period above the
// lower bound (the joint pattern repeats with a period dividing the
// hyper-period, so searching further cannot help).
func (s *Schedule) EarliestStart(id model.TaskID, p arch.ProcID, lower model.Time) (model.Time, error) {
	start, ok := s.earliestStartIn(id, p, lower, lower+s.TS.HyperPeriod())
	if !ok {
		t := s.TS.Task(id)
		return 0, fmt.Errorf("sched: no feasible start for %q on %s above %d", t.Name, s.Arch.ProcName(p), lower)
	}
	return start, nil
}

// earliestStartIn is EarliestStart with an inclusive upper bound on the
// returned start: the search gives up as soon as the candidate exceeds
// min(bound, lower+H). The scheduler uses it to abandon a processor the
// moment it can no longer beat the incumbent best start; failure is a
// boolean, not a formatted error, because abandonment is the common case
// on the hot path.
func (s *Schedule) earliestStartIn(id model.TaskID, p arch.ProcID, lower, bound model.Time) (model.Time, bool) {
	t := s.TS.Task(id)
	h := s.TS.HyperPeriod()
	occ := s.occ[p]
	n := s.TS.Instances(id)
	limit := lower + h
	if bound < limit {
		limit = bound
	}

	// The images of a candidate start are exactly the residues congruent
	// to start modulo the period: {Mod(start, T) + j·T, j = 0..n−1}. One
	// Mod per round enumerates them all in increasing order.
	for start := lower; start <= limit; {
		var bump model.Time
		base := model.Mod(start, t.Period)
		for j := 0; j < n; j++ {
			if d := imageConflict(occ, id, base+model.Time(j)*t.Period, t.WCET, h); d > bump {
				bump = d
			}
		}
		if bump == 0 {
			return start, true
		}
		start += bump
	}
	return 0, false
}

// FitsAt reports whether the task could be placed at (p, start) without
// overlap against the current placement, in steady state.
func (s *Schedule) FitsAt(id model.TaskID, p arch.ProcID, start model.Time) bool {
	t := s.TS.Task(id)
	h := s.TS.HyperPeriod()
	occ := s.occ[p]
	n := s.TS.Instances(id)
	base := model.Mod(start, t.Period)
	for j := 0; j < n; j++ {
		if imageConflict(occ, id, base+model.Time(j)*t.Period, t.WCET, h) > 0 {
			return false
		}
	}
	return true
}

// DepLowerBound returns the earliest start of task id permitted by its
// producers under the current placement, assuming id runs on p: each
// producer instance must complete (plus C when the producer is on another
// processor) before the corresponding consumer instance starts. Because
// instance k starts at S + k·T, each producer constraint on instance k
// translates to a bound on S of end - k·T. Unplaced producers contribute
// no bound.
func (s *Schedule) DepLowerBound(id model.TaskID, p arch.ProcID) model.Time {
	lb := model.Time(0)
	t := s.TS.Task(id)
	for k := 0; k < s.TS.Instances(id); k++ {
		kT := model.Time(k) * t.Period
		model.EachInstanceDep(s.TS, id, k, func(src model.InstanceID) {
			if s.place[src.Task].Proc == Unplaced {
				return
			}
			end := s.InstanceEnd(src.Task, src.K)
			if s.place[src.Task].Proc != p {
				end += s.Arch.CommTime
			}
			if b := end - kT; b > lb {
				lb = b
			}
		})
	}
	return lb
}

// DepLowerBounds fills lb (length ≥ Arch.Procs) with DepLowerBound for
// every processor in one pass over the producers instead of one pass per
// processor: the only processor-dependent term is whether the +C
// communication delay applies, so a per-processor maximum of the local
// bounds plus the two best cross-processor bounds (from distinct
// processors) determine every entry.
func (s *Schedule) DepLowerBounds(id model.TaskID, lb []model.Time) {
	for i := range lb {
		lb[i] = 0
	}
	t := s.TS.Task(id)
	c := s.Arch.CommTime
	var top1, top2 model.Time // best remote bounds from distinct processors
	top1Proc := Unplaced
	for k := 0; k < s.TS.Instances(id); k++ {
		kT := model.Time(k) * t.Period
		model.EachInstanceDep(s.TS, id, k, func(src model.InstanceID) {
			pp := s.place[src.Task].Proc
			if pp == Unplaced {
				return
			}
			local := s.InstanceEnd(src.Task, src.K) - kT
			if local > lb[pp] {
				lb[pp] = local // producer co-located: no comm delay
			}
			remote := local + c
			switch {
			case remote > top1:
				if top1Proc != pp {
					top2 = top1
				}
				top1, top1Proc = remote, pp
			case remote > top2 && pp != top1Proc:
				top2 = remote
			}
		})
	}
	for p := range lb {
		cross := top1
		if top1Proc == arch.ProcID(p) {
			cross = top2
		}
		if cross > lb[p] {
			lb[p] = cross
		}
	}
}
