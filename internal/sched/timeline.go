package sched

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/model"
)

// EarliestStart searches for the smallest start time ≥ lower such that
// every instance of task id (strictly periodic at its period) fits on
// processor p without overlapping any instance already placed there — in
// steady state, i.e. including the wrap-around images of the repeating
// hyper-period pattern.
//
// The search runs on the pairwise strict-periodicity compatibility test
// of the paper's reference [1] (see model.Compatible): a candidate start
// conflicts with an existing task iff their start difference modulo
// gcd(Ti, Tj) leaves no room for both WCETs, so each existing task
// admits a periodic family of feasible windows and the search hops to
// the next window edge instead of probing instance pairs. It returns an
// error when no feasible start exists within one hyper-period above the
// lower bound (the joint window pattern repeats with a period dividing
// the hyper-period, so searching further cannot help).
func (s *Schedule) EarliestStart(id model.TaskID, p arch.ProcID, lower model.Time) (model.Time, error) {
	t := s.TS.Task(id)
	limit := lower + s.TS.HyperPeriod()
	others := s.TasksOn(p)

	start := lower
	for start <= limit {
		bumped := false
		for _, other := range others {
			if other == id {
				continue
			}
			ot := s.TS.Task(other)
			os := s.place[other].Start
			if model.Compatible(os, ot.Period, ot.WCET, start, t.Period, t.WCET) {
				continue
			}
			next, ok := model.FirstCompatibleAtLeast(os, ot.Period, ot.WCET, t.Period, t.WCET, start+1)
			if !ok {
				return 0, fmt.Errorf("sched: %q (T=%d,E=%d) can never share %s with %q (T=%d,E=%d): gcd window too small",
					t.Name, t.Period, t.WCET, s.Arch.ProcName(p), ot.Name, ot.Period, ot.WCET)
			}
			if next > start {
				start = next
				bumped = true
			}
		}
		if !bumped {
			return start, nil
		}
	}
	return 0, fmt.Errorf("sched: no feasible start for %q on %s above %d", t.Name, s.Arch.ProcName(p), lower)
}

// FitsAt reports whether the task could be placed at (p, start) without
// overlap against the current placement, in steady state.
func (s *Schedule) FitsAt(id model.TaskID, p arch.ProcID, start model.Time) bool {
	t := s.TS.Task(id)
	for _, other := range s.TasksOn(p) {
		if other == id {
			continue
		}
		ot := s.TS.Task(other)
		if !model.Compatible(s.place[other].Start, ot.Period, ot.WCET, start, t.Period, t.WCET) {
			return false
		}
	}
	return true
}

// DepLowerBound returns the earliest start of task id permitted by its
// producers under the current placement, assuming id runs on p: each
// producer instance must complete (plus C when the producer is on another
// processor) before the corresponding consumer instance starts. Because
// instance k starts at S + k·T, each producer constraint on instance k
// translates to a bound on S of end - k·T. Unplaced producers contribute
// no bound.
func (s *Schedule) DepLowerBound(id model.TaskID, p arch.ProcID) model.Time {
	lb := model.Time(0)
	t := s.TS.Task(id)
	for k := 0; k < s.TS.Instances(id); k++ {
		for _, src := range model.InstanceDeps(s.TS, id, k) {
			if s.place[src.Task].Proc == Unplaced {
				continue
			}
			end := s.InstanceEnd(src.Task, src.K)
			if s.place[src.Task].Proc != p {
				end += s.Arch.CommTime
			}
			if b := end - model.Time(k)*t.Period; b > lb {
				lb = b
			}
		}
	}
	return lb
}
