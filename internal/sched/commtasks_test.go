package sched

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
)

// spacedPair builds a cross-processor producer/consumer pair with `slack`
// free time units between the producer end (+C) and the consumer start.
func spacedPair(t *testing.T, c, slack model.Time) *Schedule {
	t.Helper()
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 20, 2, 1)
	b := ts.MustAddTask("b", 20, 2, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	ar := arch.MustNew(2, c)
	s := MustNewSchedule(ts, ar)
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 1, 2+c+slack)
	if err := s.DeriveComms(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMaterializeZeroOverhead(t *testing.T) {
	s := spacedPair(t, 3, 0)
	cts, err := MaterializeCommTasks(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One transfer → one send + one receive.
	if len(cts) != 2 {
		t.Fatalf("got %d comm tasks, want 2", len(cts))
	}
	if cts[0].Kind != SendTask || cts[0].Proc != 0 || cts[0].Start != 2 {
		t.Errorf("send task = %+v, want send on P1 at 2", cts[0])
	}
	if cts[1].Kind != RecvTask || cts[1].Proc != 1 || cts[1].Start != 5 {
		t.Errorf("recv task = %+v, want recv on P2 at 5 (consumer start)", cts[1])
	}
}

func TestMaterializeWithOverheadFits(t *testing.T) {
	s := spacedPair(t, 3, 0)
	cts, err := MaterializeCommTasks(s, 1)
	if err != nil {
		t.Fatalf("overhead 1 should fit inside C=3: %v", err)
	}
	for _, ct := range cts {
		if ct.Dur != 1 {
			t.Errorf("comm task duration = %d, want 1", ct.Dur)
		}
	}
	// Receive completes exactly at the consumer start.
	if cts[1].End() != 5 {
		t.Errorf("recv ends at %d, want 5", cts[1].End())
	}
}

func TestMaterializeDetectsInstanceCollision(t *testing.T) {
	// Producer's processor also runs a back-to-back second task exactly
	// where the send task would go.
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 20, 2, 1)
	x := ts.MustAddTask("x", 20, 2, 1)
	b := ts.MustAddTask("b", 20, 2, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	ar := arch.MustNew(2, 2)
	s := MustNewSchedule(ts, ar)
	s.MustPlace(a, 0, 0)
	s.MustPlace(x, 0, 2) // occupies [2,4): exactly the send slot
	s.MustPlace(b, 1, 4)
	if err := s.DeriveComms(); err != nil {
		t.Fatal(err)
	}
	_, err := MaterializeCommTasks(s, 1)
	if err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("send/instance collision not detected: %v", err)
	}
}

func TestMaterializeRejectsBadOverhead(t *testing.T) {
	s := spacedPair(t, 2, 0)
	if _, err := MaterializeCommTasks(s, -1); err == nil {
		t.Error("negative overhead accepted")
	}
	if _, err := MaterializeCommTasks(s, 3); err == nil {
		t.Error("overhead above C accepted")
	}
}

func TestCommOverheadVector(t *testing.T) {
	s := spacedPair(t, 3, 0)
	cts, err := MaterializeCommTasks(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := CommOverheadVector(2, cts)
	if v[0] != 1 || v[1] != 1 {
		t.Errorf("overhead vector = %v, want [1 1]", v)
	}
}

func TestMaterializeOnPaperExample(t *testing.T) {
	// The worked example's schedule has exactly six transfers; with zero
	// overhead all 12 comm tasks materialise.
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 4)
	b := ts.MustAddTask("b", 6, 1, 1)
	c := ts.MustAddTask("c", 6, 1, 1)
	d := ts.MustAddTask("d", 12, 1, 2)
	e := ts.MustAddTask("e", 12, 1, 2)
	ts.MustAddDependence(a, b, 1)
	ts.MustAddDependence(b, c, 1)
	ts.MustAddDependence(b, d, 1)
	ts.MustAddDependence(d, e, 1)
	ts.MustFreeze()
	ar := arch.MustNew(3, 1)
	s := MustNewSchedule(ts, ar)
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 1, 5)
	s.MustPlace(c, 1, 6)
	s.MustPlace(d, 2, 13)
	s.MustPlace(e, 2, 14)
	if err := s.DeriveComms(); err != nil {
		t.Fatal(err)
	}
	cts, err := MaterializeCommTasks(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cts) != 12 {
		t.Fatalf("got %d comm tasks, want 12 (6 transfers × send+recv)", len(cts))
	}
	sends, recvs := 0, 0
	for _, ct := range cts {
		switch ct.Kind {
		case SendTask:
			sends++
		case RecvTask:
			recvs++
		}
	}
	if sends != 6 || recvs != 6 {
		t.Errorf("sends=%d recvs=%d, want 6 and 6", sends, recvs)
	}
}
