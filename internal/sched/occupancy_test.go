package sched

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/model"
)

// TestOccupancyHandBuilt pins the window accounting on a tiny schedule
// whose busy/idle structure is known by construction.
func TestOccupancyHandBuilt(t *testing.T) {
	ts := model.NewTaskSet()
	a := ts.MustAddTask("A", 10, 2, 1) // one instance: [1,3)
	b := ts.MustAddTask("B", 10, 3, 1) // one instance: [5,8)
	c := ts.MustAddTask("C", 10, 1, 1) // other proc: [0,1)
	ts.MustFreeze()
	ar := arch.MustNew(2, 1)

	is := NewInstSchedule(ts, ar)
	is.Place(model.InstanceID{Task: a}, 0, 1)
	is.Place(model.InstanceID{Task: b}, 0, 5)
	is.Place(model.InstanceID{Task: c}, 1, 0)

	occ := Occupancy(is, 10)
	if len(occ) != 2 {
		t.Fatalf("procs: %d", len(occ))
	}
	// P0: busy [1,3)+[5,8) = 5; idle windows [0,1), [3,5), [8,10); max 2.
	if occ[0].Busy != 5 || occ[0].IdleWindows != 3 || occ[0].MaxIdle != 2 {
		t.Fatalf("P0: %+v, want busy=5 windows=3 maxIdle=2", occ[0])
	}
	// P1: busy [0,1) = 1; one trailing idle window of 9.
	if occ[1].Busy != 1 || occ[1].IdleWindows != 1 || occ[1].MaxIdle != 9 {
		t.Fatalf("P1: %+v, want busy=1 windows=1 maxIdle=9", occ[1])
	}

	// Clipping: a horizon inside B's execution truncates the busy time
	// and drops the trailing gap.
	occ = Occupancy(is, 6)
	if occ[0].Busy != 3 || occ[0].IdleWindows != 2 || occ[0].MaxIdle != 2 {
		t.Fatalf("P0 clipped: %+v, want busy=3 windows=2 maxIdle=2", occ[0])
	}

	// Degenerate horizon: all zeros.
	for _, o := range Occupancy(is, 0) {
		if o.Busy != 0 || o.IdleWindows != 0 || o.MaxIdle != 0 {
			t.Fatalf("zero horizon: %+v", o)
		}
	}
}

// TestOccupancyConsistentOnGenerated cross-checks the invariants on a
// generated schedule: per-processor busy never exceeds the horizon, and
// busy plus the idle windows' extent account for the whole window.
func TestOccupancyConsistentOnGenerated(t *testing.T) {
	ts, err := gen.Generate(gen.Config{Seed: 5, Tasks: 15, Utilization: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	ar := arch.MustNew(3, 1)
	s, err := NewScheduler(ts, ar).Run()
	if err != nil {
		t.Fatal(err)
	}
	is := FromSchedule(s)
	horizon := is.Makespan()
	for p, o := range Occupancy(is, horizon) {
		if o.Busy < 0 || o.Busy > horizon {
			t.Fatalf("P%d: busy %d outside [0,%d]", p, o.Busy, horizon)
		}
		if o.Busy == horizon && o.IdleWindows != 0 {
			t.Fatalf("P%d: fully busy but %d idle windows", p, o.IdleWindows)
		}
		if o.Busy < horizon && o.IdleWindows == 0 {
			t.Fatalf("P%d: idle time %d but no idle window", p, horizon-o.Busy)
		}
		if o.MaxIdle > horizon-o.Busy {
			t.Fatalf("P%d: max idle %d exceeds total idle %d", p, o.MaxIdle, horizon-o.Busy)
		}
	}
}
