// Package sched provides the distributed-scheduling substrate: the
// schedule representation (placement of strictly periodic tasks onto
// processors, with derived inter-processor communications) and the rapid
// greedy scheduling heuristic in the style of the paper's reference [4]
// (Kermia & Sorel, PDCS'07) that produces the initial schedule the
// load-balancing heuristic consumes.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/model"
)

// Unplaced marks a task that has not been assigned yet.
const Unplaced = arch.ProcID(-1)

// Placement is the assignment of a task: its processor and the start time
// of its first instance. Instance k starts at Start + k·Period (strict
// periodicity).
type Placement struct {
	Proc  arch.ProcID
	Start model.Time
}

// Comm is one inter-processor data transfer: producer instance Src feeds
// consumer instance Dst across processors, occupying Medium during
// [Start, Start+C). It materialises the send/receive task pair of the
// paper: the send starts at Start on the producer side and the receive
// completes at Start+C on the consumer side.
type Comm struct {
	Src, Dst model.InstanceID
	Medium   arch.MediumID
	Start    model.Time
	Data     model.Mem
}

// End returns the completion time of the receive side.
func (c Comm) End(a *arch.Architecture) model.Time { return c.Start + a.CommTime }

// Schedule is a full placement of a task set onto an architecture.
// Construct one with NewSchedule and Place (manual placement, used by the
// worked-example reproduction), or with Scheduler.Run. After all tasks are
// placed, DeriveComms fills in medium slots.
type Schedule struct {
	TS   *model.TaskSet
	Arch *arch.Architecture

	place []Placement
	comms []Comm

	// tasksOn caches TasksOn per processor; entries are invalidated by
	// Place.
	tasksOn map[arch.ProcID][]model.TaskID

	// occ[p] is the occupancy timeline of processor p: the wrapped
	// (mod hyper-period) execution intervals of every instance placed
	// there, sorted by start and pairwise disjoint for any feasible
	// placement. EarliestStart and FitsAt binary-search it instead of
	// re-testing every co-resident task. Maintained incrementally by
	// Place.
	occ [][]occIvl
}

// NewSchedule returns an empty schedule over the given frozen task set and
// architecture.
func NewSchedule(ts *model.TaskSet, a *arch.Architecture) (*Schedule, error) {
	if !ts.Frozen() {
		return nil, fmt.Errorf("sched: task set must be frozen")
	}
	s := &Schedule{
		TS: ts, Arch: a,
		place:   make([]Placement, ts.Len()),
		tasksOn: make(map[arch.ProcID][]model.TaskID, a.Procs),
		occ:     make([][]occIvl, a.Procs),
	}
	for i := range s.place {
		s.place[i] = Placement{Proc: Unplaced}
	}
	return s, nil
}

// MustNewSchedule is NewSchedule that panics on error.
func MustNewSchedule(ts *model.TaskSet, a *arch.Architecture) *Schedule {
	s, err := NewSchedule(ts, a)
	if err != nil {
		panic(err)
	}
	return s
}

// Place assigns a task. It does not validate; call Validate (or
// DeriveComms + Validate) after all placements.
func (s *Schedule) Place(id model.TaskID, p arch.ProcID, start model.Time) error {
	if int(id) < 0 || int(id) >= s.TS.Len() {
		return fmt.Errorf("sched: Place: unknown task %d", id)
	}
	if !s.Arch.Valid(p) {
		return fmt.Errorf("sched: Place %q: unknown processor %d", s.TS.Task(id).Name, p)
	}
	if start < 0 {
		return fmt.Errorf("sched: Place %q: negative start %d", s.TS.Task(id).Name, start)
	}
	if prev := s.place[id]; prev.Proc != Unplaced {
		delete(s.tasksOn, prev.Proc)
		s.occRemove(prev.Proc, id)
	}
	s.place[id] = Placement{Proc: p, Start: start}
	delete(s.tasksOn, p)
	s.occInsert(p, id, start)
	return nil
}

// MustPlace is Place that panics on error.
func (s *Schedule) MustPlace(id model.TaskID, p arch.ProcID, start model.Time) {
	if err := s.Place(id, p, start); err != nil {
		panic(err)
	}
}

// Placement returns the placement of a task.
func (s *Schedule) Placement(id model.TaskID) Placement { return s.place[id] }

// Placed reports whether every task has been assigned.
func (s *Schedule) Placed() bool {
	for _, p := range s.place {
		if p.Proc == Unplaced {
			return false
		}
	}
	return true
}

// Comms returns the derived inter-processor communications.
func (s *Schedule) Comms() []Comm { return s.comms }

// Clone returns a deep copy sharing the immutable task set and
// architecture.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{TS: s.TS, Arch: s.Arch, tasksOn: make(map[arch.ProcID][]model.TaskID, s.Arch.Procs)}
	c.place = append([]Placement(nil), s.place...)
	c.comms = append([]Comm(nil), s.comms...)
	c.occ = make([][]occIvl, len(s.occ))
	for p := range s.occ {
		c.occ[p] = append([]occIvl(nil), s.occ[p]...)
	}
	return c
}

// TasksOn returns the tasks placed on processor p, sorted by start time
// then ID. The result is cached until the next Place touching p; callers
// must not mutate it.
func (s *Schedule) TasksOn(p arch.ProcID) []model.TaskID {
	if cached, ok := s.tasksOn[p]; ok {
		return cached
	}
	var out []model.TaskID
	for i, pl := range s.place {
		if pl.Proc == p {
			out = append(out, model.TaskID(i))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := s.place[out[i]], s.place[out[j]]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return out[i] < out[j]
	})
	s.tasksOn[p] = out
	return out
}

// InstanceStart returns the start time of instance k of a task.
func (s *Schedule) InstanceStart(id model.TaskID, k int) model.Time {
	return model.InstanceStart(s.place[id].Start, s.TS.Task(id).Period, k)
}

// InstanceEnd returns the completion time of instance k of a task.
func (s *Schedule) InstanceEnd(id model.TaskID, k int) model.Time {
	return s.InstanceStart(id, k) + s.TS.Task(id).WCET
}

// Makespan returns the completion time of the last instance within the
// hyper-period — the paper's "total execution time".
func (s *Schedule) Makespan() model.Time {
	var m model.Time
	for i := 0; i < s.TS.Len(); i++ {
		id := model.TaskID(i)
		if s.place[id].Proc == Unplaced {
			continue
		}
		k := s.TS.Instances(id) - 1
		if e := s.InstanceEnd(id, k); e > m {
			m = e
		}
	}
	return m
}

// MemOn returns the required memory on p. Following the paper's
// accounting (its worked example counts 16 units for four instances of a
// task with m=4), every instance of a task contributes the task's memory
// amount: data produced by distinct instances cannot be reused (fig. 1).
func (s *Schedule) MemOn(p arch.ProcID) model.Mem {
	var m model.Mem
	for i, pl := range s.place {
		if pl.Proc == p {
			id := model.TaskID(i)
			m += s.TS.Task(id).Mem * model.Mem(s.TS.Instances(id))
		}
	}
	return m
}

// MemVector returns the per-processor memory amounts (per-instance
// accounting, see MemOn), index = processor.
func (s *Schedule) MemVector() []model.Mem {
	v := make([]model.Mem, s.Arch.Procs)
	for i, pl := range s.place {
		if pl.Proc != Unplaced {
			id := model.TaskID(i)
			v[pl.Proc] += s.TS.Task(id).Mem * model.Mem(s.TS.Instances(id))
		}
	}
	return v
}

// MaxMem returns the maximum per-processor memory amount (the ω of
// Theorem 2).
func (s *Schedule) MaxMem() model.Mem {
	var m model.Mem
	for _, v := range s.MemVector() {
		if v > m {
			m = v
		}
	}
	return m
}

// CrossDeps enumerates the dependences whose endpoints sit on different
// processors, expanded to instance granularity.
func (s *Schedule) CrossDeps() []Comm {
	var out []Comm
	for _, d := range s.TS.Dependences() {
		sp, dp := s.place[d.Src].Proc, s.place[d.Dst].Proc
		if sp == Unplaced || dp == Unplaced || sp == dp {
			continue
		}
		med, err := s.Arch.Route(sp, dp)
		if err != nil {
			continue
		}
		for k := 0; k < s.TS.Instances(d.Dst); k++ {
			for _, src := range model.InstanceDeps(s.TS, d.Dst, k) {
				if src.Task != d.Src {
					continue
				}
				out = append(out, Comm{
					Src:    src,
					Dst:    model.InstanceID{Task: d.Dst, K: k},
					Medium: med,
					Data:   d.Data,
				})
			}
		}
	}
	return out
}
