package sched

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
)

// refEarliestStart is the pre-timeline formulation of EarliestStart: the
// pairwise modulo-gcd compatibility sweep over every co-resident task
// (the paper's reference [1]). The timeline implementation must agree
// with it on every query; this file keeps the old code as the oracle.
func refEarliestStart(s *Schedule, id model.TaskID, p arch.ProcID, lower model.Time) (model.Time, bool) {
	t := s.TS.Task(id)
	limit := lower + s.TS.HyperPeriod()
	others := s.TasksOn(p)

	start := lower
	for start <= limit {
		bumped := false
		for _, other := range others {
			if other == id {
				continue
			}
			ot := s.TS.Task(other)
			os := s.Placement(other).Start
			if model.Compatible(os, ot.Period, ot.WCET, start, t.Period, t.WCET) {
				continue
			}
			next, ok := model.FirstCompatibleAtLeast(os, ot.Period, ot.WCET, t.Period, t.WCET, start+1)
			if !ok {
				return 0, false
			}
			if next > start {
				start = next
				bumped = true
			}
		}
		if !bumped {
			return start, true
		}
	}
	return 0, false
}

func refFitsAt(s *Schedule, id model.TaskID, p arch.ProcID, start model.Time) bool {
	t := s.TS.Task(id)
	for _, other := range s.TasksOn(p) {
		if other == id {
			continue
		}
		ot := s.TS.Task(other)
		if !model.Compatible(s.Placement(other).Start, ot.Period, ot.WCET, start, t.Period, t.WCET) {
			return false
		}
	}
	return true
}

// TestTimelineMatchesCompatibilityOracle drives randomly built partial
// schedules and checks that the timeline-backed EarliestStart and FitsAt
// return exactly what the modulo-gcd oracle returns, probe by probe.
func TestTimelineMatchesCompatibilityOracle(t *testing.T) {
	periods := []model.Time{6, 12, 24}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ts := model.NewTaskSet()
		n := 4 + rng.Intn(6)
		for i := 0; i < n; i++ {
			period := periods[rng.Intn(len(periods))]
			wcet := 1 + model.Time(rng.Intn(3))
			if wcet > period {
				wcet = period
			}
			ts.MustAddTask(string(rune('a'+i)), period, wcet, 1)
		}
		ts.MustFreeze()
		ar := arch.MustNew(2, 1)
		s := MustNewSchedule(ts, ar)

		for i := 0; i < n; i++ {
			id := model.TaskID(i)
			p := arch.ProcID(rng.Intn(ar.Procs))

			// Probe FitsAt agreement on a spread of starts.
			for probe := model.Time(0); probe < ts.HyperPeriod(); probe += 1 + model.Time(rng.Intn(3)) {
				if got, want := s.FitsAt(id, p, probe), refFitsAt(s, id, p, probe); got != want {
					t.Fatalf("seed %d: FitsAt(%d, P%d, %d) = %v, oracle %v", seed, id, p, probe, got, want)
				}
			}

			lower := model.Time(rng.Intn(5))
			got, err := s.EarliestStart(id, p, lower)
			want, ok := refEarliestStart(s, id, p, lower)
			if (err == nil) != ok {
				t.Fatalf("seed %d: EarliestStart(%d, P%d, %d) err=%v, oracle ok=%v", seed, id, p, lower, err, ok)
			}
			if err == nil && got != want {
				t.Fatalf("seed %d: EarliestStart(%d, P%d, %d) = %d, oracle %d", seed, id, p, lower, got, want)
			}
			if err == nil {
				s.MustPlace(id, p, got)
			}
		}
	}
}
