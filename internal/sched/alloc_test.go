package sched

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/model"
)

// alloc_test.go pins the hot paths at zero (or tightly bounded)
// allocations per call, so the dense-slice representation cannot
// silently regress back to per-query garbage.

func allocFixture(t testing.TB) (*model.TaskSet, *arch.Architecture, *Schedule) {
	t.Helper()
	ts, err := gen.Generate(gen.Config{Seed: 7, Tasks: 40, Utilization: 3})
	if err != nil {
		t.Fatal(err)
	}
	ar := arch.MustNew(4, 1)
	s, err := NewScheduler(ts, ar).Run()
	if err != nil {
		t.Fatal(err)
	}
	return ts, ar, s
}

func TestInstancesOnAllocFree(t *testing.T) {
	_, ar, s := allocFixture(t)
	is := FromSchedule(s)
	is.InstancesOn(0) // warm the cache
	allocs := testing.AllocsPerRun(100, func() {
		for p := arch.ProcID(0); int(p) < ar.Procs; p++ {
			if got := is.InstancesOn(p); len(got) == 0 && int(p) == 0 {
				t.Fatal("processor 0 unexpectedly empty")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("InstancesOn allocates %.1f objects per sweep, want 0", allocs)
	}
}

func TestEarliestStartAllocFree(t *testing.T) {
	ts, ar, s := allocFixture(t)
	// Re-probe every task on every processor against the complete
	// placement: both the hit and the bounded-miss path must stay clean.
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < ts.Len(); i++ {
			id := model.TaskID(i)
			for p := arch.ProcID(0); int(p) < ar.Procs; p++ {
				s.earliestStartIn(id, p, 0, ts.HyperPeriod())
				s.FitsAt(id, p, 0)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("EarliestStart/FitsAt allocate %.1f objects per sweep, want 0", allocs)
	}
}

func TestDepLowerBoundsAllocFree(t *testing.T) {
	ts, ar, s := allocFixture(t)
	lbs := make([]model.Time, ar.Procs)
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < ts.Len(); i++ {
			s.DepLowerBounds(model.TaskID(i), lbs)
		}
	})
	if allocs != 0 {
		t.Fatalf("DepLowerBounds allocates %.1f objects per sweep, want 0", allocs)
	}
}

// TestCloneBounded pins Clone to the structural copies: the placement
// slice, the listing headers, and one listing per processor — no
// per-instance allocations.
func TestCloneBounded(t *testing.T) {
	_, ar, s := allocFixture(t)
	is := FromSchedule(s)
	is.InstancesOn(0) // fresh listings: the worst (largest) clone shape
	limit := float64(3 + ar.Procs)
	if allocs := testing.AllocsPerRun(50, func() { is.Clone() }); allocs > limit {
		t.Fatalf("Clone allocates %.1f objects, want ≤ %.0f", allocs, limit)
	}
	c := is.Clone()
	if c.TS.TotalInstances() != len(c.pl) {
		t.Fatalf("clone placement slice has %d entries, want exactly TotalInstances = %d",
			len(c.pl), c.TS.TotalInstances())
	}
}
