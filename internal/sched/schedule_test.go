package sched

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
)

// chainSystem builds a→b→c at periods (3, 6, 6) with unit WCETs.
func chainSystem(t testing.TB) (*model.TaskSet, [3]model.TaskID) {
	t.Helper()
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 4)
	b := ts.MustAddTask("b", 6, 1, 1)
	c := ts.MustAddTask("c", 6, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustAddDependence(b, c, 1)
	ts.MustFreeze()
	return ts, [3]model.TaskID{a, b, c}
}

func TestPlaceValidation(t *testing.T) {
	ts, ids := chainSystem(t)
	s := MustNewSchedule(ts, arch.MustNew(2, 1))
	if err := s.Place(model.TaskID(99), 0, 0); err == nil {
		t.Error("unknown task accepted")
	}
	if err := s.Place(ids[0], arch.ProcID(9), 0); err == nil {
		t.Error("unknown processor accepted")
	}
	if err := s.Place(ids[0], 0, -1); err == nil {
		t.Error("negative start accepted")
	}
	if err := s.Place(ids[0], 0, 0); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
}

func TestNewScheduleRequiresFrozen(t *testing.T) {
	ts := model.NewTaskSet()
	ts.MustAddTask("a", 3, 1, 1)
	if _, err := NewSchedule(ts, arch.MustNew(1, 0)); err == nil {
		t.Fatal("unfrozen task set accepted")
	}
}

func TestMakespanAndMemVector(t *testing.T) {
	ts, ids := chainSystem(t)
	ar := arch.MustNew(2, 1)
	s := MustNewSchedule(ts, ar)
	s.MustPlace(ids[0], 0, 0) // a: instances at 0,3; ends 1,4
	s.MustPlace(ids[1], 1, 5) // b: one instance (hyper-period 6), ends 6
	s.MustPlace(ids[2], 1, 6) // c: one instance, ends 7

	if m := s.Makespan(); m != 7 {
		t.Errorf("makespan = %d, want 7", m)
	}
	// Per-instance accounting: P1 = 2 instances × 4; P2 = 1 + 1.
	v := s.MemVector()
	if v[0] != 8 || v[1] != 2 {
		t.Errorf("mem vector = %v, want [8 2]", v)
	}
	if s.MaxMem() != 8 {
		t.Errorf("max mem = %d, want 8", s.MaxMem())
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	ts, ids := chainSystem(t)
	s := MustNewSchedule(ts, arch.MustNew(1, 0))
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 0, 0) // overlaps a#1
	s.MustPlace(ids[2], 0, 1)
	errs := s.Validate()
	if !hasKind(errs, "overlap") {
		t.Errorf("overlap not reported: %v", errs)
	}
}

func TestValidateCatchesPrecedence(t *testing.T) {
	ts, ids := chainSystem(t)
	ar := arch.MustNew(2, 1)
	s := MustNewSchedule(ts, ar)
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 1, 4) // needs a#2 end (4) + C (1) = 5 > 4
	s.MustPlace(ids[2], 1, 6)
	if !hasKind(s.Validate(), "precedence") {
		t.Error("precedence violation not reported")
	}
}

func TestValidateCatchesUnplaced(t *testing.T) {
	ts, _ := chainSystem(t)
	s := MustNewSchedule(ts, arch.MustNew(1, 0))
	if !hasKind(s.Validate(), "placement") {
		t.Error("unplaced tasks not reported")
	}
	if s.Placed() {
		t.Error("Placed() true with no placements")
	}
}

func TestValidateCatchesMemoryOverflow(t *testing.T) {
	ts, ids := chainSystem(t)
	ar := arch.MustNew(2, 1)
	ar.SetMemCapacity(7) // P1 will hold 2×4 = 8 > 7
	s := MustNewSchedule(ts, ar)
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 1, 5)
	s.MustPlace(ids[2], 1, 6)
	if !hasKind(s.Validate(), "memory") {
		t.Error("memory overflow not reported")
	}
}

func TestValidateWrapAroundOverlap(t *testing.T) {
	// Two tasks, period 6, on one processor. First at 5 (runs [5,7) which
	// wraps into the next hyper-period image of the second at [6,8)... the
	// repeating pattern collides even though the direct intervals do not.
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 6, 2, 1)
	b := ts.MustAddTask("b", 6, 2, 1)
	ts.MustFreeze()
	s := MustNewSchedule(ts, arch.MustNew(1, 0))
	s.MustPlace(a, 0, 5) // [5,7); next image [11,13)
	s.MustPlace(b, 0, 0) // [0,2); next image [6,8) overlaps [5,7)
	if !hasKind(s.Validate(), "overlap") {
		t.Error("wrap-around overlap not detected")
	}
}

func TestDeriveCommsCreatesExpectedTransfers(t *testing.T) {
	ts, ids := chainSystem(t)
	ar := arch.MustNew(2, 1)
	s := MustNewSchedule(ts, ar)
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 1, 5)
	s.MustPlace(ids[2], 1, 6)
	if err := s.DeriveComms(); err != nil {
		t.Fatalf("DeriveComms: %v", err)
	}
	// a→b crosses: b#1 needs a#1 and a#2: 2 transfers. b→c stays on P2.
	if n := len(s.Comms()); n != 2 {
		t.Fatalf("%d transfers, want 2", n)
	}
	for _, c := range s.Comms() {
		if c.Src.Task != ids[0] || c.Dst.Task != ids[1] {
			t.Errorf("unexpected transfer %v→%v", c.Src, c.Dst)
		}
		if c.Start < s.InstanceEnd(c.Src.Task, c.Src.K) {
			t.Errorf("transfer starts before producer ends")
		}
		if c.End(ar) > s.InstanceStart(c.Dst.Task, c.Dst.K) {
			t.Errorf("transfer ends after consumer starts")
		}
	}
}

func TestDeriveCommsFailsWhenTooTight(t *testing.T) {
	ts, ids := chainSystem(t)
	ar := arch.MustNew(2, 3) // C=3: a#2 ends at 4, b#1 at 5 cannot receive in time
	s := MustNewSchedule(ts, ar)
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 1, 5)
	s.MustPlace(ids[2], 1, 8)
	err := s.DeriveComms()
	if err == nil || !strings.Contains(err.Error(), "cannot complete") {
		t.Fatalf("expected transfer failure, got %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	ts, ids := chainSystem(t)
	s := MustNewSchedule(ts, arch.MustNew(2, 1))
	s.MustPlace(ids[0], 0, 0)
	c := s.Clone()
	c.MustPlace(ids[0], 1, 3)
	if s.Placement(ids[0]).Proc != 0 {
		t.Error("clone shares placement storage")
	}
}

func TestTasksOnOrdering(t *testing.T) {
	ts, ids := chainSystem(t)
	s := MustNewSchedule(ts, arch.MustNew(1, 0))
	s.MustPlace(ids[2], 0, 7)
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 0, 5)
	got := s.TasksOn(0)
	want := []model.TaskID{ids[0], ids[1], ids[2]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TasksOn order = %v, want %v", got, want)
		}
	}
}

func hasKind(errs []ValidationError, kind string) bool {
	for _, e := range errs {
		if e.Kind == kind {
			return true
		}
	}
	return false
}
