package sched

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
)

func expandedChain(t *testing.T) (*InstSchedule, [3]model.TaskID) {
	t.Helper()
	ts, ids := chainSystem(t)
	ar := arch.MustNew(2, 1)
	s := MustNewSchedule(ts, ar)
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 1, 5)
	s.MustPlace(ids[2], 1, 6)
	return FromSchedule(s), ids
}

func TestFromScheduleExpandsAllInstances(t *testing.T) {
	is, ids := expandedChain(t)
	if got := is.Makespan(); got != 7 {
		t.Errorf("makespan = %d, want 7", got)
	}
	// a has two instances at 0 and 3 on P1.
	for k, want := range []model.Time{0, 3} {
		pl, ok := is.Placement(model.InstanceID{Task: ids[0], K: k})
		if !ok || pl.Proc != 0 || pl.Start != want {
			t.Errorf("a#%d placement = %+v ok=%v, want P1 @%d", k+1, pl, ok, want)
		}
	}
	if errs := is.Validate(); len(errs) > 0 {
		t.Fatalf("expanded schedule invalid: %v", errs)
	}
}

func TestInstValidateCatchesPeriodicityViolation(t *testing.T) {
	is, ids := expandedChain(t)
	// Move a#2 off its strict slot.
	is.Place(model.InstanceID{Task: ids[0], K: 1}, 0, 4)
	if !hasKind(is.Validate(), "periodicity") {
		t.Error("periodicity violation not reported")
	}
}

func TestInstValidateCatchesMissingInstance(t *testing.T) {
	ts, ids := chainSystem(t)
	is := NewInstSchedule(ts, arch.MustNew(2, 1))
	is.Place(model.InstanceID{Task: ids[0], K: 0}, 0, 0)
	if !hasKind(is.Validate(), "placement") {
		t.Error("missing instances not reported")
	}
}

func TestInstValidateCatchesCrossProcPrecedence(t *testing.T) {
	is, ids := expandedChain(t)
	// b currently at 5 on P2 (a#2 ends 4, +C = 5: tight). Move b to start 4
	// on P2: violates.
	is.Place(model.InstanceID{Task: ids[1], K: 0}, 1, 4)
	errs := is.Validate()
	if !hasKind(errs, "precedence") {
		t.Errorf("cross-processor precedence violation not reported: %v", errs)
	}
}

func TestInstValidateCoLocationRemovesCommDelay(t *testing.T) {
	ts, ids := chainSystem(t)
	is := NewInstSchedule(ts, arch.MustNew(2, 1))
	// All on P1, b directly after a#2 with no C.
	is.Place(model.InstanceID{Task: ids[0], K: 0}, 0, 0)
	is.Place(model.InstanceID{Task: ids[0], K: 1}, 0, 3)
	is.Place(model.InstanceID{Task: ids[1], K: 0}, 0, 4)
	is.Place(model.InstanceID{Task: ids[2], K: 0}, 0, 5)
	if errs := is.Validate(); len(errs) > 0 {
		t.Fatalf("co-located schedule should need no comm delay: %v", errs)
	}
}

func TestInstMemVectorPerInstance(t *testing.T) {
	is, _ := expandedChain(t)
	v := is.MemVector()
	if v[0] != 8 || v[1] != 2 {
		t.Errorf("mem vector = %v, want [8 2]", v)
	}
	if is.MaxMem() != 8 {
		t.Errorf("max mem = %d", is.MaxMem())
	}
}

func TestInstCloneIsDeep(t *testing.T) {
	is, ids := expandedChain(t)
	c := is.Clone()
	c.Place(model.InstanceID{Task: ids[0], K: 0}, 1, 0)
	pl, _ := is.Placement(model.InstanceID{Task: ids[0], K: 0})
	if pl.Proc != 0 {
		t.Error("clone shares placement map")
	}
}

func TestInstancesOnSorted(t *testing.T) {
	is, _ := expandedChain(t)
	insts := is.InstancesOn(0)
	for i := 1; i < len(insts); i++ {
		a, _ := is.Placement(insts[i-1])
		b, _ := is.Placement(insts[i])
		if a.Start > b.Start {
			t.Fatalf("InstancesOn not sorted: %v", insts)
		}
	}
}

func TestInstValidateMemoryCapacity(t *testing.T) {
	ts, ids := chainSystem(t)
	ar := arch.MustNew(2, 1)
	ar.SetMemCapacity(7)
	is := NewInstSchedule(ts, ar)
	is.Place(model.InstanceID{Task: ids[0], K: 0}, 0, 0)
	is.Place(model.InstanceID{Task: ids[0], K: 1}, 0, 3)
	is.Place(model.InstanceID{Task: ids[1], K: 0}, 1, 5)
	is.Place(model.InstanceID{Task: ids[2], K: 0}, 1, 6)
	if !hasKind(is.Validate(), "memory") {
		t.Error("instance-level memory overflow not reported (P1 holds 8 > 7)")
	}
}
