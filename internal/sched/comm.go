package sched

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/model"
)

// DeriveComms computes the inter-processor communications implied by the
// current placement and assigns each a slot on its medium. It replaces
// any previously derived comms.
//
// In the default latency-only model (the paper's: C is the time between
// the start of the send task and the completion of the receive task, with
// no bus contention) every transfer starts as soon as its producer
// completes and must finish by its consumer's start.
//
// With Architecture.ContendedMedia set, transfers on the same medium must
// not overlap; they are packed in earliest-deadline-first order, each at
// the earliest free slot after its producer completes. An error is
// returned if some transfer cannot meet its consumer under either model.
func (s *Schedule) DeriveComms() error {
	cross := s.CrossDeps()
	c := s.Arch.CommTime

	// Deterministic EDF processing order (deadline, then ready time).
	sort.Slice(cross, func(i, j int) bool {
		a, b := cross[i], cross[j]
		ad := s.InstanceStart(a.Dst.Task, a.Dst.K)
		bd := s.InstanceStart(b.Dst.Task, b.Dst.K)
		if ad != bd {
			return ad < bd
		}
		ae := s.InstanceEnd(a.Src.Task, a.Src.K)
		be := s.InstanceEnd(b.Src.Task, b.Src.K)
		if ae != be {
			return ae < be
		}
		if a.Src.Task != b.Src.Task {
			return a.Src.Task < b.Src.Task
		}
		return a.Dst.Task < b.Dst.Task
	})

	type slot struct{ start, end model.Time }
	busy := make(map[arch.MediumID][]slot)

	s.comms = s.comms[:0]
	for _, cm := range cross {
		ready := s.InstanceEnd(cm.Src.Task, cm.Src.K)
		deadline := s.InstanceStart(cm.Dst.Task, cm.Dst.K)
		start := ready
		if s.Arch.ContendedMedia {
			// Shift past conflicting slots on the medium.
			for {
				moved := false
				for _, sl := range busy[cm.Medium] {
					if start < sl.end && sl.start < start+c {
						start = sl.end
						moved = true
					}
				}
				if !moved {
					break
				}
			}
		}
		if start+c > deadline {
			return fmt.Errorf("sched: transfer %s→%s cannot complete by consumer start %d (ready %d, C %d, medium %s)",
				s.instName(cm.Src), s.instName(cm.Dst), deadline, ready, c, s.Arch.MediumName(cm.Medium))
		}
		if s.Arch.ContendedMedia {
			busy[cm.Medium] = append(busy[cm.Medium], slot{start, start + c})
		}
		cm.Start = start
		s.comms = append(s.comms, cm)
	}
	return nil
}

func (s *Schedule) instName(iid model.InstanceID) string {
	return fmt.Sprintf("%s#%d", s.TS.Task(iid.Task).Name, iid.K+1)
}

// CommLoad returns, per medium, the total busy time of derived transfers.
func (s *Schedule) CommLoad() map[arch.MediumID]model.Time {
	out := make(map[arch.MediumID]model.Time)
	for _, cm := range s.comms {
		out[cm.Medium] += s.Arch.CommTime
	}
	return out
}
