package sched

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/model"
)

// Scheduler is the rapid greedy heuristic producing the initial
// distributed schedule (the role of the paper's reference [4]): it places
// tasks one by one, in a topological order refined by increasing period,
// at the earliest feasible start time on the best processor.
//
// Processor choice: the candidate giving the smallest start time wins;
// ties prefer a processor already hosting a producer at the same or a
// multiple period (the co-location property §4 of the paper relies on),
// then the least-utilised processor, then the lowest index. Memory
// capacity, when bounded, is respected.
type Scheduler struct {
	TS   *model.TaskSet
	Arch *arch.Architecture

	// CoLocate enables the producer-co-location tie-break (default true in
	// New).
	CoLocate bool

	// Retries bounds the boost-and-restart repair rounds after a failed
	// placement (default 8 in NewScheduler).
	Retries int
}

// NewScheduler returns a scheduler with default policy.
func NewScheduler(ts *model.TaskSet, a *arch.Architecture) *Scheduler {
	return &Scheduler{TS: ts, Arch: a, CoLocate: true, Retries: 8}
}

// Run produces a complete schedule, with communications derived, or an
// error when a task cannot be placed (memory exhausted everywhere or no
// feasible start). When a placement fails, the scheduler retries from
// scratch with the failing task boosted to the front of the ready set —
// tasks that are hard to pack (long WCETs, tight dependence bounds) go
// first while the timeline is still empty. Up to Retries rounds.
func (sc *Scheduler) Run() (*Schedule, error) {
	boost := make([]int, sc.TS.Len())
	var lastErr error
	for attempt := 0; attempt <= sc.Retries; attempt++ {
		s, failed, err := sc.runOnce(boost)
		if err == nil {
			return s, nil
		}
		lastErr = err
		if failed < 0 {
			return nil, err // structural error, retrying cannot help
		}
		// Boost the failing task and its whole ancestry: the task can only
		// enter the ready set once its producers are placed, so they must
		// come early too.
		for _, id := range sc.ancestry(failed) {
			boost[id]++
		}
	}
	return nil, lastErr
}

// ancestry returns the task and all its transitive predecessors.
func (sc *Scheduler) ancestry(id model.TaskID) []model.TaskID {
	seen := map[model.TaskID]bool{id: true}
	stack := []model.TaskID{id}
	out := []model.TaskID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range sc.TS.Predecessors(cur) {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
				out = append(out, p)
			}
		}
	}
	return out
}

// runOnce is one greedy pass. On placement failure it returns the task
// that could not be placed.
func (sc *Scheduler) runOnce(boost []int) (*Schedule, model.TaskID, error) {
	s, err := NewSchedule(sc.TS, sc.Arch)
	if err != nil {
		return nil, -1, err
	}
	order := sc.order(boost)
	util := make([]model.Time, sc.Arch.Procs) // busy time per hyper-period
	memUsed := make([]model.Mem, sc.Arch.Procs)
	lbs := make([]model.Time, sc.Arch.Procs) // dependence bounds, reused per task

	for _, id := range order {
		t := sc.TS.Task(id)
		busy := model.Time(sc.TS.Instances(id)) * t.WCET
		// Per-instance memory accounting (paper: data of distinct
		// instances cannot share storage, figure 1).
		need := t.Mem * model.Mem(sc.TS.Instances(id))

		s.DepLowerBounds(id, lbs)
		best := arch.ProcID(-1)
		var bestStart model.Time
		for p := arch.ProcID(0); int(p) < sc.Arch.Procs; p++ {
			if cap := sc.Arch.MemCapacity; cap > 0 && memUsed[p]+need > cap {
				continue
			}
			// A start beyond the incumbent best cannot win (ties go to the
			// tie-breaks, strictly later starts lose), so bound the search.
			bound := lbs[p] + sc.TS.HyperPeriod()
			if best >= 0 && bestStart < bound {
				bound = bestStart
			}
			start, ok := s.earliestStartIn(id, p, lbs[p], bound)
			if !ok {
				continue
			}
			if best < 0 || sc.better(s, id, p, start, best, bestStart, util) {
				best, bestStart = p, start
			}
		}
		if best < 0 {
			return nil, id, fmt.Errorf("sched: cannot place task %q: no processor has feasible time and memory", t.Name)
		}
		if err := s.Place(id, best, bestStart); err != nil {
			return nil, -1, err
		}
		util[best] += busy
		memUsed[best] += need
	}
	if err := s.DeriveComms(); err != nil {
		return nil, -1, err
	}
	return s, -1, nil
}

// better reports whether candidate (p, start) beats the incumbent
// (bp, bstart) for task id.
func (sc *Scheduler) better(s *Schedule, id model.TaskID, p arch.ProcID, start model.Time,
	bp arch.ProcID, bstart model.Time, util []model.Time) bool {
	if start != bstart {
		return start < bstart
	}
	if sc.CoLocate {
		cp, cb := sc.hostsProducer(s, id, p), sc.hostsProducer(s, id, bp)
		if cp != cb {
			return cp
		}
	}
	if util[p] != util[bp] {
		return util[p] < util[bp]
	}
	return p < bp
}

func (sc *Scheduler) hostsProducer(s *Schedule, id model.TaskID, p arch.ProcID) bool {
	for _, src := range sc.TS.Predecessors(id) {
		if s.place[src].Proc == p {
			return true
		}
	}
	return false
}

// order returns the placement order: a topological order of the
// dependence DAG in which ready tasks are taken by boost count (repair
// rounds push hard-to-pack tasks first), then increasing period (the fast
// tasks that impose rates come first), then decreasing total busy time
// (longest processing time first within a period class), then ID.
func (sc *Scheduler) order(boost []int) []model.TaskID {
	n := sc.TS.Len()
	indeg := make([]int, n)
	for _, d := range sc.TS.Dependences() {
		indeg[d.Dst]++
	}
	ready := make([]model.TaskID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, model.TaskID(i))
		}
	}
	// Precomputed sort keys: the comparator runs O(n) times per round.
	period := make([]model.Time, n)
	busy := make([]model.Time, n)
	for i := 0; i < n; i++ {
		t := sc.TS.Task(model.TaskID(i))
		period[i] = t.Period
		busy[i] = model.Time(sc.TS.Instances(model.TaskID(i))) * t.WCET
	}
	less := func(a, b model.TaskID) bool {
		if boost[a] != boost[b] {
			return boost[a] > boost[b]
		}
		if period[a] != period[b] {
			return period[a] < period[b]
		}
		if busy[a] != busy[b] {
			return busy[a] > busy[b]
		}
		return a < b
	}
	out := make([]model.TaskID, 0, n)
	for len(ready) > 0 {
		// Extract the minimum (the ready set holds no meaningful order, so
		// a linear scan replaces re-sorting the whole set every round).
		mi := 0
		for i := 1; i < len(ready); i++ {
			if less(ready[i], ready[mi]) {
				mi = i
			}
		}
		id := ready[mi]
		ready[mi] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		out = append(out, id)
		for _, s := range sc.TS.Successors(id) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return out
}
