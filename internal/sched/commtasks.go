package sched

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/model"
)

// commtasks.go materialises the paper's explicit communication tasks
// (§3.1): "when a task is scheduled onto a processor P, if there is a
// dependence between this task and n other tasks already scheduled onto
// other processors, n new receive tasks must be created and scheduled
// before this task ... a send task must be created and scheduled onto
// the processor where the producer task is scheduled."
//
// The base model treats the communication time C as pure end-to-end
// latency. Materialisation makes the CPU side explicit: each transfer
// spawns a send task on the producer's processor (right after the
// producer instance completes) and a receive task on the consumer's
// processor (completing exactly when the consumer starts), each costing
// `overhead` processor time units. With overhead = 0 the tasks are pure
// bookkeeping; with overhead > 0 they occupy the processors and
// materialisation fails when the schedule has no room for them — a
// stricter, more hardware-faithful admission test.

// CommTaskKind distinguishes send from receive tasks.
type CommTaskKind int

const (
	// SendTask runs on the producer's processor.
	SendTask CommTaskKind = iota
	// RecvTask runs on the consumer's processor.
	RecvTask
)

// String names the kind.
func (k CommTaskKind) String() string {
	if k == SendTask {
		return "send"
	}
	return "recv"
}

// CommTask is one materialised send or receive task.
type CommTask struct {
	Kind     CommTaskKind
	Proc     arch.ProcID
	Start    model.Time
	Dur      model.Time
	Transfer Comm // the inter-processor transfer this task serves
}

// End returns the completion time of the communication task.
func (ct CommTask) End() model.Time { return ct.Start + ct.Dur }

// MaterializeCommTasks expands every derived transfer of the schedule
// into its send/receive task pair with the given per-task processor
// overhead. DeriveComms must have been called. It returns an error when
// overhead > 0 and some communication task would overlap a task instance
// or another communication task on its processor — the schedule then has
// no room for explicit communication handling and needs more slack.
func MaterializeCommTasks(s *Schedule, overhead model.Time) ([]CommTask, error) {
	if overhead < 0 {
		return nil, fmt.Errorf("sched: negative communication overhead %d", overhead)
	}
	if overhead > s.Arch.CommTime {
		return nil, fmt.Errorf("sched: overhead %d exceeds the end-to-end communication time %d",
			overhead, s.Arch.CommTime)
	}
	var out []CommTask
	for _, cm := range s.Comms() {
		srcProc := s.Placement(cm.Src.Task).Proc
		dstProc := s.Placement(cm.Dst.Task).Proc
		out = append(out,
			CommTask{
				Kind:     SendTask,
				Proc:     srcProc,
				Start:    s.InstanceEnd(cm.Src.Task, cm.Src.K),
				Dur:      overhead,
				Transfer: cm,
			},
			CommTask{
				Kind:     RecvTask,
				Proc:     dstProc,
				Start:    s.InstanceStart(cm.Dst.Task, cm.Dst.K) - overhead,
				Dur:      overhead,
				Transfer: cm,
			},
		)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Kind < b.Kind
	})

	if overhead == 0 {
		return out, nil
	}
	if err := checkCommTaskRoom(s, out); err != nil {
		return nil, err
	}
	return out, nil
}

// checkCommTaskRoom verifies that every communication task fits on its
// processor without overlapping task instances or other communication
// tasks (steady state, ±H images).
func checkCommTaskRoom(s *Schedule, cts []CommTask) error {
	h := s.TS.HyperPeriod()
	for i, ct := range cts {
		if ct.Start < 0 {
			return fmt.Errorf("sched: %s task for %s→%s would start at %d (before time zero)",
				ct.Kind, s.instName(ct.Transfer.Src), s.instName(ct.Transfer.Dst), ct.Start)
		}
		for _, id := range s.TasksOn(ct.Proc) {
			t := s.TS.Task(id)
			for k := 0; k < s.TS.Instances(id); k++ {
				is := s.InstanceStart(id, k)
				for _, d := range [3]model.Time{0, h, -h} {
					if ct.Start < is+t.WCET+d && is+d < ct.End() {
						return fmt.Errorf("sched: %s task for %s→%s [%d,%d) overlaps %s#%d on %s",
							ct.Kind, s.instName(ct.Transfer.Src), s.instName(ct.Transfer.Dst),
							ct.Start, ct.End(), t.Name, k+1, s.Arch.ProcName(ct.Proc))
					}
				}
			}
		}
		for j := i + 1; j < len(cts); j++ {
			o := cts[j]
			if o.Proc != ct.Proc {
				continue
			}
			for _, d := range [3]model.Time{0, h, -h} {
				if ct.Start < o.End()+d && o.Start+d < ct.End() {
					return fmt.Errorf("sched: %s task [%d,%d) and %s task [%d,%d) overlap on %s",
						ct.Kind, ct.Start, ct.End(), o.Kind, o.Start, o.End(), s.Arch.ProcName(ct.Proc))
				}
			}
		}
	}
	return nil
}

// CommOverheadVector sums materialised communication-task time per
// processor — the CPU cost of communication the balancer can reduce by
// co-locating dependent blocks.
func CommOverheadVector(procs int, cts []CommTask) []model.Time {
	v := make([]model.Time, procs)
	for _, ct := range cts {
		v[ct.Proc] += ct.Dur
	}
	return v
}
