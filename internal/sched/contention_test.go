package sched

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
)

// contendedSystem: two producers on P1/P2 feeding one consumer on P3,
// both transfers on the single bus in the same window.
func contendedSystem(t *testing.T, c model.Time, consumerStart model.Time) *Schedule {
	t.Helper()
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 20, 1, 1)
	b := ts.MustAddTask("b", 20, 1, 1)
	z := ts.MustAddTask("z", 20, 1, 1)
	ts.MustAddDependence(a, z, 1)
	ts.MustAddDependence(b, z, 1)
	ts.MustFreeze()
	ar := arch.MustNew(3, c)
	ar.ContendedMedia = true
	s := MustNewSchedule(ts, ar)
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 1, 0)
	s.MustPlace(z, 2, consumerStart)
	return s
}

func TestContendedMediaSerialisesTransfers(t *testing.T) {
	// Both transfers become ready at t=1, each takes 2; the bus must
	// serialise them: [1,3) and [3,5). Consumer at 5 is the tightest
	// feasible start.
	s := contendedSystem(t, 2, 5)
	if err := s.DeriveComms(); err != nil {
		t.Fatalf("DeriveComms: %v", err)
	}
	cms := s.Comms()
	if len(cms) != 2 {
		t.Fatalf("got %d transfers, want 2", len(cms))
	}
	// Non-overlapping on the shared medium.
	a, b := cms[0], cms[1]
	if a.Start < b.End(s.Arch) && b.Start < a.End(s.Arch) {
		t.Errorf("transfers overlap on the bus: [%d,%d) and [%d,%d)",
			a.Start, a.End(s.Arch), b.Start, b.End(s.Arch))
	}
	if errs := s.Validate(); len(errs) > 0 {
		t.Fatalf("contended schedule invalid: %v", errs)
	}
}

func TestContendedMediaRejectsTooTight(t *testing.T) {
	// Consumer at 4: only one transfer fits before it under contention
	// (latency-only would accept: each transfer alone meets 1+2 ≤ 4).
	s := contendedSystem(t, 2, 4)
	if err := s.DeriveComms(); err == nil {
		t.Fatal("bus contention not detected: two 2-unit transfers cannot both finish by 4")
	}
}

func TestLatencyOnlyAcceptsSameWindow(t *testing.T) {
	// The default (paper) model has no bus contention: both transfers
	// overlap in time and the consumer at 4 is fine.
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 20, 1, 1)
	b := ts.MustAddTask("b", 20, 1, 1)
	z := ts.MustAddTask("z", 20, 1, 1)
	ts.MustAddDependence(a, z, 1)
	ts.MustAddDependence(b, z, 1)
	ts.MustFreeze()
	ar := arch.MustNew(3, 2) // ContendedMedia defaults to false
	s := MustNewSchedule(ts, ar)
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 1, 0)
	s.MustPlace(z, 2, 4)
	if err := s.DeriveComms(); err != nil {
		t.Fatalf("latency-only model rejected a feasible window: %v", err)
	}
	if errs := s.Validate(); len(errs) > 0 {
		t.Fatalf("latency-only schedule invalid: %v", errs)
	}
}

func TestContentionValidationFlagsOverlaps(t *testing.T) {
	s := contendedSystem(t, 2, 5)
	if err := s.DeriveComms(); err != nil {
		t.Fatal(err)
	}
	// Forge an overlap by moving the second transfer onto the first.
	s.comms[1].Start = s.comms[0].Start
	if !hasKind(s.Validate(), "medium") {
		t.Error("forged medium overlap not reported under contention")
	}
}
