package sched

import (
	"repro/internal/arch"
	"repro/internal/model"
)

// occupancy.go derives per-processor occupancy/idle-window statistics
// from an instance-level schedule — the contention view of the
// timelines the scheduler maintains internally. The campaign analyzers
// consume it to explain *why* a balanced schedule wins: a gain shows up
// here as fewer, shorter idle windows on the loaded processors.

// ProcOccupancy summarises one processor's linear-time occupancy over a
// window [0, horizon).
type ProcOccupancy struct {
	// Busy is the total occupied time within the window, with
	// overlapping intervals (which a valid schedule never has) merged
	// rather than double-counted.
	Busy model.Time
	// IdleWindows counts the maximal idle gaps within the window,
	// including a leading gap before the first instance and a trailing
	// gap after the last one.
	IdleWindows int
	// MaxIdle is the length of the longest idle window.
	MaxIdle model.Time
}

// Occupancy computes the per-processor occupancy of is over the window
// [0, horizon), index = processor. Instances are read from the cached
// per-processor listings (sorted by start), intervals are clipped to the
// window and merged, and the gaps between merged intervals become the
// idle windows. The result depends only on the placements, never on
// iteration order, so it is safe for byte-identical artifacts.
func Occupancy(is *InstSchedule, horizon model.Time) []ProcOccupancy {
	out := make([]ProcOccupancy, is.Arch.Procs)
	if horizon <= 0 {
		return out
	}
	for p := range out {
		ids := is.InstancesOn(arch.ProcID(p))
		o := &out[p]
		// cursor is the end of occupied time seen so far; a gap opens
		// whenever the next interval starts beyond it.
		var cursor model.Time
		gap := func(from, to model.Time) {
			if to <= from {
				return
			}
			o.IdleWindows++
			if d := to - from; d > o.MaxIdle {
				o.MaxIdle = d
			}
		}
		for _, iid := range ids {
			start := is.startOf(iid)
			if start >= horizon {
				break // listings are sorted by start
			}
			end := is.End(iid)
			if end > horizon {
				end = horizon
			}
			if start > cursor {
				gap(cursor, start)
				cursor = start
			}
			if end > cursor {
				o.Busy += end - cursor
				cursor = end
			}
		}
		gap(cursor, horizon)
	}
	return out
}
