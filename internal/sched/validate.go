package sched

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/model"
)

// ValidationError describes one constraint violation found by Validate.
type ValidationError struct {
	Kind string // "placement", "overlap", "precedence", "memory", "medium"
	Msg  string
}

func (e ValidationError) Error() string { return "sched: " + e.Kind + ": " + e.Msg }

// Validate checks every constraint of the model on the schedule:
//
//   - every task is placed with a non-negative start time;
//   - non-preemptive execution: no two instances overlap on a processor
//     (checked over one hyper-period, which is sufficient because the
//     whole pattern repeats with period LCM);
//   - strict periodicity is structural (instance k = S + k·T) and needs no
//     check beyond S ≥ 0;
//   - precedence: every producer instance completes (plus C for
//     inter-processor edges) before its consumer instance starts;
//   - memory: per-processor required memory within capacity, if bounded;
//   - media: derived transfers do not overlap on their medium and sit
//     between producer end and consumer start.
//
// It returns all violations found (nil means valid).
func (s *Schedule) Validate() []ValidationError {
	var errs []ValidationError
	add := func(kind, format string, args ...any) {
		errs = append(errs, ValidationError{Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}

	for i := 0; i < s.TS.Len(); i++ {
		id := model.TaskID(i)
		pl := s.place[id]
		if pl.Proc == Unplaced {
			add("placement", "task %q is not placed", s.TS.Task(id).Name)
		} else if pl.Start < 0 {
			add("placement", "task %q has negative start %d", s.TS.Task(id).Name, pl.Start)
		}
	}
	if len(errs) > 0 {
		return errs
	}

	// Non-overlap per processor over one hyper-period.
	h := s.TS.HyperPeriod()
	for p := arch.ProcID(0); int(p) < s.Arch.Procs; p++ {
		ids := s.TasksOn(p)
		type iv struct {
			start, end model.Time
			iid        model.InstanceID
		}
		var ivs []iv
		for _, id := range ids {
			t := s.TS.Task(id)
			for k := 0; k < s.TS.Instances(id); k++ {
				st := s.InstanceStart(id, k)
				ivs = append(ivs, iv{st, st + t.WCET, model.InstanceID{Task: id, K: k}})
			}
		}
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				// Compare both direct and one hyper-period-shifted images so
				// wrap-around overlaps of the repeating pattern are caught.
				if overlaps(a.start, a.end, b.start, b.end) ||
					overlaps(a.start+h, a.end+h, b.start, b.end) ||
					overlaps(a.start, a.end, b.start+h, b.end+h) {
					add("overlap", "%s and %s overlap on %s",
						s.instName(a.iid), s.instName(b.iid), s.Arch.ProcName(p))
				}
			}
		}
	}

	// Precedence with communication delay.
	for _, d := range s.TS.Dependences() {
		sp, dp := s.place[d.Src].Proc, s.place[d.Dst].Proc
		delay := model.Time(0)
		if sp != dp {
			delay = s.Arch.CommTime
		}
		for k := 0; k < s.TS.Instances(d.Dst); k++ {
			for _, src := range model.InstanceDeps(s.TS, d.Dst, k) {
				if src.Task != d.Src {
					continue
				}
				end := s.InstanceEnd(src.Task, src.K) + delay
				start := s.InstanceStart(d.Dst, k)
				if end > start {
					add("precedence", "%s must complete by %d but %s starts at %d",
						s.instName(src), start, s.instName(model.InstanceID{Task: d.Dst, K: k}), start)
					_ = end
				}
			}
		}
	}

	// Memory capacity.
	if cap := s.Arch.MemCapacity; cap > 0 {
		for p, m := range s.MemVector() {
			if m > cap {
				add("memory", "%s needs %d memory units, capacity %d",
					s.Arch.ProcName(arch.ProcID(p)), m, cap)
			}
		}
	}

	// Medium slots: window check always; exclusivity only under the
	// contended-media model.
	for i, cm := range s.comms {
		ready := s.InstanceEnd(cm.Src.Task, cm.Src.K)
		deadline := s.InstanceStart(cm.Dst.Task, cm.Dst.K)
		if cm.Start < ready || cm.End(s.Arch) > deadline {
			add("medium", "transfer %s→%s slot [%d,%d) outside window [%d,%d]",
				s.instName(cm.Src), s.instName(cm.Dst), cm.Start, cm.End(s.Arch), ready, deadline)
		}
		if !s.Arch.ContendedMedia {
			continue
		}
		for j := i + 1; j < len(s.comms); j++ {
			o := s.comms[j]
			if o.Medium == cm.Medium && overlaps(cm.Start, cm.End(s.Arch), o.Start, o.End(s.Arch)) {
				add("medium", "transfers %s→%s and %s→%s overlap on %s",
					s.instName(cm.Src), s.instName(cm.Dst), s.instName(o.Src), s.instName(o.Dst),
					s.Arch.MediumName(cm.Medium))
			}
		}
	}

	return errs
}

// Valid reports whether Validate finds no violation.
func (s *Schedule) Valid() bool { return len(s.Validate()) == 0 }

func overlaps(a0, a1, b0, b1 model.Time) bool { return a0 < b1 && b0 < a1 }
