package sched

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/model"
)

// InstPlacement is the assignment of one task instance.
type InstPlacement struct {
	Proc  arch.ProcID
	Start model.Time
}

// InstSchedule places every task *instance* individually: the
// load-balancing heuristic may send different instances of the same task
// to different processors while preserving their strictly periodic start
// times. It is the output representation of the balancer.
type InstSchedule struct {
	TS   *model.TaskSet
	Arch *arch.Architecture

	place map[model.InstanceID]InstPlacement
}

// NewInstSchedule returns an empty instance-level schedule.
func NewInstSchedule(ts *model.TaskSet, a *arch.Architecture) *InstSchedule {
	return &InstSchedule{TS: ts, Arch: a, place: make(map[model.InstanceID]InstPlacement, ts.TotalInstances())}
}

// FromSchedule expands a task-level schedule: instance k of each task
// inherits the task's processor and start S + k·T.
func FromSchedule(s *Schedule) *InstSchedule {
	is := NewInstSchedule(s.TS, s.Arch)
	for i := 0; i < s.TS.Len(); i++ {
		id := model.TaskID(i)
		pl := s.Placement(id)
		if pl.Proc == Unplaced {
			continue
		}
		for k := 0; k < s.TS.Instances(id); k++ {
			is.place[model.InstanceID{Task: id, K: k}] = InstPlacement{Proc: pl.Proc, Start: s.InstanceStart(id, k)}
		}
	}
	return is
}

// Place assigns one instance.
func (is *InstSchedule) Place(iid model.InstanceID, p arch.ProcID, start model.Time) {
	is.place[iid] = InstPlacement{Proc: p, Start: start}
}

// Placement returns the placement of one instance and whether it is set.
func (is *InstSchedule) Placement(iid model.InstanceID) (InstPlacement, bool) {
	pl, ok := is.place[iid]
	return pl, ok
}

// Clone returns a deep copy.
func (is *InstSchedule) Clone() *InstSchedule {
	c := NewInstSchedule(is.TS, is.Arch)
	for k, v := range is.place {
		c.place[k] = v
	}
	return c
}

// InstancesOn returns the instances on processor p sorted by start time.
func (is *InstSchedule) InstancesOn(p arch.ProcID) []model.InstanceID {
	var out []model.InstanceID
	for iid, pl := range is.place {
		if pl.Proc == p {
			out = append(out, iid)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := is.place[out[i]], is.place[out[j]]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].K < out[j].K
	})
	return out
}

// End returns the completion time of an instance.
func (is *InstSchedule) End(iid model.InstanceID) model.Time {
	return is.place[iid].Start + is.TS.Task(iid.Task).WCET
}

// Makespan returns the completion time of the last placed instance.
func (is *InstSchedule) Makespan() model.Time {
	var m model.Time
	for iid := range is.place {
		if e := is.End(iid); e > m {
			m = e
		}
	}
	return m
}

// MemVector returns per-processor memory with the paper's per-instance
// accounting.
func (is *InstSchedule) MemVector() []model.Mem {
	v := make([]model.Mem, is.Arch.Procs)
	for iid, pl := range is.place {
		v[pl.Proc] += is.TS.Task(iid.Task).Mem
	}
	return v
}

// MaxMem returns the maximum entry of MemVector (ω of Theorem 2).
func (is *InstSchedule) MaxMem() model.Mem {
	var m model.Mem
	for _, v := range is.MemVector() {
		if v > m {
			m = v
		}
	}
	return m
}

// Validate checks the instance-level constraints:
//
//   - completeness: every instance of every task is placed;
//   - strict periodicity: start(t,k) = start(t,0) + k·T;
//   - non-overlap on each processor within the hyper-period window
//     (including the wrap-around images of the repeating pattern);
//   - precedence: producer end (+C when the two instances sit on
//     different processors) ≤ consumer start, per instance pair;
//   - memory capacity, per-instance accounting, when bounded.
func (is *InstSchedule) Validate() []ValidationError {
	var errs []ValidationError
	add := func(kind, format string, args ...any) {
		errs = append(errs, ValidationError{Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}
	name := func(iid model.InstanceID) string {
		return fmt.Sprintf("%s#%d", is.TS.Task(iid.Task).Name, iid.K+1)
	}

	for _, iid := range model.ExpandInstances(is.TS) {
		if _, ok := is.place[iid]; !ok {
			add("placement", "instance %s is not placed", name(iid))
		}
	}
	if len(errs) > 0 {
		return errs
	}

	for i := 0; i < is.TS.Len(); i++ {
		id := model.TaskID(i)
		t := is.TS.Task(id)
		s0 := is.place[model.InstanceID{Task: id}].Start
		if s0 < 0 {
			add("placement", "task %q first instance starts at %d", t.Name, s0)
		}
		for k := 1; k < is.TS.Instances(id); k++ {
			want := model.InstanceStart(s0, t.Period, k)
			got := is.place[model.InstanceID{Task: id, K: k}].Start
			if got != want {
				add("periodicity", "%s#%d starts at %d, strict periodicity requires %d", t.Name, k+1, got, want)
			}
		}
	}

	h := is.TS.HyperPeriod()
	for p := arch.ProcID(0); int(p) < is.Arch.Procs; p++ {
		ids := is.InstancesOn(p)
		for i := 0; i < len(ids); i++ {
			a := ids[i]
			as, ae := is.place[a].Start, is.End(a)
			for j := i + 1; j < len(ids); j++ {
				b := ids[j]
				bs, be := is.place[b].Start, is.End(b)
				if overlaps(as, ae, bs, be) || overlaps(as+h, ae+h, bs, be) || overlaps(as, ae, bs+h, be+h) {
					add("overlap", "%s and %s overlap on %s", name(a), name(b), is.Arch.ProcName(p))
				}
			}
		}
	}

	for i := 0; i < is.TS.Len(); i++ {
		dst := model.TaskID(i)
		for k := 0; k < is.TS.Instances(dst); k++ {
			ci := model.InstanceID{Task: dst, K: k}
			cpl := is.place[ci]
			for _, src := range model.InstanceDeps(is.TS, dst, k) {
				spl := is.place[src]
				end := is.End(src)
				if spl.Proc != cpl.Proc {
					end += is.Arch.CommTime
				}
				if end > cpl.Start {
					add("precedence", "%s (ends %d%s) not complete before %s starts at %d",
						name(src), is.End(src), commNote(spl.Proc != cpl.Proc, is.Arch.CommTime), name(ci), cpl.Start)
				}
			}
		}
	}

	if cap := is.Arch.MemCapacity; cap > 0 {
		for p, m := range is.MemVector() {
			if m > cap {
				add("memory", "%s needs %d memory units, capacity %d", is.Arch.ProcName(arch.ProcID(p)), m, cap)
			}
		}
	}
	return errs
}

func commNote(cross bool, c model.Time) string {
	if cross {
		return fmt.Sprintf(" +C=%d", c)
	}
	return ""
}

// Valid reports whether Validate finds no violation.
func (is *InstSchedule) Valid() bool { return len(is.Validate()) == 0 }
