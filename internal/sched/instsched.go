package sched

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/arch"
	"repro/internal/model"
)

// InstPlacement is the assignment of one task instance.
type InstPlacement struct {
	Proc  arch.ProcID
	Start model.Time
}

// InstSchedule places every task *instance* individually: the
// load-balancing heuristic may send different instances of the same task
// to different processors while preserving their strictly periodic start
// times. It is the output representation of the balancer.
//
// Placements live in a dense task-major slice indexed by
// model.TaskSet.InstanceIndex — exactly TotalInstances() entries, no
// hashing — and each processor keeps a cached occupancy listing ordered
// by (start, task, k). The listing is refreshed lazily: Place is O(1)
// and a burst of placements (the common construction pattern) pays one
// scan-and-sort on the first read instead of one sorted insert each.
type InstSchedule struct {
	TS   *model.TaskSet
	Arch *arch.Architecture

	// pl[i] is the placement of the instance with InstanceIndex i;
	// Proc == Unplaced marks an unset entry.
	pl []InstPlacement

	// byProc[p] is the cached instance listing of processor p, sorted by
	// (start, task, k). Valid only when fresh.
	byProc [][]model.InstanceID
	fresh  bool
}

// NewInstSchedule returns an empty instance-level schedule with capacity
// for exactly TotalInstances() placements.
func NewInstSchedule(ts *model.TaskSet, a *arch.Architecture) *InstSchedule {
	is := &InstSchedule{
		TS: ts, Arch: a,
		pl:     make([]InstPlacement, ts.TotalInstances()),
		byProc: make([][]model.InstanceID, a.Procs),
	}
	for i := range is.pl {
		is.pl[i].Proc = Unplaced
	}
	return is
}

// FromSchedule expands a task-level schedule: instance k of each task
// inherits the task's processor and start S + k·T.
func FromSchedule(s *Schedule) *InstSchedule {
	is := NewInstSchedule(s.TS, s.Arch)
	for i := 0; i < s.TS.Len(); i++ {
		id := model.TaskID(i)
		pl := s.Placement(id)
		if pl.Proc == Unplaced {
			continue
		}
		idx := is.TS.InstanceIndex(model.InstanceID{Task: id})
		for k := 0; k < s.TS.Instances(id); k++ {
			is.pl[idx+k] = InstPlacement{Proc: pl.Proc, Start: s.InstanceStart(id, k)}
		}
	}
	return is
}

// Place assigns one instance.
func (is *InstSchedule) Place(iid model.InstanceID, p arch.ProcID, start model.Time) {
	is.pl[is.TS.InstanceIndex(iid)] = InstPlacement{Proc: p, Start: start}
	is.fresh = false
}

// Placement returns the placement of one instance and whether it is set.
func (is *InstSchedule) Placement(iid model.InstanceID) (InstPlacement, bool) {
	pl := is.pl[is.TS.InstanceIndex(iid)]
	return pl, pl.Proc != Unplaced
}

// Clone returns a deep copy. The placement slice and the per-processor
// listings are copied wholesale, so a clone costs O(TotalInstances) with
// no hashing or re-sorting — cheap enough to hand one schedule to many
// concurrent consumers (the campaign memoiser does exactly that).
func (is *InstSchedule) Clone() *InstSchedule {
	c := &InstSchedule{
		TS: is.TS, Arch: is.Arch,
		pl:     append([]InstPlacement(nil), is.pl...),
		byProc: make([][]model.InstanceID, len(is.byProc)),
		fresh:  is.fresh,
	}
	if is.fresh {
		for p := range is.byProc {
			c.byProc[p] = append([]model.InstanceID(nil), is.byProc[p]...)
		}
	}
	return c
}

// refresh rebuilds every processor listing in one pass over the dense
// placements.
func (is *InstSchedule) refresh() {
	for p := range is.byProc {
		is.byProc[p] = is.byProc[p][:0]
	}
	n := is.TS.Len()
	for i := 0; i < n; i++ {
		id := model.TaskID(i)
		idx := is.TS.InstanceIndex(model.InstanceID{Task: id})
		for k := 0; k < is.TS.Instances(id); k++ {
			if pl := is.pl[idx+k]; pl.Proc != Unplaced {
				is.byProc[pl.Proc] = append(is.byProc[pl.Proc], model.InstanceID{Task: id, K: k})
			}
		}
	}
	for p := range is.byProc {
		slices.SortFunc(is.byProc[p], func(a, b model.InstanceID) int {
			if c := cmp.Compare(is.startOf(a), is.startOf(b)); c != 0 {
				return c
			}
			if c := cmp.Compare(a.Task, b.Task); c != 0 {
				return c
			}
			return cmp.Compare(a.K, b.K)
		})
	}
	is.fresh = true
}

func (is *InstSchedule) startOf(iid model.InstanceID) model.Time {
	return is.pl[is.TS.InstanceIndex(iid)].Start
}

// InstancesOn returns the instances on processor p sorted by start time
// (ties: task, then k). The listing is cached: repeated reads between
// placements are allocation-free. Callers must not mutate the result.
func (is *InstSchedule) InstancesOn(p arch.ProcID) []model.InstanceID {
	if !is.fresh {
		is.refresh()
	}
	return is.byProc[p]
}

// End returns the completion time of an instance.
func (is *InstSchedule) End(iid model.InstanceID) model.Time {
	return is.pl[is.TS.InstanceIndex(iid)].Start + is.TS.Task(iid.Task).WCET
}

// Makespan returns the completion time of the last placed instance.
func (is *InstSchedule) Makespan() model.Time {
	var m model.Time
	n := is.TS.Len()
	for i := 0; i < n; i++ {
		id := model.TaskID(i)
		w := is.TS.Task(id).WCET
		idx := is.TS.InstanceIndex(model.InstanceID{Task: id})
		for k := 0; k < is.TS.Instances(id); k++ {
			if pl := is.pl[idx+k]; pl.Proc != Unplaced && pl.Start+w > m {
				m = pl.Start + w
			}
		}
	}
	return m
}

// MemVector returns per-processor memory with the paper's per-instance
// accounting.
func (is *InstSchedule) MemVector() []model.Mem {
	v := make([]model.Mem, is.Arch.Procs)
	n := is.TS.Len()
	for i := 0; i < n; i++ {
		id := model.TaskID(i)
		mem := is.TS.Task(id).Mem
		idx := is.TS.InstanceIndex(model.InstanceID{Task: id})
		for k := 0; k < is.TS.Instances(id); k++ {
			if pl := is.pl[idx+k]; pl.Proc != Unplaced {
				v[pl.Proc] += mem
			}
		}
	}
	return v
}

// MaxMem returns the maximum entry of MemVector (ω of Theorem 2).
func (is *InstSchedule) MaxMem() model.Mem {
	var m model.Mem
	for _, v := range is.MemVector() {
		if v > m {
			m = v
		}
	}
	return m
}

// Validate checks the instance-level constraints:
//
//   - completeness: every instance of every task is placed;
//   - strict periodicity: start(t,k) = start(t,0) + k·T;
//   - non-overlap on each processor within the hyper-period window
//     (including the wrap-around images of the repeating pattern);
//   - precedence: producer end (+C when the two instances sit on
//     different processors) ≤ consumer start, per instance pair;
//   - memory capacity, per-instance accounting, when bounded.
func (is *InstSchedule) Validate() []ValidationError {
	var errs []ValidationError
	add := func(kind, format string, args ...any) {
		errs = append(errs, ValidationError{Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}
	name := func(iid model.InstanceID) string {
		return fmt.Sprintf("%s#%d", is.TS.Task(iid.Task).Name, iid.K+1)
	}

	for _, iid := range model.ExpandInstances(is.TS) {
		if _, ok := is.Placement(iid); !ok {
			add("placement", "instance %s is not placed", name(iid))
		}
	}
	if len(errs) > 0 {
		return errs
	}

	for i := 0; i < is.TS.Len(); i++ {
		id := model.TaskID(i)
		t := is.TS.Task(id)
		s0 := is.startOf(model.InstanceID{Task: id})
		if s0 < 0 {
			add("placement", "task %q first instance starts at %d", t.Name, s0)
		}
		for k := 1; k < is.TS.Instances(id); k++ {
			want := model.InstanceStart(s0, t.Period, k)
			got := is.startOf(model.InstanceID{Task: id, K: k})
			if got != want {
				add("periodicity", "%s#%d starts at %d, strict periodicity requires %d", t.Name, k+1, got, want)
			}
		}
	}

	h := is.TS.HyperPeriod()
	for p := arch.ProcID(0); int(p) < is.Arch.Procs; p++ {
		ids := is.InstancesOn(p)
		for i := 0; i < len(ids); i++ {
			a := ids[i]
			as, ae := is.startOf(a), is.End(a)
			for j := i + 1; j < len(ids); j++ {
				b := ids[j]
				bs, be := is.startOf(b), is.End(b)
				if overlaps(as, ae, bs, be) || overlaps(as+h, ae+h, bs, be) || overlaps(as, ae, bs+h, be+h) {
					add("overlap", "%s and %s overlap on %s", name(a), name(b), is.Arch.ProcName(p))
				}
			}
		}
	}

	for i := 0; i < is.TS.Len(); i++ {
		dst := model.TaskID(i)
		for k := 0; k < is.TS.Instances(dst); k++ {
			ci := model.InstanceID{Task: dst, K: k}
			cpl, _ := is.Placement(ci)
			model.EachInstanceDep(is.TS, dst, k, func(src model.InstanceID) {
				spl, _ := is.Placement(src)
				end := is.End(src)
				if spl.Proc != cpl.Proc {
					end += is.Arch.CommTime
				}
				if end > cpl.Start {
					add("precedence", "%s (ends %d%s) not complete before %s starts at %d",
						name(src), is.End(src), commNote(spl.Proc != cpl.Proc, is.Arch.CommTime), name(ci), cpl.Start)
				}
			})
		}
	}

	if cap := is.Arch.MemCapacity; cap > 0 {
		for p, m := range is.MemVector() {
			if m > cap {
				add("memory", "%s needs %d memory units, capacity %d", is.Arch.ProcName(arch.ProcID(p)), m, cap)
			}
		}
	}
	return errs
}

func commNote(cross bool, c model.Time) string {
	if cross {
		return fmt.Sprintf(" +C=%d", c)
	}
	return ""
}

// Valid reports whether Validate finds no violation.
func (is *InstSchedule) Valid() bool { return len(is.Validate()) == 0 }
