package sched

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/model"
)

func TestSchedulerProducesValidSchedule(t *testing.T) {
	ts, _ := chainSystem(t)
	ar := arch.MustNew(3, 1)
	s, err := NewScheduler(ts, ar).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if errs := s.Validate(); len(errs) > 0 {
		t.Fatalf("invalid schedule: %v", errs)
	}
	if !s.Placed() {
		t.Fatal("not all tasks placed")
	}
}

func TestSchedulerSingleProcessorSerialises(t *testing.T) {
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 10, 3, 1)
	b := ts.MustAddTask("b", 10, 4, 1)
	ts.MustFreeze()
	s, err := NewScheduler(ts, arch.MustNew(1, 0)).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ia := s.Placement(a)
	ib := s.Placement(b)
	if ia.Proc != 0 || ib.Proc != 0 {
		t.Fatal("tasks not on the single processor")
	}
	// One must follow the other.
	if !(ia.Start+3 <= ib.Start || ib.Start+4 <= ia.Start) {
		t.Errorf("overlapping single-processor schedule: a@%d b@%d", ia.Start, ib.Start)
	}
}

func TestSchedulerRespectsMemoryCapacity(t *testing.T) {
	ts := model.NewTaskSet()
	ts.MustAddTask("a", 10, 1, 6)
	ts.MustAddTask("b", 10, 1, 6)
	ts.MustFreeze()
	ar := arch.MustNew(2, 1)
	ar.SetMemCapacity(8) // each processor can hold only one of the two
	s, err := NewScheduler(ts, ar).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for p, m := range s.MemVector() {
		if m > 8 {
			t.Errorf("P%d over capacity: %d", p+1, m)
		}
	}
}

func TestSchedulerFailsWhenMemoryImpossible(t *testing.T) {
	ts := model.NewTaskSet()
	ts.MustAddTask("a", 10, 1, 20)
	ts.MustFreeze()
	ar := arch.MustNew(2, 1)
	ar.SetMemCapacity(8)
	if _, err := NewScheduler(ts, ar).Run(); err == nil {
		t.Fatal("impossible memory demand scheduled")
	}
}

func TestSchedulerFailsWhenOverloaded(t *testing.T) {
	// Three tasks, each filling its whole period, one processor.
	ts := model.NewTaskSet()
	ts.MustAddTask("a", 4, 4, 1)
	ts.MustAddTask("b", 4, 4, 1)
	ts.MustFreeze()
	if _, err := NewScheduler(ts, arch.MustNew(1, 0)).Run(); err == nil {
		t.Fatal("overloaded processor scheduled")
	}
}

func TestSchedulerCoLocatesHarmonicChains(t *testing.T) {
	// A tight producer-consumer pair at the same period should land on the
	// same processor (the co-location property §4 relies on).
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 10, 2, 1)
	b := ts.MustAddTask("b", 10, 2, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	s, err := NewScheduler(ts, arch.MustNew(4, 5)).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Placement(a).Proc != s.Placement(b).Proc {
		t.Errorf("dependent same-period tasks split: a on P%d, b on P%d",
			s.Placement(a).Proc+1, s.Placement(b).Proc+1)
	}
}

func TestSchedulerOnRandomSystems(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ts := gen.MustGenerate(gen.Config{Seed: seed, Tasks: 40, Utilization: 3})
		ar := arch.MustNew(6, 1)
		s, err := NewScheduler(ts, ar).Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if errs := s.Validate(); len(errs) > 0 {
			t.Fatalf("seed %d: invalid schedule: %v", seed, errs[0])
		}
	}
}

func TestEarliestStartSkipsOccupiedSlots(t *testing.T) {
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 6, 2, 1)
	b := ts.MustAddTask("b", 6, 2, 1)
	ts.MustFreeze()
	s := MustNewSchedule(ts, arch.MustNew(1, 0))
	s.MustPlace(a, 0, 0) // occupies [0,2) every 6
	got, err := s.EarliestStart(b, 0, 0)
	if err != nil {
		t.Fatalf("EarliestStart: %v", err)
	}
	if got != 2 {
		t.Errorf("earliest start = %d, want 2", got)
	}
}

func TestEarliestStartInfeasible(t *testing.T) {
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 4, 4, 1)
	b := ts.MustAddTask("b", 4, 1, 1)
	ts.MustFreeze()
	s := MustNewSchedule(ts, arch.MustNew(1, 0))
	s.MustPlace(a, 0, 0) // saturates the processor
	if _, err := s.EarliestStart(b, 0, 0); err == nil {
		t.Fatal("start found on a saturated processor")
	}
}

func TestDepLowerBound(t *testing.T) {
	ts, ids := chainSystem(t)
	ar := arch.MustNew(2, 1)
	s := MustNewSchedule(ts, ar)
	s.MustPlace(ids[0], 0, 0) // a ends at 1 and 4

	// b on P1 (same proc): bound is a#2 end = 4. On P2: 4 + C = 5.
	if lb := s.DepLowerBound(ids[1], 0); lb != 4 {
		t.Errorf("same-proc lower bound = %d, want 4", lb)
	}
	if lb := s.DepLowerBound(ids[1], 1); lb != 5 {
		t.Errorf("cross-proc lower bound = %d, want 5", lb)
	}
}
