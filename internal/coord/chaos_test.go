package coord

// Table stakes for a fault-tolerant control plane: every scenario here
// injects a real fault — a worker killed mid-range, a network partition
// healed after the liveness timeout, a speculated range completing
// twice, a coordinator restart over a half-finished lease table — and
// asserts the one invariant that matters: the merged artifact is
// byte-identical to an uninterrupted single-host run.

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/journal"
	"repro/internal/obs"
)

func testSpec() *campaign.Spec {
	return &campaign.Spec{
		Name:        "chaos",
		Seeds:       6,
		Tasks:       []int{12},
		Utilization: []float64{1.5},
		Procs:       []int{2, 3},
		Policies:    []string{"lexicographic", "memory-only"},
	}
}

// refArtifacts is the single-host baseline every chaos run must match
// byte for byte.
func refArtifacts(t *testing.T) ([]byte, []byte) {
	t.Helper()
	res, err := (&campaign.Engine{Workers: 4}).Run(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	return artifacts(t, res)
}

func artifacts(t *testing.T, res *campaign.Result) ([]byte, []byte) {
	t.Helper()
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return data, csv.Bytes()
}

func checkArtifacts(t *testing.T, res *campaign.Result) {
	t.Helper()
	refJSON, refCSV := refArtifacts(t)
	gotJSON, gotCSV := artifacts(t, res)
	if !bytes.Equal(gotJSON, refJSON) {
		t.Fatal("merged JSON differs from the single-host run")
	}
	if !bytes.Equal(gotCSV, refCSV) {
		t.Fatal("merged CSV differs from the single-host run")
	}
}

// newHTTPWorker stands up a real WorkerServer behind real HTTP and
// returns the coordinator-side client for it.
func newHTTPWorker(t *testing.T, id string, hooks Hooks, set *obs.Set) *Client {
	t.Helper()
	ws, err := NewWorkerServer(WorkerConfig{
		ID: id, Dir: t.TempDir(), Workers: 2, Obs: set, Hooks: hooks,
		Logf: func(format string, args ...any) { t.Logf("worker %s: "+format, append([]any{id}, args...)...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(ws.Handler())
	t.Cleanup(hs.Close)
	return NewClient(id, hs.URL)
}

// testConfig is the fast-twitch knob set the chaos tests share.
func testConfig(t *testing.T, splits int) Config {
	t.Helper()
	return Config{
		Spec:            testSpec(),
		Splits:          splits,
		JournalDir:      t.TempDir(),
		LivenessTimeout: 300 * time.Millisecond,
		Poll:            20 * time.Millisecond,
		RPCTimeout:      5 * time.Second,
		MaxAttempts:     8,
		Backoff:         Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond},
		Straggler:       StragglerPolicy{Disabled: true},
		Logf:            t.Logf,
	}
}

// TestWorkerKilledMidRange: three workers, one dies (simulated SIGKILL:
// job halts over a partial unsynced journal, all HTTP refused) after
// two journaled trials. The pool must shrink, the orphaned range must
// re-queue and finish on the survivors, and the artifact must not
// betray that anything happened.
func TestWorkerKilledMidRange(t *testing.T) {
	cfg := testConfig(t, 4)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.AddWorker(newHTTPWorker(t, "w1", Hooks{}, nil))
	c.AddWorker(newHTTPWorker(t, "w2", Hooks{KillAfter: 2}, nil))
	c.AddWorker(newHTTPWorker(t, "w3", Hooks{}, nil))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkArtifacts(t, res)

	st := c.Stats()
	if st.DeadWorkers != 1 {
		t.Errorf("dead workers = %d, want 1", st.DeadWorkers)
	}
	if st.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1", st.Requeues)
	}
	if got := c.Workers(); got != 2 {
		t.Errorf("surviving pool = %d workers, want 2", got)
	}
	if st.Journaled != 4 {
		t.Errorf("journaled ranges = %d, want 4", st.Journaled)
	}
}

// flakyWorker wraps a Worker with a severable network: while down, every
// RPC fails at the transport layer, but the wrapped worker keeps
// running — exactly a partition, not a crash.
type flakyWorker struct {
	w    Worker
	down atomic.Bool
}

func (f *flakyWorker) cut() error {
	if f.down.Load() {
		return errors.New("network partition")
	}
	return nil
}
func (f *flakyWorker) ID() string { return f.w.ID() }
func (f *flakyWorker) Start(ctx context.Context, job Job) error {
	if err := f.cut(); err != nil {
		return err
	}
	return f.w.Start(ctx, job)
}
func (f *flakyWorker) Status(ctx context.Context, jobID string) (WorkerStatus, error) {
	if err := f.cut(); err != nil {
		return WorkerStatus{}, err
	}
	return f.w.Status(ctx, jobID)
}
func (f *flakyWorker) Cancel(ctx context.Context, jobID string) error {
	if err := f.cut(); err != nil {
		return err
	}
	return f.w.Cancel(ctx, jobID)
}
func (f *flakyWorker) Journal(ctx context.Context, jobID string) ([]byte, error) {
	if err := f.cut(); err != nil {
		return nil, err
	}
	return f.w.Journal(ctx, jobID)
}
func (f *flakyWorker) Snapshot(ctx context.Context) (*obs.Snapshot, error) {
	if err := f.cut(); err != nil {
		return nil, err
	}
	return f.w.Snapshot(ctx)
}

// TestHeartbeatLostThenRecovered: the only worker is partitioned away
// long enough to be declared dead and its lease re-queued. When it
// re-registers (the Announce path after a heal), the coordinator must
// re-dispatch to it — idempotently, since the worker never stopped — and
// finish with a byte-identical artifact.
func TestHeartbeatLostThenRecovered(t *testing.T) {
	cfg := testConfig(t, 1)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow := Hooks{SinkDelay: func(campaign.TrialResult) { time.Sleep(20 * time.Millisecond) }}
	fw := &flakyWorker{w: newHTTPWorker(t, "w1", slow, nil)}
	c.AddWorker(fw)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done := make(chan struct{})
	var res *campaign.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = c.Run(ctx)
	}()

	// Wait for the dispatch, then cut the network until the coordinator
	// declares the worker dead and re-queues its range.
	waitFor(t, func() bool { return c.Stats().Dispatches >= 1 })
	fw.down.Store(true)
	waitFor(t, func() bool { return c.Stats().DeadWorkers == 1 })
	if st := c.Stats(); st.Requeues != 1 {
		t.Errorf("requeues after partition = %d, want 1", st.Requeues)
	}
	if got := c.Workers(); got != 0 {
		t.Errorf("pool after partition = %d workers, want 0", got)
	}

	// Heal and re-register — what a worker's Announce loop does when its
	// heartbeat comes back with known=false.
	fw.down.Store(false)
	c.AddWorker(fw)

	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	checkArtifacts(t, res)
	if st := c.Stats(); st.Registered != 2 {
		t.Errorf("registrations = %d, want 2 (initial + rejoin)", st.Registered)
	}
}

// fakeWorker is an in-process Worker with scripted answers, for driving
// the scheduler's transitions deterministically.
type fakeWorker struct {
	id       string
	st       WorkerStatus
	journal  []byte
	canceled atomic.Int64
}

func (f *fakeWorker) ID() string                       { return f.id }
func (f *fakeWorker) Start(context.Context, Job) error { return nil }
func (f *fakeWorker) Status(context.Context, string) (WorkerStatus, error) {
	return f.st, nil
}
func (f *fakeWorker) Cancel(context.Context, string) error {
	f.canceled.Add(1)
	return nil
}
func (f *fakeWorker) Journal(context.Context, string) ([]byte, error) { return f.journal, nil }
func (f *fakeWorker) Snapshot(context.Context) (*obs.Snapshot, error) { return nil, nil }

// TestDuplicateCompletionOfReissuedRange: a speculated range completes
// on both tenants in the same tick. Exactly one journal may land; the
// other must be discarded, counted, and its worker canceled — and the
// merge must still be byte-identical.
func TestDuplicateCompletionOfReissuedRange(t *testing.T) {
	cfg := testConfig(t, 1)
	elogPath := withEventLog(t, &cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The complete shard journal both fakes will hand back.
	spec := testSpec()
	hdr, err := journal.NewHeader(spec, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/full.jsonl"
	w, err := journal.Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	eng := &campaign.Engine{Workers: 4, Sink: w.Append}
	if _, err := eng.Run(spec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	f1 := &fakeWorker{id: "a", journal: data}
	f2 := &fakeWorker{id: "b", journal: data}
	c.AddWorker(f1)
	c.AddWorker(f2)

	// Seat both fakes on the one lease, the state a speculative re-issue
	// leaves behind, both reporting done.
	c.mu.Lock()
	l := c.leases[0]
	jid := c.jobID(l.rng)
	l.state = StateLeased
	l.workers["a"], l.workers["b"] = jid, jid
	l.speculated = true
	l.started = time.Now()
	c.workers["a"].lease = 0
	c.workers["b"].lease = 0
	c.mu.Unlock()
	st := WorkerStatus{JobID: jid, State: JobDone, Done: hdr.Hi - hdr.Lo, Total: hdr.Hi - hdr.Lo}
	f1.st, f2.st = st, st

	c.step(context.Background())

	stats := c.Stats()
	if stats.Journaled != 1 {
		t.Fatalf("journaled = %d, want 1", stats.Journaled)
	}
	if stats.DuplicatesDiscarded != 1 {
		t.Errorf("duplicates discarded = %d, want 1", stats.DuplicatesDiscarded)
	}
	if f1.canceled.Load()+f2.canceled.Load() == 0 {
		t.Error("the losing twin was never canceled")
	}
	res, err := c.merge()
	if err != nil {
		t.Fatal(err)
	}
	checkArtifacts(t, res)

	// The flight recorder must show exactly one landing and one discard.
	_, events := mustReadEvents(t, elogPath)
	landed, discarded := 0, 0
	for _, ev := range events {
		switch ev.Type {
		case EvShardLanded:
			landed++
		case EvDuplicateDiscard:
			discarded++
		}
	}
	if landed != 1 || discarded != 1 {
		t.Errorf("event log records %d landings and %d discards, want 1 and 1", landed, discarded)
	}
}

// TestCoordinatorRestartOverHalfFinishedTable: a coordinator is killed
// (context cancel) once half the ranges are journaled. A fresh
// coordinator over the same journal directory must recover those ranges
// from disk, re-issue only the missing ones, and finish byte-identical.
func TestCoordinatorRestartOverHalfFinishedTable(t *testing.T) {
	cfg := testConfig(t, 4)
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow := Hooks{SinkDelay: func(campaign.TrialResult) { time.Sleep(5 * time.Millisecond) }}
	c1.AddWorker(newHTTPWorker(t, "w1", slow, nil))

	ctx1, cancel1 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c1.Run(ctx1)
	}()
	waitFor(t, func() bool { return c1.Stats().Journaled >= 2 })
	cancel1()
	<-done

	recovered := c1.Stats().Journaled
	c2, err := New(cfg) // same JournalDir: the durable lease table
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.RecoveredJournals < 2 {
		t.Fatalf("recovered journals = %d, want >= 2", st.RecoveredJournals)
	}
	if st.RecoveredJournals < recovered {
		t.Errorf("recovered %d journals, first coordinator had landed %d", st.RecoveredJournals, recovered)
	}
	c2.AddWorker(newHTTPWorker(t, "w2", Hooks{}, nil))

	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	res, err := c2.Run(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	checkArtifacts(t, res)
	if got := c2.Stats().Dispatches; got != 4-st.RecoveredJournals {
		t.Errorf("second coordinator dispatched %d ranges, want %d (only the missing ones)",
			got, 4-st.RecoveredJournals)
	}
}

// TestStragglerSpeculativeReissue: one of two workers crawls (injected
// sink latency). Once the fast worker establishes the baseline, the
// coordinator must speculate the crawling range onto it, take the
// twin's journal, cancel the straggler, and stay byte-identical.
func TestStragglerSpeculativeReissue(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Straggler = StragglerPolicy{MinCompleted: 1, SlowFactor: 2}
	elogPath := withEventLog(t, &cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow := Hooks{SinkDelay: func(campaign.TrialResult) { time.Sleep(75 * time.Millisecond) }}
	// The slow worker carries telemetry so the speculation path exercises
	// the snapshot scrape and classification.
	c.AddWorker(newHTTPWorker(t, "w-slow", slow, obs.NewSet(2)))
	c.AddWorker(newHTTPWorker(t, "w-fast", Hooks{}, nil))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkArtifacts(t, res)
	if st := c.Stats(); st.Speculations < 1 {
		t.Errorf("speculations = %d, want >= 1", st.Speculations)
	}

	// The speculation decision must be on the record, naming both the
	// straggler it fled and the twin it was re-issued to.
	_, events := mustReadEvents(t, elogPath)
	found := false
	for _, ev := range events {
		if ev.Type == EvSpeculate {
			found = true
			if ev.Worker != "w-fast" || !strings.Contains(ev.Detail, "w-slow") {
				t.Errorf("speculate event names worker %q detail %q, want twin w-fast fleeing w-slow", ev.Worker, ev.Detail)
			}
		}
	}
	if !found {
		t.Error("no speculate event in the log")
	}
}

// waitFor polls cond at the chaos tests' tick rate until it holds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
