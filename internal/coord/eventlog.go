package coord

// The coordinator event log is the durable flight recorder of a
// campaign's control plane: every lease transition, liveness decision,
// retry, speculation, and landing appends one structured record, so a
// chaotic multi-host run can be reconstructed — and asserted on —
// after the fact. Records use the journal framing idiom
// (`<length:8 hex> <crc32c:8 hex> <payload JSON>\n`) for the same
// reason journals do: a coordinator killed mid-append leaves at most
// one torn tail record, which the reader drops, while corruption
// anywhere earlier is reported as a hard error rather than silently
// skipped. The first record is the EventLogHeader binding the file to
// a campaign; the log opens in append mode, so a restarted coordinator
// extends the history instead of erasing it.
//
// The log sits outside the artifact byte-identity contract, like every
// sidecar: it records wall-clock decisions that legitimately differ
// between byte-identical runs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"sync"
)

const (
	// EventLogMagic identifies a coordinator event log; EventLogVersion
	// its record schema.
	EventLogMagic   = "lbevents"
	EventLogVersion = 1

	// EventLogSuffix is the conventional file name suffix:
	// <campaign>+EventLogSuffix next to the journal dir.
	EventLogSuffix = ".events.jsonl"
)

// eventCastagnoli matches the journal's CRC-32C polynomial.
var eventCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// EventType names one kind of control-plane event. The catalogue is
// closed: ValidateEvents rejects unknown types, so consumers can
// switch exhaustively (docs/observability.md documents each).
type EventType string

const (
	// EvRegistered / EvReRegistered: a worker joined (or rejoined after
	// a restart) the pool.
	EvRegistered   EventType = "worker_registered"
	EvReRegistered EventType = "worker_reregistered"
	// EvWorkerDead: liveness timeout expired — the worker is buried and
	// any lease it held is about to re-queue.
	EvWorkerDead EventType = "worker_dead"
	// EvDispatch: a range was assigned and started on a worker
	// (Attempt counts every Start of the range, speculation included).
	EvDispatch EventType = "dispatch"
	// EvSpeculate: the straggler detector re-issued a leased range to a
	// second worker; Detail carries the projection/diagnosis.
	EvSpeculate EventType = "speculate"
	// EvAmnesia: a status poll found the worker alive but without its
	// job — it restarted and lost the assignment.
	EvAmnesia EventType = "amnesia"
	// EvJobFailed: the worker reported the job failed; Detail carries
	// the worker's error.
	EvJobFailed EventType = "job_failed"
	// EvRequeue: a failed attempt put the range back in the pending
	// queue; BackoffNS is the retry delay, Attempt the failure count.
	EvRequeue EventType = "requeue"
	// EvJournalRejected: a fetched journal failed validation and was
	// discarded (counts as a failed attempt).
	EvJournalRejected EventType = "journal_rejected"
	// EvDuplicateDiscard: the slower twin of a speculated range handed
	// back a journal after the winner landed; it was discarded.
	EvDuplicateDiscard EventType = "duplicate_discard"
	// EvShardLanded: a validated shard journal was written under the
	// coordinator's journal dir; the lease is journaled.
	EvShardLanded EventType = "shard_landed"
	// EvShardRecovered: a restarted coordinator seated an
	// already-fetched journal from disk without re-running the range.
	EvShardRecovered EventType = "shard_recovered"
	// EvFatal: the campaign turned fatal (range out of attempts, or an
	// unrecoverable landing error).
	EvFatal EventType = "fatal"
	// EvMerged: every shard folded into the final artifact.
	EvMerged EventType = "merged"
)

// knownEventTypes is the closed catalogue ValidateEvents enforces.
var knownEventTypes = map[EventType]bool{
	EvRegistered: true, EvReRegistered: true, EvWorkerDead: true,
	EvDispatch: true, EvSpeculate: true, EvAmnesia: true,
	EvJobFailed: true, EvRequeue: true, EvJournalRejected: true,
	EvDuplicateDiscard: true, EvShardLanded: true, EvShardRecovered: true,
	EvFatal: true, EvMerged: true,
}

// EventLogHeader is the first record of every event log, binding it to
// one campaign.
type EventLogHeader struct {
	Magic    string `json:"magic"`
	Version  int    `json:"version"`
	Name     string `json:"name"`
	SpecHash string `json:"spec_hash"`
	Splits   int    `json:"splits"`
}

// Event is one control-plane record. MonoNS is monotonic nanoseconds
// since the emitting coordinator started (restarts reset it — compare
// Seq across restarts, MonoNS within one). Range/Job/Trace/Span are
// set on every range-scoped event; Span names the specific dispatch
// attempt, Trace the range across all attempts.
type Event struct {
	Seq       int64     `json:"seq"`
	MonoNS    int64     `json:"mono_ns"`
	Type      EventType `json:"type"`
	Worker    string    `json:"worker,omitempty"`
	Range     *Range    `json:"range,omitempty"`
	Job       string    `json:"job,omitempty"`
	Trace     string    `json:"trace,omitempty"`
	Span      string    `json:"span,omitempty"`
	Attempt   int       `json:"attempt,omitempty"`
	State     string    `json:"state,omitempty"` // lease state after the event
	BackoffNS int64     `json:"backoff_ns,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

// EventLog is the append-only writer. Append errors are sticky and
// deliberately not campaign-fatal: losing the flight recorder is worth
// a loud log line, not an aborted sweep — callers check Err at the end.
type EventLog struct {
	mu   sync.Mutex
	f    *os.File
	seq  int64
	err  error
	path string
}

// frameEvent renders one framed record line.
func frameEvent(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+19)
	out = fmt.Appendf(out, "%08x %08x ", len(payload), crc32.Checksum(payload, eventCastagnoli))
	out = append(out, payload...)
	return append(out, '\n')
}

// OpenEventLog opens (or creates) the event log at path for the given
// campaign. A new file gets the header record; an existing file is
// read back first — its header must match the campaign, and the writer
// continues the Seq sequence after the last intact record, so a
// coordinator restart extends the history.
func OpenEventLog(path, name, specHash string, splits int) (*EventLog, error) {
	e := &EventLog{path: path}
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		hdr, events, rerr := decodeEventLog(path, data)
		if rerr != nil {
			return nil, fmt.Errorf("coord: reopening event log: %w — delete the file to start a fresh log", rerr)
		}
		if hdr.SpecHash != specHash {
			return nil, fmt.Errorf("coord: event log %s carries spec %.12s…, campaign is %.12s… — delete it to start a fresh log", path, hdr.SpecHash, specHash)
		}
		if n := len(events); n > 0 {
			e.seq = events[n-1].Seq
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		e.f = f
		return e, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := EventLogHeader{Magic: EventLogMagic, Version: EventLogVersion, Name: name, SpecHash: specHash, Splits: splits}
	payload, err := json.Marshal(hdr)
	if err == nil {
		_, err = f.Write(frameEvent(payload))
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("coord: creating event log: %w", err)
	}
	e.f = f
	return e, nil
}

// Append stamps the next sequence number on ev and writes it, fsyncing
// per record — events are low-rate and each one is a fault-handling
// decision worth surviving a crash. The first failure is retained; all
// later appends are no-ops.
func (e *EventLog) Append(ev Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	e.seq++
	ev.Seq = e.seq
	payload, err := json.Marshal(ev)
	if err == nil {
		_, err = e.f.Write(frameEvent(payload))
	}
	if err == nil {
		err = e.f.Sync()
	}
	if err != nil {
		e.err = fmt.Errorf("coord: appending event log: %w", err)
	}
}

// Err returns the sticky append error, if any.
func (e *EventLog) Err() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Path returns the log's file path.
func (e *EventLog) Path() string {
	if e == nil {
		return ""
	}
	return e.path
}

// Close syncs and closes the log.
func (e *EventLog) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return e.err
	}
	serr := e.f.Sync()
	cerr := e.f.Close()
	e.f = nil
	if e.err != nil {
		return e.err
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// ReadEventLog parses an event log: header plus every intact event in
// order. A torn final record (the signature of a killed writer) is
// dropped; any earlier framing or checksum violation is a hard error.
func ReadEventLog(path string) (EventLogHeader, []Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return EventLogHeader{}, nil, err
	}
	return decodeEventLog(path, data)
}

// decodeEventLog is ReadEventLog over bytes already in hand. The torn
// rule matches the journal's: a final record that fails to frame or
// decode — with nothing after it — is a killed writer's tail and is
// dropped; the same failure anywhere earlier is corruption and errors.
func decodeEventLog(name string, data []byte) (EventLogHeader, []Event, error) {
	var hdr EventLogHeader
	var events []Event
	recno := 0
	for len(data) > 0 {
		var line []byte
		torn := false
		if nl := bytes.IndexByte(data, '\n'); nl < 0 {
			line, data, torn = data, nil, true
		} else {
			line, data = data[:nl], data[nl+1:]
			torn = len(data) == 0
		}
		payload, err := unframeEvent(line)
		if err != nil {
			if torn && recno > 0 {
				break // torn tail: writer died mid-append
			}
			return hdr, nil, fmt.Errorf("coord: %s record %d: %w", name, recno, err)
		}
		if recno == 0 {
			if err := json.Unmarshal(payload, &hdr); err != nil {
				return hdr, nil, fmt.Errorf("coord: %s: decoding header: %w", name, err)
			}
			if hdr.Magic != EventLogMagic {
				return hdr, nil, fmt.Errorf("coord: %s is not an event log (magic %q)", name, hdr.Magic)
			}
			if hdr.Version != EventLogVersion {
				return hdr, nil, fmt.Errorf("coord: %s is event log version %d, this build reads %d", name, hdr.Version, EventLogVersion)
			}
		} else {
			var ev Event
			if err := json.Unmarshal(payload, &ev); err != nil {
				if torn {
					break
				}
				return hdr, nil, fmt.Errorf("coord: %s record %d: decoding event: %w", name, recno, err)
			}
			events = append(events, ev)
		}
		recno++
	}
	if recno == 0 {
		return hdr, nil, fmt.Errorf("coord: %s: empty event log", name)
	}
	return hdr, events, nil
}

// unframeEvent validates one framed line and returns its payload.
func unframeEvent(line []byte) ([]byte, error) {
	if len(line) < 18 || line[8] != ' ' || line[17] != ' ' {
		return nil, fmt.Errorf("malformed frame")
	}
	length, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("malformed length: %w", err)
	}
	sum, err := strconv.ParseUint(string(line[9:17]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("malformed checksum: %w", err)
	}
	payload := line[18:]
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("length %d, frame says %d", len(payload), length)
	}
	if uint64(crc32.Checksum(payload, eventCastagnoli)) != sum {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}

// ValidateEvents checks a decoded log against the record schema: known
// event types only, strictly increasing Seq, and the per-type required
// fields (range-scoped events carry range, job, and trace; worker
// events carry the worker ID). This is what the CI smoke leg runs over
// a real chaos run's log.
func ValidateEvents(hdr EventLogHeader, events []Event) error {
	if hdr.Magic != EventLogMagic {
		return fmt.Errorf("coord: bad event log magic %q", hdr.Magic)
	}
	var lastSeq int64
	for i, ev := range events {
		if !knownEventTypes[ev.Type] {
			return fmt.Errorf("coord: event %d: unknown type %q", i, ev.Type)
		}
		if ev.Seq <= lastSeq {
			return fmt.Errorf("coord: event %d: seq %d not increasing (prev %d)", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.MonoNS < 0 {
			return fmt.Errorf("coord: event %d: negative mono_ns", i)
		}
		switch ev.Type {
		case EvDispatch, EvSpeculate, EvRequeue, EvShardLanded, EvShardRecovered,
			EvDuplicateDiscard, EvJournalRejected, EvJobFailed, EvAmnesia:
			if ev.Range == nil {
				return fmt.Errorf("coord: event %d (%s): missing range", i, ev.Type)
			}
			if ev.Trace == "" {
				return fmt.Errorf("coord: event %d (%s): missing trace", i, ev.Type)
			}
			if ev.Job == "" {
				return fmt.Errorf("coord: event %d (%s): missing job", i, ev.Type)
			}
		}
		switch ev.Type {
		case EvRegistered, EvReRegistered, EvWorkerDead, EvDispatch, EvSpeculate,
			EvAmnesia, EvJobFailed, EvDuplicateDiscard, EvJournalRejected, EvShardLanded:
			if ev.Worker == "" {
				return fmt.Errorf("coord: event %d (%s): missing worker", i, ev.Type)
			}
		}
		if ev.Type == EvRequeue && ev.Attempt < 1 {
			return fmt.Errorf("coord: event %d: requeue without attempt count", i)
		}
	}
	return nil
}

// RangeHistory filters the events of one range index, in order — the
// full lease history a post-mortem (or the chaos test) reconstructs.
func RangeHistory(events []Event, index int) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Range != nil && ev.Range.Index == index {
			out = append(out, ev)
		}
	}
	return out
}
