// Package coord is the fault-tolerant control plane that turns the
// manual multi-host workflow (`lbfarm -shard i/n` per host, `lbmerge`
// by hand) into a coordinated campaign that survives real fleets.
//
// A coordinator splits one campaign spec into shard ranges — the same
// deterministic journal.ShardRange partition the CLI sharding uses —
// and dispatches them to registered workers over HTTP. Each range moves
// through a lease state machine:
//
//	pending → leased → journaled → merged
//
// pending ranges wait for an idle worker (or for their retry backoff to
// expire); leased ranges are running on one worker — or several, when
// the straggler detector speculatively re-issues a slow range;
// journaled ranges have had their complete, validated shard journal
// fetched to the coordinator's journal directory; merged is the final
// fold through journal.Merge / campaign.Fold, byte-identical to an
// uninterrupted single-host run.
//
// Robustness model, in order of line of defence:
//
//   - Liveness: workers are observed through push heartbeats and pull
//     status polls; a worker silent past the liveness timeout is
//     declared dead, its leases are re-queued, and the campaign
//     finishes on the survivors. Re-execution is safe because trials
//     are deterministic and shard journals resume.
//   - Retry with backoff: every failed range attempt (dispatch error,
//     worker death, failed or lost job, invalid fetched journal)
//     re-queues the range behind an exponential backoff with jitter,
//     and the campaign fails loudly — naming the range and its last
//     error — once a range exhausts its attempt budget.
//   - Straggler re-issue: the detector projects each leased range's
//     completion from its progress, scrapes the worker's debug
//     endpoint for the obs snapshot (stage shares say whether it is
//     compute- or fsync-bound; the throughput timeline says whether it
//     stalled outright), and speculatively re-issues the slowest tail
//     ranges to idle workers. Determinism makes duplicates free: the
//     first complete journal wins and the loser is discarded.
//   - Durability: fetched shard journals are the coordinator's lease
//     table. A restarted coordinator re-reads them, seats the complete
//     ones as journaled, and only re-issues what is actually missing.
package coord

import (
	"context"
	"errors"

	"repro/internal/api"
	"repro/internal/obs"
)

// The wire types of the job dialect — Job, Range, JobState,
// WorkerStatus, Registration, HeartbeatAck — live in internal/api (the
// one versioned dialect every server speaks); they are aliased here so
// the coordinator's domain code and its tests keep their natural names.
type (
	// Job is one dispatched unit of work; see api.Job.
	Job = api.Job
	// JobState is a worker's view of one job; see api.JobState.
	JobState = api.JobState
	// WorkerStatus is a worker's self-report; see api.WorkerStatus.
	WorkerStatus = api.WorkerStatus
)

// Job lifecycle states, re-exported from the wire package.
const (
	JobIdle    = api.JobIdle
	JobRunning = api.JobRunning
	JobDone    = api.JobDone
	JobFailed  = api.JobFailed
)

// ErrUnknownJob is returned by Worker.Status when the worker does not
// know the asked-about job — the signature of a worker that restarted
// and lost its assignment; the coordinator re-queues the range.
var ErrUnknownJob = errors.New("coord: unknown job")

// Worker is the coordinator's handle on one registered worker. The
// production implementation is the HTTP Client; the chaos tests inject
// fault-wrapped handles through the same interface.
type Worker interface {
	// ID is the worker's stable registration identity.
	ID() string
	// Start launches the job asynchronously. Starting a job the worker
	// already runs or holds done is idempotent, never an error.
	Start(ctx context.Context, job Job) error
	// Status reports on jobID ("" = whatever the worker is doing) and
	// doubles as the liveness probe. ErrUnknownJob means the worker has
	// no memory of that job.
	Status(ctx context.Context, jobID string) (WorkerStatus, error)
	// Cancel drains jobID: the engine stops claiming trials, the
	// journal is synced and closed. Best-effort; canceling an unknown
	// or finished job is not an error.
	Cancel(ctx context.Context, jobID string) error
	// Journal fetches the complete shard journal of a done job.
	Journal(ctx context.Context, jobID string) ([]byte, error)
	// Snapshot scrapes the worker's live telemetry (the -debug-addr
	// expvar surface). Workers without telemetry return (nil, nil);
	// the coordinator treats a missing snapshot as "no opinion".
	Snapshot(ctx context.Context) (*obs.Snapshot, error)
}
