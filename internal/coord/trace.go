package coord

// Range-lifecycle tracing. Every range gets a trace ID minted once,
// deterministically, from the campaign identity and the range
// coordinates — stable across dispatch attempts, coordinator restarts,
// and speculative twins, so every event-log record, worker runinfo
// sidecar, and log line about the same range carries the same ID. Each
// dispatch attempt additionally gets a span ID (trace plus the attempt
// ordinal), tying a specific worker execution to the coordinator
// decision that launched it.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// traceID mints the range-stable trace ID: the first 16 hex digits of
// SHA-256 over specHash|index|count.
func traceID(specHash string, r Range) string {
	sum := sha256.Sum256(fmt.Appendf(nil, "%s|%d|%d", specHash, r.Index, r.Count))
	return hex.EncodeToString(sum[:8])
}

// spanID names one dispatch attempt of a traced range (attempt is the
// lease's dispatch ordinal, 1-based).
func spanID(trace string, attempt int) string {
	return fmt.Sprintf("%s-%03d", trace, attempt)
}
