package coord

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// evRange is the range every synthetic event in these tests runs over.
var evRange = Range{Index: 0, Count: 2, Lo: 0, Hi: 10}

// rangeEv builds a minimally-valid range-scoped event.
func rangeEv(typ EventType, worker string) Event {
	rng := evRange
	return Event{
		Type: typ, Worker: worker, Range: &rng,
		Job: "job-0", Trace: "aabbccdd00112233", Span: "aabbccdd00112233-001", Attempt: 1,
	}
}

func TestEventLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c"+EventLogSuffix)
	e, err := OpenEventLog(path, "chaos", "deadbeef", 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Append(Event{Type: EvRegistered, Worker: "w1"})
	e.Append(rangeEv(EvDispatch, "w1"))
	ev := rangeEv(EvShardLanded, "w1")
	ev.Detail = "tenancy 12ms"
	e.Append(ev)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	hdr, events, err := ReadEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Magic != EventLogMagic || hdr.Version != EventLogVersion {
		t.Fatalf("header = %+v", hdr)
	}
	if hdr.Name != "chaos" || hdr.SpecHash != "deadbeef" || hdr.Splits != 2 {
		t.Fatalf("header = %+v", hdr)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	if events[1].Type != EvDispatch || events[1].Range == nil || events[1].Range.Hi != 10 {
		t.Errorf("dispatch event = %+v", events[1])
	}
	if err := ValidateEvents(hdr, events); err != nil {
		t.Error(err)
	}
}

// A reopened log must refuse a different campaign and otherwise extend
// the sequence, not restart it — that is what makes Seq comparable
// across coordinator restarts.
func TestEventLogReopenContinuesSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c"+EventLogSuffix)
	e, err := OpenEventLog(path, "chaos", "deadbeef", 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Append(Event{Type: EvRegistered, Worker: "w1"})
	e.Append(rangeEv(EvDispatch, "w1"))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenEventLog(path, "chaos", "0therhash", 2); err == nil {
		t.Fatal("reopening with a different spec hash must fail")
	}

	e2, err := OpenEventLog(path, "chaos", "deadbeef", 2)
	if err != nil {
		t.Fatal(err)
	}
	e2.Append(rangeEv(EvShardLanded, "w1"))
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, events, err := ReadEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[2].Seq != 3 {
		t.Fatalf("after reopen: %d events, last seq %d — want 3 events ending at seq 3", len(events), events[len(events)-1].Seq)
	}
	if err := ValidateEvents(hdr, events); err != nil {
		t.Error(err)
	}
}

// A torn final record — the killed writer's signature — is dropped
// whether or not the newline made it out; corruption anywhere earlier
// is a hard error, exactly the journal's rule.
func TestEventLogTornTailAndCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c"+EventLogSuffix)
	e, err := OpenEventLog(path, "chaos", "deadbeef", 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Append(Event{Type: EvRegistered, Worker: "w1"})
	e.Append(rangeEv(EvDispatch, "w1"))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Half a frame, no newline.
	if err := os.WriteFile(path, append(append([]byte{}, intact...), []byte("0000002a 1234")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, events, err := ReadEventLog(path); err != nil || len(events) != 2 {
		t.Fatalf("unterminated torn tail: events=%d err=%v, want 2 intact events", len(events), err)
	}

	// A complete line whose checksum lies (payload truncated in flight).
	if err := os.WriteFile(path, append(append([]byte{}, intact...), []byte("00000040 00000000 {\"seq\":3\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, events, err := ReadEventLog(path); err != nil || len(events) != 2 {
		t.Fatalf("newline-terminated torn tail: events=%d err=%v, want 2 intact events", len(events), err)
	}

	// The same damage mid-file is corruption, not a torn tail.
	lines := strings.SplitAfter(string(intact), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected 3 records, got %d", len(lines))
	}
	corrupt := []byte(lines[0] + strings.Replace(lines[1], "{", "[", 1) + lines[2])
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadEventLog(path); err == nil {
		t.Fatal("mid-file corruption must be a hard error")
	}

	// Empty files are not logs.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadEventLog(path); err == nil {
		t.Fatal("empty file must be an error")
	}
}

func TestValidateEventsRejections(t *testing.T) {
	hdr := EventLogHeader{Magic: EventLogMagic, Version: EventLogVersion, Name: "c", SpecHash: "d", Splits: 2}
	ok := func(evs ...Event) error {
		for i := range evs {
			if evs[i].Seq == 0 {
				evs[i].Seq = int64(i + 1)
			}
		}
		return ValidateEvents(hdr, evs)
	}
	if err := ok(Event{Type: EvRegistered, Worker: "w"}, rangeEv(EvDispatch, "w")); err != nil {
		t.Fatalf("valid log rejected: %v", err)
	}
	if err := ok(Event{Type: "bogus"}); err == nil {
		t.Error("unknown type accepted")
	}
	if err := ValidateEvents(hdr, []Event{{Seq: 2, Type: EvMerged}, {Seq: 2, Type: EvMerged}}); err == nil {
		t.Error("non-increasing seq accepted")
	}
	bare := rangeEv(EvDispatch, "w")
	bare.Range = nil
	if err := ok(bare); err == nil {
		t.Error("range-scoped event without range accepted")
	}
	untraced := rangeEv(EvRequeue, "w")
	untraced.Trace = ""
	if err := ok(untraced); err == nil {
		t.Error("range-scoped event without trace accepted")
	}
	anon := Event{Type: EvWorkerDead}
	if err := ok(anon); err == nil {
		t.Error("worker event without worker accepted")
	}
	lazy := rangeEv(EvRequeue, "w")
	lazy.Attempt = 0
	if err := ok(lazy); err == nil {
		t.Error("requeue without attempt accepted")
	}
}

func TestRangeHistory(t *testing.T) {
	other := rangeEv(EvDispatch, "w2")
	rng2 := Range{Index: 1, Count: 2, Lo: 10, Hi: 20}
	other.Range = &rng2
	events := []Event{
		{Seq: 1, Type: EvRegistered, Worker: "w1"},
		rangeEv(EvDispatch, "w1"),
		other,
		rangeEv(EvShardLanded, "w1"),
	}
	got := RangeHistory(events, 0)
	if len(got) != 2 || got[0].Type != EvDispatch || got[1].Type != EvShardLanded {
		t.Fatalf("history of range 0 = %+v", got)
	}
	if len(RangeHistory(events, 5)) != 0 {
		t.Error("history of an unknown range should be empty")
	}
}
