package coord

// Fleet telemetry aggregation: the coordinator periodically scrapes
// each worker's obs snapshot over the existing control API, caches it
// on the worker's state, and merges the cache into one live campaign
// snapshot (obs.MergeSnapshots — the same order-independent bucket-sum
// semantics Set.Snapshot uses one level down). The cache is the single
// scrape path: the /metrics endpoint and the end-of-run fleetinfo
// sidecar read it, and the straggler detector reuses it instead of
// running its own parallel scraper.

import (
	"context"
	"encoding/json"
	"sort"
	"time"

	"repro/internal/obs"
)

// scrape refreshes every registered worker's cached snapshot once per
// ScrapeInterval; called each scheduler tick, after the transitions.
// Scrape RPC failures are silent — liveness is the poll loop's job, and
// a stale (or absent) snapshot just means that worker contributes its
// previous numbers to the fleet merge until it answers again.
func (c *Coordinator) scrape(ctx context.Context) {
	if c.cfg.ScrapeInterval < 0 {
		return
	}
	c.mu.Lock()
	if time.Since(c.lastScrape) < c.cfg.ScrapeInterval {
		c.mu.Unlock()
		return
	}
	c.lastScrape = time.Now()
	targets := c.scrapeTargetsLocked()
	c.mu.Unlock()
	for _, t := range targets {
		c.scrapeWorker(ctx, t.id, t.w)
	}
}

type scrapeTarget struct {
	id string
	w  Worker
}

// scrapeTargetsLocked lists the pool in stable ID order; call under c.mu.
func (c *Coordinator) scrapeTargetsLocked() []scrapeTarget {
	targets := make([]scrapeTarget, 0, len(c.workers))
	for id, ws := range c.workers {
		targets = append(targets, scrapeTarget{id, ws.w})
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })
	return targets
}

// scrapeWorker performs one snapshot RPC (outside the lock) and caches
// the result on the worker's state. Returns the snapshot, or nil when
// the worker did not answer, has no telemetry, or left the pool.
func (c *Coordinator) scrapeWorker(ctx context.Context, id string, w Worker) *obs.Snapshot {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	snap, err := w.Snapshot(cctx)
	cancel()
	if err != nil || snap == nil {
		return nil
	}
	c.mu.Lock()
	if ws, ok := c.workers[id]; ok {
		ws.snap, ws.snapAt = snap, time.Now()
	}
	c.mu.Unlock()
	return snap
}

// freshSnapshot returns worker id's cached snapshot if it is younger
// than maxAge, scraping anew otherwise — the shared entry point the
// straggler detector uses, so a fleet scrape that just ran answers from
// cache instead of doubling the RPC load.
func (c *Coordinator) freshSnapshot(ctx context.Context, id string, maxAge time.Duration) *obs.Snapshot {
	c.mu.Lock()
	ws, ok := c.workers[id]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	if ws.snap != nil && maxAge > 0 && time.Since(ws.snapAt) <= maxAge {
		snap := ws.snap
		c.mu.Unlock()
		return snap
	}
	w := ws.w
	c.mu.Unlock()
	return c.scrapeWorker(ctx, id, w)
}

// FleetSnapshot merges the latest cached snapshot of every live worker
// into the campaign-level snapshot — per-stage latency distributions
// and counters across the whole fleet. Workers that never answered a
// scrape contribute nothing; buried workers' telemetry is dropped with
// them.
func (c *Coordinator) FleetSnapshot() *obs.Snapshot {
	c.mu.Lock()
	snaps := make([]*obs.Snapshot, 0, len(c.workers))
	for _, ws := range c.workers {
		snaps = append(snaps, ws.snap)
	}
	c.mu.Unlock()
	return obs.MergeSnapshots(snaps...)
}

// FleetInfo runs a final scrape of every live worker and assembles the
// campaign's fleetinfo sidecar: the merged end-of-run snapshot, one
// stub per worker that ever joined (survivors alive, buried ones not),
// and the coordinator's own fault counters keyed by their status-JSON
// names. Call after Run returns; the caller writes it next to the
// merged artifacts.
func (c *Coordinator) FleetInfo(ctx context.Context) *obs.FleetInfo {
	c.mu.Lock()
	targets := c.scrapeTargetsLocked()
	c.mu.Unlock()
	for _, t := range targets {
		c.scrapeWorker(ctx, t.id, t.w)
	}

	fi := obs.NewFleetInfo("lbcoord")
	c.mu.Lock()
	defer c.mu.Unlock()
	fi.Name = c.cfg.Spec.Name
	fi.SpecHash = c.specHash
	fi.Shards = c.cfg.Splits
	fi.Coord = statsMap(c.stats)
	fi.Workers = append([]obs.FleetWorker(nil), c.gone...)
	snaps := make([]*obs.Snapshot, 0, len(c.workers))
	for id, ws := range c.workers {
		stub := obs.FleetWorker{ID: id, Alive: true}
		if ws.snap != nil {
			stub.ElapsedNS = ws.snap.ElapsedNS
		}
		fi.Workers = append(fi.Workers, stub)
		snaps = append(snaps, ws.snap)
	}
	fi.Obs = obs.MergeSnapshots(snaps...)
	return fi
}

// statsMap projects the fault counters through their JSON tags, so the
// fleetinfo "coord" block uses the same names as /v1/status.
func statsMap(s Stats) map[string]int64 {
	data, err := json.Marshal(s)
	if err != nil {
		return nil
	}
	m := map[string]int64{}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil
	}
	return m
}
