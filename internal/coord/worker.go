package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/journal"
	"repro/internal/obs"
)

// Hooks are the worker's fault-injection points, wired only by the
// chaos tests; the zero value is a production worker.
type Hooks struct {
	// SinkDelay, when non-nil, runs inside the engine sink before each
	// journal append — the latency knob that manufactures stragglers.
	SinkDelay func(r campaign.TrialResult)
	// KillAfter > 0 simulates a process death after that many journaled
	// trials: the job halts where it stands (partial journal and all)
	// and every subsequent HTTP request is refused, exactly what a
	// SIGKILLed worker looks like from the coordinator.
	KillAfter int
}

// WorkerConfig parameterises a WorkerServer.
type WorkerConfig struct {
	// ID is the worker's registration identity (default: host:pid).
	ID string
	// Dir is where the worker keeps its shard journals (one per job ID).
	Dir string
	// Workers is the engine pool size (≤ 0 = GOMAXPROCS).
	Workers int
	// Obs, when non-nil, is the telemetry set the engine records into
	// and /debug/vars serves — the surface the coordinator's straggler
	// detector scrapes.
	Obs *obs.Set
	// Logf receives the worker's event log (nil = silent).
	Logf func(format string, args ...any)
	// Hooks inject faults for the chaos tests.
	Hooks Hooks
}

// workerJob is the worker's current assignment and its run state.
type workerJob struct {
	job     Job
	state   JobState
	err     string
	path    string
	started time.Time
	done    atomic.Int64 // journaled trials (replayed rows included)
	total   int
	stop    chan struct{} // closed (via halt) to drain the engine
	halt1   sync.Once     // cancel and the kill hook may race to close it
	fin     chan struct{} // closed when the run goroutine exits
}

// halt closes the drain channel exactly once.
func (j *workerJob) halt() { j.halt1.Do(func() { close(j.stop) }) }

// WorkerServer executes one Job at a time: resume-or-create the job's
// shard journal, run the engine over the job's range, and hold the
// complete journal for collection. It implements the Worker interface
// in-process and serves it over HTTP via Handler — Start/Status/Cancel/
// Journal are the same code either way, which is what lets the chaos
// tests drive the real server through real HTTP.
type WorkerServer struct {
	cfg WorkerConfig

	mu     sync.Mutex
	cur    *workerJob
	killed atomic.Bool
}

// NewWorkerServer validates the config and prepares the journal dir.
func NewWorkerServer(cfg WorkerConfig) (*WorkerServer, error) {
	if cfg.ID == "" {
		host, _ := os.Hostname()
		cfg.ID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("coord: worker needs a journal directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &WorkerServer{cfg: cfg}, nil
}

// ID implements Worker.
func (s *WorkerServer) ID() string { return s.cfg.ID }

// Start implements Worker: launch the job asynchronously. Re-starting
// the job the worker already runs (or holds done) is idempotent — the
// coordinator's speculative re-issue and retry paths depend on that.
// Starting a different job while one runs is refused.
func (s *WorkerServer) Start(_ context.Context, job Job) error {
	if s.dead() {
		return errors.New("coord: worker is down")
	}
	if job.Spec == nil {
		return errors.New("coord: job carries no spec")
	}
	// Own the spec outright: runJob normalises it in place, and an
	// in-process caller (the chaos tests, a future embedded mode) would
	// otherwise share slices with the coordinator's copy.
	data, err := json.Marshal(job.Spec)
	if err != nil {
		return err
	}
	sc := &campaign.Spec{}
	if err := json.Unmarshal(data, sc); err != nil {
		return err
	}
	job.Spec = sc
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != nil {
		switch {
		case s.cur.job.ID == job.ID && (s.cur.state == JobRunning || s.cur.state == JobDone):
			return nil
		case s.cur.state == JobRunning:
			return fmt.Errorf("coord: busy with job %s", s.cur.job.ID)
		}
	}
	j := &workerJob{
		job:     job,
		state:   JobRunning,
		started: time.Now(),
		total:   job.Range.Hi - job.Range.Lo,
		path:    filepath.Join(s.cfg.Dir, job.ID+".jsonl"),
		stop:    make(chan struct{}),
		fin:     make(chan struct{}),
	}
	s.cur = j
	s.cfg.Logf("job %s: shard %d/%d [%d,%d)", job.ID, job.Range.Index+1, job.Range.Count, job.Range.Lo, job.Range.Hi)
	go s.execute(j)
	return nil
}

// execute runs one job to completion (or drain, or injected death).
func (s *WorkerServer) execute(j *workerJob) {
	defer close(j.fin)
	err := s.runJob(j)
	s.mu.Lock()
	switch {
	case err == nil:
		j.state = JobDone
		s.cfg.Logf("job %s: done (%d trials journaled)", j.job.ID, j.done.Load())
	case errors.Is(err, campaign.ErrInterrupted):
		j.state = JobFailed
		j.err = "canceled"
		s.cfg.Logf("job %s: drained after %d trials", j.job.ID, j.done.Load())
	default:
		j.state = JobFailed
		j.err = err.Error()
		s.cfg.Logf("job %s: failed: %v", j.job.ID, err)
	}
	s.mu.Unlock()
	// A dead worker writes nothing — that is what the injected SIGKILL
	// simulates; every other outcome leaves a sidecar for post-mortems.
	if !s.dead() {
		s.writeRunInfo(j)
	}
}

// writeRunInfo drops the per-job runinfo sidecar next to the job's
// shard journal: identity (job, trace, span — the coordinator's
// range-lifecycle IDs), scale, host facts, and the worker's telemetry
// snapshot. Sidecar failures are log-only; the journal is the artifact
// that matters.
func (s *WorkerServer) writeRunInfo(j *workerJob) {
	ri := obs.NewRunInfo("lbfarm-worker")
	if j.job.Spec != nil {
		ri.Name = j.job.Spec.Name
		if hash, err := j.job.Spec.Hash(); err == nil {
			ri.SpecHash = hash
		}
	}
	ri.Shard = fmt.Sprintf("%d/%d", j.job.Range.Index+1, j.job.Range.Count)
	ri.Job, ri.Trace, ri.Span = j.job.ID, j.job.Trace, j.job.Span
	ri.Trials = int(j.done.Load())
	ri.Workers = s.cfg.Workers
	ri.Obs = s.cfg.Obs.Snapshot()
	ri.Finish(time.Since(j.started))
	path := strings.TrimSuffix(j.path, filepath.Ext(j.path)) + obs.RunInfoSuffix
	if err := ri.Write(path); err != nil {
		s.cfg.Logf("job %s: writing runinfo sidecar: %v", j.job.ID, err)
	}
}

// runJob is the journal-and-engine plumbing: resume the job's journal
// if a previous attempt left one (byte-identity survives re-dispatch),
// create it otherwise, and run the engine over the job's range with the
// drain channel attached.
func (s *WorkerServer) runJob(j *workerJob) error {
	spec := j.job.Spec
	if err := spec.Normalize(); err != nil {
		return err
	}
	hdr, err := journal.NewHeader(spec, j.job.Range.Index, j.job.Range.Count)
	if err != nil {
		return err
	}
	if hdr.Lo != j.job.Range.Lo || hdr.Hi != j.job.Range.Hi {
		return fmt.Errorf("coord: job range [%d,%d) disagrees with shard %d/%d of the spec ([%d,%d))",
			j.job.Range.Lo, j.job.Range.Hi, j.job.Range.Index+1, j.job.Range.Count, hdr.Lo, hdr.Hi)
	}

	var (
		w    *journal.Writer
		done []campaign.TrialResult
	)
	if _, serr := os.Stat(j.path); serr == nil {
		w, done, err = journal.Resume(j.path, hdr)
		if err == nil && len(done) > 0 {
			s.cfg.Logf("job %s: resuming journal, %d of %d trials already done", j.job.ID, len(done), j.total)
		}
	} else {
		w, err = journal.Create(j.path, hdr)
	}
	if err != nil {
		return err
	}
	w.Obs = s.cfg.Obs.Aux()
	j.done.Store(int64(len(done)))

	kill := s.cfg.Hooks.KillAfter
	eng := &campaign.Engine{
		Workers: s.cfg.Workers,
		Done:    done,
		Lo:      j.job.Range.Lo,
		Hi:      j.job.Range.Hi,
		Obs:     s.cfg.Obs,
		Stop:    j.stop,
		Sink: func(r campaign.TrialResult) error {
			if s.cfg.Hooks.SinkDelay != nil {
				s.cfg.Hooks.SinkDelay(r)
			}
			if err := w.Append(r); err != nil {
				return err
			}
			if n := j.done.Add(1); kill > 0 && n >= int64(kill) && !s.killed.Swap(true) {
				// Simulated death: stop the engine where it stands and go
				// dark. The journal tail is deliberately not synced —
				// that is what a real SIGKILL leaves behind.
				j.halt()
				s.cfg.Logf("job %s: injected kill after %d trials", j.job.ID, n)
			}
			return nil
		},
	}
	_, err = eng.Run(spec)
	if s.killed.Load() {
		// Dead workers don't close files cleanly.
		return errors.New("coord: worker killed by fault injection")
	}
	if err != nil {
		// Drain or failure: sync what we have — the journal is the
		// resumable artifact either way — and report the run's error.
		if cerr := w.Close(); cerr != nil && errors.Is(err, campaign.ErrInterrupted) {
			return cerr
		}
		return err
	}
	return w.Close()
}

// Status implements Worker. jobID "" reports whatever the worker is
// doing; naming a job the worker does not hold returns ErrUnknownJob.
func (s *WorkerServer) Status(_ context.Context, jobID string) (WorkerStatus, error) {
	if s.dead() {
		return WorkerStatus{}, errors.New("coord: worker is down")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil || (jobID != "" && s.cur.job.ID != jobID) {
		if jobID == "" {
			return WorkerStatus{State: JobIdle}, nil
		}
		return WorkerStatus{}, ErrUnknownJob
	}
	j := s.cur
	return WorkerStatus{
		JobID: j.job.ID,
		State: j.state,
		Done:  int(j.done.Load()),
		Total: j.total,
		Err:   j.err,
	}, nil
}

// Cancel implements Worker: drain the named job. The engine stops
// claiming trials, in-flight trials reach the journal, and the journal
// is synced closed — best-effort and idempotent.
func (s *WorkerServer) Cancel(_ context.Context, jobID string) error {
	if s.dead() {
		return errors.New("coord: worker is down")
	}
	s.mu.Lock()
	j := s.cur
	if j == nil || (jobID != "" && j.job.ID != jobID) || j.state != JobRunning {
		s.mu.Unlock()
		return nil
	}
	j.halt()
	s.mu.Unlock()
	<-j.fin
	return nil
}

// Journal implements Worker: the complete journal bytes of a done job.
func (s *WorkerServer) Journal(_ context.Context, jobID string) ([]byte, error) {
	if s.dead() {
		return nil, errors.New("coord: worker is down")
	}
	s.mu.Lock()
	j := s.cur
	s.mu.Unlock()
	if j == nil || j.job.ID != jobID {
		return nil, ErrUnknownJob
	}
	if j.state != JobDone {
		return nil, fmt.Errorf("coord: job %s is %s, not done", jobID, j.state)
	}
	return os.ReadFile(j.path)
}

// Snapshot implements Worker: the live telemetry snapshot (nil when the
// worker runs without telemetry).
func (s *WorkerServer) Snapshot(context.Context) (*obs.Snapshot, error) {
	if s.dead() {
		return nil, errors.New("coord: worker is down")
	}
	return s.cfg.Obs.Snapshot(), nil
}

// Drain cancels any running job and waits for it to settle — the
// SIGTERM path of the worker serve mode.
func (s *WorkerServer) Drain() { _ = s.Cancel(context.Background(), "") }

// dead reports whether fault injection took this worker down.
func (s *WorkerServer) dead() bool { return s.killed.Load() }

// Handler serves the worker API in the shared wire dialect
// (internal/api — JSON bodies, the {"error":{code,message}} envelope on
// every failure):
//
//	POST /v1/job/start        body: api.Job; 409 conflict when busy
//	                          with a different job
//	GET  /v1/job/status?id=J  200: api.WorkerStatus; 404 not_found
//	                          envelope for a job this worker does not
//	                          hold (the amnesiac-worker signal)
//	POST /v1/job/cancel?id=J  204 always (cancel is idempotent)
//	GET  /v1/job/journal?id=J 200: raw journal bytes; 404 not_found,
//	                          409 conflict while the job still runs
//	GET  /debug/vars          {"obs": <snapshot>, "worker": {...}} —
//	                          the expvar-shaped scrape surface the
//	                          coordinator's fleet scrape (and through
//	                          it the straggler detector) reads; the
//	                          worker block echoes the current job's
//	                          trace/span IDs (obs.RegisterDebug).
//	GET  /metrics             Prometheus text exposition of the local
//	                          snapshot (lb_ prefix).
//
// A worker taken down by fault injection answers everything — debug
// surface included — with a 503 unavailable envelope,
// indistinguishable from a dead process to the coordinator.
func (s *WorkerServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/job/start", func(w http.ResponseWriter, r *http.Request) {
		var job Job
		if err := api.Decode(r.Body, &job); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding job: %v", err)
			return
		}
		if err := s.Start(r.Context(), job); err != nil {
			api.WriteError(w, http.StatusConflict, api.CodeConflict, "%v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/job/status", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.Context(), r.URL.Query().Get("id"))
		if errors.Is(err, ErrUnknownJob) {
			api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "%v", err)
			return
		}
		api.WriteJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/job/cancel", func(w http.ResponseWriter, r *http.Request) {
		_ = s.Cancel(r.Context(), r.URL.Query().Get("id"))
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/job/journal", func(w http.ResponseWriter, r *http.Request) {
		data, err := s.Journal(r.Context(), r.URL.Query().Get("id"))
		if err != nil {
			if errors.Is(err, ErrUnknownJob) {
				api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "%v", err)
			} else {
				api.WriteError(w, http.StatusConflict, api.CodeConflict, "%v", err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	obs.RegisterDebug(mux, obs.SnapshotMetrics("lb_", s.cfg.Obs.Snapshot), map[string]func() any{
		"obs": func() any { return s.cfg.Obs.Snapshot() },
		"worker": func() any {
			st, _ := s.Status(context.Background(), "")
			wv := map[string]any{"id": s.cfg.ID, "status": st}
			s.mu.Lock()
			if j := s.cur; j != nil {
				wv["trace"] = j.job.Trace
				wv["span"] = j.job.Span
			}
			s.mu.Unlock()
			return wv
		},
	})
	// The dead-guard wraps the whole mux so the simulated SIGKILL also
	// blacks out the debug surface, not just the job routes.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.dead() {
			api.WriteError(w, http.StatusServiceUnavailable, api.CodeUnavailable, "worker is down")
			return
		}
		mux.ServeHTTP(w, r)
	})
}
