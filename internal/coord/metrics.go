package coord

// Prometheus exposition for the control plane: fleet-wide gauges and
// fault counters under the lbcoord_ prefix, plus the merged campaign
// snapshot (cached worker scrapes folded by FleetSnapshot) under
// lbfleet_ — histograms rendered as cumulative buckets by the obs
// writer. Served on GET /metrics by the coordinator's Handler.

import (
	"io"

	"repro/internal/obs"
)

// WriteMetrics renders the coordinator's full metric surface in the
// Prometheus text format.
func (c *Coordinator) WriteMetrics(w io.Writer) error {
	c.mu.Lock()
	stats := c.stats
	pool := len(c.workers)
	var leaseCounts [4]int
	for _, l := range c.leases {
		if l.state >= 0 && int(l.state) < len(leaseCounts) {
			leaseCounts[l.state]++
		}
	}
	c.mu.Unlock()
	fleet := c.FleetSnapshot()

	p := obs.NewPromWriter(w)
	p.Gauge("lbcoord_workers", "Registered workers currently in the pool.",
		obs.Sample{Value: float64(pool)})
	leaseSamples := make([]obs.Sample, 0, len(leaseCounts))
	for st := StatePending; st <= StateMerged; st++ {
		leaseSamples = append(leaseSamples, obs.Sample{
			Labels: []obs.Label{{Name: "state", Value: st.String()}},
			Value:  float64(leaseCounts[st]),
		})
	}
	p.Gauge("lbcoord_leases", "Shard ranges by lease state.", leaseSamples...)
	for _, m := range []struct {
		name, help string
		v          int
	}{
		{"lbcoord_workers_registered_total", "Worker registrations accepted.", stats.Registered},
		{"lbcoord_workers_dead_total", "Workers declared dead by the liveness timeout.", stats.DeadWorkers},
		{"lbcoord_dispatches_total", "Range dispatches (speculative re-issues included).", stats.Dispatches},
		{"lbcoord_requeues_total", "Failed range attempts re-queued behind backoff.", stats.Requeues},
		{"lbcoord_speculations_total", "Speculative re-issues of straggling ranges.", stats.Speculations},
		{"lbcoord_duplicates_discarded_total", "Journals from slower twins discarded after the winner landed.", stats.DuplicatesDiscarded},
		{"lbcoord_ranges_journaled_total", "Ranges with a validated shard journal on disk.", stats.Journaled},
		{"lbcoord_recovered_journals_total", "Shard journals seated from disk at startup.", stats.RecoveredJournals},
	} {
		p.Counter(m.name, m.help, obs.Sample{Value: float64(m.v)})
	}
	p.Snapshot("lbfleet_", fleet)
	return p.Err()
}
