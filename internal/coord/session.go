package coord

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/obs"
)

// SessionConfig parameterises one fleet campaign run through Session —
// the library entry point shared by cmd/lbcoord and the campaign
// service's fleet executor.
type SessionConfig struct {
	// Spec is the campaign to run (required; normalised in place).
	Spec *campaign.Spec
	// Options carries the shared coordinator knobs (zero value: the
	// DefaultOptions defaults are applied field-wise by Coordinator
	// validation; Splits 0 auto-sizes against the registry pool).
	Options Options
	// JournalDir receives the fetched shard journals and the event log —
	// the campaign's durable state. Per-campaign directories keep
	// concurrent sessions from colliding (required).
	JournalDir string
	// Registry, when non-nil, feeds the session its worker pool: the
	// session attaches at construction and detaches at Close.
	Registry *Registry
	// OnShard forwards to Config.OnShard — rows of every durable shard.
	OnShard func(rng Range, rows []campaign.TrialResult, recovered bool)
	// Dial forwards to Config.Dial (test seam).
	Dial func(id, addr string) Worker
	// Logf receives the coordinator's log (nil = silent).
	Logf func(format string, args ...any)
}

// Session is one campaign's coordinator lifecycle, packaged so it can
// run per-process (lbcoord) or per-campaign in-process (lbfarmd
// -fleet): construct → workers flow in from the registry → Run →
// FleetInfo → Close. Journal recovery happens in NewSession, so a
// session over a previously interrupted JournalDir resumes instead of
// re-running.
type Session struct {
	spec   *campaign.Spec
	reg    *Registry
	coord  *Coordinator
	elog   *EventLog
	elogAt string
	splits int
	detach func()
	once   sync.Once
}

// NewSession validates cfg, opens the event log, cuts and recovers the
// lease table, and attaches the registry. The caller must Close the
// session when done with it (after Run, or on setup failure paths).
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("coord: no spec")
	}
	if err := cfg.Spec.Normalize(); err != nil {
		return nil, err
	}
	hash, err := cfg.Spec.Hash()
	if err != nil {
		return nil, err
	}
	trials, err := cfg.Spec.Trials()
	if err != nil {
		return nil, err
	}
	pool := 0
	if cfg.Registry != nil {
		pool = cfg.Registry.Size()
	}
	splits := AutoSplits(cfg.Options.Splits, pool, len(trials))

	s := &Session{spec: cfg.Spec, reg: cfg.Registry, splits: splits}
	// The event log lives with the shard journals: both are durable
	// fault-tolerance records, and both survive an interrupted run for
	// the next session over the same directory to extend.
	if cfg.Options.EventLog != "none" {
		path := cfg.Options.EventLog
		if path == "" {
			path = filepath.Join(cfg.JournalDir, cfg.Spec.Name+EventLogSuffix)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, err
		}
		s.elog, err = OpenEventLog(path, cfg.Spec.Name, hash, splits)
		if err != nil {
			return nil, err
		}
		s.elogAt = path
	}

	c, err := New(Config{
		Spec:            cfg.Spec,
		Splits:          splits,
		JournalDir:      cfg.JournalDir,
		LivenessTimeout: cfg.Options.Liveness,
		Poll:            cfg.Options.Poll,
		RPCTimeout:      cfg.Options.RPCTimeout,
		MaxAttempts:     cfg.Options.MaxAttempts,
		Backoff:         cfg.Options.backoff(),
		Straggler:       cfg.Options.straggler(),
		EventLog:        s.elog,
		ScrapeInterval:  cfg.Options.ScrapeInterval,
		Dial:            cfg.Dial,
		OnShard:         cfg.OnShard,
		Logf:            cfg.Logf,
	})
	if err != nil {
		s.Close()
		return nil, err
	}
	s.coord = c
	if cfg.Registry != nil {
		s.detach = cfg.Registry.Attach(c)
	}
	return s, nil
}

// Run drives the campaign to its merged result (see Coordinator.Run).
func (s *Session) Run(ctx context.Context) (*campaign.Result, error) {
	return s.coord.Run(ctx)
}

// Close detaches the session from its registry and closes the event
// log. Idempotent; safe on half-constructed sessions.
func (s *Session) Close() error {
	var err error
	s.once.Do(func() {
		if s.detach != nil {
			s.detach()
		}
		if s.elog != nil {
			err = s.elog.Close()
		}
	})
	return err
}

// Splits is the resolved shard count (after auto-sizing).
func (s *Session) Splits() int { return s.splits }

// EventLogPath is where the event log landed ("" when disabled).
func (s *Session) EventLogPath() string { return s.elogAt }

// Status snapshots the embedded coordinator's control-plane state.
func (s *Session) Status() api.CoordStatus { return s.coord.Status() }

// Stats returns the embedded coordinator's fault counters.
func (s *Session) Stats() Stats { return s.coord.Stats() }

// FleetSnapshot merges the freshest telemetry of the live pool.
func (s *Session) FleetSnapshot() *obs.Snapshot { return s.coord.FleetSnapshot() }

// FleetInfo scrapes the surviving workers one last time and assembles
// the fleetinfo sidecar document (see Coordinator.FleetInfo).
func (s *Session) FleetInfo(ctx context.Context) *obs.FleetInfo {
	return s.coord.FleetInfo(ctx)
}

// WriteMetrics renders the embedded coordinator's Prometheus
// exposition.
func (s *Session) WriteMetrics(w io.Writer) error {
	return s.coord.WriteMetrics(w)
}

// Handler serves the session's control API — registration (through the
// registry, so workers joining mid-campaign reach this and every other
// attached session), /v1/status, /metrics, and the debug surface. This
// is lbcoord's server; lbfarmd mounts the same registry routes on its
// campaign API mux instead.
func (s *Session) Handler() http.Handler {
	mux := http.NewServeMux()
	if s.reg != nil {
		s.reg.Routes(mux)
	}
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, s.Status())
	})
	obs.RegisterDebug(mux, s.coord.WriteMetrics, map[string]func() any{
		"obs":     func() any { return s.FleetSnapshot() },
		"lbcoord": func() any { return s.Status() },
	})
	return mux
}

// SignalContext is the shared CLI signal plumbing: a context canceled
// on SIGINT/SIGTERM, restoring default signal handling once cancel is
// called (so a second signal kills a stuck drain).
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Drain is the shared interrupted-exit deadline: how long an entry
// point waits for servers to shut down after a drain.
const Drain = 5 * time.Second
