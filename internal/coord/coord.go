package coord

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/journal"
	"repro/internal/obs"
)

// Config parameterises a Coordinator. Spec, Splits, and JournalDir are
// required; every knob has a serviceable default.
type Config struct {
	// Spec is the campaign to run; it is normalised in place.
	Spec *campaign.Spec

	// Splits is how many shard ranges to cut the sweep into. More
	// splits than workers is the point: small ranges re-issue cheaply
	// and let the pool load-balance itself.
	Splits int

	// JournalDir receives the fetched shard journals — and doubles as
	// the durable lease table: a restarted coordinator re-reads it and
	// only re-issues ranges whose journal is missing.
	JournalDir string

	// LivenessTimeout declares a worker dead when neither a push
	// heartbeat nor a successful status poll has been seen for this
	// long (default 10s).
	LivenessTimeout time.Duration

	// Poll is the scheduler tick: status polls, liveness checks,
	// dispatch, and straggler checks happen each tick (default 1s).
	Poll time.Duration

	// RPCTimeout bounds each worker RPC (default 5s).
	RPCTimeout time.Duration

	// MaxAttempts is the per-range failure budget; exhausting it fails
	// the campaign loudly (default 5).
	MaxAttempts int

	// Backoff is the re-queue delay curve (default DefaultBackoff).
	Backoff Backoff

	// Straggler is the speculative re-issue policy.
	Straggler StragglerPolicy

	// EventLog, when non-nil, receives the structured control-plane
	// event stream (see eventlog.go). Append failures are sticky on the
	// log, never campaign-fatal.
	EventLog *EventLog

	// ScrapeInterval is the fleet telemetry cadence: every interval the
	// scheduler refreshes each worker's obs snapshot over the control
	// API, feeding the live campaign snapshot (FleetSnapshot, /metrics)
	// and the end-of-run fleetinfo sidecar. The straggler detector
	// consumes the same cached scrapes. 0 defaults to 5s; negative
	// disables the periodic loop (stragglers then scrape on demand).
	ScrapeInterval time.Duration

	// Dial builds a Worker handle from a registration (default: the
	// HTTP Client). Tests inject fault-wrapped handles here.
	Dial func(id, addr string) Worker

	// OnShard, when non-nil, receives every shard's validated trial rows
	// the moment the shard becomes durable: once per recovered journal
	// during New (recovered=true) and once per landed journal during Run
	// (recovered=false). Calls are serialised — recovery runs before New
	// returns and landings happen on the scheduler goroutine — so an
	// embedding campaign service can fan rows into live counters and
	// event streams without extra locking. Rows arrive in shard order
	// within a call but shards land in completion order.
	OnShard func(rng Range, rows []campaign.TrialResult, recovered bool)

	// Logf receives the coordinator's event log (nil = silent).
	Logf func(format string, args ...any)

	// jitter is the backoff jitter source; tests may zero Backoff.Jitter
	// instead, so this stays unexported and defaults to math/rand.
	jitter func() float64
}

// Stats counts the control plane's fault-handling events; the chaos
// tests assert on them and the status surfaces publish them. The wire
// type lives in internal/api (the campaign service embeds it in
// CampaignStatus.Fleet).
type Stats = api.CoordStats

// WorkerView is the exported snapshot of one registered worker (wire
// type api.CoordWorker).
type WorkerView = api.CoordWorker

// StatusSnapshot is the coordinator's full observable state, served on
// /v1/status and published on the expvar surface (wire type
// api.CoordStatus).
type StatusSnapshot = api.CoordStatus

// workerState is the coordinator's book on one registered worker.
type workerState struct {
	w        Worker
	lastSeen time.Time
	status   WorkerStatus
	lease    int // index into leases, -1 when idle

	// snap is the last telemetry snapshot scraped from this worker (nil
	// until the first scrape succeeds); snapAt is when. The scrape loop
	// and the straggler detector share this cache — one scrape path.
	snap   *obs.Snapshot
	snapAt time.Time
}

// Coordinator owns the lease table and drives the campaign to a merged
// result. Construct with New, feed it workers via Register/AddWorker
// (typically through the HTTP Server), then Run.
type Coordinator struct {
	cfg      Config
	specHash string
	total    int
	start    time.Time // the event log's monotonic time base

	mu      sync.Mutex
	leases  []*lease
	workers map[string]*workerState
	stats   Stats
	fatal   error

	// lastScrape gates the periodic fleet scrape; gone keeps the stubs
	// of buried workers for the fleetinfo sidecar (their telemetry is
	// deliberately dropped: the merged snapshot sums survivors only).
	lastScrape time.Time
	gone       []obs.FleetWorker
}

// New validates the config, cuts the spec into ranges, and recovers the
// lease table from any shard journals already in JournalDir.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("coord: no spec")
	}
	if err := cfg.Spec.Normalize(); err != nil {
		return nil, err
	}
	hash, err := cfg.Spec.Hash()
	if err != nil {
		return nil, err
	}
	trials, err := cfg.Spec.Trials()
	if err != nil {
		return nil, err
	}
	if cfg.Splits < 1 {
		return nil, fmt.Errorf("coord: splits %d < 1", cfg.Splits)
	}
	if cfg.Splits > len(trials) {
		return nil, fmt.Errorf("coord: %d splits over a %d-trial sweep leaves empty ranges — use at most %d", cfg.Splits, len(trials), len(trials))
	}
	if cfg.JournalDir == "" {
		return nil, fmt.Errorf("coord: no journal directory")
	}
	if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
		return nil, err
	}
	if cfg.LivenessTimeout <= 0 {
		cfg.LivenessTimeout = 10 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = time.Second
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Backoff == (Backoff{}) {
		cfg.Backoff = DefaultBackoff()
	}
	if cfg.Dial == nil {
		cfg.Dial = func(id, addr string) Worker { return NewClient(id, addr) }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.jitter == nil {
		cfg.jitter = jitterDraw
	}
	if cfg.ScrapeInterval == 0 {
		cfg.ScrapeInterval = 5 * time.Second
	}

	c := &Coordinator{cfg: cfg, specHash: hash, total: len(trials), start: time.Now(), workers: map[string]*workerState{}}
	for i := 0; i < cfg.Splits; i++ {
		lo, hi := journal.ShardRange(len(trials), i, cfg.Splits)
		rng := Range{Index: i, Count: cfg.Splits, Lo: lo, Hi: hi}
		c.leases = append(c.leases, &lease{
			rng:     rng,
			trace:   traceID(hash, rng),
			workers: map[string]string{},
		})
	}
	if err := c.recover(); err != nil {
		return nil, err
	}
	return c, nil
}

// event stamps the monotonic time base on ev and appends it to the
// configured event log (a no-op when logging is disabled). Callers fill
// every other field; range-scoped callers should use rangeEvent.
func (c *Coordinator) event(ev Event) {
	ev.MonoNS = int64(time.Since(c.start))
	c.cfg.EventLog.Append(ev)
}

// rangeEvent pre-fills the range-scoped fields (range, job, trace,
// span, attempt, resulting lease state) of an event about lease l.
// Call under c.mu — it reads lease state.
func (c *Coordinator) rangeEvent(typ EventType, l *lease) Event {
	rng := l.rng
	return Event{
		Type:    typ,
		Range:   &rng,
		Job:     c.jobID(l.rng),
		Trace:   l.trace,
		Span:    spanID(l.trace, l.dispatches),
		Attempt: l.dispatches,
		State:   l.state.String(),
	}
}

// shardPath is the on-disk name of one range's journal, matching the
// `lbfarm -shard` convention so the files remain lbmerge-compatible.
func (c *Coordinator) shardPath(r Range) string {
	return filepath.Join(c.cfg.JournalDir, fmt.Sprintf("%s.shard%dof%d.jsonl", c.cfg.Spec.Name, r.Index+1, r.Count))
}

// jobID names the dispatchable job for a range. It is attempt-stable on
// purpose: a re-issue to a worker holding a partial journal for the
// same job resumes it instead of starting over.
func (c *Coordinator) jobID(r Range) string {
	return fmt.Sprintf("%.12s-shard%dof%d", c.specHash, r.Index+1, r.Count)
}

// recover seats already-fetched shard journals as journaled leases — a
// restarted coordinator resumes exactly where the files say it was. Any
// journal that does not verify against this campaign is a hard error:
// silently re-running it would mask a corrupted or foreign file.
func (c *Coordinator) recover() error {
	for _, l := range c.leases {
		path := c.shardPath(l.rng)
		if _, err := os.Stat(path); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		j, err := journal.Read(path)
		if err != nil {
			return fmt.Errorf("coord: recovering lease table: %w — delete the file to re-run its range", err)
		}
		if err := c.verifyShard(j, l.rng, path); err != nil {
			return fmt.Errorf("%w — delete the file to re-run its range", err)
		}
		l.state = StateJournaled
		l.path = path
		c.stats.Journaled++
		c.stats.RecoveredJournals++
		c.event(c.rangeEvent(EvShardRecovered, l))
		c.cfg.Logf("recovered shard %d/%d from %s", l.rng.Index+1, l.rng.Count, path)
		if c.cfg.OnShard != nil {
			c.cfg.OnShard(l.rng, j.Rows, true)
		}
	}
	return nil
}

// verifyShard checks a decoded journal is the complete, correct journal
// for one of this campaign's ranges.
func (c *Coordinator) verifyShard(j *journal.Journal, r Range, name string) error {
	if !j.HeaderOK {
		return fmt.Errorf("coord: %s has no intact header", name)
	}
	h := j.Header
	if h.SpecHash != c.specHash {
		return fmt.Errorf("coord: %s carries spec %.12s…, campaign is %.12s…", name, h.SpecHash, c.specHash)
	}
	if h.ShardIndex != r.Index || h.ShardCount != r.Count || h.Lo != r.Lo || h.Hi != r.Hi || h.Total != c.total {
		return fmt.Errorf("coord: %s covers shard %d/%d [%d,%d), expected %d/%d [%d,%d)",
			name, h.ShardIndex+1, h.ShardCount, h.Lo, h.Hi, r.Index+1, r.Count, r.Lo, r.Hi)
	}
	if !j.Complete() {
		return fmt.Errorf("coord: %s covers only %d of %d trials", name, len(j.Rows), r.Hi-r.Lo)
	}
	return nil
}

// Register adds (or replaces) a worker from a registration: the handle
// is built by cfg.Dial. A re-registration under a known ID replaces the
// handle — the worker restarted or moved — and any lease the old
// incarnation held is re-queued by the next status poll, which will
// find the job gone.
func (c *Coordinator) Register(id, addr string) {
	c.AddWorker(c.cfg.Dial(id, addr))
}

// AddWorker registers a ready-made worker handle.
func (c *Coordinator) AddWorker(w Worker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := w.ID()
	if prev, ok := c.workers[id]; ok {
		prev.w = w
		prev.lastSeen = time.Now()
		c.event(Event{Type: EvReRegistered, Worker: id})
		c.cfg.Logf("worker %s re-registered", id)
		return
	}
	c.workers[id] = &workerState{w: w, lastSeen: time.Now(), lease: -1}
	c.stats.Registered++
	c.event(Event{Type: EvRegistered, Worker: id})
	c.cfg.Logf("worker %s registered (%d in pool)", id, len(c.workers))
}

// Observe ingests a push heartbeat: freshens liveness and records the
// worker's self-reported status. State transitions happen only on the
// scheduler tick, so heartbeats can arrive at any rate without racing
// the lease table. Returns false for an unknown worker (it should
// re-register).
func (c *Coordinator) Observe(id string, st WorkerStatus) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[id]
	if !ok {
		return false
	}
	ws.lastSeen = time.Now()
	ws.status = st
	return true
}

// Workers returns the live pool size.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Stats returns a copy of the fault-handling counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Status snapshots the full control-plane state.
func (c *Coordinator) Status() StatusSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	s := StatusSnapshot{
		Name:     c.cfg.Spec.Name,
		SpecHash: c.specHash,
		Trials:   c.total,
		Splits:   c.cfg.Splits,
		Stats:    c.stats,
	}
	for _, l := range c.leases {
		ids := make([]string, 0, len(l.workers))
		for id := range l.workers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		s.Leases = append(s.Leases, LeaseView{
			Range:      l.rng,
			State:      l.state.String(),
			Trace:      l.trace,
			Workers:    ids,
			Dispatches: l.dispatches,
			Failures:   l.failures,
			LastErr:    l.lastErr,
			Path:       l.path,
		})
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ws := c.workers[id]
		s.Workers = append(s.Workers, WorkerView{
			ID:           id,
			Job:          ws.status.JobID,
			State:        string(ws.status.State),
			Done:         ws.status.Done,
			Total:        ws.status.Total,
			LastSeenMS:   now.Sub(ws.lastSeen).Milliseconds(),
			RangeLeased:  ws.lease,
			Unresponsive: now.Sub(ws.lastSeen) > c.cfg.LivenessTimeout/2,
		})
	}
	return s
}
