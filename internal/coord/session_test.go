package coord

// Registry + Session are the library seam lbcoord and lbfarmd -fleet
// share: these tests pin the pool semantics (seed on attach, forward
// while attached, stop at detach) and the session lifecycle (auto
// splits, default event-log placement, recovery through OnShard).

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
)

// newWorkerURL stands up a real WorkerServer behind real HTTP and
// returns its base URL — what a worker would advertise when
// registering.
func newWorkerURL(t *testing.T, id string, hooks Hooks) string {
	t.Helper()
	ws, err := NewWorkerServer(WorkerConfig{
		ID: id, Dir: t.TempDir(), Workers: 2, Hooks: hooks,
		Logf: func(format string, args ...any) { t.Logf("worker %s: "+format, append([]any{id}, args...)...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(ws.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}

// testOptions is testConfig's knob set projected onto Options — the
// fast-twitch settings a Session-based test wants.
func testOptions(splits int) Options {
	o := DefaultOptions()
	o.Splits = splits
	o.Liveness = 300 * time.Millisecond
	o.Poll = 20 * time.Millisecond
	o.BackoffBase = 10 * time.Millisecond
	o.BackoffMax = 50 * time.Millisecond
	o.MaxAttempts = 8
	o.NoSpeculate = true
	return o
}

// TestRegistryAttachSeedForwardDetach: a coordinator attached to a
// registry is seeded with the existing pool, receives later
// registrations, and stops receiving them after detach.
func TestRegistryAttachSeedForwardDetach(t *testing.T) {
	dialed := map[string]int{}
	var mu sync.Mutex
	reg := NewRegistry(func(id, addr string) Worker {
		mu.Lock()
		dialed[id]++
		mu.Unlock()
		return &fakeWorker{id: id}
	}, t.Logf)

	reg.Register("w1", "addr1")
	reg.Register("w2", "addr2")
	if reg.Size() != 2 {
		t.Fatalf("pool size = %d, want 2", reg.Size())
	}

	c, err := New(testConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	detach := reg.Attach(c)
	if got := c.Workers(); got != 2 {
		t.Fatalf("seeded workers = %d, want 2", got)
	}

	reg.Register("w3", "addr3")
	if got := c.Workers(); got != 3 {
		t.Fatalf("workers after live registration = %d, want 3", got)
	}
	// Re-registering a known worker at a new address re-dials it.
	reg.Register("w1", "addr1-moved")
	mu.Lock()
	redials := dialed["w1"]
	mu.Unlock()
	if redials < 2 {
		t.Fatalf("w1 dialed %d times, want >= 2 after address change", redials)
	}

	detach()
	reg.Register("w4", "addr4")
	if got := c.Workers(); got != 3 {
		t.Fatalf("workers after detach = %d, want 3 (no forwarding)", got)
	}
	if reg.Size() != 4 {
		t.Fatalf("registry size = %d, want 4", reg.Size())
	}

	// Observe reports known/unknown regardless of attachment.
	if !reg.Observe("w4", WorkerStatus{}) {
		t.Error("Observe(w4) = false, want known")
	}
	if reg.Observe("stranger", WorkerStatus{}) {
		t.Error("Observe(stranger) = true, want unknown")
	}
}

// TestRegistryRoutes: the HTTP registration passthrough feeds attached
// coordinators — the exact path lbfarm -worker -coord exercises against
// both lbcoord and lbfarmd -fleet.
func TestRegistryRoutes(t *testing.T) {
	reg := NewRegistry(func(id, addr string) Worker { return &fakeWorker{id: id} }, t.Logf)
	c, err := New(testConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Attach(c)()

	mux := http.NewServeMux()
	reg.Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/register", "application/json",
		strings.NewReader(`{"id":"w1","addr":"http://w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("register = %d, want 204", resp.StatusCode)
	}
	if got := c.Workers(); got != 1 {
		t.Fatalf("workers after HTTP registration = %d, want 1", got)
	}

	for body, want := range map[string]bool{
		`{"id":"w1"}`:       true,
		`{"id":"stranger"}`: false,
	} {
		resp, err := http.Post(srv.URL+"/v1/heartbeat", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ack api.HeartbeatAck
		if err := api.Decode(resp.Body, &ack); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ack.Known != want {
			t.Errorf("heartbeat %s → known=%v, want %v", body, ack.Known, want)
		}
	}

	// Malformed registrations answer with the shared envelope.
	resp, err = http.Post(srv.URL+"/v1/register", "application/json", strings.NewReader(`{"id":""}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty registration = %d, want 400", resp.StatusCode)
	}
}

// TestAutoSplits pins the shared auto-sizing rule.
func TestAutoSplits(t *testing.T) {
	for _, tc := range []struct {
		splits, workers, trials, want int
	}{
		{0, 0, 100, 8},   // empty pool: the floor
		{0, 1, 100, 8},   // small pool: still the floor
		{0, 3, 100, 12},  // 4 per worker
		{0, 3, 10, 10},   // capped at one per trial
		{6, 50, 100, 6},  // explicit splits win over the pool
		{200, 2, 24, 24}, // explicit splits still capped by trials
	} {
		if got := AutoSplits(tc.splits, tc.workers, tc.trials); got != tc.want {
			t.Errorf("AutoSplits(%d, %d, %d) = %d, want %d", tc.splits, tc.workers, tc.trials, got, tc.want)
		}
	}
}

// TestSessionEndToEnd: a session over a registry-fed pool runs the
// campaign to byte-identical artifacts, writes its event log at the
// default per-campaign path, and reports rows through OnShard.
func TestSessionEndToEnd(t *testing.T) {
	reg := NewRegistry(nil, t.Logf)
	for _, id := range []string{"w1", "w2"} {
		reg.Register(id, newWorkerURL(t, id, Hooks{}))
	}

	dir := t.TempDir()
	var mu sync.Mutex
	var live int
	sess, err := NewSession(SessionConfig{
		Spec:       testSpec(),
		Options:    testOptions(4),
		JournalDir: dir,
		Registry:   reg,
		OnShard: func(rng Range, rows []campaign.TrialResult, recovered bool) {
			mu.Lock()
			defer mu.Unlock()
			if recovered {
				t.Errorf("fresh run reported range %d as recovered", rng.Index)
			}
			live += len(rows)
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if sess.Splits() != 4 {
		t.Errorf("splits = %d, want 4", sess.Splits())
	}
	wantLog := filepath.Join(dir, "chaos"+EventLogSuffix)
	if sess.EventLogPath() != wantLog {
		t.Errorf("event log at %s, want %s", sess.EventLogPath(), wantLog)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := sess.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkArtifacts(t, res)
	if live != 24 {
		t.Errorf("OnShard delivered %d live rows, want 24", live)
	}
	if st := sess.Status(); st.Stats.Journaled != 4 {
		t.Errorf("status journaled = %d, want 4", st.Stats.Journaled)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, events, err := ReadEventLog(wantLog); err != nil {
		t.Fatal(err)
	} else if events[len(events)-1].Type != EvMerged {
		t.Errorf("last event = %s, want merged", events[len(events)-1].Type)
	}
}

// TestSessionResume: a second session over an interrupted session's
// journal dir recovers the landed shards (reported through OnShard with
// recovered=true), re-runs only the rest, and stays byte-identical —
// the seam FleetExecutor's drain/resume rides on.
func TestSessionResume(t *testing.T) {
	reg := NewRegistry(nil, t.Logf)
	slow := Hooks{SinkDelay: func(campaign.TrialResult) { time.Sleep(5 * time.Millisecond) }}
	reg.Register("w1", newWorkerURL(t, "w1", slow))
	dir := t.TempDir()

	s1, err := NewSession(SessionConfig{
		Spec: testSpec(), Options: testOptions(4), JournalDir: dir, Registry: reg, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = s1.Run(ctx1)
	}()
	waitFor(t, func() bool { return s1.Stats().Journaled >= 2 })
	cancel1()
	<-done
	landed := s1.Stats().Journaled
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	var recovered int
	s2, err := NewSession(SessionConfig{
		Spec: testSpec(), Options: testOptions(4), JournalDir: dir, Registry: reg,
		OnShard: func(rng Range, rows []campaign.TrialResult, rec bool) {
			if rec {
				recovered += len(rows)
			}
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().RecoveredJournals; got < landed {
		t.Errorf("recovered journals = %d, first session landed %d", got, landed)
	}
	if recovered < 2*6 {
		t.Errorf("OnShard recovered %d rows, want >= 12 (2 shards of 6)", recovered)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	res, err := s2.Run(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	checkArtifacts(t, res)

	// The reopened event log extends the first session's history.
	_, events, err := ReadEventLog(s2.EventLogPath())
	if err != nil {
		t.Fatal(err)
	}
	recEvents := 0
	for _, ev := range events {
		if ev.Type == EvShardRecovered {
			recEvents++
		}
	}
	if recEvents < 2 {
		t.Errorf("event log records %d shard recoveries, want >= 2", recEvents)
	}
}

// TestSessionEventLogDisabled: Options.EventLog "none" runs without a
// log file.
func TestSessionEventLogDisabled(t *testing.T) {
	opts := testOptions(2)
	opts.EventLog = "none"
	dir := t.TempDir()
	sess, err := NewSession(SessionConfig{Spec: testSpec(), Options: opts, JournalDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.EventLogPath() != "" {
		t.Errorf("event log path = %q, want empty", sess.EventLogPath())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), EventLogSuffix) {
			t.Errorf("unexpected event log %s", e.Name())
		}
	}
}
