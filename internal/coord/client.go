package coord

import (
	"context"
	"net/http"
	"net/url"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Client is the HTTP implementation of Worker: the coordinator's handle
// on one `lbfarm -worker` process, speaking the WorkerServer.Handler
// routes in the shared wire dialect (internal/api).
type Client struct {
	id   string
	base string
	http *http.Client
}

// NewClient builds a worker handle. addr is host:port or a full URL;
// per-call deadlines come from the caller's context.
func NewClient(id, addr string) *Client {
	return &Client{id: id, base: api.BaseURL(addr), http: &http.Client{}}
}

// ID implements Worker.
func (c *Client) ID() string { return c.id }

// do runs one request through api.Do and maps the protocol signals the
// lease machinery dispatches on: a not_found envelope means the worker
// does not hold the job (ErrUnknownJob) — a signal, not a transport
// failure.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	err := api.Do(ctx, c.http, method, c.base+path, body, out)
	if api.IsCode(err, api.CodeNotFound) {
		return ErrUnknownJob
	}
	return err
}

// Start implements Worker.
func (c *Client) Start(ctx context.Context, job Job) error {
	return c.do(ctx, http.MethodPost, "/v1/job/start", job, nil)
}

// Status implements Worker.
func (c *Client) Status(ctx context.Context, jobID string) (WorkerStatus, error) {
	var st WorkerStatus
	err := c.do(ctx, http.MethodGet, "/v1/job/status?id="+url.QueryEscape(jobID), nil, &st)
	return st, err
}

// Cancel implements Worker.
func (c *Client) Cancel(ctx context.Context, jobID string) error {
	return c.do(ctx, http.MethodPost, "/v1/job/cancel?id="+url.QueryEscape(jobID), nil, nil)
}

// Journal implements Worker.
func (c *Client) Journal(ctx context.Context, jobID string) ([]byte, error) {
	var data []byte
	err := c.do(ctx, http.MethodGet, "/v1/job/journal?id="+url.QueryEscape(jobID), nil, &data)
	return data, err
}

// Snapshot implements Worker: scrape the worker's /debug/vars surface
// and pull the obs snapshot out of it.
func (c *Client) Snapshot(ctx context.Context) (*obs.Snapshot, error) {
	var vars struct {
		Obs *obs.Snapshot `json:"obs"`
	}
	if err := c.do(ctx, http.MethodGet, "/debug/vars", nil, &vars); err != nil {
		return nil, err
	}
	return vars.Obs, nil
}

// Announce registers a worker with the coordinator and pushes
// heartbeats every interval until ctx ends. status supplies each
// beat's payload; a coordinator that has forgotten us (it restarted)
// triggers re-registration. Transient failures are logged and retried
// on the next beat — the worker outliving a coordinator blip is the
// whole point.
func Announce(ctx context.Context, coordURL, id, addr string, interval time.Duration, status func() WorkerStatus, logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	base := api.BaseURL(coordURL)
	hc := &http.Client{Timeout: interval}

	register := func() {
		if err := api.Do(ctx, hc, http.MethodPost, base+"/v1/register", api.Registration{ID: id, Addr: addr}, nil); err != nil {
			logf("registering with %s: %v (will retry)", base, err)
		} else {
			logf("registered with %s as %s (%s)", base, id, addr)
		}
	}
	register()

	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		var ack api.HeartbeatAck
		if err := api.Do(ctx, hc, http.MethodPost, base+"/v1/heartbeat", api.Registration{ID: id, Status: status()}, &ack); err != nil {
			logf("heartbeat: %v", err)
			continue
		}
		if !ack.Known {
			logf("coordinator does not know us — re-registering")
			register()
		}
	}
}
