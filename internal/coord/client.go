package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
)

// Client is the HTTP implementation of Worker: the coordinator's handle
// on one `lbfarm -worker` process, speaking the WorkerServer.Handler
// routes.
type Client struct {
	id   string
	base string
	http *http.Client
}

// NewClient builds a worker handle. addr is host:port or a full URL;
// per-call deadlines come from the caller's context.
func NewClient(id, addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{id: id, base: strings.TrimRight(addr, "/"), http: &http.Client{}}
}

// ID implements Worker.
func (c *Client) ID() string { return c.id }

// do runs one request and decodes the response into out (when non-nil).
// Non-2xx responses become errors carrying the server's message; 404
// maps to ErrUnknownJob, which is a protocol signal, not a transport
// failure.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusNotFound {
		return ErrUnknownJob
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var he httpError
		if json.Unmarshal(data, &he) == nil && he.Error != "" {
			return fmt.Errorf("coord: %s %s: %s", method, path, he.Error)
		}
		return fmt.Errorf("coord: %s %s: HTTP %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		*raw = data
		return nil
	}
	return json.Unmarshal(data, out)
}

// Start implements Worker.
func (c *Client) Start(ctx context.Context, job Job) error {
	return c.do(ctx, http.MethodPost, "/v1/job/start", job, nil)
}

// Status implements Worker.
func (c *Client) Status(ctx context.Context, jobID string) (WorkerStatus, error) {
	var st WorkerStatus
	err := c.do(ctx, http.MethodGet, "/v1/job/status?id="+url.QueryEscape(jobID), nil, &st)
	return st, err
}

// Cancel implements Worker.
func (c *Client) Cancel(ctx context.Context, jobID string) error {
	return c.do(ctx, http.MethodPost, "/v1/job/cancel?id="+url.QueryEscape(jobID), nil, nil)
}

// Journal implements Worker.
func (c *Client) Journal(ctx context.Context, jobID string) ([]byte, error) {
	var data []byte
	err := c.do(ctx, http.MethodGet, "/v1/job/journal?id="+url.QueryEscape(jobID), nil, &data)
	return data, err
}

// Snapshot implements Worker: scrape the worker's /debug/vars surface
// and pull the obs snapshot out of it.
func (c *Client) Snapshot(ctx context.Context) (*obs.Snapshot, error) {
	var vars struct {
		Obs *obs.Snapshot `json:"obs"`
	}
	if err := c.do(ctx, http.MethodGet, "/debug/vars", nil, &vars); err != nil {
		return nil, err
	}
	return vars.Obs, nil
}

// registration is the register/heartbeat wire payload.
type registration struct {
	ID     string       `json:"id"`
	Addr   string       `json:"addr,omitempty"`
	Status WorkerStatus `json:"status"`
}

// heartbeatAck tells the worker whether the coordinator knows it; an
// unknown worker re-registers (the coordinator restarted).
type heartbeatAck struct {
	Known bool `json:"known"`
}

// Announce registers a worker with the coordinator and pushes
// heartbeats every interval until ctx ends. status supplies each
// beat's payload; a coordinator that has forgotten us (it restarted)
// triggers re-registration. Transient failures are logged and retried
// on the next beat — the worker outliving a coordinator blip is the
// whole point.
func Announce(ctx context.Context, coordURL, id, addr string, interval time.Duration, status func() WorkerStatus, logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if !strings.Contains(coordURL, "://") {
		coordURL = "http://" + coordURL
	}
	coordURL = strings.TrimRight(coordURL, "/")
	hc := &http.Client{Timeout: interval}

	post := func(path string, v any, out any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordURL+path, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		if out != nil {
			return json.Unmarshal(body, out)
		}
		return nil
	}

	register := func() {
		if err := post("/v1/register", registration{ID: id, Addr: addr}, nil); err != nil {
			logf("registering with %s: %v (will retry)", coordURL, err)
		} else {
			logf("registered with %s as %s (%s)", coordURL, id, addr)
		}
	}
	register()

	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		var ack heartbeatAck
		if err := post("/v1/heartbeat", registration{ID: id, Status: status()}, &ack); err != nil {
			logf("heartbeat: %v", err)
			continue
		}
		if !ack.Known {
			logf("coordinator does not know us — re-registering")
			register()
		}
	}
}
