package coord

import (
	"flag"
	"time"
)

// Options is the coordinator knob set shared by every entry point that
// embeds one — cmd/lbcoord and lbfarmd -fleet bind the same flags with
// the same names and defaults via Bind, so operating either feels the
// same. The zero value is NOT usable; start from DefaultOptions.
type Options struct {
	// Splits is how many shard ranges to cut a sweep into; 0 auto-sizes
	// to 4 per registered worker (minimum 8), capped at the trial count.
	Splits int

	Liveness    time.Duration // declare a worker dead after this silence
	Poll        time.Duration // scheduler tick
	RPCTimeout  time.Duration // per-RPC deadline
	MaxAttempts int           // per-range failure budget

	BackoffBase   time.Duration
	BackoffMax    time.Duration
	BackoffJitter float64

	// EventLog is the checksummed JSONL event-log path; "" means the
	// per-campaign default <journal-dir>/<name>.events.jsonl, "none"
	// disables logging.
	EventLog string

	ScrapeInterval time.Duration

	NoSpeculate  bool
	SlowFactor   float64
	MinCompleted int
	StallWindow  time.Duration
}

// DefaultOptions mirrors the coordinator's built-in defaults.
func DefaultOptions() Options {
	return Options{
		Liveness:       10 * time.Second,
		Poll:           time.Second,
		RPCTimeout:     5 * time.Second,
		MaxAttempts:    5,
		BackoffBase:    500 * time.Millisecond,
		BackoffMax:     15 * time.Second,
		BackoffJitter:  0.2,
		ScrapeInterval: 5 * time.Second,
		SlowFactor:     2,
		MinCompleted:   1,
		StallWindow:    30 * time.Second,
	}
}

// Bind registers the shared coordinator flags on fs, with o's current
// values as defaults. Call on a DefaultOptions copy before fs.Parse.
func (o *Options) Bind(fs *flag.FlagSet) {
	fs.IntVar(&o.Splits, "splits", o.Splits, "shard ranges to cut each sweep into (0 = 4 per registered worker, minimum 8; more splits than workers lets the pool load-balance and re-issue cheaply)")
	fs.DurationVar(&o.Liveness, "liveness", o.Liveness, "declare a worker dead after this long without a heartbeat or successful poll")
	fs.DurationVar(&o.Poll, "poll", o.Poll, "scheduler tick: status polls, dispatch, and straggler checks")
	fs.DurationVar(&o.RPCTimeout, "rpc-timeout", o.RPCTimeout, "per-RPC deadline for worker calls")
	fs.IntVar(&o.MaxAttempts, "max-attempts", o.MaxAttempts, "per-range failure budget before the campaign fails loudly")
	fs.DurationVar(&o.BackoffBase, "backoff-base", o.BackoffBase, "first retry delay for a failed range (doubles per failure)")
	fs.DurationVar(&o.BackoffMax, "backoff-max", o.BackoffMax, "retry delay ceiling")
	fs.Float64Var(&o.BackoffJitter, "backoff-jitter", o.BackoffJitter, "symmetric random jitter fraction on retry delays")
	fs.StringVar(&o.EventLog, "eventlog", o.EventLog, "append every lease transition to this checksummed JSONL event log (default <journal-dir>/<name>"+EventLogSuffix+"; 'none' disables)")
	fs.DurationVar(&o.ScrapeInterval, "scrape", o.ScrapeInterval, "scrape worker telemetry snapshots this often for the live fleet view (negative disables)")
	fs.BoolVar(&o.NoSpeculate, "no-speculate", o.NoSpeculate, "disable speculative re-issue of straggling ranges")
	fs.Float64Var(&o.SlowFactor, "slow-factor", o.SlowFactor, "speculate a range projected past this multiple of the median completed-range duration")
	fs.IntVar(&o.MinCompleted, "min-completed", o.MinCompleted, "completed ranges required before the straggler baseline is trusted")
	fs.DurationVar(&o.StallWindow, "stall-window", o.StallWindow, "speculate a range whose worker's throughput timeline is flat for this long (0 disables the stall rule)")
}

// backoff projects the backoff knobs into the scheduler's policy type.
func (o Options) backoff() Backoff {
	return Backoff{Base: o.BackoffBase, Max: o.BackoffMax, Jitter: o.BackoffJitter}
}

// straggler projects the speculation knobs into the scheduler's policy
// type.
func (o Options) straggler() StragglerPolicy {
	return StragglerPolicy{
		Disabled:     o.NoSpeculate,
		MinCompleted: o.MinCompleted,
		SlowFactor:   o.SlowFactor,
		StallWindow:  o.StallWindow,
	}
}

// AutoSplits is the shared auto-sizing rule behind Splits == 0: four
// ranges per pooled worker so the fleet load-balances and re-issues
// cheaply, never fewer than 8, never more than one per trial.
func AutoSplits(splits, workers, trials int) int {
	if splits == 0 {
		splits = 4 * workers
		if splits < 8 {
			splits = 8
		}
	}
	if splits > trials {
		splits = trials
	}
	return splits
}
