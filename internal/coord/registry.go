package coord

import (
	"net/http"
	"sort"
	"sync"

	"repro/internal/api"
)

// Registry is the long-lived worker pool of a process that runs many
// campaigns: workers register and heartbeat against it once, and every
// Coordinator attached to it sees the full pool for the duration of its
// campaign. This is what lets lbfarmd accept worker registrations
// continuously while coordinators come and go per campaign — the
// registry outlives them all.
//
// A standalone lbcoord uses it too (one coordinator, attached for the
// whole process), so both entry points share one registration path.
type Registry struct {
	dial func(id, addr string) Worker
	logf func(format string, args ...any)

	mu       sync.Mutex
	workers  map[string]string // id → addr
	attached map[*Coordinator]struct{}
}

// NewRegistry builds an empty pool. dial builds a Worker handle from a
// registration (nil = the HTTP Client); logf receives the registry's
// event log (nil = silent).
func NewRegistry(dial func(id, addr string) Worker, logf func(format string, args ...any)) *Registry {
	if dial == nil {
		dial = func(id, addr string) Worker { return NewClient(id, addr) }
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Registry{
		dial:     dial,
		logf:     logf,
		workers:  map[string]string{},
		attached: map[*Coordinator]struct{}{},
	}
}

// Register adds (or refreshes) a worker and forwards a freshly dialed
// handle to every attached coordinator. Re-registering a known ID
// replaces its handle everywhere — the worker restarted or moved.
func (r *Registry) Register(id, addr string) {
	r.mu.Lock()
	known := r.workers[id] == addr
	r.workers[id] = addr
	n := len(r.workers)
	cs := r.attachedLocked()
	r.mu.Unlock()
	if !known {
		r.logf("fleet: worker %s registered at %s (%d in pool)", id, addr, n)
	}
	for _, c := range cs {
		c.AddWorker(r.dial(id, addr))
	}
}

// Observe forwards a push heartbeat to every attached coordinator and
// reports whether the registry knows the worker (an unknown worker
// should re-register).
func (r *Registry) Observe(id string, st WorkerStatus) bool {
	r.mu.Lock()
	_, known := r.workers[id]
	cs := r.attachedLocked()
	r.mu.Unlock()
	for _, c := range cs {
		c.Observe(id, st)
	}
	return known
}

// Attach seeds c with every registered worker and forwards future
// registrations and heartbeats to it until the returned detach func
// runs. Campaign-scoped: the fleet executor attaches at campaign start
// and detaches when the campaign ends.
func (r *Registry) Attach(c *Coordinator) (detach func()) {
	r.mu.Lock()
	ids := make([]string, 0, len(r.workers))
	for id := range r.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	seed := make(map[string]string, len(ids))
	for _, id := range ids {
		seed[id] = r.workers[id]
	}
	r.attached[c] = struct{}{}
	r.mu.Unlock()
	for _, id := range ids {
		c.AddWorker(r.dial(id, seed[id]))
	}
	return func() {
		r.mu.Lock()
		delete(r.attached, c)
		r.mu.Unlock()
	}
}

// Size is the registered pool size.
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.workers)
}

// Addrs returns the registered workers as a sorted id → addr map copy.
func (r *Registry) Addrs() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.workers))
	for id, addr := range r.workers {
		out[id] = addr
	}
	return out
}

// attachedLocked snapshots the attached coordinators; caller holds
// r.mu. Forwarding happens outside the lock so a coordinator's own
// locking never nests inside the registry's.
func (r *Registry) attachedLocked() []*Coordinator {
	cs := make([]*Coordinator, 0, len(r.attached))
	for c := range r.attached {
		cs = append(cs, c)
	}
	return cs
}

// Routes mounts the worker-facing registration API on mux — the same
// two endpoints lbcoord has always served, now shared by lbfarmd
// -fleet:
//
//	POST /v1/register   body: api.Registration {id, addr} — join (or
//	                    rejoin) the pool
//	POST /v1/heartbeat  body: api.Registration {id, status} →
//	                    api.HeartbeatAck — push liveness
//
// Registration is open by design: the registry trusts its network,
// like the rest of the lab-cluster workflow this automates.
func (r *Registry) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, req *http.Request) {
		var reg api.Registration
		if err := api.Decode(req.Body, &reg); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding registration: %v", err)
			return
		}
		if reg.ID == "" || reg.Addr == "" {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "registration needs id and addr")
			return
		}
		r.Register(reg.ID, reg.Addr)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, req *http.Request) {
		var reg api.Registration
		if err := api.Decode(req.Body, &reg); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding heartbeat: %v", err)
			return
		}
		api.WriteJSON(w, http.StatusOK, api.HeartbeatAck{Known: r.Observe(reg.ID, reg.Status)})
	})
}
