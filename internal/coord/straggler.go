package coord

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// StragglerPolicy decides when a leased range deserves a speculative
// twin. Speculation only ever runs on otherwise-idle workers after the
// pending queue is empty, so its cost is capacity that would have been
// wasted anyway — determinism makes the duplicate free (first complete
// journal wins).
type StragglerPolicy struct {
	// Disabled turns speculation off entirely.
	Disabled bool
	// MinCompleted is how many ranges must have completed before the
	// median baseline means anything (default 1).
	MinCompleted int
	// SlowFactor speculates a range whose projected total duration
	// exceeds this multiple of the median completed-range duration
	// (default 2).
	SlowFactor float64
	// StallWindow speculates a range whose worker's throughput
	// timeline shows no trial completions for this long, regardless of
	// projection (default: disabled when zero). This is the scrape-side
	// signal: a wedged worker that still answers heartbeats projects
	// nothing useful, but its timeline goes flat.
	StallWindow time.Duration
}

// projectTotal extrapolates a range's total duration from the elapsed
// tenancy time and its done/total progress. No progress yet (or no
// elapsed time) projects nothing.
func projectTotal(elapsed time.Duration, done, total int) (time.Duration, bool) {
	if done <= 0 || total <= 0 || elapsed <= 0 {
		return 0, false
	}
	if done > total {
		done = total
	}
	return time.Duration(float64(elapsed) * float64(total) / float64(done)), true
}

// medianDuration is the middle (lower-middle for even counts) of ds.
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// ShouldSpeculate applies the projection rule: enough completed ranges
// to trust the baseline, and a projection beyond SlowFactor × median.
func (p StragglerPolicy) ShouldSpeculate(projected time.Duration, completed []time.Duration) bool {
	if p.Disabled || projected <= 0 {
		return false
	}
	min := p.MinCompleted
	if min <= 0 {
		min = 1
	}
	if len(completed) < min {
		return false
	}
	factor := p.SlowFactor
	if factor <= 0 {
		factor = 2
	}
	med := medianDuration(completed)
	if med <= 0 {
		return false
	}
	return float64(projected) > factor*float64(med)
}

// Stalled applies the scrape rule: the worker's throughput timeline
// shows at least one completion ever, but none within the trailing
// window. A nil snapshot (worker runs without telemetry) is never
// stalled — absence of evidence stays absence of evidence.
func (p StragglerPolicy) Stalled(s *obs.Snapshot) bool {
	if p.Disabled || p.StallWindow <= 0 || s == nil || s.Timeline.WidthNS <= 0 {
		return false
	}
	lastEnd := int64(-1)
	for i, c := range s.Timeline.Counts {
		if c > 0 {
			lastEnd = int64(i+1) * s.Timeline.WidthNS
		}
	}
	if lastEnd < 0 {
		return false
	}
	return s.ElapsedNS-lastEnd > int64(p.StallWindow)
}

// computeStages and ioStages partition the pipeline stages for
// Classify; fold is coordinator-side and excluded.
var (
	computeStages = []string{"generate", "schedule", "balance", "simulate", "analyze_before", "analyze_after"}
	ioStages      = []string{"journal_append", "journal_fsync", "sink_wait"}
)

// Classify names a straggler's dominant cost centre from its scraped
// snapshot — "compute-bound (balance 61%)" vs "fsync-bound
// (journal_fsync 48%)" — so the speculation log line says not just that
// a worker is slow but why. journal_append covers the fsync it
// triggers, so the I/O side is counted by sink_wait plus the fsync wait
// rather than double-counting appends.
func Classify(s *obs.Snapshot) string {
	if s == nil || len(s.Stages) == 0 {
		return "unclassified (no snapshot)"
	}
	var computeNS, ioNS int64
	topName, topNS := "", int64(0)
	sum := func(names []string, acc *int64) {
		for _, n := range names {
			st, ok := s.Stages[n]
			if !ok {
				continue
			}
			*acc += st.TotalNS
			if st.TotalNS > topNS || (st.TotalNS == topNS && n < topName) {
				topName, topNS = n, st.TotalNS
			}
		}
	}
	sum(computeStages, &computeNS)
	sum(ioStages, &ioNS)
	total := computeNS + ioNS
	if total == 0 || topNS == 0 {
		return "unclassified (no stage time)"
	}
	kind := "compute-bound"
	for _, n := range ioStages {
		if n == topName {
			kind = "fsync-bound"
			break
		}
	}
	return fmt.Sprintf("%s (%s %.0f%%)", kind, topName, 100*float64(topNS)/float64(total))
}
