package coord

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestBackoffDelay(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	cases := []struct {
		failures int
		want     time.Duration
	}{
		{0, 0}, // no failures yet: retry immediately
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 800 * time.Millisecond},
		{5, time.Second}, // capped
		{50, time.Second},
	}
	for _, c := range cases {
		if got := b.Delay(c.failures, nil); got != c.want {
			t.Errorf("Delay(%d) = %v, want %v", c.failures, got, c.want)
		}
	}
	if got := (Backoff{}).Delay(3, nil); got != 0 {
		t.Errorf("zero Backoff delay = %v, want 0", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Minute, Jitter: 0.5}
	// rnd 0 is the extreme low draw, rnd→1 the extreme high.
	if got := b.Delay(1, func() float64 { return 0 }); got != 500*time.Millisecond {
		t.Errorf("low draw = %v, want 500ms", got)
	}
	if got := b.Delay(1, func() float64 { return 1 }); got != 1500*time.Millisecond {
		t.Errorf("high draw = %v, want 1.5s", got)
	}
	// Jitter can never push a delay negative.
	tiny := Backoff{Base: time.Nanosecond, Max: time.Nanosecond, Jitter: 10}
	if got := tiny.Delay(1, func() float64 { return 0 }); got < 0 {
		t.Errorf("jittered delay went negative: %v", got)
	}
}

func TestProjectTotal(t *testing.T) {
	if _, ok := projectTotal(time.Second, 0, 10); ok {
		t.Error("no progress should project nothing")
	}
	if got, ok := projectTotal(2*time.Second, 5, 10); !ok || got != 4*time.Second {
		t.Errorf("projectTotal(2s, 5/10) = %v %v, want 4s true", got, ok)
	}
	// done > total (replayed rows can overshoot transiently) clamps.
	if got, ok := projectTotal(time.Second, 20, 10); !ok || got != time.Second {
		t.Errorf("overshoot projection = %v %v, want 1s true", got, ok)
	}
}

func TestShouldSpeculate(t *testing.T) {
	p := StragglerPolicy{}
	base := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if !p.ShouldSpeculate(5*time.Second, base) {
		t.Error("5s projected vs 2s median should speculate")
	}
	if p.ShouldSpeculate(3*time.Second, base) {
		t.Error("3s projected vs 2s median is within 2x, no speculation")
	}
	if p.ShouldSpeculate(time.Hour, nil) {
		t.Error("no completed baseline, no speculation")
	}
	if (StragglerPolicy{Disabled: true}).ShouldSpeculate(time.Hour, base) {
		t.Error("disabled policy speculated")
	}
	strict := StragglerPolicy{MinCompleted: 5}
	if strict.ShouldSpeculate(time.Hour, base) {
		t.Error("MinCompleted 5 with 3 samples speculated")
	}
}

func TestStalled(t *testing.T) {
	p := StragglerPolicy{StallWindow: 100 * time.Millisecond}
	mk := func(elapsed time.Duration, counts ...int64) *obs.Snapshot {
		return &obs.Snapshot{
			ElapsedNS: int64(elapsed),
			Timeline:  obs.Timeline{WidthNS: int64(10 * time.Millisecond), Counts: counts},
		}
	}
	// Last completion in slot 0 ([0,10ms)), 500ms elapsed: stalled.
	if !p.Stalled(mk(500*time.Millisecond, 3)) {
		t.Error("flat timeline past the window not reported stalled")
	}
	// Completion 10ms ago: within the window.
	if p.Stalled(mk(60*time.Millisecond, 1, 0, 0, 0, 2)) {
		t.Error("recent completion reported stalled")
	}
	// No completions ever: never stalled (the range may still be warming up).
	if p.Stalled(mk(time.Hour)) {
		t.Error("empty timeline reported stalled")
	}
	if p.Stalled(nil) {
		t.Error("nil snapshot reported stalled")
	}
	if (StragglerPolicy{}).Stalled(mk(time.Hour, 1)) {
		t.Error("zero StallWindow reported stalled")
	}
}

func TestClassify(t *testing.T) {
	snap := func(stages map[string]int64) *obs.Snapshot {
		s := &obs.Snapshot{Stages: map[string]obs.StageStats{}}
		for name, ns := range stages {
			s.Stages[name] = obs.StageStats{TotalNS: ns, Count: 1}
		}
		return s
	}
	got := Classify(snap(map[string]int64{"balance": 600, "journal_fsync": 400}))
	if got != "compute-bound (balance 60%)" {
		t.Errorf("Classify compute case = %q", got)
	}
	got = Classify(snap(map[string]int64{"balance": 200, "journal_fsync": 800}))
	if got != "fsync-bound (journal_fsync 80%)" {
		t.Errorf("Classify fsync case = %q", got)
	}
	if got = Classify(nil); !strings.Contains(got, "unclassified") {
		t.Errorf("Classify(nil) = %q", got)
	}
	if got = Classify(snap(map[string]int64{})); !strings.Contains(got, "unclassified") {
		t.Errorf("Classify(empty) = %q", got)
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{StatePending: "pending", StateLeased: "leased",
		StateJournaled: "journaled", StateMerged: "merged", State(99): "unknown"}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
}

func TestNewValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(Config{Splits: 1, JournalDir: dir}); err == nil {
		t.Error("New without a spec succeeded")
	}
	if _, err := New(Config{Spec: testSpec(), Splits: 0, JournalDir: dir}); err == nil {
		t.Error("New with 0 splits succeeded")
	}
	if _, err := New(Config{Spec: testSpec(), Splits: 1 << 20, JournalDir: dir}); err == nil {
		t.Error("New with more splits than trials succeeded")
	}
	if _, err := New(Config{Spec: testSpec(), Splits: 2}); err == nil {
		t.Error("New without a journal dir succeeded")
	}
}

// TestRecoverRejectsForeignJournal: a corrupt or foreign file sitting at
// a shard path must fail coordinator construction loudly, not be
// silently re-run over.
func TestRecoverRejectsForeignJournal(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	bad := filepath.Join(dir, spec.Name+".shard1of2.jsonl")
	if err := os.WriteFile(bad, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{Spec: spec, Splits: 2, JournalDir: dir})
	if err == nil || !strings.Contains(err.Error(), "delete the file") {
		t.Fatalf("New over a foreign shard file: %v", err)
	}
}
