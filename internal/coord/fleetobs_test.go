package coord

// Fleet observability must be a pure observer: scraping worker
// snapshots, appending the event log, and writing fleetinfo may not
// change a byte of the artifacts. These tests run real chaos scenarios
// with every observability knob on and assert (a) byte-identity holds,
// (b) the event log reconstructs a killed range's full lease history,
// and (c) the merged fleet snapshot is the sum of the workers'.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// withEventLog wires a fresh event log into cfg and returns its path.
func withEventLog(t *testing.T, cfg *Config) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "chaos"+EventLogSuffix)
	elog, err := OpenEventLog(path, cfg.Spec.Name, "testhash", cfg.Splits)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := elog.Close(); err != nil {
			t.Errorf("event log: %v", err)
		}
	})
	cfg.EventLog = elog
	return path
}

// mustReadEvents reads and schema-validates an event log.
func mustReadEvents(t *testing.T, path string) (EventLogHeader, []Event) {
	t.Helper()
	hdr, events, err := ReadEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEvents(hdr, events); err != nil {
		t.Fatal(err)
	}
	return hdr, events
}

// TestFleetObsByteIdentity: the same campaign, engine parallelism 1, 2,
// and 8, with scraping, telemetry, and the event log all enabled — every
// merge must match the single-host baseline byte for byte.
func TestFleetObsByteIdentity(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(map[int]string{1: "w1", 2: "w2", 8: "w8"}[workers], func(t *testing.T) {
			cfg := testConfig(t, 4)
			cfg.ScrapeInterval = 30 * time.Millisecond
			withEventLog(t, &cfg)
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range []string{"w1", "w2"} {
				ws, err := NewWorkerServer(WorkerConfig{
					ID: id, Dir: t.TempDir(), Workers: workers, Obs: obs.NewSet(workers), Logf: t.Logf,
				})
				if err != nil {
					t.Fatal(err)
				}
				hs := httptest.NewServer(ws.Handler())
				t.Cleanup(hs.Close)
				c.AddWorker(NewClient(id, hs.URL))
			}

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := c.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			checkArtifacts(t, res)
		})
	}
}

// TestFleetInfoSumsWorkers: with speculation off every trial runs on
// exactly one worker, so the merged fleet snapshot's trial counters must
// sum to the campaign's trial count, and the fleetinfo must list every
// worker as alive.
func TestFleetInfoSumsWorkers(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.ScrapeInterval = 30 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.AddWorker(newHTTPWorker(t, "w1", Hooks{}, obs.NewSet(2)))
	c.AddWorker(newHTTPWorker(t, "w2", Hooks{}, obs.NewSet(2)))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	fi := c.FleetInfo(ctx)
	if fi.Obs == nil {
		t.Fatal("fleetinfo has no merged snapshot")
	}
	total := fi.Obs.Counters["trials_accepted"] + fi.Obs.Counters["trials_rejected"]
	if int(total) != len(res.Trials) {
		t.Errorf("fleet trial counters sum to %d, campaign ran %d trials", total, len(res.Trials))
	}
	if len(fi.Workers) != 2 {
		t.Fatalf("fleetinfo lists %d workers, want 2", len(fi.Workers))
	}
	for _, w := range fi.Workers {
		if !w.Alive {
			t.Errorf("worker %s reported dead after a clean run", w.ID)
		}
	}
	if fi.Coord["dispatches"] != int64(c.Stats().Dispatches) {
		t.Errorf("fleetinfo coord counters = %v, stats = %+v", fi.Coord, c.Stats())
	}

	// And the snapshot the /metrics endpoint renders from must agree.
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lbcoord_workers gauge",
		"lbcoord_dispatches_total",
		"lbfleet_trials_accepted_total",
		"# TYPE lbfleet_stage_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("coordinator /metrics output missing %q", want)
		}
	}
}

// TestEventLogKilledRange is the acceptance scenario: three workers,
// one SIGKILLed mid-range, and the event log alone must reconstruct the
// killed range's lease history — dispatch, burial, re-queue with
// backoff, re-dispatch, and the landing on a survivor.
func TestEventLogKilledRange(t *testing.T) {
	cfg := testConfig(t, 4)
	path := withEventLog(t, &cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.AddWorker(newHTTPWorker(t, "w1", Hooks{}, nil))
	c.AddWorker(newHTTPWorker(t, "w2", Hooks{KillAfter: 2}, nil))
	c.AddWorker(newHTTPWorker(t, "w3", Hooks{}, nil))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkArtifacts(t, res)

	hdr, events := mustReadEvents(t, path)
	if hdr.Splits != 4 {
		t.Fatalf("header splits = %d, want 4", hdr.Splits)
	}

	// Find the burial that carried a lease — that is the killed range.
	killed := -1
	for _, ev := range events {
		if ev.Type == EvWorkerDead && ev.Range != nil {
			killed = ev.Range.Index
			break
		}
	}
	if killed < 0 {
		t.Fatal("no worker_dead event with a leased range in the log")
	}

	hist := RangeHistory(events, killed)
	var kinds []string
	for _, ev := range hist {
		kinds = append(kinds, string(ev.Type))
	}
	got := strings.Join(kinds, ",")
	want := []EventType{EvDispatch, EvWorkerDead, EvRequeue, EvDispatch, EvShardLanded}
	i := 0
	for _, ev := range hist {
		if i < len(want) && ev.Type == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("killed range %d history = [%s], want the subsequence dispatch,worker_dead,requeue,dispatch,shard_landed", killed, got)
	}

	// The trace ID is range-stable across attempts; the span advances.
	var spans []string
	trace := ""
	for _, ev := range hist {
		if trace == "" {
			trace = ev.Trace
		} else if ev.Trace != trace {
			t.Fatalf("trace changed mid-range: %s then %s", trace, ev.Trace)
		}
		if ev.Type == EvDispatch {
			spans = append(spans, ev.Span)
		}
	}
	if len(spans) < 2 || spans[0] == spans[len(spans)-1] {
		t.Errorf("dispatch spans = %v, want distinct per attempt", spans)
	}
	for _, s := range spans {
		if !strings.HasPrefix(s, trace+"-") {
			t.Errorf("span %s does not extend trace %s", s, trace)
		}
	}

	// Every campaign log ends with the merge.
	if events[len(events)-1].Type != EvMerged {
		t.Errorf("last event is %s, want merged", events[len(events)-1].Type)
	}
}
