package coord

import (
	"net/http"

	"repro/internal/api"
	"repro/internal/obs"
)

// Handler serves the coordinator's control API in the shared wire
// dialect (internal/api — JSON bodies, the {"error":{code,message}}
// envelope on every failure):
//
//	POST /v1/register   body: api.Registration {id, addr} — join (or
//	                    rejoin) the pool
//	POST /v1/heartbeat  body: api.Registration {id, status} →
//	                    api.HeartbeatAck — push liveness
//	GET  /v1/status     → StatusSnapshot — the live lease table,
//	                      worker pool, and fault counters
//	GET  /metrics       → Prometheus text exposition: lbcoord_ control
//	                      gauges/counters plus the merged lbfleet_
//	                      campaign snapshot
//	GET  /debug/vars    → {"obs": merged fleet snapshot, "lbcoord":
//	                      status} — the same live-debug surface every
//	                      other server mounts (obs.RegisterDebug)
//	GET  /debug/pprof/  → net/http/pprof profile family
//
// Registration is open by design: the coordinator trusts its network,
// like the rest of the lab-cluster workflow this automates.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		var reg api.Registration
		if err := api.Decode(r.Body, &reg); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding registration: %v", err)
			return
		}
		if reg.ID == "" || reg.Addr == "" {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "registration needs id and addr")
			return
		}
		c.Register(reg.ID, reg.Addr)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var reg api.Registration
		if err := api.Decode(r.Body, &reg); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding heartbeat: %v", err)
			return
		}
		api.WriteJSON(w, http.StatusOK, api.HeartbeatAck{Known: c.Observe(reg.ID, reg.Status)})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, c.Status())
	})
	obs.RegisterDebug(mux, c.WriteMetrics, map[string]func() any{
		"obs":     func() any { return c.FleetSnapshot() },
		"lbcoord": func() any { return c.Status() },
	})
	return mux
}
