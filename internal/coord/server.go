package coord

import (
	"net/http"

	"repro/internal/api"
	"repro/internal/obs"
)

// Handler serves a standalone coordinator's control API in the shared
// wire dialect (internal/api — JSON bodies, the
// {"error":{code,message}} envelope on every failure):
//
//	POST /v1/register   body: api.Registration {id, addr} — join (or
//	                    rejoin) the pool
//	POST /v1/heartbeat  body: api.Registration {id, status} →
//	                    api.HeartbeatAck — push liveness
//	GET  /v1/status     → StatusSnapshot — the live lease table,
//	                      worker pool, and fault counters
//	GET  /metrics       → Prometheus text exposition: lbcoord_ control
//	                      gauges/counters plus the merged lbfleet_
//	                      campaign snapshot
//	GET  /debug/vars    → {"obs": merged fleet snapshot, "lbcoord":
//	                      status} — the same live-debug surface every
//	                      other server mounts (obs.RegisterDebug)
//	GET  /debug/pprof/  → net/http/pprof profile family
//
// The registration endpoints are Registry.Routes over a private
// single-coordinator registry — the exact code path lbfarmd -fleet
// serves, so a worker cannot tell the two apart. Registration is open
// by design: the coordinator trusts its network, like the rest of the
// lab-cluster workflow this automates.
func (c *Coordinator) Handler() http.Handler {
	reg := NewRegistry(c.cfg.Dial, nil)
	reg.Attach(c) // never detached: the registry dies with the handler
	mux := http.NewServeMux()
	reg.Routes(mux)
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, c.Status())
	})
	obs.RegisterDebug(mux, c.WriteMetrics, map[string]func() any{
		"obs":     func() any { return c.FleetSnapshot() },
		"lbcoord": func() any { return c.Status() },
	})
	return mux
}
