package coord

import (
	"encoding/json"
	"net/http"

	"repro/internal/obs"
)

// Handler serves the coordinator's control API:
//
//	POST /v1/register   body: {id, addr}  — join (or rejoin) the pool
//	POST /v1/heartbeat  body: {id, status} → {known} — push liveness
//	GET  /v1/status     → StatusSnapshot — the live lease table,
//	                      worker pool, and fault counters
//	GET  /metrics       → Prometheus text exposition: lbcoord_ control
//	                      gauges/counters plus the merged lbfleet_
//	                      campaign snapshot
//
// Registration is open by design: the coordinator trusts its network,
// like the rest of the lab-cluster workflow this automates.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		var reg registration
		if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if reg.ID == "" || reg.Addr == "" {
			http.Error(w, "registration needs id and addr", http.StatusBadRequest)
			return
		}
		c.Register(reg.ID, reg.Addr)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var reg registration
		if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, heartbeatAck{Known: c.Observe(reg.ID, reg.Status)})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		_ = c.WriteMetrics(w)
	})
	return mux
}
