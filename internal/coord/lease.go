package coord

import (
	"math/rand/v2"
	"time"

	"repro/internal/api"
)

// State is a range's position in the lease lifecycle.
type State int

const (
	// StatePending: waiting for an idle worker (or for backoff).
	StatePending State = iota
	// StateLeased: running on at least one worker.
	StateLeased
	// StateJournaled: a complete, validated shard journal is on the
	// coordinator's disk.
	StateJournaled
	// StateMerged: folded into the final artifact.
	StateMerged
)

var stateNames = [...]string{"pending", "leased", "journaled", "merged"}

// String returns the state's lifecycle name.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return "unknown"
	}
	return stateNames[s]
}

// Range is one dispatchable slice of the campaign: shard Index of Count
// under journal.ShardRange, covering trials [Lo,Hi). The wire type
// lives in internal/api (it travels inside api.Job).
type Range = api.Range

// Backoff is the retry policy for failed range attempts: exponential
// from Base, capped at Max, with ±Jitter fraction of symmetric random
// noise so a fleet of re-queued ranges does not stampede one surviving
// worker in lockstep.
type Backoff struct {
	Base   time.Duration `json:"base"`
	Max    time.Duration `json:"max"`
	Jitter float64       `json:"jitter"`
}

// DefaultBackoff is the coordinator's retry curve: 500ms doubling to a
// 15s ceiling, ±20% jitter.
func DefaultBackoff() Backoff {
	return Backoff{Base: 500 * time.Millisecond, Max: 15 * time.Second, Jitter: 0.2}
}

// Delay returns the wait before retry number `failures` (1-based: the
// delay after the first failure is Base). rnd supplies the jitter draw
// in [0,1); nil disables jitter, which is what the deterministic tests
// pass.
func (b Backoff) Delay(failures int, rnd func() float64) time.Duration {
	if b.Base <= 0 || failures < 1 {
		return 0
	}
	d := b.Base
	for i := 1; i < failures; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 && rnd != nil {
		d += time.Duration((rnd()*2 - 1) * b.Jitter * float64(d))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// jitterDraw is the default jitter source.
func jitterDraw() float64 { return rand.Float64() }

// lease is one range's scheduling state. All fields are guarded by the
// coordinator's mutex.
type lease struct {
	rng   Range
	state State

	// trace is the range-stable trace ID (traceID), minted once at
	// construction and echoed on every event, dispatch, and sidecar.
	trace string

	// workers maps the IDs currently running this range (primary plus
	// any speculative twin) to the dispatched job ID.
	workers map[string]string

	// dispatches counts every Start (speculation included); failures
	// counts failed attempts and drives the backoff; notBefore gates
	// re-dispatch; lastErr names the most recent failure for the
	// exhausted-attempts fatal.
	dispatches int
	failures   int
	notBefore  time.Time
	lastErr    string

	// started is when the current tenancy began (first worker attached
	// after the last requeue) — the straggler projection baseline.
	started time.Time

	// speculated marks that this tenancy already got a speculative
	// twin; reset on requeue.
	speculated bool

	// path is the shard journal's location once journaled; dur the
	// tenancy's wall-clock duration (the straggler baseline sample).
	path string
	dur  time.Duration
}

// LeaseView is the exported snapshot of one lease for status surfaces
// and tests (wire type api.CoordLease).
type LeaseView = api.CoordLease
