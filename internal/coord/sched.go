package coord

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/campaign"
	"repro/internal/journal"
	"repro/internal/obs"
)

// Run drives the campaign to completion: each Poll tick it polls worker
// status, re-queues the leases of dead or job-less workers, fetches and
// validates completed shard journals, dispatches pending ranges to idle
// workers, and speculatively re-issues stragglers. It returns the merged
// result — byte-identical to an uninterrupted single-host run — or the
// first fatal error (a range out of attempts, or ctx canceled).
//
// Run may be called with zero workers registered; it waits for
// registrations (typically arriving through the HTTP Server) and adapts
// as the pool grows and shrinks.
func (c *Coordinator) Run(ctx context.Context) (*campaign.Result, error) {
	tick := time.NewTicker(c.cfg.Poll)
	defer tick.Stop()
	for {
		c.step(ctx)

		c.mu.Lock()
		fatal := c.fatal
		done := true
		for _, l := range c.leases {
			if l.state != StateJournaled {
				done = false
				break
			}
		}
		c.mu.Unlock()

		if fatal != nil {
			c.drain()
			return nil, fatal
		}
		if done {
			return c.merge()
		}
		select {
		case <-ctx.Done():
			c.drain()
			return nil, ctx.Err()
		case <-tick.C:
		}
	}
}

// drain best-effort cancels every running job so workers stop burning
// cycles on a campaign that is over. The parent ctx is typically already
// dead here, so each cancel gets its own deadline.
func (c *Coordinator) drain() {
	type target struct {
		w   Worker
		job string
	}
	var ts []target
	c.mu.Lock()
	for _, l := range c.leases {
		if l.state != StateLeased {
			continue
		}
		for id, jobID := range l.workers {
			if ws, ok := c.workers[id]; ok {
				ts = append(ts, target{ws.w, jobID})
			}
		}
	}
	c.mu.Unlock()
	for _, t := range ts {
		cctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
		_ = t.w.Cancel(cctx, t.job)
		cancel()
	}
}

// merge folds the journaled shards into the final result and marks the
// leases merged.
func (c *Coordinator) merge() (*campaign.Result, error) {
	paths := make([]string, len(c.leases))
	for i, l := range c.leases {
		paths[i] = l.path
	}
	res, err := journal.Merge(paths)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	for _, l := range c.leases {
		l.state = StateMerged
	}
	c.event(Event{Type: EvMerged, Detail: fmt.Sprintf("%d shards, %d trials", len(paths), len(res.Trials))})
	c.mu.Unlock()
	c.cfg.Logf("merged %d shards: %d trials", len(paths), len(res.Trials))
	return res, nil
}

// step is one scheduler tick. RPCs run outside the lock; every lease
// transition happens under it, on this goroutine only — heartbeats
// merely freshen liveness, so there is no second writer to race.
func (c *Coordinator) step(ctx context.Context) {
	c.poll(ctx)
	fetches := c.transition()
	c.collect(ctx, fetches)
	for _, s := range c.assign() {
		c.dispatch(ctx, s)
	}
	c.speculate(ctx)
	c.scrape(ctx)
}

// poll asks every worker with a lease for job status (doubling as a
// liveness probe); idle workers are probed too so a dead idle worker is
// dropped from the pool rather than assigned work forever.
func (c *Coordinator) poll(ctx context.Context) {
	type probe struct {
		id    string
		w     Worker
		jobID string
	}
	var ps []probe
	c.mu.Lock()
	for id, ws := range c.workers {
		jobID := ""
		if ws.lease >= 0 {
			jobID = c.leases[ws.lease].workers[id]
		}
		ps = append(ps, probe{id, ws.w, jobID})
	}
	c.mu.Unlock()

	for _, p := range ps {
		cctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
		st, err := p.w.Status(cctx, p.jobID)
		cancel()

		c.mu.Lock()
		ws, ok := c.workers[p.id]
		if !ok {
			c.mu.Unlock()
			continue
		}
		switch {
		case err == nil:
			ws.lastSeen = time.Now()
			ws.status = st
		case errors.Is(err, ErrUnknownJob):
			// Alive but amnesiac: it restarted and lost the assignment.
			ws.lastSeen = time.Now()
			ws.status = WorkerStatus{}
			if ws.lease >= 0 {
				ev := c.rangeEvent(EvAmnesia, c.leases[ws.lease])
				ev.Worker = p.id
				ev.Detail = "worker restarted and lost the job"
				c.event(ev)
				c.cfg.Logf("worker %s lost job %s — re-queueing range %d", p.id, p.jobID, ws.lease)
				c.detach(ws.lease, p.id, "worker lost the job")
				ws.lease = -1
			}
		default:
			// RPC failure: say nothing, let the liveness timeout decide —
			// a push heartbeat may still be keeping this worker alive.
		}
		c.mu.Unlock()
	}
}

// fetchOrder names one done job whose journal should be collected.
type fetchOrder struct {
	leaseIdx int
	id       string
	w        Worker
	jobID    string
}

// transition applies the post-poll bookkeeping under the lock: dead
// workers are buried (their leases re-queued), failed jobs re-queued,
// and done jobs turned into fetch orders.
func (c *Coordinator) transition() []fetchOrder {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()

	for id, ws := range c.workers {
		if now.Sub(ws.lastSeen) <= c.cfg.LivenessTimeout {
			continue
		}
		c.stats.DeadWorkers++
		ev := Event{Type: EvWorkerDead, Worker: id,
			Detail: fmt.Sprintf("silent for %v", now.Sub(ws.lastSeen).Round(time.Millisecond))}
		if ws.lease >= 0 {
			l := c.leases[ws.lease]
			rng := l.rng
			ev.Range, ev.Job, ev.Trace = &rng, c.jobID(l.rng), l.trace
			ev.Span, ev.Attempt = spanID(l.trace, l.dispatches), l.dispatches
		}
		c.event(ev)
		c.cfg.Logf("worker %s silent for %v — declaring dead (%d workers remain)",
			id, now.Sub(ws.lastSeen).Round(time.Millisecond), len(c.workers)-1)
		stub := obs.FleetWorker{ID: id}
		if ws.snap != nil {
			stub.ElapsedNS = ws.snap.ElapsedNS
		}
		c.gone = append(c.gone, stub)
		if ws.lease >= 0 {
			c.detach(ws.lease, id, "worker died")
		}
		delete(c.workers, id)
	}

	var fetches []fetchOrder
	for id, ws := range c.workers {
		if ws.lease < 0 {
			continue
		}
		l := c.leases[ws.lease]
		jobID := l.workers[id]
		if ws.status.JobID != jobID {
			continue // stale report from before the dispatch
		}
		switch ws.status.State {
		case JobDone:
			if l.state == StateLeased {
				fetches = append(fetches, fetchOrder{ws.lease, id, ws.w, jobID})
			}
		case JobFailed:
			ev := c.rangeEvent(EvJobFailed, l)
			ev.Worker, ev.Detail = id, ws.status.Err
			c.event(ev)
			c.cfg.Logf("worker %s failed job %s: %s", id, jobID, ws.status.Err)
			c.detach(ws.lease, id, ws.status.Err)
			ws.lease = -1
		}
	}
	return fetches
}

// detach removes a worker from a lease (under the lock). When the last
// tenant leaves a still-leased range, the attempt failed: the range
// re-queues behind its backoff, or the campaign turns fatal once the
// attempt budget is spent.
func (c *Coordinator) detach(leaseIdx int, id, reason string) {
	l := c.leases[leaseIdx]
	delete(l.workers, id)
	if len(l.workers) > 0 || l.state != StateLeased {
		return
	}
	l.failures++
	l.lastErr = reason
	l.speculated = false
	if l.failures >= c.cfg.MaxAttempts {
		l.state = StatePending
		c.fatal = fmt.Errorf("coord: range %d/%d [%d,%d) failed %d attempts, last error: %s",
			l.rng.Index+1, l.rng.Count, l.rng.Lo, l.rng.Hi, l.failures, reason)
		ev := c.rangeEvent(EvFatal, l)
		ev.Attempt, ev.Detail = l.failures, c.fatal.Error()
		c.event(ev)
		return
	}
	delay := c.cfg.Backoff.Delay(l.failures, c.cfg.jitter)
	l.state = StatePending
	l.notBefore = time.Now().Add(delay)
	c.stats.Requeues++
	ev := c.rangeEvent(EvRequeue, l)
	ev.Worker, ev.Attempt, ev.BackoffNS, ev.Detail = id, l.failures, int64(delay), reason
	c.event(ev)
	c.cfg.Logf("range %d/%d re-queued (failure %d/%d, retry in %v): %s",
		l.rng.Index+1, l.rng.Count, l.failures, c.cfg.MaxAttempts, delay.Round(time.Millisecond), reason)
}

// collect fetches each done job's journal, validates it byte-for-byte
// (decode, header check, completeness) before trusting it, lands it
// under the shard path via tmp+rename, and seats the lease as
// journaled. The slower twin of a speculated range loses the race here
// and is discarded and canceled.
func (c *Coordinator) collect(ctx context.Context, fetches []fetchOrder) {
	for _, f := range fetches {
		cctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
		data, err := f.w.Journal(cctx, f.jobID)
		cancel()
		l := c.leases[f.leaseIdx]
		if err != nil {
			c.mu.Lock()
			c.cfg.Logf("fetching journal of %s from %s: %v", f.jobID, f.id, err)
			c.detach(f.leaseIdx, f.id, fmt.Sprintf("journal fetch: %v", err))
			if ws, ok := c.workers[f.id]; ok {
				ws.lease = -1
			}
			c.mu.Unlock()
			continue
		}
		path := c.shardPath(l.rng)
		j, err := journal.DecodeBytes(path, data)
		if err == nil {
			err = c.verifyShard(j, l.rng, path)
		}
		if err != nil {
			// A worker handing back a corrupt or wrong journal is a failed
			// attempt like any other; the range re-runs elsewhere.
			c.mu.Lock()
			ev := c.rangeEvent(EvJournalRejected, l)
			ev.Worker, ev.Detail = f.id, err.Error()
			c.event(ev)
			c.cfg.Logf("rejecting journal of %s from %s: %v", f.jobID, f.id, err)
			c.detach(f.leaseIdx, f.id, fmt.Sprintf("invalid journal: %v", err))
			if ws, ok := c.workers[f.id]; ok {
				ws.lease = -1
			}
			c.mu.Unlock()
			continue
		}

		c.mu.Lock()
		if l.state != StateLeased {
			// The twin already landed this range: first journal wins.
			c.stats.DuplicatesDiscarded++
			ev := c.rangeEvent(EvDuplicateDiscard, l)
			ev.Worker, ev.Detail = f.id, "slower twin's journal discarded"
			c.event(ev)
			c.cfg.Logf("range %d/%d: duplicate journal from %s discarded", l.rng.Index+1, l.rng.Count, f.id)
			delete(l.workers, f.id)
			if ws, ok := c.workers[f.id]; ok {
				ws.lease = -1
			}
			c.mu.Unlock()
			continue
		}
		c.mu.Unlock()

		// Land outside the lock: tmp+rename so a coordinator crash can
		// never leave a half-written shard to poison recovery.
		tmp := path + ".tmp"
		err = os.WriteFile(tmp, data, 0o644)
		if err == nil {
			err = os.Rename(tmp, path)
		}
		if err != nil {
			os.Remove(tmp)
			c.mu.Lock()
			c.fatal = fmt.Errorf("coord: landing %s: %w", filepath.Base(path), err)
			ev := c.rangeEvent(EvFatal, l)
			ev.Detail = c.fatal.Error()
			c.event(ev)
			c.mu.Unlock()
			return
		}

		c.mu.Lock()
		l.state = StateJournaled
		l.path = path
		if !l.started.IsZero() {
			l.dur = time.Since(l.started)
		}
		c.stats.Journaled++
		ev := c.rangeEvent(EvShardLanded, l)
		ev.Worker = f.id
		if l.dur > 0 {
			ev.Detail = fmt.Sprintf("tenancy %v", l.dur.Round(time.Millisecond))
		}
		c.event(ev)
		losers := make(map[string]string, len(l.workers))
		for id, jobID := range l.workers {
			if id == f.id {
				continue
			}
			if ws, ok := c.workers[id]; ok {
				losers[id] = jobID
				ws.lease = -1
			}
		}
		delete(l.workers, f.id)
		for id := range losers {
			delete(l.workers, id)
		}
		if ws, ok := c.workers[f.id]; ok {
			ws.lease = -1
		}
		c.cfg.Logf("range %d/%d journaled by %s (%d/%d done)",
			l.rng.Index+1, l.rng.Count, f.id, c.stats.Journaled, len(c.leases))
		c.mu.Unlock()

		// The shard is durable: hand its rows to the embedding layer.
		// Outside the lock — the callback may publish events or take its
		// own locks — and on this goroutine only, so calls never overlap.
		if c.cfg.OnShard != nil {
			c.cfg.OnShard(l.rng, j.Rows, false)
		}

		// Cancel the losing twin(s) so they stop burning a worker.
		for id, jobID := range losers {
			c.mu.Lock()
			ws, ok := c.workers[id]
			c.mu.Unlock()
			if !ok {
				continue
			}
			cctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
			_ = ws.w.Cancel(cctx, jobID)
			cancel()
		}
	}
}

// startOrder names one dispatch: run job on w for lease leaseIdx.
type startOrder struct {
	leaseIdx int
	id       string
	w        Worker
	job      Job
}

// assign pairs pending, backoff-expired ranges with idle workers (under
// the lock) and returns the dispatch orders. Lowest range index first —
// deterministic and friendly to tail-watching humans.
func (c *Coordinator) assign() []startOrder {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()

	var idle []string
	for id, ws := range c.workers {
		if ws.lease < 0 {
			idle = append(idle, id)
		}
	}
	sort.Strings(idle)

	var orders []startOrder
	for i, l := range c.leases {
		if len(idle) == 0 {
			break
		}
		if l.state != StatePending || now.Before(l.notBefore) {
			continue
		}
		id := idle[0]
		idle = idle[1:]
		ws := c.workers[id]
		job := Job{ID: c.jobID(l.rng), Spec: c.cfg.Spec, Range: l.rng}
		l.state = StateLeased
		l.workers[id] = job.ID
		l.started = now
		l.dispatches++
		job.Trace, job.Span = l.trace, spanID(l.trace, l.dispatches)
		ws.lease = i
		c.stats.Dispatches++
		ev := c.rangeEvent(EvDispatch, l)
		ev.Worker = id
		c.event(ev)
		orders = append(orders, startOrder{i, id, ws.w, job})
	}
	return orders
}

// dispatch performs one Start RPC; a refusal is a failed attempt.
func (c *Coordinator) dispatch(ctx context.Context, s startOrder) {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	err := s.w.Start(cctx, s.job)
	cancel()
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[s.leaseIdx]
	if err != nil {
		c.cfg.Logf("dispatching %s to %s: %v", s.job.ID, s.id, err)
		c.detach(s.leaseIdx, s.id, fmt.Sprintf("dispatch: %v", err))
		if ws, ok := c.workers[s.id]; ok {
			ws.lease = -1
		}
		return
	}
	c.cfg.Logf("range %d/%d [%d,%d) → %s (attempt %d)",
		l.rng.Index+1, l.rng.Count, l.rng.Lo, l.rng.Hi, s.id, l.dispatches)
}

// speculate re-issues straggling leased ranges to idle workers. It only
// runs when no pending range wants the capacity, so speculation never
// starves first-time work; each tenancy gets at most one twin.
func (c *Coordinator) speculate(ctx context.Context) {
	if c.cfg.Straggler.Disabled {
		return
	}

	type candidate struct {
		leaseIdx  int
		primary   string // the worker to scrape
		projected time.Duration
	}
	var (
		cands     []candidate
		idle      []string
		completed []time.Duration
	)
	c.mu.Lock()
	now := time.Now()
	for _, l := range c.leases {
		if l.state == StatePending && !now.Before(l.notBefore) {
			c.mu.Unlock()
			return // pending work outranks speculation
		}
		if l.state == StateJournaled || l.state == StateMerged {
			if l.dur > 0 {
				completed = append(completed, l.dur)
			}
		}
	}
	for id, ws := range c.workers {
		if ws.lease < 0 {
			idle = append(idle, id)
		}
	}
	sort.Strings(idle)
	if len(idle) == 0 {
		c.mu.Unlock()
		return
	}
	for i, l := range c.leases {
		if l.state != StateLeased || l.speculated || l.started.IsZero() {
			continue
		}
		var primary string
		for id := range l.workers {
			if primary == "" || id < primary {
				primary = id
			}
		}
		ws, ok := c.workers[primary]
		if !ok {
			continue
		}
		projected, _ := projectTotal(now.Sub(l.started), ws.status.Done, ws.status.Total)
		cands = append(cands, candidate{i, primary, projected})
	}
	c.mu.Unlock()

	for _, cand := range cands {
		if len(idle) == 0 {
			return
		}
		slow := c.cfg.Straggler.ShouldSpeculate(cand.projected, completed)
		why := fmt.Sprintf("projected %v vs median %v", cand.projected.Round(time.Millisecond), medianDuration(completed).Round(time.Millisecond))

		// The scrape is the second opinion: a stalled throughput timeline
		// speculates even when the projection is inconclusive, and either
		// way the snapshot classifies what the straggler is bound on.
		// This shares the fleet scrape cache — a snapshot fresher than
		// the scrape interval is reused instead of re-fetched.
		var diag string
		if snap := c.freshSnapshot(ctx, cand.primary, c.cfg.ScrapeInterval); snap != nil {
			diag = Classify(snap)
			if !slow && c.cfg.Straggler.Stalled(snap) {
				slow = true
				why = fmt.Sprintf("throughput stalled > %v", c.cfg.Straggler.StallWindow)
			}
		}
		if !slow {
			continue
		}

		c.mu.Lock()
		l := c.leases[cand.leaseIdx]
		if l.state != StateLeased || l.speculated {
			c.mu.Unlock()
			continue
		}
		var tid string
		for len(idle) > 0 && tid == "" {
			id := idle[0]
			idle = idle[1:]
			if tw, ok := c.workers[id]; ok && tw.lease < 0 {
				tid = id
			}
		}
		if tid == "" {
			c.mu.Unlock()
			return
		}
		tw := c.workers[tid]
		job := Job{ID: c.jobID(l.rng), Spec: c.cfg.Spec, Range: l.rng}
		l.workers[tid] = job.ID
		l.speculated = true
		l.dispatches++
		job.Trace, job.Span = l.trace, spanID(l.trace, l.dispatches)
		tw.lease = cand.leaseIdx
		c.stats.Dispatches++
		c.stats.Speculations++
		if diag == "" {
			diag = "unclassified (no snapshot)"
		}
		ev := c.rangeEvent(EvSpeculate, l)
		ev.Worker = tid
		ev.Detail = fmt.Sprintf("straggling on %s (%s; %s)", cand.primary, why, diag)
		c.event(ev)
		c.cfg.Logf("range %d/%d straggling on %s (%s; %s) — speculating on %s",
			l.rng.Index+1, l.rng.Count, cand.primary, why, diag, tid)
		c.mu.Unlock()

		cctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
		err := tw.w.Start(cctx, job)
		cancel()
		if err != nil {
			c.mu.Lock()
			c.cfg.Logf("speculative dispatch of %s to %s: %v", job.ID, tid, err)
			// Unwind the twin only; the primary tenancy is untouched.
			delete(l.workers, tid)
			l.speculated = false
			if ws, ok := c.workers[tid]; ok {
				ws.lease = -1
			}
			c.mu.Unlock()
		}
	}
}
