package partition

import (
	"math/rand"
	"sort"

	"repro/internal/model"
)

// GAConfig parameterises the genetic-algorithm balancer.
type GAConfig struct {
	Seed        int64
	Population  int     // default 64
	Generations int     // default 200
	CrossProb   float64 // default 0.9
	MutProb     float64 // per-gene mutation probability, default 0.05
	Elite       int     // survivors copied unchanged, default 2

	// MemWeight balances the two objectives in the fitness: fitness =
	// maxLoad + MemWeight·maxMem. Zero means pure load balancing (the
	// original Greene formulation); the E7 experiment also runs a
	// memory-aware variant.
	MemWeight float64
}

func (c *GAConfig) fill() {
	if c.Population == 0 {
		c.Population = 64
	}
	if c.Generations == 0 {
		c.Generations = 200
	}
	if c.CrossProb == 0 {
		c.CrossProb = 0.9
	}
	if c.MutProb == 0 {
		c.MutProb = 0.05
	}
	if c.Elite == 0 {
		c.Elite = 2
	}
}

// GA runs a steady generational genetic algorithm over assignments
// (chromosome = processor index per item, tournament selection, uniform
// crossover, per-gene reset mutation), after Greene's dynamic
// load-balancing GA (paper ref [9]). It returns the best assignment
// found.
func GA(items []Item, m int, cfg GAConfig) Assignment {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(items)
	if n == 0 {
		return Assignment{}
	}

	fitness := func(a Assignment) float64 {
		return float64(a.MaxLoad(items, m)) + cfg.MemWeight*float64(a.MaxMem(items, m))
	}

	pop := make([]Assignment, cfg.Population)
	fit := make([]float64, cfg.Population)
	for i := range pop {
		pop[i] = randomAssignment(rng, n, m)
		fit[i] = fitness(pop[i])
	}
	// Seed one LPT individual so the GA starts no worse than greedy.
	pop[0] = LPT(items, m)
	fit[0] = fitness(pop[0])

	idx := make([]int, cfg.Population)
	for g := 0; g < cfg.Generations; g++ {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return fit[idx[i]] < fit[idx[j]] })

		next := make([]Assignment, 0, cfg.Population)
		for e := 0; e < cfg.Elite && e < cfg.Population; e++ {
			next = append(next, append(Assignment(nil), pop[idx[e]]...))
		}
		for len(next) < cfg.Population {
			a := pop[tournament(rng, fit, 3)]
			b := pop[tournament(rng, fit, 3)]
			child := append(Assignment(nil), a...)
			if rng.Float64() < cfg.CrossProb {
				for i := range child {
					if rng.Intn(2) == 0 {
						child[i] = b[i]
					}
				}
			}
			for i := range child {
				if rng.Float64() < cfg.MutProb {
					child[i] = rng.Intn(m)
				}
			}
			next = append(next, child)
		}
		pop = next
		for i := range pop {
			fit[i] = fitness(pop[i])
		}
	}

	best := 0
	for i := 1; i < cfg.Population; i++ {
		if fit[i] < fit[best] {
			best = i
		}
	}
	return pop[best]
}

func randomAssignment(rng *rand.Rand, n, m int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = rng.Intn(m)
	}
	return a
}

// tournament returns the index of the fittest of k random individuals.
func tournament(rng *rand.Rand, fit []float64, k int) int {
	best := rng.Intn(len(fit))
	for i := 1; i < k; i++ {
		c := rng.Intn(len(fit))
		if fit[c] < fit[best] {
			best = c
		}
	}
	return best
}

// GAMaxMem is a convenience wrapper: memory-only GA fitness.
func GAMaxMem(items []Item, m int, seed int64) model.Mem {
	conv := make([]Item, len(items))
	for i, it := range items {
		conv[i] = Item{Exec: model.Time(it.Mem), Mem: it.Mem}
	}
	a := GA(conv, m, GAConfig{Seed: seed})
	return a.MaxMem(items, m)
}
