package partition

import (
	"sort"

	"repro/internal/model"
)

// FFD assigns items to at most m bins of the given capacity using
// first-fit decreasing (by memory), the classic bin-packing heuristic
// Korf's exact algorithm improves upon (paper ref [8]). It returns the
// assignment and false when the items do not fit in m bins of that
// capacity.
func FFD(items []Item, m int, cap model.Mem) (Assignment, bool) {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := items[order[i]], items[order[j]]
		if a.Mem != b.Mem {
			return a.Mem > b.Mem
		}
		return order[i] < order[j]
	})
	out := make(Assignment, len(items))
	loads := make([]model.Mem, m)
	for _, idx := range order {
		placed := false
		for p := 0; p < m; p++ {
			if loads[p]+items[idx].Mem <= cap {
				out[idx] = p
				loads[p] += items[idx].Mem
				placed = true
				break
			}
		}
		if !placed {
			return nil, false
		}
	}
	return out, true
}

// MultiFit minimises the maximum per-processor memory over exactly m
// processors by binary-searching the capacity that FFD can pack into
// (Coffman–Garey–Johnson MULTIFIT). Its worst-case ratio is 13/11, a
// tighter guarantee than the (2 − 1/M) greedy bound of Theorem 2; it is
// the "stronger polynomial baseline" of the E7/E8 comparisons.
func MultiFit(items []Item, m int) (Assignment, model.Mem) {
	var total, largest model.Mem
	for _, it := range items {
		total += it.Mem
		if it.Mem > largest {
			largest = it.Mem
		}
	}
	lo := (total + model.Mem(m) - 1) / model.Mem(m)
	if largest > lo {
		lo = largest
	}
	hi := 2 * lo
	// Ensure hi is packable before searching (FFD at hi = total always
	// fits into one bin's worth, so grow until it does).
	for {
		if _, ok := FFD(items, m, hi); ok {
			break
		}
		hi *= 2
	}
	var best Assignment
	for lo < hi {
		mid := (lo + hi) / 2
		if a, ok := FFD(items, m, mid); ok {
			best = a
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if best == nil {
		best, _ = FFD(items, m, hi)
	}
	return best, best.MaxMem(items, m)
}
