package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func items(mems ...model.Mem) []Item {
	out := make([]Item, len(mems))
	for i, m := range mems {
		out[i] = Item{Exec: model.Time(m), Mem: m}
	}
	return out
}

func TestOptimalMaxMemSmallCases(t *testing.T) {
	cases := []struct {
		items []Item
		m     int
	}{
		{items(4, 4, 4), 3},
		{items(4, 4, 4), 2},
		{items(5, 3, 3, 3), 2},
		{items(7, 1, 1, 1, 1, 1, 1, 1), 2},
		{items(10), 4},
		{items(2, 2, 2, 2, 2, 2), 3},
	}
	for i, c := range cases {
		_, got := OptimalMaxMem(c.items, c.m)
		want := bruteForceMaxMem(c.items, c.m)
		if got != want {
			t.Errorf("case %d: OptimalMaxMem = %d, brute force = %d", i, got, want)
		}
	}
}

// bruteForceMaxMem enumerates all assignments (small inputs only).
func bruteForceMaxMem(its []Item, m int) model.Mem {
	n := len(its)
	best := model.Mem(1) << 40
	asg := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			mems := make([]model.Mem, m)
			for j, p := range asg {
				mems[p] += its[j].Mem
			}
			var mx model.Mem
			for _, v := range mems {
				if v > mx {
					mx = v
				}
			}
			if mx < best {
				best = mx
			}
			return
		}
		for p := 0; p < m; p++ {
			asg[i] = p
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// Property: branch and bound equals brute force on random small inputs.
func TestOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(7)
		m := 2 + rng.Intn(3)
		its := make([]Item, n)
		for i := range its {
			its[i] = Item{Mem: model.Mem(1 + rng.Intn(12))}
		}
		_, got := OptimalMaxMem(its, m)
		want := bruteForceMaxMem(its, m)
		if got != want {
			t.Fatalf("trial %d: B&B %d != brute force %d (items %v, m=%d)", trial, got, want, its, m)
		}
	}
}

func TestOptimalLowerBoundsRespected(t *testing.T) {
	f := func(raw []uint8, m0 uint8) bool {
		if len(raw) == 0 || len(raw) > 10 {
			return true
		}
		m := int(m0%4) + 2
		its := make([]Item, len(raw))
		var total, largest model.Mem
		for i, r := range raw {
			w := model.Mem(r%20) + 1
			its[i] = Item{Mem: w}
			total += w
			if w > largest {
				largest = w
			}
		}
		_, got := OptimalMaxMem(its, m)
		lower := (total + model.Mem(m) - 1) / model.Mem(m)
		if largest > lower {
			lower = largest
		}
		return got >= lower && got <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestLPTBalancesLoad(t *testing.T) {
	its := items(9, 8, 7, 6, 5, 4)
	a := LPT(its, 3)
	if err := a.Validate(its, 3); err != nil {
		t.Fatal(err)
	}
	// LPT on {9,8,7,6,5,4} over 3: loads {9,4}, {8,5}, {7,6} → max 13 = optimal.
	if got := a.MaxLoad(its, 3); got != 13 {
		t.Errorf("LPT max load = %d, want 13", got)
	}
}

func TestMemBalanceWithinGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		m := 2 + rng.Intn(3)
		its := make([]Item, n)
		for i := range its {
			its[i] = Item{Mem: model.Mem(1 + rng.Intn(15))}
		}
		a := MemBalance(its, m)
		if err := a.Validate(its, m); err != nil {
			t.Fatal(err)
		}
		got := a.MaxMem(its, m)
		opt := bruteForceMaxMem(its, m)
		// Greedy min-load with decreasing weights is within 4/3 of optimal;
		// use the looser 2−1/M certificate here.
		bound := float64(opt) * (2 - 1/float64(m))
		if float64(got) > bound+1e-9 {
			t.Errorf("trial %d: MemBalance %d exceeds (2−1/M)·opt = %.1f (opt %d)", trial, got, bound, opt)
		}
	}
}

func TestGANeverWorseThanSeededLPT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(10)
		m := 2 + rng.Intn(3)
		its := make([]Item, n)
		for i := range its {
			its[i] = Item{Exec: model.Time(1 + rng.Intn(20)), Mem: model.Mem(1 + rng.Intn(10))}
		}
		ga := GA(its, m, GAConfig{Seed: int64(trial), Generations: 60})
		if err := ga.Validate(its, m); err != nil {
			t.Fatal(err)
		}
		lpt := LPT(its, m)
		if ga.MaxLoad(its, m) > lpt.MaxLoad(its, m) {
			t.Errorf("trial %d: GA (%d) worse than its LPT seed (%d)",
				trial, ga.MaxLoad(its, m), lpt.MaxLoad(its, m))
		}
	}
}

func TestMinBins(t *testing.T) {
	cases := []struct {
		items []Item
		cap   model.Mem
		want  int
	}{
		{items(4, 4, 4), 8, 2},
		{items(4, 4, 4), 12, 1},
		{items(4, 4, 4), 4, 3},
		{items(9), 8, 0}, // item exceeds capacity
		{items(5, 5, 5, 5), 10, 2},
	}
	for i, c := range cases {
		if got := MinBins(c.items, c.cap); got != c.want {
			t.Errorf("case %d: MinBins = %d, want %d", i, got, c.want)
		}
	}
}

func TestAssignmentValidate(t *testing.T) {
	its := items(1, 2)
	if err := (Assignment{0}).Validate(its, 2); err == nil {
		t.Error("short assignment accepted")
	}
	if err := (Assignment{0, 5}).Validate(its, 2); err == nil {
		t.Error("out-of-range processor accepted")
	}
	if err := (Assignment{0, 1}).Validate(its, 2); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
}

func TestOptimalMaxLoad(t *testing.T) {
	its := []Item{{Exec: 5}, {Exec: 5}, {Exec: 5}, {Exec: 5}}
	_, got := OptimalMaxLoad(its, 2)
	if got != 10 {
		t.Errorf("OptimalMaxLoad = %d, want 10", got)
	}
}
