package partition

import (
	"sort"

	"repro/internal/model"
)

// OptimalMaxMem computes, by branch and bound, the assignment minimising
// the maximum per-processor memory (the ωopt of Theorem 2). Exponential in
// the worst case; intended for small instances (≤ ~20 items). The search
// uses the classic multiprocessor-partitioning pruning set:
//
//   - items are placed in decreasing weight order;
//   - a branch is cut when its partial maximum already reaches the
//     incumbent;
//   - processors with equal load are interchangeable, so only the first
//     of each equal-load group is branched on (symmetry breaking);
//   - the lower bound max(largest item, ⌈total/M⌉) stops the search early
//     when reached.
func OptimalMaxMem(items []Item, m int) (Assignment, model.Mem) {
	n := len(items)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return items[order[i]].Mem > items[order[j]].Mem })

	var total, largest model.Mem
	for _, it := range items {
		total += it.Mem
		if it.Mem > largest {
			largest = it.Mem
		}
	}
	lower := (total + model.Mem(m) - 1) / model.Mem(m)
	if largest > lower {
		lower = largest
	}

	// Incumbent: LPT-by-memory greedy.
	best := make(Assignment, n)
	loads := make([]model.Mem, m)
	for _, idx := range order {
		p := 0
		for q := 1; q < m; q++ {
			if loads[q] < loads[p] {
				p = q
			}
		}
		best[idx] = p
		loads[p] += items[idx].Mem
	}
	bestMax := model.Mem(0)
	for _, l := range loads {
		if l > bestMax {
			bestMax = l
		}
	}
	if bestMax == lower {
		return best, bestMax
	}

	cur := make(Assignment, n)
	cload := make([]model.Mem, m)
	var dfs func(pos int, curMax model.Mem) bool // returns true when lower bound reached
	dfs = func(pos int, curMax model.Mem) bool {
		if curMax >= bestMax {
			return false
		}
		if pos == n {
			bestMax = curMax
			copy(best, cur)
			return bestMax == lower
		}
		idx := order[pos]
		w := items[idx].Mem
		seen := make(map[model.Mem]bool, m)
		for p := 0; p < m; p++ {
			if seen[cload[p]] {
				continue // symmetric to an already-tried processor
			}
			seen[cload[p]] = true
			nl := cload[p] + w
			nm := curMax
			if nl > nm {
				nm = nl
			}
			if nm >= bestMax {
				continue
			}
			cload[p] = nl
			cur[idx] = p
			if dfs(pos+1, nm) {
				return true
			}
			cload[p] -= w
		}
		return false
	}
	dfs(0, 0)
	return best, bestMax
}

// OptimalMaxLoad is OptimalMaxMem over execution times: it minimises the
// maximum per-processor busy time (optimal load balancing in the paper's
// §2 sense, the NP-hard problem of ref [7]).
func OptimalMaxLoad(items []Item, m int) (Assignment, model.Time) {
	conv := make([]Item, len(items))
	for i, it := range items {
		conv[i] = Item{Mem: model.Mem(it.Exec)}
	}
	a, v := OptimalMaxMem(conv, m)
	return a, model.Time(v)
}

// MinBins solves Korf-style bin packing: the minimum number of processors
// of memory capacity cap needed to host all items, by branch and bound
// over an increasing bin count. It returns 0 when some single item
// exceeds the capacity.
func MinBins(items []Item, cap model.Mem) int {
	var total, largest model.Mem
	for _, it := range items {
		total += it.Mem
		if it.Mem > largest {
			largest = it.Mem
		}
	}
	if largest > cap {
		return 0
	}
	lower := int((total + cap - 1) / cap)
	if lower == 0 {
		lower = 1
	}
	for m := lower; ; m++ {
		if _, mx := OptimalMaxMem(items, m); mx <= cap {
			return m
		}
	}
}
