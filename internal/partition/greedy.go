package partition

import (
	"sort"

	"repro/internal/model"
)

// LPT is the longest-processing-time greedy: items in decreasing
// execution time, each to the currently least busy processor. It is the
// classic memory-oblivious load balancer (Graham's 4/3 − 1/3M bound) and
// serves as the ablation baseline: good makespan spread, no memory
// awareness.
func LPT(items []Item, m int) Assignment {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := items[order[i]], items[order[j]]
		if a.Exec != b.Exec {
			return a.Exec > b.Exec
		}
		return order[i] < order[j]
	})
	out := make(Assignment, len(items))
	loads := make([]model.Time, m)
	for _, idx := range order {
		p := 0
		for q := 1; q < m; q++ {
			if loads[q] < loads[p] {
				p = q
			}
		}
		out[idx] = p
		loads[p] += items[idx].Exec
	}
	return out
}

// MemBalance is the memory-balancing-only baseline (the §2 "Memory
// Balancing" notion, after Cellular Disco): greedy least-memory
// assignment in decreasing memory order followed by a hill-climbing pass
// that keeps moving an item from the memory-max processor to the
// memory-min processor while that lowers the maximum. Load is ignored
// entirely.
func MemBalance(items []Item, m int) Assignment {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := items[order[i]], items[order[j]]
		if a.Mem != b.Mem {
			return a.Mem > b.Mem
		}
		return order[i] < order[j]
	})
	out := make(Assignment, len(items))
	mems := make([]model.Mem, m)
	for _, idx := range order {
		p := 0
		for q := 1; q < m; q++ {
			if mems[q] < mems[p] {
				p = q
			}
		}
		out[idx] = p
		mems[p] += items[idx].Mem
	}

	// Hill climbing: max → min moves.
	for iter := 0; iter < 4*len(items); iter++ {
		hi, lo := 0, 0
		for q := 1; q < m; q++ {
			if mems[q] > mems[hi] {
				hi = q
			}
			if mems[q] < mems[lo] {
				lo = q
			}
		}
		improved := false
		for i := range out {
			if out[i] != hi {
				continue
			}
			w := items[i].Mem
			if mems[lo]+w < mems[hi] { // strictly lowers the maximum side
				out[i] = lo
				mems[hi] -= w
				mems[lo] += w
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return out
}
