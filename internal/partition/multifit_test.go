package partition

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func TestFFDFitsWhenPossible(t *testing.T) {
	its := items(4, 4, 4, 4)
	a, ok := FFD(its, 2, 8)
	if !ok {
		t.Fatal("FFD failed on a trivially packable input")
	}
	if err := a.Validate(its, 2); err != nil {
		t.Fatal(err)
	}
	for _, l := range a.Mems(its, 2) {
		if l > 8 {
			t.Errorf("bin over capacity: %d", l)
		}
	}
}

func TestFFDFailsWhenImpossible(t *testing.T) {
	if _, ok := FFD(items(5, 5, 5), 2, 5); !ok {
		// {5},{5},{5} needs 3 bins of capacity 5.
		return
	}
	t.Fatal("FFD packed 15 units into 2×5")
}

func TestMultiFitMatchesOptimalOnSmallInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	worst := 1.0
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(7)
		m := 2 + rng.Intn(3)
		its := make([]Item, n)
		for i := range its {
			its[i] = Item{Mem: model.Mem(1 + rng.Intn(12))}
		}
		_, got := MultiFit(its, m)
		opt := bruteForceMaxMem(its, m)
		r := float64(got) / float64(opt)
		if r > worst {
			worst = r
		}
		// MULTIFIT's guarantee is 13/11 ≈ 1.1818.
		if r > 13.0/11.0+1e-9 {
			t.Fatalf("trial %d: MULTIFIT ratio %.4f exceeds 13/11 (got %d, opt %d)", trial, r, got, opt)
		}
	}
	t.Logf("worst observed MULTIFIT ratio: %.4f (bound 13/11 ≈ 1.1818)", worst)
}

func TestMultiFitNeverBelowLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(10)
		m := 2 + rng.Intn(4)
		its := make([]Item, n)
		var total, largest model.Mem
		for i := range its {
			w := model.Mem(1 + rng.Intn(20))
			its[i] = Item{Mem: w}
			total += w
			if w > largest {
				largest = w
			}
		}
		_, got := MultiFit(its, m)
		lower := (total + model.Mem(m) - 1) / model.Mem(m)
		if largest > lower {
			lower = largest
		}
		if got < lower {
			t.Fatalf("trial %d: MULTIFIT %d below the information-theoretic lower bound %d", trial, got, lower)
		}
	}
}
