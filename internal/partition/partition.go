// Package partition collects the assignment baselines the paper compares
// against analytically (§2, §5): an exact branch-and-bound partitioner in
// the style of Korf's optimal bin packing (ref [8]), the
// longest-processing-time greedy, a memory-balancing-only heuristic in
// the spirit of Cellular Disco (ref [12]), and a genetic-algorithm load
// balancer after Greene (ref [9]).
//
// All of them work on Items: the (execution time, memory) footprint of a
// block, abstracted away from start times. They answer the same question
// the paper's Theorem 2 asks — how well can the blocks be spread over M
// processors — and are used by the E5/E7 experiments as comparators.
package partition

import (
	"fmt"

	"repro/internal/blocks"
	"repro/internal/model"
)

// Item is one unit of assignment: the busy time and memory of a block.
type Item struct {
	Exec model.Time
	Mem  model.Mem
}

// FromBlocks converts blocks to items.
func FromBlocks(bls []*blocks.Block) []Item {
	out := make([]Item, len(bls))
	for i, b := range bls {
		out[i] = Item{Exec: b.Exec(), Mem: b.Mem()}
	}
	return out
}

// Assignment maps item index → processor index.
type Assignment []int

// Loads returns the per-processor busy-time loads of an assignment.
func (a Assignment) Loads(items []Item, m int) []model.Time {
	out := make([]model.Time, m)
	for i, p := range a {
		out[p] += items[i].Exec
	}
	return out
}

// Mems returns the per-processor memory of an assignment.
func (a Assignment) Mems(items []Item, m int) []model.Mem {
	out := make([]model.Mem, m)
	for i, p := range a {
		out[p] += items[i].Mem
	}
	return out
}

// MaxLoad returns the maximum per-processor busy time.
func (a Assignment) MaxLoad(items []Item, m int) model.Time {
	var mx model.Time
	for _, l := range a.Loads(items, m) {
		if l > mx {
			mx = l
		}
	}
	return mx
}

// MaxMem returns the maximum per-processor memory (the ω of Theorem 2).
func (a Assignment) MaxMem(items []Item, m int) model.Mem {
	var mx model.Mem
	for _, l := range a.Mems(items, m) {
		if l > mx {
			mx = l
		}
	}
	return mx
}

// Validate checks the assignment shape.
func (a Assignment) Validate(items []Item, m int) error {
	if len(a) != len(items) {
		return fmt.Errorf("partition: assignment covers %d of %d items", len(a), len(items))
	}
	for i, p := range a {
		if p < 0 || p >= m {
			return fmt.Errorf("partition: item %d assigned to invalid processor %d", i, p)
		}
	}
	return nil
}
