// Package progress renders lbfarm's periodic progress line. The rate
// and ETA arithmetic lives here as pure functions of explicit counters
// and an elapsed duration — the clock is injected, never read — and the
// emit loop takes its tick and stop signals as channels, so the
// resume-specific edge cases (journal-replayed trials must not inflate
// the completion rate; no live trial yet means no ETA) and the
// termination guarantee (the last visible line is always the completed
// 100% one, never a stale mid-interval tick) are unit-tested instead of
// riding untested behind a real 2-second ticker.
package progress

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Line formats one progress line for a sweep.
//
//	done  trials finished so far, including journal-replayed ones
//	ok    accepted trials among done
//	base  trials replayed from a journal at startup (resume); they
//	      count toward done but are excluded from the completion rate —
//	      they cost this process nothing, so counting them would
//	      collapse the ETA toward zero right after a resume
//	total trials this run must end with
//
// elapsed is the wall-clock time since the run started, injected by
// the caller. The ETA extrapolates the live completion rate
// (done−base trials over elapsed) across the remaining trials; with no
// live trial yet — or no elapsed time to rate them over — it renders
// as "?".
func Line(done, ok, base, total int64, elapsed time.Duration) string {
	var accept, pct float64
	if done > 0 {
		accept = float64(ok) / float64(done)
	}
	if total > 0 {
		pct = float64(done) / float64(total)
	}
	eta := "?"
	if live := done - base; live > 0 && elapsed > 0 {
		rate := float64(live) / elapsed.Seconds()
		eta = time.Duration(float64(total-done) / rate * float64(time.Second)).Round(time.Second).String()
	}
	return fmt.Sprintf("%d/%d trials (%.0f%%), accept %.0f%%, eta %s", done, total, 100*pct, 100*accept, eta)
}

// Loop is the progress emitter: one line per tick, and — always,
// whether or not a tick ever fired — one final line when stop closes.
// Every line is emitted from this single call, in order, so a tick
// that fires just before cancellation can never print after (or
// instead of) the completion line: the caller closes stop once the
// final counters are in place, waits for Loop to return, and the last
// visible line is the 100% one. Line text and the channels are both
// injected, so short-run termination is unit-tested without a real
// ticker (see TestLoopFinalLine).
func Loop(tick <-chan time.Time, stop <-chan struct{}, line func() string, emit func(string)) {
	for {
		select {
		case <-tick:
			emit(line())
		case <-stop:
			emit(line())
			return
		}
	}
}

// Breakdown renders a per-stage share suffix for the progress line
// from total nanoseconds spent per stage: the top `top` stages by
// share of the summed total, largest first, e.g.
//
//	balance 61% · schedule 22% · simulate 9%
//
// Stages with a zero total are dropped; with nothing observed yet (or
// top < 1) it returns "". Ties break by name so the rendering is
// deterministic.
func Breakdown(totals map[string]int64, top int) string {
	type share struct {
		name string
		ns   int64
	}
	var sum int64
	shares := make([]share, 0, len(totals))
	for name, ns := range totals {
		if ns <= 0 {
			continue
		}
		shares = append(shares, share{name, ns})
		sum += ns
	}
	if sum == 0 || top < 1 {
		return ""
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].ns != shares[j].ns {
			return shares[i].ns > shares[j].ns
		}
		return shares[i].name < shares[j].name
	})
	if len(shares) > top {
		shares = shares[:top]
	}
	parts := make([]string, len(shares))
	for i, s := range shares {
		parts[i] = fmt.Sprintf("%s %.0f%%", s.name, 100*float64(s.ns)/float64(sum))
	}
	return strings.Join(parts, " · ")
}
