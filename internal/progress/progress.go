// Package progress renders lbfarm's periodic progress line. The rate
// and ETA arithmetic lives here as pure functions of explicit counters
// and an elapsed duration — the clock is injected, never read — so the
// resume-specific edge cases (journal-replayed trials must not inflate
// the completion rate; no live trial yet means no ETA) are unit-tested
// instead of riding untested behind a real 2-second ticker.
package progress

import (
	"fmt"
	"time"
)

// Line formats one progress line for a sweep.
//
//	done  trials finished so far, including journal-replayed ones
//	ok    accepted trials among done
//	base  trials replayed from a journal at startup (resume); they
//	      count toward done but are excluded from the completion rate —
//	      they cost this process nothing, so counting them would
//	      collapse the ETA toward zero right after a resume
//	total trials this run must end with
//
// elapsed is the wall-clock time since the run started, injected by
// the caller. The ETA extrapolates the live completion rate
// (done−base trials over elapsed) across the remaining trials; with no
// live trial yet — or no elapsed time to rate them over — it renders
// as "?".
func Line(done, ok, base, total int64, elapsed time.Duration) string {
	var accept, pct float64
	if done > 0 {
		accept = float64(ok) / float64(done)
	}
	if total > 0 {
		pct = float64(done) / float64(total)
	}
	eta := "?"
	if live := done - base; live > 0 && elapsed > 0 {
		rate := float64(live) / elapsed.Seconds()
		eta = time.Duration(float64(total-done) / rate * float64(time.Second)).Round(time.Second).String()
	}
	return fmt.Sprintf("%d/%d trials (%.0f%%), accept %.0f%%, eta %s", done, total, 100*pct, 100*accept, eta)
}
