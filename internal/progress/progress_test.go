package progress

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestLineFresh: a fresh (unresumed) run rates every finished trial.
func TestLineFresh(t *testing.T) {
	// 50 of 200 trials in 10s → 5 trials/s → 150 remaining = 30s.
	got := Line(50, 40, 0, 200, 10*time.Second)
	want := "50/200 trials (25%), accept 80%, eta 30s"
	if got != want {
		t.Fatalf("Line = %q, want %q", got, want)
	}
}

// TestLineResumeExcludesReplayed is the regression pin for the resume
// rate: journal-replayed trials count toward done but not toward the
// completion rate, so a resume that replayed 90% of the sweep must not
// report a near-zero ETA off the replayed rows.
func TestLineResumeExcludesReplayed(t *testing.T) {
	// 180 replayed + 10 live in 10s → 1 trial/s → 10 remaining = 10s.
	got := Line(190, 190, 180, 200, 10*time.Second)
	if !strings.Contains(got, "eta 10s") {
		t.Fatalf("Line = %q, want the ETA rated over live trials only (eta 10s)", got)
	}
	// Rated over all 190 done the ETA would be under a second.
	if strings.Contains(got, "eta 0s") || strings.Contains(got, "526ms") {
		t.Fatalf("Line = %q rates replayed trials", got)
	}
}

// TestLineNoLiveTrials: with nothing live yet there is no rate to
// extrapolate — right after a resume (all done trials replayed) and at
// t=0 the ETA must render as "?" rather than divide by zero.
func TestLineNoLiveTrials(t *testing.T) {
	for _, tc := range []struct {
		name                  string
		done, ok, base, total int64
		elapsed               time.Duration
	}{
		{"start of fresh run", 0, 0, 0, 100, 0},
		{"just resumed, only replayed rows", 60, 55, 60, 100, 5 * time.Second},
		{"live rows but zero elapsed", 5, 5, 0, 100, 0},
	} {
		got := Line(tc.done, tc.ok, tc.base, tc.total, tc.elapsed)
		if !strings.Contains(got, "eta ?") {
			t.Fatalf("%s: Line = %q, want eta ?", tc.name, got)
		}
	}
}

// TestLineComplete: the final line of a finished sweep.
func TestLineComplete(t *testing.T) {
	got := Line(100, 75, 0, 100, 20*time.Second)
	for _, want := range []string{"100/100", "(100%)", "accept 75%", "eta 0s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Line = %q, want %q in it", got, want)
		}
	}
}

// TestLoopFinalLine is the regression pin for the completion line: a
// sweep shorter than the tick interval (no tick ever fires) must still
// end with exactly one line, and that line must read 100% — the ticker
// being cancelled mid-interval used to leave the last visible line at
// whatever the previous tick saw (e.g. "97%" on short runs).
func TestLoopFinalLine(t *testing.T) {
	var got []string
	tick := make(chan time.Time) // never fires
	stop := make(chan struct{})
	doneN := int64(37) // counters already at completion when stop closes
	done := make(chan struct{})
	go func() {
		defer close(done)
		Loop(tick, stop, func() string {
			return Line(doneN, doneN, 0, 37, 3*time.Second)
		}, func(s string) { got = append(got, s) })
	}()
	close(stop)
	<-done
	if len(got) != 1 {
		t.Fatalf("emitted %d lines %q, want exactly the final one", len(got), got)
	}
	if !strings.Contains(got[0], "37/37") || !strings.Contains(got[0], "(100%)") {
		t.Fatalf("final line = %q, want the 100%% completion line", got[0])
	}
}

// TestLoopFinalLineAfterTicks: ticks mid-run emit their snapshot, and
// the completion line still arrives last, after every tick line — the
// ordering half of the guarantee (all emits come from one goroutine).
func TestLoopFinalLineAfterTicks(t *testing.T) {
	var got []string
	var doneN atomic.Int64
	tick := make(chan time.Time)
	stop := make(chan struct{})
	done := make(chan struct{})
	emitted := make(chan struct{}, 2)
	go func() {
		defer close(done)
		Loop(tick, stop, func() string {
			n := doneN.Load()
			return Line(n, n, 0, 100, time.Second)
		}, func(s string) { got = append(got, s); emitted <- struct{}{} })
	}()
	doneN.Store(97)
	tick <- time.Time{} // the mid-interval tick: 97%
	<-emitted           // tick line flushed before the counters advance
	doneN.Store(100)
	close(stop)
	<-done
	if len(got) != 2 {
		t.Fatalf("emitted %d lines %q, want tick line + final line", len(got), got)
	}
	if !strings.Contains(got[0], "(97%)") {
		t.Fatalf("tick line = %q, want the 97%% snapshot", got[0])
	}
	if !strings.Contains(got[1], "(100%)") {
		t.Fatalf("last line = %q, want 100%% — the completion line must win", got[1])
	}
}

// TestBreakdown: top-N stage shares, sorted by share then name, zero
// totals dropped, empty when nothing was observed.
func TestBreakdown(t *testing.T) {
	for _, tc := range []struct {
		name   string
		totals map[string]int64
		top    int
		want   string
	}{
		{"empty", nil, 3, ""},
		{"all zero", map[string]int64{"balance": 0}, 3, ""},
		{"single", map[string]int64{"balance": 10}, 3, "balance 100%"},
		{"sorted and trimmed",
			map[string]int64{"balance": 60, "schedule": 25, "simulate": 10, "generate": 5},
			3, "balance 60% · schedule 25% · simulate 10%"},
		{"tie breaks by name", map[string]int64{"b": 50, "a": 50}, 2, "a 50% · b 50%"},
	} {
		if got := Breakdown(tc.totals, tc.top); got != tc.want {
			t.Fatalf("%s: Breakdown = %q, want %q", tc.name, got, tc.want)
		}
	}
}
