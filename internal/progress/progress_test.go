package progress

import (
	"strings"
	"testing"
	"time"
)

// TestLineFresh: a fresh (unresumed) run rates every finished trial.
func TestLineFresh(t *testing.T) {
	// 50 of 200 trials in 10s → 5 trials/s → 150 remaining = 30s.
	got := Line(50, 40, 0, 200, 10*time.Second)
	want := "50/200 trials (25%), accept 80%, eta 30s"
	if got != want {
		t.Fatalf("Line = %q, want %q", got, want)
	}
}

// TestLineResumeExcludesReplayed is the regression pin for the resume
// rate: journal-replayed trials count toward done but not toward the
// completion rate, so a resume that replayed 90% of the sweep must not
// report a near-zero ETA off the replayed rows.
func TestLineResumeExcludesReplayed(t *testing.T) {
	// 180 replayed + 10 live in 10s → 1 trial/s → 10 remaining = 10s.
	got := Line(190, 190, 180, 200, 10*time.Second)
	if !strings.Contains(got, "eta 10s") {
		t.Fatalf("Line = %q, want the ETA rated over live trials only (eta 10s)", got)
	}
	// Rated over all 190 done the ETA would be under a second.
	if strings.Contains(got, "eta 0s") || strings.Contains(got, "526ms") {
		t.Fatalf("Line = %q rates replayed trials", got)
	}
}

// TestLineNoLiveTrials: with nothing live yet there is no rate to
// extrapolate — right after a resume (all done trials replayed) and at
// t=0 the ETA must render as "?" rather than divide by zero.
func TestLineNoLiveTrials(t *testing.T) {
	for _, tc := range []struct {
		name                  string
		done, ok, base, total int64
		elapsed               time.Duration
	}{
		{"start of fresh run", 0, 0, 0, 100, 0},
		{"just resumed, only replayed rows", 60, 55, 60, 100, 5 * time.Second},
		{"live rows but zero elapsed", 5, 5, 0, 100, 0},
	} {
		got := Line(tc.done, tc.ok, tc.base, tc.total, tc.elapsed)
		if !strings.Contains(got, "eta ?") {
			t.Fatalf("%s: Line = %q, want eta ?", tc.name, got)
		}
	}
}

// TestLineComplete: the final line of a finished sweep.
func TestLineComplete(t *testing.T) {
	got := Line(100, 75, 0, 100, 20*time.Second)
	for _, want := range []string{"100/100", "(100%)", "accept 75%", "eta 0s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Line = %q, want %q in it", got, want)
		}
	}
}
