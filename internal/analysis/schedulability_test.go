package analysis

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func set(t *testing.T, specs ...[3]model.Time) *model.TaskSet {
	t.Helper()
	ts := model.NewTaskSet()
	for i, sp := range specs {
		ts.MustAddTask(string(rune('a'+i)), sp[0], sp[1], 1)
	}
	ts.MustFreeze()
	return ts
}

func TestSchedulabilityPasses(t *testing.T) {
	ts := set(t, [3]model.Time{4, 1, 0}, [3]model.Time{8, 2, 0})
	rep, err := CheckSchedulability(ts, 2)
	if err != nil {
		t.Fatalf("feasible set rejected: %v", err)
	}
	if !rep.PassesAll {
		t.Error("PassesAll false on a feasible set")
	}
}

func TestSchedulabilityUtilizationBound(t *testing.T) {
	// Two tasks each with full utilisation on one processor.
	ts := set(t, [3]model.Time{4, 4, 0}, [3]model.Time{4, 4, 0})
	_, err := CheckSchedulability(ts, 1)
	if err == nil || !strings.Contains(err.Error(), "utilisation") {
		t.Fatalf("overload not rejected: %v", err)
	}
}

func TestSchedulabilityDensestClassReported(t *testing.T) {
	ts := set(t, [3]model.Time{4, 3, 0}, [3]model.Time{4, 3, 0}, [3]model.Time{100, 1, 0})
	rep, err := CheckSchedulability(ts, 3)
	if err != nil {
		t.Fatalf("unexpected rejection: %v", err)
	}
	if rep.DensestPeriod != 4 || rep.DensestDemand != 6 {
		t.Errorf("densest class = (%d, %d), want (4, 6)", rep.DensestPeriod, rep.DensestDemand)
	}
}

func TestSchedulabilityCliqueBound(t *testing.T) {
	// Three tasks, pairwise incompatible (E+E > gcd), on 2 processors.
	ts := set(t,
		[3]model.Time{4, 3, 0},
		[3]model.Time{4, 3, 0},
		[3]model.Time{8, 3, 0},
	)
	_, err := CheckSchedulability(ts, 2)
	if err == nil {
		t.Fatal("three mutually incompatible tasks on 2 processors accepted")
	}
}

func TestSchedulabilityReportsPairConflicts(t *testing.T) {
	ts := set(t, [3]model.Time{4, 3, 0}, [3]model.Time{8, 3, 0})
	rep, err := CheckSchedulability(ts, 2)
	if err != nil {
		t.Fatalf("separable pair rejected: %v", err)
	}
	if len(rep.PairConflicts) != 1 || rep.PairConflicts[0].GCD != 4 {
		t.Errorf("pair conflicts = %+v, want one with gcd 4", rep.PairConflicts)
	}
}

func TestSchedulabilityNeedsProcessor(t *testing.T) {
	ts := set(t, [3]model.Time{4, 1, 0})
	if _, err := CheckSchedulability(ts, 0); err == nil {
		t.Fatal("zero processors accepted")
	}
}
