package analysis

import (
	"testing"

	"repro/internal/model"
)

func TestFactorial(t *testing.T) {
	cases := []struct {
		n    int
		want model.Time
	}{{0, 1}, {1, 1}, {2, 2}, {3, 6}, {5, 120}, {10, 3628800}}
	for _, c := range cases {
		if got := Factorial(c.n); got != c.want {
			t.Errorf("Factorial(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if Factorial(30) <= 0 {
		t.Error("overflow not saturated")
	}
}

func TestTheorem1Bound(t *testing.T) {
	if got := Theorem1Bound(1, 3); got != 2 {
		t.Errorf("γ(M−1)! for γ=1,M=3 = %d, want 2", got)
	}
	if got := Theorem1Bound(5, 4); got != 30 {
		t.Errorf("γ(M−1)! for γ=5,M=4 = %d, want 30", got)
	}
	if got := Theorem1Bound(1, 0); got != 0 {
		t.Errorf("M=0 bound = %d, want 0", got)
	}
}

func TestPairCount(t *testing.T) {
	// The conventional count; coincides with (M−1)! only for M ≤ 3.
	if PairCount(3) != 3 || PairCount(4) != 6 || PairCount(2) != 1 {
		t.Errorf("PairCount wrong: %d %d %d", PairCount(3), PairCount(4), PairCount(2))
	}
}

func TestAlphaBound(t *testing.T) {
	if got := AlphaBound(1); got != 1 {
		t.Errorf("AlphaBound(1) = %v, want 1 (single processor is trivially optimal)", got)
	}
	if got := AlphaBound(2); got != 1.5 {
		t.Errorf("AlphaBound(2) = %v, want 1.5", got)
	}
	if got := AlphaBound(4); got != 1.75 {
		t.Errorf("AlphaBound(4) = %v, want 1.75", got)
	}
}

func TestCheckTheorem1(t *testing.T) {
	if err := CheckTheorem1(0, 1, 3); err != nil {
		t.Errorf("Gtotal=0 rejected: %v", err)
	}
	if err := CheckTheorem1(2, 1, 3); err != nil {
		t.Errorf("Gtotal at the bound rejected: %v", err)
	}
	if err := CheckTheorem1(-1, 1, 3); err == nil {
		t.Error("negative Gtotal accepted")
	}
	if err := CheckTheorem1(3, 1, 3); err == nil {
		t.Error("Gtotal above the bound accepted")
	}
}

func TestCheckTheorem2(t *testing.T) {
	if err := CheckTheorem2(15, 10, 2); err != nil {
		t.Errorf("ratio 1.5 = bound for M=2 rejected: %v", err)
	}
	if err := CheckTheorem2(16, 10, 2); err == nil {
		t.Error("ratio 1.6 > 1.5 accepted")
	}
	if err := CheckTheorem2(10, 0, 2); err == nil {
		t.Error("zero optimum accepted")
	}
}

func TestAlphaRatio(t *testing.T) {
	r, err := AlphaRatio(12, 8)
	if err != nil || r != 1.5 {
		t.Errorf("AlphaRatio(12,8) = %v, %v", r, err)
	}
}
