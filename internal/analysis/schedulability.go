package analysis

import (
	"fmt"

	"repro/internal/model"
)

// schedulability.go collects necessary conditions for non-preemptive
// strict-periodic multiprocessor schedulability, used as fast pre-checks
// before running the scheduling heuristic (which is incomplete: a
// rejection by these conditions is definitive, a pass is not a
// guarantee).

// SchedReport is the outcome of the necessary-condition screen.
type SchedReport struct {
	Utilization   float64 // ΣEi/Ti
	UtilBound     float64 // M
	DensestPeriod model.Time
	DensestDemand model.Time // busy time demanded within the densest period class
	PairConflicts []PairConflict
	PassesAll     bool
}

// PairConflict names two tasks that can never share any processor
// (Ei + Ej > gcd(Ti, Tj)): wherever they run, they must be split across
// processors, and a dependence between them then forces an
// inter-processor communication.
type PairConflict struct {
	A, B model.TaskID
	GCD  model.Time
}

// CheckSchedulability screens a task set against M processors:
//
//  1. Utilisation: ΣEi/Ti ≤ M (no schedule exists otherwise).
//  2. Hyper-period demand: Σ Ei·(H/Ti) ≤ M·H (equivalent restatement,
//     kept separately because integer WCETs can round differently).
//  3. Pairwise gcd windows: Ei + Ej ≤ gcd(Ti, Tj) must hold for two
//     tasks to share a processor (reference [1] theory, see
//     model.Compatible); conflicting pairs are reported, and a clique of
//     more than M mutually incompatible tasks is a definitive rejection.
//
// It returns the report and an error when a definitive impossibility is
// found.
func CheckSchedulability(ts *model.TaskSet, m int) (*SchedReport, error) {
	if m < 1 {
		return nil, fmt.Errorf("analysis: need at least one processor")
	}
	rep := &SchedReport{
		Utilization: ts.Utilization(),
		UtilBound:   float64(m),
		PassesAll:   true,
	}
	if rep.Utilization > rep.UtilBound {
		rep.PassesAll = false
		return rep, fmt.Errorf("analysis: utilisation %.3f exceeds %d processors", rep.Utilization, m)
	}

	h := ts.HyperPeriod()
	var demand model.Time
	for _, t := range ts.Tasks() {
		demand += t.WCET * (h / t.Period)
	}
	if demand > model.Time(m)*h {
		rep.PassesAll = false
		return rep, fmt.Errorf("analysis: hyper-period demand %d exceeds capacity %d", demand, model.Time(m)*h)
	}

	// Densest period class, reported for diagnostics (a class overflowing
	// M copies of its period implies utilisation > M, so the utilisation
	// bound above already rejects it — no separate check needed).
	classDemand := make(map[model.Time]model.Time)
	for _, t := range ts.Tasks() {
		classDemand[t.Period] += t.WCET
	}
	for p, d := range classDemand {
		if d > rep.DensestDemand || (d == rep.DensestDemand && p > rep.DensestPeriod) {
			rep.DensestPeriod, rep.DensestDemand = p, d
		}
	}

	// Pairwise gcd windows.
	tasks := ts.Tasks()
	for i := 0; i < len(tasks); i++ {
		for j := i + 1; j < len(tasks); j++ {
			g := model.GCD(tasks[i].Period, tasks[j].Period)
			if tasks[i].WCET+tasks[j].WCET > g {
				rep.PairConflicts = append(rep.PairConflicts, PairConflict{
					A: tasks[i].ID, B: tasks[j].ID, GCD: g,
				})
			}
		}
	}
	// A clique of pairwise-incompatible tasks needs one processor each.
	// Maximum clique is NP-hard; a greedily grown clique is a sound lower
	// bound, and exceeding M already proves infeasibility.
	if clique := greedyIncompatClique(tasks, m); clique > m {
		rep.PassesAll = false
		return rep, fmt.Errorf("analysis: %d mutually incompatible tasks exceed %d processors", clique, m)
	}
	return rep, nil
}

// UtilMargin returns the spare processor capacity M − ΣEi/Ti: how far
// the task set sits below the utilisation bound. Zero means saturation,
// negative means definitive infeasibility.
func (r *SchedReport) UtilMargin() float64 {
	return r.UtilBound - r.Utilization
}

// DensestMargin returns the free fraction of the densest period window:
// 1 − demand/(M·P) for the densest period class P. It is 1 for an empty
// report and clamps nothing — a negative value means even the densest
// class alone overflows the architecture.
func (r *SchedReport) DensestMargin() float64 {
	if r.DensestPeriod <= 0 {
		return 1
	}
	return 1 - float64(r.DensestDemand)/(r.UtilBound*float64(r.DensestPeriod))
}

// greedyIncompatClique grows a clique of pairwise-incompatible tasks
// greedily (sound lower bound on the true maximum clique; stops early at
// m+1 since that already proves infeasibility).
func greedyIncompatClique(tasks []model.Task, m int) int {
	var clique []model.Task
	for _, t := range tasks {
		ok := true
		for _, c := range clique {
			g := model.GCD(t.Period, c.Period)
			if t.WCET+c.WCET <= g {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, t)
			if len(clique) > m {
				break
			}
		}
	}
	return len(clique)
}
