// Package analysis implements the paper's §5 theoretical performance
// study as executable checks: the Theorem 1 bound on the total gain and
// the Theorem 2 (2 − 1/M)-approximation ratio for memory usage, both of
// which the experiments verify empirically on random instances.
package analysis

import (
	"fmt"

	"repro/internal/model"
)

// Factorial returns n! (n ≤ 20 fits in int64; larger inputs saturate at
// the maximum Time to keep the bound meaningful rather than overflowing).
func Factorial(n int) model.Time {
	f := model.Time(1)
	for i := 2; i <= n; i++ {
		next := f * model.Time(i)
		if next/model.Time(i) != f { // overflow
			return model.Time(1)<<62 - 1
		}
		f = next
	}
	return f
}

// Theorem1Bound returns γ(M−1)!, the paper's stated upper bound on
// Gtotal, with γ the longest communication time that can be suppressed.
// The paper equates the number of distinct processor pairs with (M−1)!;
// see also PairCount for the conventional M(M−1)/2 count (they coincide
// for M ≤ 3, the regime of the worked example).
func Theorem1Bound(gamma model.Time, m int) model.Time {
	if m < 1 {
		return 0
	}
	return gamma * Factorial(m-1)
}

// PairCount returns M(M−1)/2, the conventional count of distinct
// processor pairs, exposed for comparison with the paper's (M−1)! claim.
func PairCount(m int) model.Time {
	return model.Time(m) * model.Time(m-1) / 2
}

// AlphaBound returns 2 − 1/M, the Theorem 2 approximation guarantee.
func AlphaBound(m int) float64 {
	if m < 1 {
		return 0
	}
	return 2 - 1/float64(m)
}

// AlphaRatio returns ω/ωopt and an error when the optimum is
// non-positive (which would make the ratio meaningless).
func AlphaRatio(got, opt model.Mem) (float64, error) {
	if opt <= 0 {
		return 0, fmt.Errorf("analysis: non-positive optimum %d", opt)
	}
	return float64(got) / float64(opt), nil
}

// CheckTheorem1 verifies 0 ≤ gTotal ≤ γ(M−1)! and returns a descriptive
// error on violation.
func CheckTheorem1(gTotal, gamma model.Time, m int) error {
	if gTotal < 0 {
		return fmt.Errorf("analysis: Theorem 1 violated: Gtotal = %d < 0", gTotal)
	}
	if b := Theorem1Bound(gamma, m); gTotal > b {
		return fmt.Errorf("analysis: Theorem 1 violated: Gtotal = %d > γ(M−1)! = %d", gTotal, b)
	}
	return nil
}

// CheckTheorem2 verifies ω/ωopt ≤ 2 − 1/M (with a small epsilon for the
// float division) and returns a descriptive error on violation.
func CheckTheorem2(got, opt model.Mem, m int) error {
	ratio, err := AlphaRatio(got, opt)
	if err != nil {
		return err
	}
	if ratio > AlphaBound(m)+1e-9 {
		return fmt.Errorf("analysis: Theorem 2 violated: ω/ωopt = %.4f > 2−1/M = %.4f (ω=%d ωopt=%d M=%d)",
			ratio, AlphaBound(m), got, opt, m)
	}
	return nil
}
