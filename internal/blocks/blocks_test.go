package blocks

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/sched"
)

// pair builds producer→consumer at the same period with the given gap
// between producer end and consumer start, on one processor, C=1.
func pair(t *testing.T, gap model.Time) *sched.InstSchedule {
	t.Helper()
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 12, 1, 1)
	b := ts.MustAddTask("b", 12, 1, 2)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	s := sched.MustNewSchedule(ts, arch.MustNew(1, 1))
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 0, 1+gap)
	return sched.FromSchedule(s)
}

func TestMergeWhenGapBelowC(t *testing.T) {
	blks := Build(pair(t, 0)) // consumer starts exactly at producer end
	if len(blks) != 1 {
		t.Fatalf("gap 0 < C: got %d blocks, want 1 merged block", len(blks))
	}
	b := blks[0]
	if len(b.Members) != 2 || b.Mem() != 3 || b.Exec() != 2 {
		t.Errorf("merged block wrong: members=%d mem=%d exec=%d", len(b.Members), b.Mem(), b.Exec())
	}
}

func TestSplitWhenGapAtLeastC(t *testing.T) {
	blks := Build(pair(t, 1)) // gap equals C: separable (eq. 1 satisfied)
	if len(blks) != 2 {
		t.Fatalf("gap ≥ C: got %d blocks, want 2", len(blks))
	}
}

func TestIndependentTasksNeverMerge(t *testing.T) {
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 12, 1, 1)
	b := ts.MustAddTask("b", 12, 1, 1)
	ts.MustFreeze()
	s := sched.MustNewSchedule(ts, arch.MustNew(1, 5))
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 0, 1) // adjacent but independent
	blks := Build(sched.FromSchedule(s))
	if len(blks) != 2 {
		t.Fatalf("independent adjacent tasks merged: %d blocks", len(blks))
	}
}

func TestCategoryAssignment(t *testing.T) {
	// a at period 6 (2 instances in H=12), b at 12 depending on a.
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 6, 1, 1)
	b := ts.MustAddTask("b", 12, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	s := sched.MustNewSchedule(ts, arch.MustNew(1, 1))
	s.MustPlace(a, 0, 0) // a#1@0, a#2@6
	s.MustPlace(b, 0, 7) // merges with a#2 (gap 0 < C)
	blks := Build(sched.FromSchedule(s))
	if len(blks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blks))
	}
	// First block: [a#1] is category 1; second: [a#2, b#1] starts with a
	// second instance → category 2.
	if blks[0].Category != 1 {
		t.Errorf("block [a#1] category = %d, want 1", blks[0].Category)
	}
	if blks[1].Category != 2 {
		t.Errorf("block [a#2,b#1] category = %d, want 2", blks[1].Category)
	}
}

func TestBlocksSortedAndIDed(t *testing.T) {
	blks := Build(pair(t, 3))
	for i, b := range blks {
		if b.ID != i {
			t.Errorf("block %d has ID %d", i, b.ID)
		}
		if i > 0 && blks[i-1].Start() > b.Start() {
			t.Error("blocks not sorted by start")
		}
	}
}

func TestShiftMovesAllMembers(t *testing.T) {
	blks := Build(pair(t, 0))
	b := blks[0]
	before := make([]model.Time, len(b.Members))
	for i, m := range b.Members {
		before[i] = m.Start
	}
	b.Shift(-1)
	for i, m := range b.Members {
		if m.Start != before[i]-1 {
			t.Errorf("member %d start %d, want %d", i, m.Start, before[i]-1)
		}
	}
}

func TestBlockAccessors(t *testing.T) {
	blks := Build(pair(t, 0))
	b := blks[0]
	ts := pair(t, 0).TS // same structure
	if b.End(ts) != b.Start()+2 {
		t.Errorf("End = %d, want start+2 (two chained unit tasks)", b.End(ts))
	}
	if got := len(b.Tasks()); got != 2 {
		t.Errorf("Tasks() has %d entries, want 2", got)
	}
	if !b.HasInstance(b.Members[0].Inst) {
		t.Error("HasInstance false for own member")
	}
	if b.HasInstance(model.InstanceID{Task: 99, K: 0}) {
		t.Error("HasInstance true for foreign instance")
	}
}

// Property-style check over the paper system: every instance belongs to
// exactly one block, and block aggregates match member sums.
func TestBlocksPartitionInstances(t *testing.T) {
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 4)
	b := ts.MustAddTask("b", 6, 1, 1)
	c := ts.MustAddTask("c", 6, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustAddDependence(b, c, 1)
	ts.MustFreeze()
	s := sched.MustNewSchedule(ts, arch.MustNew(2, 1))
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 1, 5)
	s.MustPlace(c, 1, 6)
	is := sched.FromSchedule(s)
	blks := Build(is)

	seen := make(map[model.InstanceID]int)
	for _, bl := range blks {
		var mem model.Mem
		var exec model.Time
		for _, m := range bl.Members {
			seen[m.Inst]++
			mem += ts.Task(m.Inst.Task).Mem
			exec += ts.Task(m.Inst.Task).WCET
		}
		if mem != bl.Mem() || exec != bl.Exec() {
			t.Errorf("block %d aggregates mismatch: mem %d vs %d, exec %d vs %d",
				bl.ID, bl.Mem(), mem, bl.Exec(), exec)
		}
	}
	if len(seen) != ts.TotalInstances() {
		t.Fatalf("blocks cover %d instances, want %d", len(seen), ts.TotalInstances())
	}
	for iid, n := range seen {
		if n != 1 {
			t.Errorf("instance %v in %d blocks", iid, n)
		}
	}
}
