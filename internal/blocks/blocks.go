// Package blocks groups scheduled task instances into the paper's blocks
// (§3.1): a block is one instance, or several dependent instances
// scheduled on the same processor so tightly that moving any one of them
// separately would require an inter-processor communication that does not
// fit in the slack between them (equations 1 and 2 of the paper).
//
// Two dependent instances u → v on the same processor belong to the same
// block when start(v) < end(u) + C: there is not enough room between them
// for the communication a separation would create. When the gap is at
// least C, the instances form separate blocks — each can move on its own.
//
// Blocks fall into two categories (§3.1):
//
//	Category 1: every member is the *first* instance (k = 0) of its task.
//	  Moving such a block can decrease its start time, improving the total
//	  execution time.
//	Category 2: the earliest member is a later instance (k > 0). Its start
//	  time is pinned by strict periodicity to the first-category block
//	  holding the first instance, and decreases only by propagation.
package blocks

import (
	"cmp"
	"slices"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/sched"
)

// Member is one instance inside a block with its current start time.
type Member struct {
	Inst  model.InstanceID
	Start model.Time
}

// Block is a group of dependent co-scheduled instances that moves as a
// unit.
type Block struct {
	ID       int
	Proc     arch.ProcID // processor currently hosting the block
	Members  []Member    // sorted by start time at construction
	Category int         // 1 or 2

	exec  model.Time // ΣE of members
	mem   model.Mem  // Σm of members (per-instance accounting)
	start model.Time // cached min member start
	end   model.Time // cached max member end
}

// Start returns the block's start time: the smallest member start.
func (b *Block) Start() model.Time { return b.start }

// End returns the completion time of the last-finishing member.
func (b *Block) End(ts *model.TaskSet) model.Time { return b.end }

// Recompute refreshes the cached start/end bounds after member starts
// changed individually (per-task propagation shifts).
func (b *Block) Recompute(ts *model.TaskSet) {
	b.start = b.Members[0].Start
	b.end = b.Members[0].Start + ts.Task(b.Members[0].Inst.Task).WCET
	for _, m := range b.Members[1:] {
		if m.Start < b.start {
			b.start = m.Start
		}
		if e := m.Start + ts.Task(m.Inst.Task).WCET; e > b.end {
			b.end = e
		}
	}
}

// Exec returns the sum of member execution times (the E_B of the Block
// Condition).
func (b *Block) Exec() model.Time { return b.exec }

// Mem returns the sum of member memory amounts (the m_B of the cost
// function).
func (b *Block) Mem() model.Mem { return b.mem }

// Shift rigidly moves every member by delta (negative = earlier).
func (b *Block) Shift(delta model.Time) {
	for i := range b.Members {
		b.Members[i].Start += delta
	}
	b.start += delta
	b.end += delta
}

// HasInstance reports whether the block contains the given instance.
func (b *Block) HasInstance(iid model.InstanceID) bool {
	for _, m := range b.Members {
		if m.Inst == iid {
			return true
		}
	}
	return false
}

// Tasks returns the distinct task IDs present in the block. Blocks are
// small (a handful of members), so the dedupe is a linear scan rather
// than a map.
func (b *Block) Tasks() []model.TaskID {
	out := make([]model.TaskID, 0, len(b.Members))
	for _, m := range b.Members {
		dup := false
		for _, t := range out {
			if t == m.Inst.Task {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, m.Inst.Task)
		}
	}
	return out
}

// Build constructs the blocks of an instance-level schedule, one set per
// processor, and returns them sorted by (start time, processor, first
// member). Block IDs are assigned in that order.
func Build(is *sched.InstSchedule) []*Block {
	ts := is.TS
	c := is.Arch.CommTime
	var all []*Block

	// pos maps the dense instance index to the position on the current
	// processor (-1 = elsewhere); entries are reset per processor so the
	// array is allocated once.
	pos := make([]int, ts.TotalInstances())
	for i := range pos {
		pos[i] = -1
	}

	for p := arch.ProcID(0); int(p) < is.Arch.Procs; p++ {
		insts := is.InstancesOn(p)
		if len(insts) == 0 {
			continue
		}
		for i, iid := range insts {
			pos[ts.InstanceIndex(iid)] = i
		}
		// Union instances linked by a dependence with slack < C.
		uf := newUnionFind(len(insts))
		for i, iid := range insts {
			pl, _ := is.Placement(iid)
			model.EachInstanceDep(ts, iid.Task, iid.K, func(src model.InstanceID) {
				j := pos[ts.InstanceIndex(src)]
				if j < 0 {
					return
				}
				if pl.Start < is.End(src)+c {
					uf.union(i, j)
				}
			})
		}
		groups := make([][]model.InstanceID, len(insts))
		for i, iid := range insts {
			r := uf.find(i)
			groups[r] = append(groups[r], iid)
		}
		for _, g := range groups {
			if len(g) > 0 {
				all = append(all, newBlock(is, p, g))
			}
		}
		for _, iid := range insts {
			pos[ts.InstanceIndex(iid)] = -1
		}
	}

	slices.SortFunc(all, func(a, b *Block) int {
		if c := cmp.Compare(a.Start(), b.Start()); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Proc, b.Proc); c != 0 {
			return c
		}
		ai, bi := a.Members[0].Inst, b.Members[0].Inst
		if c := cmp.Compare(ai.Task, bi.Task); c != 0 {
			return c
		}
		return cmp.Compare(ai.K, bi.K)
	})
	for i, b := range all {
		b.ID = i
	}
	return all
}

func newBlock(is *sched.InstSchedule, p arch.ProcID, g []model.InstanceID) *Block {
	ts := is.TS
	b := &Block{Proc: p, Category: 1}
	for _, iid := range g {
		pl, _ := is.Placement(iid)
		b.Members = append(b.Members, Member{Inst: iid, Start: pl.Start})
		b.exec += ts.Task(iid.Task).WCET
		b.mem += ts.Task(iid.Task).Mem
	}
	slices.SortFunc(b.Members, func(a, c Member) int {
		if d := cmp.Compare(a.Start, c.Start); d != 0 {
			return d
		}
		if d := cmp.Compare(a.Inst.Task, c.Inst.Task); d != 0 {
			return d
		}
		return cmp.Compare(a.Inst.K, c.Inst.K)
	})
	// Category 2 when the first member is a later instance of its task
	// (§3.1: "a block whose the first task is another instance than the
	// first instance of this task").
	if b.Members[0].Inst.K > 0 {
		b.Category = 2
	}
	b.Recompute(ts)
	return b
}

// unionFind is a minimal disjoint-set structure.
type unionFind struct{ parent, rank []int }

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
