package arch

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := New(2, -1); err == nil {
		t.Error("negative comm time accepted")
	}
	a, err := New(3, 2)
	if err != nil || a.Procs != 3 || a.CommTime != 2 {
		t.Fatalf("New(3,2) = %+v, %v", a, err)
	}
}

func TestDefaultBusRoutesAllPairs(t *testing.T) {
	a := MustNew(4, 1)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			m, err := a.Route(ProcID(i), ProcID(j))
			if err != nil || m != 0 {
				t.Errorf("Route(%d,%d) = %d, %v", i, j, m, err)
			}
		}
	}
	if a.Media() != 1 || a.MediumName(0) != "Med" {
		t.Errorf("default media wrong: %d %q", a.Media(), a.MediumName(0))
	}
}

func TestAddMediumOverridesRoute(t *testing.T) {
	a := MustNew(3, 1)
	id, err := a.AddMedium("link12", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := a.Route(0, 1); m != id {
		t.Errorf("route 0→1 = %d, want %d", m, id)
	}
	if m, _ := a.Route(0, 2); m != 0 {
		t.Errorf("route 0→2 = %d, want bus", m)
	}
}

func TestAddMediumValidation(t *testing.T) {
	a := MustNew(2, 1)
	if _, err := a.AddMedium("solo", 0); err == nil {
		t.Error("single-processor medium accepted")
	}
	if _, err := a.AddMedium("bad", 0, ProcID(7)); err == nil {
		t.Error("unknown processor accepted")
	}
}

func TestProcNamesAndValid(t *testing.T) {
	a := MustNew(2, 1)
	if a.ProcName(0) != "P1" || a.ProcName(1) != "P2" {
		t.Errorf("names: %s %s", a.ProcName(0), a.ProcName(1))
	}
	if a.Valid(ProcID(-1)) || a.Valid(ProcID(2)) || !a.Valid(0) {
		t.Error("Valid wrong")
	}
}
