// Package arch models the homogeneous distributed architecture of the
// paper: M identical processors with identical memory capacity, connected
// by one or more shared communication media. Every pair of processors is
// reachable (possibly over a single bus, as in the paper's figure 2).
package arch

import (
	"fmt"

	"repro/internal/model"
)

// ProcID identifies a processor, 0-based.
type ProcID int

// MediumID identifies a communication medium, 0-based.
type MediumID int

// Architecture is a homogeneous multiprocessor: M identical processors,
// each with MemCapacity local memory, and a set of media. CommTime is the
// time C elapsed between the start of a send task and the completion of
// the matching receive task for one datum (the paper uses a single C for
// its homogeneous media).
type Architecture struct {
	Procs       int
	MemCapacity model.Mem  // per-processor capacity; 0 means unlimited
	CommTime    model.Time // C, per-datum inter-processor transfer time

	// ContendedMedia switches the communication model. The paper treats C
	// as the end-to-end time between the start of a send task and the
	// completion of the matching receive task, and does not model bus
	// contention; that latency-only model is the default. With
	// ContendedMedia set, transfers additionally reserve exclusive,
	// non-overlapping slots on their medium (EDF-packed), which is the
	// stricter model a shared bus implies.
	ContendedMedia bool

	media []medium
	route map[[2]ProcID]MediumID
}

type medium struct {
	name  string
	procs []ProcID
}

// New returns an architecture with procs processors, a single shared bus
// connecting all of them, communication time c, and unlimited memory.
// Use SetMemCapacity to bound memory.
func New(procs int, c model.Time) (*Architecture, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("arch: need at least one processor, got %d", procs)
	}
	if c < 0 {
		return nil, fmt.Errorf("arch: negative communication time %d", c)
	}
	a := &Architecture{Procs: procs, CommTime: c, route: make(map[[2]ProcID]MediumID)}
	all := make([]ProcID, procs)
	for i := range all {
		all[i] = ProcID(i)
	}
	a.media = []medium{{name: "Med", procs: all}}
	for i := 0; i < procs; i++ {
		for j := 0; j < procs; j++ {
			if i != j {
				a.route[[2]ProcID{ProcID(i), ProcID(j)}] = 0
			}
		}
	}
	return a, nil
}

// MustNew is New that panics on error.
func MustNew(procs int, c model.Time) *Architecture {
	a, err := New(procs, c)
	if err != nil {
		panic(err)
	}
	return a
}

// SetMemCapacity bounds every processor's memory. Zero means unlimited.
func (a *Architecture) SetMemCapacity(m model.Mem) { a.MemCapacity = m }

// AddMedium declares an extra medium connecting the given processors and
// re-routes every pair it covers onto it (most recently added medium
// wins). It returns the new medium's ID.
func (a *Architecture) AddMedium(name string, procs ...ProcID) (MediumID, error) {
	if len(procs) < 2 {
		return 0, fmt.Errorf("arch: medium %q must connect at least two processors", name)
	}
	for _, p := range procs {
		if int(p) < 0 || int(p) >= a.Procs {
			return 0, fmt.Errorf("arch: medium %q: unknown processor %d", name, p)
		}
	}
	id := MediumID(len(a.media))
	a.media = append(a.media, medium{name: name, procs: append([]ProcID(nil), procs...)})
	for _, p := range procs {
		for _, q := range procs {
			if p != q {
				a.route[[2]ProcID{p, q}] = id
			}
		}
	}
	return id, nil
}

// Media returns the number of media.
func (a *Architecture) Media() int { return len(a.media) }

// MediumName returns a medium's name.
func (a *Architecture) MediumName(id MediumID) string { return a.media[id].name }

// Route returns the medium carrying traffic from src to dst. src and dst
// must be distinct, valid processors.
func (a *Architecture) Route(src, dst ProcID) (MediumID, error) {
	m, ok := a.route[[2]ProcID{src, dst}]
	if !ok {
		return 0, fmt.Errorf("arch: no route from P%d to P%d", src+1, dst+1)
	}
	return m, nil
}

// ProcName renders the 1-based processor name used in the paper ("P1").
func (a *Architecture) ProcName(p ProcID) string { return fmt.Sprintf("P%d", int(p)+1) }

// Valid reports whether p names a processor of this architecture.
func (a *Architecture) Valid(p ProcID) bool { return int(p) >= 0 && int(p) < a.Procs }
