package obs

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fixtureSnapshot builds a deterministic snapshot: fixed observations,
// pinned wall-clock fields. Used by both the golden test and the
// cumulativity checks.
func fixtureSnapshot() *Snapshot {
	s := NewSet(2)
	s.Recorder(0).Observe(StageSimulate, 900*time.Nanosecond)
	s.Recorder(0).Observe(StageSimulate, 3*time.Microsecond)
	s.Recorder(1).Observe(StageSimulate, 200*time.Microsecond)
	s.Recorder(1).Observe(StageBalance, 0)
	s.Recorder(0).Observe(StageBalance, 50*time.Millisecond)
	s.Recorder(0).Add(CounterTrialsAccepted, 5)
	s.Recorder(1).Add(CounterTrialsRejected, 1)
	s.Recorder(0).Add(CounterMemoHit, 3)
	snap := s.Snapshot()
	snap.ElapsedNS = 2_500_000_000 // wall-clock fields pinned for the fixture
	snap.Timeline = Timeline{WidthNS: 1 << 24, Counts: []int64{4, 0, 2}}
	return snap
}

// TestPromGolden pins the Prometheus exposition byte-for-byte against
// testdata/metrics.golden.prom — stable family/series ordering is part
// of the format contract the CI scrape leg parses. Regenerate with
//
//	OBS_UPDATE_GOLDEN=1 go test ./internal/obs -run TestPromGolden
func TestPromGolden(t *testing.T) {
	golden := filepath.Join("testdata", "metrics.golden.prom")
	var sb strings.Builder
	if err := WriteProm(&sb, "lb_", fixtureSnapshot()); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if updateGolden() {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("prometheus exposition diverged from the golden fixture; if intentional, rerun with OBS_UPDATE_GOLDEN=1\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPromStableOrdering: two renders of the same snapshot are
// byte-identical — map iteration order must not leak into the output.
func TestPromStableOrdering(t *testing.T) {
	snap := fixtureSnapshot()
	var a, b strings.Builder
	if err := WriteProm(&a, "lb_", snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&b, "lb_", snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of the same snapshot differ")
	}
}

// TestPromBucketCumulativity walks the rendered histogram and checks
// the bucket counts are non-decreasing in le order and that the +Inf
// bucket equals the _count series for every stage.
func TestPromBucketCumulativity(t *testing.T) {
	var sb strings.Builder
	if err := WriteProm(&sb, "lb_", fixtureSnapshot()); err != nil {
		t.Fatal(err)
	}
	lastByStage := map[string]float64{}
	infByStage := map[string]float64{}
	countByStage := map[string]float64{}
	for _, line := range strings.Split(sb.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "lb_stage_duration_seconds_bucket{"):
			stage := fieldValue(t, line, "stage")
			le := fieldValue(t, line, "le")
			v := sampleValue(t, line)
			if le == "+Inf" {
				infByStage[stage] = v
				continue
			}
			if v < lastByStage[stage] {
				t.Errorf("stage %s: bucket le=%s count %v below previous %v", stage, le, v, lastByStage[stage])
			}
			lastByStage[stage] = v
		case strings.HasPrefix(line, "lb_stage_duration_seconds_count{"):
			countByStage[fieldValue(t, line, "stage")] = sampleValue(t, line)
		}
	}
	if len(countByStage) == 0 {
		t.Fatal("no histogram series rendered")
	}
	for stage, count := range countByStage {
		if infByStage[stage] != count {
			t.Errorf("stage %s: +Inf bucket %v != count %v", stage, infByStage[stage], count)
		}
		if lastByStage[stage] > count {
			t.Errorf("stage %s: last finite bucket %v exceeds count %v", stage, lastByStage[stage], count)
		}
	}
}

func fieldValue(t *testing.T, line, label string) string {
	t.Helper()
	marker := label + `="`
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("label %q missing in %q", label, line)
	}
	rest := line[i+len(marker):]
	j := strings.Index(rest, `"`)
	if j < 0 {
		t.Fatalf("unterminated label value in %q", line)
	}
	return rest[:j]
}

func sampleValue(t *testing.T, line string) float64 {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		t.Fatalf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return v
}

// TestPromEscaping: label values with backslashes, quotes, and newlines
// render escaped; HELP text escapes backslash and newline.
func TestPromEscaping(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Gauge("esc_metric", "line1\nline2 with \\ slash",
		Sample{Labels: []Label{{Name: "path", Value: `C:\dir"q` + "\n"}}, Value: 1})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantHelp := `# HELP esc_metric line1\nline2 with \\ slash` + "\n"
	if !strings.Contains(out, wantHelp) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	wantSeries := `esc_metric{path="C:\\dir\"q\n"} 1` + "\n"
	if !strings.Contains(out, wantSeries) {
		t.Errorf("label value not escaped, want %q in:\n%s", wantSeries, out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("raw newline leaked into exposition:\n%q", out)
	}
}

// TestPromNilSnapshot: a nil snapshot renders an empty, valid body.
func TestPromNilSnapshot(t *testing.T) {
	var sb strings.Builder
	if err := WriteProm(&sb, "lb_", nil); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil snapshot rendered output:\n%s", sb.String())
	}
}

// TestPromBucketLE pins the le bound mapping: bucket 0 → "0", bucket i
// → 2^i ns in seconds, including the i=63 bound that would overflow
// int64 arithmetic.
func TestPromBucketLE(t *testing.T) {
	cases := map[int]string{
		0:  "0",
		1:  "2e-09",
		10: "1.024e-06",
		30: "1.073741824",
		63: "9.223372036854776e+09",
	}
	for i, want := range cases {
		if got := bucketLE(i); got != want {
			t.Errorf("bucketLE(%d) = %q, want %q", i, got, want)
		}
	}
}
