package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureRunInfo is a fully-populated sidecar with deterministic values
// (host facts hand-set, not read from the machine) so its rendering can
// be pinned byte-for-byte against the golden fixture.
func fixtureRunInfo() *RunInfo {
	ri := &RunInfo{
		Schema:    RunInfoSchema,
		Tool:      "lbfarm",
		Name:      "golden",
		SpecHash:  "deadbeef",
		Shard:     "2/3",
		Trials:    240,
		Workers:   8,
		ElapsedNS: 123_456_789,
		Host: Host{
			Hostname:   "host.example",
			OS:         "linux",
			Arch:       "amd64",
			CPUs:       16,
			GoMaxProcs: 16,
			GoVersion:  "go1.24.0",
		},
		Mem: MemStats{
			HeapAllocBytes:  1 << 20,
			TotalAllocBytes: 1 << 24,
			SysBytes:        1 << 25,
			Mallocs:         42_000,
			NumGC:           7,
			GCPauseTotalNS:  55_000,
			GCCPUFraction:   0.001,
		},
	}
	s := NewSet(2)
	s.Recorder(0).Observe(StageSimulate, 1000)
	s.Recorder(1).Observe(StageSimulate, 3000)
	s.Recorder(0).Add(CounterTrialsAccepted, 2)
	snap := s.Snapshot()
	snap.ElapsedNS = 123_456_789 // wall-clock fields pinned for the fixture
	snap.Timeline = Timeline{WidthNS: 1 << 24, Counts: []int64{2}}
	ri.Obs = snap
	return ri
}

// TestRunInfoGolden pins the sidecar rendering byte-for-byte against
// testdata/runinfo.golden.json: the schema documented in
// docs/observability.md is what consumers parse, so a layout change
// must show up as a golden diff (and a RunInfoSchema bump when a field
// is renamed or changes meaning). Regenerate with
//
//	OBS_UPDATE_GOLDEN=1 go test ./internal/obs -run TestRunInfoGolden
func TestRunInfoGolden(t *testing.T) {
	golden := filepath.Join("testdata", "runinfo.golden.json")
	got, err := fixtureRunInfo().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if updateGolden() {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("runinfo rendering diverged from the golden fixture; if the schema change is intentional, rerun with OBS_UPDATE_GOLDEN=1 (and bump RunInfoSchema on renames)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func updateGolden() bool {
	return os.Getenv("OBS_UPDATE_GOLDEN") != ""
}

// TestRunInfoRoundTrip: the golden fixture decodes into RunInfo and
// re-encodes to the identical bytes — no field is dropped, renamed, or
// retyped on the way through, so sidecars survive read-modify-write
// tooling unchanged.
func TestRunInfoRoundTrip(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "runinfo.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ri RunInfo
	if err := json.Unmarshal(want, &ri); err != nil {
		t.Fatal(err)
	}
	got, err := ri.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("golden sidecar does not round-trip through RunInfo\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunInfoWrite: Write produces a parseable file whose stage keys
// cover the full stage set — the invariant the CI smoke leg asserts on
// real runs.
func TestRunInfoWrite(t *testing.T) {
	ri := NewRunInfo("lbfarm")
	ri.Name = "writecheck"
	set := NewSet(1)
	ri.Obs = set.Snapshot()
	ri.Finish(set.Elapsed())
	path := filepath.Join(t.TempDir(), "writecheck"+RunInfoSuffix)
	if err := ri.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("sidecar must be newline-terminated")
	}
	var back RunInfo
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != RunInfoSchema || back.Tool != "lbfarm" || back.Host.GoVersion == "" {
		t.Fatalf("written sidecar lost identity fields: %+v", back)
	}
	for st := Stage(0); st < NumStages; st++ {
		if _, ok := back.Obs.Stages[st.String()]; !ok {
			t.Errorf("stage key %q missing from written sidecar", st)
		}
	}
}
