package obs

// Fleet-level aggregation: re-merging already-merged snapshots. A
// worker's Snapshot is the bucket-sum of its recorders; summing worker
// snapshots bucket-wise therefore yields exactly the Snapshot a single
// Set spanning every worker would have produced — the same
// order-independence argument, one level up. The coordinator uses this
// to fold periodic worker scrapes into one live campaign snapshot and,
// at end of run, into the <campaign>.fleetinfo.json sidecar.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// FleetInfoSchema versions the fleetinfo sidecar layout.
const FleetInfoSchema = 1

// FleetInfoSuffix is the campaign-level sidecar suffix: a campaign
// named <name> writes <name>+FleetInfoSuffix next to its merged
// artifacts. Like runinfo sidecars, fleetinfo sits outside the
// artifact byte-identity contract.
const FleetInfoSuffix = ".fleetinfo.json"

// FleetWorker is one worker's contribution to a fleet merge: its ID
// and the last snapshot scraped from it. Alive marks workers still
// registered at merge time — a worker that died mid-campaign keeps its
// last scrape but is flagged so consumers know the numbers stop early.
type FleetWorker struct {
	ID        string `json:"id"`
	Alive     bool   `json:"alive"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// FleetInfo is the campaign-level sidecar: identity, the merged
// cross-fleet telemetry snapshot, per-worker contribution stubs, and
// the coordinator's own fault counters (keyed by their /v1/status JSON
// names, e.g. "workers_dead", "requeues", "speculations") so one file
// answers both "where did fleet time go" and "what went wrong".
type FleetInfo struct {
	Schema   int              `json:"schema"`
	Tool     string           `json:"tool"`
	Name     string           `json:"name"`
	SpecHash string           `json:"spec_hash"`
	Shards   int              `json:"shards"`
	Host     Host             `json:"host"`
	Workers  []FleetWorker    `json:"workers"`
	Coord    map[string]int64 `json:"coord,omitempty"`
	Obs      *Snapshot        `json:"obs"`
}

// NewFleetInfo starts a fleetinfo sidecar for the named tool with the
// coordinator-host facts filled in.
func NewFleetInfo(tool string) *FleetInfo {
	ri := NewRunInfo(tool)
	return &FleetInfo{Schema: FleetInfoSchema, Tool: tool, Host: ri.Host}
}

// JSON renders the sidecar, indented, newline-terminated, with the
// worker list sorted by ID so identical fleets render identically.
func (fi *FleetInfo) JSON() ([]byte, error) {
	sort.Slice(fi.Workers, func(i, j int) bool { return fi.Workers[i].ID < fi.Workers[j].ID })
	data, err := json.MarshalIndent(fi, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Write renders the sidecar to path.
func (fi *FleetInfo) Write(path string) error {
	data, err := fi.JSON()
	if err != nil {
		return fmt.Errorf("obs: encoding fleetinfo: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing fleetinfo: %w", err)
	}
	return nil
}

// ReadFleetInfo parses a fleetinfo sidecar from path.
func ReadFleetInfo(path string) (*FleetInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading fleetinfo: %w", err)
	}
	fi := &FleetInfo{}
	if err := json.Unmarshal(data, fi); err != nil {
		return nil, fmt.Errorf("obs: parsing fleetinfo %s: %w", path, err)
	}
	return fi, nil
}

// MergeSnapshots folds any number of snapshots into one, with the same
// semantics as Set.Snapshot over the union of their recorders:
// bucket-wise stage sums (percentiles recomputed over the merged
// buckets), counter sums, slot-wise timeline sums after rescaling every
// timeline to the widest slot width, and the max elapsed time. Nil
// entries are skipped; merging zero snapshots returns an empty (but
// schema-complete) snapshot. The result is order-independent.
func MergeSnapshots(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{
		Stages:   make(map[string]StageStats, NumStages),
		Counters: make(map[string]int64, NumCounters),
	}
	type acc struct {
		buckets [histBuckets]int64
		total   int64
		max     int64
	}
	stages := make(map[string]*acc, NumStages)
	// Every canonical stage key is always present, even over zero
	// inputs, matching Set.Snapshot's schema guarantee.
	for st := Stage(0); st < NumStages; st++ {
		stages[st.String()] = &acc{}
	}
	var width int64
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.ElapsedNS > out.ElapsedNS {
			out.ElapsedNS = s.ElapsedNS
		}
		for name, st := range s.Stages {
			a := stages[name]
			if a == nil {
				a = &acc{}
				stages[name] = a
			}
			for i, c := range st.Buckets {
				if i < histBuckets {
					a.buckets[i] += c
				}
			}
			a.total += st.TotalNS
			if st.MaxNS > a.max {
				a.max = st.MaxNS
			}
		}
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		if len(s.Timeline.Counts) > 0 && s.Timeline.WidthNS > width {
			width = s.Timeline.WidthNS
		}
	}
	for name, a := range stages {
		out.Stages[name] = stageStats(a.buckets[:], a.total, a.max)
	}
	out.Timeline = mergeTimelines(width, snaps)
	return out
}

// mergeTimelines sums the snapshots' timelines at the given target slot
// width. Every timeline width is the initial power-of-two width times
// some number of doublings, so a narrower timeline coalesces pairwise
// (exactly the in-memory coalescing rule) until it matches, then sums
// slot-wise.
func mergeTimelines(width int64, snaps []*Snapshot) Timeline {
	if width == 0 {
		return Timeline{}
	}
	var counts [timelineSlots]int64
	for _, s := range snaps {
		if s == nil || len(s.Timeline.Counts) == 0 {
			continue
		}
		var local [timelineSlots]int64
		copy(local[:], s.Timeline.Counts)
		for w := s.Timeline.WidthNS; w < width; w *= 2 {
			for i := 0; i < timelineSlots/2; i++ {
				local[i] = local[2*i] + local[2*i+1]
			}
			for i := timelineSlots / 2; i < timelineSlots; i++ {
				local[i] = 0
			}
		}
		for i := range counts {
			counts[i] += local[i]
		}
	}
	last := -1
	for i, c := range counts {
		if c != 0 {
			last = i
		}
	}
	return Timeline{WidthNS: width, Counts: append([]int64(nil), counts[:last+1]...)}
}
