package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// TestBucketOf pins the histogram layout: bucket 0 for non-positive
// durations, bucket i ≥ 1 for [2^(i−1), 2^i) ns, saturating at the top.
func TestBucketOf(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{1 << 62, 63}, {1<<63 - 1, 63},
	} {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestBucketMid: the midpoint must lie inside its own bucket.
func TestBucketMid(t *testing.T) {
	for i := 1; i < histBuckets-1; i++ {
		mid := bucketMid(i)
		if got := bucketOf(time.Duration(mid)); got != i {
			t.Errorf("bucketMid(%d) = %d falls in bucket %d", i, mid, got)
		}
	}
}

// TestStagePercentiles: nearest-rank percentiles over a known
// distribution, clamped to the exactly-tracked max.
func TestStagePercentiles(t *testing.T) {
	s := NewSet(1)
	r := s.Recorder(0)
	// 90 fast observations in [256,512) ns, 10 slow in [65536,131072) ns.
	for i := 0; i < 90; i++ {
		r.Observe(StageSimulate, 300)
	}
	for i := 0; i < 10; i++ {
		r.Observe(StageSimulate, 100_000)
	}
	st := s.Snapshot().Stages[StageSimulate.String()]
	if st.Count != 100 || st.TotalNS != 90*300+10*100_000 {
		t.Fatalf("count/total = %d/%d", st.Count, st.TotalNS)
	}
	if st.P50NS != bucketMid(bucketOf(300)) {
		t.Errorf("p50 = %d, want the fast bucket midpoint %d", st.P50NS, bucketMid(bucketOf(300)))
	}
	if st.P99NS != bucketMid(bucketOf(100_000)) {
		t.Errorf("p99 = %d, want the slow bucket midpoint %d", st.P99NS, bucketMid(bucketOf(100_000)))
	}
	if st.MaxNS != 100_000 {
		t.Errorf("max = %d, want the exactly-tracked 100000", st.MaxNS)
	}
}

// TestPercentileClampedToMax: a single observation sits in a bucket
// whose midpoint exceeds it, so without the clamp every percentile
// would overreport beyond the largest duration ever seen.
func TestPercentileClampedToMax(t *testing.T) {
	s := NewSet(1)
	s.Recorder(0).Observe(StageFold, 65_537) // bucket [65536,131072), midpoint 98304
	st := s.Snapshot().Stages[StageFold.String()]
	if st.P50NS != 65_537 || st.P99NS != 65_537 {
		t.Fatalf("p50/p99 = %d/%d, want both clamped to the exact max 65537", st.P50NS, st.P99NS)
	}
}

// feed replays a fixed multiset of observations into a set, spread
// over its workers by the given stride — the same observations land on
// different recorders for different worker counts.
func feed(s *Set, n int) {
	durs := []time.Duration{120, 950, 31_000, 2_400_000, 7, 0, 64_000}
	for i := 0; i < n; i++ {
		r := s.Recorder(i)
		r.Observe(StageSimulate, durs[i%len(durs)])
		r.Observe(StageBalance, durs[(i*3)%len(durs)])
		r.Add(CounterTrialsAccepted, 1)
		if i%4 == 0 {
			r.Add(CounterMemoHit, 1)
		}
	}
	s.Aux().Add(CounterJournalFsyncs, 2)
}

// TestSnapshotMergeOrderIndependent pins the merge contract: the same
// multiset of observations produces a byte-identical stage and counter
// merge no matter how many workers recorded it or in what order —
// bucket-wise addition is commutative, so 1, 2, and 8 workers agree.
func TestSnapshotMergeOrderIndependent(t *testing.T) {
	render := func(workers int) string {
		s := NewSet(workers)
		feed(s, 500)
		snap := s.Snapshot()
		// Elapsed and the timeline are wall-clock by design; blank them
		// so the comparison covers exactly the merged telemetry.
		snap.ElapsedNS = 0
		snap.Timeline = Timeline{}
		b, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	one := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != one {
			t.Errorf("snapshot at %d workers diverges from 1 worker:\n%s\nvs\n%s", w, got, one)
		}
	}
}

// TestSnapshotAllStageKeys: every stage and counter key is present even
// when nothing was observed, so sidecar consumers can rely on the schema.
func TestSnapshotAllStageKeys(t *testing.T) {
	snap := NewSet(2).Snapshot()
	if len(snap.Stages) != int(NumStages) || len(snap.Counters) != int(NumCounters) {
		t.Fatalf("got %d stages, %d counters, want %d and %d",
			len(snap.Stages), len(snap.Counters), NumStages, NumCounters)
	}
	for st := Stage(0); st < NumStages; st++ {
		if _, ok := snap.Stages[st.String()]; !ok {
			t.Errorf("stage %q missing from empty snapshot", st)
		}
	}
}

// TestNilSafety: a nil set and nil recorders are complete no-ops — the
// disabled-telemetry path every call site takes with -obs=false.
func TestNilSafety(t *testing.T) {
	var s *Set
	if s.Recorder(3) != nil || s.Aux() != nil || s.Snapshot() != nil || s.Elapsed() != 0 {
		t.Fatal("nil Set must hand out nil recorders and a nil snapshot")
	}
	s.Tick()
	var r *Recorder
	r.Observe(StageBalance, time.Second)
	r.Add(CounterMemoHit, 1)
	if !r.Clock().IsZero() {
		t.Fatal("nil recorder must not read the clock")
	}
	if !r.Stamp(StageBalance, time.Now()).IsZero() {
		t.Fatal("nil recorder Stamp must return the zero time")
	}
}

// TestRecorderAllocFree: the hot-path methods perform zero allocations —
// the recorder is a fixed block of atomics, so observing must never
// touch the heap (the engine calls these once per stage per trial).
func TestRecorderAllocFree(t *testing.T) {
	r := NewSet(1).Recorder(0)
	if n := testing.AllocsPerRun(100, func() {
		t0 := r.Clock()
		r.Observe(StageSimulate, 1234)
		r.Add(CounterTrialsAccepted, 1)
		r.Stamp(StageBalance, t0)
	}); n != 0 {
		t.Fatalf("recorder hot path allocates %.1f objects per run, want 0", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(100, func() {
		nilRec.Observe(StageSimulate, 1234)
		nilRec.Stamp(StageBalance, nilRec.Clock())
	}); n != 0 {
		t.Fatalf("nil recorder path allocates %.1f objects per run, want 0", n)
	}
}

// TestTimelineCoalesce: outgrowing the slots doubles the width with
// pairwise coalescing, preserving the total count and each tick's slot.
func TestTimelineCoalesce(t *testing.T) {
	var tl timeline
	tl.init()
	w := tl.width
	// Two ticks early, then one far beyond the initial horizon.
	tl.tick(0)
	tl.tick(w + 1) // slot 1
	tl.tick(time.Duration(timelineSlots) * 3 * w)
	snap := tl.snapshot()
	var total int64
	for _, c := range snap.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("coalescing lost ticks: total %d, want 3", total)
	}
	if snap.WidthNS <= int64(w) {
		t.Fatalf("width %d did not double from %d", snap.WidthNS, w)
	}
	if snap.Counts[0] != 2 {
		t.Fatalf("early ticks did not coalesce into slot 0: %v", snap.Counts)
	}
}

// TestStageCounterNames: the published names are part of the sidecar
// schema; renaming one is a schema bump, so pin them.
func TestStageCounterNames(t *testing.T) {
	wantStages := []string{"generate", "schedule", "balance", "simulate",
		"analyze_before", "analyze_after", "journal_append", "journal_fsync",
		"sink_wait", "fold"}
	for i, want := range wantStages {
		if got := Stage(i).String(); got != want {
			t.Errorf("stage %d = %q, want %q", i, got, want)
		}
	}
	wantCounters := []string{"memo_hits", "memo_misses", "journal_records",
		"journal_bytes", "journal_fsyncs", "replayed_trials", "torn_repairs",
		"trials_accepted", "trials_rejected"}
	for i, want := range wantCounters {
		if got := Counter(i).String(); got != want {
			t.Errorf("counter %d = %q, want %q", i, got, want)
		}
	}
	if Stage(-1).String() != "unknown" || Counter(99).String() != "unknown" {
		t.Error("out-of-range names must render as unknown")
	}
}
