package obs

// Prometheus text exposition (version 0.0.4) without the client
// library: the snapshot layer already owns every number a scrape needs,
// so the encoder is just deterministic formatting. Three properties are
// load-bearing and pinned by the golden test:
//
//   - Stable ordering. Families render in the order the caller emits
//     them; the snapshot renderer walks stages and counters in their
//     canonical enum order (with any foreign keys appended sorted), so
//     two scrapes of identical telemetry are byte-identical.
//   - Correct escaping. Label values escape backslash, double-quote,
//     and newline; HELP text escapes backslash and newline — the two
//     places the text format is quietly unforgiving.
//   - Cumulative histogram buckets. The log₂ stage histograms are
//     re-rendered as Prometheus cumulative buckets: the `le` bound of
//     bucket i is 2^i nanoseconds in seconds, counts accumulate, and
//     the `+Inf` bucket always equals `_count`.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type a /metrics endpoint must serve
// for the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one metric label pair.
type Label struct {
	Name  string
	Value string
}

// Sample is one series of a metric family: its label set and value.
type Sample struct {
	Labels []Label
	Value  float64
}

// PromWriter renders metric families to w in the Prometheus text
// format. Errors are sticky: the first write failure is retained and
// every later call is a no-op, so callers check Err once at the end.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, double-quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value: shortest round-trip float, with
// the spellings the text format expects for the non-finite cases.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// header emits the HELP/TYPE preamble of one family.
func (p *PromWriter) header(name, typ, help string) {
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// sample emits one series line.
func (p *PromWriter) sample(name string, labels []Label, value float64) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, formatValue(value))
		return
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	p.printf("%s{%s} %s\n", name, sb.String(), formatValue(value))
}

// Counter emits one counter family. With no samples, a single
// unlabelled zero series is emitted so the family is always present.
func (p *PromWriter) Counter(name, help string, samples ...Sample) {
	p.metric(name, "counter", help, samples)
}

// Gauge emits one gauge family.
func (p *PromWriter) Gauge(name, help string, samples ...Sample) {
	p.metric(name, "gauge", help, samples)
}

func (p *PromWriter) metric(name, typ, help string, samples []Sample) {
	p.header(name, typ, help)
	if len(samples) == 0 {
		samples = []Sample{{}}
	}
	for _, s := range samples {
		p.sample(name, s.Labels, s.Value)
	}
}

// bucketLE is the Prometheus `le` bound of log₂ bucket i in seconds:
// every observation in bucket i is < 2^i ns, hence ≤ 2^i ns.
func bucketLE(i int) string {
	if i <= 0 {
		return "0"
	}
	return strconv.FormatFloat(math.Ldexp(1, i)/1e9, 'g', -1, 64)
}

// Histograms emits one histogram family with a series per named
// StageStats (label `stage`), converting the log₂ nanosecond buckets to
// cumulative seconds-bounded buckets. Trailing all-zero buckets are
// trimmed by the snapshot; the mandatory `+Inf` bucket carries the full
// count either way.
func (p *PromWriter) Histograms(name, help string, ordered []string, stages map[string]StageStats) {
	p.header(name, "histogram", help)
	for _, key := range ordered {
		st, ok := stages[key]
		if !ok {
			continue
		}
		labels := []Label{{Name: "stage", Value: key}}
		var cum int64
		for i, c := range st.Buckets {
			cum += c
			p.sample(name+"_bucket", append(labels[:1:1], Label{Name: "le", Value: bucketLE(i)}), float64(cum))
		}
		p.sample(name+"_bucket", append(labels[:1:1], Label{Name: "le", Value: "+Inf"}), float64(st.Count))
		p.sample(name+"_sum", labels, float64(st.TotalNS)/1e9)
		p.sample(name+"_count", labels, float64(st.Count))
	}
}

// stageOrder returns the snapshot's stage keys in canonical reporting
// order, with any keys outside the known stage set appended sorted —
// future stages degrade to stable, not silent.
func stageOrder(stages map[string]StageStats) []string {
	known := make(map[string]bool, NumStages)
	order := make([]string, 0, len(stages))
	for st := Stage(0); st < NumStages; st++ {
		known[st.String()] = true
		if _, ok := stages[st.String()]; ok {
			order = append(order, st.String())
		}
	}
	var extra []string
	for k := range stages {
		if !known[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return append(order, extra...)
}

// counterOrder mirrors stageOrder for the counter map.
func counterOrder(counters map[string]int64) []string {
	known := make(map[string]bool, NumCounters)
	order := make([]string, 0, len(counters))
	for c := Counter(0); c < NumCounters; c++ {
		known[c.String()] = true
		if _, ok := counters[c.String()]; ok {
			order = append(order, c.String())
		}
	}
	var extra []string
	for k := range counters {
		if !known[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return append(order, extra...)
}

// Snapshot renders one telemetry snapshot under the given metric-name
// prefix (e.g. "lb_" for a local run, "lbfleet_" for the coordinator's
// fleet merge): an elapsed-seconds gauge, one counter family per event
// counter, and the per-stage latency histogram family. A nil snapshot
// emits nothing.
func (p *PromWriter) Snapshot(prefix string, snap *Snapshot) {
	if snap == nil {
		return
	}
	p.Gauge(prefix+"elapsed_seconds", "Wall-clock time since telemetry started.",
		Sample{Value: float64(snap.ElapsedNS) / 1e9})
	for _, key := range counterOrder(snap.Counters) {
		p.Counter(prefix+key+"_total", "Cumulative "+strings.ReplaceAll(key, "_", " ")+".",
			Sample{Value: float64(snap.Counters[key])})
	}
	p.Histograms(prefix+"stage_duration_seconds", "Pipeline stage latency distribution.",
		stageOrder(snap.Stages), snap.Stages)
}

// WriteProm renders snap under prefix to w and returns the first write
// error — the one-call form for /metrics handlers that serve only a
// local snapshot.
func WriteProm(w io.Writer, prefix string, snap *Snapshot) error {
	p := NewPromWriter(w)
	p.Snapshot(prefix, snap)
	return p.Err()
}
