package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"sync"
)

// publishMu serialises expvar registration; expvar.Publish panics on a
// duplicate name, and tests (plus a CLI that restarts its server)
// legitimately publish the same key twice.
var publishMu sync.Mutex

// Publish registers fn as the expvar variable `name`, replacing
// nothing: a name that is already registered keeps its first function.
func Publish(name string, fn func() any) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(fn))
	}
}

// Serve starts the live debug endpoint on addr (host:port; port 0
// picks a free one): the default HTTP mux, which carries expvar's
// /debug/vars — including every variable registered via Publish — and
// net/http/pprof's /debug/pprof/ profile family. It returns the bound
// address and a closer. The server runs until closed (or process
// exit); a failed accept after close is expected and swallowed.
//
// This is the observation surface a campaign daemon or coordinator
// scrapes: /debug/vars for per-stage latency and counters mid-run
// (straggler detection), /debug/pprof/profile for a CPU profile of a
// live sweep without restarting it under -cpuprofile.
func Serve(addr string, vars map[string]func() any) (bound string, close func() error, err error) {
	for name, fn := range vars {
		Publish(name, fn)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
