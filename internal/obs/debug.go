package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// RegisterDebug mounts the shared live-debug surface on mux — the one
// route family every server in the repo (lbfarm's -debug-addr, lbmerge,
// the lbcoord control API, the lbfarmd daemon, lbfarm -worker) serves,
// wired here once instead of hand-rolled per CLI:
//
//	GET /debug/vars    one JSON object, one key per vars entry, each
//	                   value rendered fresh per request (the expvar
//	                   shape the coordinator's fleet scrape and the
//	                   straggler detector read)
//	GET /debug/pprof/  the net/http/pprof profile family (index,
//	                   cmdline, profile, symbol, trace, and the named
//	                   runtime profiles)
//	GET /metrics       the Prometheus text exposition written by
//	                   metrics (skipped when metrics is nil)
//
// The mux is the caller's: a server that guards its routes (the worker
// 503s everything after a simulated kill) wraps the returned mux in its
// own middleware.
func RegisterDebug(mux *http.ServeMux, metrics func(io.Writer) error, vars map[string]func() any) {
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]any, len(vars))
		for name, fn := range vars {
			out[name] = fn()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	if metrics != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", PromContentType)
			_ = metrics(w)
		})
	}
}

// SnapshotMetrics adapts a live snapshot source into the metrics writer
// RegisterDebug wants: each scrape renders snap() under the given
// series prefix. A nil snapshot (telemetry off) renders an empty, still
// valid exposition.
func SnapshotMetrics(prefix string, snap func() *Snapshot) func(io.Writer) error {
	return func(w io.Writer) error {
		var s *Snapshot
		if snap != nil {
			s = snap()
		}
		return WriteProm(w, prefix, s)
	}
}

// Serve starts the live debug endpoint on addr (host:port; port 0
// picks a free one): a fresh mux carrying RegisterDebug's route family
// — /debug/vars with every entry of vars, /debug/pprof/, and a
// Prometheus /metrics rendering of the live snapshot under the "lb_"
// local prefix. It returns the bound address and a closer. The server
// runs until closed (or process exit); a failed accept after close is
// expected and swallowed.
//
// This is the observation surface a campaign daemon or coordinator
// scrapes: /debug/vars for per-stage latency and counters mid-run
// (straggler detection), /metrics for standard Prometheus ingestion,
// /debug/pprof/profile for a CPU profile of a live sweep without
// restarting it under -cpuprofile.
func Serve(addr string, snap func() *Snapshot, vars map[string]func() any) (bound string, close func() error, err error) {
	mux := http.NewServeMux()
	RegisterDebug(mux, SnapshotMetrics("lb_", snap), vars)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
