package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"sync"
)

// publishMu serialises expvar registration; expvar.Publish panics on a
// duplicate name, and tests (plus a CLI that restarts its server)
// legitimately publish the same key twice.
var publishMu sync.Mutex

// Publish registers fn as the expvar variable `name`, replacing
// nothing: a name that is already registered keeps its first function.
func Publish(name string, fn func() any) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(fn))
	}
}

// metricsMu guards the settable provider behind the process-wide
// /metrics handler. The handler registers on the default mux exactly
// once (a mux panics on duplicate patterns, and tests plus restarting
// CLIs legitimately serve twice); the provider is swapped each time so
// the newest run's telemetry wins.
var (
	metricsMu      sync.Mutex
	metricsFn      func() *Snapshot
	metricsMounted bool
)

// PublishMetrics mounts /metrics on the default HTTP mux (first call
// only) and points it at fn: each scrape renders fn() in the
// Prometheus text format under the "lb_" local-snapshot prefix. A nil
// fn (or a nil snapshot from it) serves an empty, still-valid
// exposition.
func PublishMetrics(fn func() *Snapshot) {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	metricsFn = fn
	if metricsMounted {
		return
	}
	metricsMounted = true
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		metricsMu.Lock()
		cur := metricsFn
		metricsMu.Unlock()
		var snap *Snapshot
		if cur != nil {
			snap = cur()
		}
		w.Header().Set("Content-Type", PromContentType)
		_ = WriteProm(w, "lb_", snap)
	})
}

// Serve starts the live debug endpoint on addr (host:port; port 0
// picks a free one): the default HTTP mux, which carries expvar's
// /debug/vars — including every variable registered via Publish —
// net/http/pprof's /debug/pprof/ profile family, and (when snap is
// non-nil) a Prometheus /metrics rendering of the live snapshot. It
// returns the bound address and a closer. The server runs until closed
// (or process exit); a failed accept after close is expected and
// swallowed.
//
// This is the observation surface a campaign daemon or coordinator
// scrapes: /debug/vars for per-stage latency and counters mid-run
// (straggler detection), /metrics for standard Prometheus ingestion,
// /debug/pprof/profile for a CPU profile of a live sweep without
// restarting it under -cpuprofile.
func Serve(addr string, snap func() *Snapshot, vars map[string]func() any) (bound string, close func() error, err error) {
	for name, fn := range vars {
		Publish(name, fn)
	}
	if snap != nil {
		PublishMetrics(snap)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
