package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// RunInfoSchema versions the runinfo sidecar layout. Bump it when a
// field is renamed or its meaning changes; adding fields is
// backward-compatible and does not.
const RunInfoSchema = 1

// RunInfoSuffix is the sidecar filename suffix: a run named <name>
// writes <name>+RunInfoSuffix next to its artifacts (or its shard
// journal). Sidecars sit deliberately outside the artifact
// byte-identity contract — they carry wall-clock latencies and host
// facts that legitimately differ between byte-identical runs — so
// determinism checks must diff the .json/.csv artifacts only, never
// the sidecar.
const RunInfoSuffix = ".runinfo.json"

// Host describes where and with what a run executed.
type Host struct {
	Hostname   string `json:"hostname"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// MemStats is the end-of-run allocator/GC summary (a projection of
// runtime.MemStats, captured by Write).
type MemStats struct {
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	SysBytes        uint64  `json:"sys_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	NumGC           uint32  `json:"num_gc"`
	GCPauseTotalNS  uint64  `json:"gc_pause_total_ns"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
}

// RunInfo is the machine-readable sidecar one run writes next to its
// artifacts: identity (tool, campaign name, spec hash, shard), scale
// (trials, workers, elapsed), environment (host, Go build, GC/heap),
// and the merged telemetry snapshot (per-stage latency distributions,
// event counters, throughput timeline). docs/observability.md holds
// the schema catalogue.
type RunInfo struct {
	Schema   int    `json:"schema"`
	Tool     string `json:"tool"`
	Name     string `json:"name"`
	SpecHash string `json:"spec_hash"`
	Shard    string `json:"shard,omitempty"`
	// Job/Trace/Span tie a coordinator-dispatched run back to the fleet
	// event log: Job is the coordinator's job ID, Trace the
	// range-stable trace ID, Span the attempt-specific span ID (see
	// docs/observability.md, "Fleet observability"). Empty on local
	// runs.
	Job       string    `json:"job,omitempty"`
	Trace     string    `json:"trace,omitempty"`
	Span      string    `json:"span,omitempty"`
	Trials    int       `json:"trials"`
	Workers   int       `json:"workers"`
	ElapsedNS int64     `json:"elapsed_ns"`
	Host      Host      `json:"host"`
	Mem       MemStats  `json:"mem"`
	Obs       *Snapshot `json:"obs"`
}

// NewRunInfo starts a sidecar for the named tool with the host and
// build facts filled in; the caller sets identity and scale and
// attaches the snapshot before Write.
func NewRunInfo(tool string) *RunInfo {
	hostname, _ := os.Hostname()
	return &RunInfo{
		Schema: RunInfoSchema,
		Tool:   tool,
		Host: Host{
			Hostname:   hostname,
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}
}

// Finish stamps the elapsed time and captures the end-of-run GC/heap
// stats. Call it once, after the run completes and before Write.
func (ri *RunInfo) Finish(elapsed time.Duration) {
	ri.ElapsedNS = int64(elapsed)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ri.Mem = MemStats{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		SysBytes:        ms.Sys,
		Mallocs:         ms.Mallocs,
		NumGC:           ms.NumGC,
		GCPauseTotalNS:  ms.PauseTotalNs,
		GCCPUFraction:   ms.GCCPUFraction,
	}
}

// JSON renders the sidecar, indented, newline-terminated. Map keys are
// sorted by encoding/json, so two sidecars over identical telemetry
// render identically.
func (ri *RunInfo) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(ri, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Write renders the sidecar to path.
func (ri *RunInfo) Write(path string) error {
	data, err := ri.JSON()
	if err != nil {
		return fmt.Errorf("obs: encoding runinfo: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing runinfo: %w", err)
	}
	return nil
}

// ReadRunInfo parses a runinfo sidecar from path.
func ReadRunInfo(path string) (*RunInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading runinfo: %w", err)
	}
	ri := &RunInfo{}
	if err := json.Unmarshal(data, ri); err != nil {
		return nil, fmt.Errorf("obs: parsing runinfo %s: %w", path, err)
	}
	return ri, nil
}
