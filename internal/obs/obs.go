// Package obs is the run-level telemetry layer of the campaign engine:
// low-overhead per-worker recorders that time every trial stage and
// count the events that matter (memo hits, journal fsyncs, replayed
// trials, …), merged deterministically at end of run into a
// machine-readable snapshot.
//
// Design constraints, in order:
//
//   - Nothing observed may perturb what is published. Telemetry lives
//     entirely outside the artifact byte-identity contract: the engine
//     produces bit-identical JSON/CSV with recorders attached or nil
//     (pinned by TestObsByteIdentity), and the runinfo sidecar is a
//     separate file the determinism tests never compare.
//   - The hot path takes no locks and performs no allocations. A
//     Recorder is a fixed block of atomic counters — an observation is
//     one atomic add into a histogram bucket plus two more for the
//     sum and max — and every method is nil-receiver safe, so disabled
//     telemetry costs one predictable branch per call site.
//   - Merging is order-independent. Histograms are pure counts, so
//     merging per-worker recorders is bucket-wise addition and the
//     merged snapshot depends only on the multiset of observations,
//     never on which worker made them or in what order (pinned by
//     TestSnapshotMergeOrderIndependent).
//
// Latency histograms use 64 fixed log₂-scaled buckets over
// nanoseconds: bucket 0 holds non-positive durations, bucket i ≥ 1
// holds durations in [2^(i−1), 2^i) ns. Percentiles are nearest-rank
// over the bucket counts, reported at the bucket midpoint and clamped
// to the exactly-tracked maximum — a ≤ ~33% relative quantisation
// error, plenty for "where does the time go" and cheap enough to sit
// on every trial.
package obs

import (
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Stage enumerates the timed sections of the pipeline. The order here
// is the canonical reporting order; StageName is the key used in
// runinfo files and expvar output.
type Stage int

const (
	// StageGenerate is task-set generation (gen.Generate).
	StageGenerate Stage = iota
	// StageSchedule is the initial greedy schedule (sched.NewScheduler
	// .Run plus the dense-schedule materialisation).
	StageSchedule
	// StageBalance is the balancer suffix (core.Balancer.Run).
	StageBalance
	// StageSimulate is one simulator pass; an accepted trial records
	// two observations (the before and after schedules).
	StageSimulate
	// StageAnalyzeBefore is the policy-independent analyzer work of
	// the prefix: the prefix-only analyzers plus, with the before phase
	// enabled, the before-phase pass over the initial schedule. With
	// memoisation it is observed once per grid point, on the worker
	// that computed the prefix.
	StageAnalyzeBefore
	// StageAnalyzeAfter is the per-trial analyzer suffix: reuse
	// accounting, metric summaries, and the after-phase analyzer pass.
	StageAnalyzeAfter
	// StageJournalAppend is one whole journal append (marshal, frame,
	// write, and any fsync it triggered).
	StageJournalAppend
	// StageJournalFsync is the fsync wait alone, observed only on the
	// appends that synced.
	StageJournalFsync
	// StageSinkWait is the full engine-side sink call per trial —
	// journal append plus any lock wait; the gap between StageSinkWait
	// and StageJournalAppend is sink contention.
	StageSinkWait
	// StageFold is the end-of-run aggregation fold (collector
	// finalize, or the whole journal read+fold in lbmerge).
	StageFold

	// NumStages is the number of stages; keep it last.
	NumStages
)

var stageNames = [NumStages]string{
	"generate",
	"schedule",
	"balance",
	"simulate",
	"analyze_before",
	"analyze_after",
	"journal_append",
	"journal_fsync",
	"sink_wait",
	"fold",
}

// String returns the stage's canonical snake_case name.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Counter enumerates the event counters.
type Counter int

const (
	// CounterMemoHit / CounterMemoMiss count prefix-cache outcomes:
	// a miss computed the generate→schedule→simulate prefix, a hit
	// received a clone.
	CounterMemoHit Counter = iota
	CounterMemoMiss
	// CounterJournalRecords / CounterJournalBytes / CounterJournalFsyncs
	// count journal appends, bytes written (frame included), and
	// explicit fsync calls.
	CounterJournalRecords
	CounterJournalBytes
	CounterJournalFsyncs
	// CounterReplayedTrials counts rows replayed from a journal on
	// resume (trials this run did not have to execute).
	CounterReplayedTrials
	// CounterTornRepairs counts torn journal tails truncated during
	// resume (0 or 1 per run).
	CounterTornRepairs
	// CounterTrialsAccepted / CounterTrialsRejected count live trial
	// outcomes (replayed rows are not re-counted).
	CounterTrialsAccepted
	CounterTrialsRejected

	// NumCounters is the number of counters; keep it last.
	NumCounters
)

var counterNames = [NumCounters]string{
	"memo_hits",
	"memo_misses",
	"journal_records",
	"journal_bytes",
	"journal_fsyncs",
	"replayed_trials",
	"torn_repairs",
	"trials_accepted",
	"trials_rejected",
}

// String returns the counter's canonical snake_case name.
func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return "unknown"
	}
	return counterNames[c]
}

// histBuckets is the fixed histogram width: bucket 0 for d ≤ 0, bucket
// i ≥ 1 for durations in [2^(i−1), 2^i) nanoseconds. 63 doublings
// cover every representable duration.
const histBuckets = 64

// hist is one lock-free latency histogram. The max is tracked exactly
// (CAS loop); everything else is bucket counts plus the exact sum.
type hist struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

func (h *hist) observe(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur {
			return
		}
		if h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketMid is the representative (midpoint) value of bucket i in
// nanoseconds: the centre of [2^(i−1), 2^i).
func bucketMid(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i == 1:
		return 1
	default:
		return 3 << (i - 2)
	}
}

// Recorder is one lock-free telemetry sink: a fixed block of atomic
// stage histograms and event counters. The zero value is ready to use;
// a nil *Recorder is a valid no-op sink, so call sites do not branch
// on whether telemetry is enabled. All methods are safe for concurrent
// use — per-worker recorders exist to avoid cache-line contention, not
// for correctness.
type Recorder struct {
	stages   [NumStages]hist
	counters [NumCounters]atomic.Int64
}

// Observe records one latency sample for a stage. No-op on nil.
func (r *Recorder) Observe(s Stage, d time.Duration) {
	if r == nil {
		return
	}
	r.stages[s].observe(d)
}

// Add increments a counter by n. No-op on nil.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil {
		return
	}
	r.counters[c].Add(n)
}

// Clock returns the current time, or the zero time on a nil recorder —
// the paired start call for Stamp, so a disabled recorder never reads
// the clock.
func (r *Recorder) Clock() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// Stamp observes now−t0 into stage s and returns now, chaining the
// next stage's start out of the same clock read. No-op (returning the
// zero time) on nil.
func (r *Recorder) Stamp(s Stage, t0 time.Time) time.Time {
	if r == nil {
		return time.Time{}
	}
	now := time.Now()
	r.stages[s].observe(now.Sub(t0))
	return now
}

// Set owns the per-worker recorders of one run plus the shared
// throughput timeline. A nil *Set disables telemetry end to end: every
// method no-ops and Recorder/Aux return nil no-op recorders.
type Set struct {
	start time.Time
	recs  []*Recorder
	tl    timeline
}

// NewSet builds recorders for `workers` workers (≤ 0 means GOMAXPROCS)
// plus one auxiliary recorder for non-worker contexts (journal writer,
// CLI-side counters). The run clock for the throughput timeline starts
// now.
func NewSet(workers int) *Set {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Set{start: time.Now(), recs: make([]*Recorder, workers+1)}
	for i := range s.recs {
		s.recs[i] = &Recorder{}
	}
	s.tl.init()
	return s
}

// Recorder returns worker w's recorder (any w is safe; ids wrap), or
// nil when the set is nil.
func (s *Set) Recorder(w int) *Recorder {
	if s == nil {
		return nil
	}
	n := len(s.recs) - 1
	if w < 0 {
		w = -w
	}
	return s.recs[w%n]
}

// Aux returns the auxiliary recorder shared by non-worker contexts, or
// nil when the set is nil.
func (s *Set) Aux() *Recorder {
	if s == nil {
		return nil
	}
	return s.recs[len(s.recs)-1]
}

// Tick records one trial completion on the throughput timeline.
func (s *Set) Tick() {
	if s == nil {
		return
	}
	s.tl.tick(time.Since(s.start))
}

// Elapsed returns the time since the set was created (zero on nil).
func (s *Set) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// timelineSlots is the fixed slot count of the throughput timeline;
// the slot width doubles (counts coalescing pairwise) whenever the run
// outgrows it, so any run length fits at ≤ 2× resolution loss.
const timelineSlots = 64

// timeline counts trial completions per fixed-width time slot. Ticks
// happen once per trial — three orders of magnitude off the per-stage
// hot path — so a plain mutex is cheaper than getting lock-free
// coalescing right.
type timeline struct {
	mu     sync.Mutex
	width  time.Duration
	counts [timelineSlots]int64
}

func (t *timeline) init() {
	// 16.8ms slots cover the first ~1.07s before the first coalesce;
	// a power of two keeps every later width a clean multiple.
	t.width = 1 << 24
}

func (t *timeline) tick(off time.Duration) {
	if off < 0 {
		off = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for off/t.width >= timelineSlots {
		for i := 0; i < timelineSlots/2; i++ {
			t.counts[i] = t.counts[2*i] + t.counts[2*i+1]
		}
		for i := timelineSlots / 2; i < timelineSlots; i++ {
			t.counts[i] = 0
		}
		t.width *= 2
	}
	t.counts[off/t.width]++
}

// snapshot copies the timeline, trimming trailing empty slots.
func (t *timeline) snapshot() Timeline {
	t.mu.Lock()
	defer t.mu.Unlock()
	last := -1
	for i, c := range t.counts {
		if c != 0 {
			last = i
		}
	}
	return Timeline{
		WidthNS: int64(t.width),
		Counts:  append([]int64(nil), t.counts[:last+1]...),
	}
}

// StageStats is the merged summary of one stage's latency histogram.
// Percentiles are nearest-rank over the log₂ buckets, reported at the
// bucket midpoint and clamped to the exact maximum; Buckets carries
// the raw counts (index = log₂ layout above) so downstream consumers
// can re-aggregate without precision loss.
type StageStats struct {
	Count   int64   `json:"count"`
	TotalNS int64   `json:"total_ns"`
	P50NS   int64   `json:"p50_ns"`
	P90NS   int64   `json:"p90_ns"`
	P99NS   int64   `json:"p99_ns"`
	MaxNS   int64   `json:"max_ns"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Timeline is the trial-completion throughput timeline: Counts[i]
// trials finished in [i·WidthNS, (i+1)·WidthNS) after run start.
type Timeline struct {
	WidthNS int64   `json:"width_ns"`
	Counts  []int64 `json:"counts"`
}

// Snapshot is the deterministic merge of a Set's recorders: one
// StageStats per stage (every stage key always present, so consumers
// can rely on the schema) and one entry per counter.
type Snapshot struct {
	ElapsedNS int64                 `json:"elapsed_ns"`
	Stages    map[string]StageStats `json:"stages"`
	Counters  map[string]int64      `json:"counters"`
	Timeline  Timeline              `json:"timeline"`
}

// Snapshot merges every recorder of the set. Safe to call while the
// run is live (the debug endpoint does): each atomic is read once, so
// the result is a consistent-enough view for monitoring, and the final
// end-of-run call — after the workers have quiesced — is exact.
func (s *Set) Snapshot() *Snapshot {
	if s == nil {
		return nil
	}
	snap := &Snapshot{
		ElapsedNS: int64(time.Since(s.start)),
		Stages:    make(map[string]StageStats, NumStages),
		Counters:  make(map[string]int64, NumCounters),
		Timeline:  s.tl.snapshot(),
	}
	for st := Stage(0); st < NumStages; st++ {
		var buckets [histBuckets]int64
		var total, max int64
		for _, r := range s.recs {
			h := &r.stages[st]
			for i := range buckets {
				buckets[i] += h.buckets[i].Load()
			}
			total += h.sum.Load()
			if m := h.max.Load(); m > max {
				max = m
			}
		}
		snap.Stages[st.String()] = stageStats(buckets[:], total, max)
	}
	for c := Counter(0); c < NumCounters; c++ {
		var v int64
		for _, r := range s.recs {
			v += r.counters[c].Load()
		}
		snap.Counters[c.String()] = v
	}
	return snap
}

// stageStats folds merged bucket counts into the published summary.
func stageStats(buckets []int64, total, max int64) StageStats {
	var count int64
	last := -1
	for i, c := range buckets {
		count += c
		if c != 0 {
			last = i
		}
	}
	st := StageStats{Count: count, TotalNS: total, MaxNS: max}
	if count == 0 {
		return st
	}
	st.Buckets = append([]int64(nil), buckets[:last+1]...)
	st.P50NS = clampMax(histPercentile(buckets, count, 0.50), max)
	st.P90NS = clampMax(histPercentile(buckets, count, 0.90), max)
	st.P99NS = clampMax(histPercentile(buckets, count, 0.99), max)
	return st
}

func clampMax(v, max int64) int64 {
	if v > max {
		return max
	}
	return v
}

// histPercentile is the nearest-rank percentile over bucket counts,
// reported at the owning bucket's midpoint.
func histPercentile(buckets []int64, count int64, q float64) int64 {
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(len(buckets) - 1)
}
