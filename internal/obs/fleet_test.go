package obs

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// workerSnapshot builds one synthetic worker snapshot with seeded but
// deterministic observations.
func workerSnapshot(seed int) *Snapshot {
	s := NewSet(1)
	r := s.Recorder(0)
	for i := 0; i < 10+seed; i++ {
		r.Observe(StageSimulate, time.Duration(1000*(i+seed+1)))
		r.Observe(StageJournalAppend, time.Duration(500*(i+1)))
	}
	r.Add(CounterTrialsAccepted, int64(10+seed))
	r.Add(CounterJournalRecords, int64(10+seed))
	snap := s.Snapshot()
	snap.ElapsedNS = int64(seed+1) * 1_000_000
	snap.Timeline = Timeline{WidthNS: 1 << 24, Counts: []int64{int64(seed + 1), 2}}
	return snap
}

// TestMergeSnapshotsSums: fleet counters and per-stage counts are the
// exact sums of the inputs — the acceptance invariant the CI fleetinfo
// check asserts against worker sidecars.
func TestMergeSnapshotsSums(t *testing.T) {
	a, b, c := workerSnapshot(0), workerSnapshot(3), workerSnapshot(7)
	m := MergeSnapshots(a, b, c)
	for _, key := range []string{"trials_accepted", "journal_records"} {
		want := a.Counters[key] + b.Counters[key] + c.Counters[key]
		if m.Counters[key] != want {
			t.Errorf("counter %s = %d, want %d", key, m.Counters[key], want)
		}
	}
	for _, st := range []string{"simulate", "journal_append"} {
		want := a.Stages[st].Count + b.Stages[st].Count + c.Stages[st].Count
		if m.Stages[st].Count != want {
			t.Errorf("stage %s count = %d, want %d", st, m.Stages[st].Count, want)
		}
		wantTotal := a.Stages[st].TotalNS + b.Stages[st].TotalNS + c.Stages[st].TotalNS
		if m.Stages[st].TotalNS != wantTotal {
			t.Errorf("stage %s total = %d, want %d", st, m.Stages[st].TotalNS, wantTotal)
		}
	}
	if m.ElapsedNS != c.ElapsedNS {
		t.Errorf("elapsed = %d, want max input %d", m.ElapsedNS, c.ElapsedNS)
	}
	// Every canonical stage key is present even if no input observed it.
	for st := Stage(0); st < NumStages; st++ {
		if _, ok := m.Stages[st.String()]; !ok {
			t.Errorf("stage key %q missing from merged snapshot", st)
		}
	}
}

// TestMergeSnapshotsOrderIndependent: any permutation of the inputs
// produces an identical merged snapshot — required for the scrape loop,
// which collects workers in registration-map order.
func TestMergeSnapshotsOrderIndependent(t *testing.T) {
	a, b, c := workerSnapshot(1), workerSnapshot(4), workerSnapshot(9)
	m1 := MergeSnapshots(a, b, c)
	m2 := MergeSnapshots(c, a, b)
	m3 := MergeSnapshots(b, c, a)
	if !reflect.DeepEqual(m1, m2) || !reflect.DeepEqual(m1, m3) {
		t.Fatal("merged snapshot depends on input order")
	}
}

// TestMergeSnapshotsMatchesSingleSet: merging per-worker snapshots
// equals the snapshot of one set spanning the same observations — the
// same-semantics claim fleet aggregation rests on.
func TestMergeSnapshotsMatchesSingleSet(t *testing.T) {
	obsv := []struct {
		stage Stage
		d     time.Duration
	}{
		{StageSimulate, 800}, {StageSimulate, 70_000}, {StageBalance, 3_000},
		{StageSimulate, 2_000_000}, {StageFold, 12}, {StageBalance, 900_000},
	}
	one := NewSet(1)
	w1, w2 := NewSet(1), NewSet(1)
	for i, o := range obsv {
		one.Recorder(0).Observe(o.stage, o.d)
		if i%2 == 0 {
			w1.Recorder(0).Observe(o.stage, o.d)
		} else {
			w2.Recorder(0).Observe(o.stage, o.d)
		}
	}
	one.Recorder(0).Add(CounterMemoHit, 5)
	w1.Recorder(0).Add(CounterMemoHit, 2)
	w2.Recorder(0).Add(CounterMemoHit, 3)

	want := one.Snapshot()
	got := MergeSnapshots(w1.Snapshot(), w2.Snapshot())
	// Wall-clock fields legitimately differ; pin them before comparing.
	want.ElapsedNS, got.ElapsedNS = 0, 0
	want.Timeline, got.Timeline = Timeline{}, Timeline{}
	if !reflect.DeepEqual(want.Stages, got.Stages) {
		t.Errorf("merged stages diverge from single-set snapshot\ngot:  %+v\nwant: %+v", got.Stages, want.Stages)
	}
	if !reflect.DeepEqual(want.Counters, got.Counters) {
		t.Errorf("merged counters diverge: got %v want %v", got.Counters, want.Counters)
	}
}

// TestMergeTimelineRescale: a narrow timeline coalesces pairwise up to
// the widest input width before summing, so mixed-width fleets merge
// without losing ticks.
func TestMergeTimelineRescale(t *testing.T) {
	narrow := &Snapshot{Timeline: Timeline{WidthNS: 1 << 24, Counts: []int64{1, 2, 3, 4}}}
	wide := &Snapshot{Timeline: Timeline{WidthNS: 1 << 26, Counts: []int64{10, 20}}}
	m := MergeSnapshots(narrow, wide)
	if m.Timeline.WidthNS != 1<<26 {
		t.Fatalf("merged width = %d, want %d", m.Timeline.WidthNS, int64(1<<26))
	}
	// narrow at 1<<26: slot0 = 1+2+3+4 = 10.
	want := []int64{20, 20}
	if !reflect.DeepEqual(m.Timeline.Counts, want) {
		t.Fatalf("merged timeline = %v, want %v", m.Timeline.Counts, want)
	}
	var total int64
	for _, c := range m.Timeline.Counts {
		total += c
	}
	if total != 40 {
		t.Fatalf("ticks lost in rescale: total %d, want 40", total)
	}
}

// TestMergeSnapshotsNilAndEmpty: nil inputs are skipped and the empty
// merge still carries the full stage-key schema.
func TestMergeSnapshotsNilAndEmpty(t *testing.T) {
	m := MergeSnapshots(nil, nil)
	if len(m.Stages) != int(NumStages) {
		t.Fatalf("empty merge has %d stage keys, want %d", len(m.Stages), NumStages)
	}
	if m.ElapsedNS != 0 || len(m.Timeline.Counts) != 0 {
		t.Fatalf("empty merge not empty: %+v", m)
	}
	a := workerSnapshot(2)
	got := MergeSnapshots(nil, a, nil)
	want := MergeSnapshots(a)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil inputs perturb the merge")
	}
}

// TestFleetInfoRoundTrip: Write then ReadFleetInfo preserves identity,
// worker stubs (sorted by ID), and the merged snapshot.
func TestFleetInfoRoundTrip(t *testing.T) {
	fi := NewFleetInfo("lbcoord")
	fi.Name = "campaign"
	fi.SpecHash = "cafebabe"
	fi.Shards = 4
	fi.Workers = []FleetWorker{
		{ID: "w2", Alive: true, ElapsedNS: 500},
		{ID: "w1", Alive: false, ElapsedNS: 300},
	}
	fi.Coord = map[string]int64{"workers_dead": 1, "requeues": 2}
	fi.Obs = MergeSnapshots(workerSnapshot(0), workerSnapshot(1))

	path := filepath.Join(t.TempDir(), "campaign"+FleetInfoSuffix)
	if err := fi.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFleetInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != FleetInfoSchema || back.Name != "campaign" || back.SpecHash != "cafebabe" || back.Shards != 4 {
		t.Fatalf("identity fields lost: %+v", back)
	}
	if len(back.Workers) != 2 || back.Workers[0].ID != "w1" || back.Workers[1].ID != "w2" {
		t.Fatalf("worker stubs not sorted/preserved: %+v", back.Workers)
	}
	if back.Coord["workers_dead"] != 1 || back.Coord["requeues"] != 2 {
		t.Fatalf("coord counters lost: %v", back.Coord)
	}
	if !reflect.DeepEqual(back.Obs, fi.Obs) {
		t.Fatal("merged snapshot did not round-trip")
	}
}
