package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// shardPaths runs the test spec as a 3-way shard split, each shard at a
// different worker count, and returns the journal paths.
func shardPaths(t *testing.T, dir string) []string {
	t.Helper()
	paths := make([]string, 3)
	for i := 0; i < 3; i++ {
		paths[i] = filepath.Join(dir, "shard"+string(rune('1'+i))+".jsonl")
		runJournaled(t, paths[i], 1<<i, i, 3) // workers 1, 2, 4
	}
	return paths
}

// TestMergeByteIdentical is the multi-host half of the acceptance
// criterion: a spec split 3 ways, run at different worker counts, and
// merged must produce artifacts byte-identical to the single-host run
// — in any shard order.
func TestMergeByteIdentical(t *testing.T) {
	refJSON, refCSV := refArtifacts(t)
	paths := shardPaths(t, t.TempDir())

	for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}} {
		shuffled := []string{paths[order[0]], paths[order[1]], paths[order[2]]}
		res, err := Merge(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, gotCSV := artifacts(t, res)
		if !bytes.Equal(gotJSON, refJSON) {
			t.Fatalf("order %v: merged JSON differs from single-host run", order)
		}
		if !bytes.Equal(gotCSV, refCSV) {
			t.Fatalf("order %v: merged CSV differs from single-host run", order)
		}
	}
}

// TestMergeCorruptionFailsLoudly: a flipped byte, a torn tail, a
// foreign spec, a duplicated shard, and a missing shard must each be a
// hard error — never a quietly wrong artifact.
func TestMergeCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	paths := shardPaths(t, dir)

	corrupt := func(mutate func(data []byte) []byte) string {
		t.Helper()
		data, err := os.ReadFile(paths[1])
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, "mutant.jsonl")
		if err := os.WriteFile(p, mutate(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	expectErr := func(what, want string, files []string) {
		t.Helper()
		if _, err := Merge(files); err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: error %v, want %q", what, err, want)
		}
	}

	// Flipped byte mid-file → checksum violation.
	flipped := corrupt(func(d []byte) []byte {
		d[len(d)/2] ^= 0x20
		return d
	})
	expectErr("flipped byte", "corrupt record", []string{paths[0], flipped, paths[2]})

	// Torn tail → the shard is incomplete and must be resumed first.
	torn := corrupt(func(d []byte) []byte { return d[:len(d)-7] })
	expectErr("torn tail", "torn tail", []string{paths[0], torn, paths[2]})

	// A shard of a different sweep → spec-hash mismatch.
	other := testSpec()
	other.SeedBase = 100
	hdr, err := NewHeader(other, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	foreignPath := filepath.Join(dir, "foreign.jsonl")
	w, err := Create(foreignPath, hdr)
	if err != nil {
		t.Fatal(err)
	}
	eng := &campaign.Engine{Workers: 2, Lo: hdr.Lo, Hi: hdr.Hi, Sink: w.Append}
	if _, err := eng.Run(other); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	expectErr("foreign spec", "shards of different sweeps", []string{paths[0], foreignPath, paths[2]})

	// The same shard twice → overlap.
	expectErr("duplicate shard", "overlapping", []string{paths[0], paths[1], paths[1]})

	// A missing shard → coverage gap.
	expectErr("missing middle shard", "covered by no shard", []string{paths[0], paths[2]})
	expectErr("missing last shard", "covered by no shard", []string{paths[0], paths[1]})
	expectErr("empty merge", "nothing to merge", nil)
}
