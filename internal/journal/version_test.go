package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// analyzerSpec is the test spec with the full analyzer set attached.
func analyzerSpec() *campaign.Spec {
	s := testSpec()
	s.Analyzers = []string{"schedulability", "moves", "contention", "reuse"}
	return s
}

// journalSpec runs one shard of the given spec into a journal at path.
func journalSpec(t *testing.T, spec *campaign.Spec, path string, shardIdx, shardCnt int) {
	t.Helper()
	hdr, err := NewHeader(spec, shardIdx, shardCnt)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	eng := &campaign.Engine{Workers: 2, Lo: hdr.Lo, Hi: hdr.Hi, Sink: w.Append}
	if _, err := eng.Run(spec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOldVersionRefused: a version-1 journal — the schema before the
// analyzer binding — must be refused loudly by Read, Resume, and Merge,
// never silently merged without its extras.
func TestOldVersionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.jsonl")
	hdr, err := NewHeader(testSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-frame a v1 header: the version check must fire before any
	// hash validation gets a chance to complain about something else.
	old := hdr
	old.Version = 1
	payload, err := json.Marshal(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, frame(payload), 0o644); err != nil {
		t.Fatal(err)
	}

	want := fmt.Sprintf("unsupported version 1 (want %d)", Version)
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("Read of v1 journal: %v", err)
	}
	if _, _, err := Resume(path, hdr); err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("Resume of v1 journal: %v", err)
	}
	if _, err := Merge([]string{path}); err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("Merge of v1 journal: %v", err)
	}
}

// TestResumeRefusesDifferentAnalyzers: a journal written under one
// analyzer set refuses to resume under another — in both directions —
// with a message naming the two sets.
func TestResumeRefusesDifferentAnalyzers(t *testing.T) {
	dir := t.TempDir()

	withPath := filepath.Join(dir, "with.jsonl")
	journalSpec(t, analyzerSpec(), withPath, 0, 1)
	plainHdr, err := NewHeader(testSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(withPath, plainHdr); err == nil || !strings.Contains(err.Error(), "written with analyzers") {
		t.Fatalf("resume analyzer journal without analyzers: %v", err)
	}

	plainPath := filepath.Join(dir, "plain.jsonl")
	journalSpec(t, testSpec(), plainPath, 0, 1)
	anaHdr, err := NewHeader(analyzerSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(plainPath, anaHdr); err == nil || !strings.Contains(err.Error(), "written with analyzers none") {
		t.Fatalf("resume plain journal with analyzers: %v", err)
	}

	// A subset is still a mismatch.
	subset := testSpec()
	subset.Analyzers = []string{"schedulability"}
	subHdr, err := NewHeader(subset, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(withPath, subHdr); err == nil || !strings.Contains(err.Error(), "written with analyzers") {
		t.Fatalf("resume with analyzer subset: %v", err)
	}
}

// TestMergeRefusesMixedAnalyzers: shards produced under different
// analyzer sets must not merge, with the analyzer mismatch — not the
// generic spec-hash disagreement — in the error.
func TestMergeRefusesMixedAnalyzers(t *testing.T) {
	dir := t.TempDir()
	p0 := filepath.Join(dir, "ana.jsonl")
	p1 := filepath.Join(dir, "plain.jsonl")
	journalSpec(t, analyzerSpec(), p0, 0, 2)
	journalSpec(t, testSpec(), p1, 1, 2)
	if _, err := Merge([]string{p0, p1}); err == nil || !strings.Contains(err.Error(), "different analyzer sets") {
		t.Fatalf("mixed analyzer merge: %v", err)
	}
}

// TestCrashResumeWithAnalyzers: a killed analyzer sweep resumes into
// artifacts byte-identical to the uninterrupted run, extras included —
// the recovered rows' extras pass the structural replay validation.
func TestCrashResumeWithAnalyzers(t *testing.T) {
	res, err := (&campaign.Engine{Workers: 4}).Run(analyzerSpec())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := artifacts(t, res)

	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	journalSpec(t, analyzerSpec(), full, 0, 1)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{4, 2, 1} { // cut at ¼, ½, and just short of the end
		cut := len(data)/frac - 3
		path := filepath.Join(dir, "killed.jsonl")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		hdr, err := NewHeader(analyzerSpec(), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		w, done, err := Resume(path, hdr)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		eng := &campaign.Engine{Workers: 2, Done: done, Sink: w.Append}
		resumed, err := eng.Run(analyzerSpec())
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		gotJSON, gotCSV := artifacts(t, resumed)
		if !bytes.Equal(gotJSON, refJSON) || !bytes.Equal(gotCSV, refCSV) {
			t.Fatalf("cut=%d (%d rows recovered): resumed analyzer artifacts differ", cut, len(done))
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMergeAnalyzersByteIdentical: the acceptance criterion's multi-host
// half with analyzers on — three shard journals merge into artifacts
// byte-identical to the uninterrupted single-host run, extras included.
func TestMergeAnalyzersByteIdentical(t *testing.T) {
	res, err := (&campaign.Engine{Workers: 4}).Run(analyzerSpec())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := artifacts(t, res)
	if !bytes.Contains(refCSV, []byte("schedulability.util_margin")) {
		t.Fatal("reference CSV lacks extras columns")
	}

	dir := t.TempDir()
	paths := make([]string, 3)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i+1))
		journalSpec(t, analyzerSpec(), paths[i], i, 3)
	}
	merged, err := Merge([]string{paths[2], paths[0], paths[1]})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, gotCSV := artifacts(t, merged)
	if !bytes.Equal(gotJSON, refJSON) {
		t.Fatal("merged JSON differs from single-host run with analyzers")
	}
	if !bytes.Equal(gotCSV, refCSV) {
		t.Fatal("merged CSV differs from single-host run with analyzers")
	}
}
