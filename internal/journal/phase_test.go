package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// phaseSpec is the analyzer test spec with the before phase enabled.
func phaseSpec() *campaign.Spec {
	s := analyzerSpec()
	s.AnalyzerPhases = []string{"before", "after"}
	return s
}

// TestV2Refused: a version-2 journal — the schema before the phase
// binding — must be refused by Read, Resume, and Merge with a message
// naming what version 2 lacks, never silently merged with after-only
// extras.
func TestV2Refused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.jsonl")
	hdr, err := NewHeader(testSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	old := hdr
	old.Version = 2
	payload, err := json.Marshal(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, frame(payload), 0o644); err != nil {
		t.Fatal(err)
	}

	want := fmt.Sprintf("unsupported version 2 (want %d)", Version)
	for label, got := range map[string]error{
		"Read":   second(Read(path)),
		"Resume": third(Resume(path, hdr)),
		"Merge":  second(Merge([]string{path})),
	} {
		if got == nil || !strings.Contains(got.Error(), want) {
			t.Fatalf("%s of v2 journal: %v", label, got)
		}
		if !strings.Contains(got.Error(), "phase axis") {
			t.Fatalf("%s error %q does not name the missing schema feature", label, got)
		}
	}
}

func second[A, B any](_ A, b B) B        { return b }
func third[A, B, C any](_ A, _ B, c C) C { return c }

// TestResumeRefusesMixedPhases: a journal written under one phase set
// refuses to resume under another — in both directions — naming the
// two sets and the flag that fixes it.
func TestResumeRefusesMixedPhases(t *testing.T) {
	dir := t.TempDir()

	phasedPath := filepath.Join(dir, "phased.jsonl")
	journalSpec(t, phaseSpec(), phasedPath, 0, 1)
	afterHdr, err := NewHeader(analyzerSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = third(Resume(phasedPath, afterHdr))
	if err == nil || !strings.Contains(err.Error(), "written with analyzer phases before,after") ||
		!strings.Contains(err.Error(), "-analyzer-phases") {
		t.Fatalf("resume phased journal with after-only run: %v", err)
	}

	afterPath := filepath.Join(dir, "after.jsonl")
	journalSpec(t, analyzerSpec(), afterPath, 0, 1)
	phasedHdr, err := NewHeader(phaseSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = third(Resume(afterPath, phasedHdr))
	if err == nil || !strings.Contains(err.Error(), "written with analyzer phases after") {
		t.Fatalf("resume after-only journal with phased run: %v", err)
	}
}

// TestMergeRefusesMixedPhases: shards produced under different phase
// sets must not merge, with the phase mismatch — not the generic
// spec-hash disagreement — in the error.
func TestMergeRefusesMixedPhases(t *testing.T) {
	dir := t.TempDir()
	p0 := filepath.Join(dir, "phased.jsonl")
	p1 := filepath.Join(dir, "after.jsonl")
	journalSpec(t, phaseSpec(), p0, 0, 2)
	journalSpec(t, analyzerSpec(), p1, 1, 2)
	if err := second(Merge([]string{p0, p1})); err == nil || !strings.Contains(err.Error(), "different phase sets") {
		t.Fatalf("mixed phase merge: %v", err)
	}
}

// TestCrashResumeWithPhases: a killed before/after sweep resumes into
// artifacts byte-identical to the uninterrupted run — the recovered
// rows' before./delta. extras pass the structural replay validation.
func TestCrashResumeWithPhases(t *testing.T) {
	res, err := (&campaign.Engine{Workers: 4}).Run(phaseSpec())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := artifacts(t, res)

	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	journalSpec(t, phaseSpec(), full, 0, 1)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{4, 2, 1} { // cut at ¼, ½, and just short of the end
		cut := len(data)/frac - 3
		path := filepath.Join(dir, "killed.jsonl")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		hdr, err := NewHeader(phaseSpec(), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		w, done, err := Resume(path, hdr)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		eng := &campaign.Engine{Workers: 2, Done: done, Sink: w.Append}
		resumed, err := eng.Run(phaseSpec())
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		gotJSON, gotCSV := artifacts(t, resumed)
		if !bytes.Equal(gotJSON, refJSON) || !bytes.Equal(gotCSV, refCSV) {
			t.Fatalf("cut=%d (%d rows recovered): resumed phased artifacts differ", cut, len(done))
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMergePhasesByteIdentical: three shard journals of a before/after
// sweep merge into artifacts byte-identical to the single-host run,
// before./delta. columns included.
func TestMergePhasesByteIdentical(t *testing.T) {
	res, err := (&campaign.Engine{Workers: 4}).Run(phaseSpec())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := artifacts(t, res)
	for _, col := range []string{"before.contention.busy_mean", "delta.reuse.savings"} {
		if !bytes.Contains(refCSV, []byte(col)) {
			t.Fatalf("reference CSV lacks phase column %q", col)
		}
	}

	dir := t.TempDir()
	paths := make([]string, 3)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i+1))
		journalSpec(t, phaseSpec(), paths[i], i, 3)
	}
	merged, err := Merge([]string{paths[1], paths[2], paths[0]})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, gotCSV := artifacts(t, merged)
	if !bytes.Equal(gotJSON, refJSON) {
		t.Fatal("merged JSON differs from single-host phased run")
	}
	if !bytes.Equal(gotCSV, refCSV) {
		t.Fatal("merged CSV differs from single-host phased run")
	}
}
