package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// TestWriterObsCounters: the journal writer's telemetry accounts for
// every append — record count, framed bytes on disk, and the fsync
// cadence (one sync per SyncEvery appends, plus the one Close issues).
func TestWriterObsCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.jsonl")
	hdr, err := NewHeader(testSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	set := obs.NewSet(1)
	w.Obs = set.Aux()
	w.SyncEvery = 4

	spec := testSpec()
	eng := &campaign.Engine{Workers: 2, Lo: hdr.Lo, Hi: hdr.Hi, Sink: w.Append, Obs: set}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	snap := set.Snapshot()
	n := int64(len(res.Trials))
	if got := snap.Counters["journal_records"]; got != n {
		t.Fatalf("journal_records = %d, want %d", got, n)
	}
	// Byte accounting covers the record frames exactly: file size minus
	// the header line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdrLen := int64(bytes.IndexByte(data, '\n') + 1)
	if got := snap.Counters["journal_bytes"]; got != int64(len(data))-hdrLen {
		t.Fatalf("journal_bytes = %d, want file size %d minus header %d", got, len(data), hdrLen)
	}
	// 24 trials at SyncEvery=4 is 6 cadence syncs; Close adds one more.
	if got := snap.Counters["journal_fsyncs"]; got != n/4+1 {
		t.Fatalf("journal_fsyncs = %d, want %d cadence syncs + 1 on close", got, n/4)
	}
	// Appends were observed; fsync waits only on the appends that synced.
	if c := snap.Stages["journal_append"].Count; c != n {
		t.Fatalf("journal_append count = %d, want %d", c, n)
	}
	if c := snap.Stages["journal_fsync"].Count; c != n/4 {
		t.Fatalf("journal_fsync count = %d, want the %d cadence syncs", c, n/4)
	}
}

// TestWriterObsByteIdentity: attaching telemetry must not change a
// single journal byte — the journal is part of the resume/merge
// identity contract.
func TestWriterObsByteIdentity(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rec *obs.Recorder) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		hdr, err := NewHeader(testSpec(), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		w, err := Create(path, hdr)
		if err != nil {
			t.Fatal(err)
		}
		w.Obs = rec
		eng := &campaign.Engine{Workers: 1, Lo: hdr.Lo, Hi: hdr.Hi, Sink: w.Append}
		if _, err := eng.Run(testSpec()); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	plain := write("plain.jsonl", nil)
	observed := write("observed.jsonl", obs.NewSet(1).Aux())
	if !bytes.Equal(plain, observed) {
		t.Fatal("journal bytes differ with telemetry attached")
	}
}

// TestResumeReportsTornRepair: the truncated-tail repair that Resume
// performs is surfaced on the writer so the CLI can count it
// (torn_repairs in the runinfo sidecar).
func TestResumeReportsTornRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.jsonl")
	runJournaled(t, path, 2, 0, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastLine := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	data[lastLine+20] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	hdr, err := NewHeader(testSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := Resume(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if !w.RepairedTorn {
		t.Fatal("Resume repaired a torn tail but did not report it")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean resume must not claim a repair.
	w2, _, err := Resume(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if w2.RepairedTorn {
		t.Fatal("clean resume reported a torn repair")
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}
