package journal

// The lease sidecar is the !unix lockFile fallback; the machinery is
// portable, so these tests exercise it directly on every platform even
// though the real unix path goes through flock instead.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLeaseExcludesLiveHolder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	release, err := acquireLease(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acquireLease(path); err == nil {
		t.Fatal("second acquire of a held lease succeeded")
	} else if !strings.Contains(err.Error(), "leased by pid") {
		t.Fatalf("second acquire error does not name the holder: %v", err)
	}
	release()
	if _, err := os.Stat(path + leaseSuffix); !os.IsNotExist(err) {
		t.Fatalf("release left the sidecar behind: %v", err)
	}
	release2, err := acquireLease(path)
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	release2()
}

func TestLeaseStealsDeadHolder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	host, _ := os.Hostname()
	// Far above any real pid space (default linux pid_max is 4194304),
	// so the holder is provably dead on this host.
	sidecar := `{"pid":1073741824,"host":"` + host + `","started":"2026-01-01T00:00:00Z"}` + "\n"
	if err := os.WriteFile(path+leaseSuffix, []byte(sidecar), 0o644); err != nil {
		t.Fatal(err)
	}
	release, err := acquireLease(path)
	if err != nil {
		t.Fatalf("acquire over a dead holder's sidecar: %v", err)
	}
	release()
}

func TestLeaseRefusesForeignHost(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	sidecar := `{"pid":1,"host":"some-other-host.example","started":"2026-01-01T00:00:00Z"}` + "\n"
	if err := os.WriteFile(path+leaseSuffix, []byte(sidecar), 0o644); err != nil {
		t.Fatal(err)
	}
	// A foreign host's pid cannot be probed, so the lease is never
	// stale-reaped: the acquire must refuse loudly.
	if _, err := acquireLease(path); err == nil {
		t.Fatal("acquire over a foreign-host lease succeeded")
	} else if !strings.Contains(err.Error(), "some-other-host.example") {
		t.Fatalf("refusal does not name the foreign host: %v", err)
	}
}

func TestLeaseStealsTornSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path+leaseSuffix, []byte(`{"pid":12`), 0o644); err != nil {
		t.Fatal(err)
	}
	release, err := acquireLease(path)
	if err != nil {
		t.Fatalf("acquire over a torn sidecar: %v", err)
	}
	release()
}

func TestPidAliveSelf(t *testing.T) {
	if !pidAlive(os.Getpid()) {
		t.Fatal("our own pid reported dead")
	}
}
