package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// The pid/host lease sidecar is the fallback writer-exclusion mechanism
// for platforms without flock (see lock_other.go). On unix the kernel
// guarantees exclusion — the advisory lock dies with the process — but
// where lockFile cannot flock, the previous behaviour was a silent
// no-op: a believed-dead resume while the original run was still alive
// would interleave rows and poison the journal with duplicate indices.
//
// The sidecar makes that double-resume fail loudly instead: acquiring
// the journal writes `<journal>.lock` (O_EXCL) recording pid, hostname,
// and start time; a second writer finds it and refuses, naming the
// holder. Best-effort staleness recovery keeps crashes from wedging the
// journal forever: a sidecar whose pid is provably dead on this host —
// or whose content is torn — is stolen; a foreign-host sidecar can
// never be verified and always refuses (delete it by hand once the
// remote run is known dead). The sidecar is advisory, not atomic proof:
// it narrows the silent-corruption window to a pid-reuse race, which is
// the best a no-flock platform offers.

// leaseSuffix is appended to the journal path to name its sidecar.
const leaseSuffix = ".lock"

// leaseInfo is the sidecar payload identifying the journal's writer.
type leaseInfo struct {
	PID     int    `json:"pid"`
	Host    string `json:"host"`
	Started string `json:"started"`
}

// acquireLease takes the sidecar lease for the journal at path,
// returning the release func that removes it. It retries through
// stale-holder recovery a bounded number of times so two live
// contenders still converge on exactly one owner.
func acquireLease(path string) (release func(), err error) {
	lp := path + leaseSuffix
	host, _ := os.Hostname()
	for tries := 0; tries < 3; tries++ {
		f, err := os.OpenFile(lp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			info := leaseInfo{PID: os.Getpid(), Host: host, Started: time.Now().UTC().Format(time.RFC3339)}
			data, werr := json.Marshal(info)
			if werr == nil {
				_, werr = f.Write(append(data, '\n'))
			}
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				os.Remove(lp)
				return nil, fmt.Errorf("journal: writing lease %s: %w", lp, werr)
			}
			return func() { os.Remove(lp) }, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		data, rerr := os.ReadFile(lp)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // holder released between our two looks
			}
			return nil, rerr
		}
		var info leaseInfo
		if json.Unmarshal(data, &info) != nil || info.PID <= 0 {
			// A torn sidecar (crash mid-write) holds no live lease.
			os.Remove(lp)
			continue
		}
		if info.Host == host && !pidAlive(info.PID) {
			// The holder died without releasing; steal the lease.
			os.Remove(lp)
			continue
		}
		return nil, fmt.Errorf("journal: leased by pid %d on %s since %s — is that run still writing it? (delete %s if it is dead)",
			info.PID, info.Host, info.Started, lp)
	}
	return nil, fmt.Errorf("journal: lease %s is contended", lp)
}
