package journal

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/campaign"
)

// Merge folds the shard journals at paths into the full campaign
// Result — the multi-host counterpart of a single Engine.Run, and
// byte-identical to it (campaign.Fold replays the same index-ordered
// fold the live engine uses).
//
// Validation is strict and every failure is loud:
//
//   - every journal must read cleanly (framing + per-record CRC; a
//     torn tail means the shard's run was killed and must be resumed
//     before merging),
//   - all headers must agree on version, spec hash, analyzer set,
//     phase set, and total trial count (and each embedded spec must
//     hash to its header's claim),
//   - each shard must completely cover its own [Lo,Hi) range,
//   - the ranges together must tile [0,Total) exactly — no gaps, no
//     overlaps, no shard given twice.
func Merge(paths []string) (*campaign.Result, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("journal: nothing to merge")
	}
	journals := make([]*Journal, 0, len(paths))
	for _, p := range paths {
		j, err := Read(p)
		if err != nil {
			return nil, err
		}
		if !j.HeaderOK {
			return nil, fmt.Errorf("journal: %s has no intact header", p)
		}
		if !j.Complete() {
			detail := ""
			if j.Torn {
				detail = " (torn tail: the shard's run was killed — resume it first)"
			}
			return nil, fmt.Errorf("journal: %s covers only %d of %d trials in [%d,%d)%s",
				p, len(j.Rows), j.Header.Hi-j.Header.Lo, j.Header.Lo, j.Header.Hi, detail)
		}
		journals = append(journals, j)
	}

	base := journals[0].Header
	for i, j := range journals[1:] {
		h := j.Header
		// Analyzer or phase disagreement implies spec-hash disagreement;
		// check them first so the error names the actual mismatch
		// instead of the generic "different sweeps".
		if !slices.Equal(h.Analyzers, base.Analyzers) {
			return nil, fmt.Errorf("journal: %s was written with analyzers %s but %s with %s — shards of different analyzer sets cannot merge",
				paths[i+1], analyzerList(h.Analyzers), paths[0], analyzerList(base.Analyzers))
		}
		if !slices.Equal(h.Phases, base.Phases) {
			return nil, fmt.Errorf("journal: %s was written with analyzer phases %s but %s with %s — shards of different phase sets cannot merge",
				paths[i+1], analyzerList(h.Phases), paths[0], analyzerList(base.Phases))
		}
		if h.SpecHash != base.SpecHash {
			return nil, fmt.Errorf("journal: %s carries spec %.12s… but %s carries %.12s… — shards of different sweeps",
				paths[i+1], h.SpecHash, paths[0], base.SpecHash)
		}
		if h.Total != base.Total {
			return nil, fmt.Errorf("journal: %s enumerates %d trials, %s enumerates %d", paths[i+1], h.Total, paths[0], base.Total)
		}
	}

	// The shard ranges must tile [0,Total) exactly.
	order := make([]int, len(journals))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return journals[order[a]].Header.Lo < journals[order[b]].Header.Lo })
	next := 0
	rows := make([]campaign.TrialResult, 0, base.Total)
	for _, i := range order {
		h := journals[i].Header
		if h.Lo != next {
			if h.Lo < next {
				return nil, fmt.Errorf("journal: %s covers [%d,%d), overlapping an earlier shard (boundary %d)", paths[i], h.Lo, h.Hi, next)
			}
			return nil, fmt.Errorf("journal: trials [%d,%d) are covered by no shard", next, h.Lo)
		}
		next = h.Hi
		rows = append(rows, journals[i].Rows...)
	}
	if next != base.Total {
		return nil, fmt.Errorf("journal: trials [%d,%d) are covered by no shard", next, base.Total)
	}

	return campaign.Fold(base.Spec, rows)
}
