package journal

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
)

// refArtifacts is the uninterrupted single-host reference.
func refArtifacts(t *testing.T) ([]byte, []byte) {
	t.Helper()
	res, err := (&campaign.Engine{Workers: 4}).Run(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	return artifacts(t, res)
}

func artifacts(t *testing.T, res *campaign.Result) ([]byte, []byte) {
	t.Helper()
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return data, csv.Bytes()
}

// TestCrashResumeByteIdentical is the crash-recovery property test: a
// journaled sweep is "killed" by truncating its journal at a random
// byte offset — exactly the on-disk state a SIGKILL or power loss
// leaves behind, including a torn record and even a beheaded header —
// then resumed. The resumed run must (a) skip the recovered trials and
// (b) produce JSON and CSV artifacts byte-identical to an
// uninterrupted run, at 1, 2, and 8 workers.
func TestCrashResumeByteIdentical(t *testing.T) {
	refJSON, refCSV := refArtifacts(t)
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	runJournaled(t, full, 4, 0, 1)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(20260726))
	workerGrid := []int{1, 2, 8}
	for round := 0; round < 9; round++ {
		// Cover the degenerate cuts too: empty file, missing final byte.
		cut := rng.Intn(len(data))
		if round == 0 {
			cut = 0
		}
		if round == 1 {
			cut = len(data) - 1
		}
		workers := workerGrid[round%len(workerGrid)]

		path := filepath.Join(dir, "killed.jsonl")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		hdr, err := NewHeader(testSpec(), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		w, done, err := Resume(path, hdr)
		if err != nil {
			t.Fatalf("cut=%d: resume: %v", cut, err)
		}
		eng := &campaign.Engine{Workers: workers, Done: done, Sink: w.Append}
		res, err := eng.Run(testSpec())
		if err != nil {
			t.Fatalf("cut=%d workers=%d: %v", cut, workers, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		gotJSON, gotCSV := artifacts(t, res)
		if !bytes.Equal(gotJSON, refJSON) {
			t.Fatalf("cut=%d workers=%d (%d trials recovered): resumed JSON differs from uninterrupted run",
				cut, workers, len(done))
		}
		if !bytes.Equal(gotCSV, refCSV) {
			t.Fatalf("cut=%d workers=%d: resumed CSV differs from uninterrupted run", cut, workers)
		}

		// After the resume, the journal itself must be whole again: a
		// second resume finds nothing left to run, and a single-shard
		// merge of it reproduces the artifacts a third way.
		j, err := Read(path)
		if err != nil {
			t.Fatalf("cut=%d: reread: %v", cut, err)
		}
		if !j.Complete() || j.Torn {
			t.Fatalf("cut=%d: resumed journal incomplete (%d rows, torn=%v)", cut, len(j.Rows), j.Torn)
		}
		merged, err := Merge([]string{path})
		if err != nil {
			t.Fatalf("cut=%d: merge: %v", cut, err)
		}
		mJSON, mCSV := artifacts(t, merged)
		if !bytes.Equal(mJSON, refJSON) || !bytes.Equal(mCSV, refCSV) {
			t.Fatalf("cut=%d: merged journal artifacts differ", cut)
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResumeTruncatesTornTail pins the repair: after Resume, the torn
// record is gone from disk and the file ends on a clean frame.
func TestResumeTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	runJournaled(t, full, 2, 0, 1)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	hdr, err := NewHeader(testSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, done, err := Resume(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) == 0 || repaired[len(repaired)-1] != '\n' {
		t.Fatalf("repaired journal does not end on a frame boundary (%d bytes)", len(repaired))
	}
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Torn || len(j.Rows) != len(done) {
		t.Fatalf("repaired journal: torn=%v rows=%d done=%d", j.Torn, len(j.Rows), len(done))
	}
}
