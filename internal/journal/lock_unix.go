//go:build unix

package journal

import (
	"fmt"
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory lock on f, held
// until the file is closed. Two writers on one journal — the classic
// believed-dead resume while the original run is still alive — would
// otherwise interleave rows and poison the file with duplicate trial
// indices.
func lockFile(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("held by another process (%w)", err)
	}
	return nil
}
