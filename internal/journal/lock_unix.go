//go:build unix

package journal

import (
	"fmt"
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory lock on f, held
// until the file is closed. Two writers on one journal — the classic
// believed-dead resume while the original run is still alive — would
// otherwise interleave rows and poison the file with duplicate trial
// indices. The returned release is a no-op: the kernel drops the flock
// with the file descriptor, crash included.
func lockFile(f *os.File) (release func(), err error) {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return nil, fmt.Errorf("held by another process (%w)", err)
	}
	return func() {}, nil
}

// pidAlive reports whether pid names a live process on this host:
// signal 0 probes existence without delivering anything (EPERM still
// means "alive, just not ours"). Used by the lease sidecar, which on
// unix only runs in tests — flock covers the real path.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}
