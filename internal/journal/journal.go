// Package journal persists campaign trial results as they complete, so
// a killed multi-hour sweep resumes instead of restarting and a sweep
// split across hosts can be merged back into one artifact.
//
// A journal is an append-only stream of length-framed, checksummed
// JSONL records:
//
//	<length:8 hex> <crc32c:8 hex> <payload JSON>\n
//
// The first record's payload is the Header, which binds the file to a
// campaign (the SHA-256 of the normalised spec), a shard of its trial
// enumeration ([Lo,Hi) of Total), and the spec itself, so a journal is
// self-describing: the merge tool rebuilds the full Result from shard
// files alone. Every following record is one campaign.TrialResult, in
// completion order.
//
// Durability and recovery follow the append-only audit-log pattern: a
// record is written with a single write call and the file is fsynced
// every SyncEvery records (and on Close), so after a SIGKILL or power
// loss the file holds a clean prefix of the stream plus at most one
// torn record. The reader distinguishes the two failure shapes: a
// partial final record (no trailing newline, short payload, or a
// checksum mismatch with nothing after it) is a torn tail and is
// dropped — the trial simply re-runs on resume — while any framing or
// checksum violation before the end of the file means the journal was
// corrupted in place and is reported as a hard error, never silently
// skipped.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/obs"
)

const (
	// Magic identifies a trial journal; Version the frame/header schema.
	// Version 2 added the analyzer-set binding (and analyzer extras on
	// the trial rows): version-1 journals predate per-trial analyzers
	// and are refused rather than silently merged without extras.
	// Version 3 added the analyzer-phase binding (before./delta. extras
	// namespaces): version-2 journals predate the phase axis, so their
	// rows cannot be validated against a phased spec and are refused
	// rather than silently merged with after-only extras.
	Magic   = "lbjournal"
	Version = 3

	// DefaultSyncEvery is the default fsync cadence in records. A crash
	// loses at most this many journaled trials (they just re-run on
	// resume); lower it for precious sweeps, raise it for fast ones.
	DefaultSyncEvery = 32
)

// castagnoli is the CRC-32C table (the polynomial used by ext4, iSCSI —
// chosen over IEEE for its better burst-error detection).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the first record of every journal. It pins the campaign
// identity (SpecHash plus the normalised spec itself) and the shard of
// the trial enumeration this file is allowed to contain.
type Header struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`

	// SpecHash is campaign.Spec.Hash() of Spec; resume and merge refuse
	// journals whose hash disagrees with the spec they are asked to
	// serve.
	SpecHash string         `json:"spec_hash"`
	Spec     *campaign.Spec `json:"spec"`

	// Analyzers is the spec's canonicalised analyzer set, duplicated
	// out of the spec so mixing rows produced under different analyzer
	// sets fails with a targeted message (the spec hash alone would
	// only say "different sweep").
	Analyzers []string `json:"analyzers"`

	// Phases is the spec's canonicalised analyzer-phase set, duplicated
	// for the same reason: resuming or merging across phase sets fails
	// naming the two sets, not just "different sweeps".
	Phases []string `json:"analyzer_phases"`

	// ShardIndex/ShardCount name this file's slice of the sharded run
	// (0/1 for an unsharded sweep); Lo/Hi is the half-open trial-index
	// range it covers, Total the full enumeration size.
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
	Lo         int `json:"lo"`
	Hi         int `json:"hi"`
	Total      int `json:"total"`
}

// ShardRange is the deterministic index-range partition of a
// total-trial enumeration: shard i of n (0-based) owns
// [⌊total·i/n⌋, ⌊total·(i+1)/n⌋). Ranges are contiguous, disjoint, and
// cover [0,total) exactly; sizes differ by at most one.
func ShardRange(total, i, n int) (lo, hi int) {
	return total * i / n, total * (i + 1) / n
}

// NewHeader builds the header for shard i of n over spec, normalising
// the spec in place.
func NewHeader(spec *campaign.Spec, i, n int) (Header, error) {
	if n < 1 || i < 0 || i >= n {
		return Header{}, fmt.Errorf("journal: shard %d/%d out of range", i+1, n)
	}
	hash, err := spec.Hash()
	if err != nil {
		return Header{}, err
	}
	trials, err := spec.Trials()
	if err != nil {
		return Header{}, err
	}
	lo, hi := ShardRange(len(trials), i, n)
	if lo == hi {
		return Header{}, fmt.Errorf("journal: shard %d/%d of a %d-trial sweep is empty — use at most %d shards",
			i+1, n, len(trials), len(trials))
	}
	return Header{
		Magic:      Magic,
		Version:    Version,
		SpecHash:   hash,
		Spec:       spec,
		Analyzers:  append([]string(nil), spec.Analyzers...),
		Phases:     append([]string(nil), spec.AnalyzerPhases...),
		ShardIndex: i,
		ShardCount: n,
		Lo:         lo,
		Hi:         hi,
		Total:      len(trials),
	}, nil
}

// check validates a header's invariants after decode.
func (h Header) check() error {
	if h.Magic != Magic {
		return fmt.Errorf("journal: bad magic %q (not a trial journal)", h.Magic)
	}
	if h.Version != Version {
		// Name what the missing schema feature is for the versions we
		// know: "unsupported" alone sends the operator hunting through
		// release notes.
		hint := ""
		switch h.Version {
		case 1:
			hint = " — version 1 predates per-trial analyzers; re-run the sweep with this build"
		case 2:
			hint = " — version 2 predates the analyzer phase axis (before/delta extras); re-run the sweep with this build"
		}
		return fmt.Errorf("journal: unsupported version %d (want %d)%s", h.Version, Version, hint)
	}
	if h.Spec == nil {
		return fmt.Errorf("journal: header carries no spec")
	}
	if h.Lo < 0 || h.Hi > h.Total || h.Lo >= h.Hi {
		return fmt.Errorf("journal: header shard range [%d,%d) invalid for %d trials", h.Lo, h.Hi, h.Total)
	}
	// The embedded spec must hash to the recorded hash — a tampered or
	// hand-edited spec is caught here even though its JSON still parses.
	hash, err := h.Spec.Hash()
	if err != nil {
		return err
	}
	if hash != h.SpecHash {
		return fmt.Errorf("journal: embedded spec hashes to %.12s…, header claims %.12s…", hash, h.SpecHash)
	}
	// Hash() normalised the embedded spec, so its analyzer and phase
	// lists are canonical; the header's duplicates must agree exactly.
	if !slices.Equal(h.Analyzers, h.Spec.Analyzers) {
		return fmt.Errorf("journal: header analyzer set %v does not match the embedded spec's %v", h.Analyzers, h.Spec.Analyzers)
	}
	if !slices.Equal(h.Phases, h.Spec.AnalyzerPhases) {
		return fmt.Errorf("journal: header phase set %v does not match the embedded spec's %v", h.Phases, h.Spec.AnalyzerPhases)
	}
	return nil
}

// compatible reports whether an on-disk header matches the header a
// resuming run would write: same campaign, same analyzer set, same
// phase set, same shard. The analyzer and phase comparisons come first
// — either change also changes the spec hash, and "resume with the
// same -analyzers/-analyzer-phases or start a fresh journal" is the
// actionable message.
func (h Header) compatible(want Header) error {
	if !slices.Equal(h.Analyzers, want.Analyzers) {
		return fmt.Errorf("journal: written with analyzers %s, this run requests %s — resume with the matching -analyzers or start a fresh journal",
			analyzerList(h.Analyzers), analyzerList(want.Analyzers))
	}
	if !slices.Equal(h.Phases, want.Phases) {
		return fmt.Errorf("journal: written with analyzer phases %s, this run requests %s — resume with the matching -analyzer-phases or start a fresh journal",
			analyzerList(h.Phases), analyzerList(want.Phases))
	}
	if h.SpecHash != want.SpecHash {
		return fmt.Errorf("journal: spec hash %.12s… does not match this sweep (%.12s…) — wrong spec or wrong journal", h.SpecHash, want.SpecHash)
	}
	if h.ShardIndex != want.ShardIndex || h.ShardCount != want.ShardCount || h.Lo != want.Lo || h.Hi != want.Hi || h.Total != want.Total {
		return fmt.Errorf("journal: shard %d/%d [%d,%d) of %d does not match requested shard %d/%d [%d,%d) of %d",
			h.ShardIndex+1, h.ShardCount, h.Lo, h.Hi, h.Total,
			want.ShardIndex+1, want.ShardCount, want.Lo, want.Hi, want.Total)
	}
	return nil
}

// analyzerList renders an analyzer set for error messages; the empty
// set prints as "none" rather than an empty bracket pair.
func analyzerList(names []string) string {
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ",")
}

// frame renders one record: payload length and CRC-32C in fixed-width
// hex, a space-separated prefix, the payload, and the terminating
// newline. json.Marshal never emits a raw newline byte, so the
// terminator is unambiguous.
func frame(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+19)
	out = fmt.Appendf(out, "%08x %08x ", len(payload), crc32.Checksum(payload, castagnoli))
	out = append(out, payload...)
	return append(out, '\n')
}

// Writer appends checksummed trial records to a journal file. Append is
// safe for concurrent use (the campaign engine's sink is called from
// every worker).
type Writer struct {
	mu        sync.Mutex
	f         *os.File
	hdr       Header
	unlock    func() // releases the writer-exclusion lock (flock or lease sidecar)
	unsynced  int
	SyncEvery int // records between fsyncs; set before first Append

	// Obs, when non-nil, receives journal telemetry: append and fsync
	// latencies (obs.StageJournalAppend / StageJournalFsync) and the
	// records/bytes/fsyncs counters. Set it before the first Append;
	// a nil recorder is free. The journal bytes are identical either
	// way — telemetry never touches the frame stream.
	Obs *obs.Recorder

	// RepairedTorn reports that Resume found and truncated a torn
	// final record — the single repair a crash can require. It is
	// informational (the dropped trial simply re-runs); callers
	// surface it in run telemetry.
	RepairedTorn bool
}

// Create starts a fresh journal at path, writing and syncing the
// header. It refuses to overwrite an existing file — an old journal is
// either resumed or deliberately deleted, never clobbered — and holds
// an exclusive advisory lock on the file for the writer's lifetime.
func Create(path string, hdr Header) (*Writer, error) {
	if err := hdr.check(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("journal: %s already exists — resume it or delete it first", path)
		}
		return nil, err
	}
	unlock, err := lockFile(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: locking %s: %w", path, err)
	}
	if err := initJournal(f, hdr); err != nil {
		unlock()
		f.Close()
		return nil, err
	}
	return &Writer{f: f, hdr: hdr, SyncEvery: DefaultSyncEvery, unlock: unlock}, nil
}

// initJournal resets f to a header-only journal: truncated, the header
// frame written and synced.
func initJournal(f *os.File, hdr Header) error {
	payload, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := f.Write(frame(payload)); err != nil {
		return fmt.Errorf("journal: writing header: %w", err)
	}
	return f.Sync()
}

// Append journals one completed trial and fsyncs every SyncEvery
// records.
func (w *Writer) Append(r campaign.TrialResult) error {
	if r.Index < w.hdr.Lo || r.Index >= w.hdr.Hi {
		return fmt.Errorf("journal: trial %d outside shard range [%d,%d)", r.Index, w.hdr.Lo, w.hdr.Hi)
	}
	t0 := w.Obs.Clock()
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	rec := frame(payload)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("journal: append after close")
	}
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("journal: appending trial %d: %w", r.Index, err)
	}
	w.Obs.Add(obs.CounterJournalRecords, 1)
	w.Obs.Add(obs.CounterJournalBytes, int64(len(rec)))
	w.unsynced++
	if every := w.SyncEvery; every > 0 && w.unsynced >= every {
		ts := w.Obs.Clock()
		err := w.f.Sync()
		w.Obs.Stamp(obs.StageJournalFsync, ts)
		w.Obs.Add(obs.CounterJournalFsyncs, 1)
		if err != nil {
			return err
		}
		w.unsynced = 0
	}
	w.Obs.Stamp(obs.StageJournalAppend, t0)
	return nil
}

// Sync forces the journal to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.unsynced = 0
	w.Obs.Add(obs.CounterJournalFsyncs, 1)
	return w.f.Sync()
}

// Close syncs and closes the journal, releasing writer exclusion.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	if w.unlock != nil {
		defer w.unlock()
	}
	w.Obs.Add(obs.CounterJournalFsyncs, 1)
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Journal is the decoded content of one journal file.
type Journal struct {
	Header Header
	// Rows holds the journaled trials in file (completion) order.
	Rows []campaign.TrialResult
	// Torn is set when a partial final record was discarded; HeaderOK
	// is false when not even the header survived (a crash during
	// Create) — Header and Rows are then zero.
	Torn     bool
	HeaderOK bool
	// clean is the byte offset of the recovered prefix; resume
	// truncates the file here before appending.
	clean int64
}

// Complete reports whether the journal covers its whole shard range.
func (j *Journal) Complete() bool {
	return j.HeaderOK && len(j.Rows) == j.Header.Hi-j.Header.Lo
}

// Read decodes a journal, verifying every frame. It recovers from a
// torn tail (the one failure a crash can produce) and fails loudly on
// everything else: a framing or checksum violation followed by more
// data, a duplicate trial index, or a row outside the header's shard
// range. Read takes no lock — merging or inspecting a journal while
// its writer is alive is safe (the worst case is seeing an incomplete
// shard, which the merge rejects loudly anyway).
func Read(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decode(path, data)
}

// DecodeBytes parses journal content already held in memory — the
// coordinator validates worker-fetched journals this way before
// trusting a byte of them — with exactly Read's semantics; name labels
// errors in place of a file path.
func DecodeBytes(name string, data []byte) (*Journal, error) {
	return decode(name, data)
}

// decode parses journal bytes (see Read for the semantics).
func decode(path string, data []byte) (*Journal, error) {
	j := &Journal{}
	seen := map[int]bool{}
	off := 0
	for rec := 0; off < len(data); rec++ {
		payload, end, ok := parseFrame(data[off:])
		if !ok {
			// A bad frame with nothing after it is the torn tail a kill
			// leaves behind — usually a strict prefix with no newline,
			// but a power loss can also persist an append's sectors out
			// of order, leaving a newline-terminated final record with a
			// hole. Either way the tail is dropped and the trial re-runs
			// on resume. A bad frame *followed by more data* cannot come
			// from an interrupted append: that is in-place corruption.
			if end < 0 || off+end == len(data) {
				j.Torn = true
				break
			}
			return nil, fmt.Errorf("journal: %s: corrupt record %d at offset %d", path, rec, off)
		}
		if rec == 0 {
			if err := json.Unmarshal(payload, &j.Header); err != nil {
				return nil, fmt.Errorf("journal: %s: decoding header: %w", path, err)
			}
			if err := j.Header.check(); err != nil {
				return nil, fmt.Errorf("%w (%s)", err, path)
			}
			j.HeaderOK = true
		} else {
			var r campaign.TrialResult
			if err := json.Unmarshal(payload, &r); err != nil {
				return nil, fmt.Errorf("journal: %s: decoding record %d: %w", path, rec, err)
			}
			if r.Index < j.Header.Lo || r.Index >= j.Header.Hi {
				return nil, fmt.Errorf("journal: %s: record %d holds trial %d outside shard range [%d,%d)",
					path, rec, r.Index, j.Header.Lo, j.Header.Hi)
			}
			if seen[r.Index] {
				return nil, fmt.Errorf("journal: %s: trial %d journaled twice", path, r.Index)
			}
			seen[r.Index] = true
			j.Rows = append(j.Rows, r)
		}
		off += end
		j.clean = int64(off)
	}
	return j, nil
}

// parseFrame decodes one record from the front of data. It returns the
// payload, the number of bytes consumed (frame through its newline),
// and whether the frame verified. On failure, end is the extent of the
// bad frame when it is newline-terminated — letting the caller tell a
// mid-file corruption (more data follows) from a torn tail — or -1
// when the data ends without a newline.
func parseFrame(data []byte) (payload []byte, end int, ok bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, -1, false
	}
	line := data[:nl]
	end = nl + 1
	// "llllllll cccccccc " + payload
	if len(line) < 18 || line[8] != ' ' || line[17] != ' ' {
		return nil, end, false
	}
	length, err1 := strconv.ParseUint(string(line[:8]), 16, 32)
	sum, err2 := strconv.ParseUint(string(line[9:17]), 16, 32)
	if err1 != nil || err2 != nil {
		return nil, end, false
	}
	payload = line[18:]
	if uint64(len(payload)) != length || uint64(crc32.Checksum(payload, castagnoli)) != sum {
		return nil, end, false
	}
	return payload, end, true
}

// Resume opens the journal at path for continuation of the run
// described by want: it validates the on-disk header against want,
// truncates any torn tail, and returns an append-positioned writer
// together with the recovered rows (the trials a resumed engine run
// must not redo). A missing file — or one whose header never made it
// to disk — starts fresh.
//
// The file is exclusively locked before it is even read, and the lock
// is held for the writer's lifetime: resuming a journal whose original
// process is still alive (the classic believed-dead restart) fails
// loudly instead of letting two writers interleave rows and poison the
// file with duplicate trial indices.
func Resume(path string, want Header) (*Writer, []campaign.TrialResult, error) {
	if err := want.check(); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	unlock, err := lockFile(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: locking %s: %w — is another run still writing it?", path, err)
	}
	// Every failure from here must drop both the lock and the file.
	bail := func(err error) (*Writer, []campaign.TrialResult, error) {
		unlock()
		f.Close()
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return bail(err)
	}
	j, err := decode(path, data)
	if err != nil {
		return bail(err)
	}
	if !j.HeaderOK {
		// A brand-new (or empty) file, or one beheaded mid-Create:
		// nothing trustworthy on disk. Start over in place.
		if err := initJournal(f, want); err != nil {
			return bail(err)
		}
		return &Writer{f: f, hdr: want, SyncEvery: DefaultSyncEvery, unlock: unlock}, nil, nil
	}
	if err := j.Header.compatible(want); err != nil {
		return bail(fmt.Errorf("%w (%s)", err, path))
	}
	if j.Torn {
		if err := f.Truncate(j.clean); err != nil {
			return bail(err)
		}
	}
	if _, err := f.Seek(j.clean, io.SeekStart); err != nil {
		return bail(err)
	}
	return &Writer{f: f, hdr: j.Header, SyncEvery: DefaultSyncEvery, RepairedTorn: j.Torn, unlock: unlock}, j.Rows, nil
}
