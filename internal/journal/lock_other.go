//go:build !unix

package journal

import "os"

// lockFile is a no-op where flock is unavailable; journal integrity
// then rests on Create's O_EXCL and the duplicate-index checks in Read.
func lockFile(*os.File) error { return nil }
