//go:build !unix

package journal

import "os"

// lockFile cannot flock here, so writer exclusion falls back to the
// best-effort pid/host lease sidecar (see lease.go): double-resume of a
// live journal fails loudly naming the holder instead of silently
// interleaving rows. The release removes the sidecar; a crash leaves it
// behind for the staleness check to reap.
func lockFile(f *os.File) (release func(), err error) {
	return acquireLease(f.Name())
}

// pidAlive reports whether pid plausibly names a live process. Without
// unix signal 0 the probe is platform-dependent: os.FindProcess fails
// for a dead pid on Windows; elsewhere it always succeeds, which errs
// on the conservative side (a stale lease then needs manual deletion —
// loud, never corrupt).
func pidAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	_ = p
	return true
}
