package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// testSpec mirrors the campaign package's smoke spec: 24 trials over a
// 2×2 grid with mixed schedulability.
func testSpec() *campaign.Spec {
	return &campaign.Spec{
		Name:        "smoke",
		Seeds:       6,
		Tasks:       []int{12},
		Utilization: []float64{1.5},
		Procs:       []int{2, 3},
		Policies:    []string{"lexicographic", "memory-only"},
	}
}

// runJournaled executes the spec (or a shard of it) with the journal at
// path as the engine sink and returns the run's rows.
func runJournaled(t *testing.T, path string, workers, shardIdx, shardCnt int) []campaign.TrialResult {
	t.Helper()
	spec := testSpec()
	hdr, err := NewHeader(spec, shardIdx, shardCnt)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	eng := &campaign.Engine{Workers: workers, Lo: hdr.Lo, Hi: hdr.Hi, Sink: w.Append}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return res.Trials
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.jsonl")
	rows := runJournaled(t, path, 4, 0, 1)

	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !j.HeaderOK || j.Torn {
		t.Fatalf("journal state: headerOK=%v torn=%v", j.HeaderOK, j.Torn)
	}
	if !j.Complete() {
		t.Fatalf("journal incomplete: %d of %d rows", len(j.Rows), j.Header.Hi-j.Header.Lo)
	}
	if len(j.Rows) != len(rows) {
		t.Fatalf("rows: %d, want %d", len(j.Rows), len(rows))
	}
	// Journal order is completion order; compare as sets keyed by index.
	byIdx := map[int]campaign.TrialResult{}
	for _, r := range j.Rows {
		byIdx[r.Index] = r
	}
	for _, want := range rows {
		if got := byIdx[want.Index]; !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: journaled %+v, ran %+v", want.Index, got, want)
		}
	}
	// The header binds the journal to the spec.
	hash, err := testSpec().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if j.Header.SpecHash != hash {
		t.Fatalf("spec hash %s, want %s", j.Header.SpecHash, hash)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.jsonl")
	runJournaled(t, path, 2, 0, 1)
	hdr, err := NewHeader(testSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Create(path, hdr); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("create over existing journal: %v", err)
	}
}

func TestAppendRejectsOutOfRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.jsonl")
	hdr, err := NewHeader(testSpec(), 0, 3) // shard 1/3 of 24 trials: [0,8)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(campaign.TrialResult{Index: 8}); err == nil || !strings.Contains(err.Error(), "outside shard range") {
		t.Fatalf("out-of-range append: %v", err)
	}
}

func TestReadRejectsDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.jsonl")
	hdr, err := NewHeader(testSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.TrialResult{Index: 3, Cell: "N=12/U=1.5/M=2/lexicographic", Seed: 3}
	if err := w.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), "journaled twice") {
		t.Fatalf("duplicate rows: %v", err)
	}
}

func TestResumeRejectsForeignSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.jsonl")
	runJournaled(t, path, 2, 0, 1)

	other := testSpec()
	other.Seeds = 7 // different grid → different hash
	hdr, err := NewHeader(other, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(path, hdr); err == nil || !strings.Contains(err.Error(), "spec hash") {
		t.Fatalf("foreign spec resume: %v", err)
	}
}

func TestResumeRejectsForeignShard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.jsonl")
	runJournaled(t, path, 2, 0, 3)
	hdr, err := NewHeader(testSpec(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(path, hdr); err == nil || !strings.Contains(err.Error(), "does not match requested shard") {
		t.Fatalf("foreign shard resume: %v", err)
	}
}

func TestTamperedSpecDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.jsonl")
	runJournaled(t, path, 2, 0, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the header frame with an edited spec but the original
	// hash claim — and a valid CRC, so only the hash check can catch it.
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr := j.Header
	hdr.Spec.Seeds = 7
	payload, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(data, '\n')
	tampered := append(frame(payload), data[nl+1:]...)
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), "hashes to") {
		t.Fatalf("tampered spec: %v", err)
	}
}

// TestTornFinalRecordRecovered: a bad final record with nothing after
// it is a torn tail even when its newline survived (out-of-order
// sector persistence), and resume repairs it; the same damage mid-file
// stays a hard error.
func TestTornFinalRecordRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.jsonl")
	rows := runJournaled(t, path, 2, 0, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastLine := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	flipped := append([]byte(nil), data...)
	flipped[lastLine+20] ^= 0x01
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Torn || len(j.Rows) != len(rows)-1 {
		t.Fatalf("bad final record: torn=%v rows=%d, want torn with %d rows", j.Torn, len(j.Rows), len(rows)-1)
	}
	hdr, err := NewHeader(testSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, done, err := Resume(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != len(rows)-1 {
		t.Fatalf("resume recovered %d rows, want %d", len(done), len(rows)-1)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyShardRejected: more shards than trials is a clear error, not
// a cryptic invalid-range failure deep in the stack.
func TestEmptyShardRejected(t *testing.T) {
	spec := testSpec()
	spec.Seeds = 1
	spec.Procs = []int{2}
	spec.Policies = []string{"lexicographic"} // 1 trial
	if _, err := NewHeader(spec, 1, 3); err == nil || !strings.Contains(err.Error(), "is empty") {
		t.Fatalf("empty shard: %v", err)
	}
}

// TestResumeRefusesLiveJournal: resuming a journal whose writer is
// still alive must fail on the file lock, not interleave rows.
func TestResumeRefusesLiveJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.jsonl")
	hdr, err := NewHeader(testSpec(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(path, hdr); err == nil || !strings.Contains(err.Error(), "another") {
		t.Fatalf("resume of a live journal: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Once the writer is gone the lock is released and resume proceeds.
	w2, done, err := Resume(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatalf("recovered %d rows from a header-only journal", len(done))
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardRangeTiles(t *testing.T) {
	for _, total := range []int{1, 7, 24, 1000} {
		for _, n := range []int{1, 2, 3, 7, total} {
			next := 0
			for i := 0; i < n; i++ {
				lo, hi := ShardRange(total, i, n)
				if lo != next {
					t.Fatalf("total=%d n=%d shard %d starts at %d, want %d", total, n, i, lo, next)
				}
				next = hi
			}
			if next != total {
				t.Fatalf("total=%d n=%d ends at %d", total, n, next)
			}
		}
	}
}
