package service

import (
	"bytes"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// renderArtifacts folds the result into the cached artifact set: the
// deterministic .json and .csv (the byte-identity artifacts, the same
// bytes regardless of executor) plus the runinfo sidecar (wall-clock
// facts, host, telemetry — explicitly outside the identity contract)
// and whatever extras the executor contributes (the fleet executor
// adds the fleetinfo document).
func (d *Daemon) renderArtifacts(id string, c *camp, res *campaign.Result, set *obs.Set, elapsed time.Duration) (map[string][]byte, error) {
	jsonData, err := res.JSON()
	if err != nil {
		return nil, err
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		return nil, err
	}
	ri := obs.NewRunInfo("lbfarmd")
	ri.Name = c.spec.Name
	ri.SpecHash = id
	ri.Trials = c.total
	ri.Workers = d.cfg.Workers
	ri.Obs = set.Snapshot()
	ri.Finish(elapsed)
	riData, err := ri.JSON()
	if err != nil {
		return nil, err
	}
	files := map[string][]byte{
		KindJSON:    jsonData,
		KindCSV:     csvBuf.Bytes(),
		KindRunInfo: riData,
	}
	if xa, ok := d.cfg.Executor.(extraArtifactor); ok {
		for kind, data := range xa.ExtraArtifacts(id) {
			files[kind] = data
		}
	}
	return files, nil
}

// ArtifactPaths maps the local executor's artifact kinds to the service
// paths they are served under for one campaign.
func ArtifactPaths(id string) map[string]string {
	return map[string]string{
		KindJSON:    "/v1/artifacts/" + id + ".json",
		KindCSV:     "/v1/artifacts/" + id + ".csv",
		KindRunInfo: "/v1/artifacts/" + id + ".runinfo.json",
	}
}

// artifactPaths maps what the store actually holds for id — fleet
// campaigns carry the extra fleetinfo kind — falling back to the local
// default set when the store has no kind index for id.
func (d *Daemon) artifactPaths(id string) map[string]string {
	kinds := d.cfg.Store.ArtifactKinds(id)
	if len(kinds) == 0 {
		return ArtifactPaths(id)
	}
	out := make(map[string]string, len(kinds))
	for _, kind := range kinds {
		name, err := artifactFile(id, kind)
		if err != nil {
			continue
		}
		out[kind] = "/v1/artifacts/" + name
	}
	return out
}
