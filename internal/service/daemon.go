package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/progress"
)

// Optional executor capabilities the daemon probes for. The fleet
// executor implements all of them; a plain Executor implements none
// and the daemon behaves exactly as it did when the engine was
// hard-wired in.
type (
	// fleetReporter contributes the CampaignStatus.Fleet block of a
	// running campaign.
	fleetReporter interface {
		FleetStatus(id string) *api.CoordStatus
	}
	// extraArtifactor contributes executor-specific artifacts (the
	// fleetinfo document) to a finished campaign's set.
	extraArtifactor interface {
		ExtraArtifacts(id string) map[string][]byte
	}
	// routeProvider mounts executor endpoints (worker registration) on
	// the daemon's API mux.
	routeProvider interface {
		Routes(mux *http.ServeMux)
	}
	// metricsWriter appends executor metric families (lbfleet_) to the
	// daemon's /metrics exposition.
	metricsWriter interface {
		WriteMetrics(w io.Writer) error
	}
)

// Hooks are the daemon's test seams; the zero value is production.
type Hooks struct {
	// SinkTick, when non-nil, runs inside the engine sink after each
	// journal append with the campaign ID and the cumulative journaled
	// count — the deterministic wait point the restart test hangs on.
	SinkTick func(id string, done int)
}

// Config parameterises a Daemon.
type Config struct {
	// Store holds campaign records and the artifact cache (required).
	Store Store
	// JournalDir is the node-local directory for in-flight trial
	// journals (required). A restarted daemon resumes running campaigns
	// from here.
	JournalDir string
	// QueueDepth bounds the admission queue; ≤ 0 means 64. A submit
	// beyond it is refused with queue_full (429).
	QueueDepth int
	// MaxRuns is how many campaigns execute concurrently; ≤ 0 means 1.
	MaxRuns int
	// Workers is each campaign's engine pool size (≤ 0 = GOMAXPROCS,
	// divided across MaxRuns). When MaxRuns × Workers oversubscribes
	// GOMAXPROCS the daemon caps the per-campaign pool — engine workers
	// are CPU-bound, so oversubscription only adds scheduler thrash —
	// unless AllowOversubscribe is set. Ignored by non-local executors.
	Workers int
	// AllowOversubscribe keeps an explicit MaxRuns × Workers >
	// GOMAXPROCS request instead of capping it (still logged loudly).
	AllowOversubscribe bool
	// Executor runs admitted campaigns: nil means the LocalExecutor
	// (the in-process engine over JournalDir); a FleetExecutor
	// dispatches to the registered worker fleet instead.
	Executor Executor
	// ProgressEvery is the SSE progress-event cadence; ≤ 0 means 250ms.
	ProgressEvery time.Duration
	// Logf receives the daemon's event log (nil = silent).
	Logf func(format string, args ...any)
	// Hooks inject test seams.
	Hooks Hooks
}

// camp is one known campaign: its spec, live counters, and status.
type camp struct {
	spec     *campaign.Spec
	specJSON json.RawMessage

	// doneN/acceptedN are updated by concurrent engine sinks; total is
	// fixed at admission.
	doneN     atomic.Int64
	acceptedN atomic.Int64
	total     int

	// Everything below is guarded by the daemon mutex.
	state       api.CampaignState
	errMsg      string
	submittedAt time.Time
	startedAt   *time.Time
	finishedAt  *time.Time
	set         *obs.Set // non-nil while running
}

// Daemon is the campaign service: a bounded admission queue feeding
// MaxRuns concurrent engine runners, every transition persisted to the
// Store, every run journaled for crash-resume, results landing in the
// content-addressed artifact cache.
type Daemon struct {
	cfg Config
	hub *hub

	mu    sync.Mutex
	camps map[string]*camp
	queue chan *camp

	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup

	// Control-plane counters (the lbfarmd_ metric families).
	submissions    atomic.Int64
	cacheHits      atomic.Int64
	trialsExecuted atomic.Int64
	campaignsDone  atomic.Int64
	campaignsFail  atomic.Int64
	interrupted    atomic.Int64
}

// Stats is the daemon's control-plane counter snapshot.
type Stats struct {
	Submissions    int64 `json:"submissions"`
	CacheHits      int64 `json:"cache_hits"`
	TrialsExecuted int64 `json:"trials_executed"`
	CampaignsDone  int64 `json:"campaigns_done"`
	CampaignsFail  int64 `json:"campaigns_failed"`
	Queued         int   `json:"queued"`
	Running        int   `json:"running"`
}

// New builds a Daemon over cfg, replaying the store: done records are
// re-registered against their cached artifacts, and queued/running
// records — the campaigns a previous daemon died holding — re-enter
// the queue to resume from their journals. Call Start to begin
// executing.
func New(cfg Config) (*Daemon, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("service: config needs a Store")
	}
	if cfg.JournalDir == "" {
		return nil, fmt.Errorf("service: config needs a journal directory")
	}
	if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
		return nil, err
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 1
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 250 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Executor == nil {
		cfg.Workers = capWorkers(cfg.Workers, cfg.MaxRuns, cfg.AllowOversubscribe, cfg.Logf)
		cfg.Executor = &LocalExecutor{Dir: cfg.JournalDir, Workers: cfg.Workers}
	}

	recs, err := cfg.Store.Records()
	if err != nil {
		return nil, err
	}
	var pending []*camp
	camps := map[string]*camp{}
	for _, rec := range recs {
		c, err := campFromRecord(rec)
		if err != nil {
			return nil, err
		}
		switch {
		case rec.State == api.CampaignDone && cfg.Store.HasArtifacts(rec.ID):
			c.doneN.Store(int64(c.total))
		case rec.State.Terminal() && rec.State != api.CampaignDone:
			// failed: registered, not re-run; a re-submit re-queues it.
		case cfg.Store.HasArtifacts(rec.ID):
			// Crashed between artifact put and record finalise: the
			// artifacts are complete, so finish the record now.
			c.state = api.CampaignDone
			now := time.Now()
			c.finishedAt = &now
			c.doneN.Store(int64(c.total))
			if err := cfg.Store.PutRecord(recordOf(rec.ID, c)); err != nil {
				return nil, err
			}
		default:
			// queued or running at crash time: back in line, the
			// journal replay makes the re-run cheap.
			c.state = api.CampaignQueued
			c.startedAt = nil
			if err := cfg.Store.PutRecord(recordOf(rec.ID, c)); err != nil {
				return nil, err
			}
			pending = append(pending, c)
		}
		camps[rec.ID] = c
	}
	d := &Daemon{
		cfg:   cfg,
		hub:   newHub(),
		camps: camps,
		queue: make(chan *camp, cfg.QueueDepth+len(pending)),
		stop:  make(chan struct{}),
	}
	for _, c := range pending {
		d.queue <- c
		d.cfg.Logf("campaign %s: recovered from store, re-queued", idOf(c))
	}
	return d, nil
}

// campFromRecord rebuilds the in-memory campaign from its record.
func campFromRecord(rec Record) (*camp, error) {
	spec := &campaign.Spec{}
	if err := json.Unmarshal(rec.Spec, spec); err != nil {
		return nil, fmt.Errorf("service: record %s: decoding spec: %w", rec.ID, err)
	}
	if err := spec.Normalize(); err != nil {
		return nil, fmt.Errorf("service: record %s: %w", rec.ID, err)
	}
	trials, err := spec.Trials()
	if err != nil {
		return nil, fmt.Errorf("service: record %s: %w", rec.ID, err)
	}
	return &camp{
		spec:        spec,
		specJSON:    rec.Spec,
		total:       len(trials),
		state:       rec.State,
		errMsg:      rec.Error,
		submittedAt: rec.SubmittedAt,
		startedAt:   rec.StartedAt,
		finishedAt:  rec.FinishedAt,
	}, nil
}

// idOf returns the campaign's spec hash (already validated, so the
// error path is unreachable in practice).
func idOf(c *camp) string {
	hash, err := c.spec.Hash()
	if err != nil {
		return "invalid"
	}
	return hash
}

// recordOf snapshots c into its durable record. Caller holds d.mu (or
// owns c exclusively).
func recordOf(id string, c *camp) Record {
	return Record{
		ID:          id,
		Name:        c.spec.Name,
		State:       c.state,
		Error:       c.errMsg,
		SubmittedAt: c.submittedAt,
		StartedAt:   c.startedAt,
		FinishedAt:  c.finishedAt,
		Spec:        c.specJSON,
	}
}

// Start launches the runner pool.
func (d *Daemon) Start() {
	for i := 0; i < d.cfg.MaxRuns; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for {
				select {
				case <-d.stop:
					return
				case c := <-d.queue:
					d.run(c)
				}
			}
		}()
	}
}

// Close drains the daemon: running engines stop claiming trials,
// in-flight trials reach their journals, interrupted campaigns revert
// to queued on disk (a restarted daemon resumes them), and the runner
// pool exits. Idempotent.
func (d *Daemon) Close() error {
	if d.stopped.Swap(true) {
		return nil
	}
	close(d.stop)
	d.wg.Wait()
	return nil
}

// Interrupted reports how many campaigns a Close caught mid-run — the
// CLI's exit-code-3 signal.
func (d *Daemon) Interrupted() int64 { return d.interrupted.Load() }

// apiError builds a typed *api.Error carrying its HTTP status.
func apiError(status int, code, format string, args ...any) *api.Error {
	return &api.Error{Code: code, Message: fmt.Sprintf(format, args...), Status: status}
}

// Submit admits one campaign submission (a campaign.Spec JSON body).
// The returned status is the POST response:
//
//   - cache hit (same spec ran before): state done, Cached true, the
//     artifact links — zero trials execute;
//   - already queued or running: that campaign's live status;
//   - new (or previously failed): queued.
//
// Errors are *api.Error values with Status/Code set: bad_request for
// specs that fail to parse or validate, queue_full when the admission
// queue is at capacity, unavailable while draining.
func (d *Daemon) Submit(body io.Reader) (api.CampaignStatus, error) {
	if d.stopped.Load() {
		return api.CampaignStatus{}, apiError(http.StatusServiceUnavailable, api.CodeUnavailable, "daemon is draining")
	}
	d.submissions.Add(1)
	spec := &campaign.Spec{}
	if err := api.Decode(body, spec); err != nil {
		return api.CampaignStatus{}, apiError(http.StatusBadRequest, api.CodeBadRequest, "decoding spec: %v", err)
	}
	if err := spec.Normalize(); err != nil {
		return api.CampaignStatus{}, apiError(http.StatusBadRequest, api.CodeBadRequest, "%v", err)
	}
	hash, err := spec.Hash()
	if err != nil {
		return api.CampaignStatus{}, apiError(http.StatusBadRequest, api.CodeBadRequest, "%v", err)
	}
	trials, err := spec.Trials()
	if err != nil {
		return api.CampaignStatus{}, apiError(http.StatusBadRequest, api.CodeBadRequest, "%v", err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return api.CampaignStatus{}, apiError(http.StatusInternalServerError, api.CodeInternal, "%v", err)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.camps[hash]; ok {
		switch c.state {
		case api.CampaignDone:
			// The exact-cache path: determinism keys the artifact set by
			// spec hash, so the first run's bytes answer every identical
			// re-submission.
			d.cacheHits.Add(1)
			st := d.statusLocked(hash, c)
			st.Cached = true
			return st, nil
		case api.CampaignQueued, api.CampaignRunning:
			return d.statusLocked(hash, c), nil
		}
		// failed: fall through to re-queue the same identity.
	}
	c := d.camps[hash]
	if c == nil {
		c = &camp{spec: spec, specJSON: specJSON, total: len(trials)}
	}
	select {
	case d.queue <- c:
	default:
		return api.CampaignStatus{}, apiError(http.StatusTooManyRequests, api.CodeQueueFull, "admission queue is full (%d campaigns)", cap(d.queue))
	}
	c.state = api.CampaignQueued
	c.errMsg = ""
	c.submittedAt = time.Now()
	c.startedAt, c.finishedAt = nil, nil
	d.camps[hash] = c
	if err := d.cfg.Store.PutRecord(recordOf(hash, c)); err != nil {
		d.cfg.Logf("campaign %s: persisting record: %v", hash, err)
	}
	d.cfg.Logf("campaign %s (%s): queued, %d trials", hash[:12], spec.Name, c.total)
	st := d.statusLocked(hash, c)
	d.publishStatus(hash, st)
	return st, nil
}

// Status returns one campaign's live status.
func (d *Daemon) Status(id string) (api.CampaignStatus, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.camps[id]
	if !ok {
		return api.CampaignStatus{}, false
	}
	return d.statusLocked(id, c), true
}

// List returns every known campaign, oldest submission first.
func (d *Daemon) List() []api.CampaignStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]api.CampaignStatus, 0, len(d.camps))
	for id, c := range d.camps {
		out = append(out, d.statusLocked(id, c))
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].SubmittedAt.Equal(out[j].SubmittedAt) {
			return out[i].SubmittedAt.Before(out[j].SubmittedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Stats snapshots the control-plane counters.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	var queued, running int
	for _, c := range d.camps {
		switch c.state {
		case api.CampaignQueued:
			queued++
		case api.CampaignRunning:
			running++
		}
	}
	d.mu.Unlock()
	return Stats{
		Submissions:    d.submissions.Load(),
		CacheHits:      d.cacheHits.Load(),
		TrialsExecuted: d.trialsExecuted.Load(),
		CampaignsDone:  d.campaignsDone.Load(),
		CampaignsFail:  d.campaignsFail.Load(),
		Queued:         queued,
		Running:        running,
	}
}

// MergedSnapshot merges the telemetry of every running campaign — the
// daemon-wide view /metrics and /debug/vars serve.
func (d *Daemon) MergedSnapshot() *obs.Snapshot {
	d.mu.Lock()
	var snaps []*obs.Snapshot
	for _, c := range d.camps {
		if c.set != nil {
			snaps = append(snaps, c.set.Snapshot())
		}
	}
	d.mu.Unlock()
	if len(snaps) == 0 {
		return nil
	}
	return obs.MergeSnapshots(snaps...)
}

// WriteMetrics renders the daemon's Prometheus exposition: lbfarmd_
// control gauges/counters plus the merged lb_ snapshot of everything
// currently running.
func (d *Daemon) WriteMetrics(w io.Writer) error {
	st := d.Stats()
	p := obs.NewPromWriter(w)
	p.Gauge("lbfarmd_queue_depth", "Campaigns waiting in the admission queue.", obs.Sample{Value: float64(st.Queued)})
	p.Gauge("lbfarmd_running", "Campaigns currently executing.", obs.Sample{Value: float64(st.Running)})
	p.Counter("lbfarmd_submissions_total", "Campaign submissions accepted for processing.", obs.Sample{Value: float64(st.Submissions)})
	p.Counter("lbfarmd_cache_hits_total", "Submissions answered entirely from the artifact cache.", obs.Sample{Value: float64(st.CacheHits)})
	p.Counter("lbfarmd_trials_executed_total", "Trials executed live by this daemon (journal replays excluded).", obs.Sample{Value: float64(st.TrialsExecuted)})
	p.Counter("lbfarmd_campaigns_done_total", "Campaigns completed successfully.", obs.Sample{Value: float64(st.CampaignsDone)})
	p.Counter("lbfarmd_campaigns_failed_total", "Campaigns that ended in an error.", obs.Sample{Value: float64(st.CampaignsFail)})
	p.Snapshot("lb_", d.MergedSnapshot())
	if err := p.Err(); err != nil {
		return err
	}
	if mw, ok := d.cfg.Executor.(metricsWriter); ok {
		return mw.WriteMetrics(w)
	}
	return nil
}

// statusLocked composes the wire status of c. Caller holds d.mu.
func (d *Daemon) statusLocked(id string, c *camp) api.CampaignStatus {
	st := api.CampaignStatus{
		ID:          id,
		Name:        c.spec.Name,
		State:       c.state,
		Done:        int(c.doneN.Load()),
		Accepted:    int(c.acceptedN.Load()),
		Total:       c.total,
		Error:       c.errMsg,
		SubmittedAt: c.submittedAt,
		StartedAt:   c.startedAt,
		FinishedAt:  c.finishedAt,
	}
	if c.state == api.CampaignDone {
		st.Artifacts = d.artifactPaths(id)
	}
	if c.state == api.CampaignRunning {
		if fr, ok := d.cfg.Executor.(fleetReporter); ok {
			st.Fleet = fr.FleetStatus(id)
		}
	}
	return st
}

// publishStatus emits a status event on the campaign's stream.
func (d *Daemon) publishStatus(id string, st api.CampaignStatus) {
	d.hub.publish(id, api.Event{Type: api.EventStatus, Status: &st})
}

// setState transitions c, persists the record, and emits the status
// event.
func (d *Daemon) setState(id string, c *camp, mutate func(*camp)) {
	d.mu.Lock()
	mutate(c)
	rec := recordOf(id, c)
	st := d.statusLocked(id, c)
	d.mu.Unlock()
	if err := d.cfg.Store.PutRecord(rec); err != nil {
		d.cfg.Logf("campaign %s: persisting record: %v", id, err)
	}
	d.publishStatus(id, st)
}

// run executes one campaign to done, failed, or drain.
func (d *Daemon) run(c *camp) {
	id := idOf(c)
	// A duplicate submission may have been admitted while this entry
	// waited in the queue after a previous run already finished it.
	if d.cfg.Store.HasArtifacts(id) {
		d.setState(id, c, func(c *camp) {
			if c.state != api.CampaignDone {
				c.state = api.CampaignDone
				now := time.Now()
				c.finishedAt = &now
				c.doneN.Store(int64(c.total))
			}
		})
		return
	}

	set := obs.NewSet(d.cfg.Workers)
	start := time.Now()
	d.setState(id, c, func(c *camp) {
		c.state = api.CampaignRunning
		now := start
		c.startedAt = &now
		c.set = set
	})
	d.cfg.Logf("campaign %s (%s): running", id[:12], c.spec.Name)

	res, runErr := d.execute(id, c, set, start)

	switch {
	case runErr == nil:
		files, err := d.renderArtifacts(id, c, res, set, time.Since(start))
		if err == nil {
			err = d.cfg.Store.PutArtifacts(id, files)
		}
		if err != nil {
			runErr = err
			break
		}
		if err := d.cfg.Executor.Cleanup(id); err != nil {
			d.cfg.Logf("campaign %s: cleaning executor scratch: %v", id, err)
		}
		d.campaignsDone.Add(1)
		d.setState(id, c, func(c *camp) {
			c.state = api.CampaignDone
			now := time.Now()
			c.finishedAt = &now
			c.set = nil
		})
		d.cfg.Logf("campaign %s (%s): done, %d trials in %s", id[:12], c.spec.Name, c.total, time.Since(start).Round(time.Millisecond))
		return
	case errors.Is(runErr, campaign.ErrInterrupted):
		// Daemon drain: the journal holds everything that ran; revert
		// to queued so the next daemon resumes instead of restarting.
		d.interrupted.Add(1)
		d.setState(id, c, func(c *camp) {
			c.state = api.CampaignQueued
			c.startedAt = nil
			c.set = nil
		})
		d.cfg.Logf("campaign %s (%s): interrupted after %d trials, re-queued for resume", id[:12], c.spec.Name, c.doneN.Load())
		return
	}
	d.campaignsFail.Add(1)
	msg := runErr.Error()
	d.setState(id, c, func(c *camp) {
		c.state = api.CampaignFailed
		c.errMsg = msg
		now := time.Now()
		c.finishedAt = &now
		c.set = nil
	})
	d.cfg.Logf("campaign %s (%s): failed: %v", id[:12], c.spec.Name, runErr)
}

// execute runs one attempt through the configured executor: the daemon
// contributes the counter/SSE fan-out (the Sink), the resume baseline
// (OnResume), and the periodic progress emitter; the executor decides
// whether trials run on the local engine or the worker fleet.
func (d *Daemon) execute(id string, c *camp, set *obs.Set, start time.Time) (*campaign.Result, error) {
	// base is the resume baseline for the progress line — set by the
	// executor's OnResume before any live trial runs.
	var base atomic.Int64

	// Progress emitter: one SSE progress event per tick while the
	// executor runs, and a final one when it stops.
	pstop := make(chan struct{})
	pdone := make(chan struct{})
	go func() {
		defer close(pdone)
		tick := time.NewTicker(d.cfg.ProgressEvery)
		defer tick.Stop()
		progress.Loop(tick.C, pstop, func() string {
			return progress.Line(c.doneN.Load(), c.acceptedN.Load(), base.Load(), int64(c.total), time.Since(start))
		}, func(line string) {
			d.hub.publish(id, api.Event{Type: api.EventProgress, Progress: &api.ProgressEvent{
				Done:     int(c.doneN.Load()),
				Accepted: int(c.acceptedN.Load()),
				Total:    c.total,
				Line:     line,
			}})
		})
	}()
	defer func() {
		close(pstop)
		<-pdone
	}()

	return d.cfg.Executor.Execute(ExecRequest{
		ID:   id,
		Spec: c.spec,
		OnResume: func(done []campaign.TrialResult) {
			n := int64(len(done))
			base.Store(n)
			c.doneN.Store(n)
			var accepted int64
			for _, r := range done {
				if r.Outcome == campaign.OutcomeOK {
					accepted++
				}
			}
			c.acceptedN.Store(accepted)
			if n > 0 {
				d.cfg.Logf("campaign %s: resuming, %d of %d trials already done", id[:12], n, c.total)
			}
		},
		Sink: func(r campaign.TrialResult) error {
			n := c.doneN.Add(1)
			if r.Outcome == campaign.OutcomeOK {
				c.acceptedN.Add(1)
			}
			d.trialsExecuted.Add(1)
			d.hub.publish(id, api.Event{Type: api.EventTrial, Trial: &api.TrialEvent{
				Index:   r.Index,
				Cell:    r.Cell,
				Outcome: r.Outcome,
			}})
			if d.cfg.Hooks.SinkTick != nil {
				d.cfg.Hooks.SinkTick(id, int(n))
			}
			return nil
		},
		Obs:  set,
		Stop: d.stop,
		Logf: d.cfg.Logf,
	})
}
