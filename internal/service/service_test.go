package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
)

// testSpec is a small, fast sweep: one cell, `seeds` trials.
func testSpec(seeds int) *campaign.Spec {
	return &campaign.Spec{
		Name:        "svc-test",
		Seeds:       seeds,
		Tasks:       []int{20},
		Utilization: []float64{2.5},
		Procs:       []int{4},
		Policies:    []string{"lexicographic"},
	}
}

func specBody(t *testing.T, spec *campaign.Spec) []byte {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// newDaemon builds (but does not Start) a daemon over a fresh temp
// store.
func newDaemon(t *testing.T, dir string, hooks Hooks) *Daemon {
	t.Helper()
	store, err := OpenFSStore(filepath.Join(dir, "data"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Store:         store,
		JournalDir:    filepath.Join(dir, "journals"),
		Workers:       2,
		ProgressEvery: 10 * time.Millisecond,
		Hooks:         hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// submit POSTs a spec and decodes the response status.
func submit(t *testing.T, srv *httptest.Server, body []byte) (api.CampaignStatus, int) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return api.CampaignStatus{}, resp.StatusCode
	}
	var st api.CampaignStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding submit response: %v\n%s", err, data)
	}
	return st, resp.StatusCode
}

// waitDone polls the campaign until it reaches a terminal state.
func waitDone(t *testing.T, srv *httptest.Server, id string) api.CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(srv.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st api.CampaignStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s never finished", id)
	return api.CampaignStatus{}
}

// fetch GETs one path and returns body + status code.
func fetch(t *testing.T, srv *httptest.Server, path string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data, resp.StatusCode
}

// readSSE consumes the campaign's event stream until the terminal
// status frame, returning every decoded event.
func readSSE(t *testing.T, srv *httptest.Server, id string) []api.Event {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	var evs []api.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev api.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("decoding SSE frame: %v\n%s", err, data)
			}
			evs = append(evs, ev)
			if ev.Type == api.EventStatus && ev.Status != nil && ev.Status.State.Terminal() {
				return evs
			}
		}
	}
	t.Fatalf("stream ended without a terminal status (got %d events): %v", len(evs), sc.Err())
	return nil
}

// TestEndToEnd is the service e2e: submit → stream events → fetch
// artifacts, and the served bytes are identical to a direct engine run
// of the same spec.
func TestEndToEnd(t *testing.T) {
	d := newDaemon(t, t.TempDir(), Hooks{})
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	d.Start()

	spec := testSpec(4)
	st, code := submit(t, srv, specBody(t, spec))
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d, want 202", code)
	}
	if st.State != api.CampaignQueued && st.State != api.CampaignRunning {
		t.Fatalf("state = %s", st.State)
	}
	if st.Total != 4 {
		t.Fatalf("total = %d, want 4", st.Total)
	}

	evs := readSSE(t, srv, st.ID)
	last := evs[len(evs)-1]
	if last.Status.State != api.CampaignDone {
		t.Fatalf("final state = %s (%s)", last.Status.State, last.Status.Error)
	}
	if last.Status.Done != 4 || last.Status.Artifacts[KindJSON] == "" {
		t.Fatalf("final status: %+v", last.Status)
	}
	// Event sequence numbers are strictly increasing within the live
	// stream (the drop detector).
	var prev int64
	for _, ev := range evs[1:] { // evs[0] is the synthetic opener, seq 0
		if ev.Seq <= prev {
			t.Fatalf("seq not increasing: %d after %d", ev.Seq, prev)
		}
		prev = ev.Seq
	}

	gotJSON, code := fetch(t, srv, last.Status.Artifacts[KindJSON])
	if code != http.StatusOK {
		t.Fatalf("artifact fetch = %d", code)
	}
	gotCSV, _ := fetch(t, srv, last.Status.Artifacts[KindCSV])
	ri, code := fetch(t, srv, last.Status.Artifacts[KindRunInfo])
	if code != http.StatusOK || !bytes.Contains(ri, []byte(`"lbfarmd"`)) {
		t.Fatalf("runinfo fetch = %d: %s", code, ri)
	}

	// Byte-identity against a direct, in-process engine run.
	res, err := (&campaign.Engine{Workers: 2}).Run(testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("served JSON artifact differs from a direct engine run")
	}
	var wantCSV bytes.Buffer
	if err := res.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV, wantCSV.Bytes()) {
		t.Fatal("served CSV artifact differs from a direct engine run")
	}
}

// TestDuplicateSubmitCached pins the acceptance criterion: submitting
// the same spec twice serves the second from the cache, byte-identical,
// with zero trials re-executed.
func TestDuplicateSubmitCached(t *testing.T) {
	d := newDaemon(t, t.TempDir(), Hooks{})
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	d.Start()

	body := specBody(t, testSpec(3))
	st1, code := submit(t, srv, body)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	waitDone(t, srv, st1.ID)
	first, _ := fetch(t, srv, "/v1/artifacts/"+st1.ID+".json")
	executed := d.Stats().TrialsExecuted
	if executed != 3 {
		t.Fatalf("executed = %d, want 3", executed)
	}

	st2, code := submit(t, srv, body)
	if code != http.StatusOK {
		t.Fatalf("duplicate submit = %d, want 200", code)
	}
	if !st2.Cached || st2.State != api.CampaignDone || st2.ID != st1.ID {
		t.Fatalf("duplicate status: %+v", st2)
	}
	second, _ := fetch(t, srv, st2.Artifacts[KindJSON])
	if !bytes.Equal(first, second) {
		t.Fatal("cached artifact is not byte-identical")
	}
	if got := d.Stats().TrialsExecuted; got != executed {
		t.Fatalf("duplicate submit re-executed trials: %d → %d", executed, got)
	}
	if d.Stats().CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", d.Stats().CacheHits)
	}
}

// TestRestartResume pins journal-backed durability: a daemon killed
// mid-campaign restarts, resumes from the journal, executes only the
// missing trials, and the final artifact is byte-identical to an
// uninterrupted run.
func TestRestartResume(t *testing.T) {
	dir := t.TempDir()
	const seeds = 8

	// First daemon: drain after 3 journaled trials. The sink blocks once
	// the third trial lands and is released only after Close has begun
	// draining, so the engine deterministically observes the stop — the
	// campaign cannot race to completion first.
	var once sync.Once
	reached := make(chan struct{})
	release := make(chan struct{})
	d1 := newDaemon(t, dir, Hooks{SinkTick: func(id string, done int) {
		if done >= 3 {
			once.Do(func() { close(reached) })
			<-release
		}
	}})
	d1.Start()
	st, err := d1.Submit(bytes.NewReader(specBody(t, testSpec(seeds))))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-reached:
	case <-time.After(30 * time.Second):
		t.Fatal("never reached 3 journaled trials")
	}
	closeErr := make(chan error, 1)
	go func() { closeErr <- d1.Close() }()
	// Draining is visible the moment admissions are refused.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := d1.Submit(bytes.NewReader(specBody(t, testSpec(seeds)))); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-closeErr; err != nil {
		t.Fatal(err)
	}
	if d1.Interrupted() != 1 {
		t.Fatalf("interrupted = %d, want 1", d1.Interrupted())
	}
	ran1 := d1.Stats().TrialsExecuted
	if ran1 < 3 || ran1 >= seeds {
		t.Fatalf("first daemon executed %d of %d", ran1, seeds)
	}
	// The interrupted campaign reverted to queued on disk.
	if got, _ := d1.Status(st.ID); got.State != api.CampaignQueued {
		t.Fatalf("state after drain = %s, want queued", got.State)
	}

	// Second daemon over the same store and journals: recovers the
	// record, replays the journal, runs only the remainder.
	d2 := newDaemon(t, dir, Hooks{})
	defer d2.Close()
	srv := httptest.NewServer(d2.Handler())
	defer srv.Close()
	if got, ok := d2.Status(st.ID); !ok || got.State != api.CampaignQueued {
		t.Fatalf("recovered state = %+v, %v", got, ok)
	}
	d2.Start()
	fin := waitDone(t, srv, st.ID)
	if fin.State != api.CampaignDone {
		t.Fatalf("final state = %s (%s)", fin.State, fin.Error)
	}
	ran2 := d2.Stats().TrialsExecuted
	if ran1+ran2 != seeds {
		t.Fatalf("executed %d + %d trials, want %d total (no re-execution)", ran1, ran2, seeds)
	}

	// Byte-identity across the interruption.
	got, code := fetch(t, srv, fin.Artifacts[KindJSON])
	if code != http.StatusOK {
		t.Fatalf("artifact fetch = %d", code)
	}
	res, err := (&campaign.Engine{Workers: 2}).Run(testSpec(seeds))
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed artifact differs from an uninterrupted run")
	}
}

// TestQueueFull: admissions beyond the queue capacity are refused with
// the queue_full envelope. The daemon is never Started, so the queue
// cannot drain under the test.
func TestQueueFull(t *testing.T) {
	store, err := OpenFSStore(filepath.Join(t.TempDir(), "data"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Store:      store,
		JournalDir: filepath.Join(t.TempDir(), "journals"),
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	if _, code := submit(t, srv, specBody(t, testSpec(2))); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	other := testSpec(3)
	other.Name = "svc-test-2"
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", bytes.NewReader(specBody(t, other)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d: %s", resp.StatusCode, body)
	}
	ae := api.ReadError(resp.StatusCode, body)
	if ae.Code != api.CodeQueueFull {
		t.Fatalf("code = %q, want queue_full", ae.Code)
	}
}

// TestErrorEnvelopes: unknown campaigns, artifacts, and malformed
// specs all answer with the shared envelope.
func TestErrorEnvelopes(t *testing.T) {
	d := newDaemon(t, t.TempDir(), Hooks{})
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	for _, path := range []string{"/v1/campaigns/nope", "/v1/campaigns/nope/events", "/v1/artifacts/nope.json", "/v1/artifacts/nope.xyz"} {
		data, code := fetch(t, srv, path)
		if code != http.StatusNotFound {
			t.Fatalf("%s = %d", path, code)
		}
		if ae := api.ReadError(code, data); ae.Code != api.CodeNotFound {
			t.Fatalf("%s: code %q body %s", path, ae.Code, data)
		}
	}

	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(`{"nope":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec = %d", resp.StatusCode)
	}
	if ae := api.ReadError(resp.StatusCode, body); ae.Code != api.CodeBadRequest {
		t.Fatalf("code = %q", ae.Code)
	}
}

// TestFSStoreAtomicity: an artifact set without its completion marker
// is invisible — to the live index and to a reopened store — so a
// crash mid-put re-runs the campaign instead of serving a torn cache.
func TestFSStoreAtomicity(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutArtifacts("aaa", map[string][]byte{KindJSON: []byte(`{}`), KindCSV: []byte("x\n")}); err != nil {
		t.Fatal(err)
	}
	if !s.HasArtifacts("aaa") {
		t.Fatal("complete set not visible")
	}
	got, err := s.GetArtifact("aaa", KindCSV)
	if err != nil || string(got) != "x\n" {
		t.Fatalf("get: %v %q", err, got)
	}
	// A torn set: artifact file present, no marker.
	if err := os.WriteFile(filepath.Join(dir, "artifacts", "bbb.json"), []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.HasArtifacts("bbb") {
		t.Fatal("torn set visible")
	}
	if _, err := s.GetArtifact("bbb", KindJSON); !os.IsNotExist(err) {
		t.Fatalf("torn get: %v", err)
	}

	// Reopen: the index rebuilds to the same view.
	s2, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.HasArtifacts("aaa") || s2.HasArtifacts("bbb") {
		t.Fatal("reopened index differs")
	}

	// Records round-trip.
	rec := Record{ID: "aaa", Name: "n", State: api.CampaignDone, SubmittedAt: time.Now().UTC(), Spec: json.RawMessage(`{"name":"n"}`)}
	if err := s2.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s3.Records()
	if err != nil || len(recs) != 1 || recs[0].ID != "aaa" || recs[0].State != api.CampaignDone {
		t.Fatalf("records: %v %+v", err, recs)
	}
}

// TestMetrics: the daemon's /metrics exposition carries the lbfarmd_
// control families and parses as one family per name.
func TestMetrics(t *testing.T) {
	d := newDaemon(t, t.TempDir(), Hooks{})
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	d.Start()

	st, _ := submit(t, srv, specBody(t, testSpec(2)))
	waitDone(t, srv, st.ID)

	data, code := fetch(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, family := range []string{
		"lbfarmd_queue_depth", "lbfarmd_running", "lbfarmd_submissions_total",
		"lbfarmd_cache_hits_total", "lbfarmd_trials_executed_total",
		"lbfarmd_campaigns_done_total", "lbfarmd_campaigns_failed_total",
	} {
		if !bytes.Contains(data, []byte("# TYPE "+family+" ")) {
			t.Fatalf("missing family %s in:\n%s", family, data)
		}
	}
	if !bytes.Contains(data, []byte(fmt.Sprintf("lbfarmd_trials_executed_total 2"))) {
		t.Fatalf("executed counter wrong:\n%s", data)
	}

	vars, code := fetch(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", code)
	}
	var v map[string]any
	if err := json.Unmarshal(vars, &v); err != nil {
		t.Fatal(err)
	}
	if _, ok := v["lbfarmd"]; !ok {
		t.Fatalf("/debug/vars missing lbfarmd: %s", vars)
	}
}
