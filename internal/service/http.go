package service

import (
	"errors"
	"net/http"
	"os"
	"strings"

	"repro/internal/api"
	"repro/internal/obs"
)

// Handler serves the campaign service API in the shared wire dialect
// (internal/api — JSON bodies, the {"error":{code,message}} envelope
// on every failure). docs/service.md is the endpoint reference.
//
//	POST /v1/campaigns            body: campaign.Spec JSON →
//	                              api.CampaignStatus; 202 queued (or
//	                              already in flight), 200 served from
//	                              the artifact cache, 400 bad spec,
//	                              429 queue full, 503 draining
//	GET  /v1/campaigns            → api.CampaignList
//	GET  /v1/campaigns/{id}       → api.CampaignStatus; 404 unknown
//	GET  /v1/campaigns/{id}/events  SSE stream of api.Event frames;
//	                              404 unknown
//	GET  /v1/artifacts/{file}     cached artifact by spec hash:
//	                              {hash}.json, {hash}.csv, or
//	                              {hash}.runinfo.json; 404 unknown or
//	                              not yet complete
//	GET  /debug/vars              {"obs": merged running snapshot,
//	                              "lbfarmd": stats} (obs.RegisterDebug)
//	GET  /debug/pprof/            profile family
//	GET  /metrics                 lbfarmd_ control series + merged lb_
//	                              campaign telemetry
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		st, err := d.Submit(r.Body)
		if err != nil {
			var ae *api.Error
			if errors.As(err, &ae) && ae.Status != 0 {
				api.WriteError(w, ae.Status, ae.Code, "%s", ae.Message)
			} else {
				api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
			}
			return
		}
		code := http.StatusAccepted
		if st.Cached {
			code = http.StatusOK
		}
		api.WriteJSON(w, code, st)
	})
	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.CampaignList{Campaigns: d.List()})
	})
	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		st, ok := d.Status(id)
		if !ok {
			api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no campaign %s", id)
			return
		}
		api.WriteJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/campaigns/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := d.Status(id); !ok {
			api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no campaign %s", id)
			return
		}
		serveSSE(w, r, d.hub, id, func() api.CampaignStatus {
			st, _ := d.Status(id)
			return st
		})
	})
	mux.HandleFunc("GET /v1/artifacts/{file}", func(w http.ResponseWriter, r *http.Request) {
		file := r.PathValue("file")
		hash, kind, ok := splitArtifact(file)
		if !ok {
			api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no artifact %s", file)
			return
		}
		data, err := d.cfg.Store.GetArtifact(hash, kind)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no artifact %s", file)
			} else {
				api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
			}
			return
		}
		switch kind {
		case KindCSV:
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		default:
			w.Header().Set("Content-Type", "application/json")
		}
		w.Write(data)
	})
	// Executor endpoints ride the same mux: in fleet mode this mounts
	// the worker registration passthrough (POST /v1/register,
	// POST /v1/heartbeat), so workers point -coord at the daemon.
	if rp, ok := d.cfg.Executor.(routeProvider); ok {
		rp.Routes(mux)
	}
	obs.RegisterDebug(mux, d.WriteMetrics, map[string]func() any{
		"obs":     func() any { return d.MergedSnapshot() },
		"lbfarmd": func() any { return d.Stats() },
	})
	return mux
}

// splitArtifact maps an artifact filename back to (hash, kind):
// {hash}.json, {hash}.csv, {hash}.runinfo.json, {hash}.fleetinfo.json.
func splitArtifact(file string) (hash, kind string, ok bool) {
	switch {
	case strings.HasSuffix(file, ".runinfo.json"):
		return strings.TrimSuffix(file, ".runinfo.json"), KindRunInfo, true
	case strings.HasSuffix(file, ".fleetinfo.json"):
		return strings.TrimSuffix(file, ".fleetinfo.json"), KindFleetInfo, true
	case strings.HasSuffix(file, ".json"):
		return strings.TrimSuffix(file, ".json"), KindJSON, true
	case strings.HasSuffix(file, ".csv"):
		return strings.TrimSuffix(file, ".csv"), KindCSV, true
	}
	return "", "", false
}
