package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/coord"
	"repro/internal/obs"
)

// FleetExecutor runs campaigns on a registered worker fleet: each
// Execute embeds one coord.Session — the same coordinator lifecycle
// cmd/lbcoord wraps — over a per-campaign journal directory, dispatches
// shard ranges to the workers pooled in Registry, and folds the fetched
// shard journals into the same byte-identical artifacts the local
// engine produces. Workers register once against the daemon
// (lbfarm -worker -coord http://daemon) and serve every campaign it
// admits.
//
// Durability matches the local path shape-for-shape: landed shard
// journals are the resume state (a drained campaign re-queues and its
// next session recovers them), and the per-campaign event log plus the
// end-of-run fleetinfo artifact carry the fault-tolerance story into
// the observability surface.
type FleetExecutor struct {
	// Registry is the daemon-lifetime worker pool (required).
	Registry *coord.Registry
	// Options carries the shared coordinator knobs (zero value: library
	// defaults).
	Options coord.Options
	// Dir is the root for per-campaign coordinator state: campaign id →
	// <Dir>/<id>.fleet/ holding shard journals and the event log
	// (required).
	Dir string
	// Logf receives the embedded coordinators' logs (nil = silent).
	Logf func(format string, args ...any)

	mu        sync.Mutex
	sessions  map[string]*coord.Session
	fleetinfo map[string][]byte
}

// NewFleetExecutor builds a FleetExecutor over an existing registry.
func NewFleetExecutor(reg *coord.Registry, opts coord.Options, dir string, logf func(format string, args ...any)) *FleetExecutor {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &FleetExecutor{
		Registry:  reg,
		Options:   opts,
		Dir:       dir,
		Logf:      logf,
		sessions:  map[string]*coord.Session{},
		fleetinfo: map[string][]byte{},
	}
}

// campaignDir is campaign id's coordinator state directory.
func (e *FleetExecutor) campaignDir(id string) string {
	return filepath.Join(e.Dir, id+".fleet")
}

// Execute implements Executor: one coordinator session per campaign,
// recovered shards reported through OnResume, landed shards fanned into
// Sink, a closed Stop drained into campaign.ErrInterrupted.
func (e *FleetExecutor) Execute(req ExecRequest) (*campaign.Result, error) {
	var resumed []campaign.TrialResult
	sess, err := coord.NewSession(coord.SessionConfig{
		Spec:       req.Spec,
		Options:    e.Options,
		JournalDir: e.campaignDir(req.ID),
		Registry:   e.Registry,
		OnShard: func(rng coord.Range, rows []campaign.TrialResult, recovered bool) {
			if recovered {
				// NewSession is still running: accumulate for OnResume.
				resumed = append(resumed, rows...)
				return
			}
			for _, r := range rows {
				// Sink only feeds counters and streams here — the shard
				// journal already made the rows durable.
				_ = req.Sink(r)
			}
		},
		Logf: req.Logf,
	})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.sessions[req.ID] = sess
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.sessions, req.ID)
		e.mu.Unlock()
		sess.Close()
	}()
	req.OnResume(resumed)

	// Bridge the daemon's drain channel into the coordinator's context.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-req.Stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	res, runErr := sess.Run(ctx)
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) {
			select {
			case <-req.Stop:
				// Drained: landed shards stay under the campaign dir for
				// the next session to recover — the fleet twin of the
				// local journal resume.
				return nil, campaign.ErrInterrupted
			default:
			}
		}
		return nil, runErr
	}

	// One last scrape of the surviving workers on a fresh context (the
	// run context may already be dead): the fleetinfo sidecar becomes an
	// extra artifact next to json/csv/runinfo.
	rpc := e.Options.RPCTimeout
	if rpc <= 0 {
		rpc = 5 * time.Second
	}
	fctx, fcancel := context.WithTimeout(context.Background(), rpc)
	fi := sess.FleetInfo(fctx)
	fcancel()
	if data, err := fi.JSON(); err == nil {
		e.mu.Lock()
		e.fleetinfo[req.ID] = data
		e.mu.Unlock()
	} else {
		req.Logf("campaign %s: rendering fleetinfo: %v", req.ID, err)
	}
	return res, nil
}

// Cleanup implements Executor: the landed shard journals are scratch
// once the artifacts are in the store. The event log deliberately stays
// — it is the campaign's fault-tolerance audit record, and it is what
// the chaos tests (and operators) read after the fact.
func (e *FleetExecutor) Cleanup(id string) error {
	e.mu.Lock()
	delete(e.fleetinfo, id)
	e.mu.Unlock()
	shards, err := filepath.Glob(filepath.Join(e.campaignDir(id), "*.shard*.jsonl"))
	if err != nil {
		return err
	}
	for _, p := range shards {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}

// ExtraArtifacts hands the daemon the fleetinfo document of a campaign
// that just finished, to land in the store alongside json/csv/runinfo.
func (e *FleetExecutor) ExtraArtifacts(id string) map[string][]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	data, ok := e.fleetinfo[id]
	if !ok {
		return nil
	}
	return map[string][]byte{KindFleetInfo: data}
}

// FleetStatus snapshots the embedded coordinator of a running campaign
// (nil when id is not executing on the fleet right now) — the
// CampaignStatus.Fleet block.
func (e *FleetExecutor) FleetStatus(id string) *api.CoordStatus {
	e.mu.Lock()
	sess := e.sessions[id]
	e.mu.Unlock()
	if sess == nil {
		return nil
	}
	st := sess.Status()
	return &st
}

// Routes mounts the worker registration passthrough on the daemon's
// mux: lbfarm -worker -coord http://daemon:8800 lands here.
func (e *FleetExecutor) Routes(mux *http.ServeMux) {
	e.Registry.Routes(mux)
}

// WriteMetrics appends the lbfleet_ families to the daemon's /metrics
// exposition: registry gauges plus the merged telemetry scraped from
// the workers of every campaign currently executing on the fleet.
func (e *FleetExecutor) WriteMetrics(w io.Writer) error {
	e.mu.Lock()
	sessions := make([]*coord.Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		sessions = append(sessions, s)
	}
	e.mu.Unlock()
	var snaps []*obs.Snapshot
	for _, s := range sessions {
		if snap := s.FleetSnapshot(); snap != nil {
			snaps = append(snaps, snap)
		}
	}
	var merged *obs.Snapshot
	if len(snaps) > 0 {
		merged = obs.MergeSnapshots(snaps...)
	}
	p := obs.NewPromWriter(w)
	p.Gauge("lbfleet_workers", "Workers registered with the daemon's fleet registry.", obs.Sample{Value: float64(e.Registry.Size())})
	p.Gauge("lbfleet_campaigns_running", "Campaigns currently executing on the fleet.", obs.Sample{Value: float64(len(sessions))})
	p.Snapshot("lbfleet_", merged)
	return p.Err()
}
