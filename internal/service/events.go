package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/api"
)

// subBuffer is each subscriber's event buffer. A subscriber that falls
// further behind loses events — trial events stream at engine rate and
// a stalled client must not stall the run — and detects the loss from
// the gap in Event.Seq. Progress and status events carry cumulative
// counters, so nothing is unrecoverable after a drop.
const subBuffer = 256

// sub is one SSE subscriber's channel.
type sub struct {
	ch chan api.Event
}

// hub fans campaign events out to SSE subscribers. Sequence numbers
// are per campaign, assigned under the hub lock, so every subscriber
// sees a gap-free (or detectably gapped) total order.
type hub struct {
	mu   sync.Mutex
	subs map[string]map[*sub]struct{}
	seq  map[string]int64
}

func newHub() *hub {
	return &hub{subs: map[string]map[*sub]struct{}{}, seq: map[string]int64{}}
}

// subscribe registers a listener on campaign id. cancel is idempotent
// and must be called when the consumer goes away.
func (h *hub) subscribe(id string) (<-chan api.Event, func()) {
	s := &sub{ch: make(chan api.Event, subBuffer)}
	h.mu.Lock()
	if h.subs[id] == nil {
		h.subs[id] = map[*sub]struct{}{}
	}
	h.subs[id][s] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs[id], s)
			h.mu.Unlock()
		})
	}
	return s.ch, cancel
}

// publish stamps ev with the campaign's next sequence number and
// offers it to every subscriber without blocking: a full subscriber
// buffer drops the event rather than backpressuring the engine.
func (h *hub) publish(id string, ev api.Event) {
	h.mu.Lock()
	h.seq[id]++
	ev.Seq = h.seq[id]
	for s := range h.subs[id] {
		select {
		case s.ch <- ev:
		default:
		}
	}
	h.mu.Unlock()
}

// serveSSE streams campaign events to one client as server-sent
// events: each api.Event travels as one `event: <type>` / `data:
// <json>` frame. The stream opens with a synthetic status event (the
// campaign's state right now, so a late subscriber is never blind),
// then follows the live feed until the campaign reaches a terminal
// state or the client disconnects.
func serveSSE(w http.ResponseWriter, r *http.Request, h *hub, id string, current func() api.CampaignStatus) {
	fl, ok := w.(http.Flusher)
	if !ok {
		api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "streaming unsupported")
		return
	}
	ch, cancel := h.subscribe(id)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev api.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	// Opening frame: where the campaign stands right now. Seq 0 marks
	// it as synthetic (live events count from 1).
	st := current()
	if !writeEvent(api.Event{Type: api.EventStatus, Status: &st}) {
		return
	}
	if st.State.Terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !writeEvent(ev) {
				return
			}
			if ev.Type == api.EventStatus && ev.Status != nil && ev.Status.State.Terminal() {
				return
			}
		}
	}
}
