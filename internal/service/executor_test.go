package service

// The Executor seam: the daemon's externally observable behavior —
// admission codes, SSE event ordering, cache hits, drain/re-queue —
// must be identical whichever executor runs the trials. These tests
// drive the daemon through a fakeExecutor alongside the default local
// path and pin the invariants on both.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
)

// fakeExecutor runs trials on an in-memory engine with no durable
// scratch — the minimal conforming Executor. It records its calls so
// tests can assert the daemon honored the contract.
type fakeExecutor struct {
	// block, when non-nil, makes Execute wait for Stop (then drain) —
	// the hook the drain test uses to catch a campaign mid-run.
	block bool

	mu       sync.Mutex
	executed []string
	cleaned  []string
}

func (f *fakeExecutor) Execute(req ExecRequest) (*campaign.Result, error) {
	f.mu.Lock()
	f.executed = append(f.executed, req.ID)
	f.mu.Unlock()
	req.OnResume(nil)
	if f.block {
		<-req.Stop
		return nil, campaign.ErrInterrupted
	}
	eng := &campaign.Engine{Workers: 2, Obs: req.Obs, Stop: req.Stop, Sink: req.Sink}
	return eng.Run(req.Spec)
}

func (f *fakeExecutor) Cleanup(id string) error {
	f.mu.Lock()
	f.cleaned = append(f.cleaned, id)
	f.mu.Unlock()
	return nil
}

// newDaemonWith is newDaemon with an explicit executor.
func newDaemonWith(t *testing.T, dir string, ex Executor) *Daemon {
	t.Helper()
	store, err := OpenFSStore(dir + "/data")
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Store:         store,
		JournalDir:    dir + "/journals",
		Workers:       2,
		ProgressEvery: 10 * time.Millisecond,
		Executor:      ex,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runCampaign submits spec to a not-yet-started daemon, subscribes to
// the event stream while the campaign is still queued (so the stream
// deterministically sees every transition), then starts the daemon and
// reads to completion. Returns the events and the JSON artifact.
func runCampaign(t *testing.T, d *Daemon, spec *campaign.Spec) ([]api.Event, []byte) {
	t.Helper()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	st, code := submit(t, srv, specBody(t, spec))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	d.Start()
	var evs []api.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("decoding SSE frame: %v\n%s", err, data)
		}
		evs = append(evs, ev)
		if ev.Type == api.EventStatus && ev.Status != nil && ev.Status.State.Terminal() {
			break
		}
	}
	if len(evs) == 0 || !evs[len(evs)-1].Status.State.Terminal() {
		t.Fatalf("stream ended without a terminal status: %v", sc.Err())
	}
	artifact, code := fetch(t, srv, evs[len(evs)-1].Status.Artifacts[KindJSON])
	if code != http.StatusOK {
		t.Fatalf("artifact fetch = %d", code)
	}
	return evs, artifact
}

// eventShape reduces an SSE stream to its order-stable skeleton: the
// status-state transitions and the terminal counts. Trial and progress
// events interleave nondeterministically (engine workers race), so the
// shape is what "identical across executors" means for the stream.
func eventShape(evs []api.Event) string {
	var b strings.Builder
	trials := 0
	for _, ev := range evs {
		switch ev.Type {
		case api.EventStatus:
			fmt.Fprintf(&b, "status:%s ", ev.Status.State)
		case api.EventTrial:
			trials++
		}
	}
	last := evs[len(evs)-1].Status
	fmt.Fprintf(&b, "trials:%d done:%d/%d", trials, last.Done, last.Total)
	return b.String()
}

// TestExecutorParity: the same campaign through the local executor and
// a fake one yields byte-identical artifacts, the same SSE shape, and
// the same cache-hit behavior on re-submission.
func TestExecutorParity(t *testing.T) {
	spec := testSpec(4)

	dLocal := newDaemon(t, t.TempDir(), Hooks{})
	defer dLocal.Close()
	evLocal, artLocal := runCampaign(t, dLocal, spec)

	fake := &fakeExecutor{}
	dFake := newDaemonWith(t, t.TempDir(), fake)
	defer dFake.Close()
	evFake, artFake := runCampaign(t, dFake, spec)

	if !bytes.Equal(artLocal, artFake) {
		t.Fatal("artifacts differ between executors")
	}
	if sl, sf := eventShape(evLocal), eventShape(evFake); sl != sf {
		t.Fatalf("SSE shape differs:\nlocal: %s\nfake:  %s", sl, sf)
	}

	// Cache-hit parity: both daemons answer the duplicate from cache
	// with zero further Execute calls.
	for name, d := range map[string]*Daemon{"local": dLocal, "fake": dFake} {
		srv := httptest.NewServer(d.Handler())
		st, code := submit(t, srv, specBody(t, spec))
		srv.Close()
		if code != http.StatusOK || !st.Cached {
			t.Errorf("%s: duplicate submit = %d cached=%v, want 200 cached", name, code, st.Cached)
		}
		if d.Stats().CacheHits != 1 {
			t.Errorf("%s: cache hits = %d, want 1", name, d.Stats().CacheHits)
		}
	}
	fake.mu.Lock()
	defer fake.mu.Unlock()
	if len(fake.executed) != 1 {
		t.Errorf("fake executor ran %d times, want 1", len(fake.executed))
	}
	if len(fake.cleaned) != 1 {
		t.Errorf("fake executor cleaned %d times, want 1 (after artifacts landed)", len(fake.cleaned))
	}
}

// TestExecutorDrainRequeues: an executor returning ErrInterrupted on
// drain leaves the campaign re-queued — exactly the local journal-drain
// behavior, whatever the executor.
func TestExecutorDrainRequeues(t *testing.T) {
	fake := &fakeExecutor{block: true}
	d := newDaemonWith(t, t.TempDir(), fake)
	d.Start()
	st, err := d.Submit(bytes.NewReader(specBody(t, testSpec(4))))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, d, st.ID, api.CampaignRunning)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Interrupted() != 1 {
		t.Fatalf("interrupted = %d, want 1", d.Interrupted())
	}
	if got, _ := d.Status(st.ID); got.State != api.CampaignQueued {
		t.Fatalf("state after drain = %s, want queued", got.State)
	}
}

// TestExecutorFailure: a failing executor lands the campaign in failed
// with the error on the status, and a re-submit re-queues it.
func TestExecutorFailure(t *testing.T) {
	d := newDaemonWith(t, t.TempDir(), failExecutor{})
	d.Start()
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	st, _ := submit(t, srv, specBody(t, testSpec(2)))
	fin := waitDone(t, srv, st.ID)
	if fin.State != api.CampaignFailed || !strings.Contains(fin.Error, "executor exploded") {
		t.Fatalf("final status = %s (%q)", fin.State, fin.Error)
	}
	if _, code := submit(t, srv, specBody(t, testSpec(2))); code != http.StatusAccepted {
		t.Fatalf("re-submit after failure = %d, want 202", code)
	}
}

type failExecutor struct{}

func (failExecutor) Execute(req ExecRequest) (*campaign.Result, error) {
	req.OnResume(nil)
	return nil, errors.New("executor exploded")
}
func (failExecutor) Cleanup(string) error { return nil }

// waitForState polls until campaign id reaches state.
func waitForState(t *testing.T, d *Daemon, id string, state api.CampaignState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := d.Status(id); ok && st.State == state {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %s", id, state)
}

// TestCapWorkers pins the oversubscription guard: -runs × -workers
// beyond GOMAXPROCS is capped (loudly) unless explicitly allowed, and
// the "use the machine" default divides the cores across the runners.
func TestCapWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	var logged []string
	logf := func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }

	// Single runner: never capped, never logged.
	logged = nil
	if got := capWorkers(3*procs, 1, false, logf); got != 3*procs {
		t.Errorf("runs=1: workers = %d, want %d (uncapped)", got, 3*procs)
	}
	if len(logged) != 0 {
		t.Errorf("runs=1 logged: %v", logged)
	}

	// Default workers with concurrent runs: cores divided across runners.
	logged = nil
	want := procs / 2
	if want < 1 {
		want = 1
	}
	if got := capWorkers(0, 2, false, logf); got != want {
		t.Errorf("workers=0 runs=2: got %d, want %d", got, want)
	}

	// Explicit oversubscription: capped with a loud warning...
	logged = nil
	if got := capWorkers(procs, 2, false, logf); got != want {
		t.Errorf("capped workers = %d, want %d", got, want)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "WARNING") {
		t.Errorf("cap not logged loudly: %v", logged)
	}

	// ...unless allowed — still loud.
	logged = nil
	if got := capWorkers(procs, 2, true, logf); got != procs {
		t.Errorf("allowed workers = %d, want %d", got, procs)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "WARNING") {
		t.Errorf("allowed oversubscription not logged loudly: %v", logged)
	}
}
