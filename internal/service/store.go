// Package service is the lbfarmd campaign daemon: sweeps as a
// long-lived service instead of one-shot CLI invocations. Clients
// submit campaign specs over the versioned wire API (internal/api),
// the daemon queues and executes them on the deterministic engine with
// journal-backed durability, streams progress over SSE, and serves
// finished artifacts from a content-addressed cache keyed by spec
// hash — determinism makes the cache exact: an identical re-submission
// returns the first run's bytes with zero trials re-executed.
package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

// Artifact kinds in the content-addressed cache. Kind names are the
// map keys of api.CampaignStatus.Artifacts and the file suffixes under
// /v1/artifacts/.
const (
	KindJSON    = "json"
	KindCSV     = "csv"
	KindRunInfo = "runinfo"
	// KindFleetInfo is the merged fleet telemetry document of a
	// fleet-executed campaign (absent on local runs).
	KindFleetInfo = "fleetinfo"
)

// artifactFile maps an artifact kind to its filename for hash.
func artifactFile(hash, kind string) (string, error) {
	switch kind {
	case KindJSON:
		return hash + ".json", nil
	case KindCSV:
		return hash + ".csv", nil
	case KindRunInfo:
		return hash + ".runinfo.json", nil
	case KindFleetInfo:
		return hash + ".fleetinfo.json", nil
	}
	return "", fmt.Errorf("service: unknown artifact kind %q", kind)
}

// Record is the durable per-campaign state the daemon persists on
// every transition. It is what survives a daemon crash: on restart,
// non-terminal records re-enter the queue and resume from their
// journals. The submitted spec rides along verbatim so the resume does
// not depend on the client re-sending it.
type Record struct {
	ID          string            `json:"id"`
	Name        string            `json:"name"`
	State       api.CampaignState `json:"state"`
	Error       string            `json:"error,omitempty"`
	SubmittedAt time.Time         `json:"submitted_at"`
	StartedAt   *time.Time        `json:"started_at,omitempty"`
	FinishedAt  *time.Time        `json:"finished_at,omitempty"`
	Spec        json.RawMessage   `json:"spec"`
}

// Store is the daemon's durable state: campaign records and the
// content-addressed artifact cache. The filesystem implementation
// below is the only one today; the interface is deliberately small and
// batch-oriented (PutArtifacts lands a campaign's whole artifact set,
// Records loads everything once at startup) so an S3/Postgres
// implementation stays honest — no per-byte seeks, no filesystem
// idioms. Trial journals are NOT behind this interface: they are
// node-local crash-recovery scratch (resume only ever happens on the
// node that wrote them), so they stay a plain directory in the
// daemon's config.
type Store interface {
	// PutRecord durably upserts one campaign record.
	PutRecord(rec Record) error
	// Records returns every stored record, in no particular order.
	Records() ([]Record, error)

	// PutArtifacts lands the complete artifact set for hash — all kinds
	// in one call, visible atomically: HasArtifacts never observes a
	// partial set.
	PutArtifacts(hash string, files map[string][]byte) error
	// GetArtifact returns one cached artifact, or os.ErrNotExist.
	GetArtifact(hash, kind string) ([]byte, error)
	// HasArtifacts reports whether the complete artifact set for hash
	// is cached.
	HasArtifacts(hash string) bool
	// ArtifactKinds returns the kinds of hash's cached set (nil when
	// not cached) — what lets a status report link exactly the
	// artifacts that exist, executor extras included.
	ArtifactKinds(hash string) []string
}

// FSStore is the filesystem Store: records under <dir>/campaigns, the
// artifact cache under <dir>/artifacts, with an in-memory index (which
// hashes hold complete artifact sets, the live record map) rebuilt at
// Open so the request path never stats the disk.
type FSStore struct {
	dir string

	mu      sync.Mutex
	records map[string]Record
	cached  map[string][]string // hash → kinds of a complete set
}

// OpenFSStore opens (creating if needed) the store rooted at dir and
// rebuilds the in-memory index from what is on disk.
func OpenFSStore(dir string) (*FSStore, error) {
	s := &FSStore{
		dir:     dir,
		records: map[string]Record{},
		cached:  map[string][]string{},
	}
	for _, sub := range []string{s.campaignDir(), s.artifactDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
	}
	ents, err := os.ReadDir(s.campaignDir())
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.campaignDir(), e.Name()))
		if err != nil {
			return nil, err
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("service: corrupt campaign record %s: %w", e.Name(), err)
		}
		s.records[rec.ID] = rec
	}
	// A hash is cached only when its complete marker set is present:
	// PutArtifacts writes the files first and the marker last, so a
	// crash mid-put leaves an incomplete set that is simply re-run.
	ents, err = os.ReadDir(s.artifactDir())
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if hash, ok := strings.CutSuffix(e.Name(), ".ok"); ok {
			kinds, err := s.verifySet(hash)
			if err != nil {
				return nil, err
			}
			s.cached[hash] = kinds
		}
	}
	return s, nil
}

func (s *FSStore) campaignDir() string { return filepath.Join(s.dir, "campaigns") }
func (s *FSStore) artifactDir() string { return filepath.Join(s.dir, "artifacts") }

// verifySet confirms every kind named by the .ok marker exists and
// returns the kind list.
func (s *FSStore) verifySet(hash string) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(s.artifactDir(), hash+".ok"))
	if err != nil {
		return nil, err
	}
	kinds := strings.Fields(string(data))
	for _, kind := range kinds {
		name, err := artifactFile(hash, kind)
		if err != nil {
			return nil, err
		}
		if _, err := os.Stat(filepath.Join(s.artifactDir(), name)); err != nil {
			return nil, fmt.Errorf("service: artifact set %s marked complete but %s is missing", hash, name)
		}
	}
	return kinds, nil
}

// PutRecord implements Store: atomic write-then-rename, then index.
func (s *FSStore) PutRecord(rec Record) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(s.campaignDir(), rec.ID+".json")
	if err := writeAtomic(path, data); err != nil {
		return err
	}
	s.mu.Lock()
	s.records[rec.ID] = rec
	s.mu.Unlock()
	return nil
}

// Records implements Store.
func (s *FSStore) Records() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.records))
	for _, rec := range s.records {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SubmittedAt.Before(out[j].SubmittedAt) })
	return out, nil
}

// PutArtifacts implements Store: every file lands via write-then-
// rename, and the .ok marker — the visibility bit the index trusts —
// goes last, after an fsync barrier on the files, so a crash at any
// point leaves either a complete, visible set or an invisible partial
// one.
func (s *FSStore) PutArtifacts(hash string, files map[string][]byte) error {
	if len(files) == 0 {
		return fmt.Errorf("service: empty artifact set for %s", hash)
	}
	kinds := make([]string, 0, len(files))
	for kind, data := range files {
		name, err := artifactFile(hash, kind)
		if err != nil {
			return err
		}
		if err := writeAtomic(filepath.Join(s.artifactDir(), name), data); err != nil {
			return err
		}
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	if err := writeAtomic(filepath.Join(s.artifactDir(), hash+".ok"), []byte(strings.Join(kinds, " ")+"\n")); err != nil {
		return err
	}
	s.mu.Lock()
	s.cached[hash] = kinds
	s.mu.Unlock()
	return nil
}

// GetArtifact implements Store.
func (s *FSStore) GetArtifact(hash, kind string) ([]byte, error) {
	s.mu.Lock()
	_, ok := s.cached[hash]
	s.mu.Unlock()
	if !ok {
		return nil, os.ErrNotExist
	}
	name, err := artifactFile(hash, kind)
	if err != nil {
		return nil, os.ErrNotExist
	}
	return os.ReadFile(filepath.Join(s.artifactDir(), name))
}

// HasArtifacts implements Store.
func (s *FSStore) HasArtifacts(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.cached[hash]
	return ok
}

// ArtifactKinds implements Store.
func (s *FSStore) ArtifactKinds(hash string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	kinds, ok := s.cached[hash]
	if !ok {
		return nil
	}
	out := make([]string, len(kinds))
	copy(out, kinds)
	return out
}

// writeAtomic writes data to path through a same-directory temp file,
// fsync, and rename — the usual crash-safe publish.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
