package service

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/campaign"
	"repro/internal/journal"
	"repro/internal/obs"
)

// ExecRequest is one campaign execution order from the daemon to its
// Executor. The daemon owns admission, state transitions, SSE, and
// artifact rendering; the executor owns how trials actually run and
// where their durable scratch lives.
type ExecRequest struct {
	// ID is the campaign's spec hash — the name of its durable scratch.
	ID string
	// Spec is the normalised campaign to run.
	Spec *campaign.Spec
	// OnResume is called exactly once, before live execution starts,
	// with every trial row recovered from the executor's durable scratch
	// (the local journal replay, or shard journals a previous fleet run
	// already landed). May be empty, never nil.
	OnResume func(done []campaign.TrialResult)
	// Sink receives every live trial row once it is durable in the
	// executor's scratch. Calls are serialised by the executor.
	Sink func(r campaign.TrialResult) error
	// Obs is the campaign's local telemetry set (fleet telemetry is
	// scraped worker-side and surfaced separately).
	Obs *obs.Set
	// Stop, when closed, drains the run: the executor stops issuing
	// work, syncs its scratch, and returns campaign.ErrInterrupted.
	Stop <-chan struct{}
	// Logf receives the executor's event log (never nil).
	Logf func(format string, args ...any)
}

// Executor runs admitted campaigns. Implementations must return
// campaign.ErrInterrupted when Stop drained the run with the scratch
// synced (the daemon then re-queues instead of failing), a result whose
// artifacts are byte-identical across executors otherwise.
type Executor interface {
	Execute(req ExecRequest) (*campaign.Result, error)
	// Cleanup removes campaign id's durable scratch once its artifacts
	// are safely in the store.
	Cleanup(id string) error
}

// LocalExecutor is the in-process engine path: one resumable journal
// per campaign under Dir, the deterministic worker-pool engine on top.
// This is the daemon's default executor.
type LocalExecutor struct {
	// Dir holds the per-campaign trial journals (required).
	Dir string
	// Workers is the engine pool size per campaign (≤ 0 = GOMAXPROCS).
	Workers int
}

// journalPath is where campaign id journals while running.
func (e *LocalExecutor) journalPath(id string) string {
	return filepath.Join(e.Dir, id+".jsonl")
}

// Execute implements Executor: resume the campaign's journal if a
// previous daemon left one, create it otherwise, and run the engine
// with the sink writing through the journal before fanning out.
func (e *LocalExecutor) Execute(req ExecRequest) (*campaign.Result, error) {
	hdr, err := journal.NewHeader(req.Spec, 0, 1)
	if err != nil {
		return nil, err
	}
	path := e.journalPath(req.ID)
	var (
		w    *journal.Writer
		done []campaign.TrialResult
	)
	if _, serr := os.Stat(path); serr == nil {
		w, done, err = journal.Resume(path, hdr)
	} else {
		w, err = journal.Create(path, hdr)
	}
	if err != nil {
		return nil, err
	}
	w.Obs = req.Obs.Aux()
	req.OnResume(done)

	eng := &campaign.Engine{
		Workers: e.Workers,
		Done:    done,
		Obs:     req.Obs,
		Stop:    req.Stop,
		Sink: func(r campaign.TrialResult) error {
			if err := w.Append(r); err != nil {
				return err
			}
			return req.Sink(r)
		},
	}
	res, runErr := eng.Run(req.Spec)
	if runErr != nil {
		// Drain or failure: sync what we have — the journal is the
		// resumable artifact either way.
		if cerr := w.Close(); cerr != nil && errors.Is(runErr, campaign.ErrInterrupted) {
			return nil, cerr
		}
		return nil, runErr
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// Cleanup implements Executor: the merged journal is scratch once the
// artifacts landed.
func (e *LocalExecutor) Cleanup(id string) error {
	if err := os.Remove(e.journalPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// capWorkers resolves the per-campaign engine pool so that runs
// concurrent campaigns cannot oversubscribe the host: each engine
// worker is CPU-bound, so MaxRuns × Workers beyond GOMAXPROCS only
// adds scheduler thrash. With workers ≤ 0 (the "use the machine"
// default) the cores are divided across the runners; an explicit
// oversubscribing request is capped unless allow is set, and either
// way the decision is logged loudly.
func capWorkers(workers, runs int, allow bool, logf func(format string, args ...any)) int {
	procs := runtime.GOMAXPROCS(0)
	if workers <= 0 {
		workers = procs
	}
	if runs <= 1 || workers*runs <= procs {
		return workers
	}
	if allow {
		logf("WARNING: %d concurrent runs × %d engine workers = %d CPU-bound workers on %d cores — oversubscription allowed by config",
			runs, workers, workers*runs, procs)
		return workers
	}
	capped := procs / runs
	if capped < 1 {
		capped = 1
	}
	logf("WARNING: %d concurrent runs × %d engine workers would oversubscribe %d cores; capping each campaign to %d workers (-oversubscribe overrides)",
		runs, workers, procs, capped)
	return capped
}
