package service

// The fleet executor end to end: a daemon dispatching submitted
// campaigns to a registered worker pool must survive a worker killed
// mid-run, serve artifacts byte-identical to the local engine path,
// land the fleetinfo document in the cache, keep an event-log audit
// trail of the fault, and drain/resume exactly like the local path.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/coord"
	"repro/internal/obs"
)

// fleetSpec is a multi-cell sweep big enough to shard meaningfully:
// 4 cells × 6 seeds = 24 trials over 4 splits.
func fleetSpec() *campaign.Spec {
	return &campaign.Spec{
		Name:        "svc-fleet",
		Seeds:       6,
		Tasks:       []int{12},
		Utilization: []float64{1.5},
		Procs:       []int{2, 3},
		Policies:    []string{"lexicographic", "memory-only"},
	}
}

// fleetOpts is the chaos tests' fast-twitch knob set as coord.Options.
func fleetOpts() coord.Options {
	o := coord.DefaultOptions()
	o.Splits = 4
	o.Liveness = 300 * time.Millisecond
	o.Poll = 20 * time.Millisecond
	o.BackoffBase = 10 * time.Millisecond
	o.BackoffMax = 50 * time.Millisecond
	o.MaxAttempts = 8
	o.NoSpeculate = true
	o.ScrapeInterval = 50 * time.Millisecond
	return o
}

// addWorker registers a real HTTP worker with the registry.
func addWorker(t *testing.T, reg *coord.Registry, id string, hooks coord.Hooks) {
	t.Helper()
	ws, err := coord.NewWorkerServer(coord.WorkerConfig{
		ID: id, Dir: t.TempDir(), Workers: 2, Obs: obs.NewSet(2), Hooks: hooks,
		Logf: func(format string, args ...any) { t.Logf("worker %s: "+format, append([]any{id}, args...)...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(ws.Handler())
	t.Cleanup(hs.Close)
	reg.Register(id, hs.URL)
}

// newFleetDaemon builds (but does not Start) a daemon executing on reg.
func newFleetDaemon(t *testing.T, dir string, reg *coord.Registry, hooks Hooks) *Daemon {
	t.Helper()
	store, err := OpenFSStore(filepath.Join(dir, "data"))
	if err != nil {
		t.Fatal(err)
	}
	journals := filepath.Join(dir, "journals")
	d, err := New(Config{
		Store:         store,
		JournalDir:    journals,
		ProgressEvery: 10 * time.Millisecond,
		Executor:      NewFleetExecutor(reg, fleetOpts(), journals, t.Logf),
		Logf:          t.Logf,
		Hooks:         hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFleetEndToEnd is the acceptance hinge: a campaign submitted to a
// fleet daemon with three workers — one SIGKILLed mid-range — completes
// with artifacts byte-identical to the local engine, a fleetinfo
// artifact, a live fleet status block while running, lbfleet_ metric
// families, and an event log recording dispatch → worker_dead → requeue
// for the orphaned range.
func TestFleetEndToEnd(t *testing.T) {
	reg := coord.NewRegistry(nil, t.Logf)
	slow := func(campaign.TrialResult) { time.Sleep(2 * time.Millisecond) }
	addWorker(t, reg, "w1", coord.Hooks{SinkDelay: slow})
	addWorker(t, reg, "w2", coord.Hooks{KillAfter: 2, SinkDelay: slow})
	addWorker(t, reg, "w3", coord.Hooks{SinkDelay: slow})

	dir := t.TempDir()
	d := newFleetDaemon(t, dir, reg, Hooks{})
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	d.Start()

	st, code := submit(t, srv, specBody(t, fleetSpec()))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}

	// While running, the status report carries the embedded
	// coordinator's control plane: lease table, worker pool, counters.
	var sawFleet bool
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		cur, ok := d.Status(st.ID)
		if !ok {
			t.Fatal("campaign vanished")
		}
		if cur.State.Terminal() {
			break
		}
		if cur.State == api.CampaignRunning && cur.Fleet != nil {
			sawFleet = true
			if cur.Fleet.Splits != 4 || len(cur.Fleet.Leases) != 4 {
				t.Errorf("fleet block: splits=%d leases=%d, want 4/4", cur.Fleet.Splits, len(cur.Fleet.Leases))
			}
			// Mid-run /metrics carries the fleet families.
			data, _ := fetch(t, srv, "/metrics")
			for _, family := range []string{"lbfleet_workers", "lbfleet_campaigns_running"} {
				if !bytes.Contains(data, []byte("# TYPE "+family+" ")) {
					t.Errorf("missing /metrics family %s while running", family)
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawFleet {
		t.Error("never observed the fleet status block while running")
	}

	fin := waitDone(t, srv, st.ID)
	if fin.State != api.CampaignDone {
		t.Fatalf("final state = %s (%s)", fin.State, fin.Error)
	}
	if fin.Fleet != nil {
		t.Error("finished campaign still reports a fleet block")
	}

	// Byte-identity against the local engine.
	gotJSON, code := fetch(t, srv, fin.Artifacts[KindJSON])
	if code != http.StatusOK {
		t.Fatalf("artifact fetch = %d", code)
	}
	res, err := (&campaign.Engine{Workers: 4}).Run(fleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("fleet artifact differs from the local engine run")
	}

	// The fleetinfo document landed as a fourth artifact.
	fiPath, ok := fin.Artifacts[KindFleetInfo]
	if !ok {
		t.Fatalf("no fleetinfo artifact in %v", fin.Artifacts)
	}
	fi, code := fetch(t, srv, fiPath)
	if code != http.StatusOK || !bytes.Contains(fi, []byte(`"workers"`)) {
		t.Fatalf("fleetinfo fetch = %d: %s", code, fi)
	}

	// The fault is on the record: the campaign's event log names the
	// dead worker and shows its range re-queued and finally landed.
	elog := filepath.Join(dir, "journals", st.ID+".fleet", "svc-fleet"+coord.EventLogSuffix)
	hdr, events, err := coord.ReadEventLog(elog)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.ValidateEvents(hdr, events); err != nil {
		t.Fatal(err)
	}
	killed := -1
	for _, ev := range events {
		if ev.Type == coord.EvWorkerDead && ev.Range != nil {
			killed = ev.Range.Index
		}
	}
	if killed < 0 {
		t.Fatal("no worker_dead event with a leased range in the log")
	}
	history := coord.RangeHistory(events, killed)
	var shape []coord.EventType
	for _, ev := range history {
		switch ev.Type {
		case coord.EvDispatch, coord.EvWorkerDead, coord.EvRequeue, coord.EvShardLanded:
			shape = append(shape, ev.Type)
		}
	}
	want := []coord.EventType{coord.EvDispatch, coord.EvWorkerDead, coord.EvRequeue}
	for i, w := range want {
		if i >= len(shape) || shape[i] != w {
			t.Fatalf("range %d history = %v, want prefix %v", killed, shape, want)
		}
	}
	if shape[len(shape)-1] != coord.EvShardLanded {
		t.Errorf("range %d history = %v, want it to end shard_landed", killed, shape)
	}
	if events[len(events)-1].Type != coord.EvMerged {
		t.Errorf("last event = %s, want merged", events[len(events)-1].Type)
	}

	// Cache-hit parity with the local path: the duplicate answers from
	// the cache with zero dispatches.
	dispatches := 0
	for _, ev := range events {
		if ev.Type == coord.EvDispatch {
			dispatches++
		}
	}
	st2, code := submit(t, srv, specBody(t, fleetSpec()))
	if code != http.StatusOK || !st2.Cached {
		t.Fatalf("duplicate submit = %d cached=%v, want 200 cached", code, st2.Cached)
	}
	if _, events2, err := coord.ReadEventLog(elog); err != nil {
		t.Fatal(err)
	} else {
		got := 0
		for _, ev := range events2 {
			if ev.Type == coord.EvDispatch {
				got++
			}
		}
		if got != dispatches {
			t.Fatalf("duplicate submit dispatched ranges: %d → %d", dispatches, got)
		}
	}
}

// TestFleetDrainResume pins the fleet twin of the local journal resume:
// a daemon drained mid-campaign re-queues it, and the next daemon's
// session recovers the landed shard journals, re-runs only the missing
// ranges, and finishes byte-identical. trialsExecuted counts only
// durable (landed) rows, so the two daemons' counts partition the sweep
// exactly — the same invariant the local restart test pins.
func TestFleetDrainResume(t *testing.T) {
	reg := coord.NewRegistry(nil, t.Logf)
	slow := func(campaign.TrialResult) { time.Sleep(5 * time.Millisecond) }
	addWorker(t, reg, "w1", coord.Hooks{SinkDelay: slow})
	addWorker(t, reg, "w2", coord.Hooks{SinkDelay: slow})

	dir := t.TempDir()
	var once sync.Once
	reached := make(chan struct{})
	d1 := newFleetDaemon(t, dir, reg, Hooks{SinkTick: func(id string, done int) {
		if done >= 6 {
			once.Do(func() { close(reached) })
		}
	}})
	d1.Start()
	st, err := d1.Submit(bytes.NewReader(specBody(t, fleetSpec())))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-reached:
	case <-time.After(60 * time.Second):
		t.Fatal("never reached 6 landed trials")
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	if d1.Interrupted() != 1 {
		t.Fatalf("interrupted = %d, want 1", d1.Interrupted())
	}
	if got, _ := d1.Status(st.ID); got.State != api.CampaignQueued {
		t.Fatalf("state after drain = %s, want queued", got.State)
	}
	ran1 := d1.Stats().TrialsExecuted
	if ran1 < 6 || ran1 >= 24 {
		t.Fatalf("first daemon landed %d of 24 trials", ran1)
	}

	d2 := newFleetDaemon(t, dir, reg, Hooks{})
	defer d2.Close()
	srv := httptest.NewServer(d2.Handler())
	defer srv.Close()
	d2.Start()
	fin := waitDone(t, srv, st.ID)
	if fin.State != api.CampaignDone {
		t.Fatalf("final state = %s (%s)", fin.State, fin.Error)
	}
	ran2 := d2.Stats().TrialsExecuted
	if ran1+ran2 != 24 {
		t.Fatalf("landed %d + %d trials, want 24 total (recovered shards must not re-run)", ran1, ran2)
	}

	gotJSON, code := fetch(t, srv, fin.Artifacts[KindJSON])
	if code != http.StatusOK {
		t.Fatalf("artifact fetch = %d", code)
	}
	res, err := (&campaign.Engine{Workers: 4}).Run(fleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("resumed fleet artifact differs from an uninterrupted local run")
	}

	// The extended event log shows the recovery.
	elog := filepath.Join(dir, "journals", st.ID+".fleet", "svc-fleet"+coord.EventLogSuffix)
	_, events, err := coord.ReadEventLog(elog)
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for _, ev := range events {
		if ev.Type == coord.EvShardRecovered {
			recovered++
		}
	}
	if recovered < 1 {
		t.Error("no shard_recovered events after the resume")
	}
}
