package sim

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/sched"
)

// fig1Schedule builds the paper's figure 1 scenario: producer a (period
// T=3) on P1, consumer b (period n·3) on P2, b depends on a, C=1. The
// consumer needs all n data of the hyper-period before it runs; none of
// the n buffers can be reused among themselves.
func fig1Schedule(t *testing.T, n model.Time) *sched.InstSchedule {
	t.Helper()
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 1)
	b := ts.MustAddTask("b", 3*n, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	ar := arch.MustNew(2, 1)
	s := sched.MustNewSchedule(ts, ar)
	s.MustPlace(a, 0, 0)
	// b must wait for the last instance of a: ends at 3(n−1)+1, +C.
	s.MustPlace(b, 1, 3*(n-1)+2)
	if errs := s.Validate(); len(errs) > 0 {
		t.Fatalf("fig1 schedule invalid: %v", errs)
	}
	return sched.FromSchedule(s)
}

func TestFig1BufferGrowsLinearly(t *testing.T) {
	for n := model.Time(1); n <= 8; n++ {
		rep, err := (&Runner{}).Run(fig1Schedule(t, n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// All n data must be resident on P2 simultaneously right before b
		// executes: the peak is exactly n (figure 1's point).
		if got := rep.Procs[1].BufferPeak; got != model.Mem(n) {
			t.Errorf("n=%d: consumer buffer peak = %d, want %d", n, got, n)
		}
		if rep.Procs[0].BufferPeak != 0 {
			t.Errorf("n=%d: producer side should need no receive buffer", n)
		}
	}
}

func TestBufferScalesWithDataSize(t *testing.T) {
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 1)
	b := ts.MustAddTask("b", 12, 1, 1)
	ts.MustAddDependence(a, b, 5) // each datum is 5 units
	ts.MustFreeze()
	ar := arch.MustNew(2, 1)
	s := sched.MustNewSchedule(ts, ar)
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 1, 11)
	rep, err := (&Runner{}).Run(sched.FromSchedule(s))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Procs[1].BufferPeak; got != 20 { // 4 instances × 5
		t.Errorf("buffer peak = %d, want 20", got)
	}
}

func TestCoLocationNeedsNoBuffer(t *testing.T) {
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 1)
	b := ts.MustAddTask("b", 12, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	ar := arch.MustNew(1, 1)
	s := sched.MustNewSchedule(ts, ar)
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 0, 10)
	rep, err := (&Runner{}).Run(sched.FromSchedule(s))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs[0].BufferPeak != 0 {
		t.Errorf("co-located transfer buffered: peak %d", rep.Procs[0].BufferPeak)
	}
}

func TestRunRejectsLateArrival(t *testing.T) {
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 6, 1, 1)
	b := ts.MustAddTask("b", 6, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	ar := arch.MustNew(2, 3)
	is := sched.NewInstSchedule(ts, ar)
	is.Place(model.InstanceID{Task: a, K: 0}, 0, 0)
	is.Place(model.InstanceID{Task: b, K: 0}, 1, 2) // needs 1+3 = 4
	_, err := (&Runner{}).Run(is)
	if err == nil || !strings.Contains(err.Error(), "before its input") {
		t.Fatalf("late arrival not rejected: %v", err)
	}
}

func TestIdleRatioAndBusy(t *testing.T) {
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 4, 2, 1)
	ts.MustFreeze()
	ar := arch.MustNew(2, 1)
	s := sched.MustNewSchedule(ts, ar)
	s.MustPlace(a, 0, 0) // busy [0,2): makespan 2... instances: H=4/4=1
	rep, err := (&Runner{}).Run(sched.FromSchedule(s))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs[0].Busy != 2 || rep.Procs[0].Instances != 1 {
		t.Errorf("P1 busy=%d instances=%d, want 2, 1", rep.Procs[0].Busy, rep.Procs[0].Instances)
	}
	// P2 fully idle, P1 fully busy over horizon 2 → mean idle 0.5.
	if rep.IdleRatio != 0.5 {
		t.Errorf("idle ratio = %v, want 0.5", rep.IdleRatio)
	}
}

func TestEventLogOrdered(t *testing.T) {
	rep, err := (&Runner{LogEvents: true}).Run(fig1Schedule(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) == 0 {
		t.Fatal("no events logged")
	}
	for i := 1; i < len(rep.Events); i++ {
		if rep.Events[i-1].Time > rep.Events[i].Time {
			t.Fatalf("events out of order at %d", i)
		}
	}
	kinds := map[string]int{}
	for _, e := range rep.Events {
		kinds[e.Kind]++
	}
	// 4 a-instances: 4 starts+4 ends; 1 b: 1+1; 4 transfers: 4 send+4 recv.
	if kinds["start"] != 5 || kinds["end"] != 5 || kinds["send"] != 4 || kinds["recv"] != 4 {
		t.Errorf("event kinds = %v", kinds)
	}
}

func TestResidentAndTotalDemand(t *testing.T) {
	rep, err := (&Runner{}).Run(fig1Schedule(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	// P1 holds 4 instances of a (mem 1 each); P2 one instance of b plus a
	// 4-datum buffer peak.
	if rep.Procs[0].ResidentMem != 4 {
		t.Errorf("P1 resident = %d, want 4", rep.Procs[0].ResidentMem)
	}
	if rep.Procs[1].TotalDemand != 1+4 {
		t.Errorf("P2 total demand = %d, want 5", rep.Procs[1].TotalDemand)
	}
}
