package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/sched"
)

func TestReuseCannotBeatMultiRateCoexistence(t *testing.T) {
	// Figure 1's point, co-located: all n producer buffers must coexist
	// until the slow consumer runs, so even a perfectly reusing allocator
	// needs the paper's full amount. n = 4, a (m=1) and b (m=1) on one
	// processor: 4 live a-buffers + b's own = 5 = the paper accounting.
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 3, 1, 1)
	b := ts.MustAddTask("b", 12, 1, 1)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	s := sched.MustNewSchedule(ts, arch.MustNew(1, 0))
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 0, 10)
	rep := MinMemoryWithReuse(sched.FromSchedule(s))
	if rep.Reuse[0] != rep.Paper[0] {
		t.Errorf("co-located fig.1: reuse %d, paper %d — multi-rate coexistence should make them equal",
			rep.Reuse[0], rep.Paper[0])
	}
	if rep.Savings() != 0 {
		t.Errorf("savings = %v, want 0: reuse cannot help here", rep.Savings())
	}
}

func TestReuseProducerSideShipsDataAway(t *testing.T) {
	// Figure 1 cross-processor: the producer's buffers leave with each
	// transfer, so the producer side reuses one slot; the coexistence
	// cost moves to the consumer's receive buffer (Runner.BufferPeak).
	is := fig1Schedule(t, 4)
	rep := MinMemoryWithReuse(is)
	if rep.Reuse[0] != 1 {
		t.Errorf("producer-side reuse peak = %d, want 1 (each datum ships before the next)", rep.Reuse[0])
	}
	run, err := (&Runner{}).Run(is)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse-aware total demand on the consumer side: local tasks (1) +
	// the 4-datum receive buffer = 5 — no lower than the paper's total.
	total := rep.Reuse[1] + run.Procs[1].BufferPeak
	paper := rep.Paper[1] + run.Procs[1].BufferPeak
	if total != 5 || paper != 5 {
		t.Errorf("consumer-side demand: reuse-aware %d, paper %d, want both 5", total, paper)
	}
}

func TestReuseSavesOnDisjointLifetimes(t *testing.T) {
	// Two independent tasks sharing a processor back-to-back: their
	// buffers never coexist (no consumers), so the reuse peak is the max,
	// not the sum.
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 12, 2, 5)
	b := ts.MustAddTask("b", 12, 2, 3)
	ts.MustFreeze()
	s := sched.MustNewSchedule(ts, arch.MustNew(1, 0))
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 0, 2)
	rep := MinMemoryWithReuse(sched.FromSchedule(s))
	if rep.Paper[0] != 8 {
		t.Fatalf("paper accounting = %d, want 8", rep.Paper[0])
	}
	if rep.Reuse[0] != 5 {
		t.Errorf("reuse accounting = %d, want 5 (max of disjoint lifetimes)", rep.Reuse[0])
	}
	if s := rep.Savings(); s <= 0 {
		t.Errorf("savings = %v, want > 0", s)
	}
}

func TestReuseRespectsConsumerExtension(t *testing.T) {
	// a feeds b on the same processor with a gap: a's buffer stays live
	// until b completes, overlapping b's own buffer.
	ts := model.NewTaskSet()
	a := ts.MustAddTask("a", 12, 1, 4)
	b := ts.MustAddTask("b", 12, 1, 2)
	ts.MustAddDependence(a, b, 1)
	ts.MustFreeze()
	s := sched.MustNewSchedule(ts, arch.MustNew(1, 0))
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 0, 5)
	rep := MinMemoryWithReuse(sched.FromSchedule(s))
	// a's data lives [0, b.end=6); b lives [5,6): both live at t=5 → 6.
	if rep.Reuse[0] != 6 {
		t.Errorf("reuse peak = %d, want 6 (producer buffer held for its consumer)", rep.Reuse[0])
	}
}

func TestReuseNeverExceedsPaper(t *testing.T) {
	for n := model.Time(1); n <= 6; n++ {
		rep := MinMemoryWithReuse(fig1Schedule(t, n))
		for p := range rep.Paper {
			if rep.Reuse[p] > rep.Paper[p] {
				t.Errorf("n=%d P%d: reuse %d exceeds paper accounting %d", n, p+1, rep.Reuse[p], rep.Paper[p])
			}
		}
	}
}

// TestSavingsDisambiguation pins the two meanings Savings' bare zero
// conflates and SavingsOK separates: "nothing to compare" (ΣPaper==0,
// ok=false) versus "a measured zero" (ΣPaper==ΣReuse>0, ok=true). The
// reuse analyzer's savings_defined column builds directly on this.
func TestSavingsDisambiguation(t *testing.T) {
	// ΣPaper == 0: the fraction is undefined; 0 is a convention.
	undefined := &MemReuseReport{Paper: []model.Mem{0, 0}, Reuse: []model.Mem{0, 0}}
	if s, ok := undefined.SavingsOK(); s != 0 || ok {
		t.Fatalf("SavingsOK with ΣPaper=0 = (%v, %v), want (0, false)", s, ok)
	}
	if s := undefined.Savings(); s != 0 {
		t.Fatalf("Savings with ΣPaper=0 = %v, want the documented 0 convention", s)
	}

	// Genuinely no savings: a real measurement of zero.
	zero := &MemReuseReport{Paper: []model.Mem{3, 2}, Reuse: []model.Mem{3, 2}}
	if s, ok := zero.SavingsOK(); s != 0 || !ok {
		t.Fatalf("SavingsOK with ΣPaper=ΣReuse = (%v, %v), want (0, true)", s, ok)
	}

	// And a real saving for contrast: 1 − 6/8.
	save := &MemReuseReport{Paper: []model.Mem{4, 4}, Reuse: []model.Mem{3, 3}}
	if s, ok := save.SavingsOK(); s != 0.25 || !ok {
		t.Fatalf("SavingsOK = (%v, %v), want (0.25, true)", s, ok)
	}
	if s := save.Savings(); s != 0.25 {
		t.Fatalf("Savings = %v, want 0.25", s)
	}
}
