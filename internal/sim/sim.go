// Package sim is a discrete-event executor for instance-level schedules
// over one hyper-period. It replays every task instance and data transfer
// tick by tick, verifying as it goes that the schedule is executable
// (producers really have delivered before consumers start), and measures
// the quantities the paper reasons about:
//
//   - per-processor busy and idle time (the §1 motivation: "over 65% of
//     processors are idle at any given time");
//   - per-processor receive-buffer high-watermark: data produced by n
//     instances of a faster producer must all be stored on the consumer
//     side until the consumer runs — memory reuse is impossible between
//     them (figure 1).
package sim

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/sched"
)

// Event is one execution event in the replay log.
type Event struct {
	Time model.Time
	Kind string // "start", "end", "send", "recv"
	Inst model.InstanceID
	Proc arch.ProcID
	Note string
}

// ProcStats aggregates one processor's activity over the hyper-period.
type ProcStats struct {
	Busy        model.Time
	Idle        model.Time
	Instances   int
	BufferPeak  model.Mem // receive-buffer high-watermark
	ResidentMem model.Mem // per-instance task memory (paper accounting)
	TotalDemand model.Mem // ResidentMem + BufferPeak
}

// Report is the outcome of one simulation run.
type Report struct {
	Horizon   model.Time // window simulated: [0, Horizon)
	Makespan  model.Time
	Procs     []ProcStats
	Events    []Event
	IdleRatio float64 // mean fraction of idle time across processors
}

// Runner executes schedules.
type Runner struct {
	// LogEvents retains the full event log in the report (costly for large
	// runs; off by default).
	LogEvents bool
}

// Run replays the schedule over [0, makespan] and returns the report. It
// fails if any consumer starts before all its input data has arrived
// (producer end + C for cross-processor edges), which would mean the
// schedule is not executable.
func (r *Runner) Run(is *sched.InstSchedule) (*Report, error) {
	ts, ar := is.TS, is.Arch
	horizon := is.Makespan()
	rep := &Report{Horizon: horizon, Makespan: horizon, Procs: make([]ProcStats, ar.Procs)}

	buffers := make([][]arrival, ar.Procs)

	// Verify executability and collect arrivals.
	var depErr error
	for i := 0; i < ts.Len(); i++ {
		dst := model.TaskID(i)
		for k := 0; k < ts.Instances(dst); k++ {
			ci := model.InstanceID{Task: dst, K: k}
			cpl, ok := is.Placement(ci)
			if !ok {
				return nil, fmt.Errorf("sim: instance %v not placed", ci)
			}
			model.EachInstanceDepData(ts, dst, k, func(src model.InstanceID, data model.Mem) {
				if depErr != nil {
					return
				}
				spl, ok := is.Placement(src)
				if !ok {
					depErr = fmt.Errorf("sim: producer %v not placed", src)
					return
				}
				end := is.End(src)
				if spl.Proc != cpl.Proc {
					end += ar.CommTime
				}
				if end > cpl.Start {
					depErr = fmt.Errorf("sim: %s#%d starts at %d before its input from %s#%d arrives at %d",
						ts.Task(dst).Name, k+1, cpl.Start, ts.Task(src.Task).Name, src.K+1, end)
					return
				}
				if spl.Proc != cpl.Proc {
					buffers[cpl.Proc] = append(buffers[cpl.Proc], arrival{
						at:   end,
						data: data,
						used: cpl.Start,
						free: cpl.Start + ts.Task(dst).WCET,
					})
					if r.LogEvents {
						rep.Events = append(rep.Events,
							Event{Time: is.End(src), Kind: "send", Inst: src, Proc: spl.Proc},
							Event{Time: end, Kind: "recv", Inst: ci, Proc: cpl.Proc,
								Note: fmt.Sprintf("from %s#%d", ts.Task(src.Task).Name, src.K+1)})
					}
				}
			})
			if depErr != nil {
				return nil, depErr
			}
		}
	}

	// Busy time and start/end events.
	for i := 0; i < ts.Len(); i++ {
		id := model.TaskID(i)
		t := ts.Task(id)
		for k := 0; k < ts.Instances(id); k++ {
			iid := model.InstanceID{Task: id, K: k}
			pl, _ := is.Placement(iid)
			rep.Procs[pl.Proc].Busy += t.WCET
			rep.Procs[pl.Proc].Instances++
			rep.Procs[pl.Proc].ResidentMem += t.Mem
			if r.LogEvents {
				rep.Events = append(rep.Events,
					Event{Time: pl.Start, Kind: "start", Inst: iid, Proc: pl.Proc},
					Event{Time: pl.Start + t.WCET, Kind: "end", Inst: iid, Proc: pl.Proc})
			}
		}
	}

	// Buffer high-watermark per processor: sweep arrival/free events.
	for p := range buffers {
		rep.Procs[p].BufferPeak = peakOccupancy(buffers[p])
		rep.Procs[p].TotalDemand = rep.Procs[p].ResidentMem + rep.Procs[p].BufferPeak
	}

	idleSum := 0.0
	for p := range rep.Procs {
		rep.Procs[p].Idle = horizon - rep.Procs[p].Busy
		if horizon > 0 {
			idleSum += float64(rep.Procs[p].Idle) / float64(horizon)
		}
	}
	rep.IdleRatio = idleSum / float64(ar.Procs)

	if r.LogEvents {
		sort.SliceStable(rep.Events, func(i, j int) bool { return rep.Events[i].Time < rep.Events[j].Time })
	}
	return rep, nil
}

// arrival is one datum landing in a processor's receive buffer: it
// occupies the buffer from its arrival until the consumer instance that
// uses it completes.
type arrival struct {
	at   model.Time
	data model.Mem
	used model.Time // consumer start
	free model.Time // consumer end: buffer slot released
}

type occEvent struct {
	at    model.Time
	delta model.Mem
}

// peakOccupancy computes the maximum simultaneous buffer occupancy given
// arrival intervals [at, free).
func peakOccupancy(arrivals []arrival) model.Mem {
	evs := make([]occEvent, 0, 2*len(arrivals))
	for _, a := range arrivals {
		evs = append(evs, occEvent{a.at, a.data}, occEvent{a.free, -a.data})
	}
	slices.SortFunc(evs, func(a, b occEvent) int {
		if c := cmp.Compare(a.at, b.at); c != 0 {
			return c
		}
		return cmp.Compare(a.delta, b.delta) // frees before arrivals at the same tick
	})
	var cur, peak model.Mem
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
