package sim

import (
	"cmp"
	"slices"

	"repro/internal/model"
	"repro/internal/sched"
)

// reuse.go quantifies the paper's figure-1 argument. The paper charges
// every task instance its full memory amount because "memory reuse is not
// always possible": the n data produced by a faster producer for one
// slower consumer must coexist. But *between unrelated instances* whose
// lifetimes do not overlap, a real allocator can reuse storage (the
// paper's reference [5], Biswas et al.). MinMemoryWithReuse computes that
// lower bound per processor by sweeping buffer lifetimes, so experiments
// can report both accountings side by side:
//
//   - paper accounting:  Σ over resident instances of m(task)
//   - reuse accounting:  peak of simultaneously-live buffers
//
// A buffer is live from the start of the producing instance (the task
// materialises its data while it runs) until the end of the last instance
// that consumes it (+C transfer tail for remote consumers); data that
// nobody consumes lives until its producer's instance ends.
type lifetime struct {
	start, end model.Time
	mem        model.Mem
}

// MemReuseReport compares the two accountings for one schedule.
type MemReuseReport struct {
	Paper []model.Mem // per-processor, the paper's no-reuse accounting
	Reuse []model.Mem // per-processor, peak live memory with reuse
}

// Savings returns 1 − Σreuse/Σpaper, the fraction of memory the paper's
// accounting overstates relative to a perfectly reusing allocator.
//
// The zero return is ambiguous: it means either "genuinely no savings"
// (Σreuse == Σpaper > 0) or "nothing to compare" (Σpaper == 0 — an
// empty or memoryless schedule, where the ratio is undefined and 0 is
// a convention). Consumers that must tell the two apart use SavingsOK.
func (r *MemReuseReport) Savings() float64 {
	s, _ := r.SavingsOK()
	return s
}

// SavingsOK is Savings with the undefined case made explicit: ok is
// false — and the savings value 0 by convention — when Σpaper == 0,
// true when the fraction is a real measurement (including a measured
// zero).
func (r *MemReuseReport) SavingsOK() (savings float64, ok bool) {
	var p, u model.Mem
	for i := range r.Paper {
		p += r.Paper[i]
		u += r.Reuse[i]
	}
	if p == 0 {
		return 0, false
	}
	return 1 - float64(u)/float64(p), true
}

// MinMemoryWithReuse computes the per-processor peak of simultaneously
// live task buffers over one hyper-period (steady state: lifetimes are
// wrapped modulo H).
//
// Lifetimes are accumulated consumer-major in one pass over the
// instance-level dependences, into a dense per-instance table: each
// consumer instance extends the lifetime of every datum it reads. The
// older producer-major formulation re-enumerated every successor's whole
// instance range per producer, which was quadratic in the dependence
// fan-out.
func MinMemoryWithReuse(is *sched.InstSchedule) *MemReuseReport {
	ts, ar := is.TS, is.Arch
	h := ts.HyperPeriod()
	rep := &MemReuseReport{
		Paper: is.MemVector(),
		Reuse: make([]model.Mem, ar.Procs),
	}

	// ends[i] is the lifetime end of the datum produced by the instance
	// with dense index i; −1 marks an unplaced producer.
	ends := make([]model.Time, ts.TotalInstances())
	for i := 0; i < ts.Len(); i++ {
		id := model.TaskID(i)
		for k := 0; k < ts.Instances(id); k++ {
			iid := model.InstanceID{Task: id, K: k}
			if _, ok := is.Placement(iid); !ok {
				ends[ts.InstanceIndex(iid)] = -1
				continue
			}
			ends[ts.InstanceIndex(iid)] = is.End(iid)
		}
	}
	for i := 0; i < ts.Len(); i++ {
		dst := model.TaskID(i)
		for k := 0; k < ts.Instances(dst); k++ {
			ci := model.InstanceID{Task: dst, K: k}
			cpl, cok := is.Placement(ci)
			cend := is.End(ci)
			model.EachInstanceDep(ts, dst, k, func(src model.InstanceID) {
				idx := ts.InstanceIndex(src)
				if ends[idx] < 0 {
					return
				}
				e := cend
				if spl, _ := is.Placement(src); cok && cpl.Proc != spl.Proc {
					// The data leaves the producer's processor once the
					// transfer completes: producer side holds it until the
					// consumer start at the latest (send + flight).
					e = is.End(src) + ar.CommTime
				}
				if e > ends[idx] {
					ends[idx] = e
				}
			})
		}
	}

	perProc := make([][]lifetime, ar.Procs)
	for i := 0; i < ts.Len(); i++ {
		id := model.TaskID(i)
		mem := ts.Task(id).Mem
		for k := 0; k < ts.Instances(id); k++ {
			iid := model.InstanceID{Task: id, K: k}
			pl, ok := is.Placement(iid)
			if !ok {
				continue
			}
			perProc[pl.Proc] = append(perProc[pl.Proc], lifetime{start: pl.Start, end: ends[ts.InstanceIndex(iid)], mem: mem})
		}
	}

	for p := range perProc {
		rep.Reuse[p] = peakLive(perProc[p], h)
	}
	return rep
}

// peakLive sweeps lifetimes wrapped into the steady-state ring [0, h).
func peakLive(lts []lifetime, h model.Time) model.Mem {
	type ev struct {
		at    model.Time
		delta model.Mem
	}
	var evs []ev
	for _, lt := range lts {
		if lt.end-lt.start >= h {
			// Live the whole ring: constant contribution.
			evs = append(evs, ev{0, lt.mem})
			continue
		}
		s := model.Mod(lt.start, h)
		e := model.Mod(lt.end, h)
		if s < e {
			evs = append(evs, ev{s, lt.mem}, ev{e, -lt.mem})
		} else { // wraps midnight
			evs = append(evs, ev{0, lt.mem}, ev{e, -lt.mem}, ev{s, lt.mem})
			// the closing -mem at h is implicit (sweep ends there)
		}
	}
	slices.SortFunc(evs, func(a, b ev) int {
		if c := cmp.Compare(a.at, b.at); c != 0 {
			return c
		}
		return cmp.Compare(a.delta, b.delta)
	})
	var cur, peak model.Mem
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// ReuseByProc is a convenience wrapper returning only the reuse vector.
func ReuseByProc(is *sched.InstSchedule) []model.Mem {
	return MinMemoryWithReuse(is).Reuse
}
