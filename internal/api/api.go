// Package api is the shared, versioned wire dialect every HTTP surface
// in the repo speaks: the coordinator's control API, the worker job
// API, and the lbfarmd campaign service. It pins three things in one
// place so a fourth server never grows a fourth hand-rolled variant:
//
//   - the JSON error envelope — every non-2xx response is
//     {"error":{"code","message"}}, with a small closed code set mapped
//     to documented HTTP statuses (see the Code constants);
//   - encode/decode helpers — WriteJSON/WriteError on the server side,
//     Do on the client side (which folds an error envelope back into a
//     typed *Error the caller can match on);
//   - the request/response types shared across services: worker
//     registration and job wire types, and the campaign-service
//     submission/status/event types.
//
// The path version ("/v1/…") and the envelope schema move together:
// a breaking change to either bumps Version and forks the route tree,
// never the meaning of an existing route.
package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Version is the wire dialect version, the leading path segment of
// every versioned route ("/v1/campaigns", "/v1/job/start", …).
const Version = "v1"

// Error codes. The set is closed on purpose: clients dispatch on the
// code, so servers map every failure onto one of these (plus the HTTP
// status in parentheses) rather than minting ad-hoc strings.
const (
	// CodeBadRequest (400): the request body or parameters failed to
	// parse or validate; the message names the offending field.
	CodeBadRequest = "bad_request"
	// CodeNotFound (404): the named resource — job, campaign, artifact
	// — does not exist here. For worker job routes this is the
	// amnesiac-worker signal the coordinator re-queues on.
	CodeNotFound = "not_found"
	// CodeConflict (409): the request is well-formed but the resource
	// state refuses it (worker busy with another job, journal not done).
	CodeConflict = "conflict"
	// CodeQueueFull (429): the service's admission queue is at capacity;
	// retry later.
	CodeQueueFull = "queue_full"
	// CodeInternal (500): the server failed while executing a valid
	// request.
	CodeInternal = "internal"
	// CodeUnavailable (503): the server is draining or dead and answers
	// nothing else.
	CodeUnavailable = "unavailable"
)

// Error is the one error payload every server returns and every client
// decodes. It implements error, so a transport helper can hand it
// straight back up the call stack; Status carries the HTTP status it
// traveled with (client side only — servers pass the status to
// WriteError explicitly).
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Status  int    `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

// envelope is the wire shape of an error response.
type envelope struct {
	Error *Error `json:"error"`
}

// ErrorOf unwraps err to the *Error a Do call decoded, if any.
func ErrorOf(err error) (*Error, bool) {
	var ae *Error
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}

// IsCode reports whether err is (or wraps) an API error with the given
// code.
func IsCode(err error, code string) bool {
	ae, ok := ErrorOf(err)
	return ok && ae.Code == code
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the error envelope with the given status and code.
func WriteError(w http.ResponseWriter, status int, code, format string, args ...any) {
	WriteJSON(w, status, envelope{&Error{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// Decode parses a JSON request body into v, rejecting unknown fields —
// a typoed spec key must fail the submission, not silently run the
// default grid — and trailing garbage.
func Decode(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("api: trailing data after JSON body")
	}
	return nil
}

// DecodeResponse parses a response body into v leniently (unknown
// fields are the forward-compatible case on the client side). A *[]byte
// target receives the raw bytes instead.
func DecodeResponse(data []byte, v any) error {
	if raw, ok := v.(*[]byte); ok {
		*raw = data
		return nil
	}
	return json.Unmarshal(data, v)
}

// ReadError folds a non-2xx response body into an *Error: the decoded
// envelope when the server sent one, a synthesized CodeInternal error
// wrapping the raw body otherwise (a proxy or panic page still yields a
// usable message).
func ReadError(status int, body []byte) *Error {
	var env envelope
	if json.Unmarshal(body, &env) == nil && env.Error != nil && env.Error.Message != "" {
		env.Error.Status = status
		if env.Error.Code == "" {
			env.Error.Code = CodeInternal
		}
		return env.Error
	}
	return &Error{
		Code:    CodeInternal,
		Message: fmt.Sprintf("HTTP %d: %s", status, strings.TrimSpace(string(body))),
		Status:  status,
	}
}

// BaseURL canonicalises a server address: a bare host:port gains the
// http scheme, and trailing slashes are dropped so path joins are
// predictable.
func BaseURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// Do runs one JSON request against url: in (when non-nil) is marshalled
// as the body, out (when non-nil) receives the response via
// DecodeResponse. Non-2xx responses return the decoded *Error. hc may
// be nil for http.DefaultClient; deadlines come from ctx.
func Do(ctx context.Context, hc *http.Client, method, url string, in, out any) error {
	var rd io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return ReadError(resp.StatusCode, body)
	}
	if out == nil {
		return nil
	}
	return DecodeResponse(body, out)
}
