package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

// TestErrorEnvelopeGolden pins the wire bytes of the error envelope:
// every server in the repo emits exactly this shape, and clients (and
// external tooling) are allowed to depend on it.
func TestErrorEnvelopeGolden(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusNotFound, CodeNotFound, "no campaign %s", "abc")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	const golden = `{"error":{"code":"not_found","message":"no campaign abc"}}` + "\n"
	if got := rec.Body.String(); got != golden {
		t.Fatalf("envelope bytes:\n got %q\nwant %q", got, golden)
	}
}

// TestErrorRoundTrip drives WriteError → ReadError and checks the
// decoded *Error carries code, message, and status.
func TestErrorRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusConflict, CodeConflict, "busy with job %s", "j1")
	ae := ReadError(rec.Code, rec.Body.Bytes())
	if ae.Code != CodeConflict || ae.Status != http.StatusConflict {
		t.Fatalf("decoded %+v", ae)
	}
	if ae.Message != "busy with job j1" {
		t.Fatalf("message = %q", ae.Message)
	}
	if !IsCode(ae, CodeConflict) || IsCode(ae, CodeNotFound) {
		t.Fatal("IsCode dispatch broken")
	}
}

// TestReadErrorFallback: a non-envelope body (proxy page, panic text)
// still yields a usable CodeInternal error.
func TestReadErrorFallback(t *testing.T) {
	ae := ReadError(http.StatusBadGateway, []byte("<html>bad gateway</html>\n"))
	if ae.Code != CodeInternal || ae.Status != http.StatusBadGateway {
		t.Fatalf("decoded %+v", ae)
	}
	if !strings.Contains(ae.Message, "502") || !strings.Contains(ae.Message, "bad gateway") {
		t.Fatalf("message = %q", ae.Message)
	}
}

// TestDecodeStrict: unknown fields and trailing garbage must fail — a
// typoed spec key must not silently run the default grid.
func TestDecodeStrict(t *testing.T) {
	var v struct {
		A int `json:"a"`
	}
	if err := Decode(strings.NewReader(`{"a":1,"zzz":2}`), &v); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := Decode(strings.NewReader(`{"a":1} trailing`), &v); err == nil {
		t.Fatal("trailing data accepted")
	}
	if err := Decode(strings.NewReader(`{"a":1}`), &v); err != nil || v.A != 1 {
		t.Fatalf("clean decode: %v, v=%+v", err, v)
	}
}

// TestJobGolden pins the job wire shape the coordinator dispatches and
// the worker decodes.
func TestJobGolden(t *testing.T) {
	job := Job{
		ID:    "r0",
		Spec:  &campaign.Spec{Name: "sweep"},
		Range: Range{Index: 0, Count: 4, Lo: 0, Hi: 25},
		Trace: "t-1",
		Span:  "s-1",
	}
	data, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"id":"r0"`, `"index":0`, `"count":4`, `"lo":0`, `"hi":25`, `"trace":"t-1"`, `"span":"s-1"`, `"name":"sweep"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("job JSON missing %s:\n%s", key, data)
		}
	}
	var back Job
	if err := Decode(strings.NewReader(string(data)), &back); err != nil {
		t.Fatalf("job does not survive the strict decode servers apply: %v", err)
	}
	if back.ID != job.ID || back.Range != job.Range || back.Trace != job.Trace {
		t.Fatalf("round trip: %+v", back)
	}
}

// TestCampaignStatusGolden pins the campaign status envelope,
// including omitempty behaviour: a queued status must not leak
// artifact links or timestamps it does not have.
func TestCampaignStatusGolden(t *testing.T) {
	sub := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	st := CampaignStatus{
		ID:          "deadbeef",
		Name:        "sweep",
		State:       CampaignQueued,
		Total:       50,
		SubmittedAt: sub,
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, absent := range []string{"cached", "error", "artifacts", "started_at", "finished_at"} {
		if strings.Contains(s, absent) {
			t.Fatalf("queued status leaks %q:\n%s", absent, s)
		}
	}
	var back CampaignStatus
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != st.ID || back.State != CampaignQueued || !back.SubmittedAt.Equal(sub) {
		t.Fatalf("round trip: %+v", back)
	}
	if back.State.Terminal() {
		t.Fatal("queued is not terminal")
	}
	if !CampaignDone.Terminal() || !CampaignFailed.Terminal() {
		t.Fatal("done/failed are terminal")
	}
}

// TestEventRoundTrip: each event type carries exactly its own payload.
func TestEventRoundTrip(t *testing.T) {
	evs := []Event{
		{Seq: 1, Type: EventStatus, Status: &CampaignStatus{ID: "x", State: CampaignRunning}},
		{Seq: 2, Type: EventProgress, Progress: &ProgressEvent{Done: 3, Accepted: 2, Total: 10, Line: "3/10"}},
		{Seq: 3, Type: EventTrial, Trial: &TrialEvent{Index: 7, Cell: "n=40", Outcome: "ok"}},
	}
	for _, ev := range evs {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var back Event
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Seq != ev.Seq || back.Type != ev.Type {
			t.Fatalf("round trip: %+v", back)
		}
		set := 0
		if back.Status != nil {
			set++
		}
		if back.Progress != nil {
			set++
		}
		if back.Trial != nil {
			set++
		}
		if set != 1 {
			t.Fatalf("event %s carries %d payloads:\n%s", ev.Type, set, data)
		}
	}
}

// TestDo drives the client helper against a live server: success JSON,
// raw-bytes targets, and envelope errors surfacing as *Error.
func TestDo(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, HeartbeatAck{Known: true})
	})
	mux.HandleFunc("GET /raw", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("raw-bytes"))
	})
	mux.HandleFunc("GET /missing", func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusNotFound, CodeNotFound, "nope")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	ctx := context.Background()

	var ack HeartbeatAck
	if err := Do(ctx, nil, http.MethodGet, srv.URL+"/ok", nil, &ack); err != nil || !ack.Known {
		t.Fatalf("ok: %v, %+v", err, ack)
	}
	var raw []byte
	if err := Do(ctx, nil, http.MethodGet, srv.URL+"/raw", nil, &raw); err != nil || string(raw) != "raw-bytes" {
		t.Fatalf("raw: %v, %q", err, raw)
	}
	err := Do(ctx, nil, http.MethodGet, srv.URL+"/missing", nil, nil)
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != CodeNotFound || ae.Status != http.StatusNotFound {
		t.Fatalf("missing: %v", err)
	}
}

// TestBaseURL pins address canonicalisation.
func TestBaseURL(t *testing.T) {
	for in, want := range map[string]string{
		"127.0.0.1:8800":  "http://127.0.0.1:8800",
		"http://host:1/":  "http://host:1",
		"https://host/":   "https://host",
		"host:9000/base/": "http://host:9000/base",
	} {
		if got := BaseURL(in); got != want {
			t.Fatalf("BaseURL(%q) = %q, want %q", in, got, want)
		}
	}
}
