package api

import (
	"time"

	"repro/internal/campaign"
)

// ---------------------------------------------------------------------
// Worker dialect: the coordinator ↔ worker job API (served by
// lbfarm -worker, driven by lbcoord and — via ROADMAP item 2 — by
// lbfarmd's fleet dispatch).

// Job is one dispatched unit of work: run shard Range.Index of
// Range.Count of Spec, journal it, and hold the journal for collection.
// The ID is stable across re-dispatches of the same range (it names the
// range, not the attempt), so a worker that already holds a partial
// journal for it resumes instead of restarting.
type Job struct {
	ID    string         `json:"id"`
	Spec  *campaign.Spec `json:"spec"`
	Range Range          `json:"range"`
	// Trace is the range-stable trace ID and Span the attempt-specific
	// span ID minted by the coordinator at dispatch; the worker echoes
	// them into its runinfo sidecar and /debug/vars so fleet-side
	// decisions and worker-side telemetry join on the same IDs.
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
}

// Range names one shard of a campaign's trial enumeration: index-range
// [Lo,Hi) as shard Index of Count (the journal.ShardRange geometry).
type Range struct {
	Index int `json:"index"`
	Count int `json:"count"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
}

// JobState is a worker's view of one job.
type JobState string

const (
	// JobIdle means the worker holds no such job (never dispatched, or
	// lost to a worker restart).
	JobIdle JobState = "idle"
	// JobRunning means the job's engine run is in flight.
	JobRunning JobState = "running"
	// JobDone means the shard journal is complete and collectable.
	JobDone JobState = "done"
	// JobFailed means the run ended without a complete journal; Err
	// carries the reason (including "canceled" for a drained job).
	JobFailed JobState = "failed"
)

// WorkerStatus is a worker's self-report — the heartbeat payload and
// the status-poll response. Done counts journaled trials of the current
// job (replayed rows included), Total the job's trial count.
type WorkerStatus struct {
	JobID string   `json:"job_id"`
	State JobState `json:"state"`
	Done  int      `json:"done"`
	Total int      `json:"total"`
	Err   string   `json:"err,omitempty"`
}

// Registration is the register/heartbeat payload a worker pushes to the
// coordinator (POST /v1/register, POST /v1/heartbeat).
type Registration struct {
	ID     string       `json:"id"`
	Addr   string       `json:"addr,omitempty"`
	Status WorkerStatus `json:"status"`
}

// HeartbeatAck tells the worker whether the coordinator knows it; an
// unknown worker re-registers (the coordinator restarted).
type HeartbeatAck struct {
	Known bool `json:"known"`
}

// ---------------------------------------------------------------------
// Coordinator status dialect: the control-plane snapshot a coordinator
// publishes — on lbcoord's /v1/status and, since the campaign service
// grew a fleet executor, embedded in CampaignStatus.Fleet. The types
// live here so both dialects share one wire shape; internal/coord
// aliases them under its domain names (Stats, WorkerView, …).

// CoordStats counts a coordinator's fault-handling events.
type CoordStats struct {
	Registered          int `json:"workers_registered"`
	DeadWorkers         int `json:"workers_dead"`
	Dispatches          int `json:"dispatches"`
	Requeues            int `json:"requeues"`
	Speculations        int `json:"speculations"`
	DuplicatesDiscarded int `json:"duplicates_discarded"`
	Journaled           int `json:"ranges_journaled"`
	RecoveredJournals   int `json:"recovered_journals"`
}

// CoordWorker is the snapshot of one registered worker.
type CoordWorker struct {
	ID           string `json:"id"`
	Job          string `json:"job,omitempty"`
	State        string `json:"state,omitempty"`
	Done         int    `json:"done"`
	Total        int    `json:"total"`
	LastSeenMS   int64  `json:"last_seen_ms"` // age of last contact
	RangeLeased  int    `json:"range_leased"` // -1 when idle
	Unresponsive bool   `json:"unresponsive,omitempty"`
}

// CoordLease is the snapshot of one shard range's lease.
type CoordLease struct {
	Range      Range    `json:"range"`
	State      string   `json:"state"`
	Trace      string   `json:"trace,omitempty"`
	Workers    []string `json:"workers,omitempty"`
	Dispatches int      `json:"dispatches"`
	Failures   int      `json:"failures"`
	LastErr    string   `json:"last_err,omitempty"`
	Path       string   `json:"path,omitempty"`
}

// CoordStatus is a coordinator's full observable state: the lease
// table, the worker pool, and the fault counters.
type CoordStatus struct {
	Name     string        `json:"name"`
	SpecHash string        `json:"spec_hash"`
	Trials   int           `json:"trials"`
	Splits   int           `json:"splits"`
	Leases   []CoordLease  `json:"leases"`
	Workers  []CoordWorker `json:"workers"`
	Stats    CoordStats    `json:"stats"`
}

// ---------------------------------------------------------------------
// Campaign service dialect: the lbfarmd submission API. A submission
// body is a plain campaign.Spec; these are the response and event
// shapes.

// CampaignState is the service-side lifecycle of one submitted
// campaign.
type CampaignState string

const (
	// CampaignQueued: admitted to the bounded FIFO, not yet running.
	CampaignQueued CampaignState = "queued"
	// CampaignRunning: executing on the engine, journaling as it goes.
	CampaignRunning CampaignState = "running"
	// CampaignDone: artifacts are in the content-addressed cache.
	CampaignDone CampaignState = "done"
	// CampaignFailed: the run ended in an error (Error carries it);
	// re-submitting the same spec re-queues it.
	CampaignFailed CampaignState = "failed"
)

// Terminal reports whether the state is final.
func (s CampaignState) Terminal() bool {
	return s == CampaignDone || s == CampaignFailed
}

// CampaignStatus is the service's report on one campaign — the
// response of POST /v1/campaigns and GET /v1/campaigns/{id}, and the
// payload of "status" events on the SSE stream. ID is the campaign's
// spec hash: identical submissions share one identity, which is what
// makes the artifact cache exact.
type CampaignStatus struct {
	ID    string        `json:"id"`
	Name  string        `json:"name"`
	State CampaignState `json:"state"`
	// Cached is set on a submission response served entirely from the
	// artifact cache: no trial ran, the artifacts below are the first
	// run's bytes.
	Cached bool `json:"cached,omitempty"`
	// Done/Accepted/Total are live trial counters (journal-replayed
	// trials included in Done).
	Done     int `json:"done"`
	Accepted int `json:"accepted"`
	Total    int `json:"total"`
	// Error carries the failure reason of a failed campaign.
	Error string `json:"error,omitempty"`
	// Artifacts maps artifact kind ("json", "csv", "runinfo", and
	// "fleetinfo" for fleet-executed campaigns) to the service path it
	// is served under, once the campaign is done.
	Artifacts map[string]string `json:"artifacts,omitempty"`

	// Fleet is the embedded coordinator's live control-plane snapshot,
	// present only while a campaign is running on the fleet executor.
	Fleet *CoordStatus `json:"fleet,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// CampaignList is the GET /v1/campaigns response.
type CampaignList struct {
	Campaigns []CampaignStatus `json:"campaigns"`
}

// Event is one record of a campaign's SSE stream
// (GET /v1/campaigns/{id}/events). Exactly one of the payload fields is
// set, matching Type; Seq increases by one per event within a stream,
// so a consumer can detect drops (slow subscribers lose trial events
// first — progress counters are cumulative, so nothing is unrecoverable).
type Event struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"` // "status" | "progress" | "trial"

	Status   *CampaignStatus `json:"status,omitempty"`
	Progress *ProgressEvent  `json:"progress,omitempty"`
	Trial    *TrialEvent     `json:"trial,omitempty"`
}

// Event types on the SSE stream.
const (
	EventStatus   = "status"
	EventProgress = "progress"
	EventTrial    = "trial"
)

// ProgressEvent is the periodic progress report: cumulative counters
// plus the human-readable line internal/progress renders for the CLIs.
type ProgressEvent struct {
	Done     int    `json:"done"`
	Accepted int    `json:"accepted"`
	Total    int    `json:"total"`
	Line     string `json:"line"`
}

// TrialEvent streams one completed trial as it folds: the enumeration
// index, its grid cell, and the outcome ("ok" or the rejecting stage).
type TrialEvent struct {
	Index   int    `json:"index"`
	Cell    string `json:"cell"`
	Outcome string `json:"outcome"`
}
