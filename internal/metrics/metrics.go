// Package metrics computes the evaluation quantities used across the
// experiments: load-balance indices, memory spread, and before/after
// summaries of balancing runs.
package metrics

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Summary captures the quality of one distribution.
type Summary struct {
	Makespan   model.Time
	MaxMem     model.Mem
	MemVector  []model.Mem
	MemImbal   float64 // max/mean memory ratio (1.0 = perfectly even)
	LoadVector []model.Time
	LoadImbal  float64 // max/mean busy-time ratio
	IdleRatio  float64
}

// Collect assembles the Summary of one distribution from its
// observables: the schedule makespan, the per-processor memory and
// busy-time vectors, and the simulator's idle ratio. It is the single
// construction point the campaign engine and the evaluation binaries
// share, so every experiment publishes the same derived quantities.
func Collect(makespan model.Time, mem []model.Mem, load []model.Time, idleRatio float64) Summary {
	return Summary{
		Makespan:   makespan,
		MaxMem:     MaxMem(mem),
		MemVector:  mem,
		MemImbal:   MemImbalance(mem),
		LoadVector: load,
		LoadImbal:  LoadImbalance(load),
		IdleRatio:  idleRatio,
	}
}

// MemImbalance returns max/mean of the vector: 1 means perfectly even,
// larger means more concentrated, and every meaningful value is ≥ 1
// (the max can never be below the mean).
//
// 0 is the degenerate-input sentinel — an empty or all-zero vector has
// no mean to ratio against. It deliberately sits outside the meaningful
// range so a "no memory placed anywhere" trial is distinguishable from
// a perfectly balanced one; consumers that average imbalances (the
// campaign aggregates, lbbench's reports) must not read 0 as "better
// than even".
func MemImbalance(v []model.Mem) float64 {
	var sum, max model.Mem
	for _, x := range v {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 || len(v) == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(v))
	return float64(max) / mean
}

// LoadImbalance returns max/mean of the busy-time vector, with the
// same convention as MemImbalance: 1 = perfectly even, meaningful
// values are ≥ 1, and 0 is the degenerate-input sentinel for an empty
// or all-idle vector (no processor ever ran anything), not a very good
// balance.
func LoadImbalance(v []model.Time) float64 {
	var sum, max model.Time
	for _, x := range v {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 || len(v) == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(v))
	return float64(max) / mean
}

// MaxMem returns the maximum entry.
func MaxMem(v []model.Mem) model.Mem {
	var m model.Mem
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// FormatMemVector renders a memory vector in the paper's style:
// "[P1: 10, P2: 6, P3: 8]".
func FormatMemVector(v []model.Mem) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("P%d: %d", i+1, x)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
