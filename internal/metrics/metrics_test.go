package metrics

import (
	"testing"

	"repro/internal/model"
)

// TestMemImbalance pins the max/mean ratio and its 0 sentinel: every
// meaningful value is ≥ 1 (1 = perfectly even), and 0 is reserved for
// degenerate inputs — empty or all-zero vectors — so "nothing placed"
// can never masquerade as "better than even".
func TestMemImbalance(t *testing.T) {
	for _, tc := range []struct {
		name string
		v    []model.Mem
		want float64
	}{
		{"even vector is the meaningful minimum 1", []model.Mem{10, 10, 10}, 1},
		{"fully concentrated equals the processor count", []model.Mem{30, 0, 0}, 3},
		{"mild skew", []model.Mem{6, 2}, 1.5},
		{"single processor is trivially even", []model.Mem{7}, 1},
		{"nil vector hits the 0 sentinel", nil, 0},
		{"empty vector hits the 0 sentinel", []model.Mem{}, 0},
		{"all-zero vector hits the 0 sentinel", []model.Mem{0, 0}, 0},
	} {
		if got := MemImbalance(tc.v); got != tc.want {
			t.Errorf("%s: MemImbalance(%v) = %v, want %v", tc.name, tc.v, got, tc.want)
		}
	}
}

// TestLoadImbalance: same convention as MemImbalance — ≥ 1 when
// meaningful, 0 only for an empty or all-idle busy-time vector.
func TestLoadImbalance(t *testing.T) {
	for _, tc := range []struct {
		name string
		v    []model.Time
		want float64
	}{
		{"even loads are the meaningful minimum 1", []model.Time{4, 4}, 1},
		{"one-sided loads equal the processor count", []model.Time{8, 0}, 2},
		{"mild skew", []model.Time{9, 3}, 1.5},
		{"nil vector hits the 0 sentinel", nil, 0},
		{"all-idle vector hits the 0 sentinel", []model.Time{0, 0, 0}, 0},
	} {
		if got := LoadImbalance(tc.v); got != tc.want {
			t.Errorf("%s: LoadImbalance(%v) = %v, want %v", tc.name, tc.v, got, tc.want)
		}
	}
}

func TestMaxMem(t *testing.T) {
	if got := MaxMem([]model.Mem{3, 9, 1}); got != 9 {
		t.Errorf("MaxMem = %d, want 9", got)
	}
	if got := MaxMem(nil); got != 0 {
		t.Errorf("MaxMem(nil) = %d, want 0", got)
	}
}

func TestFormatMemVector(t *testing.T) {
	got := FormatMemVector([]model.Mem{10, 6, 8})
	want := "[P1: 10, P2: 6, P3: 8]"
	if got != want {
		t.Errorf("FormatMemVector = %q, want %q", got, want)
	}
}

func TestCollect(t *testing.T) {
	mem := []model.Mem{4, 8, 4}
	load := []model.Time{10, 20, 10}
	s := Collect(42, mem, load, 0.25)
	if s.Makespan != 42 || s.MaxMem != 8 || s.IdleRatio != 0.25 {
		t.Fatalf("scalar fields: %+v", s)
	}
	if s.MemImbal != MemImbalance(mem) || s.LoadImbal != LoadImbalance(load) {
		t.Fatalf("imbalance fields: %+v", s)
	}
	if len(s.MemVector) != 3 || len(s.LoadVector) != 3 {
		t.Fatalf("vector fields: %+v", s)
	}
}
