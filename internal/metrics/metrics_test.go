package metrics

import (
	"testing"

	"repro/internal/model"
)

func TestMemImbalance(t *testing.T) {
	if got := MemImbalance([]model.Mem{10, 10, 10}); got != 1 {
		t.Errorf("even vector imbalance = %v, want 1", got)
	}
	if got := MemImbalance([]model.Mem{30, 0, 0}); got != 3 {
		t.Errorf("concentrated vector imbalance = %v, want 3", got)
	}
	if got := MemImbalance(nil); got != 0 {
		t.Errorf("empty vector imbalance = %v, want 0", got)
	}
	if got := MemImbalance([]model.Mem{0, 0}); got != 0 {
		t.Errorf("zero vector imbalance = %v, want 0", got)
	}
}

func TestLoadImbalance(t *testing.T) {
	if got := LoadImbalance([]model.Time{4, 4}); got != 1 {
		t.Errorf("even loads = %v, want 1", got)
	}
	if got := LoadImbalance([]model.Time{8, 0}); got != 2 {
		t.Errorf("one-sided loads = %v, want 2", got)
	}
}

func TestMaxMem(t *testing.T) {
	if got := MaxMem([]model.Mem{3, 9, 1}); got != 9 {
		t.Errorf("MaxMem = %d, want 9", got)
	}
	if got := MaxMem(nil); got != 0 {
		t.Errorf("MaxMem(nil) = %d, want 0", got)
	}
}

func TestFormatMemVector(t *testing.T) {
	got := FormatMemVector([]model.Mem{10, 6, 8})
	want := "[P1: 10, P2: 6, P3: 8]"
	if got != want {
		t.Errorf("FormatMemVector = %q, want %q", got, want)
	}
}

func TestCollect(t *testing.T) {
	mem := []model.Mem{4, 8, 4}
	load := []model.Time{10, 20, 10}
	s := Collect(42, mem, load, 0.25)
	if s.Makespan != 42 || s.MaxMem != 8 || s.IdleRatio != 0.25 {
		t.Fatalf("scalar fields: %+v", s)
	}
	if s.MemImbal != MemImbalance(mem) || s.LoadImbal != LoadImbalance(load) {
		t.Fatalf("imbalance fields: %+v", s)
	}
	if len(s.MemVector) != 3 || len(s.LoadVector) != 3 {
		t.Fatalf("vector fields: %+v", s)
	}
}
