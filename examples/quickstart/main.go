// Command quickstart shows the minimal end-to-end pipeline of the
// library: define a small multi-rate task system, schedule it onto a
// homogeneous architecture, run the load-balancing and memory-usage
// heuristic, and print the before/after picture.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/trace"
)

func main() {
	// A tiny control application: a fast sensor feeds a filter, the
	// filter feeds a slow actuator command.
	ts := repro.NewTaskSet()
	sensor, err := ts.AddTask("sensor", 5, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	filter, err := ts.AddTask("filter", 10, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	actuate, err := ts.AddTask("actuate", 20, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := ts.AddDependence(sensor, filter, 1); err != nil {
		log.Fatal(err)
	}
	if err := ts.AddDependence(filter, actuate, 1); err != nil {
		log.Fatal(err)
	}
	if err := ts.Freeze(); err != nil {
		log.Fatal(err)
	}

	ar, err := repro.NewArchitecture(2, 1) // two processors, C = 1
	if err != nil {
		log.Fatal(err)
	}

	initial, err := repro.Schedule(ts, ar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Initial schedule:")
	if err := trace.GanttSchedule(os.Stdout, initial); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan %d, memory %v\n\n", initial.Makespan(), initial.MemVector())

	res, err := repro.Balance(initial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Balanced schedule:")
	if err := trace.Gantt(os.Stdout, res.Schedule); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan %d → %d (gain %d), memory %v → %v\n",
		res.MakespanBefore, res.MakespanAfter, res.GainTotal(), res.MemBefore, res.MemAfter)

	rep, err := repro.Simulate(res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean idle ratio %.0f%%; per-processor demand (resident+buffers):\n", rep.IdleRatio*100)
	for p, st := range rep.Procs {
		fmt.Printf("  P%d: busy %d, resident %d, buffer peak %d\n", p+1, st.Busy, st.ResidentMem, st.BufferPeak)
	}
}
