// Command telecom models a software base-band pipeline (frame sync,
// channel decode, de-interleave, voice codec, packetiser) under the
// *strict* communication model: bus contention on the shared medium and
// explicit send/receive tasks with non-zero CPU overhead. It exposes the
// trade the heuristic makes on communication-heavy pipelines: memory
// spreads across the processors, and the price is paid in bus transfers
// and send/receive CPU time — quantities the latency-only model hides,
// which is exactly why this example materialises them.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/metrics"
	"repro/internal/sched"
)

func main() {
	ts := repro.NewTaskSet()
	add := func(name string, period, wcet repro.Time, mem repro.Mem) repro.TaskID {
		id, err := ts.AddTask(name, period, wcet, mem)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	dep := func(src, dst repro.TaskID, data repro.Mem) {
		if err := ts.AddDependence(src, dst, data); err != nil {
			log.Fatal(err)
		}
	}

	sync := add("frame_sync", 8, 1, 3)
	demod := add("demodulate", 8, 2, 5)
	deco := add("channel_decode", 16, 4, 8)
	deint := add("deinterleave", 16, 2, 4)
	voice := add("voice_codec", 32, 6, 6)
	pack := add("packetise", 32, 3, 4)
	oam := add("oam_counters", 64, 5, 7)

	dep(sync, demod, 1)
	dep(demod, deco, 2)
	dep(deco, deint, 2)
	dep(deint, voice, 1)
	dep(voice, pack, 1)
	dep(pack, oam, 1)
	if err := ts.Freeze(); err != nil {
		log.Fatal(err)
	}

	ar := repro.MustNewArchitecture(3, 2)
	ar.ContendedMedia = true // exclusive bus slots, the strict model

	fmt.Printf("telecom pipeline: %d tasks, hyper-period %d, utilisation %.2f\n",
		ts.Len(), ts.HyperPeriod(), ts.Utilization())
	fmt.Println("communication model: contended bus, C=2, send/recv CPU overhead 1")
	fmt.Println()

	initial, err := repro.Schedule(ts, ar)
	if err != nil {
		log.Fatal(err)
	}
	report("initial", initial, ar)

	res, err := repro.Balance(initial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbalanced: makespan %d → %d, memory %s → %s\n",
		res.MakespanBefore, res.MakespanAfter,
		metrics.FormatMemVector(res.MemBefore), metrics.FormatMemVector(res.MemAfter))
	if errs := res.Schedule.Validate(); len(errs) > 0 {
		log.Fatalf("balanced schedule invalid: %v", errs)
	}

	// Count the transfers that survived balancing: co-location removes
	// bus traffic entirely for merged chains.
	before := len(initial.Comms())
	after := 0
	for i := 0; i < ts.Len(); i++ {
		dst := repro.TaskID(i)
		for k := 0; k < ts.Instances(dst); k++ {
			cpl, _ := res.Schedule.Placement(repro.InstanceID{Task: dst, K: k})
			for _, src := range repro.InstanceDeps(ts, dst, k) {
				spl, _ := res.Schedule.Placement(src)
				if spl.Proc != cpl.Proc {
					after++
				}
			}
		}
	}
	fmt.Printf("bus transfers per hyper-period: %d → %d\n", before, after)
	fmt.Printf("memory imbalance: %.2f → %.2f\n",
		metrics.MemImbalance(res.MemBefore), metrics.MemImbalance(res.MemAfter))
	if after > before {
		fmt.Println("note: spreading memory on this pipeline costs extra bus transfers —")
		fmt.Println("      the strict model makes that trade visible and checkable")
	}
}

func report(label string, s *repro.InitialSchedule, ar *repro.Architecture) {
	fmt.Printf("%s: makespan %d, memory %s, %d bus transfers\n",
		label, s.Makespan(), metrics.FormatMemVector(s.MemVector()), len(s.Comms()))
	cts, err := repro.MaterializeCommTasks(s, 1)
	if err != nil {
		fmt.Printf("%s: communication tasks do NOT fit with overhead 1: %v\n", label, err)
		return
	}
	fmt.Printf("%s: %d send/recv tasks, CPU overhead per processor %v\n",
		label, len(cts), sched.CommOverheadVector(ar.Procs, cts))
}
