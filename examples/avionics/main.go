// Command avionics models a flight-control workload of the kind the
// paper's introduction motivates: fast sensor loops (gyro, accelerometer,
// pitot) feeding a multi-rate filter/fusion pipeline, a control law, and
// slow actuator and telemetry tasks — on a memory-constrained triplex
// computer. It demonstrates balancing under a per-processor memory
// capacity and the receive-buffer demand of multi-rate edges (figure 1).
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	ts := repro.NewTaskSet()
	add := func(name string, period, wcet repro.Time, mem repro.Mem) repro.TaskID {
		id, err := ts.AddTask(name, period, wcet, mem)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	dep := func(src, dst repro.TaskID, data repro.Mem) {
		if err := ts.AddDependence(src, dst, data); err != nil {
			log.Fatal(err)
		}
	}

	// Sensor loops at 5 ms (abstract units), filters at 10, fusion and
	// control at 20, actuation and telemetry at 40.
	gyro := add("gyro", 5, 1, 6)
	accel := add("accel", 5, 1, 6)
	pitot := add("pitot", 10, 1, 4)
	gfilt := add("gyro_filter", 10, 2, 3)
	afilt := add("accel_filter", 10, 2, 3)
	fusion := add("fusion", 20, 3, 8)
	ctl := add("control_law", 20, 3, 5)
	elev := add("elevator_cmd", 40, 2, 2)
	ail := add("aileron_cmd", 40, 2, 2)
	tele := add("telemetry", 40, 4, 7)

	dep(gyro, gfilt, 2)
	dep(accel, afilt, 2)
	dep(gfilt, fusion, 1)
	dep(afilt, fusion, 1)
	dep(pitot, fusion, 1)
	dep(fusion, ctl, 2)
	dep(ctl, elev, 1)
	dep(ctl, ail, 1)
	dep(fusion, tele, 2)
	if err := ts.Freeze(); err != nil {
		log.Fatal(err)
	}

	ar := repro.MustNewArchitecture(3, 1)
	ar.SetMemCapacity(80) // tight: total per-instance demand is 184 over three processors

	fmt.Printf("avionics workload: %d tasks, hyper-period %d, utilisation %.2f, total memory %d\n\n",
		ts.Len(), ts.HyperPeriod(), ts.Utilization(), ts.TotalMem())

	initial, err := repro.Schedule(ts, ar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Initial schedule (reference [4] heuristic):")
	if err := trace.GanttSchedule(os.Stdout, initial); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan %d, memory %s\n\n", initial.Makespan(), metrics.FormatMemVector(initial.MemVector()))

	res, err := repro.Balance(initial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("After load balancing with efficient memory usage:")
	if err := trace.Gantt(os.Stdout, res.Schedule); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan %d → %d, memory %s → %s\n",
		res.MakespanBefore, res.MakespanAfter,
		metrics.FormatMemVector(res.MemBefore), metrics.FormatMemVector(res.MemAfter))
	fmt.Printf("memory imbalance %.2f → %.2f (1.00 = perfectly even)\n\n",
		metrics.MemImbalance(res.MemBefore), metrics.MemImbalance(res.MemAfter))

	for p, m := range res.MemAfter {
		if m > ar.MemCapacity {
			log.Fatalf("P%d exceeds the %d-unit capacity", p+1, ar.MemCapacity)
		}
	}
	fmt.Printf("every processor within the %d-unit memory capacity\n\n", ar.MemCapacity)

	rep, err := repro.Simulate(res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Execution over one hyper-period (multi-rate buffering per figure 1):")
	for p, st := range rep.Procs {
		fmt.Printf("  P%d: busy %3d  idle %3d  resident mem %3d  receive-buffer peak %2d  total demand %3d\n",
			p+1, st.Busy, st.Idle, st.ResidentMem, st.BufferPeak, st.TotalDemand)
	}
	fmt.Printf("mean idle ratio %.0f%%\n", rep.IdleRatio*100)
}
