// Command automotive runs an engine-management-style workload (crank
// sensing, knock detection, injection and ignition scheduling, plus slow
// diagnostics) and compares the paper's heuristic against the baselines:
// the literal eq. (5) ratio policy, memory-only balancing (§5.2),
// Graham-style LPT, the genetic algorithm (ref [9]), and the
// branch-and-bound optimum (ref [8]) on the same block set.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/blocks"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/partition"
)

func main() {
	ts := buildWorkload()
	ar := repro.MustNewArchitecture(4, 2)

	fmt.Printf("automotive workload: %d tasks, hyper-period %d, utilisation %.2f\n\n",
		ts.Len(), ts.HyperPeriod(), ts.Utilization())

	initial, err := repro.Schedule(ts, ar)
	if err != nil {
		log.Fatal(err)
	}
	is := repro.Expand(initial)
	blks := blocks.Build(is)
	items := partition.FromBlocks(blks)
	fmt.Printf("initial schedule: makespan %d, memory %s, %d blocks\n\n",
		initial.Makespan(), metrics.FormatMemVector(initial.MemVector()), len(blks))

	fmt.Println("Schedule-level results (real strict-periodic makespan):")
	fmt.Printf("%-30s %10s %10s %10s\n", "method", "makespan", "max mem", "imbalance")
	row := func(name string, mk repro.Time, mv []repro.Mem) {
		fmt.Printf("%-30s %10d %10d %10.2f\n", name, mk, metrics.MaxMem(mv), metrics.MemImbalance(mv))
	}

	// The paper's heuristic, three policies.
	for _, pc := range []struct {
		name   string
		policy repro.Policy
	}{
		{"heuristic (lexicographic)", repro.PolicyLexicographic},
		{"heuristic (eq.5 ratio)", repro.PolicyRatio},
		{"heuristic (memory-only §5.2)", repro.PolicyMemoryOnly},
	} {
		res, err := repro.BalanceWith(is.Clone(), &core.Balancer{Policy: pc.policy})
		if err != nil {
			log.Fatal(err)
		}
		row(pc.name, res.MakespanAfter, res.MemAfter)
	}

	// Assignment-level baselines over the same blocks. These ignore start
	// times and answer the Theorem 2 question — how well can the blocks
	// be spread — so their "load" column is busy time, not a feasible
	// strict-periodic makespan.
	m := ar.Procs
	fmt.Println("\nAssignment-level baselines (max busy time, no timing constraints):")
	fmt.Printf("%-30s %10s %10s %10s\n", "method", "max load", "max mem", "imbalance")
	brow := func(name string, a partition.Assignment) {
		fmt.Printf("%-30s %10d %10d %10.2f\n", name,
			a.MaxLoad(items, m), metrics.MaxMem(a.Mems(items, m)), metrics.MemImbalance(a.Mems(items, m)))
	}
	brow("LPT (memory-oblivious)", partition.LPT(items, m))
	brow("memory balancing (ref [12])", partition.MemBalance(items, m))
	brow("genetic algorithm (ref [9])", partition.GA(items, m, partition.GAConfig{Seed: 1, MemWeight: 1}))

	if len(items) <= 20 {
		opt, w := partition.OptimalMaxMem(items, m)
		brow("branch & bound ωopt (ref [8])", opt)
		fmt.Printf("\nTheorem 2 check: ωopt = %d; the memory-only heuristic must stay within (2−1/M)·ωopt = %.1f\n",
			w, float64(w)*(2-1.0/float64(m)))
	} else {
		// The exact partitioner is exponential; this workload expands to
		// too many blocks for it. Experiment E5 exercises Theorem 2 on
		// small instances instead.
		fmt.Printf("\n%d blocks exceeds the exact B&B budget; see experiment E5 for the Theorem 2 check\n", len(items))
	}
}

func buildWorkload() *repro.TaskSet {
	ts := repro.NewTaskSet()
	add := func(name string, period, wcet repro.Time, mem repro.Mem) repro.TaskID {
		id, err := ts.AddTask(name, period, wcet, mem)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	dep := func(src, dst repro.TaskID, data repro.Mem) {
		if err := ts.AddDependence(src, dst, data); err != nil {
			log.Fatal(err)
		}
	}

	crank := add("crank_sense", 4, 1, 4)
	cam := add("cam_sense", 8, 1, 3)
	knock := add("knock_adc", 4, 1, 5)
	kproc := add("knock_dsp", 8, 2, 6)
	sync := add("engine_sync", 8, 1, 2)
	inj := add("injection", 16, 3, 4)
	ign := add("ignition", 16, 2, 3)
	lam := add("lambda_ctrl", 32, 4, 5)
	diag := add("diagnostics", 64, 6, 8)
	logg := add("datalogger", 64, 4, 6)

	dep(crank, sync, 1)
	dep(cam, sync, 1)
	dep(knock, kproc, 2)
	dep(sync, inj, 1)
	dep(sync, ign, 1)
	dep(kproc, ign, 1)
	dep(inj, lam, 1)
	dep(ign, diag, 1)
	dep(lam, diag, 1)
	dep(diag, logg, 2)
	if err := ts.Freeze(); err != nil {
		log.Fatal(err)
	}
	return ts
}
