// Command paperexample reproduces the worked example of the paper
// (§3.3, figures 2–4) end to end and prints every intermediate artefact:
// the initial schedule of figure 3, the seven block moves with their
// per-processor cost evaluations, and the balanced schedule of figure 4.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	// Figure 2: periods Ta=3, Tb=Tc=6, Td=Te=12; E=1 for all; C=1;
	// memory m_a=4, m_b=m_c=1, m_d=m_e=2; three processors on one bus.
	ts := repro.NewTaskSet()
	a, _ := ts.AddTask("a", 3, 1, 4)
	b, _ := ts.AddTask("b", 6, 1, 1)
	c, _ := ts.AddTask("c", 6, 1, 1)
	d, _ := ts.AddTask("d", 12, 1, 2)
	e, _ := ts.AddTask("e", 12, 1, 2)
	must(ts.AddDependence(a, b, 1))
	must(ts.AddDependence(b, c, 1))
	must(ts.AddDependence(b, d, 1))
	must(ts.AddDependence(d, e, 1))
	must(ts.Freeze())

	ar := repro.MustNewArchitecture(3, 1)

	// Figure 3: the schedule produced by the distributed scheduling
	// heuristic of the paper's reference [4], pinned exactly.
	s, err := repro.NewManualSchedule(ts, ar)
	if err != nil {
		log.Fatal(err)
	}
	s.MustPlace(a, 0, 0)
	s.MustPlace(b, 1, 5)
	s.MustPlace(c, 1, 6)
	s.MustPlace(d, 2, 13)
	s.MustPlace(e, 2, 14)
	must(s.DeriveComms())
	if errs := s.Validate(); len(errs) > 0 {
		log.Fatalf("initial schedule invalid: %v", errs)
	}

	fmt.Println("=== Figure 3: schedule before load balancing ===")
	must(trace.GanttSchedule(os.Stdout, s))
	fmt.Printf("total execution time: %d units (paper: 15)\n", s.Makespan())
	fmt.Printf("required memory:      %s (paper: [P1: 16, P2: 4, P3: 4])\n\n",
		metrics.FormatMemVector(s.MemVector()))

	fmt.Println("=== Inter-processor transfers (send/receive pairs) ===")
	must(trace.Comms(os.Stdout, s))
	fmt.Println()

	bal := &repro.Balancer{Policy: repro.PolicyLexicographic, RecordCandidates: true}
	res, err := repro.BalanceWith(repro.Expand(s), bal)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== §3.3 heuristic steps ===")
	for i, mv := range res.Moves {
		bl := res.Blocks[mv.BlockID]
		fmt.Printf("%d. block %s (category %d, m=%d): ", i+1, blockName(ts, res, mv.BlockID), mv.Category, bl.Mem())
		for _, cand := range mv.Candidates {
			if cand.Feasible {
				fmt.Printf("P%d(G=%d,Σm=%d) ", cand.Proc+1, cand.Gain, cand.MemSum)
			} else {
				fmt.Printf("P%d(×%s) ", cand.Proc+1, shortReason(cand.Reason))
			}
		}
		fmt.Printf("→ P%d @%d", mv.To+1, mv.NewStart)
		if mv.Gain > 0 {
			fmt.Printf(" (gain %d)", mv.Gain)
		}
		fmt.Println()
	}
	fmt.Println()

	fmt.Println("=== Figure 4: schedule after load balancing ===")
	must(trace.Gantt(os.Stdout, res.Schedule))
	fmt.Printf("total execution time: %d units (paper: 14)\n", res.MakespanAfter)
	fmt.Printf("required memory:      %s (paper: [P1: 10, P2: 6, P3: 8])\n",
		metrics.FormatMemVector(res.MemAfter))
	fmt.Printf("Gtotal = %d, Theorem 1 bound γ(M−1)! = %d\n", res.GainTotal(), 1*2)

	if errs := res.Schedule.Validate(); len(errs) > 0 {
		log.Fatalf("balanced schedule invalid: %v", errs)
	}
	fmt.Println("\nbalanced schedule validated: strict periodicity, precedence and non-overlap hold")
}

func blockName(ts *repro.TaskSet, res *repro.Result, id int) string {
	bl := res.Blocks[id]
	name := "["
	for i, m := range bl.Members {
		if i > 0 {
			name += "-"
		}
		name += fmt.Sprintf("%s%d", ts.Task(m.Inst.Task).Name, m.Inst.K+1)
	}
	return name + "]"
}

func shortReason(r string) string {
	switch r {
	case "LCM condition":
		return "LCM"
	case "no room at the pinned start":
		return "occupied"
	case "moved producers finish too late for the pinned start":
		return "deps"
	case "no conflict-free start within dependence bounds":
		return "deps"
	case "memory capacity":
		return "mem"
	}
	return r
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
