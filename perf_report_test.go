package repro_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
)

// TestEmitBenchReport is the machine side of scripts/bench.sh: when
// BENCH_REPORT=1 it measures single-trial latency distribution,
// allocations per trial, and end-to-end sweep wall-clock at paper scale,
// and merges the numbers into the JSON file named by BENCH_OUT under the
// key named by BENCH_STAGE ("before" or "after"). Without BENCH_REPORT
// the test is skipped, so normal `go test` runs stay fast.
//
// BENCH_OBS=1 runs every measured trial and sweep with telemetry
// recorders attached — `scripts/bench.sh pr6` pairs an off stage with
// an on stage in BENCH_pr6.json, so the speedup block reads as the
// overhead ratio of the obs layer (budget: trial p50 within 2% of 1.0).
func TestEmitBenchReport(t *testing.T) {
	if os.Getenv("BENCH_REPORT") == "" {
		t.Skip("set BENCH_REPORT=1 (via scripts/bench.sh) to emit the perf report")
	}
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		out = "BENCH_pr2.json"
	}
	stage := os.Getenv("BENCH_STAGE")
	if stage != "before" && stage != "after" {
		t.Fatalf("BENCH_STAGE must be before|after, got %q", stage)
	}
	var set *obs.Set
	if os.Getenv("BENCH_OBS") == "1" {
		set = obs.NewSet(0)
	}
	rec := set.Recorder(0)

	cfg, procs := paperScaleConfig()
	ts, ar := paperScaleInput(t)

	// Stage latencies: scheduler alone, balancer alone.
	schedP50 := percentile(measure(t, 15, func() {
		if _, err := sched.NewScheduler(ts, ar).Run(); err != nil {
			t.Fatal(err)
		}
	}), 50)
	s, err := sched.NewScheduler(ts, ar).Run()
	if err != nil {
		t.Fatal(err)
	}
	is := sched.FromSchedule(s)
	balP50 := percentile(measure(t, 15, func() {
		if _, err := (&core.Balancer{}).Run(is); err != nil {
			t.Fatal(err)
		}
	}), 50)

	// End-to-end trial latency distribution and allocations per trial.
	trial := campaign.Trial{Cell: "bench", Gen: cfg, Procs: procs, Comm: 1}
	const runs = 30
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	lat := measure(t, runs, func() {
		if r, err := campaign.RunTrialObserved(trial, rec); err != nil || r.Outcome != campaign.OutcomeOK {
			t.Fatalf("outcome %q err %v", r.Outcome, err)
		}
	})
	runtime.ReadMemStats(&ms1)
	allocsPerTrial := float64(ms1.Mallocs-ms0.Mallocs) / runs

	// End-to-end sweep wall-clock: one campaign over every policy at
	// paper scale — the workload memoisation is aimed at.
	spec := &campaign.Spec{
		Name:        "bench-pr2",
		Seeds:       4,
		SeedBase:    1,
		Tasks:       []int{cfg.Tasks},
		Utilization: []float64{cfg.Utilization},
		Procs:       []int{procs},
		Policies:    []string{"lexicographic", "ratio", "memory-only"},
		Periods:     cfg.Periods,
	}
	t0 := time.Now()
	res, err := (&campaign.Engine{Obs: set}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	sweepMS := float64(time.Since(t0)) / float64(time.Millisecond)

	report := map[string]any{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("existing %s is not JSON: %v", out, err)
		}
	}
	report["config"] = map[string]any{
		"tasks":       cfg.Tasks,
		"instances":   ts.TotalInstances(),
		"procs":       procs,
		"utilization": cfg.Utilization,
		"sweep": map[string]any{
			"seeds": spec.Seeds, "policies": spec.Policies, "trials": len(res.Trials),
		},
	}
	report[stage] = map[string]any{
		"trial_ms_p50":     percentile(lat, 50),
		"trial_ms_p99":     percentile(lat, 99),
		"allocs_per_trial": allocsPerTrial,
		"scheduler_ms_p50": schedP50,
		"balancer_ms_p50":  balP50,
		"sweep_ms":         sweepMS,
	}
	if b, okb := report["before"].(map[string]any); okb {
		if a, oka := report["after"].(map[string]any); oka {
			report["speedup"] = map[string]any{
				"trial_p50": num(b["trial_ms_p50"]) / num(a["trial_ms_p50"]),
				"sweep":     num(b["sweep_ms"]) / num(a["sweep_ms"]),
				"allocs":    num(b["allocs_per_trial"]) / num(a["allocs_per_trial"]),
			}
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s stage %q: trial p50 %.1fms p99 %.1fms, %.0f allocs/trial, sweep %.0fms",
		out, stage, percentile(lat, 50), percentile(lat, 99), allocsPerTrial, sweepMS)
}

// measure returns n wall-clock samples of fn, in milliseconds.
func measure(t *testing.T, n int, fn func()) []float64 {
	t.Helper()
	out := make([]float64, n)
	for i := range out {
		t0 := time.Now()
		fn()
		out[i] = float64(time.Since(t0)) / float64(time.Millisecond)
	}
	return out
}

// percentile returns the p-th percentile (nearest-rank) of samples.
func percentile(samples []float64, p int) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := (len(s)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}

func num(v any) float64 {
	f, _ := v.(float64)
	return f
}
