package repro_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sched"
)

// paperScaleConfig is the regime the paper claims ("several thousands of
// tasks and tens of processors", §4): ≥ 1000 task instances on 16
// processors. Seed 1 at util 8 is schedulable by the greedy substrate,
// so the benchmark exercises the full pipeline rather than the failure
// path.
func paperScaleConfig() (gen.Config, int) {
	return gen.Config{
		Seed:        1,
		Tasks:       300,
		Utilization: 8,
		Periods:     []model.Time{10, 20, 40, 80},
	}, 16
}

func paperScaleInput(tb testing.TB) (*model.TaskSet, *arch.Architecture) {
	tb.Helper()
	cfg, procs := paperScaleConfig()
	ts, err := gen.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if ts.TotalInstances() < 1000 {
		tb.Fatalf("paper-scale config yields %d instances, want ≥ 1000", ts.TotalInstances())
	}
	return ts, arch.MustNew(procs, 1)
}

// BenchmarkTrial measures single-trial cost at paper scale, split by
// stage. The end-to-end case is exactly what one campaign worker runs
// per trial, so its latency bounds every sweep's throughput.
func BenchmarkTrial(b *testing.B) {
	b.Run("scheduler", func(b *testing.B) {
		ts, ar := paperScaleInput(b)
		b.ReportMetric(float64(ts.TotalInstances()), "instances")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sched.NewScheduler(ts, ar).Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("balancer", func(b *testing.B) {
		ts, ar := paperScaleInput(b)
		s, err := sched.NewScheduler(ts, ar).Run()
		if err != nil {
			b.Fatal(err)
		}
		is := sched.FromSchedule(s)
		b.ReportMetric(float64(ts.TotalInstances()), "instances")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := (&core.Balancer{}).Run(is); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("end-to-end", func(b *testing.B) {
		cfg, procs := paperScaleConfig()
		trial := campaign.Trial{Cell: "bench", Gen: cfg, Procs: procs, Comm: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r := campaign.RunTrial(trial); r.Outcome != campaign.OutcomeOK {
				b.Fatalf("outcome %q", r.Outcome)
			}
		}
	})
}
